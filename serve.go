package gaea

// The service surface: Kernel.NewServer exposes the whole kernel —
// sessions, snapshots, streaming queries, derivation — over the
// internal/wire protocol on any net.Listener (TCP or unix socket).
// Package gaea/client dials it back with a Kernel-shaped API, so the
// same workload runs unchanged embedded or remote.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/query"
	"gaea/internal/server"
	"gaea/internal/wire"
)

// ServeOptions tunes a network Server.
type ServeOptions struct {
	// MaxConns caps concurrently open client connections (0 = unlimited);
	// connections over the cap are refused with an "unavailable" error.
	MaxConns int
	// SnapshotLease bounds how long a remote snapshot pin — or the pin
	// behind a stream resume cursor — survives without a touch
	// (0 = 30s). Expired leases release their pins, so an abandoned
	// client can never wedge the MVCC GC horizon; the abandoned snapshot
	// or cursor then answers ErrSnapshotGone.
	SnapshotLease time.Duration
	// PageSize caps (and defaults) the objects shipped per stream page
	// (0 = 256).
	PageSize int
	// MaxFrame bounds one wire frame (0 = 64 MiB).
	MaxFrame int
	// PrepareDir, when non-empty, makes two-phase-commit yes-votes
	// durable: each prepared transaction is fsynced there before the
	// vote is answered, and a restarted server re-stages the surviving
	// votes so a federation coordinator replaying its decision log
	// still finds them. Leave empty on kernels never serving as a
	// federation shard (prepares then live in memory only).
	PrepareDir string
	// DebugAddr, when non-empty, serves a plaintext HTTP debug endpoint
	// on that address (started with the first Serve): /metrics (the
	// registry as text), /traces (the full observability export as
	// JSON), /events (the structured event ring as JSON), /timeseries
	// (the periodic metrics samples as JSON), and net/http/pprof under
	// /debug/pprof/. The endpoint is
	// unauthenticated and exposes operational detail — bind it to
	// loopback (e.g. "127.0.0.1:6060") or protect it externally; never
	// expose it on the service listener's network.
	DebugAddr string
}

// ServerStats reports a Server's own counters (the kernel's counters
// come from Kernel.Stats).
type ServerStats struct {
	// OpenConns is the number of currently accepted connections.
	OpenConns int64
	// ActiveSessions counts in-flight remote session commits.
	ActiveSessions int64
	// ActiveStreams counts in-flight stream page requests.
	ActiveStreams int64
	// ActiveLeases counts live snapshot and cursor leases (pinned epochs
	// held on behalf of remote clients).
	ActiveLeases int64
	// LeaseExpiries counts leases expired by the janitor — abandoned
	// remote pins that were reclaimed.
	LeaseExpiries int64
	// InFlight counts requests currently executing (protocol v2
	// multiplexes many per connection).
	InFlight int64
	// MaxInFlightPerConn is the high-water mark of concurrent requests
	// observed on any single connection.
	MaxInFlightPerConn int64
	// PushedPages counts v2 server-push stream pages sent.
	PushedPages int64
	// BytesAvoided counts object bytes shipped verbatim from storage on
	// the v2 zero-copy path — bytes v1 would have decoded and re-encoded.
	BytesAvoided int64
}

// Server serves this kernel over the wire protocol. Start it on one or
// more listeners with Serve; stop it with Shutdown (graceful: stops
// accepting, drains in-flight requests, then releases every remote
// lease).
type Server struct {
	inner *server.Server
	k     *Kernel

	debugAddrOpt string
	debugOnce    sync.Once
	debugErr     error
	debugMu      sync.Mutex
	debugSrv     *http.Server
	debugAddr    string // bound address, once listening
}

// NewServer builds a network server over the kernel. The kernel stays
// fully usable in-process while being served; Close the kernel only
// after Shutdown.
func (k *Kernel) NewServer(opts ServeOptions) *Server {
	return &Server{
		k:            k,
		debugAddrOpt: opts.DebugAddr,
		inner: server.New(kernelBackend{k}, server.Options{
			MaxConns:   opts.MaxConns,
			LeaseTTL:   opts.SnapshotLease,
			PageSize:   opts.PageSize,
			MaxFrame:   opts.MaxFrame,
			PrepareDir: opts.PrepareDir,
		})}
}

// Serve accepts and serves connections on l until Shutdown. It returns
// nil after a clean shutdown. The first Serve also starts the debug
// endpoint when ServeOptions.DebugAddr is set; failing to bind it is a
// startup error, not a silent omission.
func (s *Server) Serve(l net.Listener) error {
	if err := s.startDebug(); err != nil {
		return err
	}
	return classify(s.inner.Serve(l))
}

// startDebug binds and serves the HTTP debug endpoint, once.
func (s *Server) startDebug() error {
	s.debugOnce.Do(func() {
		if s.debugAddrOpt == "" {
			return
		}
		ln, err := net.Listen("tcp", s.debugAddrOpt)
		if err != nil {
			s.debugErr = fmt.Errorf("gaea: debug endpoint: %w", err)
			return
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.k.Metrics.Snapshot().WriteText(w)
		})
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			b, err := s.k.ObsJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			_, _ = w.Write(b)
		})
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(struct {
				Events  []Event `json:"events"`
				Dropped int64   `json:"dropped"`
			}{Events: s.k.Events.Since(0), Dropped: s.k.Events.Dropped()})
		})
		mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(struct {
				Points []SeriesPoint `json:"points"`
			}{Points: s.k.Series.Points()})
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		hs := &http.Server{Handler: mux}
		s.debugMu.Lock()
		s.debugSrv = hs
		s.debugAddr = ln.Addr().String()
		s.debugMu.Unlock()
		go func() { _ = hs.Serve(ln) }()
	})
	return s.debugErr
}

// DebugAddr reports the bound debug-endpoint address ("" when disabled
// or not yet started) — useful with a ":0" DebugAddr.
func (s *Server) DebugAddr() string {
	s.debugMu.Lock()
	defer s.debugMu.Unlock()
	return s.debugAddr
}

// Shutdown stops the server gracefully: stop accepting, drain in-flight
// requests (streams are paged, so every in-flight unit is one request),
// release every remote snapshot and cursor lease. If ctx expires before
// the drain completes, in-flight kernel work is cancelled and
// connections are closed anyway. The debug endpoint, if any, closes
// with it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.debugMu.Lock()
	hs := s.debugSrv
	s.debugSrv = nil
	s.debugMu.Unlock()
	if hs != nil {
		_ = hs.Close()
	}
	return classify(s.inner.Shutdown(ctx))
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	st := s.inner.ServerStats()
	return ServerStats{
		OpenConns:          st.OpenConns,
		ActiveSessions:     st.ActiveSessions,
		ActiveStreams:      st.ActiveStreams,
		ActiveLeases:       st.ActiveLeases,
		LeaseExpiries:      st.LeaseExpiries,
		InFlight:           st.InFlight,
		MaxInFlightPerConn: st.MaxInFlightPerConn,
		PushedPages:        st.PushedPages,
		BytesAvoided:       st.BytesAvoided,
	}
}

// kernelBackend adapts *Kernel onto the narrow interface internal/server
// is written against.
type kernelBackend struct{ k *Kernel }

func (b kernelBackend) Begin(ctx context.Context, readEpoch uint64, user string) server.Session {
	if readEpoch == 0 {
		readEpoch = b.k.Objects.CurrentEpoch()
	}
	return b.k.beginAt(ctx, readEpoch, user)
}

func (b kernelBackend) Epoch() uint64 { return b.k.Objects.CurrentEpoch() }

func (b kernelBackend) Query(ctx context.Context, req query.Request) (*query.Result, error) {
	return b.k.Query(ctx, req)
}

// QueryAt answers a retrieve-only request at a pinned epoch — the remote
// snapshot read path, mirroring Snapshot.Query.
func (b kernelBackend) QueryAt(ctx context.Context, req query.Request, epoch uint64) (*query.Result, error) {
	if err := b.k.checkOpen(); err != nil {
		return nil, err
	}
	req.Strategies = []Strategy{Retrieve}
	if req.User == "" {
		req.User = b.k.user
	}
	res, err := b.k.Queries.RunAt(ctx, req, epoch)
	return res, classify(err)
}

// StreamPage drains one page of a streaming query at an epoch the caller
// has pinned, converting to wire form as it goes and stopping at half
// the frame limit — the cut object is the only over-read, and the
// cursor is re-minted at the last object shipped, so image-heavy
// classes page by bytes without loading objects they will not send.
// Also reports whether the page came from the fallback chain (not
// resumable at this epoch; a fallback page over the budget is an error
// — its results are committed and retrievable by a fresh query — since
// truncation without a cursor would silently lose them).
func (b kernelBackend) StreamPage(ctx context.Context, req query.Request, epoch uint64, retrieveOnly bool, maxBytes int) ([]wire.Object, string, bool, error) {
	if err := b.k.checkOpen(); err != nil {
		return nil, "", false, err
	}
	if retrieveOnly {
		req.Strategies = []Strategy{Retrieve}
	}
	if req.User == "" {
		req.User = b.k.user
	}
	inner, err := b.k.Queries.StreamAt(ctx, req, epoch)
	if err != nil {
		return nil, "", false, classify(err)
	}
	st := &Stream{k: b.k, inner: inner}
	budget := maxBytes / 2
	objs := make([]wire.Object, 0, req.Limit)
	total := 0
	var last *object.Object
	cut := false
	var iterErr error
	for o, err := range st.All() {
		if err != nil {
			iterErr = err
			break
		}
		w, werr := wire.FromObject(o)
		if werr != nil {
			iterErr = werr
			break
		}
		size := wire.ObjectSize(&w)
		if size > maxBytes {
			iterErr = fmt.Errorf("%w: object %d (%d bytes) exceeds the frame limit %d",
				query.ErrBadRequest, o.OID, size, maxBytes)
			break
		}
		if len(objs) > 0 && total+size > budget {
			cut = true // o stays unshipped; resume after `last`
			break
		}
		objs = append(objs, w)
		total += size
		last = o
	}
	if iterErr != nil {
		return nil, "", false, iterErr
	}
	if cut && inner.FellBack() {
		return nil, "", false, fmt.Errorf("%w: fallback result exceeds the page byte budget %d; "+
			"the derived objects are committed — re-issue the query to retrieve them", query.ErrBadRequest, budget)
	}
	cursor := st.Cursor()
	if cut {
		cursor = query.EncodeCursor(epoch, last.Class, last.OID)
	}
	return objs, cursor, inner.FellBack(), nil
}

// StreamPageRaw drains one retrieval-only page as stored record bytes —
// the v2 zero-copy path. The same byte budget as StreamPage applies
// (half the frame limit, cut before the first object that would
// overflow), but no object is decoded: the page ships exactly what the
// storage engine holds, plus the payloads of any referenced blobs.
func (b kernelBackend) StreamPageRaw(ctx context.Context, req query.Request, epoch uint64, maxBytes int) ([]wire.RawObject, string, bool, error) {
	if err := b.k.checkOpen(); err != nil {
		return nil, "", false, err
	}
	req.Strategies = []Strategy{Retrieve}
	if req.User == "" {
		req.User = b.k.user
	}
	budget := maxBytes / 2
	cap := req.Limit
	if cap < 0 {
		cap = 0
	}
	raws := make([]wire.RawObject, 0, cap)
	total := 0
	cursor, served, err := b.k.Queries.PageRawAt(ctx, req, epoch, func(class string, oid object.OID) (bool, error) {
		rec, blobs, err := b.k.Objects.GetRawAt(oid, epoch)
		if err != nil {
			return false, err
		}
		raw := wire.RawObject{Rec: rec, Blobs: blobs}
		size := raw.Size()
		if size > maxBytes {
			return false, fmt.Errorf("%w: object %d (%d bytes) exceeds the frame limit %d",
				query.ErrBadRequest, oid, size, maxBytes)
		}
		if len(raws) > 0 && total+size > budget {
			return false, nil // cut before this object; cursor re-minted at the last shipped
		}
		raws = append(raws, raw)
		total += size
		return true, nil
	})
	if err != nil {
		return nil, "", false, classify(err)
	}
	return raws, cursor, served, nil
}

func (b kernelBackend) GetAt(oid object.OID, epoch uint64) (*object.Object, error) {
	if err := b.k.checkOpen(); err != nil {
		return nil, err
	}
	o, err := b.k.Objects.GetAt(oid, epoch)
	return o, classify(err)
}

// GetRawAt loads the stored record bytes of the version visible at a
// pinned epoch, for verbatim shipping (v2 OpSnapGet).
func (b kernelBackend) GetRawAt(oid object.OID, epoch uint64) (wire.RawObject, error) {
	if err := b.k.checkOpen(); err != nil {
		return wire.RawObject{}, err
	}
	rec, blobs, err := b.k.Objects.GetRawAt(oid, epoch)
	if err != nil {
		return wire.RawObject{}, classify(err)
	}
	return wire.RawObject{Rec: rec, Blobs: blobs}, nil
}

// Metrics, Tracer, and ObsJSON make the adapter a server.ObsBackend:
// the server's protocol counters land in the kernel registry, remote
// request spans land in the kernel tracer (under the client's trace ID
// when one came over the wire), and OpStats carries the export.
func (b kernelBackend) Metrics() *obs.Registry { return b.k.Metrics }
func (b kernelBackend) Tracer() *obs.Tracer    { return b.k.Tracer }

// Events makes the adapter a server.FlightBackend: the server's own
// events (lease expiries, 2PC outcomes) land in the kernel's log, and
// OpSubscribeStats streams deltas built from the kernel registry.
func (b kernelBackend) Events() *obs.EventLog { return b.k.Events }
func (b kernelBackend) ObsJSON() []byte {
	j, err := b.k.ObsJSON()
	if err != nil {
		return nil
	}
	return j
}

func (b kernelBackend) Pin() uint64                 { return b.k.Objects.Pin() }
func (b kernelBackend) PinEpoch(e uint64) error     { return classify(b.k.Objects.PinEpoch(e)) }
func (b kernelBackend) Unpin(e uint64)              { b.k.Objects.Unpin(e) }
func (b kernelBackend) Stale() []object.OID         { return b.k.Stale() }
func (b kernelBackend) Explain(o object.OID) string { return b.k.Explain(o) }
func (b kernelBackend) Stats() string               { return b.k.Stats() }

func (b kernelBackend) CursorEpoch(cursor string) (uint64, error) {
	e, err := query.CursorEpoch(cursor)
	return e, classify(err)
}

func (b kernelBackend) RefreshStale(ctx context.Context) (int, error) {
	return b.k.RefreshStale(ctx)
}

func (b kernelBackend) ExplainQuery(ctx context.Context, req query.Request) (string, error) {
	return b.k.ExplainQuery(ctx, req)
}

// Code maps an error onto its wire code: the public sentinels first
// (some, like ErrClosed or a session-level ErrConflict, carry no
// internal cause underneath), then the internal taxonomy.
func (b kernelBackend) Code(err error) wire.Code {
	switch {
	case err == nil:
		return wire.CodeOK
	case errors.Is(err, ErrClosed):
		return wire.CodeClosed
	case errors.Is(err, ErrSnapshotGone):
		return wire.CodeSnapshotGone
	case errors.Is(err, ErrConflict):
		return wire.CodeConflict
	case errors.Is(err, ErrStale):
		return wire.CodeStale
	case errors.Is(err, ErrClassUnknown):
		return wire.CodeClassUnknown
	case errors.Is(err, ErrNoPlan):
		return wire.CodeNoPlan
	case errors.Is(err, ErrNotFound):
		return wire.CodeNotFound
	default:
		return wire.CodeFor(err)
	}
}
