package gaea

// Observability surface: the kernel's metrics registry and tracer are
// re-exported here so embedding callers, the service layer, and the CLI
// all consume one vocabulary without importing internal packages.
//
// The model is pull-based and allocation-light: layers record into
// atomic instruments unconditionally (instruments are nil-safe, so a
// kernel opened without observers costs a few atomic adds per
// operation), and observers pull a consistent StatsSnapshot / ObsExport
// when they want one. Nothing is pushed anywhere.

import (
	"encoding/json"
	"fmt"
	"time"

	"gaea/internal/deriv"
	"gaea/internal/object"
	"gaea/internal/obs"
)

// Re-exported observability types: the obs package is internal; these
// aliases are the public names.
type (
	// Tracer assembles request spans into traces and retains recent and
	// slow ones. One tracer serves a kernel; clients own their own.
	Tracer = obs.Tracer
	// TraceData is one exported trace: a span tree with timings.
	TraceData = obs.TraceData
	// SpanData is one exported span.
	SpanData = obs.SpanData
	// MetricsSnapshot is a point-in-time export of every registered
	// counter, gauge, and histogram.
	MetricsSnapshot = obs.MetricsSnapshot
	// HistogramSnapshot summarises one latency/size distribution.
	HistogramSnapshot = obs.HistogramSnapshot
	// DerivCounters summarises the derived-data manager.
	DerivCounters = deriv.Counters
	// MVCCStats summarises version-store health.
	MVCCStats = object.MVCCStats
	// Event is one structured flight-recorder record (commit group,
	// checkpoint pass, deriv sweep, lease expiry, 2PC outcome, shard
	// transition, stall). Its JSON form is the event JSONL schema.
	Event = obs.Event
	// EventLog is the bounded event ring with an optional JSONL sink.
	EventLog = obs.EventLog
	// SeriesPoint is one periodic sample of the metrics registry.
	SeriesPoint = obs.SeriesPoint
	// TimeSeries is the bounded ring of periodic registry samples.
	TimeSeries = obs.TimeSeries
	// StatsDelta is one push of a stats subscription: rates since the
	// previous push, current gauges/p99s, and new events.
	StatsDelta = obs.StatsDelta
	// OpenOp describes one operation currently in flight (an un-ended
	// root span) — what the stall watchdog scans.
	OpenOp = obs.OpenOp
)

// Event severities (Event.Severity values).
const (
	SevInfo  = obs.SevInfo
	SevWarn  = obs.SevWarn
	SevError = obs.SevError
)

// NewTracer builds a standalone tracer — typically a client-side one,
// handed to client.Options.Tracer so remote calls record local spans
// and propagate their trace IDs to the server. Traces slower than
// slowThreshold enter the slow-op log (0 disables). ring and slowRing
// size the retention rings (0 = 64 and 32).
func NewTracer(slowThreshold time.Duration, ring, slowRing int) *Tracer {
	return obs.NewTracer(slowThreshold, ring, slowRing)
}

// StatsSnapshot is the structured form of Kernel.Stats: every figure the
// classic one-line summary prints, plus the full metrics registry. The
// string form (String) is stable — it renders exactly the historical
// Stats() line and ignores Metrics — so log scrapers keep working while
// programs read fields.
type StatsSnapshot struct {
	Classes     int `json:"classes"`
	Processes   int `json:"processes"`
	Concepts    int `json:"concepts"`
	Experiments int `json:"experiments"`
	Objects     int `json:"objects"`
	Tasks       int `json:"tasks"`

	Deriv  DerivCounters `json:"deriv"`
	Policy RefreshPolicy `json:"policy"`
	MVCC   MVCCStats     `json:"mvcc"`

	WALBytes    int64 `json:"wal_bytes"`
	Checkpoints int64 `json:"checkpoints"`

	Metrics MetricsSnapshot `json:"metrics"`
}

// String renders the classic one-line Stats summary. The format is
// frozen (golden-tested): tooling greps these fields.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("classes=%d processes=%d concepts=%d experiments=%d objects=%d tasks=%d deriv[%s policy=%s] mvcc[epoch=%d versions=%d reclaimed=%d pins=%d oldest_pin=%d] wal[bytes=%d checkpoints=%d]",
		s.Classes, s.Processes, s.Concepts, s.Experiments, s.Objects, s.Tasks,
		s.Deriv, s.Policy,
		s.MVCC.Epoch, s.MVCC.LiveVersions, s.MVCC.Reclaimed, s.MVCC.Pins, s.MVCC.OldestPin,
		s.WALBytes, s.Checkpoints)
}

// StatsSnapshot captures the kernel's current state: model counts,
// derivation counters, MVCC health, WAL growth, and a full metrics
// export. Safe to call concurrently with everything else.
func (k *Kernel) StatsSnapshot() StatsSnapshot {
	classes := k.Catalog.Names()
	total := 0
	for _, c := range classes {
		total += k.Objects.Count(c)
	}
	mv := k.Objects.MVCC()
	return StatsSnapshot{
		Classes:     len(classes),
		Processes:   len(k.Processes.Names()),
		Concepts:    len(k.Concepts.Names()),
		Experiments: len(k.Experiments.Names()),
		Objects:     total,
		Tasks:       len(k.Tasks.All()),
		Deriv:       k.Deriv.Counters(),
		Policy:      k.Deriv.Policy(),
		MVCC:        mv,
		WALBytes:    k.Store.WALBytes(),
		Checkpoints: k.checkpoints.Load(),
		Metrics:     k.Metrics.Snapshot(),
	}
}

// ShardStatus is one shard's health in a federation's fleet view,
// derived from the liveness of the router's stats subscription to it:
// "up" while deltas arrive, "degraded" after a missed interval, "down"
// once the subscription is lost and redials fail.
type ShardStatus struct {
	Shard    int                `json:"shard"`
	Addr     string             `json:"addr"`
	State    string             `json:"state"`
	LastSeen time.Time          `json:"last_seen,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`
}

// ObsExport bundles everything an observer pulls in one shot: the stats
// snapshot, the most recent completed traces, and the slow-op log. It
// is what the v2 wire protocol's stats extension carries and what the
// debug endpoint's /traces serves. Fleet is present only on federation
// exports: one health row per shard.
type ObsExport struct {
	Stats   StatsSnapshot `json:"stats"`
	Traces  []TraceData   `json:"traces,omitempty"`
	SlowOps []TraceData   `json:"slow_ops,omitempty"`
	Fleet   []ShardStatus `json:"fleet,omitempty"`
}

// Observe exports the kernel's observability state.
func (k *Kernel) Observe() ObsExport {
	return ObsExport{
		Stats:   k.StatsSnapshot(),
		Traces:  k.Tracer.Recent(),
		SlowOps: k.Tracer.Slow(),
	}
}

// ObsJSON is Observe marshalled — the payload the service layer ships
// to remote observers (gaea top / gaea trace -connect).
func (k *Kernel) ObsJSON() ([]byte, error) {
	return json.Marshal(k.Observe())
}
