package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event severities. Info is the normal record of work done; warn marks
// outcomes an operator should eventually look at (lease expiries,
// heuristic 2PC outcomes, stalls); error marks failures.
const (
	SevInfo  = "info"
	SevWarn  = "warn"
	SevError = "error"
)

// Event is one structured record of something the system did: a commit
// group, a checkpoint/GC pass, a derivation sweep, a lease expiry, a
// 2PC outcome, a shard health transition, a stall. Seq is a per-log
// monotone sequence starting at 1 — consumers resume with Since.
type Event struct {
	Seq      uint64            `json:"seq"`
	Time     time.Time         `json:"time"`
	Type     string            `json:"type"`
	Severity string            `json:"sev"`
	Msg      string            `json:"msg,omitempty"`
	Fields   map[string]string `json:"fields,omitempty"`
}

// EventLog is a bounded ring of events with an optional JSONL sink.
// Emit is safe for concurrent use and never blocks on the ring: when
// the ring is full the oldest event is dropped and counted. All
// methods are nil-safe, so layers without a log just no-op.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	pos     int
	seq     uint64
	dropped int64
	sink    io.Writer // optional JSONL sink; write errors disable it
	sinkErr error
}

// defaultEventRing is the ring capacity when NewEventLog gets 0.
const defaultEventRing = 1024

// NewEventLog builds a log retaining the last `ring` events (0 = 1024).
// When sink is non-nil every event is additionally appended to it as
// one JSON line; a write error disables the sink (the ring keeps
// recording) and is reported by SinkErr.
func NewEventLog(ring int, sink io.Writer) *EventLog {
	if ring <= 0 {
		ring = defaultEventRing
	}
	return &EventLog{ring: make([]Event, 0, ring), sink: sink}
}

// Emit appends one event. Fields is retained as-is — callers must not
// mutate it afterwards.
func (l *EventLog) Emit(typ, severity, msg string, fields map[string]string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev := Event{Seq: l.seq, Time: time.Now(), Type: typ, Severity: severity, Msg: msg, Fields: fields}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.pos] = ev
		l.pos = (l.pos + 1) % cap(l.ring)
		l.dropped++
	}
	if l.sink != nil && l.sinkErr == nil {
		// One JSON object per line: the documented JSONL schema is the
		// Event struct itself.
		b, err := json.Marshal(ev)
		if err == nil {
			b = append(b, '\n')
			_, err = l.sink.Write(b)
		}
		if err != nil {
			l.sinkErr = err
			l.sink = nil
		}
	}
	l.mu.Unlock()
}

// Since returns the retained events with Seq > seq, oldest first.
// Since(0) returns the whole ring. Events older than the ring has
// slots for are gone — Dropped counts them.
func (l *EventLog) Since(seq uint64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	for i := 0; i < len(l.ring); i++ {
		ev := l.ring[(l.pos+i)%len(l.ring)]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out
}

// LastSeq reports the sequence number of the newest event (0 when none
// was ever emitted).
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped reports how many events the ring has overwritten.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// SinkErr reports the write error that disabled the JSONL sink, if any.
func (l *EventLog) SinkErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}
