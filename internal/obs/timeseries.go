package obs

import (
	"sync"
	"time"
)

// SeriesPoint is one periodic sample of a metrics registry, reduced to
// what trend rendering needs: cumulative counters, gauges, and the p99
// of every histogram. Rates are derived by differencing two points.
type SeriesPoint struct {
	At       time.Time        `json:"at"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	P99      map[string]int64 `json:"p99_ns,omitempty"`
}

// TimeSeries periodically snapshots a Registry into a bounded ring and
// serves windowed views: the raw points (the /timeseries endpoint) and
// counter rates over a window (q/s, commit/s). The instruments' hot
// paths are untouched — sampling runs on a background ticker, and a
// full ring overwrites its oldest slot. Methods are nil-safe.
type TimeSeries struct {
	reg  *Registry
	mu   sync.Mutex
	ring []SeriesPoint
	pos  int
}

// defaultSeriesSlots is the ring capacity when NewTimeSeries gets 0:
// at the default 1s sampling interval, five minutes of history.
const defaultSeriesSlots = 300

// NewTimeSeries builds a sampler over reg retaining the last `slots`
// points (0 = 300).
func NewTimeSeries(reg *Registry, slots int) *TimeSeries {
	if slots <= 0 {
		slots = defaultSeriesSlots
	}
	return &TimeSeries{reg: reg, ring: make([]SeriesPoint, 0, slots)}
}

// reduce flattens a registry snapshot into a point. Histogram counts
// ride as "<name>_count" counters so per-window observation rates can
// be differenced like any other counter.
func reduce(at time.Time, s MetricsSnapshot) SeriesPoint {
	p := SeriesPoint{At: at, Counters: make(map[string]int64, len(s.Counters)+len(s.Histograms)),
		Gauges: s.Gauges, P99: make(map[string]int64, len(s.Histograms))}
	for name, v := range s.Counters {
		p.Counters[name] = v
	}
	for name, h := range s.Histograms {
		p.Counters[name+"_count"] = h.Count
		p.P99[name] = h.P99
	}
	return p
}

// Sample takes one snapshot of the registry and appends it to the ring.
func (ts *TimeSeries) Sample(now time.Time) {
	if ts == nil {
		return
	}
	p := reduce(now, ts.reg.Snapshot())
	ts.mu.Lock()
	if len(ts.ring) < cap(ts.ring) {
		ts.ring = append(ts.ring, p)
	} else {
		ts.ring[ts.pos] = p
		ts.pos = (ts.pos + 1) % cap(ts.ring)
	}
	ts.mu.Unlock()
}

// Points returns the retained samples, oldest first.
func (ts *TimeSeries) Points() []SeriesPoint {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]SeriesPoint, 0, len(ts.ring))
	for i := 0; i < len(ts.ring); i++ {
		out = append(out, ts.ring[(ts.pos+i)%len(ts.ring)])
	}
	return out
}

// Rates differences the newest retained point against the oldest one
// inside the window and returns counter deltas per second. An empty
// map means fewer than two points are in the window yet.
func (ts *TimeSeries) Rates(window time.Duration) map[string]float64 {
	pts := ts.Points()
	out := map[string]float64{}
	if len(pts) < 2 {
		return out
	}
	last := pts[len(pts)-1]
	first := pts[0]
	for _, p := range pts {
		if last.At.Sub(p.At) <= window {
			first = p
			break
		}
	}
	secs := last.At.Sub(first.At).Seconds()
	if secs <= 0 {
		return out
	}
	for name, v := range last.Counters {
		out[name] = float64(v-first.Counters[name]) / secs
	}
	return out
}

// StatsDelta is one push of the SubscribeStats stream: counter rates
// over the interval since the previous push, current gauges and
// histogram p99s, and the events emitted since the last delta the
// subscriber saw. NextSeq is the resume point — a reconnecting
// subscriber passes it back and misses nothing the ring still holds.
type StatsDelta struct {
	At            time.Time          `json:"at"`
	Interval      float64            `json:"interval_s,omitempty"`
	Rates         map[string]float64 `json:"rates,omitempty"`
	Gauges        map[string]int64   `json:"gauges,omitempty"`
	P99           map[string]int64   `json:"p99_ns,omitempty"`
	Events        []Event            `json:"events,omitempty"`
	DroppedEvents int64              `json:"dropped_events,omitempty"`
	NextSeq       uint64             `json:"next_seq"`
}

// maxEventsPerDelta bounds one delta's event payload so a push frame
// stays small; the remainder rides the next delta (NextSeq advances
// only past what was shipped).
const maxEventsPerDelta = 128

// DeltaSource produces the successive StatsDeltas of one subscription:
// it remembers the previous registry snapshot and the last event
// sequence shipped. Not safe for concurrent use — one source per
// subscription.
type DeltaSource struct {
	reg    *Registry
	log    *EventLog
	prev   SeriesPoint
	primed bool
	seq    uint64
}

// NewDeltaSource builds a source over reg and log. fromSeq is the last
// event sequence the subscriber already has (0 = ship the whole ring
// on the first delta).
func NewDeltaSource(reg *Registry, log *EventLog, fromSeq uint64) *DeltaSource {
	return &DeltaSource{reg: reg, log: log, seq: fromSeq}
}

// Next computes one delta. The first call carries no rates (there is
// no previous sample to difference against) but does carry gauges,
// p99s, and the backlog of events past fromSeq.
func (d *DeltaSource) Next(now time.Time) StatsDelta {
	cur := reduce(now, d.reg.Snapshot())
	out := StatsDelta{At: now, Gauges: cur.Gauges, P99: cur.P99}
	if d.primed {
		secs := now.Sub(d.prev.At).Seconds()
		if secs > 0 {
			out.Interval = secs
			out.Rates = make(map[string]float64, len(cur.Counters))
			for name, v := range cur.Counters {
				out.Rates[name] = float64(v-d.prev.Counters[name]) / secs
			}
		}
	}
	d.prev, d.primed = cur, true
	events := d.log.Since(d.seq)
	if len(events) > maxEventsPerDelta {
		events = events[:maxEventsPerDelta]
	}
	if len(events) > 0 {
		out.Events = events
		d.seq = events[len(events)-1].Seq
	}
	out.DroppedEvents = d.log.Dropped()
	out.NextSeq = d.seq
	return out
}
