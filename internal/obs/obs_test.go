package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryGetOrCreate: one name, one instrument — whoever asks
// first mints it, later askers share it.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := r.Snapshot().Counters["x_total"]; got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Histogram("h_ns") != r.Histogram("h_ns") {
		t.Fatal("same name returned distinct histograms")
	}
}

// TestNilRegistryOrphans: a nil registry hands out working orphan
// instruments, so instrumented code never branches on wiring.
func TestNilRegistryOrphans(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(7)
	r.Histogram("c").Observe(5)
	r.GaugeFunc("d", func() int64 { return 1 })
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestHistogramQuantiles: estimates are ordered (p50 ≤ p99 ≤ max), the
// max is exact, and the estimates land within one bucket of truth.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1_000_000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if s.P50 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles out of order: p50=%d p99=%d max=%d", s.P50, s.P99, s.Max)
	}
	if s.P50 < 400_000 || s.P50 > 700_000 {
		t.Fatalf("p50=%d implausible for a uniform 1µs..1ms distribution", s.P50)
	}
}

// TestHistogramObserveSince records a non-negative duration sample.
func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_ns")
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Max < int64(time.Millisecond) {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
}

// TestWriteTextSortedAndExpanded: the /metrics text form is sorted and
// expands histograms into the five summary series.
func TestWriteTextSortedAndExpanded(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Inc()
	r.Counter("aa_total").Add(2)
	r.Gauge("mm").Set(5)
	r.GaugeFunc("fn", func() int64 { return 9 })
	r.Histogram("h_ns").Observe(10)
	var b bytes.Buffer
	r.Snapshot().WriteText(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("unsorted: %q before %q", lines[i-1], lines[i])
		}
	}
	text := b.String()
	for _, want := range []string{"aa_total 2\n", "zz_total 1\n", "mm 5\n", "fn 9\n",
		"h_ns_count 1\n", "h_ns_sum 10\n", "h_ns_max 10\n", "h_ns_p50", "h_ns_p99"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// TestSpanTree: Start under a tracer opens a root; Start under a span
// opens a child; End on the root completes the trace into the ring.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(0, 0, 0)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "req")
	root.Annotate("k", "v")
	cctx, child := Start(ctx, "step")
	_, grand := Start(cctx, "substep")
	grand.End()
	child.End()
	if got := TraceID(ctx); got == 0 || got != root.TraceID() {
		t.Fatalf("TraceID(ctx)=%d, root=%d", got, root.TraceID())
	}
	if len(tr.Recent()) != 0 {
		t.Fatal("trace completed before the root ended")
	}
	root.End()
	rec := tr.Recent()
	if len(rec) != 1 {
		t.Fatalf("%d completed traces, want 1", len(rec))
	}
	d := rec[0]
	if d.Root != "req" || len(d.Spans) != 3 {
		t.Fatalf("root=%q spans=%d", d.Root, len(d.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range d.Spans {
		byName[s.Name] = s
	}
	if byName["req"].Parent != 0 ||
		byName["step"].Parent != byName["req"].ID ||
		byName["substep"].Parent != byName["step"].ID {
		t.Fatalf("parentage wrong: %+v", d.Spans)
	}
	out := d.Format()
	if !strings.Contains(out, "req") || !strings.Contains(out, "  step") ||
		!strings.Contains(out, "    substep") || !strings.Contains(out, "k=v") {
		t.Fatalf("Format:\n%s", out)
	}
}

// TestNilSpanNoops: without a tracer on the context, Start returns a
// nil span whose whole API no-ops.
func TestNilSpanNoops(t *testing.T) {
	ctx, sp := Start(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("span without tracer should be nil")
	}
	sp.Annotate("a", "b")
	sp.End()
	if sp.TraceID() != 0 || TraceID(ctx) != 0 {
		t.Fatal("nil span leaked a trace ID")
	}
}

// TestRemoteTraceAdoption: WithRemoteTrace makes the next root span
// adopt the caller's trace identity — the server half of a propagated
// trace.
func TestRemoteTraceAdoption(t *testing.T) {
	tr := NewTracer(0, 0, 0)
	ctx := WithRemoteTrace(WithTracer(context.Background(), tr), 0xabcdef)
	_, sp := Start(ctx, "server/query")
	sp.End()
	rec := tr.Recent()
	if len(rec) != 1 || rec[0].ID != 0xabcdef {
		t.Fatalf("adopted trace = %+v, want ID abcdef", rec)
	}
	d, ok := tr.Find(0xabcdef)
	if !ok || d.Root != "server/query" {
		t.Fatalf("Find: ok=%v root=%q", ok, d.Root)
	}
	// The adopting root must mint its own span ID: the originating
	// process's root already carries the trace ID, and a merged
	// cross-process tree cannot hold two spans with one identity.
	if d.Spans[0].ID == 0xabcdef {
		t.Fatal("adopted root reused the trace ID as its span ID")
	}
}

// TestRingRetention: the recent ring keeps the newest N traces, newest
// first.
func TestRingRetention(t *testing.T) {
	tr := NewTracer(0, 4, 0)
	ctx := WithTracer(context.Background(), tr)
	var last uint64
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "op")
		last = sp.TraceID()
		sp.End()
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("ring holds %d, want 4", len(rec))
	}
	if rec[0].ID != last {
		t.Fatalf("newest first violated: got %x want %x", rec[0].ID, last)
	}
}

// TestSlowOpLog: only traces past the threshold enter the slow log.
func TestSlowOpLog(t *testing.T) {
	tr := NewTracer(5*time.Millisecond, 0, 0)
	ctx := WithTracer(context.Background(), tr)
	_, fast := Start(ctx, "fast")
	fast.End()
	_, slow := Start(ctx, "slow")
	time.Sleep(10 * time.Millisecond)
	slow.End()
	sl := tr.Slow()
	if len(sl) != 1 || sl[0].Root != "slow" {
		t.Fatalf("slow log = %+v, want exactly the slow op", sl)
	}
	if len(tr.Recent()) != 2 {
		t.Fatalf("recent ring holds %d, want both", len(tr.Recent()))
	}
}

// TestNilTracerSafe: a nil *Tracer answers empty exports rather than
// panicking — observers never nil-check.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Recent() != nil || tr.Slow() != nil {
		t.Fatal("nil tracer exported traces")
	}
	if _, ok := tr.Find(1); ok {
		t.Fatal("nil tracer found a trace")
	}
	// WithTracer(nil) must leave the context untraced.
	_, sp := Start(WithTracer(context.Background(), nil), "x")
	if sp != nil {
		t.Fatal("nil tracer produced a live span")
	}
}

// TestTraceSampling: the token bucket admits a burst of local traces,
// rejects the flood past it (marking the subtree so children no-op),
// and never samples out a remote-stamped trace.
func TestTraceSampling(t *testing.T) {
	tr := NewTracer(0, 8, 0)
	ctx := WithTracer(context.Background(), tr)
	admitted := 0
	for i := 0; i < 5000; i++ {
		c, sp := Start(ctx, "op")
		if sp != nil {
			admitted++
			sp.End()
			continue
		}
		if _, ch := Start(c, "child"); ch != nil {
			t.Fatal("child of a sampled-out root produced a live span")
		}
		if TraceID(c) != 0 {
			t.Fatal("sampled-out context leaked a trace ID")
		}
	}
	if admitted < traceBurst/2 || admitted > 4*traceBurst {
		t.Fatalf("admitted %d of 5000, want roughly the burst (%d)", admitted, traceBurst)
	}
	_, sp := Start(WithRemoteTrace(ctx, 42), "forced")
	if sp == nil || sp.TraceID() != 42 {
		t.Fatalf("remote-stamped trace was sampled out (span=%v)", sp)
	}
	sp.End()
}

// TestConcurrentInstruments: counters, histograms, and spans under
// -race: many goroutines hammer one registry and one tracer.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(0, 8, 0)
	base := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_ns").Observe(int64(i))
				ctx, root := Start(base, "root")
				_, child := Start(ctx, "child")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c_total"] != 1600 {
		t.Fatalf("c_total=%d, want 1600", snap.Counters["c_total"])
	}
	if snap.Histograms["h_ns"].Count != 1600 {
		t.Fatalf("h_ns count=%d, want 1600", snap.Histograms["h_ns"].Count)
	}
	if len(tr.Recent()) != 8 {
		t.Fatalf("ring=%d, want 8", len(tr.Recent()))
	}
}
