package obs

// Flight-recorder unit tests: the event ring's overflow contract
// (oldest dropped, counted, sequence unbroken), the JSONL sink and its
// failure mode, time-series sampling and windowed rates, the
// DeltaSource push contract (first delta unprimed, resume via NextSeq),
// and the stall watchdog's once-per-operation reporting.

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestEventRingOverflow: a full ring drops its oldest events, counts
// the drops, and keeps the retained sequence contiguous.
func TestEventRingOverflow(t *testing.T) {
	l := NewEventLog(8, nil)
	for i := 0; i < 20; i++ {
		l.Emit("tick", SevInfo, "", nil)
	}
	got := l.Since(0)
	if len(got) != 8 {
		t.Fatalf("ring of 8 retained %d events", len(got))
	}
	for i, ev := range got {
		if want := uint64(13 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if d := l.Dropped(); d != 12 {
		t.Fatalf("Dropped() = %d, want 12", d)
	}
	if s := l.LastSeq(); s != 20 {
		t.Fatalf("LastSeq() = %d, want 20", s)
	}
}

// TestEventLogSince: Since(seq) answers only newer events — the resume
// contract SubscribeStats is built on.
func TestEventLogSince(t *testing.T) {
	l := NewEventLog(16, nil)
	for i := 0; i < 5; i++ {
		l.Emit("e", SevInfo, "", nil)
	}
	got := l.Since(3)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("Since(3) = %+v, want seqs 4,5", got)
	}
	if got := l.Since(5); len(got) != 0 {
		t.Fatalf("Since(last) answered %d events", len(got))
	}
}

// failWriter errors after n successful writes.
type failWriter struct {
	n     int
	lines strings.Builder
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	w.lines.Write(p)
	return len(p), nil
}

// TestEventLogSink: events append to the sink as JSONL; a write error
// disables the sink while the ring keeps recording.
func TestEventLogSink(t *testing.T) {
	w := &failWriter{n: 2}
	l := NewEventLog(8, w)
	l.Emit("a", SevInfo, "first", map[string]string{"k": "v"})
	l.Emit("b", SevWarn, "second", nil)
	l.Emit("c", SevError, "third", nil) // sink write fails here
	l.Emit("d", SevInfo, "fourth", nil)

	lines := strings.Split(strings.TrimSpace(w.lines.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("sink line is not JSON: %v", err)
	}
	if ev.Type != "a" || ev.Severity != SevInfo || ev.Fields["k"] != "v" {
		t.Fatalf("sink line decoded to %+v", ev)
	}
	if l.SinkErr() == nil {
		t.Fatal("sink error not reported after write failure")
	}
	if got := l.Since(0); len(got) != 4 {
		t.Fatalf("ring retained %d events after sink failure, want 4", len(got))
	}
}

// TestTimeSeriesRates: two samples a known interval apart difference
// into per-second rates; histogram counts ride as _count counters.
func TestTimeSeriesRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("work_total")
	h := reg.Histogram("op_ns")
	ts := NewTimeSeries(reg, 4)

	t0 := time.Now()
	ts.Sample(t0)
	c.Add(30)
	h.Observe(1000)
	h.Observe(2000)
	ts.Sample(t0.Add(2 * time.Second))

	rates := ts.Rates(time.Minute)
	if got := rates["work_total"]; got != 15 {
		t.Fatalf("work_total rate = %v, want 15/s", got)
	}
	if got := rates["op_ns_count"]; got != 1 {
		t.Fatalf("op_ns_count rate = %v, want 1/s", got)
	}

	// The ring keeps only the last `slots` points.
	for i := 0; i < 10; i++ {
		ts.Sample(t0.Add(time.Duration(3+i) * time.Second))
	}
	pts := ts.Points()
	if len(pts) != 4 {
		t.Fatalf("ring of 4 retained %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if !pts[i].At.After(pts[i-1].At) {
			t.Fatalf("points out of order: %v then %v", pts[i-1].At, pts[i].At)
		}
	}
}

// TestDeltaSource: the first delta is unprimed (no rates) but carries
// the event backlog past fromSeq; later deltas difference counters and
// advance NextSeq only past shipped events.
func TestDeltaSource(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("q_total")
	log := NewEventLog(16, nil)
	log.Emit("old", SevInfo, "", nil)
	log.Emit("old", SevInfo, "", nil)

	src := NewDeltaSource(reg, log, 1) // subscriber already saw seq 1
	t0 := time.Now()
	d1 := src.Next(t0)
	if d1.Rates != nil {
		t.Fatalf("first delta carries rates: %v", d1.Rates)
	}
	if len(d1.Events) != 1 || d1.Events[0].Seq != 2 {
		t.Fatalf("first delta events = %+v, want backlog seq 2 only", d1.Events)
	}
	if d1.NextSeq != 2 {
		t.Fatalf("first delta NextSeq = %d, want 2", d1.NextSeq)
	}

	c.Add(10)
	log.Emit("new", SevWarn, "", nil)
	d2 := src.Next(t0.Add(2 * time.Second))
	if got := d2.Rates["q_total"]; got != 5 {
		t.Fatalf("q_total rate = %v, want 5/s", got)
	}
	if len(d2.Events) != 1 || d2.Events[0].Seq != 3 || d2.NextSeq != 3 {
		t.Fatalf("second delta events %+v NextSeq %d, want seq 3", d2.Events, d2.NextSeq)
	}

	// Nothing new: the delta is empty but NextSeq holds the resume point.
	d3 := src.Next(t0.Add(3 * time.Second))
	if len(d3.Events) != 0 || d3.NextSeq != 3 {
		t.Fatalf("idle delta events %d NextSeq %d, want 0 and 3", len(d3.Events), d3.NextSeq)
	}
}

// TestWatchdogStall: an operation open past the threshold is flagged
// exactly once, with the trace ID and a goroutine profile attached;
// fresh operations are not flagged.
func TestWatchdogStall(t *testing.T) {
	tr := NewTracer(0, 0, 0)
	log := NewEventLog(16, nil)
	wd := NewWatchdog(tr, log, 50*time.Millisecond)

	ctx := context.Background()
	_, stuck := StartWith(ctx, tr, "stuck-op")
	defer stuck.End()
	_, fresh := StartWith(ctx, tr, "fresh-op")
	defer fresh.End()

	// Not stalled yet.
	if n := wd.Scan(time.Now()); n != 0 {
		t.Fatalf("premature scan flagged %d ops", n)
	}
	// Both ops look old from 1s in the future — but the fresh one was
	// started at the same time, so flag both and verify the dedupe.
	future := time.Now().Add(time.Second)
	if n := wd.Scan(future); n != 2 {
		t.Fatalf("scan flagged %d ops, want 2", n)
	}
	if n := wd.Scan(future.Add(time.Second)); n != 0 {
		t.Fatalf("rescan re-flagged %d ops", n)
	}
	events := log.Since(0)
	if len(events) != 2 {
		t.Fatalf("log holds %d events, want 2", len(events))
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Type != "stall" || ev.Severity != SevWarn {
			t.Fatalf("unexpected event %+v", ev)
		}
		if ev.Fields["trace"] == "" || ev.Fields["goroutines"] == "" {
			t.Fatalf("stall event missing trace/profile fields: %+v", ev.Fields)
		}
		names[ev.Msg] = true
	}
	if !names["stuck-op"] || !names["fresh-op"] {
		t.Fatalf("stall events name %v", names)
	}

	// A completed operation leaves the open set and may stall anew.
	stuck.End()
	fresh.End()
	if got := len(tr.OpenOps()); got != 0 {
		t.Fatalf("%d ops still open after End", got)
	}
	if n := wd.Scan(future.Add(2 * time.Second)); n != 0 {
		t.Fatalf("scan of empty open set flagged %d", n)
	}
}
