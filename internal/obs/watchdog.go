package obs

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"
)

// maxStallProfile bounds the goroutine profile attached to a stall
// event: enough to see where the scheduler is parked, small enough for
// the event ring and the JSONL sink.
const maxStallProfile = 8 << 10

// Watchdog scans the tracer's open root spans and emits one `stall`
// event — with a captured goroutine profile — for every operation
// whose age exceeds the threshold. Each stalled operation is reported
// once; if it eventually completes, its trace lands in the slow-op log
// as usual. Scan is cheap when nothing is stuck (one lock, no
// allocation beyond the open-op list), so it can run on a tight
// ticker.
type Watchdog struct {
	tr        *Tracer
	log       *EventLog
	threshold time.Duration

	mu       sync.Mutex
	reported map[uint64]struct{} // trace IDs already flagged
}

// NewWatchdog builds a watchdog flagging operations open longer than
// threshold (<= 0 takes 30s) into log.
func NewWatchdog(tr *Tracer, log *EventLog, threshold time.Duration) *Watchdog {
	if threshold <= 0 {
		threshold = 30 * time.Second
	}
	return &Watchdog{tr: tr, log: log, threshold: threshold, reported: make(map[uint64]struct{})}
}

// Threshold reports the stall cutoff.
func (w *Watchdog) Threshold() time.Duration {
	if w == nil {
		return 0
	}
	return w.threshold
}

// Scan inspects the open operations once and returns how many new
// stall events it emitted. Nil-safe.
func (w *Watchdog) Scan(now time.Time) int {
	if w == nil || w.tr == nil {
		return 0
	}
	open := w.tr.OpenOps()
	w.mu.Lock()
	live := make(map[uint64]struct{}, len(open))
	var stalled []OpenOp
	for _, op := range open {
		live[op.TraceID] = struct{}{}
		if now.Sub(op.Start) < w.threshold {
			continue
		}
		if _, done := w.reported[op.TraceID]; done {
			continue
		}
		w.reported[op.TraceID] = struct{}{}
		stalled = append(stalled, op)
	}
	// Completed operations leave the open set; forget them so the map
	// stays proportional to what is actually in flight.
	for id := range w.reported {
		if _, ok := live[id]; !ok {
			delete(w.reported, id)
		}
	}
	w.mu.Unlock()
	if len(stalled) == 0 {
		return 0
	}
	// One profile serves every stall found in this pass: the stacks are
	// a point-in-time picture of the whole process anyway.
	profile := goroutineProfile()
	for _, op := range stalled {
		w.log.Emit("stall", SevWarn, op.Name, map[string]string{
			"trace":      fmt.Sprintf("%016x", op.TraceID),
			"age":        now.Sub(op.Start).Round(time.Millisecond).String(),
			"threshold":  w.threshold.String(),
			"goroutines": profile,
		})
	}
	return len(stalled)
}

// goroutineProfile renders the current goroutine stacks (debug=1:
// grouped, one block per unique stack), truncated to maxStallProfile.
func goroutineProfile() string {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	if buf.Len() > maxStallProfile {
		return buf.String()[:maxStallProfile] + "\n(truncated)"
	}
	return buf.String()
}
