// Package obs is Gaea's telemetry substrate: a metrics registry
// (atomic counters, gauges, and fixed-bucket histograms), a request
// tracer (span trees with ring-buffer retention), and a slow-op log.
// It has no dependencies outside the standard library and no
// background goroutines; every instrument is safe for concurrent use
// and every read path is a snapshot, so observing a hot kernel never
// blocks it.
//
// All entry points tolerate nil receivers: a layer handed a nil
// *Registry gets working orphan instruments (counted but never
// reported), and obs.Start over a context with no tracer returns a
// nil span whose methods no-op. Layers therefore instrument
// unconditionally and the wiring decides what is observed.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load reads the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load reads the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets is the default histogram bucket layout for durations,
// in nanoseconds: 1µs to ~67s, doubling.
var LatencyBuckets = expBuckets(1_000, 27)

// SizeBuckets is the default layout for byte sizes: 64 B to 1 GiB,
// doubling.
var SizeBuckets = expBuckets(64, 25)

func expBuckets(base int64, n int) []int64 {
	b := make([]int64, n)
	v := base
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. The
// bucket layout is chosen at registration; Observe is lock-free.
type Histogram struct {
	bounds []int64 // ascending upper bounds; one overflow bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start — the usual
// call on a latency histogram.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// Count reports how many values have been observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket
// counts: the upper bound of the bucket holding the q-th observation,
// clamped to the observed maximum. Zero observations yield zero.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().quantile(q)
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	// Le is the bucket's inclusive upper bound (0 on the overflow
	// bucket, whose bound is +inf).
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	P50     int64         `json:"p50"`
	P99     int64         `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent Observes may land between
// the bucket reads — the snapshot is consistent enough for reporting,
// never for accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(0) // overflow bucket
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, N: n})
	}
	s.P50 = s.quantile(0.50)
	s.P99 = s.quantile(0.99)
	return s
}

func (s HistogramSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= rank {
			if b.Le == 0 || b.Le > s.Max { // overflow bucket, or bound past max
				return s.Max
			}
			return b.Le
		}
	}
	return s.Max
}

// Registry names and holds instruments. Instruments are get-or-create:
// the first caller of a name mints it, later callers share it, so
// layers can register independently without wiring order. A nil
// registry yields working orphan instruments.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, minting it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named settable gauge, minting it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a computed gauge: fn is evaluated at snapshot
// time. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named latency histogram (nanosecond buckets),
// minting it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, LatencyBuckets)
}

// SizeHistogram returns the named byte-size histogram.
func (r *Registry) SizeHistogram(name string) *Histogram {
	return r.histogram(name, SizeBuckets)
}

func (r *Registry) histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of every instrument in a
// registry, JSON-encodable for the wire and the debug endpoint.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Computed gauges are evaluated here, so
// a function that takes locks contends only with snapshot readers.
func (r *Registry) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for n, f := range r.gaugeFns {
		fns[n] = f
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()
	for n, c := range counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Load()
	}
	for n, f := range fns { // outside r.mu: fn may take foreign locks
		s.Gauges[n] = f()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteText renders the snapshot as sorted `name value` lines, with
// histograms expanded to count/sum/max and the estimated quantiles —
// the /metrics wire format.
func (s MetricsSnapshot) WriteText(w io.Writer) {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+5*len(s.Histograms))
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d\n", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d\n", n, v))
	}
	for n, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d\n", n, h.Count),
			fmt.Sprintf("%s_sum %d\n", n, h.Sum),
			fmt.Sprintf("%s_max %d\n", n, h.Max),
			fmt.Sprintf("%s_p50 %d\n", n, h.P50),
			fmt.Sprintf("%s_p99 %d\n", n, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		io.WriteString(w, l)
	}
}
