package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's span list; spans past the cap
// are counted but not retained, so a runaway fan-out cannot hold the
// tracer's memory.
const maxSpansPerTrace = 512

// Locally-minted root traces are admitted through a token bucket:
// traceBurst traces immediately, refilled at traceRate per second.
// Below that rate every request is traced and the slow-op log is
// complete; above it (bulk loads, benchmarks) the excess skips span
// construction entirely, so tracing never taxes a hot path by more
// than the budget. Remote-stamped traces bypass the bucket — the
// caller already decided to trace. These are the defaults; a tracer's
// bucket is tunable with SetSampling.
const (
	traceRate  = 512 // sampled root traces per second
	traceBurst = 512
)

// Tracer assembles spans into traces and retains the most recent ones
// in a ring, plus a second ring of "slow ops": traces whose root span
// exceeded the configured threshold. One tracer serves a whole kernel
// (or a whole client); it allocates only while a trace is open.
type Tracer struct {
	thresh atomic.Int64 // slow-op threshold, ns; 0 disables the slow log

	tokens     atomic.Int64 // remaining local-trace budget
	lastRefill atomic.Int64 // unix nanos of the last bucket refill
	misses     atomic.Int64 // admit rejections since the last refill try
	rate       atomic.Int64 // bucket refill per second (default traceRate)
	burst      atomic.Int64 // bucket capacity (default traceBurst)

	mu      sync.Mutex
	ring    []*trace // completed traces, oldest overwritten
	pos     int
	slow    []*trace
	slowPos int
	open    map[*trace]struct{} // un-Ended root traces (stall watchdog input)
}

// NewTracer builds a tracer retaining the last `ring` completed traces
// (0 = 64) and the last `slowRing` slow ops (0 = 32). Traces whose
// root span runs at least slowThreshold land in the slow-op log
// (0 disables it).
func NewTracer(slowThreshold time.Duration, ring, slowRing int) *Tracer {
	if ring <= 0 {
		ring = 64
	}
	if slowRing <= 0 {
		slowRing = 32
	}
	t := &Tracer{ring: make([]*trace, 0, ring), slow: make([]*trace, 0, slowRing),
		open: make(map[*trace]struct{})}
	t.thresh.Store(int64(slowThreshold))
	t.rate.Store(traceRate)
	t.burst.Store(traceBurst)
	t.tokens.Store(traceBurst)
	t.lastRefill.Store(time.Now().UnixNano())
	return t
}

// SetSampling replaces the local-trace sampling token bucket: up to
// burst traces admitted immediately, refilled at rate per second.
// Zero or negative arguments keep the corresponding current value
// (the defaults are 512/512). Changing the burst refills the bucket.
func (t *Tracer) SetSampling(rate, burst int) {
	if t == nil {
		return
	}
	if rate > 0 {
		t.rate.Store(int64(rate))
	}
	if burst > 0 {
		t.burst.Store(int64(burst))
		t.tokens.Store(int64(burst))
	}
}

// admit decides whether to open one more locally-minted trace. The
// fast paths are a lone CAS (tokens left) or a counter bump (bucket
// empty): time is consulted only every 64th rejection, so a saturated
// workload pays a few atomics per query, not a clock read. Sampling is
// approximate by design — races here cost at most a trace.
func (t *Tracer) admit() bool {
	for {
		if cur := t.tokens.Load(); cur > 0 {
			if t.tokens.CompareAndSwap(cur, cur-1) {
				return true
			}
			continue
		}
		if t.misses.Add(1)&63 != 0 {
			return false
		}
		now := time.Now().UnixNano()
		last := t.lastRefill.Load()
		add := (now - last) * t.rate.Load() / int64(time.Second)
		if add <= 0 {
			return false
		}
		if burst := t.burst.Load(); add > burst {
			add = burst
		}
		if !t.lastRefill.CompareAndSwap(last, now) {
			continue // another goroutine refilled; recheck the bucket
		}
		t.tokens.Store(add - 1)
		return true
	}
}

// SetSlowThreshold replaces the slow-op threshold (0 disables).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.thresh.Store(int64(d))
	}
}

// SlowThreshold reads the current slow-op threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.thresh.Load())
}

// trace accumulates the spans of one request tree. The root span and a
// small span array live inline so that opening a typical trace costs a
// single allocation — the tracer sits on every kernel query, so this
// path is hot.
type trace struct {
	tracer *Tracer
	id     uint64

	mu      sync.Mutex
	spans   []*Span
	inline  [4]*Span // backing array for spans while the trace is small
	dropped int
	root    Span
	done    bool
}

// Span is one timed operation inside a trace. Spans are created by
// Start and closed by End; a nil span (tracing disabled) no-ops.
type Span struct {
	tr          *trace
	id          uint64
	parent      uint64
	name        string
	start       time.Time
	end         time.Time // zero while open; guarded by tr.mu
	attrs       []Attr    // guarded by tr.mu; starts on inlineAttrs
	inlineAttrs [2]Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
	remoteKey
	remoteParentKey
)

// WithTracer returns a context whose Start calls record into t. The
// kernel installs its tracer on every request context; a client
// installs its own on dialled connections.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer installed on the context, if any. The
// kernel uses it to install its own tracer only when the caller has not
// already chosen one.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRemoteTrace marks the context as a continuation of a trace that
// started in another process: the next root span started under it
// adopts id instead of minting a fresh trace ID, so the client's and
// the server's span trees share one identity.
func WithRemoteTrace(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, id)
}

// WithRemoteParent records the caller's span ID alongside an adopted
// remote trace: the next root span started under the context parents
// itself under that span instead of the trace root. A relaying hop (the
// federation router) stamps its own span ID here so a merged
// cross-process trace renders client→router→shard as three levels.
// Meaningful only together with WithRemoteTrace; 0 is a no-op.
func WithRemoteParent(ctx context.Context, span uint64) context.Context {
	if span == 0 {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey, span)
}

// TraceID reports the trace identity of the active span, or 0 when the
// context carries none — the value a client puts on the wire.
func TraceID(ctx context.Context) uint64 {
	if s, _ := ctx.Value(spanKey).(*Span); s != nil && s.tr != nil {
		return s.tr.id
	}
	return 0
}

// SpanID reports the identity of the active span, or 0 when the context
// carries none — the value a client puts on the wire as the remote
// parent so the callee's spans nest under the caller's.
func SpanID(ctx context.Context) uint64 {
	if s, _ := ctx.Value(spanKey).(*Span); s != nil && s.tr != nil {
		return s.id
	}
	return 0
}

// suppressed marks a context whose root trace was sampled out: child
// Start calls find it and no-op instead of minting fragment traces.
var suppressed Span

// Start opens a span named name. Under an active span it opens a
// child; otherwise, if the context carries a tracer, it opens a new
// trace (adopting a WithRemoteTrace identity when present). With
// neither it returns (ctx, nil), and the nil span's methods no-op —
// callers never branch on whether tracing is live.
//
// A new local trace is subject to the tracer's sampling budget; when
// the budget rejects it, Start marks the context so the whole request
// subtree skips span construction.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return StartWith(ctx, nil, name)
}

// StartWith is Start with a fallback tracer: when the context carries
// neither an active span nor a tracer of its own, the new trace opens
// under t. Hot kernel entry points hold their tracer directly and use
// this to skip installing it on every request context.
func StartWith(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		if parent.tr == nil {
			return ctx, nil // inside a sampled-out subtree
		}
		s := &Span{tr: parent.tr, id: newID(), parent: parent.id, name: name, start: time.Now()}
		parent.tr.add(s)
		return context.WithValue(ctx, spanKey, s), s
	}
	fromCtx := false
	if ct, _ := ctx.Value(tracerKey).(*Tracer); ct != nil {
		t, fromCtx = ct, true
	}
	if t == nil {
		return ctx, nil
	}
	id, _ := ctx.Value(remoteKey).(uint64)
	spanID := id
	var rootParent uint64
	if id == 0 {
		if !t.admit() {
			// Mark the subtree suppressed only when descendants could
			// reach the tracer through the context and mint fragment
			// traces; with an explicit fallback tracer they cannot, and
			// the rejected hot path stays allocation-free.
			if fromCtx {
				return context.WithValue(ctx, spanKey, &suppressed), nil
			}
			return ctx, nil
		}
		id = newID()
		spanID = id
	} else {
		// An adopted trace must NOT reuse the trace ID as its root span
		// ID: the originating process's root already did, and merged
		// cross-process trees would see two spans with one identity. The
		// remote parent (the caller's span, when stamped) threads the
		// adopted root under the caller's tree once traces are merged.
		spanID = newID()
		rootParent, _ = ctx.Value(remoteParentKey).(uint64)
	}
	// One allocation opens the trace: the root span and the initial span
	// array are inline, and a locally-minted root reuses the trace ID as
	// its span ID.
	tr := &trace{tracer: t, id: id}
	s := &tr.root
	*s = Span{tr: tr, id: spanID, parent: rootParent, name: name, start: time.Now()}
	tr.spans = append(tr.inline[:0], s)
	t.trackOpen(tr)
	return context.WithValue(ctx, spanKey, s), s
}

// trackOpen registers a freshly-opened root trace for the stall
// watchdog; record drops it on completion. Root opens are bounded by
// the sampling bucket (plus remote-stamped requests), so this lock is
// never on an unsampled hot path.
func (t *Tracer) trackOpen(tr *trace) {
	t.mu.Lock()
	t.open[tr] = struct{}{}
	t.mu.Unlock()
}

// newID mints a process-unique random 64-bit identifier (never 0).
func newID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

func (tr *trace) add(s *Span) {
	tr.mu.Lock()
	if len(tr.spans) < maxSpansPerTrace {
		tr.spans = append(tr.spans, s)
	} else {
		tr.dropped++
	}
	tr.mu.Unlock()
}

// TraceID reports the identity of the trace this span belongs to (0 on
// a nil span) — the value a client puts on the wire when the request it
// is about to send belongs to this span.
func (s *Span) TraceID() uint64 {
	if s == nil || s.tr == nil {
		return 0
	}
	return s.tr.id
}

// SpanID reports this span's own identity (0 on a nil span) — the value
// a client puts on the wire as the remote parent.
func (s *Span) SpanID() uint64 {
	if s == nil || s.tr == nil {
		return 0
	}
	return s.id
}

// Annotate attaches a key/value pair to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = s.inlineAttrs[:0]
	}
	s.attrs = append(s.attrs, Attr{K: key, V: value})
	s.tr.mu.Unlock()
}

// End closes the span. Closing a trace's root span completes the
// trace: it enters the recent ring and, if it ran past the slow-op
// threshold, the slow-op log. Child spans still open when the root
// ends (stragglers) keep recording into the completed trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	tr := s.tr
	tr.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	complete := s == &tr.root && !tr.done
	if complete {
		tr.done = true
	}
	tr.mu.Unlock()
	if complete {
		tr.tracer.record(tr, now.Sub(s.start))
	}
}

func (t *Tracer) record(tr *trace, rootDur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.open, tr)
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.pos] = tr
		t.pos = (t.pos + 1) % cap(t.ring)
	}
	if th := t.thresh.Load(); th > 0 && rootDur >= time.Duration(th) {
		if len(t.slow) < cap(t.slow) {
			t.slow = append(t.slow, tr)
		} else {
			t.slow[t.slowPos] = tr
			t.slowPos = (t.slowPos + 1) % cap(t.slow)
		}
	}
}

// SpanData is the exported form of one span.
type SpanData struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  int64  `json:"start"` // unix nanoseconds
	Dur    int64  `json:"dur"`   // nanoseconds; 0 while still open
	Attrs  []Attr `json:"attrs,omitempty"`
}

// TraceData is the exported form of one trace: its spans in start
// order plus the root's timing.
type TraceData struct {
	ID      uint64     `json:"id"`
	Root    string     `json:"root"`
	Start   int64      `json:"start"`
	Dur     int64      `json:"dur"`
	Dropped int        `json:"dropped,omitempty"`
	Spans   []SpanData `json:"spans"`
}

func (tr *trace) export() TraceData {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d := TraceData{ID: tr.id, Dropped: tr.dropped, Spans: make([]SpanData, 0, len(tr.spans)),
		Root: tr.root.name, Start: tr.root.start.UnixNano()}
	if !tr.root.end.IsZero() {
		d.Dur = int64(tr.root.end.Sub(tr.root.start))
	}
	for _, s := range tr.spans {
		sd := SpanData{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start.UnixNano()}
		if !s.end.IsZero() {
			sd.Dur = int64(s.end.Sub(s.start))
		}
		if len(s.attrs) > 0 {
			sd.Attrs = append([]Attr(nil), s.attrs...)
		}
		d.Spans = append(d.Spans, sd)
	}
	sort.SliceStable(d.Spans, func(i, j int) bool { return d.Spans[i].Start < d.Spans[j].Start })
	return d
}

// Recent exports the retained completed traces, newest first.
func (t *Tracer) Recent() []TraceData {
	return t.exportRing(func(t *Tracer) ([]*trace, int) { return t.ring, t.pos })
}

// Slow exports the slow-op log, newest first.
func (t *Tracer) Slow() []TraceData {
	return t.exportRing(func(t *Tracer) ([]*trace, int) { return t.slow, t.slowPos })
}

func (t *Tracer) exportRing(pick func(*Tracer) ([]*trace, int)) []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ring, pos := pick(t)
	ordered := make([]*trace, 0, len(ring))
	// The ring is oldest-first from pos; walk backwards for newest-first.
	for i := len(ring) - 1; i >= 0; i-- {
		ordered = append(ordered, ring[(pos+i)%len(ring)])
	}
	t.mu.Unlock()
	out := make([]TraceData, 0, len(ordered))
	for _, tr := range ordered {
		out = append(out, tr.export())
	}
	return out
}

// OpenOp describes one root span still open: a request in flight, or
// — when its age exceeds the watchdog threshold — a stalled one.
type OpenOp struct {
	TraceID uint64    `json:"trace"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
}

// OpenOps lists the root spans currently open, oldest first. Root
// name and start are written once before the trace is published, so
// they are safe to read outside the trace lock.
func (t *Tracer) OpenOps() []OpenOp {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]OpenOp, 0, len(t.open))
	for tr := range t.open {
		out = append(out, OpenOp{TraceID: tr.id, Name: tr.root.name, Start: tr.root.start})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Find exports the retained trace with the given ID, if present.
func (t *Tracer) Find(id uint64) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	var found *trace
	for _, tr := range t.ring {
		if tr.id == id {
			found = tr
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return TraceData{}, false
	}
	return found.export(), true
}

// Format renders the trace as an indented span tree for the CLI and
// the /traces endpoint's text form.
func (d TraceData) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x %s %v\n", d.ID, d.Root, time.Duration(d.Dur).Round(time.Microsecond))
	ids := map[uint64]bool{}
	for _, s := range d.Spans {
		ids[s.ID] = true
	}
	children := map[uint64][]SpanData{}
	for _, s := range d.Spans {
		parent := s.Parent
		if !ids[parent] {
			// An adopted root's parent lives in another process's trace;
			// when that trace is absent (rendering one process alone, or a
			// shard without its router), treat the span as a local root so
			// the tree never renders empty.
			parent = 0
		}
		children[parent] = append(children[parent], s)
	}
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range children[parent] {
			fmt.Fprintf(&b, "%s%s %v", strings.Repeat("  ", depth), s.Name, time.Duration(s.Dur).Round(time.Microsecond))
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, " %s=%s", a.K, a.V)
			}
			b.WriteByte('\n')
			walk(s.ID, depth+1)
		}
	}
	walk(0, 1)
	if d.Dropped > 0 {
		fmt.Fprintf(&b, "  (+%d spans dropped)\n", d.Dropped)
	}
	return b.String()
}
