// Package wire defines the Gaea client/server protocol: length-prefixed
// gob frames carrying typed requests and responses over a TCP or unix
// stream.
//
// Framing. Every message is one frame: a 4-byte big-endian payload
// length followed by a standalone gob blob. Each frame is encoded with a
// fresh gob stream, so frames are self-contained — a reader can resync
// at any frame boundary, a reconnecting client starts clean, and a
// malformed peer can be cut off after one bounded read (frames larger
// than the configured maximum are refused before allocation).
//
// The protocol is strictly request/response: the client sends one
// Request frame and reads one Response frame. There is no server push
// and no interleaving, which keeps one connection usable by a simple
// mutex-guarded client and makes server shutdown draining trivial
// (every in-flight unit of work is one request). Streaming queries are
// served as pages: each page is one round trip, and the epoch-carrying
// cursor in the response lets the next page — on this connection or any
// later one — resume the exact MVCC snapshot.
//
// Errors cross the wire as a Code plus the server-side error text. Codes
// map 1:1 onto the public error taxonomy (gaea.ErrNotFound, ErrConflict,
// …), so a remote caller branches with errors.Is exactly like an
// embedded one.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"gaea/internal/catalog"
	"gaea/internal/concept"
	"gaea/internal/experiment"
	"gaea/internal/object"
	"gaea/internal/petri"
	"gaea/internal/process"
	"gaea/internal/query"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/task"
	"gaea/internal/value"
)

// DefaultMaxFrame bounds a single frame (64 MiB — enough for a page of
// image-carrying objects, small enough to refuse a garbage length
// prefix before allocating).
const DefaultMaxFrame = 64 << 20

// ErrFrameTooLarge is returned when a peer announces a frame above the
// configured maximum.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// v1BufPool recycles the scratch buffers WriteFrame and ReadFrame used
// to allocate per frame: the gob encoder still allocates its own state,
// but the frame-sized buffer churn — the dominant allocation for large
// pages — is gone, and a frame goes out in ONE write (header and body
// together) instead of two.
var v1BufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledV1Buf bounds what the pool retains; outsized page buffers are
// left to the GC rather than parked forever.
const maxPooledV1Buf = 1 << 20

// WriteFrame gob-encodes msg and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, msg any) error {
	buf := v1BufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooledV1Buf {
			v1BufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length prefix, patched below
	if err := gob.NewEncoder(buf).Encode(msg); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	b := buf.Bytes()
	if int64(len(b)-4) > math.MaxUint32 {
		// The length prefix is 32-bit; silently truncating it would
		// desynchronise the stream.
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(b)-4)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// v1ReadPool recycles ReadFrame's body buffers.
var v1ReadPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// ReadFrame reads one length-prefixed frame and gob-decodes it into msg.
// maxFrame <= 0 takes DefaultMaxFrame.
func ReadFrame(r io.Reader, maxFrame int, msg any) error {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	// Compare in 64 bits: on 32-bit platforms int(n) can wrap negative
	// for a hostile length prefix and slip past the bound.
	if int64(n) > int64(maxFrame) {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	bp := v1ReadPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	defer func() {
		if cap(*bp) <= maxPooledV1Buf {
			v1ReadPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	// gob copies everything it decodes, so the pooled buffer is free for
	// reuse the moment Decode returns.
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(msg); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// Op names a request type.
type Op uint8

// The protocol operations.
const (
	OpHello        Op = iota + 1 // handshake: register the connection's user
	OpBegin                      // fetch the current commit epoch for a session's read view
	OpStats                      // kernel + server counters
	OpQuery                      // buffered query (Kernel.Query)
	OpStream                     // one page of a streaming query (cursor resume)
	OpCommit                     // a whole staged session in one round trip
	OpSnapOpen                   // pin a snapshot under a server-side lease
	OpSnapGet                    // Snapshot.Get
	OpSnapQuery                  // Snapshot.Query (retrieve-only)
	OpSnapStream                 // one page of a snapshot stream
	OpSnapRelease                // release a snapshot lease
	OpLease                      // lease-pin a cursor epoch (client-synthesised resume points)
	OpStale                      // list stale OIDs
	OpRefresh                    // RefreshStale
	OpExplain                    // derivation history of an object
	OpExplainQuery               // query preview
	OpPrepare                    // 2PC phase one: validate + stage a session batch under a txn token
	OpDecide                     // 2PC phase two: commit (Epoch=1) or abort (Epoch=0) a prepared txn
)

// String names the op for logs and errors.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpBegin:
		return "begin"
	case OpStats:
		return "stats"
	case OpQuery:
		return "query"
	case OpStream:
		return "stream"
	case OpCommit:
		return "commit"
	case OpSnapOpen:
		return "snap-open"
	case OpSnapGet:
		return "snap-get"
	case OpSnapQuery:
		return "snap-query"
	case OpSnapStream:
		return "snap-stream"
	case OpSnapRelease:
		return "snap-release"
	case OpLease:
		return "lease"
	case OpStale:
		return "stale"
	case OpRefresh:
		return "refresh"
	case OpExplain:
		return "explain"
	case OpExplainQuery:
		return "explain-query"
	case OpPrepare:
		return "prepare"
	case OpDecide:
		return "decide"
	case OpStreamPush:
		return "stream-push"
	case OpSubscribeStats:
		return "subscribe-stats"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Code is a wire error code, mapped 1:1 onto the public error taxonomy.
type Code uint8

// The codes. CodeOK marks a successful response; everything else maps to
// one public sentinel on the client side.
const (
	CodeOK           Code = iota
	CodeNotFound          // gaea.ErrNotFound
	CodeClassUnknown      // gaea.ErrClassUnknown
	CodeNoPlan            // gaea.ErrNoPlan
	CodeStale             // gaea.ErrStale
	CodeConflict          // gaea.ErrConflict
	CodeSnapshotGone      // gaea.ErrSnapshotGone (includes expired leases)
	CodeClosed            // gaea.ErrClosed
	CodeBadRequest        // malformed request (query validation, bad cursor)
	CodeCanceled          // the request context was cancelled server-side
	CodeUnavailable       // server shutting down or connection limit reached
	CodeInternal          // anything unclassified
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeNotFound:
		return "not-found"
	case CodeClassUnknown:
		return "class-unknown"
	case CodeNoPlan:
		return "no-plan"
	case CodeStale:
		return "stale"
	case CodeConflict:
		return "conflict"
	case CodeSnapshotGone:
		return "snapshot-gone"
	case CodeClosed:
		return "closed"
	case CodeBadRequest:
		return "bad-request"
	case CodeCanceled:
		return "canceled"
	case CodeUnavailable:
		return "unavailable"
	case CodeInternal:
		return "internal"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// CodeFor classifies an error against the internal sentinels that the
// kernel's public classification wraps (the internal cause always stays
// in the chain, so matching the internal sentinels catches errors
// classified at the gaea layer too). Order matters exactly as in the
// public taxonomy: the most specific cause wins. The server layers its
// own checks (gaea.ErrClosed, shutdown) on top before falling back here.
func CodeFor(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return CodeCanceled
	case errors.Is(err, object.ErrSnapshotGone):
		return CodeSnapshotGone
	case errors.Is(err, object.ErrConflict):
		return CodeConflict
	case errors.Is(err, task.ErrStaleInput):
		return CodeStale
	case errors.Is(err, catalog.ErrClassNotFound):
		return CodeClassUnknown
	case errors.Is(err, petri.ErrNoPlan), errors.Is(err, query.ErrUnsatisfied):
		return CodeNoPlan
	case errors.Is(err, object.ErrNotFound),
		errors.Is(err, task.ErrTaskNotFound),
		errors.Is(err, process.ErrProcessNotFound),
		errors.Is(err, concept.ErrNotFound),
		errors.Is(err, experiment.ErrNotFound),
		errors.Is(err, storage.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, query.ErrBadRequest), errors.Is(err, object.ErrBadAttr):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// ProvisionalBit marks OIDs a remote session assigns at stage time:
// real OIDs are reserved server-side at Commit (one round trip for the
// whole session), so Create returns a placeholder the client maps to the
// real OID afterwards. Staged updates and deletes may reference
// provisional OIDs; the server remaps them before applying. Stored OIDs
// are dense small integers, so the top bit is unambiguous.
const ProvisionalBit uint64 = 1 << 63

// IsProvisional reports whether an OID is a remote-session placeholder.
func IsProvisional(oid object.OID) bool { return uint64(oid)&ProvisionalBit != 0 }

// Object is the wire form of an object.Object: attribute values travel
// in the storage codec's binary form (value.Encode), which round-trips
// every ADT — including images and matrices — exactly.
type Object struct {
	OID    uint64
	Class  string
	Attrs  map[string][]byte
	Extent sptemp.Extent
}

// FromObject converts a kernel object to its wire form.
func FromObject(o *object.Object) (Object, error) {
	w := Object{OID: uint64(o.OID), Class: o.Class, Extent: o.Extent}
	if len(o.Attrs) > 0 {
		w.Attrs = make(map[string][]byte, len(o.Attrs))
		for name, v := range o.Attrs {
			enc, err := value.Encode(v)
			if err != nil {
				return Object{}, fmt.Errorf("wire: attribute %q: %w", name, err)
			}
			w.Attrs[name] = enc
		}
	}
	return w, nil
}

// ToObject converts a wire object back to a kernel object.
func (w *Object) ToObject() (*object.Object, error) {
	o := &object.Object{OID: object.OID(w.OID), Class: w.Class, Extent: w.Extent}
	if len(w.Attrs) > 0 {
		o.Attrs = make(map[string]value.Value, len(w.Attrs))
		for name, enc := range w.Attrs {
			v, err := value.Decode(enc)
			if err != nil {
				return nil, fmt.Errorf("wire: attribute %q: %w", name, err)
			}
			o.Attrs[name] = v
		}
	}
	return o, nil
}

// ObjectSize approximates an object's encoded footprint (attribute
// payloads dominate; the fixed overhead term covers the rest). The
// service layer budgets stream pages with it so image-heavy classes
// page by bytes, not just by count.
func ObjectSize(w *Object) int {
	size := 96 + len(w.Class)
	for name, enc := range w.Attrs {
		size += len(name) + len(enc) + 16
	}
	return size
}

// QueryReq is the wire form of a query.Request. The user is connection
// state (set at Hello), not request state.
type QueryReq struct {
	Class       string
	Concept     string
	Pred        sptemp.Extent
	Strategies  []string
	Limit       int
	Cursor      string
	Parallelism int
}

// FromQuery converts a kernel request to its wire form.
func FromQuery(req query.Request) QueryReq {
	w := QueryReq{
		Class:       req.Class,
		Concept:     req.Concept,
		Pred:        req.Pred,
		Limit:       req.Limit,
		Cursor:      req.Cursor,
		Parallelism: req.Parallelism,
	}
	for _, s := range req.Strategies {
		w.Strategies = append(w.Strategies, string(s))
	}
	return w
}

// ToQuery converts a wire request back to a kernel request, tagging it
// with the connection's user.
func (w *QueryReq) ToQuery(user string) query.Request {
	req := query.Request{
		Class:       w.Class,
		Concept:     w.Concept,
		Pred:        w.Pred,
		User:        user,
		Limit:       w.Limit,
		Cursor:      w.Cursor,
		Parallelism: w.Parallelism,
	}
	for _, s := range w.Strategies {
		req.Strategies = append(req.Strategies, query.Strategy(s))
	}
	return req
}

// Create is one staged create in a session batch.
type Create struct {
	// Prov is the provisional OID the client assigned at stage time; the
	// response's OIDs slice reports the real OID at the same index.
	Prov uint64
	Obj  Object
	Note string
}

// BatchReq carries a whole staged remote session in one round trip.
// Updates and Deletes may reference provisional OIDs of Creates in the
// same batch.
type BatchReq struct {
	Creates []Create
	Updates []Object
	Deletes []uint64
	// ReadEpoch is the MVCC epoch the client captured at Begin: the
	// server-side session validates first-committer-wins against it,
	// exactly like an embedded session. 0 falls back to the epoch at
	// replay time (no cross-staging conflict detection).
	ReadEpoch uint64
}

// Request is one client frame.
type Request struct {
	Op    Op
	User  string    // OpHello
	Query *QueryReq // OpQuery, OpStream, OpSnapQuery, OpSnapStream, OpExplainQuery
	Batch *BatchReq // OpCommit
	Lease uint64    // OpSnapGet/Query/Stream/Release; OpStreamPush (snapshot mode)
	OID   uint64    // OpSnapGet, OpExplain
	Epoch uint64    // OpLease: the cursor epoch to keep pinned
	// Window is the initial page-credit window for OpStreamPush (v2
	// only): the server never has more un-credited pages in flight.
	Window int
	// Page is the client's per-page object-count preference for
	// OpStreamPush (v2 only; the server caps it at its own page size).
	// Query.Limit is the TOTAL limit across the whole stream.
	Page int

	// trace is the client's trace identity, propagated so the server's
	// span tree shares the caller's trace ID. It is deliberately
	// unexported: gob never sees unexported fields, so v1 request frames
	// stay byte-for-byte identical whether or not tracing is on — only
	// the v2 binary codec carries it, under its own mask bit.
	trace uint64
	// parent is the caller's span ID within trace, so a relaying hop
	// (the federation router) can parent the server's spans under its
	// own span instead of the trace root — that is what renders the
	// client→router→shard tree as three levels rather than two. Carried
	// only when trace is set; 0 means "parent under the trace root",
	// which is exactly the pre-federation behaviour.
	parent uint64
}

// SetTrace stamps the request with the caller's trace identity
// (0 clears it; v1 frames never carry it).
func (r *Request) SetTrace(id uint64) { r.trace = id }

// TraceID reports the propagated trace identity (0 = untraced).
func (r *Request) TraceID() uint64 { return r.trace }

// SetParentSpan stamps the caller's span ID (meaningful only alongside
// SetTrace; relaying hops use it to deepen the remote span tree).
func (r *Request) SetParentSpan(id uint64) { r.parent = id }

// ParentSpan reports the propagated parent span (0 = trace root).
func (r *Request) ParentSpan() uint64 { return r.parent }

// ResultPayload is the wire form of a query.Result.
type ResultPayload struct {
	OIDs     []uint64
	How      []string
	Stale    []bool
	TasksRun []uint64
	PlanText string
	Epoch    uint64
}

// FromResult converts a kernel result to its wire form.
func FromResult(res *query.Result) *ResultPayload {
	p := &ResultPayload{PlanText: res.PlanText, Epoch: res.Epoch, Stale: res.Stale}
	for _, oid := range res.OIDs {
		p.OIDs = append(p.OIDs, uint64(oid))
	}
	for _, h := range res.How {
		p.How = append(p.How, string(h))
	}
	for _, t := range res.TasksRun {
		p.TasksRun = append(p.TasksRun, uint64(t))
	}
	return p
}

// ToResult converts a wire payload back to a kernel result.
func (p *ResultPayload) ToResult() *query.Result {
	res := &query.Result{PlanText: p.PlanText, Epoch: p.Epoch, Stale: p.Stale}
	for _, oid := range p.OIDs {
		res.OIDs = append(res.OIDs, object.OID(oid))
	}
	for _, h := range p.How {
		res.How = append(res.How, query.Strategy(h))
	}
	for _, t := range p.TasksRun {
		res.TasksRun = append(res.TasksRun, task.ID(t))
	}
	return res
}

// StatsPayload reports kernel stats plus the server's own counters.
type StatsPayload struct {
	// Kernel is the kernel's Stats() line.
	Kernel string
	// OpenConns is the number of currently accepted connections.
	OpenConns int64
	// ActiveSessions counts in-flight session commits.
	ActiveSessions int64
	// ActiveStreams counts in-flight stream page requests.
	ActiveStreams int64
	// ActiveLeases counts live snapshot/cursor leases (pinned epochs).
	ActiveLeases int64
	// LeaseExpiries counts leases the janitor expired since start —
	// abandoned clients whose pins were reclaimed.
	LeaseExpiries int64
	// InFlight counts requests currently executing across all
	// connections (v2 multiplexing admits many per connection).
	InFlight int64
	// MaxInFlightPerConn is the high-water mark of concurrent requests
	// observed on any single connection since start.
	MaxInFlightPerConn int64
	// PushedPages counts v2 server-push stream pages sent since start.
	PushedPages int64
	// BytesAvoided counts bytes shipped verbatim from storage on the v2
	// raw path — bytes that v1 would have decoded and re-encoded.
	BytesAvoided int64
	// ObsJSON carries the kernel's full observability export — the
	// structured stats snapshot, recent traces, and the slow-op log — as
	// one JSON blob (gaea.ObsExport). JSON keeps the wire layer ignorant
	// of the snapshot's shape: new instruments never touch the codec.
	// Absent from old peers; String() ignores it, so the stats verb's
	// output is unchanged.
	ObsJSON []byte
}

// String renders the combined stats line the CLI prints.
func (s *StatsPayload) String() string {
	return fmt.Sprintf("%s server[conns=%d sessions=%d streams=%d leases=%d lease_expiries=%d inflight=%d max_inflight_conn=%d pushed_pages=%d bytes_avoided=%d]",
		s.Kernel, s.OpenConns, s.ActiveSessions, s.ActiveStreams, s.ActiveLeases, s.LeaseExpiries,
		s.InFlight, s.MaxInFlightPerConn, s.PushedPages, s.BytesAvoided)
}

// Response is one server frame.
type Response struct {
	Code Code
	Err  string // server-side error text (Code != CodeOK)

	Result  *ResultPayload // OpQuery, OpSnapQuery
	Objects []Object       // OpStream, OpSnapStream pages; OpSnapGet (one)
	Cursor  string         // OpStream, OpSnapStream: resume token ("" = exhausted)
	Epoch   uint64         // OpSnapOpen, stream pages: the pinned snapshot epoch
	Lease   uint64         // OpSnapOpen: lease id
	OIDs    []uint64       // OpCommit: real OIDs (parallel to Creates); OpStale
	N       int            // OpRefresh: refreshed count
	Text    string         // OpExplain, OpExplainQuery
	Stats   *StatsPayload  // OpStats
	// Raw carries OpSnapGet's object as stored record bytes on the v2
	// zero-copy path (decode with object.DecodeWire); v1 never sets it.
	Raw *RawObject
}
