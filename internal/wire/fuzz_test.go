package wire

// Native fuzz targets for the v2 codec. The decoders face
// attacker-controlled bytes directly off the socket, so the properties
// fuzzed here are the protocol's safety net:
//
//   - no decoder panics or over-allocates on arbitrary bytes (truncation
//     and corruption surface as errors);
//   - decode → encode → decode converges: anything a decoder accepts,
//     the encoder reproduces in decodable form;
//   - the frame reader never over-reads and honors its size bound.
//
// Seed corpora live under testdata/fuzz/ and are generated from the same
// golden encoders the round-trip tests use; regenerate with
// GAEA_REGEN_CORPUS=1 go test ./internal/wire -run TestSeedCorpus.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"gaea/internal/object"
	"gaea/internal/sptemp"
)

// fuzzSeedBodies builds the golden frame bodies used both as f.Add seeds
// and as the committed seed corpus.
func fuzzSeedBodies() [][]byte {
	var seeds [][]byte
	add := func(ft byte, enc func(f *Frame)) {
		f := AcquireFrame(ft, 7)
		defer ReleaseFrame(f)
		enc(f)
		b, err := f.Finish()
		if err != nil {
			panic(err)
		}
		// Strip len(4) + type(1) + id uvarint to get the bare body.
		_, n := uvarintAt(b, 5)
		seeds = append(seeds, append([]byte(nil), b[5+n:]...))
	}

	add(F2Hello, func(f *Frame) { EncodeHello(f, &Hello2{Version: V2Version, User: "ana"}) })
	add(F2Req, func(f *Frame) {
		EncodeRequest(f, &Request{
			Op:   1,
			User: "ana",
			OID:  9,
			Query: &QueryReq{
				Class:      "rainfall",
				Concept:    "monthly",
				Strategies: []string{"retrieve", "derive"},
				Limit:      10,
				Cursor:     "c2|1|rainfall|5",
				Pred: sptemp.Extent{
					Frame: sptemp.Frame{System: sptemp.RefLongLat, Unit: sptemp.UnitDegree},
					Space: sptemp.Box{MinX: -1, MinY: -2, MaxX: 3, MaxY: 4},
				},
			},
		})
	})
	add(F2Req, func(f *Frame) {
		EncodeRequest(f, &Request{
			Op:   2,
			User: "ana",
			Batch: &BatchReq{
				ReadEpoch: 3,
				Creates: []Create{{
					Prov: 1,
					Note: "seed",
					Obj:  Object{OID: 11, Class: "rainfall", Attrs: map[string][]byte{"v": {1, 2}}},
				}},
				Updates: []Object{{OID: 12, Class: "rainfall"}},
				Deletes: []uint64{13},
			},
		})
	})
	add(F2Resp, func(f *Frame) {
		EncodeResponse(f, &Response{
			Code:   CodeOK,
			Epoch:  5,
			N:      2,
			Cursor: "c2|5|rainfall|9",
			Result: &ResultPayload{
				OIDs:     []uint64{1, 2},
				How:      []string{"retrieve", "derive"},
				Stale:    []bool{false, true},
				TasksRun: []uint64{3},
				PlanText: "plan",
				Epoch:    5,
			},
			Raw: &RawObject{
				Rec:   []byte{9, 9, 9},
				Blobs: []object.BlobPayload{{ID: 1, Data: []byte("blob")}},
			},
		})
	})
	add(F2Resp, func(f *Frame) {
		EncodeResponse(f, &Response{Code: 1, Err: "kernel: no such object"})
	})
	return seeds
}

func FuzzV2Decode(f *testing.F) {
	for _, s := range fuzzSeedBodies() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		// Hello.
		if h, err := DecodeHello(body); err == nil {
			f2 := AcquireFrame(F2Hello, 1)
			EncodeHello(f2, h)
			b, err := f2.Finish()
			ReleaseFrame(f2)
			if err == nil {
				_, n := uvarintAt(b, 5)
				if _, err := DecodeHello(b[5+n:]); err != nil {
					t.Fatalf("hello re-decode: %v", err)
				}
			}
		}

		// Request.
		var req Request
		if err := DecodeRequest(body, &req); err == nil {
			f2 := AcquireFrame(F2Req, 1)
			EncodeRequest(f2, &req)
			b, err := f2.Finish()
			ReleaseFrame(f2)
			if err == nil {
				_, n := uvarintAt(b, 5)
				var req2 Request
				if err := DecodeRequest(b[5+n:], &req2); err != nil {
					t.Fatalf("request re-decode: %v", err)
				}
			}
		}

		// Response.
		if resp, err := DecodeResponse(body); err == nil {
			f2 := AcquireFrame(F2Resp, 1)
			EncodeResponse(f2, resp)
			b, err := f2.Finish()
			ReleaseFrame(f2)
			if err == nil {
				_, n := uvarintAt(b, 5)
				if _, err := DecodeResponse(b[5+n:]); err != nil {
					t.Fatalf("response re-decode: %v", err)
				}
			}
		}

		// Credit, page header, raw object: error-accumulating cursors
		// must simply never panic.
		_, _ = DecodeCredit(body)
		d := NewDec(body)
		_ = DecodePageHeader(d)
		_ = DecodeRawObject(d, true)

		// Frame reader over the raw bytes with a tight bound: must
		// terminate with an error or exhaust the input, never over-read.
		fr := NewFrameReader(bytes.NewReader(body), 1<<16)
		for i := 0; i <= len(body); i++ {
			if _, _, _, err := fr.Next(); err != nil {
				break
			}
		}
	})
}

// TestSeedCorpus verifies the committed seed corpus matches the golden
// encoders (and regenerates it under GAEA_REGEN_CORPUS=1).
func TestSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzV2Decode")
	seeds := fuzzSeedBodies()
	if os.Getenv("GAEA_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("missing seed corpus entry %s (regenerate with GAEA_REGEN_CORPUS=1): %v", name, err)
		}
	}
}
