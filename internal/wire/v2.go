package wire

// Protocol v2: request-ID multiplexed frames with a hand-rolled binary
// codec.
//
// Where v1 is strict request/response with one gob blob per frame, v2
// multiplexes many outstanding requests over one connection and encodes
// everything with varints and length-delimited byte strings — no
// reflection, no per-frame encoder state, pooled frame buffers, so the
// steady-state response path allocates nothing.
//
// Framing:
//
//	len u32 BE | type u8 | requestID uvarint | body
//
// `len` counts everything after the 4-byte prefix. Frame types:
//
//	Hello/HelloAck  handshake (preceded by the 8-byte magic preamble)
//	Req             one request; body = EncodeRequest
//	Resp            completion for a request ID; body = EncodeResponse.
//	                For a streaming request it signals an error end.
//	                ID 0 is connection-level: the peer is refusing the
//	                connection itself (e.g. over the connection limit).
//	Page            one server-push stream page for a request ID
//	Credit          flow control: grants N more pages to a stream
//	Cancel          the client abandons a request/stream
//
// Version negotiation: a v2 client opens with the 8-byte magic
// "GAEAWP2\n". The first byte (0x47) reads as a v1 length prefix of
// ~1.1 GiB — far above any sane frame bound — so a v2-aware server
// sniffs the first 4 bytes: magic → v2 handshake, anything else →
// byte-for-byte the v1 loop. The server echoes the magic before its
// HelloAck, so a v2 client talking to an OLD server (or to a v1-only
// error path, like the connection-limit refusal that is written before
// sniffing) detects the mismatch and falls back to parsing the reply as
// a v1 gob Response.
//
// Flow control: stream pages are server-push, credited in pages. The
// stream request carries the initial window; each Credit frame grants
// more. The server never has more un-credited pages in flight than the
// window, so a slow consumer cannot be buried and the connection's
// other requests never queue behind a stream burst.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"

	"gaea/internal/object"
	"gaea/internal/sptemp"
)

// V2Magic is the 8-byte preamble a v2 client opens with and a v2 server
// echoes back. The first byte can never begin a plausible v1 frame.
const V2Magic = "GAEAWP2\n"

// V2Version is the protocol revision carried in Hello/HelloAck.
const V2Version = 2

// The v2 frame types.
const (
	F2Hello    byte = 1
	F2HelloAck byte = 2
	F2Req      byte = 3
	F2Resp     byte = 4
	F2Page     byte = 5
	F2Credit   byte = 6
	F2Cancel   byte = 7
)

// Page frame flags.
const (
	// PageEnd marks the final page of a stream; its cursor field is the
	// resume token ("" = exhausted).
	PageEnd byte = 1 << 0
	// PageRaw marks a page whose objects travel as stored record bytes
	// (decode with object.DecodeWire) rather than encoded wire Objects.
	PageRaw byte = 1 << 1
	// PageStats marks a SubscribeStats push: the body after the page
	// header is one JSON-encoded stats delta, and the header's epoch
	// field carries the subscriber's next event sequence (resume point).
	PageStats byte = 1 << 2
)

// OpStreamPush starts a v2 server-push stream (Lease != 0 makes it a
// snapshot stream). It never appears in v1 traffic.
const OpStreamPush Op = 32

// OpSubscribeStats starts a v2 server-push stats subscription: the
// server periodically pushes PageStats pages carrying JSON stats/event
// deltas under the same credit window as OpStreamPush. The request
// reuses Window as the initial credit grant, Page as the push period in
// milliseconds (0 = server default), and Epoch as the last event
// sequence the subscriber has already seen (0 = from the start of the
// ring). It never appears in v1 traffic.
const OpSubscribeStats Op = 33

// RawObject is one object shipped as its stored record bytes plus the
// payloads of any image blobs the record references.
type RawObject struct {
	Rec   []byte
	Blobs []object.BlobPayload
}

// Size approximates the raw object's frame footprint for page budgeting.
func (r *RawObject) Size() int {
	n := len(r.Rec) + 16
	for i := range r.Blobs {
		n += len(r.Blobs[i].Data) + 16
	}
	return n
}

// ---------------------------------------------------------------------
// Frame builder (pooled).

// Frame accumulates one outgoing v2 frame. Acquire with AcquireFrame,
// append the body with the typed appenders, hand it to an OutQueue (which
// finishes and releases it) or call Finish + ReleaseFrame yourself.
type Frame struct{ b []byte }

var framePool = sync.Pool{New: func() any { return &Frame{b: make([]byte, 0, 512)} }}

// maxPooledFrame bounds the buffers the pool retains: outsized page
// frames are better left to the GC than parked forever.
const maxPooledFrame = 1 << 20

// AcquireFrame takes a pooled frame and starts it with the given type
// and request ID.
func AcquireFrame(ft byte, id uint64) *Frame {
	f := framePool.Get().(*Frame)
	f.b = append(f.b[:0], 0, 0, 0, 0, ft)
	f.b = binary.AppendUvarint(f.b, id)
	return f
}

// ReleaseFrame returns a frame to the pool.
func ReleaseFrame(f *Frame) {
	if cap(f.b) > maxPooledFrame {
		return
	}
	framePool.Put(f)
}

// Finish patches the length prefix and returns the full frame bytes
// (valid until the frame is released).
func (f *Frame) Finish() ([]byte, error) {
	if int64(len(f.b)-4) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.b)-4)
	}
	binary.BigEndian.PutUint32(f.b[:4], uint32(len(f.b)-4))
	return f.b, nil
}

// Len reports the frame's current encoded size.
func (f *Frame) Len() int { return len(f.b) }

func (f *Frame) U8(v byte)        { f.b = append(f.b, v) }
func (f *Frame) Uvarint(v uint64) { f.b = binary.AppendUvarint(f.b, v) }
func (f *Frame) Varint(v int64)   { f.b = binary.AppendVarint(f.b, v) }
func (f *Frame) U64(v uint64)     { f.b = binary.LittleEndian.AppendUint64(f.b, v) }
func (f *Frame) F64(v float64)    { f.b = binary.LittleEndian.AppendUint64(f.b, math.Float64bits(v)) }

// F64c appends a float64 as a byte-reversed uvarint: coordinate values
// are overwhelmingly round decimals whose mantissa tail is zero bytes,
// so reversing the bit pattern moves those zeros to the high end and
// the varint collapses them — typically 2-4 bytes instead of 8.
func (f *Frame) F64c(v float64) { f.Uvarint(bits.ReverseBytes64(math.Float64bits(v))) }

func (f *Frame) Bool(v bool) {
	if v {
		f.b = append(f.b, 1)
	} else {
		f.b = append(f.b, 0)
	}
}

// Str appends a uvarint-length-prefixed string.
func (f *Frame) Str(s string) {
	f.b = binary.AppendUvarint(f.b, uint64(len(s)))
	f.b = append(f.b, s...)
}

// Bytes appends a uvarint-length-prefixed byte string.
func (f *Frame) Bytes(p []byte) {
	f.b = binary.AppendUvarint(f.b, uint64(len(p)))
	f.b = append(f.b, p...)
}

func (f *Frame) extent(e *sptemp.Extent) {
	f.Str(string(e.Frame.System))
	f.Str(string(e.Frame.Unit))
	f.F64c(e.Space.MinX)
	f.F64c(e.Space.MinY)
	f.F64c(e.Space.MaxX)
	f.F64c(e.Space.MaxY)
	f.Bool(e.HasTime)
	f.Varint(int64(e.TimeIv.Start))
	f.Varint(int64(e.TimeIv.End))
}

// ---------------------------------------------------------------------
// Decoder cursor.

var errV2Truncated = errors.New("wire: truncated v2 payload")

// Dec is an error-accumulating cursor over a v2 body. Check Err once at
// the end; after the first error every read answers zero values.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a body slice.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err reports the first decode error.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail() { d.err = errV2Truncated; d.b = nil }

func (d *Dec) U8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *Dec) U64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// F64c decodes a byte-reversed-uvarint float64 (see Frame.F64c).
func (d *Dec) F64c() float64 { return math.Float64frombits(bits.ReverseBytes64(d.Uvarint())) }

func (d *Dec) Bool() bool { return d.U8() != 0 }

// Cap clamps a decoded element count to the bytes remaining in the
// body. Every well-formed element costs at least one byte to encode, so
// a count beyond the remainder is corruption or an attack: a 10-byte
// frame must not size a terabyte allocation. Allocations sized by
// decoded counts go through Cap (the wirebounds analyzer enforces it);
// the per-element loops still run to the claimed count and surface
// truncation through Err.
func (d *Dec) Cap(n uint64) int {
	if rem := uint64(len(d.b)); n > rem {
		return int(rem)
	}
	return int(n)
}

// Bytes returns a view into the body (valid only while the body is).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// Str returns a copied string.
func (d *Dec) Str() string { return string(d.Bytes()) }

func (d *Dec) extent(e *sptemp.Extent) {
	e.Frame.System = sptemp.RefSystem(d.Str())
	e.Frame.Unit = sptemp.RefUnit(d.Str())
	e.Space = sptemp.Box{MinX: d.F64c(), MinY: d.F64c(), MaxX: d.F64c(), MaxY: d.F64c()}
	e.HasTime = d.Bool()
	e.TimeIv = sptemp.Interval{Start: sptemp.AbsTime(d.Varint()), End: sptemp.AbsTime(d.Varint())}
}

// ---------------------------------------------------------------------
// Frame reader.

// FrameReader reads v2 frames, reusing one buffer: the returned body is
// valid only until the next call.
type FrameReader struct {
	r   io.Reader
	max int
	hdr [4]byte
	buf []byte
}

// NewFrameReader builds a reader bounded by maxFrame (<= 0 takes
// DefaultMaxFrame).
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameReader{r: r, max: maxFrame}
}

// Next reads one frame and splits it into type, request ID, and body.
func (fr *FrameReader) Next() (ft byte, id uint64, body []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if int64(n) > int64(fr.max) {
		return 0, 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, fr.max)
	}
	if n < 2 {
		return 0, 0, nil, fmt.Errorf("wire: short v2 frame (%d bytes)", n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	b := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, b); err != nil {
		return 0, 0, nil, err
	}
	ft = b[0]
	id, vn := binary.Uvarint(b[1:])
	if vn <= 0 {
		return 0, 0, nil, fmt.Errorf("wire: bad v2 frame header")
	}
	return ft, id, b[1+vn:], nil
}

// ---------------------------------------------------------------------
// Hello / HelloAck.

// Hello2 is the v2 handshake payload.
type Hello2 struct {
	Version uint64
	User    string
}

// EncodeHello appends a Hello/HelloAck body.
func EncodeHello(f *Frame, h *Hello2) {
	f.Uvarint(h.Version)
	f.Str(h.User)
}

// DecodeHello parses a Hello/HelloAck body.
func DecodeHello(body []byte) (*Hello2, error) {
	d := NewDec(body)
	h := &Hello2{Version: d.Uvarint(), User: d.Str()}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// ---------------------------------------------------------------------
// Request encoding.

const (
	reqHasQuery byte = 1 << 0
	reqHasBatch byte = 1 << 1
	reqHasTrace byte = 1 << 2
)

// EncodeRequest appends a Request as a v2 Req body.
func EncodeRequest(f *Frame, req *Request) {
	var mask byte
	if req.Query != nil {
		mask |= reqHasQuery
	}
	if req.Batch != nil {
		mask |= reqHasBatch
	}
	if req.trace != 0 {
		mask |= reqHasTrace
	}
	f.U8(byte(req.Op))
	f.U8(mask)
	f.Str(req.User)
	f.Uvarint(req.Lease)
	f.Uvarint(req.OID)
	f.Uvarint(req.Epoch)
	f.Uvarint(uint64(req.Window))
	f.Uvarint(uint64(req.Page))
	if req.trace != 0 {
		f.Uvarint(req.trace)
		f.Uvarint(req.parent)
	}
	if req.Query != nil {
		encodeQueryReq(f, req.Query)
	}
	if req.Batch != nil {
		encodeBatchReq(f, req.Batch)
	}
}

// DecodeRequest parses a v2 Req body into req.
func DecodeRequest(body []byte, req *Request) error {
	d := NewDec(body)
	req.Op = Op(d.U8())
	mask := d.U8()
	req.User = d.Str()
	req.Lease = d.Uvarint()
	req.OID = d.Uvarint()
	req.Epoch = d.Uvarint()
	req.Window = int(d.Uvarint())
	req.Page = int(d.Uvarint())
	if mask&reqHasTrace != 0 {
		req.trace = d.Uvarint()
		req.parent = d.Uvarint()
	}
	if mask&reqHasQuery != 0 {
		req.Query = decodeQueryReq(d)
	}
	if mask&reqHasBatch != 0 {
		req.Batch = decodeBatchReq(d)
	}
	if err := d.Err(); err != nil {
		return err
	}
	return nil
}

func encodeQueryReq(f *Frame, q *QueryReq) {
	f.Str(q.Class)
	f.Str(q.Concept)
	f.extent(&q.Pred)
	f.Uvarint(uint64(len(q.Strategies)))
	for _, s := range q.Strategies {
		f.Str(s)
	}
	f.Uvarint(uint64(q.Limit))
	f.Str(q.Cursor)
	f.Uvarint(uint64(q.Parallelism))
}

func decodeQueryReq(d *Dec) *QueryReq {
	q := &QueryReq{Class: d.Str(), Concept: d.Str()}
	d.extent(&q.Pred)
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		q.Strategies = make([]string, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			q.Strategies = append(q.Strategies, d.Str())
		}
	}
	q.Limit = int(d.Uvarint())
	q.Cursor = d.Str()
	q.Parallelism = int(d.Uvarint())
	return q
}

// EncodeObject appends one wire Object (the decoded form — commits and
// fallback pages; the query path ships RawObjects instead).
func EncodeObject(f *Frame, o *Object) {
	f.Uvarint(o.OID)
	f.Str(o.Class)
	f.extent(&o.Extent)
	f.Uvarint(uint64(len(o.Attrs)))
	for name, enc := range o.Attrs {
		f.Str(name)
		f.Bytes(enc)
	}
}

// DecodeObject parses one wire Object.
func DecodeObject(d *Dec) Object {
	var o Object
	o.OID = d.Uvarint()
	o.Class = d.Str()
	d.extent(&o.Extent)
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		o.Attrs = make(map[string][]byte, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			name := d.Str()
			enc := d.Bytes()
			if d.Err() == nil {
				o.Attrs[name] = append([]byte(nil), enc...)
			}
		}
	}
	return o
}

func encodeBatchReq(f *Frame, b *BatchReq) {
	f.Uvarint(b.ReadEpoch)
	f.Uvarint(uint64(len(b.Creates)))
	for i := range b.Creates {
		f.Uvarint(b.Creates[i].Prov)
		f.Str(b.Creates[i].Note)
		EncodeObject(f, &b.Creates[i].Obj)
	}
	f.Uvarint(uint64(len(b.Updates)))
	for i := range b.Updates {
		EncodeObject(f, &b.Updates[i])
	}
	f.Uvarint(uint64(len(b.Deletes)))
	for _, oid := range b.Deletes {
		f.Uvarint(oid)
	}
}

func decodeBatchReq(d *Dec) *BatchReq {
	b := &BatchReq{ReadEpoch: d.Uvarint()}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		b.Creates = make([]Create, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			c := Create{Prov: d.Uvarint(), Note: d.Str()}
			c.Obj = DecodeObject(d)
			b.Creates = append(b.Creates, c)
		}
	}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		b.Updates = make([]Object, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			b.Updates = append(b.Updates, DecodeObject(d))
		}
	}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		b.Deletes = make([]uint64, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			b.Deletes = append(b.Deletes, d.Uvarint())
		}
	}
	return b
}

// ---------------------------------------------------------------------
// Response encoding.

const (
	respHasResult byte = 1 << 0
	respHasOIDs   byte = 1 << 1
	respHasText   byte = 1 << 2
	respHasStats  byte = 1 << 3
	respHasRaw    byte = 1 << 4
)

// EncodeResponse appends a Response as a v2 Resp body. The layout is
// op-independent (a field mask), so the client needs no request context
// to decode a completion.
func EncodeResponse(f *Frame, r *Response) {
	f.U8(byte(r.Code))
	if r.Code != CodeOK {
		f.Str(r.Err)
		return
	}
	var mask byte
	if r.Result != nil {
		mask |= respHasResult
	}
	if r.OIDs != nil {
		mask |= respHasOIDs
	}
	if r.Text != "" {
		mask |= respHasText
	}
	if r.Stats != nil {
		mask |= respHasStats
	}
	if r.Raw != nil {
		mask |= respHasRaw
	}
	f.U8(mask)
	f.Uvarint(r.Epoch)
	f.Uvarint(r.Lease)
	f.Uvarint(uint64(r.N))
	f.Str(r.Cursor)
	if r.Result != nil {
		encodeResult(f, r.Result)
	}
	if r.OIDs != nil {
		f.Uvarint(uint64(len(r.OIDs)))
		for _, oid := range r.OIDs {
			f.Uvarint(oid)
		}
	}
	if r.Text != "" {
		f.Str(r.Text)
	}
	if r.Stats != nil {
		encodeStats(f, r.Stats)
	}
	if r.Raw != nil {
		AppendRawObject(f, r.Raw)
	}
}

// DecodeResponse parses a v2 Resp body.
func DecodeResponse(body []byte) (*Response, error) {
	d := NewDec(body)
	r := &Response{Code: Code(d.U8())}
	if r.Code != CodeOK {
		r.Err = d.Str()
		return r, d.Err()
	}
	mask := d.U8()
	r.Epoch = d.Uvarint()
	r.Lease = d.Uvarint()
	r.N = int(d.Uvarint())
	r.Cursor = d.Str()
	if mask&respHasResult != 0 {
		r.Result = decodeResult(d)
	}
	if mask&respHasOIDs != 0 {
		n := d.Uvarint()
		r.OIDs = make([]uint64, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			r.OIDs = append(r.OIDs, d.Uvarint())
		}
	}
	if mask&respHasText != 0 {
		r.Text = d.Str()
	}
	if mask&respHasStats != 0 {
		r.Stats = decodeStats(d)
	}
	if mask&respHasRaw != 0 {
		raw := DecodeRawObject(d, true)
		r.Raw = &raw
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeResult(f *Frame, p *ResultPayload) {
	f.Uvarint(uint64(len(p.OIDs)))
	for _, oid := range p.OIDs {
		f.Uvarint(oid)
	}
	f.Uvarint(uint64(len(p.How)))
	for _, h := range p.How {
		f.Str(h)
	}
	f.Uvarint(uint64(len(p.Stale)))
	for _, s := range p.Stale {
		f.Bool(s)
	}
	f.Uvarint(uint64(len(p.TasksRun)))
	for _, t := range p.TasksRun {
		f.Uvarint(t)
	}
	f.Str(p.PlanText)
	f.Uvarint(p.Epoch)
}

func decodeResult(d *Dec) *ResultPayload {
	p := &ResultPayload{}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		p.OIDs = make([]uint64, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			p.OIDs = append(p.OIDs, d.Uvarint())
		}
	}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		p.How = make([]string, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			p.How = append(p.How, d.Str())
		}
	}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		p.Stale = make([]bool, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			p.Stale = append(p.Stale, d.Bool())
		}
	}
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		p.TasksRun = make([]uint64, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			p.TasksRun = append(p.TasksRun, d.Uvarint())
		}
	}
	p.PlanText = d.Str()
	p.Epoch = d.Uvarint()
	return p
}

func encodeStats(f *Frame, s *StatsPayload) {
	f.Str(s.Kernel)
	f.Uvarint(uint64(s.OpenConns))
	f.Uvarint(uint64(s.ActiveSessions))
	f.Uvarint(uint64(s.ActiveStreams))
	f.Uvarint(uint64(s.ActiveLeases))
	f.Uvarint(uint64(s.LeaseExpiries))
	f.Uvarint(uint64(s.InFlight))
	f.Uvarint(uint64(s.MaxInFlightPerConn))
	f.Uvarint(uint64(s.PushedPages))
	f.Uvarint(uint64(s.BytesAvoided))
	f.Bytes(s.ObsJSON)
}

func decodeStats(d *Dec) *StatsPayload {
	return &StatsPayload{
		Kernel:             d.Str(),
		OpenConns:          int64(d.Uvarint()),
		ActiveSessions:     int64(d.Uvarint()),
		ActiveStreams:      int64(d.Uvarint()),
		ActiveLeases:       int64(d.Uvarint()),
		LeaseExpiries:      int64(d.Uvarint()),
		InFlight:           int64(d.Uvarint()),
		MaxInFlightPerConn: int64(d.Uvarint()),
		PushedPages:        int64(d.Uvarint()),
		BytesAvoided:       int64(d.Uvarint()),
		// Copy: Dec hands out sub-slices of a reusable frame buffer.
		ObsJSON: append([]byte(nil), d.Bytes()...),
	}
}

// ---------------------------------------------------------------------
// Page encoding.

// EncodePageHeader starts a Page body: flags, the page's snapshot epoch
// (0 = not resumable, e.g. fallback pages), the END page's cursor, and
// the object count. Append the objects with AppendRawObject (PageRaw
// set) or EncodeObject.
func EncodePageHeader(f *Frame, flags byte, epoch uint64, cursor string, count int) {
	f.U8(flags)
	f.Uvarint(epoch)
	f.Str(cursor)
	f.Uvarint(uint64(count))
}

// PageHeader is the decoded page prologue.
type PageHeader struct {
	Flags  byte
	Epoch  uint64
	Cursor string
	Count  int
}

// DecodePageHeader parses a Page body prologue, leaving d at the first
// object.
func DecodePageHeader(d *Dec) PageHeader {
	return PageHeader{Flags: d.U8(), Epoch: d.Uvarint(), Cursor: d.Str(), Count: int(d.Uvarint())}
}

// AppendRawObject appends one raw object: record bytes verbatim plus its
// blob payload table.
func AppendRawObject(f *Frame, r *RawObject) {
	f.Bytes(r.Rec)
	f.Uvarint(uint64(len(r.Blobs)))
	for i := range r.Blobs {
		f.Uvarint(r.Blobs[i].ID)
		f.Bytes(r.Blobs[i].Data)
	}
}

// DecodeRawObject parses one raw object. With copy set, the record and
// blob payloads are copied out of the frame buffer (required when they
// outlive the frame read).
func DecodeRawObject(d *Dec, copyOut bool) RawObject {
	var r RawObject
	rec := d.Bytes()
	if copyOut {
		rec = append([]byte(nil), rec...)
	}
	r.Rec = rec
	if n := d.Uvarint(); n > 0 && d.Err() == nil {
		r.Blobs = make([]object.BlobPayload, 0, d.Cap(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			id := d.Uvarint()
			data := d.Bytes()
			if copyOut {
				data = append([]byte(nil), data...)
			}
			r.Blobs = append(r.Blobs, object.BlobPayload{ID: id, Data: data})
		}
	}
	return r
}

// EncodeCredit appends a Credit body granting n pages.
func EncodeCredit(f *Frame, n int) { f.Uvarint(uint64(n)) }

// DecodeCredit parses a Credit body.
func DecodeCredit(body []byte) (int, error) {
	d := NewDec(body)
	n := int(d.Uvarint())
	return n, d.Err()
}

// ---------------------------------------------------------------------
// Outbound queue.

// ErrQueueClosed reports a Push after the queue was closed or failed.
var ErrQueueClosed = errors.New("wire: outbound queue closed")

// OutQueue is the single-writer outbound side of a v2 connection: any
// goroutine Pushes finished-to-be frames, one goroutine Runs the write
// loop, which drains the queue in batches and coalesces each batch into
// one socket write — under load, many responses ride one syscall.
// Frames are released back to the pool after writing.
type OutQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*Frame
	spare   []*Frame
	wbuf    []byte
	err     error
	closed  bool
	writing bool
}

// NewOutQueue builds an idle queue; start its writer with Run.
func NewOutQueue() *OutQueue {
	o := &OutQueue{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Push enqueues a frame (taking ownership). After Close or a write
// failure it releases the frame and reports the terminal error.
func (o *OutQueue) Push(f *Frame) error {
	o.mu.Lock()
	if o.err != nil || o.closed {
		err := o.err
		o.mu.Unlock()
		ReleaseFrame(f)
		if err == nil {
			err = ErrQueueClosed
		}
		return err
	}
	o.q = append(o.q, f)
	o.mu.Unlock()
	o.cond.Broadcast()
	return nil
}

// Run is the writer loop: it returns after Close once the queue is
// drained, or on the first write error.
func (o *OutQueue) Run(w io.Writer) error {
	for {
		o.mu.Lock()
		for len(o.q) == 0 && !o.closed && o.err == nil {
			o.cond.Wait()
		}
		if o.err != nil || (o.closed && len(o.q) == 0) {
			err := o.err
			q := o.q
			o.q = nil
			o.mu.Unlock()
			o.cond.Broadcast()
			for _, f := range q {
				ReleaseFrame(f)
			}
			return err
		}
		batch := o.q
		o.q = o.spare[:0]
		o.writing = true
		o.mu.Unlock()

		o.wbuf = o.wbuf[:0]
		var ferr error
		for _, f := range batch {
			b, err := f.Finish()
			if err != nil {
				ferr = err
				ReleaseFrame(f)
				continue
			}
			o.wbuf = append(o.wbuf, b...)
			ReleaseFrame(f)
		}
		var werr error
		if len(o.wbuf) > 0 {
			_, werr = w.Write(o.wbuf)
		}
		if werr == nil {
			werr = ferr
		}
		if cap(o.wbuf) > maxPooledFrame {
			o.wbuf = nil
		}

		o.mu.Lock()
		o.writing = false
		o.spare = batch[:0]
		if werr != nil && o.err == nil {
			o.err = werr
		}
		done := o.err != nil
		o.mu.Unlock()
		o.cond.Broadcast()
		if done {
			o.mu.Lock()
			q := o.q
			o.q = nil
			err := o.err
			o.mu.Unlock()
			for _, f := range q {
				ReleaseFrame(f)
			}
			return err
		}
	}
}

// Flush blocks until every frame pushed before the call has been written
// (or the queue failed/closed).
func (o *OutQueue) Flush() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for (len(o.q) > 0 || o.writing) && o.err == nil && !o.closed {
		o.cond.Wait()
	}
	return o.err
}

// Close stops the queue: Run drains what is queued and returns; later
// Pushes fail.
func (o *OutQueue) Close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.cond.Broadcast()
}

// Fail poisons the queue with err (e.g. the reader noticed the peer is
// gone), waking Run and every Flush.
func (o *OutQueue) Fail(err error) {
	o.mu.Lock()
	if o.err == nil && err != nil {
		o.err = err
	}
	o.mu.Unlock()
	o.cond.Broadcast()
}
