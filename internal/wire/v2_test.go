package wire

// Protocol v2 codec tests: every frame body round-trips through the
// hand-rolled binary encoding, special float/time values survive the
// compact extent form, truncated bodies fail cleanly, and the outbound
// queue delivers every frame it accepted. The allocation discipline of
// the hot encode path is pinned by TestV2EncodeAllocs below (skipped
// under the race detector, which instruments allocations).

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"gaea/internal/object"
	"gaea/internal/sptemp"
)

func TestV2HelloRoundTrip(t *testing.T) {
	f := AcquireFrame(F2Hello, 0)
	defer ReleaseFrame(f)
	EncodeHello(f, &Hello2{Version: V2Version, User: "ana"})
	b, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Skip len(4) + type(1) + id uvarint(1).
	h, err := DecodeHello(b[6:])
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != V2Version || h.User != "ana" {
		t.Fatalf("hello round trip: %+v", h)
	}
}

func v2Body(t *testing.T, f *Frame) []byte {
	t.Helper()
	b, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	id, n := uvarintAt(b, 5)
	_ = id
	return b[5+n:]
}

func uvarintAt(b []byte, off int) (uint64, int) {
	var v uint64
	for i := 0; ; i++ {
		c := b[off+i]
		v |= uint64(c&0x7f) << (7 * i)
		if c < 0x80 {
			return v, i + 1
		}
	}
}

func TestV2RequestRoundTrip(t *testing.T) {
	in := &Request{
		Op:     OpStreamPush,
		User:   "ana",
		Lease:  9,
		OID:    77,
		Epoch:  12,
		Window: 4,
		Page:   128,
		Query: &QueryReq{
			Class:       "rain",
			Concept:     "rainfall",
			Pred:        sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(-10.5, 0.25, 100, 3e7)),
			Strategies:  []string{"retrieve", "derive"},
			Limit:       7,
			Cursor:      "c2|12|rain|44",
			Parallelism: 2,
		},
		Batch: &BatchReq{
			ReadEpoch: 11,
			Creates: []Create{{
				Prov: 3,
				Note: "seeded",
				Obj: Object{
					OID:    0,
					Class:  "rain",
					Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(1, 2, 3, 4), sptemp.Date(1986, 6, 19)),
					Attrs:  map[string][]byte{"mm": {1, 2, 3}},
				},
			}},
			Updates: []Object{{OID: 5, Class: "rain", Extent: sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 1, 1))}},
			Deletes: []uint64{8, 13},
		},
	}
	f := AcquireFrame(F2Req, 42)
	defer ReleaseFrame(f)
	EncodeRequest(f, in)
	var got Request
	if err := DecodeRequest(v2Body(t, f), &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != in.Op || got.User != in.User || got.Lease != in.Lease ||
		got.OID != in.OID || got.Epoch != in.Epoch || got.Window != in.Window || got.Page != in.Page {
		t.Fatalf("scalar fields mangled: %+v", got)
	}
	q := got.Query
	if q == nil || q.Class != "rain" || q.Concept != "rainfall" || q.Limit != 7 ||
		q.Cursor != "c2|12|rain|44" || q.Parallelism != 2 || len(q.Strategies) != 2 {
		t.Fatalf("query mangled: %+v", q)
	}
	if q.Pred.Space != in.Query.Pred.Space || q.Pred.Frame != in.Query.Pred.Frame {
		t.Fatalf("predicate mangled: %+v", q.Pred)
	}
	b := got.Batch
	if b == nil || b.ReadEpoch != 11 || len(b.Creates) != 1 || len(b.Updates) != 1 || len(b.Deletes) != 2 {
		t.Fatalf("batch mangled: %+v", b)
	}
	c := b.Creates[0]
	if c.Prov != 3 || c.Note != "seeded" || c.Obj.Class != "rain" ||
		c.Obj.Extent != in.Batch.Creates[0].Obj.Extent ||
		!bytes.Equal(c.Obj.Attrs["mm"], []byte{1, 2, 3}) {
		t.Fatalf("create mangled: %+v", c)
	}
	if b.Deletes[0] != 8 || b.Deletes[1] != 13 {
		t.Fatalf("deletes mangled: %v", b.Deletes)
	}
}

func TestV2ResponseRoundTrip(t *testing.T) {
	in := &Response{
		Code:   CodeOK,
		Epoch:  40,
		Lease:  7,
		N:      3,
		Cursor: "c2|40|rain|9",
		Result: &ResultPayload{
			OIDs:     []uint64{1, 2, 3},
			How:      []string{"retrieve"},
			Stale:    []bool{false, true, false},
			TasksRun: []uint64{11},
			PlanText: "plan",
			Epoch:    40,
		},
		OIDs:  []uint64{4, 5},
		Text:  "explain text",
		Stats: &StatsPayload{Kernel: "k", OpenConns: 2, InFlight: 5, MaxInFlightPerConn: 4, PushedPages: 9, BytesAvoided: 1 << 20},
		Raw:   &RawObject{Rec: []byte("REC"), Blobs: []object.BlobPayload{{ID: 3, Data: []byte("IMG")}}},
	}
	f := AcquireFrame(F2Resp, 42)
	defer ReleaseFrame(f)
	EncodeResponse(f, in)
	got, err := DecodeResponse(v2Body(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodeOK || got.Epoch != 40 || got.Lease != 7 || got.N != 3 || got.Cursor != in.Cursor {
		t.Fatalf("scalar fields mangled: %+v", got)
	}
	r := got.Result
	if r == nil || len(r.OIDs) != 3 || r.OIDs[2] != 3 || r.How[0] != "retrieve" ||
		!r.Stale[1] || r.TasksRun[0] != 11 || r.PlanText != "plan" || r.Epoch != 40 {
		t.Fatalf("result mangled: %+v", r)
	}
	if len(got.OIDs) != 2 || got.OIDs[1] != 5 || got.Text != "explain text" {
		t.Fatalf("oids/text mangled: %+v", got)
	}
	s := got.Stats
	if s == nil || s.Kernel != "k" || s.OpenConns != 2 || s.InFlight != 5 ||
		s.MaxInFlightPerConn != 4 || s.PushedPages != 9 || s.BytesAvoided != 1<<20 {
		t.Fatalf("stats mangled: %+v", s)
	}
	if got.Raw == nil || string(got.Raw.Rec) != "REC" ||
		len(got.Raw.Blobs) != 1 || got.Raw.Blobs[0].ID != 3 || string(got.Raw.Blobs[0].Data) != "IMG" {
		t.Fatalf("raw mangled: %+v", got.Raw)
	}
}

func TestV2ErrorResponseRoundTrip(t *testing.T) {
	f := AcquireFrame(F2Resp, 1)
	defer ReleaseFrame(f)
	EncodeResponse(f, &Response{Code: CodeConflict, Err: "first committer wins"})
	got, err := DecodeResponse(v2Body(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodeConflict || got.Err != "first committer wins" {
		t.Fatalf("error response mangled: %+v", got)
	}
}

// TestV2ExtentSpecialValues: the compact extent encoding (byte-reversed
// varint floats, zigzag times) must survive the values gob handled —
// the ±Inf empty box, negative coordinates, NaN, and pre-1970 times.
func TestV2ExtentSpecialValues(t *testing.T) {
	cases := []sptemp.Extent{
		{Frame: sptemp.DefaultFrame, Space: sptemp.EmptyBox()},
		{Frame: sptemp.DefaultFrame, Space: sptemp.NewBox(-1e300, -0.1, 1e-300, math.Pi)},
		sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 1, 1), sptemp.Date(1912, 1, 1)),
	}
	for i, in := range cases {
		f := AcquireFrame(F2Req, 1)
		f.extent(&in)
		var got sptemp.Extent
		d := NewDec(v2Body(t, f))
		d.extent(&got)
		ReleaseFrame(f)
		if err := d.Err(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != in {
			t.Fatalf("case %d: extent mangled: %+v != %+v", i, got, in)
		}
	}
	// NaN compares unequal to itself; check the bit pattern explicitly.
	f := AcquireFrame(F2Req, 1)
	defer ReleaseFrame(f)
	f.F64c(math.NaN())
	d := NewDec(v2Body(t, f))
	if v := d.F64c(); !math.IsNaN(v) || d.Err() != nil {
		t.Fatalf("NaN decoded as %v (err %v)", v, d.Err())
	}
}

func TestV2PageRoundTrip(t *testing.T) {
	f := AcquireFrame(F2Page, 9)
	defer ReleaseFrame(f)
	raws := []RawObject{
		{Rec: []byte("rec-one")},
		{Rec: []byte("rec-two"), Blobs: []object.BlobPayload{{ID: 1, Data: []byte("blob")}}},
	}
	EncodePageHeader(f, PageEnd|PageRaw, 40, "c2|40|rain|2", len(raws))
	for i := range raws {
		AppendRawObject(f, &raws[i])
	}
	d := NewDec(v2Body(t, f))
	h := DecodePageHeader(d)
	if h.Flags != PageEnd|PageRaw || h.Epoch != 40 || h.Cursor != "c2|40|rain|2" || h.Count != 2 {
		t.Fatalf("page header mangled: %+v", h)
	}
	for i := 0; i < h.Count; i++ {
		got := DecodeRawObject(d, false)
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
		if !bytes.Equal(got.Rec, raws[i].Rec) || len(got.Blobs) != len(raws[i].Blobs) {
			t.Fatalf("raw object %d mangled: %+v", i, got)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

// TestV2DecodeTruncated: every truncation of a valid body must fail
// with an error, never panic or succeed.
func TestV2DecodeTruncated(t *testing.T) {
	f := AcquireFrame(F2Resp, 3)
	defer ReleaseFrame(f)
	EncodeResponse(f, &Response{
		Code:   CodeOK,
		Epoch:  1,
		Cursor: "c2|1|rain|5",
		Result: &ResultPayload{OIDs: []uint64{1, 2}, How: []string{"retrieve"}},
	})
	body := v2Body(t, f)
	for n := 0; n < len(body); n++ {
		if _, err := DecodeResponse(body[:n]); err == nil {
			// A prefix that happens to parse as a complete shorter body
			// is impossible here: the trailing field is a non-empty
			// result payload.
			t.Fatalf("truncation at %d decoded successfully", n)
		}
	}
	var req Request
	if err := DecodeRequest(nil, &req); err == nil {
		t.Fatal("empty request body decoded successfully")
	}
}

// TestV2FrameReader: frames queue behind each other without over-read,
// and an announced length above the bound is refused.
func TestV2FrameReader(t *testing.T) {
	var buf bytes.Buffer
	q := NewOutQueue()
	for i := 1; i <= 3; i++ {
		f := AcquireFrame(F2Resp, uint64(i))
		EncodeResponse(f, &Response{Code: CodeOK, N: i})
		if err := q.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Run(&buf); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf, 0)
	for i := 1; i <= 3; i++ {
		ft, id, body, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ft != F2Resp || id != uint64(i) {
			t.Fatalf("frame %d: type %d id %d", i, ft, id)
		}
		resp, err := DecodeResponse(body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.N != i {
			t.Fatalf("frame %d: N = %d", i, resp.N)
		}
	}

	// Oversized announcement.
	var big bytes.Buffer
	hdr := []byte{0, 16, 0, 0} // 1 MiB against a 1 KiB bound
	big.Write(hdr)
	fr = NewFrameReader(&big, 1<<10)
	if _, _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}
}

// TestOutQueueFailReleasesPushes: pushes after Fail report the terminal
// error instead of queueing into the void.
func TestOutQueueFail(t *testing.T) {
	q := NewOutQueue()
	boom := errors.New("peer gone")
	q.Fail(boom)
	f := AcquireFrame(F2Resp, 1)
	if err := q.Push(f); !errors.Is(err, boom) {
		t.Fatalf("push after fail: %v, want %v", err, boom)
	}
	if err := q.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush after fail: %v, want %v", err, boom)
	}
}

// ---------------------------------------------------------------------
// Allocation discipline.

// steadyResponse builds the response the server's v2 hot path ships for
// a snapshot point read: a raw object travelling as stored bytes.
func steadyResponse(rec, blob []byte) *Response {
	return &Response{
		Code:  CodeOK,
		Epoch: 40,
		Raw:   &RawObject{Rec: rec, Blobs: []object.BlobPayload{{ID: 1, Data: blob}}},
	}
}

// TestV2EncodeAllocs pins the acceptance bar: encoding one v2 response
// frame on the steady-state path — pooled frame in, finished bytes out
// — allocates at most 2 times per response (it is 0 in practice once
// the pool is warm; the bar leaves headroom for map iteration noise).
func TestV2EncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	rec := bytes.Repeat([]byte{0xAB}, 256)
	blob := bytes.Repeat([]byte{0xCD}, 1024)
	resp := steadyResponse(rec, blob)
	// Warm the pool and the frame capacity.
	for i := 0; i < 8; i++ {
		f := AcquireFrame(F2Resp, 7)
		EncodeResponse(f, resp)
		if _, err := f.Finish(); err != nil {
			t.Fatal(err)
		}
		ReleaseFrame(f)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		f := AcquireFrame(F2Resp, 7)
		EncodeResponse(f, resp)
		if _, err := f.Finish(); err != nil {
			panic(err)
		}
		ReleaseFrame(f)
	})
	if allocs > 2 {
		t.Fatalf("v2 response encode allocates %.1f/op, want <= 2", allocs)
	}
}

// BenchmarkV2ResponseEncode measures the server-side hot path: one raw
// snapshot read shipped as a v2 frame.
func BenchmarkV2ResponseEncode(b *testing.B) {
	rec := bytes.Repeat([]byte{0xAB}, 256)
	blob := bytes.Repeat([]byte{0xCD}, 1024)
	resp := steadyResponse(rec, blob)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := AcquireFrame(F2Resp, 7)
		EncodeResponse(f, resp)
		if _, err := f.Finish(); err != nil {
			b.Fatal(err)
		}
		ReleaseFrame(f)
	}
}

// BenchmarkV1ResponseEncode is the same payload through the v1 gob
// framing (with its pooled scratch buffer) — the before side of the
// codec swap.
func BenchmarkV1ResponseEncode(b *testing.B) {
	rec := bytes.Repeat([]byte{0xAB}, 256)
	resp := &Response{Code: CodeOK, Epoch: 40, Objects: []Object{{
		OID: 7, Class: "rain", Attrs: map[string][]byte{"img": rec},
	}}}
	var sink bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := WriteFrame(&sink, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkV2PageEncode: one 32-object raw push page, the bulk-stream
// hot path.
func BenchmarkV2PageEncode(b *testing.B) {
	rec := bytes.Repeat([]byte{0xAB}, 256)
	raws := make([]RawObject, 32)
	for i := range raws {
		raws[i] = RawObject{Rec: rec}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := AcquireFrame(F2Page, 9)
		EncodePageHeader(f, PageRaw, 40, "", len(raws))
		for j := range raws {
			AppendRawObject(f, &raws[j])
		}
		if _, err := f.Finish(); err != nil {
			b.Fatal(err)
		}
		ReleaseFrame(f)
	}
}
