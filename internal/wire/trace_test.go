package wire

import (
	"bytes"
	"testing"
)

// TestV1FrameIgnoresTrace is the v1 compatibility guarantee of the
// trace extension: the trace identity lives in an unexported field, so
// the gob frame a v1 connection writes is byte-for-byte identical
// whether or not the request was stamped. A v1 server therefore never
// sees — and never chokes on — tracing.
func TestV1FrameIgnoresTrace(t *testing.T) {
	mk := func() *Request {
		q := QueryReq{Class: "rain", Limit: 7, Cursor: "c"}
		return &Request{Op: OpQuery, User: "u", Query: &q, Lease: 3}
	}
	var plain, stamped bytes.Buffer
	if err := WriteFrame(&plain, mk()); err != nil {
		t.Fatal(err)
	}
	req := mk()
	req.SetTrace(0xdeadbeef)
	if err := WriteFrame(&stamped, req); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), stamped.Bytes()) {
		t.Fatalf("v1 frame changed when the request was trace-stamped:\nplain   %x\nstamped %x",
			plain.Bytes(), stamped.Bytes())
	}
	// And the stamp never survives a gob round trip.
	var back Request
	if err := ReadFrame(bytes.NewReader(stamped.Bytes()), 0, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID() != 0 {
		t.Fatalf("trace id %x crossed a v1 frame", back.TraceID())
	}
}

// TestV2FrameCarriesTrace: the v2 binary request frame round-trips the
// trace identity, and an unstamped request costs zero extra bytes.
func TestV2FrameCarriesTrace(t *testing.T) {
	mk := func() *Request {
		q := QueryReq{Class: "rain", Limit: 7}
		return &Request{Op: OpQuery, Query: &q}
	}
	enc := func(r *Request) []byte {
		f := AcquireFrame(F2Req, 1)
		defer ReleaseFrame(f)
		EncodeRequest(f, r)
		b, err := f.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), b...)
	}
	plain := enc(mk())
	req := mk()
	req.SetTrace(0xabc123)
	stamped := enc(req)
	if len(stamped) <= len(plain) {
		t.Fatalf("stamped frame (%d bytes) not larger than plain (%d)", len(stamped), len(plain))
	}

	// Frames carry a 4-byte length prefix, a type byte, and a request id
	// before the body EncodeRequest wrote.
	var back Request
	if err := DecodeRequest(stamped[4+1+1:], &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID() != 0xabc123 {
		t.Fatalf("trace id = %x, want abc123", back.TraceID())
	}
	var plainBack Request
	if err := DecodeRequest(plain[4+1+1:], &plainBack); err != nil {
		t.Fatal(err)
	}
	if plainBack.TraceID() != 0 {
		t.Fatalf("unstamped frame decoded trace id %x", plainBack.TraceID())
	}
}

// TestStatsPayloadStringIgnoresObs: the stats verb's line is a frozen
// interface; the observability extension rides along without changing
// it.
func TestStatsPayloadStringIgnoresObs(t *testing.T) {
	a := StatsPayload{Kernel: "classes=1", OpenConns: 2, PushedPages: 3}
	b := a
	b.ObsJSON = []byte(`{"stats":{}}`)
	if a.String() != b.String() {
		t.Fatalf("ObsJSON changed the stats line:\n%q\n%q", a.String(), b.String())
	}
}
