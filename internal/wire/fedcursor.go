package wire

// The federation vector cursor: one resume token covering a scatter-
// gather stream over N shards. Each component carries that shard's own
// resume state — the per-shard `c2` cursor string plus the epoch its
// pages were pinned at, or a done marker once the shard's extent is
// exhausted — so a client can resume the merge mid-flight on any
// connection, against any router, and each shard picks up exactly where
// its own stream stopped.
//
// Format: the literal prefix "cv1|" followed by the URL-safe base64 of
// a v2-style binary body:
//
//	count uvarint, then per component:
//	  shard uvarint | epoch uvarint | done u8 | cursor (uvarint-len bytes)
//
// The prefix keeps vector cursors textually disjoint from single-kernel
// `c2` cursors (and from the v1 `c1` lineage), so every cursor-accepting
// surface can dispatch on sight. Decoding is bounded exactly like the
// frame decoders: component counts pass through Dec.Cap before sizing an
// allocation, so a hostile 10-byte cursor cannot size a huge slice.

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// VectorCursorPrefix marks a federation vector cursor.
const VectorCursorPrefix = "cv1|"

// ShardCursor is one component of a vector cursor.
type ShardCursor struct {
	// Shard is the shard index in the federation's shard list.
	Shard int
	// Epoch is the MVCC epoch this shard's stream is pinned at (0 = the
	// shard stream fell back to an unpinned scan and is not resumable).
	Epoch uint64
	// Done marks a shard whose extent is exhausted; Cursor is "" then.
	Done bool
	// Cursor is the shard's own resume token (a `c2` cursor).
	Cursor string
}

// IsVectorCursor reports whether s looks like a federation vector
// cursor (cheap prefix test; decoding may still reject it).
func IsVectorCursor(s string) bool { return strings.HasPrefix(s, VectorCursorPrefix) }

// EncodeVectorCursor renders components as one resume token. Components
// are sorted by shard index so equal cursor states encode identically
// (the fuzz target relies on canonical round-trips).
func EncodeVectorCursor(comps []ShardCursor) string {
	sorted := append([]ShardCursor(nil), comps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(sorted)))
	for i := range sorted {
		c := &sorted[i]
		b = binary.AppendUvarint(b, uint64(c.Shard))
		b = binary.AppendUvarint(b, c.Epoch)
		if c.Done {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, uint64(len(c.Cursor)))
		b = append(b, c.Cursor...)
	}
	return VectorCursorPrefix + base64.RawURLEncoding.EncodeToString(b)
}

// DecodeVectorCursor parses a vector cursor. It rejects anything that is
// not canonical: unknown prefix, bad base64, trailing bytes, unsorted or
// duplicate shard indices, a done component carrying a cursor, or a
// shard index that does not fit an int. Everything it accepts
// re-encodes byte-for-byte identically.
func DecodeVectorCursor(s string) ([]ShardCursor, error) {
	if !IsVectorCursor(s) {
		return nil, fmt.Errorf("wire: not a vector cursor")
	}
	// Strict decoding rejects non-zero padding bits, and the explicit
	// newline check closes the one hole Strict leaves (the decoder skips
	// \r\n) — together they make every accepted string canonical.
	if strings.ContainsAny(s, "\r\n") {
		return nil, fmt.Errorf("wire: bad vector cursor: embedded newline")
	}
	body, err := base64.RawURLEncoding.Strict().DecodeString(s[len(VectorCursorPrefix):])
	if err != nil {
		return nil, fmt.Errorf("wire: bad vector cursor: %v", err)
	}
	d := NewDec(body)
	n := d.Uvarint()
	comps := make([]ShardCursor, 0, d.Cap(n))
	last := -1
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		shard := d.Uvarint()
		c := ShardCursor{
			Epoch:  d.Uvarint(),
			Done:   d.Bool(),
			Cursor: d.Str(),
		}
		if d.Err() != nil {
			break
		}
		if shard > uint64(int(^uint(0)>>1)) {
			return nil, fmt.Errorf("wire: vector cursor shard index overflows")
		}
		c.Shard = int(shard)
		if c.Shard <= last {
			return nil, fmt.Errorf("wire: vector cursor shards out of order")
		}
		if c.Done && c.Cursor != "" {
			return nil, fmt.Errorf("wire: vector cursor done shard carries a cursor")
		}
		last = c.Shard
		comps = append(comps, c)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: bad vector cursor: %v", err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: vector cursor trailing bytes")
	}
	if uint64(len(comps)) != n {
		return nil, fmt.Errorf("wire: bad vector cursor: truncated")
	}
	return comps, nil
}
