package wire

// Decode-bound regression tests: a frame body is at most MaxFrame bytes,
// but the counts *inside* it are attacker-chosen uvarints. Before
// Dec.Cap, `make(..., n)` with a claimed count of 2^62 panicked in
// makeslice (or OOMed) — a remote crash from a ~20-byte body. These
// tests pin the fix: a huge claimed count must produce a clean
// truncation error, never a panic or a giant allocation.

import (
	"encoding/binary"
	"testing"
)

func TestDecCap(t *testing.T) {
	d := NewDec(make([]byte, 10))
	if got := d.Cap(3); got != 3 {
		t.Fatalf("Cap(3) with 10 bytes = %d, want 3", got)
	}
	if got := d.Cap(10); got != 10 {
		t.Fatalf("Cap(10) with 10 bytes = %d, want 10", got)
	}
	if got := d.Cap(1 << 62); got != 10 {
		t.Fatalf("Cap(1<<62) with 10 bytes = %d, want 10", got)
	}
	if got := NewDec(nil).Cap(5); got != 0 {
		t.Fatalf("Cap(5) with empty body = %d, want 0", got)
	}
}

// hugeCount is a claimed element count far beyond any frame:
// pre-fix, sizing a make() with it panics with "cap out of range".
const hugeCount = uint64(1) << 62

func TestV2DecodeResponseHugeOIDCount(t *testing.T) {
	body := []byte{byte(CodeOK), respHasOIDs}
	body = binary.AppendUvarint(body, 1) // epoch
	body = binary.AppendUvarint(body, 0) // lease
	body = binary.AppendUvarint(body, 0) // n
	body = binary.AppendUvarint(body, 0) // cursor: empty
	body = binary.AppendUvarint(body, hugeCount)
	if _, err := DecodeResponse(body); err == nil {
		t.Fatal("huge OID count decoded successfully, want truncation error")
	}
}

func TestV2DecodeResultHugeCounts(t *testing.T) {
	// Each of the four counted vectors in a ResultPayload, claimed huge
	// in turn (the earlier ones empty).
	for field := 0; field < 4; field++ {
		body := []byte{byte(CodeOK), respHasResult}
		body = binary.AppendUvarint(body, 1) // epoch
		body = binary.AppendUvarint(body, 0) // lease
		body = binary.AppendUvarint(body, 0) // n
		body = binary.AppendUvarint(body, 0) // cursor
		for i := 0; i < field; i++ {
			body = binary.AppendUvarint(body, 0) // empty preceding vector
		}
		body = binary.AppendUvarint(body, hugeCount)
		if _, err := DecodeResponse(body); err == nil {
			t.Fatalf("result field %d: huge count decoded successfully", field)
		}
	}
}

func TestV2DecodeBatchHugeCreateCount(t *testing.T) {
	body := []byte{0, reqHasBatch}
	body = binary.AppendUvarint(body, 0) // user: empty
	body = binary.AppendUvarint(body, 0) // lease
	body = binary.AppendUvarint(body, 0) // oid
	body = binary.AppendUvarint(body, 0) // epoch
	body = binary.AppendUvarint(body, 0) // window
	body = binary.AppendUvarint(body, 0) // page
	body = binary.AppendUvarint(body, 0) // batch read epoch
	body = binary.AppendUvarint(body, hugeCount)
	var req Request
	if err := DecodeRequest(body, &req); err == nil {
		t.Fatal("huge create count decoded successfully, want truncation error")
	}
}

func TestV2DecodeQueryHugeStrategyCount(t *testing.T) {
	body := []byte{0, reqHasQuery}
	body = binary.AppendUvarint(body, 0)           // user
	body = binary.AppendUvarint(body, 0)           // lease
	body = binary.AppendUvarint(body, 0)           // oid
	body = binary.AppendUvarint(body, 0)           // epoch
	body = binary.AppendUvarint(body, 0)           // window
	body = binary.AppendUvarint(body, 0)           // page
	body = binary.AppendUvarint(body, 0)           // class: empty
	body = binary.AppendUvarint(body, 0)           // concept: empty
	body = append(body, 0, 0, 0, 0, 0, 0, 0, 0, 0) // zero extent
	body = binary.AppendUvarint(body, hugeCount)
	var req Request
	if err := DecodeRequest(body, &req); err == nil {
		t.Fatal("huge strategy count decoded successfully, want truncation error")
	}
}

func TestV2DecodeRawObjectHugeBlobCount(t *testing.T) {
	var body []byte
	body = binary.AppendUvarint(body, 7) // oid
	body = binary.AppendUvarint(body, 0) // class: empty
	body = binary.AppendUvarint(body, 0) // rec: empty
	body = binary.AppendUvarint(body, hugeCount)
	d := NewDec(body)
	DecodeRawObject(d, true)
	if d.Err() == nil {
		t.Fatal("huge blob count decoded successfully, want truncation error")
	}
}
