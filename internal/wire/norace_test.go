//go:build !race

package wire

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count assertions skip themselves under it.
const raceEnabled = false
