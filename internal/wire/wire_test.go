package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/petri"
	"gaea/internal/query"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/task"
	"gaea/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{
		Op: OpStream,
		Query: &QueryReq{
			Class:      "rain",
			Pred:       sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 100, 100)),
			Strategies: []string{"retrieve"},
			Limit:      7,
			Cursor:     "c2|12|rain|44",
		},
	}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	// A second frame behind the first: framing must not over-read.
	if err := WriteFrame(&buf, &Request{Op: OpStats}); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadFrame(&buf, 0, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != OpStream || got.Query == nil || got.Query.Class != "rain" ||
		got.Query.Limit != 7 || got.Query.Cursor != "c2|12|rain|44" {
		t.Fatalf("bad round trip: %+v", got)
	}
	if got.Query.Pred.Space != sptemp.NewBox(0, 0, 100, 100) {
		t.Fatalf("bad predicate: %+v", got.Query.Pred)
	}
	var second Request
	if err := ReadFrame(&buf, 0, &second); err != nil {
		t.Fatal(err)
	}
	if second.Op != OpStats {
		t.Fatalf("second frame op = %v", second.Op)
	}
}

// An empty-box predicate carries ±Inf coordinates; the codec must not
// mangle them (encoding/json would).
func TestFrameEmptyBoxPredicate(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Op: OpQuery, Query: &QueryReq{
		Class: "rain",
		Pred:  sptemp.Extent{Frame: sptemp.DefaultFrame, Space: sptemp.EmptyBox()},
	}}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadFrame(&buf, 0, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Query.Pred.Space.IsEmpty() {
		t.Fatalf("empty box decoded non-empty: %+v", got.Query.Pred.Space)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := &Response{Err: string(make([]byte, 4096))}
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	var got Response
	err := ReadFrame(&buf, 128, &got)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestObjectRoundTrip ships an object with scalar, box, and image
// attributes through the wire form and back.
func TestObjectRoundTrip(t *testing.T) {
	img := raster.MustNew(4, 4, raster.PixFloat8)
	for i := 0; i < 4; i++ {
		if err := img.Set(i, i, float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	in := &object.Object{
		OID:   42,
		Class: "landsat_tm",
		Attrs: map[string]value.Value{
			"band":  value.String_("red"),
			"gain":  value.Float(2.25),
			"rows":  value.Int(4),
			"valid": value.Bool(true),
			"area":  value.Box(sptemp.NewBox(1, 2, 3, 4)),
			"data":  value.Image{Img: img},
		},
		Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 120, 120), sptemp.Date(1986, 6, 19)),
	}
	w, err := FromObject(in)
	if err != nil {
		t.Fatal(err)
	}
	// Through the framing too, like a real response.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Response{Objects: []Object{w}}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(&buf, 0, &resp); err != nil {
		t.Fatal(err)
	}
	out, err := resp.Objects[0].ToObject()
	if err != nil {
		t.Fatal(err)
	}
	if out.OID != in.OID || out.Class != in.Class || out.Extent != in.Extent {
		t.Fatalf("identity fields mangled: %+v", out)
	}
	if got := out.Attrs["band"].(value.String_); got != "red" {
		t.Fatalf("band = %q", got)
	}
	if got := out.Attrs["gain"].(value.Float); got != 2.25 {
		t.Fatalf("gain = %v", got)
	}
	gotImg := out.Attrs["data"].(value.Image).Img
	px, err := gotImg.At(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotImg.Rows() != 4 || gotImg.Cols() != 4 || px != 3.0 {
		t.Fatalf("image mangled: %dx%d at(2,2)=%v", gotImg.Rows(), gotImg.Cols(), px)
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := &query.Result{
		OIDs:     []object.OID{3, 5},
		How:      []query.Strategy{query.Retrieve, query.Derive},
		Stale:    []bool{false, true},
		TasksRun: []task.ID{7},
		PlanText: "plan",
		Epoch:    9,
	}
	out := FromResult(res).ToResult()
	if fmt.Sprint(out) != fmt.Sprint(res) {
		t.Fatalf("round trip mangled result:\n in: %+v\nout: %+v", res, out)
	}
}

// TestCodeForTaxonomy pins the server-side half of the error contract:
// every internal sentinel the public taxonomy classifies must map to
// its wire code (the client-side half lives in the client package).
func TestCodeForTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{object.ErrSnapshotGone, CodeSnapshotGone},
		{object.ErrConflict, CodeConflict},
		{task.ErrStaleInput, CodeStale},
		{catalog.ErrClassNotFound, CodeClassUnknown},
		{petri.ErrNoPlan, CodeNoPlan},
		{query.ErrUnsatisfied, CodeNoPlan},
		{object.ErrNotFound, CodeNotFound},
		{task.ErrTaskNotFound, CodeNotFound},
		{storage.ErrNotFound, CodeNotFound},
		{query.ErrBadRequest, CodeBadRequest},
		{object.ErrBadAttr, CodeBadRequest},
		{context.Canceled, CodeCanceled},
		{context.DeadlineExceeded, CodeCanceled},
		{errors.New("anything else"), CodeInternal},
		{nil, CodeOK},
	}
	for _, c := range cases {
		// Both bare and wrapped, as the kernel's classify layer wraps.
		if got := CodeFor(c.err); got != c.want {
			t.Errorf("CodeFor(%v) = %v, want %v", c.err, got, c.want)
		}
		if c.err == nil {
			continue
		}
		wrapped := fmt.Errorf("outer: %w", c.err)
		if got := CodeFor(wrapped); got != c.want {
			t.Errorf("CodeFor(wrapped %v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestProvisionalBit(t *testing.T) {
	if IsProvisional(object.OID(17)) {
		t.Fatal("real OID read as provisional")
	}
	if !IsProvisional(object.OID(ProvisionalBit | 17)) {
		t.Fatal("provisional OID not detected")
	}
}
