package wire

// Property and fuzz coverage for the federation vector-cursor codec.
// Vector cursors cross the trust boundary twice — minted by the router,
// echoed back by any client — so DecodeVectorCursor must reject
// arbitrary strings cleanly, and anything it accepts must re-encode
// byte-for-byte identically (a cursor that re-encodes differently would
// silently resume the wrong merge position).
//
// Seed corpus lives under testdata/fuzz/ (regenerate with
// GAEA_REGEN_CORPUS=1 go test ./internal/wire -run TestFedCursorSeedCorpus).

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func fedCursorSeeds() []string {
	return []string{
		EncodeVectorCursor(nil),
		EncodeVectorCursor([]ShardCursor{{Shard: 0, Epoch: 7, Cursor: "c2|7|rainfall|41"}}),
		EncodeVectorCursor([]ShardCursor{
			{Shard: 0, Epoch: 3, Cursor: "c2|3|rainfall|5"},
			{Shard: 1, Epoch: 3, Done: true},
			{Shard: 2, Epoch: 0, Cursor: ""},
			{Shard: 3, Epoch: 1<<64 - 1, Cursor: "c2|18446744073709551615|landsat_scene|9"},
		}),
		EncodeVectorCursor([]ShardCursor{{Shard: 1 << 20, Epoch: 1, Cursor: "c2|1|x|1"}}),
		"cv1|",
		"cv1|AA",
		"cv1|!!!not-base64!!!",
		"c2|1|rainfall|5",
		"",
		"cv1|AQEBAQFj", // hand-rolled near-miss bytes
	}
}

func FuzzFedCursorDecode(f *testing.F) {
	for _, s := range fedCursorSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		comps, err := DecodeVectorCursor(s)
		if err != nil {
			return
		}
		// Accepted cursors are canonical: they re-encode identically and
		// the second decode agrees with the first.
		rt := EncodeVectorCursor(comps)
		if rt != s {
			t.Fatalf("vector cursor not canonical: %q re-encodes to %q", s, rt)
		}
		comps2, err2 := DecodeVectorCursor(rt)
		if err2 != nil {
			t.Fatalf("re-encoded vector cursor %q rejected: %v", rt, err2)
		}
		if len(comps2) != len(comps) {
			t.Fatalf("round trip changed component count: %d -> %d", len(comps), len(comps2))
		}
		last := -1
		for i := range comps {
			if comps2[i] != comps[i] {
				t.Fatalf("component %d changed: %+v -> %+v", i, comps[i], comps2[i])
			}
			if comps[i].Shard <= last {
				t.Fatalf("accepted unsorted shard index at %d: %+v", i, comps)
			}
			last = comps[i].Shard
			if comps[i].Done && comps[i].Cursor != "" {
				t.Fatalf("accepted done shard with cursor: %+v", comps[i])
			}
		}
	})
}

// TestFedCursorRoundTrip is the deterministic property test: random
// well-formed component vectors survive encode/decode exactly, in any
// input order.
func TestFedCursorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(6)
		comps := make([]ShardCursor, 0, n)
		shard := 0
		for i := 0; i < n; i++ {
			shard += 1 + rng.Intn(4)
			c := ShardCursor{Shard: shard, Epoch: rng.Uint64() >> uint(rng.Intn(64))}
			if rng.Intn(3) == 0 {
				c.Done = true
			} else if rng.Intn(2) == 0 {
				c.Cursor = fmt.Sprintf("c2|%d|class-%d|%d", c.Epoch, rng.Intn(9), rng.Uint64())
			}
			comps = append(comps, c)
		}
		// Shuffle: the codec canonicalises input order.
		shuffled := append([]ShardCursor(nil), comps...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		enc := EncodeVectorCursor(shuffled)
		if !IsVectorCursor(enc) {
			t.Fatalf("encoded cursor %q missing prefix", enc)
		}
		got, err := DecodeVectorCursor(enc)
		if err != nil {
			t.Fatalf("trial %d: decode %q: %v", trial, enc, err)
		}
		if len(got) != len(comps) {
			t.Fatalf("trial %d: %d components, want %d", trial, len(got), len(comps))
		}
		for i := range comps {
			if got[i] != comps[i] {
				t.Fatalf("trial %d component %d: got %+v, want %+v", trial, i, got[i], comps[i])
			}
		}
	}
}

// TestFedCursorRejects pins the rejection cases the router depends on.
func TestFedCursorRejects(t *testing.T) {
	dup := EncodeVectorCursor([]ShardCursor{{Shard: 2, Epoch: 1}, {Shard: 2, Epoch: 2}})
	for _, s := range []string{
		"", "c2|1|x|1", "cv1|@@@",
		dup, // duplicate shard index survives sorting, decode must reject
	} {
		if _, err := DecodeVectorCursor(s); err == nil {
			t.Fatalf("DecodeVectorCursor(%q) accepted", s)
		}
	}
	if _, err := DecodeVectorCursor(EncodeVectorCursor(nil)); err != nil {
		t.Fatalf("empty vector cursor rejected: %v", err)
	}
}

// TestFedCursorSeedCorpus verifies the committed seed corpus exists (and
// regenerates it under GAEA_REGEN_CORPUS=1).
func TestFedCursorSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzFedCursorDecode")
	seeds := fedCursorSeeds()
	if os.Getenv("GAEA_REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\nstring(" + strconv.Quote(s) + ")\n"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("missing seed corpus entry %s (regenerate with GAEA_REGEN_CORPUS=1): %v", name, err)
		}
	}
}
