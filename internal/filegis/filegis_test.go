package filegis

import (
	"errors"
	"strings"
	"testing"

	"gaea/internal/raster"
)

func scene(t *testing.T, band raster.Band) *raster.Image {
	t.Helper()
	l := raster.NewLandscape(5)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 8, Cols: 8, DayOfYear: 150, Year: 1986, Noise: 0.01}
	img, err := l.GenerateBand(spec, band)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestImportLoadList(t *testing.T) {
	w, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	red := scene(t, raster.BandRed)
	if err := w.Import("africa_red_8601", red); err != nil {
		t.Fatal(err)
	}
	got, err := w.Load("africa_red_8601")
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualPixels(red) {
		t.Error("load lost pixels")
	}
	if !w.Exists("africa_red_8601") || w.Exists("ghost") {
		t.Error("Exists wrong")
	}
	names, err := w.List()
	if err != nil || len(names) != 1 || names[0] != "africa_red_8601" {
		t.Errorf("List = %v, %v", names, err)
	}
	if _, err := w.Load("ghost"); !errors.Is(err, ErrNoFile) {
		t.Errorf("missing load err = %v", err)
	}
}

func TestSilentOverwriteHazard(t *testing.T) {
	// The paper's §4.1 hazard: a second import under the same name
	// silently clobbers the first.
	w, _ := Open(t.TempDir())
	w.Import("map", scene(t, raster.BandRed))
	nir := scene(t, raster.BandNIR)
	if err := w.Import("map", nir); err != nil {
		t.Fatal(err)
	}
	got, _ := w.Load("map")
	if !got.EqualPixels(nir) {
		t.Error("expected the overwrite to win (that is the hazard)")
	}
}

func TestAnalysisCommandsAndTranscript(t *testing.T) {
	w, _ := Open(t.TempDir())
	w.Import("red88", scene(t, raster.BandRed))
	w.Import("nir88", scene(t, raster.BandNIR))
	w.Import("swir88", scene(t, raster.BandSWIR))

	if err := w.NDVI("ndvi88", "red88", "nir88"); err != nil {
		t.Fatal(err)
	}
	if err := w.Subtract("diff", "ndvi88", "ndvi88"); err != nil {
		t.Fatal(err)
	}
	if err := w.Ratio("rat", "ndvi88", "ndvi88"); err != nil {
		t.Fatal(err)
	}
	if err := w.Classify("lc88", []string{"red88", "nir88", "swir88"}, 6); err != nil {
		t.Fatal(err)
	}
	if err := w.Threshold("dry", "ndvi88", "<", 0.2); err != nil {
		t.Fatal(err)
	}
	// Outputs exist and are loadable.
	for _, name := range []string{"ndvi88", "diff", "rat", "lc88", "dry"} {
		if !w.Exists(name) {
			t.Errorf("output %s missing", name)
		}
	}
	// diff of x with itself is zero.
	diff, _ := w.Load("diff")
	if st := diff.Stats(); st.Min != 0 || st.Max != 0 {
		t.Errorf("self-subtract should be zero: %+v", st)
	}
	// Transcript recorded every command.
	text, err := w.Transcript()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"import red88", "ndvi red88 nir88 -> ndvi88", "classify red88,nir88,swir88 k=6 -> lc88", "threshold ndvi88 < 0.2 -> dry"} {
		if !strings.Contains(text, want) {
			t.Errorf("transcript missing %q:\n%s", want, text)
		}
	}
}

func TestCommandsFailOnMissingInputs(t *testing.T) {
	w, _ := Open(t.TempDir())
	if err := w.NDVI("out", "nope", "nada"); !errors.Is(err, ErrNoFile) {
		t.Errorf("ndvi err = %v", err)
	}
	if err := w.Classify("out", []string{"nope"}, 3); !errors.Is(err, ErrNoFile) {
		t.Errorf("classify err = %v", err)
	}
	if err := w.Threshold("out", "nope", "<", 1); !errors.Is(err, ErrNoFile) {
		t.Errorf("threshold err = %v", err)
	}
}

func TestDerivationOfIsOnlyGrep(t *testing.T) {
	// The §1 scenario in the baseline: two change maps with
	// indistinguishable metadata unless the transcript happens to say.
	w, _ := Open(t.TempDir())
	w.Import("red88", scene(t, raster.BandRed))
	w.Import("nir88", scene(t, raster.BandNIR))
	w.NDVI("ndvi88", "red88", "nir88")
	w.Subtract("change_a", "ndvi88", "ndvi88")
	w.Ratio("change_b", "ndvi88", "ndvi88")

	linesA, err := w.DerivationOf("change_a")
	if err != nil {
		t.Fatal(err)
	}
	if len(linesA) != 1 || !strings.Contains(linesA[0], "subtract") {
		t.Errorf("DerivationOf(change_a) = %v", linesA)
	}
	// But the structure is free text: renaming the file orphans the
	// lineage entirely.
	if lines, _ := w.DerivationOf("renamed_change"); len(lines) != 0 {
		t.Errorf("renamed file should have no greppable lineage: %v", lines)
	}
	// Empty workspace has an empty transcript.
	w2, _ := Open(t.TempDir())
	if text, err := w2.Transcript(); err != nil || text != "" {
		t.Errorf("fresh transcript = %q, %v", text, err)
	}
}
