// Package filegis is the comparison baseline of §4.1: an IDRISI/GRASS
// style "file-based, raster-oriented" working environment. Analysis runs
// as commands that read rasters from named files and write named output
// files; the only identifier for stored data is the file name; the only
// derivation record is a free-text transcript the scientist maintains by
// hand.
//
// The package intentionally reproduces the four shortcomings the paper
// lists: name-only identification, no shareable derivation metadata,
// hand-managed analysis state, and no abstraction over repeated
// procedures. The comparison experiments (T1, F5) run the same raster math
// as Gaea through this workspace to isolate the cost/benefit of metadata
// management.
package filegis

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gaea/internal/imgops"
	"gaea/internal/raster"
)

// Errors returned by the workspace.
var (
	ErrNoFile     = errors.New("filegis: no such file")
	ErrFileExists = errors.New("filegis: file already exists")
)

// Workspace is a directory of named rasters plus a transcript file.
type Workspace struct {
	dir string
}

// Open creates (or reuses) a workspace directory.
func Open(dir string) (*Workspace, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Workspace{dir: dir}, nil
}

func (w *Workspace) path(name string) string {
	return filepath.Join(w.dir, name+".img")
}

// Import stores a raster under a name, like copying a data tape into the
// working directory. Overwrites silently — the paper's "inadvertent file
// overwrite by other users" hazard is real here.
func (w *Workspace) Import(name string, img *raster.Image) error {
	if err := raster.WriteFile(w.path(name), img); err != nil {
		return err
	}
	return w.log("import %s", name)
}

// Load reads a named raster.
func (w *Workspace) Load(name string) (*raster.Image, error) {
	img, err := raster.ReadFile(w.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	return img, err
}

// Exists reports whether a named raster is present.
func (w *Workspace) Exists(name string) bool {
	_, err := os.Stat(w.path(name))
	return err == nil
}

// List returns the stored raster names, sorted — all the metadata the
// environment offers.
func (w *Workspace) List() ([]string, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".img") {
			out = append(out, strings.TrimSuffix(e.Name(), ".img"))
		}
	}
	sort.Strings(out)
	return out, nil
}

// log appends a line to the transcript, the scientist's only derivation
// record ("awkward transcript files", §4.1 item 3).
func (w *Workspace) log(format string, args ...any) error {
	f, err := os.OpenFile(filepath.Join(w.dir, "transcript.txt"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, format+"\n", args...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Transcript returns the raw transcript text.
func (w *Workspace) Transcript() (string, error) {
	data, err := os.ReadFile(filepath.Join(w.dir, "transcript.txt"))
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	return string(data), err
}

// The analysis commands. Each reads inputs by name, computes with the
// same imgops math Gaea uses, writes the output file, and appends a
// transcript line. Nothing else is recorded.

// NDVI computes out = ndvi(red, nir).
func (w *Workspace) NDVI(out, red, nir string) error {
	r, err := w.Load(red)
	if err != nil {
		return err
	}
	n, err := w.Load(nir)
	if err != nil {
		return err
	}
	img, err := imgops.NDVI(r, n)
	if err != nil {
		return err
	}
	if err := raster.WriteFile(w.path(out), img); err != nil {
		return err
	}
	return w.log("ndvi %s %s -> %s", red, nir, out)
}

// Subtract computes out = a - b.
func (w *Workspace) Subtract(out, a, b string) error {
	return w.binary(out, a, b, "subtract", imgops.Subtract)
}

// Ratio computes out = a / b.
func (w *Workspace) Ratio(out, a, b string) error {
	return w.binary(out, a, b, "ratio", func(x, y *raster.Image) (*raster.Image, error) {
		return imgops.Ratio(x, y, 1e-9)
	})
}

func (w *Workspace) binary(out, a, b, cmd string, f func(x, y *raster.Image) (*raster.Image, error)) error {
	x, err := w.Load(a)
	if err != nil {
		return err
	}
	y, err := w.Load(b)
	if err != nil {
		return err
	}
	img, err := f(x, y)
	if err != nil {
		return err
	}
	if err := raster.WriteFile(w.path(out), img); err != nil {
		return err
	}
	return w.log("%s %s %s -> %s", cmd, a, b, out)
}

// Classify computes out = unsuperclassify(bands, k).
func (w *Workspace) Classify(out string, bandNames []string, k int) error {
	bands := make([]*raster.Image, len(bandNames))
	for i, name := range bandNames {
		img, err := w.Load(name)
		if err != nil {
			return err
		}
		bands[i] = img
	}
	img, err := imgops.Unsuperclassify(bands, k, imgops.ClassifyOptions{Seed: 1})
	if err != nil {
		return err
	}
	if err := raster.WriteFile(w.path(out), img); err != nil {
		return err
	}
	return w.log("classify %s k=%d -> %s", strings.Join(bandNames, ","), k, out)
}

// Threshold computes out = img OP limit.
func (w *Workspace) Threshold(out, in, op string, limit float64) error {
	img, err := w.Load(in)
	if err != nil {
		return err
	}
	res, err := imgops.Threshold(img, op, limit)
	if err != nil {
		return err
	}
	if err := raster.WriteFile(w.path(out), res); err != nil {
		return err
	}
	return w.log("threshold %s %s %g -> %s", in, op, limit, out)
}

// DerivationOf is the baseline's answer to "how was this file produced?":
// grep the transcript for lines mentioning the name. The paper's point is
// that this is all the environment can offer — the result is text, not
// structure, and only as good as the scientist's discipline.
func (w *Workspace) DerivationOf(name string) ([]string, error) {
	text, err := w.Transcript()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return out, nil
}
