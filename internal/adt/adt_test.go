package adt

import (
	"errors"
	"strings"
	"testing"

	"gaea/internal/raster"
	"gaea/internal/value"
)

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	op := &Operator{
		Name: "neg", In: []value.Type{value.TypeInt}, Out: value.TypeInt,
		Fn: func(a []value.Value) (value.Value, error) { return -a[0].(value.Int), nil },
	}
	if err := r.Register(op); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("neg")
	if err != nil || got != op {
		t.Fatalf("Lookup failed: %v", err)
	}
	if _, err := r.Lookup("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup err = %v", err)
	}
	if err := r.Register(op); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate register err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	fn := func(a []value.Value) (value.Value, error) { return value.Int(0), nil }
	cases := []*Operator{
		{Name: "", In: nil, Out: value.TypeInt, Fn: fn},
		{Name: "x", In: nil, Out: value.TypeInt, Fn: nil},
		{Name: "x", In: nil, Out: "bogus", Fn: fn},
		{Name: "x", In: []value.Type{"bogus"}, Out: value.TypeInt, Fn: fn},
	}
	for i, op := range cases {
		if err := r.Register(op); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestApplyTypeChecking(t *testing.T) {
	r := NewStandardRegistry()
	img := value.Image{Img: raster.MustNew(2, 2, raster.PixChar)}

	// Correct call.
	out, err := r.Apply("img_nrow", img)
	if err != nil {
		t.Fatal(err)
	}
	if out.(value.Int) != 2 {
		t.Errorf("img_nrow = %v", out)
	}
	// Arity error.
	if _, err := r.Apply("img_nrow"); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	// Type error.
	if _, err := r.Apply("img_nrow", value.Int(1)); !errors.Is(err, ErrArgType) {
		t.Errorf("type err = %v", err)
	}
	// Nil arg error.
	if _, err := r.Apply("img_nrow", nil); !errors.Is(err, ErrArgType) {
		t.Errorf("nil arg err = %v", err)
	}
	// Unknown operator.
	if _, err := r.Apply("no_such_op", img); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown op err = %v", err)
	}
}

func TestSingletonScalarAcceptedForSet(t *testing.T) {
	r := NewStandardRegistry()
	img := value.Image{Img: raster.MustNew(2, 2, raster.PixChar)}
	// composite declares SETOF image; a bare image is a singleton set.
	out, err := r.Apply("composite", img)
	if err != nil {
		t.Fatal(err)
	}
	set, ok := out.(value.Set)
	if !ok || set.Card() != 1 {
		t.Errorf("composite singleton = %v", out)
	}
}

func TestBrowseOperators(t *testing.T) {
	r := NewStandardRegistry()
	names := r.Names()
	if len(names) < 20 {
		t.Errorf("expected a rich standard registry, got %d operators", len(names))
	}
	// Names are sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names not sorted")
			break
		}
	}
	// Operators applicable to image include ndvi and unsuperclassify (via
	// its SETOF image parameter).
	ops := r.OperatorsFor(value.TypeImage)
	var haveNDVI, haveClassify bool
	for _, op := range ops {
		if op.Name == "ndvi" {
			haveNDVI = true
		}
		if op.Name == "unsuperclassify" {
			haveClassify = true
		}
	}
	if !haveNDVI || !haveClassify {
		t.Errorf("OperatorsFor(image) missing expected operators (ndvi=%v classify=%v)", haveNDVI, haveClassify)
	}
	// Inverse browse.
	classes, err := r.ClassesWithOperator("unsuperclassify")
	if err != nil {
		t.Fatal(err)
	}
	var hasImg bool
	for _, c := range classes {
		if c == value.TypeImage {
			hasImg = true
		}
	}
	if !hasImg {
		t.Errorf("ClassesWithOperator(unsuperclassify) = %v", classes)
	}
	if _, err := r.ClassesWithOperator("nope"); err == nil {
		t.Error("unknown operator should fail")
	}
}

func TestSignature(t *testing.T) {
	r := NewStandardRegistry()
	op, _ := r.Lookup("ndvi")
	sig := op.Signature()
	if !strings.Contains(sig, "ndvi(image, image)") || !strings.HasSuffix(sig, "image") {
		t.Errorf("Signature = %q", sig)
	}
}

func TestStandardOperatorsEndToEnd(t *testing.T) {
	r := NewStandardRegistry()
	l := raster.NewLandscape(3)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 12, Cols: 12, DayOfYear: 180, Year: 1986}
	bands, err := l.GenerateScene(spec, []raster.Band{raster.BandRed, raster.BandNIR, raster.BandSWIR})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]value.Value, len(bands))
	for i, b := range bands {
		items[i] = value.Image{Img: b}
	}
	set, err := value.NewSet(value.TypeImage, items)
	if err != nil {
		t.Fatal(err)
	}

	// The paper's P20 mapping: unsuperclassify(composite(bands), 12).
	comp, err := r.Apply("composite", set)
	if err != nil {
		t.Fatal(err)
	}
	classified, err := r.Apply("unsuperclassify", comp, value.Int(12))
	if err != nil {
		t.Fatal(err)
	}
	img, err := value.AsImage(classified)
	if err != nil {
		t.Fatal(err)
	}
	if st := img.Stats(); st.Max > 11 || st.Min < 0 {
		t.Errorf("classification out of range: %+v", st)
	}

	// NDVI from red/nir.
	nd, err := r.Apply("ndvi", items[0], items[1])
	if err != nil {
		t.Fatal(err)
	}
	ndImg, _ := value.AsImage(nd)
	if st := ndImg.Stats(); st.Min < -1-1e-6 || st.Max > 1+1e-6 {
		t.Errorf("ndvi out of [-1,1]: %+v", st)
	}

	// PCA stage chain: convert -> covariance -> eigenvector.
	m, err := r.Apply("convert_image_matrix", set)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := r.Apply("compute_covariance", m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Apply("get_eigen_vector", cov, value.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.(value.Vector)) != 3 {
		t.Errorf("eigenvector length = %d", len(v.(value.Vector)))
	}
	// Out-of-range eigenvector index fails.
	if _, err := r.Apply("get_eigen_vector", cov, value.Int(9)); err == nil {
		t.Error("eigenvector index out of range should fail")
	}

	// img_lerp midpoint equals mean of endpoints.
	lerp, err := r.Apply("img_lerp", items[0], items[1], value.Float(0.5))
	if err != nil {
		t.Fatal(err)
	}
	li, _ := value.AsImage(lerp)
	a0 := bands[0].Float64s()
	a1 := bands[1].Float64s()
	lv := li.Float64s()
	if d := lv[0] - (a0[0]+a1[0])/2; d > 1e-4 || d < -1e-4 {
		t.Errorf("lerp midpoint off by %g", d)
	}
}

func TestThresholdAndReclassViaRegistry(t *testing.T) {
	r := NewStandardRegistry()
	img := raster.MustNew(1, 4, raster.PixFloat8)
	img.SetFloat64s([]float64{100, 200, 300, 400})
	iv := value.Image{Img: img}

	dry, err := r.Apply("threshold", iv, value.String_("<"), value.Float(250))
	if err != nil {
		t.Fatal(err)
	}
	di, _ := value.AsImage(dry)
	if v := di.Float64s(); v[0] != 1 || v[2] != 0 {
		t.Errorf("threshold = %v", v)
	}

	rc, err := r.Apply("reclass", iv, value.Vector{150, 350})
	if err != nil {
		t.Fatal(err)
	}
	ri, _ := value.AsImage(rc)
	if v := ri.Float64s(); v[0] != 0 || v[1] != 1 || v[3] != 2 {
		t.Errorf("reclass = %v", v)
	}

	frac, err := r.Apply("area_fraction", dry, value.Float(1))
	if err != nil {
		t.Fatal(err)
	}
	if frac.(value.Float) != 0.5 {
		t.Errorf("area_fraction = %v", frac)
	}
}
