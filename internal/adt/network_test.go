package adt

import (
	"strings"
	"testing"

	"gaea/internal/imgops"
	"gaea/internal/raster"
	"gaea/internal/value"
)

// buildPCANetwork wires Figure 4's dataflow: SET OF image → convert →
// covariance → eigenvector → linear-combination (on centred pixels) →
// convert-matrix-image, parameterised by component index and output shape.
func buildPCANetwork(t *testing.T, rows, cols int) *Network {
	t.Helper()
	n := NewNetwork("pca_net", []value.Type{value.SetOf(value.TypeImage), value.TypeInt})
	n.Doc = "Figure 4 PCA compound operator"
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.AddInput("bands", 0))
	must(n.AddInput("component", 1))
	must(n.AddConst("rows", value.Int(rows)))
	must(n.AddConst("cols", value.Int(cols)))
	must(n.AddOp("mat", "convert_image_matrix", "bands"))
	must(n.AddOp("cov", "compute_covariance", "mat"))
	must(n.AddOp("eig", "get_eigen_vector", "cov", "component"))
	must(n.AddOp("centered", "center_rows", "mat"))
	must(n.AddOp("proj", "linear_combination", "centered", "eig"))
	must(n.AddOp("imgset", "convert_matrix_image", "proj", "rows", "cols"))
	n.SetOutput("imgset")
	return n
}

func scene(t *testing.T) []*raster.Image {
	t.Helper()
	l := raster.NewLandscape(17)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 12, Cols: 12, DayOfYear: 150, Year: 1987, Noise: 0.005}
	bands, err := l.GenerateScene(spec, []raster.Band{raster.BandRed, raster.BandNIR, raster.BandSWIR})
	if err != nil {
		t.Fatal(err)
	}
	return bands
}

func bandsValue(t *testing.T, bands []*raster.Image) value.Set {
	t.Helper()
	items := make([]value.Value, len(bands))
	for i, b := range bands {
		items[i] = value.Image{Img: b}
	}
	s, err := value.NewSet(value.TypeImage, items)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPCANetworkCompilesAndMatchesFused(t *testing.T) {
	r := NewStandardRegistry()
	bands := scene(t)
	net := buildPCANetwork(t, 12, 12)
	op, err := net.Compile(r)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Compound {
		t.Error("compiled network should be marked compound")
	}
	if op.Out != value.SetOf(value.TypeImage) {
		t.Errorf("network output type = %s", op.Out)
	}

	out, err := op.Fn([]value.Value{bandsValue(t, bands), value.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	imgs, err := value.AsImageSet(out)
	if err != nil || len(imgs) != 1 {
		t.Fatalf("network output: %v, %v", out, err)
	}

	fused, err := imgops.PCA(bands, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := imgs[0].MaxAbsDiff(fused.Components[0])
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-4 {
		t.Errorf("network PC1 differs from fused PCA by %g", d)
	}
}

func TestNetworkRegisterCompound(t *testing.T) {
	r := NewStandardRegistry()
	net := buildPCANetwork(t, 12, 12)
	op, err := net.RegisterCompound(r)
	if err != nil {
		t.Fatal(err)
	}
	// Now callable through the registry like any primitive operator.
	bands := scene(t)
	out, err := r.Apply(op.Name, bandsValue(t, bands), value.Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := value.AsImageSet(out); err != nil {
		t.Fatal(err)
	}
	// And it shows up in the browse.
	found := false
	for _, name := range r.Names() {
		if name == "pca_net" {
			found = true
		}
	}
	if !found {
		t.Error("compound operator not listed")
	}
}

func TestNetworkCycleDetection(t *testing.T) {
	r := NewStandardRegistry()
	n := NewNetwork("cyclic", []value.Type{value.TypeImage})
	if err := n.AddInput("in", 0); err != nil {
		t.Fatal(err)
	}
	// a depends on b depends on a.
	if err := n.AddOp("a", "img_add", "in", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddOp("b", "img_add", "in", "a"); err != nil {
		t.Fatal(err)
	}
	n.SetOutput("a")
	if _, err := n.Compile(r); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestNetworkTypeErrors(t *testing.T) {
	r := NewStandardRegistry()

	// Arg type mismatch: feeding an int where an image is expected.
	n := NewNetwork("badtype", []value.Type{value.TypeImage})
	n.AddInput("in", 0)
	n.AddConst("k", value.Int(3))
	n.AddOp("bad", "img_add", "in", "k")
	n.SetOutput("bad")
	if _, err := n.Compile(r); err == nil {
		t.Error("type mismatch must fail compile")
	}

	// Wrong arity.
	n2 := NewNetwork("badarity", []value.Type{value.TypeImage})
	n2.AddInput("in", 0)
	n2.AddOp("bad", "img_add", "in")
	n2.SetOutput("bad")
	if _, err := n2.Compile(r); err == nil {
		t.Error("arity mismatch must fail compile")
	}

	// Unknown operator.
	n3 := NewNetwork("badop", []value.Type{value.TypeImage})
	n3.AddInput("in", 0)
	n3.AddOp("bad", "no_such", "in")
	n3.SetOutput("bad")
	if _, err := n3.Compile(r); err == nil {
		t.Error("unknown operator must fail compile")
	}

	// Undefined node reference.
	n4 := NewNetwork("dangling", []value.Type{value.TypeImage})
	n4.AddInput("in", 0)
	n4.AddOp("bad", "img_add", "in", "ghost")
	n4.SetOutput("bad")
	if _, err := n4.Compile(r); err == nil {
		t.Error("dangling reference must fail compile")
	}

	// Missing output designation.
	n5 := NewNetwork("noout", []value.Type{value.TypeImage})
	n5.AddInput("in", 0)
	if _, err := n5.Compile(r); err == nil {
		t.Error("missing output must fail compile")
	}

	// Output node never defined.
	n6 := NewNetwork("ghostout", []value.Type{value.TypeImage})
	n6.AddInput("in", 0)
	n6.SetOutput("ghost")
	if _, err := n6.Compile(r); err == nil {
		t.Error("undefined output node must fail compile")
	}
}

func TestNetworkNodeValidation(t *testing.T) {
	n := NewNetwork("v", []value.Type{value.TypeImage})
	if err := n.AddInput("", 0); err == nil {
		t.Error("empty node id must fail")
	}
	if err := n.AddInput("x", 5); err == nil {
		t.Error("input index out of range must fail")
	}
	if err := n.AddConst("c", nil); err == nil {
		t.Error("nil const must fail")
	}
	if err := n.AddInput("in", 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddInput("in", 0); err == nil {
		t.Error("duplicate node id must fail")
	}
}

func TestNetworkMemoisesSharedNodes(t *testing.T) {
	// A diamond network: the shared upstream node must execute once.
	r := NewRegistry()
	calls := 0
	r.Register(&Operator{
		Name: "count_me", In: []value.Type{value.TypeInt}, Out: value.TypeInt,
		Fn: func(a []value.Value) (value.Value, error) {
			calls++
			return a[0], nil
		},
	})
	r.Register(&Operator{
		Name: "sum2", In: []value.Type{value.TypeInt, value.TypeInt}, Out: value.TypeInt,
		Fn: func(a []value.Value) (value.Value, error) {
			return a[0].(value.Int) + a[1].(value.Int), nil
		},
	})
	n := NewNetwork("diamond", []value.Type{value.TypeInt})
	n.AddInput("in", 0)
	n.AddOp("shared", "count_me", "in")
	n.AddOp("l", "count_me", "shared")
	n.AddOp("rgt", "count_me", "shared")
	n.AddOp("out", "sum2", "l", "rgt")
	n.SetOutput("out")
	op, err := n.Compile(r)
	if err != nil {
		t.Fatal(err)
	}
	out, err := op.Fn([]value.Value{value.Int(21)})
	if err != nil {
		t.Fatal(err)
	}
	if out.(value.Int) != 42 {
		t.Errorf("diamond output = %v", out)
	}
	if calls != 3 { // shared once, l once, rgt once
		t.Errorf("shared node evaluated %d times, want 3", calls)
	}
}
