package adt

import (
	"fmt"

	"gaea/internal/imgops"
	"gaea/internal/linalg"
	"gaea/internal/raster"
	"gaea/internal/value"
)

// NewStandardRegistry returns a registry pre-populated with the operators
// the paper names: the image accessors of §2.1.3, the composite /
// unsuperclassify pair of process P20 (Figure 3), NDVI and the change
// operators of the §1 scenario, the PCA network stages of Figure 4, and
// the fused pca/spca operators.
func NewStandardRegistry() *Registry {
	r := NewRegistry()
	for _, op := range standardOperators() {
		if err := r.Register(op); err != nil {
			// Registration of the built-in table only fails on a programming
			// error (duplicate name / bad type); surface it loudly.
			panic(err)
		}
	}
	return r
}

func standardOperators() []*Operator {
	imgT := value.TypeImage
	setImg := value.SetOf(value.TypeImage)
	matT := value.TypeMatrix
	vecT := value.TypeVector
	intT := value.TypeInt
	fltT := value.TypeFloat
	strT := value.TypeString

	return []*Operator{
		// ---- image accessors (§2.1.3) ----
		{
			Name: "img_nrow", In: []value.Type{imgT}, Out: intT,
			Doc: "number of rows of an image",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				return value.Int(im.Rows()), nil
			},
		},
		{
			Name: "img_ncol", In: []value.Type{imgT}, Out: intT,
			Doc: "number of columns of an image",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				return value.Int(im.Cols()), nil
			},
		},
		{
			Name: "img_type", In: []value.Type{imgT}, Out: strT,
			Doc: "pixel data type of an image",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				return value.String_(im.PixType()), nil
			},
		},
		{
			Name: "img_npixels", In: []value.Type{imgT}, Out: intT,
			Doc: "total pixel count of an image",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				return value.Int(im.Pixels()), nil
			},
		},
		{
			Name: "img_size_eq", In: []value.Type{imgT, imgT}, Out: value.TypeBool,
			Doc: "whether two images share dimensions",
			Fn: func(a []value.Value) (value.Value, error) {
				x, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				y, err := value.AsImage(a[1])
				if err != nil {
					return nil, err
				}
				return value.Bool(x.SameShape(y)), nil
			},
		},
		{
			Name: "img_mean", In: []value.Type{imgT}, Out: fltT,
			Doc: "mean pixel value",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				return value.Float(im.Stats().Mean), nil
			},
		},

		// ---- P20: composite + unsupervised classification (Figure 3) ----
		{
			Name: "composite", In: []value.Type{setImg}, Out: setImg,
			Doc: "stack co-registered bands into a multiband composite (validates shapes)",
			Fn: func(a []value.Value) (value.Value, error) {
				imgs, err := value.AsImageSet(a[0])
				if err != nil {
					return nil, err
				}
				if len(imgs) == 0 {
					return nil, fmt.Errorf("composite of no bands")
				}
				for i, im := range imgs[1:] {
					if !imgs[0].SameShape(im) {
						return nil, fmt.Errorf("composite: band %d shape %s differs from band 0 %s", i+1, im, imgs[0])
					}
				}
				items := make([]value.Value, len(imgs))
				for i, im := range imgs {
					items[i] = value.Image{Img: im}
				}
				s, err := value.NewSet(value.TypeImage, items)
				if err != nil {
					return nil, err
				}
				return s, nil
			},
		},
		{
			Name: "unsuperclassify", In: []value.Type{setImg, intT}, Out: imgT,
			Doc: "k-means unsupervised land-cover classification (deterministic)",
			Fn: func(a []value.Value) (value.Value, error) {
				imgs, err := value.AsImageSet(a[0])
				if err != nil {
					return nil, err
				}
				k, err := value.AsInt(a[1])
				if err != nil {
					return nil, err
				}
				out, err := imgops.Unsuperclassify(imgs, int(k), imgops.ClassifyOptions{Seed: 1})
				if err != nil {
					return nil, err
				}
				return value.Image{Img: out}, nil
			},
		},

		// ---- NDVI and change operators (§1 scenario) ----
		{
			Name: "ndvi", In: []value.Type{imgT, imgT}, Out: imgT,
			Doc: "normalized difference vegetation index (red, nir)",
			Fn: binaryImgOp(func(red, nir *raster.Image) (*raster.Image, error) {
				return imgops.NDVI(red, nir)
			}),
		},
		{
			Name: "img_subtract", In: []value.Type{imgT, imgT}, Out: imgT,
			Doc: "pixelwise difference a-b",
			Fn:  binaryImgOp(imgops.Subtract),
		},
		{
			Name: "img_ratio", In: []value.Type{imgT, imgT}, Out: imgT,
			Doc: "pixelwise ratio a/b (zero-stabilised)",
			Fn: binaryImgOp(func(x, y *raster.Image) (*raster.Image, error) {
				return imgops.Ratio(x, y, 1e-9)
			}),
		},
		{
			Name: "img_add", In: []value.Type{imgT, imgT}, Out: imgT,
			Doc: "pixelwise sum a+b",
			Fn:  binaryImgOp(imgops.Add),
		},
		{
			Name: "scale_offset", In: []value.Type{imgT, fltT, fltT}, Out: imgT,
			Doc: "pixelwise img*scale + offset",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				scale, err := value.AsFloat(a[1])
				if err != nil {
					return nil, err
				}
				offset, err := value.AsFloat(a[2])
				if err != nil {
					return nil, err
				}
				out, err := imgops.ScaleOffset(im, scale, offset)
				if err != nil {
					return nil, err
				}
				return value.Image{Img: out}, nil
			},
		},
		{
			Name: "threshold", In: []value.Type{imgT, strT, fltT}, Out: imgT,
			Doc: "binary image where pixel OP limit holds (OP in <, <=, >, >=)",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				op, err := value.AsString(a[1])
				if err != nil {
					return nil, err
				}
				limit, err := value.AsFloat(a[2])
				if err != nil {
					return nil, err
				}
				out, err := imgops.Threshold(im, op, limit)
				if err != nil {
					return nil, err
				}
				return value.Image{Img: out}, nil
			},
		},
		{
			Name: "reclass", In: []value.Type{imgT, vecT}, Out: imgT,
			Doc: "map value ranges to class codes by ascending breaks",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				breaks, ok := a[1].(value.Vector)
				if !ok {
					return nil, fmt.Errorf("reclass: breaks must be a vector")
				}
				out, err := imgops.Reclass(im, breaks)
				if err != nil {
					return nil, err
				}
				return value.Image{Img: out}, nil
			},
		},
		{
			Name: "img_and", In: []value.Type{setImg}, Out: imgT,
			Doc: "pixelwise conjunction of binary images",
			Fn: func(a []value.Value) (value.Value, error) {
				imgs, err := value.AsImageSet(a[0])
				if err != nil {
					return nil, err
				}
				out, err := imgops.And(imgs...)
				if err != nil {
					return nil, err
				}
				return value.Image{Img: out}, nil
			},
		},
		{
			Name: "area_fraction", In: []value.Type{imgT, fltT}, Out: fltT,
			Doc: "fraction of pixels equal to a class code",
			Fn: func(a []value.Value) (value.Value, error) {
				im, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				code, err := value.AsFloat(a[1])
				if err != nil {
					return nil, err
				}
				return value.Float(imgops.AreaFraction(im, code)), nil
			},
		},
		{
			Name: "img_lerp", In: []value.Type{imgT, imgT, fltT}, Out: imgT,
			Doc: "linear interpolation (1-t)*a + t*b, used by temporal interpolation",
			Fn: func(a []value.Value) (value.Value, error) {
				x, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				y, err := value.AsImage(a[1])
				if err != nil {
					return nil, err
				}
				t, err := value.AsFloat(a[2])
				if err != nil {
					return nil, err
				}
				sa, err := imgops.ScaleOffset(x, 1-t, 0)
				if err != nil {
					return nil, err
				}
				sb, err := imgops.ScaleOffset(y, t, 0)
				if err != nil {
					return nil, err
				}
				out, err := imgops.Add(sa, sb)
				if err != nil {
					return nil, err
				}
				return value.Image{Img: out}, nil
			},
		},

		{
			Name: "img_pair", In: []value.Type{imgT, imgT}, Out: setImg,
			Doc: "stack two images into a two-band set (for two-date analyses)",
			Fn: func(a []value.Value) (value.Value, error) {
				x, err := value.AsImage(a[0])
				if err != nil {
					return nil, err
				}
				y, err := value.AsImage(a[1])
				if err != nil {
					return nil, err
				}
				if !x.SameShape(y) {
					return nil, fmt.Errorf("img_pair: shapes differ: %s vs %s", x, y)
				}
				s, err := value.NewSet(value.TypeImage, []value.Value{value.Image{Img: x}, value.Image{Img: y}})
				if err != nil {
					return nil, err
				}
				return s, nil
			},
		},

		// ---- Figure 4: PCA network stages ----
		{
			Name: "convert_image_matrix", In: []value.Type{setImg}, Out: matT,
			Doc: "flatten co-registered images into a bands x pixels matrix",
			Fn: func(a []value.Value) (value.Value, error) {
				imgs, err := value.AsImageSet(a[0])
				if err != nil {
					return nil, err
				}
				m, err := imgops.ImagesToMatrix(imgs)
				if err != nil {
					return nil, err
				}
				return value.Matrix{M: m}, nil
			},
		},
		{
			Name: "center_rows", In: []value.Type{matT}, Out: matT,
			Doc: "subtract each row's mean (PCA pre-step)",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				out := m.Clone()
				d, n := out.Rows(), out.Cols()
				data := out.Data()
				for i := 0; i < d; i++ {
					row := data[i*n : (i+1)*n]
					mean := linalg.Mean(row)
					for j := range row {
						row[j] -= mean
					}
				}
				return value.Matrix{M: out}, nil
			},
		},
		{
			Name: "compute_covariance", In: []value.Type{matT}, Out: matT,
			Doc: "covariance matrix of row variables",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				cov, err := linalg.Covariance(m)
				if err != nil {
					return nil, err
				}
				return value.Matrix{M: cov}, nil
			},
		},
		{
			Name: "compute_correlation", In: []value.Type{matT}, Out: matT,
			Doc: "correlation matrix of row variables (SPCA pre-step)",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				corr, err := linalg.Correlation(m)
				if err != nil {
					return nil, err
				}
				return value.Matrix{M: corr}, nil
			},
		},
		{
			Name: "get_eigen_vector", In: []value.Type{matT, intT}, Out: vecT,
			Doc: "i-th eigenvector (descending eigenvalue order) of a symmetric matrix",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				idx, err := value.AsInt(a[1])
				if err != nil {
					return nil, err
				}
				pairs, err := linalg.EigenSym(m)
				if err != nil {
					return nil, err
				}
				if idx < 0 || int(idx) >= len(pairs) {
					return nil, fmt.Errorf("eigenvector index %d out of range 0..%d", idx, len(pairs)-1)
				}
				return value.Vector(pairs[idx].Vector), nil
			},
		},
		{
			Name: "get_eigen_values", In: []value.Type{matT}, Out: vecT,
			Doc: "all eigenvalues, descending",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				pairs, err := linalg.EigenSym(m)
				if err != nil {
					return nil, err
				}
				out := make(value.Vector, len(pairs))
				for i, p := range pairs {
					out[i] = p.Value
				}
				return out, nil
			},
		},
		{
			Name: "linear_combination", In: []value.Type{matT, vecT}, Out: matT,
			Doc: "project rows onto a coefficient vector, yielding a 1 x n matrix",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				coeffs, ok := a[1].(value.Vector)
				if !ok {
					return nil, fmt.Errorf("linear_combination: coefficients must be a vector")
				}
				proj, err := linalg.LinearCombination(m, coeffs)
				if err != nil {
					return nil, err
				}
				out, err := linalg.FromData(1, len(proj), proj)
				if err != nil {
					return nil, err
				}
				return value.Matrix{M: out}, nil
			},
		},
		{
			Name: "convert_matrix_image", In: []value.Type{matT, intT, intT}, Out: setImg,
			Doc: "reshape matrix rows into images of the given dimensions",
			Fn: func(a []value.Value) (value.Value, error) {
				m, err := value.AsMatrix(a[0])
				if err != nil {
					return nil, err
				}
				rows, err := value.AsInt(a[1])
				if err != nil {
					return nil, err
				}
				cols, err := value.AsInt(a[2])
				if err != nil {
					return nil, err
				}
				imgs, err := imgops.MatrixToImages(m, int(rows), int(cols), raster.PixFloat4)
				if err != nil {
					return nil, err
				}
				items := make([]value.Value, len(imgs))
				for i, im := range imgs {
					items[i] = value.Image{Img: im}
				}
				s, err := value.NewSet(value.TypeImage, items)
				if err != nil {
					return nil, err
				}
				return s, nil
			},
		},

		// ---- fused PCA / SPCA ----
		{
			Name: "pca_component", In: []value.Type{setImg, intT}, Out: imgT,
			Doc: "i-th principal component image (covariance PCA)",
			Fn:  pcaComponentFn(imgops.PCA),
		},
		{
			Name: "spca_component", In: []value.Type{setImg, intT}, Out: imgT,
			Doc: "i-th standardized principal component image (Eastman's SPCA)",
			Fn:  pcaComponentFn(imgops.SPCA),
		},
	}
}

func binaryImgOp(f func(a, b *raster.Image) (*raster.Image, error)) Func {
	return func(a []value.Value) (value.Value, error) {
		x, err := value.AsImage(a[0])
		if err != nil {
			return nil, err
		}
		y, err := value.AsImage(a[1])
		if err != nil {
			return nil, err
		}
		out, err := f(x, y)
		if err != nil {
			return nil, err
		}
		return value.Image{Img: out}, nil
	}
}

func pcaComponentFn(f func([]*raster.Image, int) (*imgops.PCAResult, error)) Func {
	return func(a []value.Value) (value.Value, error) {
		imgs, err := value.AsImageSet(a[0])
		if err != nil {
			return nil, err
		}
		idx, err := value.AsInt(a[1])
		if err != nil {
			return nil, err
		}
		if idx < 0 || int(idx) >= len(imgs) {
			return nil, fmt.Errorf("component index %d out of range 0..%d", idx, len(imgs)-1)
		}
		res, err := f(imgs, int(idx)+1)
		if err != nil {
			return nil, err
		}
		return value.Image{Img: res.Components[idx]}, nil
	}
}
