package adt

import (
	"fmt"
	"sort"

	"gaea/internal/value"
)

// Compound operators — Figure 4. A Network is a dataflow graph of operator
// applications: node inputs are wired either to other nodes' outputs, to
// the network's formal inputs, or to constants. The network compiles to a
// regular Operator, so a compound operator "can be applied as a primitive
// mapping function between two primitive classes" (§2.1.5).

// NodeKind distinguishes network node flavours.
type NodeKind int

// Node kinds.
const (
	NodeOp NodeKind = iota
	NodeInput
	NodeConst
)

// Node is one vertex of the dataflow network.
type Node struct {
	ID   string
	Kind NodeKind
	// Op names the registry operator for NodeOp nodes.
	Op string
	// Args lists the node IDs feeding each input port, for NodeOp nodes.
	Args []string
	// Index is the formal-parameter position for NodeInput nodes.
	Index int
	// Const holds the literal for NodeConst nodes.
	Const value.Value
}

// Network is a compound operator under construction.
type Network struct {
	Name string
	Doc  string
	// In declares the formal input types.
	In []value.Type
	// OutputNode names the node whose value the network returns.
	OutputNode string
	nodes      map[string]*Node
	order      []string // insertion order for deterministic diagnostics
}

// NewNetwork starts a compound operator definition.
func NewNetwork(name string, in []value.Type) *Network {
	return &Network{Name: name, In: in, nodes: make(map[string]*Node)}
}

func (n *Network) addNode(node *Node) error {
	if node.ID == "" {
		return fmt.Errorf("adt: network %s: node needs an id", n.Name)
	}
	if _, dup := n.nodes[node.ID]; dup {
		return fmt.Errorf("adt: network %s: duplicate node %q", n.Name, node.ID)
	}
	n.nodes[node.ID] = node
	n.order = append(n.order, node.ID)
	return nil
}

// AddInput declares node id as the network's index-th formal input.
func (n *Network) AddInput(id string, index int) error {
	if index < 0 || index >= len(n.In) {
		return fmt.Errorf("adt: network %s: input index %d out of range (have %d formals)", n.Name, index, len(n.In))
	}
	return n.addNode(&Node{ID: id, Kind: NodeInput, Index: index})
}

// AddConst declares node id as a literal value.
func (n *Network) AddConst(id string, v value.Value) error {
	if v == nil {
		return fmt.Errorf("adt: network %s: const node %q needs a value", n.Name, id)
	}
	return n.addNode(&Node{ID: id, Kind: NodeConst, Const: v})
}

// AddOp declares node id as the application of operator op to the outputs
// of the named argument nodes (which may be declared later).
func (n *Network) AddOp(id, op string, args ...string) error {
	return n.addNode(&Node{ID: id, Kind: NodeOp, Op: op, Args: args})
}

// SetOutput designates the node whose value the network returns.
func (n *Network) SetOutput(id string) { n.OutputNode = id }

// Compile type-checks the network against the registry, verifies it is
// acyclic and fully wired, and returns it as a registrable Operator.
func (n *Network) Compile(reg *Registry) (*Operator, error) {
	if n.OutputNode == "" {
		return nil, fmt.Errorf("adt: network %s: no output node designated", n.Name)
	}
	if _, ok := n.nodes[n.OutputNode]; !ok {
		return nil, fmt.Errorf("adt: network %s: output node %q not defined", n.Name, n.OutputNode)
	}
	// Resolve every node's static type, detecting cycles with the classic
	// three-colour DFS.
	types := make(map[string]value.Type)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int)
	var visit func(id string) error
	visit = func(id string) error {
		switch colour[id] {
		case grey:
			return fmt.Errorf("adt: network %s: cycle through node %q", n.Name, id)
		case black:
			return nil
		}
		colour[id] = grey
		node, ok := n.nodes[id]
		if !ok {
			return fmt.Errorf("adt: network %s: node %q referenced but not defined", n.Name, id)
		}
		switch node.Kind {
		case NodeInput:
			types[id] = n.In[node.Index]
		case NodeConst:
			types[id] = node.Const.Type()
		case NodeOp:
			op, err := reg.Lookup(node.Op)
			if err != nil {
				return fmt.Errorf("adt: network %s: node %q: %w", n.Name, id, err)
			}
			if len(node.Args) != len(op.In) {
				return fmt.Errorf("adt: network %s: node %q: %s takes %d args, wired %d", n.Name, id, node.Op, len(op.In), len(node.Args))
			}
			for i, argID := range node.Args {
				if err := visit(argID); err != nil {
					return err
				}
				got := types[argID]
				wantT := op.In[i]
				if got != wantT {
					if elem, ok := wantT.IsSet(); !ok || got != elem {
						return fmt.Errorf("adt: network %s: node %q arg %d: have %s, want %s", n.Name, id, i, got, wantT)
					}
				}
			}
			types[id] = op.Out
		}
		colour[id] = black
		return nil
	}
	if err := visit(n.OutputNode); err != nil {
		return nil, err
	}
	// Warn-level check: every declared node should be reachable; compute
	// the unreachable set for diagnostics but do not fail — dead nodes are
	// legal, just useless.
	_ = n.unreachableFrom(n.OutputNode)

	// Build the executable closure over a snapshot of node definitions.
	nodes := make(map[string]*Node, len(n.nodes))
	for id, node := range n.nodes {
		nodes[id] = node
	}
	name := n.Name
	formals := append([]value.Type(nil), n.In...)
	outID := n.OutputNode
	fn := func(args []value.Value) (value.Value, error) {
		memo := make(map[string]value.Value, len(nodes))
		var eval func(id string) (value.Value, error)
		eval = func(id string) (value.Value, error) {
			if v, ok := memo[id]; ok {
				return v, nil
			}
			node := nodes[id]
			var (
				out value.Value
				err error
			)
			switch node.Kind {
			case NodeInput:
				out = args[node.Index]
			case NodeConst:
				out = node.Const
			case NodeOp:
				in := make([]value.Value, len(node.Args))
				for i, argID := range node.Args {
					if in[i], err = eval(argID); err != nil {
						return nil, err
					}
				}
				out, err = reg.Apply(node.Op, in...)
				if err != nil {
					return nil, fmt.Errorf("compound %s node %q: %w", name, id, err)
				}
			}
			memo[id] = out
			return out, nil
		}
		return eval(outID)
	}
	return &Operator{
		Name:     n.Name,
		In:       formals,
		Out:      types[n.OutputNode],
		Doc:      n.Doc,
		Fn:       fn,
		Compound: true,
	}, nil
}

// unreachableFrom returns node IDs not reachable from the given root,
// sorted, for diagnostics.
func (n *Network) unreachableFrom(root string) []string {
	reach := make(map[string]bool)
	var walk func(id string)
	walk = func(id string) {
		if reach[id] {
			return
		}
		reach[id] = true
		if node, ok := n.nodes[id]; ok && node.Kind == NodeOp {
			for _, a := range node.Args {
				walk(a)
			}
		}
	}
	walk(root)
	var out []string
	for _, id := range n.order {
		if !reach[id] {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// RegisterCompound compiles the network and registers the result, making
// the compound operator available exactly like a primitive one.
func (n *Network) RegisterCompound(reg *Registry) (*Operator, error) {
	op, err := n.Compile(reg)
	if err != nil {
		return nil, err
	}
	if err := reg.Register(op); err != nil {
		return nil, err
	}
	return op, nil
}
