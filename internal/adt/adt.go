// Package adt implements the system-level semantics layer of §2.1.3: the
// registry of operators over primitive classes (the Postgres ADT facility
// of the prototype), and compound operators — "a network of
// intercommunicating operators" (Figure 4) — which can themselves be
// registered and applied "as a primitive mapping function between two
// primitive classes" (§2.1.5 item 3).
//
// The registry supports the browsing operations §4.2 promises: look up
// operators by name, list the operators applicable to a primitive class,
// and find the classes an operator applies to.
package adt

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gaea/internal/value"
)

// Errors returned by the registry.
var (
	ErrNotFound  = errors.New("adt: operator not found")
	ErrDuplicate = errors.New("adt: operator already registered")
	ErrArity     = errors.New("adt: wrong argument count")
	ErrArgType   = errors.New("adt: wrong argument type")
)

// Func is an operator implementation: a pure function from argument values
// to a result value.
type Func func(args []value.Value) (value.Value, error)

// Operator describes one registered operator on primitive classes.
type Operator struct {
	Name string
	// In lists the parameter types in order.
	In []value.Type
	// Out is the result type.
	Out value.Type
	// Doc is a one-line description shown by the browser.
	Doc string
	// Fn executes the operator. The registry validates arity and argument
	// types before calling it.
	Fn Func
	// Compound marks operators compiled from dataflow networks.
	Compound bool
}

// Signature renders the operator like "ndvi(image, image) image".
func (op *Operator) Signature() string {
	s := op.Name + "("
	for i, t := range op.In {
		if i > 0 {
			s += ", "
		}
		s += string(t)
	}
	return s + ") " + string(op.Out)
}

// Registry holds the operator catalogue. It is safe for concurrent use.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]*Operator
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ops: make(map[string]*Operator)}
}

// Register adds an operator. Names are unique; the paper's rule that "in no
// case is the old process overwritten" applies to operators too — evolve an
// operator by registering a new name.
func (r *Registry) Register(op *Operator) error {
	if op.Name == "" {
		return fmt.Errorf("adt: operator needs a name")
	}
	if op.Fn == nil {
		return fmt.Errorf("adt: operator %s needs an implementation", op.Name)
	}
	if !op.Out.Valid() {
		return fmt.Errorf("adt: operator %s has invalid output type %q", op.Name, op.Out)
	}
	for i, t := range op.In {
		if !t.Valid() {
			return fmt.Errorf("adt: operator %s has invalid input type %q at position %d", op.Name, t, i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.ops[op.Name]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicate, op.Name)
	}
	r.ops[op.Name] = op
	return nil
}

// Lookup returns the operator with the given name.
func (r *Registry) Lookup(name string) (*Operator, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.ops[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return op, nil
}

// Names returns all operator names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.ops))
	for n := range r.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OperatorsFor returns the operators applicable to a primitive class
// (operators with at least one parameter of that type, counting set
// element types), sorted by name — the §4.2 "look up appropriate operators
// for specific primitive classes" browse.
func (r *Registry) OperatorsFor(t value.Type) []*Operator {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Operator
	for _, op := range r.ops {
		for _, in := range op.In {
			if in == t {
				out = append(out, op)
				break
			}
			if elem, ok := in.IsSet(); ok && elem == t {
				out = append(out, op)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClassesWithOperator returns the distinct parameter types of a named
// operator — the inverse browse ("find the primitive classes that have a
// specific operator").
func (r *Registry) ClassesWithOperator(name string) ([]value.Type, error) {
	op, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	seen := make(map[value.Type]bool)
	var out []value.Type
	for _, t := range op.In {
		base := t
		if elem, ok := t.IsSet(); ok {
			base = elem
		}
		if !seen[base] {
			seen[base] = true
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// checkArgs validates argument count and types against the signature.
func checkArgs(op *Operator, args []value.Value) error {
	if len(args) != len(op.In) {
		return fmt.Errorf("%w: %s takes %d args, got %d", ErrArity, op.Name, len(op.In), len(args))
	}
	for i, a := range args {
		if a == nil {
			return fmt.Errorf("%w: %s arg %d is nil", ErrArgType, op.Name, i)
		}
		if a.Type() != op.In[i] {
			// A singleton scalar is acceptable where a set is expected;
			// operators like composite take SETOF image but a single image
			// is a valid one-element set.
			if elem, ok := op.In[i].IsSet(); ok && a.Type() == elem {
				continue
			}
			return fmt.Errorf("%w: %s arg %d is %s, want %s", ErrArgType, op.Name, i, a.Type(), op.In[i])
		}
	}
	return nil
}

// Apply validates arguments and invokes the named operator.
func (r *Registry) Apply(name string, args ...value.Value) (value.Value, error) {
	op, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := checkArgs(op, args); err != nil {
		return nil, err
	}
	out, err := op.Fn(args)
	if err != nil {
		return nil, fmt.Errorf("adt: %s: %w", name, err)
	}
	if out == nil {
		return nil, fmt.Errorf("adt: %s returned no value", name)
	}
	if out.Type() != op.Out {
		// Allow a scalar where a singleton set was declared.
		if elem, ok := op.Out.IsSet(); !ok || out.Type() != elem {
			return nil, fmt.Errorf("adt: %s returned %s, declared %s", name, out.Type(), op.Out)
		}
	}
	return out, nil
}
