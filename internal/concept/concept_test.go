package concept

import (
	"errors"
	"reflect"
	"testing"

	"gaea/internal/catalog"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

func newManager(t *testing.T) (*Manager, *catalog.Catalog, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	// Classes C2..C5 of Figure 2 plus NDVI members.
	for _, name := range []string{"c2", "c3", "c4", "c5", "c6", "c7", "c8", "c20"} {
		err := cat.Define(&catalog.Class{
			Name: name, Kind: catalog.KindBase,
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	m, err := OpenManager(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	return m, cat, st
}

// defineFigure2 builds the desert specialization hierarchy of Figure 2.
func defineFigure2(t *testing.T, m *Manager) {
	t.Helper()
	defs := []*Concept{
		{Name: "desert", Doc: "imprecisely defined desertic region"},
		{Name: "hot trade-wind desert", Parents: []string{"desert"}, Classes: []string{"c2", "c3", "c4", "c5"}},
		{Name: "ice-snow desert", Parents: []string{"desert"}, Classes: []string{"c6"}},
		{Name: "vegetation change", Classes: []string{"c7", "c8"}},
	}
	for _, c := range defs {
		if err := m.Define(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDefineAndGet(t *testing.T) {
	m, _, _ := newManager(t)
	defineFigure2(t, m)
	c, err := m.Get("hot trade-wind desert")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Classes) != 4 || c.Parents[0] != "desert" {
		t.Errorf("concept = %+v", c)
	}
	if !m.Exists("desert") || m.Exists("jungle") {
		t.Error("Exists wrong")
	}
	if _, err := m.Get("jungle"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
	want := []string{"desert", "hot trade-wind desert", "ice-snow desert", "vegetation change"}
	if !reflect.DeepEqual(m.Names(), want) {
		t.Errorf("Names = %v", m.Names())
	}
}

func TestDefineValidation(t *testing.T) {
	m, _, _ := newManager(t)
	defineFigure2(t, m)
	cases := []struct {
		name string
		c    *Concept
	}{
		{"bad name", &Concept{Name: "9bad"}},
		{"duplicate", &Concept{Name: "desert"}},
		{"unknown class", &Concept{Name: "x", Classes: []string{"ghost"}}},
		{"dup class", &Concept{Name: "x", Classes: []string{"c2", "c2"}}},
		{"unknown parent", &Concept{Name: "x", Parents: []string{"ghost"}}},
		{"self parent", &Concept{Name: "x", Parents: []string{"x"}}},
	}
	for _, tc := range cases {
		if err := m.Define(tc.c); err == nil {
			t.Errorf("%s: should fail", tc.name)
		}
	}
}

func TestHierarchyQueries(t *testing.T) {
	m, _, _ := newManager(t)
	defineFigure2(t, m)
	// Children of desert.
	kids := m.Children("desert")
	if !reflect.DeepEqual(kids, []string{"hot trade-wind desert", "ice-snow desert"}) {
		t.Errorf("Children = %v", kids)
	}
	// Ancestors of a leaf.
	anc, err := m.Ancestors("hot trade-wind desert")
	if err != nil || !reflect.DeepEqual(anc, []string{"desert"}) {
		t.Errorf("Ancestors = %v, %v", anc, err)
	}
	if _, err := m.Ancestors("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ancestors of missing err = %v", err)
	}
	// MemberClasses of desert fan out over all specializations.
	classes, err := m.MemberClasses("desert")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"c2", "c3", "c4", "c5", "c6"}
	if !reflect.DeepEqual(classes, want) {
		t.Errorf("MemberClasses(desert) = %v", classes)
	}
	// Leaf concept sees only its own classes.
	classes, _ = m.MemberClasses("ice-snow desert")
	if !reflect.DeepEqual(classes, []string{"c6"}) {
		t.Errorf("MemberClasses(leaf) = %v", classes)
	}
	// Reverse mapping.
	if got := m.ConceptsOfClass("c6"); !reflect.DeepEqual(got, []string{"ice-snow desert"}) {
		t.Errorf("ConceptsOfClass = %v", got)
	}
	if got := m.ConceptsOfClass("unused_class"); len(got) != 0 {
		t.Errorf("ConceptsOfClass(unused) = %v", got)
	}
}

func TestAddClass(t *testing.T) {
	m, cat, _ := newManager(t)
	defineFigure2(t, m)
	// A new derivation joins the concept (the two-scientists story: a new
	// process defines class c20, which becomes another member).
	if err := m.AddClass("vegetation change", "c20"); err != nil {
		t.Fatal(err)
	}
	c, _ := m.Get("vegetation change")
	if len(c.Classes) != 3 {
		t.Errorf("classes = %v", c.Classes)
	}
	if err := m.AddClass("vegetation change", "c20"); err == nil {
		t.Error("duplicate member must fail")
	}
	if err := m.AddClass("ghost", "c20"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing concept err = %v", err)
	}
	if err := m.AddClass("vegetation change", "ghost"); err == nil {
		t.Error("unknown class must fail")
	}
	_ = cat
}

func TestPersistenceAcrossReopen(t *testing.T) {
	m, cat, st := newManager(t)
	defineFigure2(t, m)
	m.AddClass("vegetation change", "c20")

	m2, err := OpenManager(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m2.Get("vegetation change")
	if err != nil || len(c.Classes) != 3 {
		t.Errorf("reload = %+v, %v", c, err)
	}
	classes, _ := m2.MemberClasses("desert")
	if len(classes) != 5 {
		t.Errorf("reload MemberClasses = %v", classes)
	}
}

func TestDiamondHierarchy(t *testing.T) {
	// ISA hierarchies "can be general directed acyclic graph structures"
	// (footnote 4): a concept with two parents.
	m, _, _ := newManager(t)
	m.Define(&Concept{Name: "dry"})
	m.Define(&Concept{Name: "hot"})
	m.Define(&Concept{Name: "hot-dry", Parents: []string{"dry", "hot"}, Classes: []string{"c2"}})
	anc, err := m.Ancestors("hot-dry")
	if err != nil || !reflect.DeepEqual(anc, []string{"dry", "hot"}) {
		t.Errorf("diamond ancestors = %v, %v", anc, err)
	}
	for _, p := range []string{"dry", "hot"} {
		classes, _ := m.MemberClasses(p)
		if !reflect.DeepEqual(classes, []string{"c2"}) {
			t.Errorf("MemberClasses(%s) = %v", p, classes)
		}
	}
}
