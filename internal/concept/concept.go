// Package concept implements the high-level semantics layer of §2.1.1:
// Concepts. "A concept is a representation of a spatio-temporal entity set
// extended with an imprecise definition ... formally, each type of base
// data and each process for deriving data defines a unique class; a
// concept is simply a set of classes."
//
// DESERTIC REGION means "the same thing" to every scientist at the highest
// level of abstraction, but each derivation (rainfall < 250 mm vs < 200 mm)
// pins down a different class; the concept collects them. Concepts form
// specialization hierarchies (hot trade-wind desert ISA desert), which the
// paper allows to be general DAGs (footnote 4).
package concept

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"gaea/internal/catalog"
	"gaea/internal/storage"
)

// Errors returned by the manager.
var (
	ErrExists   = errors.New("concept: already defined")
	ErrNotFound = errors.New("concept: not found")
	ErrBad      = errors.New("concept: invalid definition")
	ErrCycle    = errors.New("concept: ISA cycle")
)

// Concept is one named concept.
type Concept struct {
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
	// Classes are the member non-primitive classes — the dashed expansion
	// arrows of Figure 2 (hot trade-wind desert → {C2, C3, C4, C5}).
	Classes []string `json:"classes"`
	// Parents are ISA links to more general concepts.
	Parents []string `json:"parents,omitempty"`
}

var identRe = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_ -]*$`)

// Manager is the persistent concept registry.
type Manager struct {
	mu       sync.RWMutex
	store    *storage.Store
	cat      *catalog.Catalog
	concepts map[string]*Concept
}

const conceptKeyPrefix = "concept/"

// OpenManager loads concepts from the store.
func OpenManager(st *storage.Store, cat *catalog.Catalog) (*Manager, error) {
	m := &Manager{store: st, cat: cat, concepts: make(map[string]*Concept)}
	for _, key := range st.MetaKeys(conceptKeyPrefix) {
		raw, ok := st.MetaGet(key)
		if !ok {
			continue
		}
		var c Concept
		if err := json.Unmarshal(raw, &c); err != nil {
			return nil, fmt.Errorf("concept: corrupt definition at %s: %w", key, err)
		}
		m.concepts[c.Name] = &c
	}
	return m, nil
}

// Define validates and persists a concept. Parents must already exist
// (define general concepts first); member classes must exist in the
// catalog. The paper notes users may create silly concepts (CLOUD ∪
// CENSUS) — "we leave it to the user to avoid such" — so semantic sanity
// is not checked, only referential integrity.
func (m *Manager) Define(c *Concept) error {
	if !identRe.MatchString(c.Name) {
		return fmt.Errorf("%w: bad name %q", ErrBad, c.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.concepts[c.Name]; dup {
		return fmt.Errorf("%w: %s", ErrExists, c.Name)
	}
	seen := map[string]bool{}
	for _, cls := range c.Classes {
		if !m.cat.Exists(cls) {
			return fmt.Errorf("%w: member class %q unknown", ErrBad, cls)
		}
		if seen[cls] {
			return fmt.Errorf("%w: duplicate member class %q", ErrBad, cls)
		}
		seen[cls] = true
	}
	for _, p := range c.Parents {
		if p == c.Name {
			return fmt.Errorf("%w: %s ISA itself", ErrCycle, c.Name)
		}
		if _, ok := m.concepts[p]; !ok {
			return fmt.Errorf("%w: parent concept %q unknown", ErrBad, p)
		}
	}
	raw, err := json.Marshal(c)
	if err != nil {
		return err
	}
	if err := m.store.MetaSet(conceptKeyPrefix+c.Name, raw); err != nil {
		return err
	}
	cp := *c
	cp.Classes = append([]string(nil), c.Classes...)
	cp.Parents = append([]string(nil), c.Parents...)
	m.concepts[c.Name] = &cp
	return nil
}

// AddClass extends a concept with another member class — a scientist
// registering a new derivation of the shared concept.
func (m *Manager) AddClass(concept, class string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.concepts[concept]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, concept)
	}
	if !m.cat.Exists(class) {
		return fmt.Errorf("%w: class %q unknown", ErrBad, class)
	}
	for _, existing := range c.Classes {
		if existing == class {
			return fmt.Errorf("%w: class %q already a member of %s", ErrBad, class, concept)
		}
	}
	c.Classes = append(c.Classes, class)
	raw, err := json.Marshal(c)
	if err != nil {
		return err
	}
	return m.store.MetaSet(conceptKeyPrefix+concept, raw)
}

// Get returns a concept by name.
func (m *Manager) Get(name string) (*Concept, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.concepts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	cp := *c
	cp.Classes = append([]string(nil), c.Classes...)
	cp.Parents = append([]string(nil), c.Parents...)
	return &cp, nil
}

// Exists reports whether a concept is defined.
func (m *Manager) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.concepts[name]
	return ok
}

// Names lists all concepts, sorted.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.concepts))
	for n := range m.concepts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Children returns the concepts directly specialising the given one.
func (m *Manager) Children(name string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for n, c := range m.concepts {
		for _, p := range c.Parents {
			if p == name {
				out = append(out, n)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Ancestors returns the transitive ISA parents, sorted.
func (m *Manager) Ancestors(name string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.concepts[name]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		for _, p := range m.concepts[n].Parents {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(name)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// MemberClasses returns the classes of a concept including those of all
// specialising concepts — querying DESERT covers hot trade-wind deserts
// and ice/snow deserts. Sorted, deduplicated.
func (m *Manager) MemberClasses(name string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.concepts[name]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// Build the child relation once.
	children := map[string][]string{}
	for n, c := range m.concepts {
		for _, p := range c.Parents {
			children[p] = append(children[p], n)
		}
	}
	classes := map[string]bool{}
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, cls := range m.concepts[n].Classes {
			classes[cls] = true
		}
		for _, ch := range children[n] {
			walk(ch)
		}
	}
	walk(name)
	out := make([]string, 0, len(classes))
	for cls := range classes {
		out = append(out, cls)
	}
	sort.Strings(out)
	return out, nil
}

// ConceptsOfClass returns the concepts a class belongs to directly,
// sorted — the reverse mapping from the derivation layer up.
func (m *Manager) ConceptsOfClass(class string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for n, c := range m.concepts {
		for _, cls := range c.Classes {
			if cls == class {
				out = append(out, n)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}
