// Package wirebounds flags allocations sized by wire-decoded integers
// that are not dominated by a bound check.
//
// Invariant (PR 5/6): every frame is length-bounded against MaxFrame
// before allocation, and any count or length decoded OUT of a frame body
// must be bounded before it sizes an allocation. A v2 body is at most
// MaxFrame bytes, but a uvarint inside it can still claim 2^64 elements:
// `make([]T, 0, n)` with an unchecked decoded n lets a 10-byte frame
// demand terabytes — a remote-triggered OOM. Decoders must clamp
// (Dec.Cap bounds a count by the bytes remaining, since every element
// costs at least one byte) or compare the value against a limit first.
package wirebounds

import (
	"go/ast"
	"go/token"
	"go/types"

	"gaea/internal/lint"
)

// Analyzer is the wirebounds invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "wirebounds",
	Doc: "allocations sized by a wire-decoded integer must be bounded first " +
		"(compare against a limit, or clamp with Dec.Cap)",
	Run: run,
}

// decSources are the wire.Dec cursor reads whose results are
// attacker-controlled sizes. U8/Bool are excluded: one byte cannot
// name a dangerous allocation.
var decSources = map[string]bool{"Uvarint": true, "Varint": true, "U64": true}

// binarySources are the encoding/binary reads treated as taint sources
// (integer decodes straight off a byte slice).
var binarySources = map[string]bool{
	"Uvarint": true, "Varint": true,
	"Uint16": true, "Uint32": true, "Uint64": true,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: taint — objects assigned from a decode call.
	tainted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) == 0 {
			return true
		}
		for ri, rhs := range assign.Rhs {
			srcIdx, ok := sourceValue(info, rhs)
			if !ok {
				continue
			}
			// A lone multi-result call fans out across the LHS; otherwise
			// RHS i maps to LHS i.
			if len(assign.Rhs) == 1 {
				for li, lhs := range assign.Lhs {
					if srcIdx < 0 || li == srcIdx {
						taintIdent(info, tainted, lhs)
					}
				}
			} else if ri < len(assign.Lhs) {
				taintIdent(info, tainted, assign.Lhs[ri])
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	// Pass 2: sanitizers — a comparison mentioning a tainted object
	// anywhere in the function counts as the bound check. (Flow
	// insensitive by design: the invariant is "a check exists", the
	// reviewer owns its placement.) Loop conditions do not count: the
	// ubiquitous `for i := 0; i < n; i++` bounds the loop, not the
	// allocation that precedes it.
	loopCond := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond != nil {
			ast.Inspect(f.Cond, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					loopCond[e] = true
				}
				return true
			})
		}
		return true
	})
	sanitized := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || loopCond[be] {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			for i, side := range [2]ast.Expr{be.X, be.Y} {
				// `n > 0` (and friends) is a lower bound: it rejects
				// nothing an attacker would send. Only a comparison whose
				// other side could bound from above counts.
				other := be.Y
				if i == 1 {
					other = be.X
				}
				if isZeroOrOne(info, other) {
					continue
				}
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && tainted[obj] {
							sanitized[obj] = true
						}
					}
					return true
				})
			}
		}
		return true
	})

	// Pass 3: sinks — make() sized by a tainted, unsanitized value.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		for _, arg := range call.Args[1:] {
			if obj := taintedOperand(info, tainted, sanitized, arg); obj != nil {
				pass.Reportf(arg.Pos(),
					"make sized by wire-decoded value %q without a bound check (clamp with Dec.Cap or compare against a limit first)",
					obj.Name())
			}
		}
		return true
	})
}

// isZeroOrOne reports whether e is the constant 0 or 1 — comparisons
// against those are emptiness checks, not bound checks.
func isZeroOrOne(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	s := tv.Value.ExactString()
	return s == "0" || s == "1"
}

// sourceValue reports whether expr derives from a decode call (through
// conversions and arithmetic) and which result index carries the decoded
// value (-1 = the whole expression).
func sourceValue(info *types.Info, expr ast.Expr) (int, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if _, ok := sourceValue(info, e.Args[0]); ok {
				return -1, true
			}
			return 0, false
		}
		return sourceResults(info, e)
	case *ast.BinaryExpr:
		if _, ok := sourceValue(info, e.X); ok {
			return -1, true
		}
		if _, ok := sourceValue(info, e.Y); ok {
			return -1, true
		}
	}
	return 0, false
}

// sourceResults reports whether call is a taint source and which result
// index carries the decoded value (-1 = all results).
func sourceResults(info *types.Info, call *ast.CallExpr) (int, bool) {
	f := lint.FuncObj(info, call)
	if f == nil || f.Pkg() == nil {
		return 0, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	if recv := sig.Recv(); recv != nil {
		// wire.Dec cursor reads.
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Name() == "Dec" &&
			lint.IsPkgFunc(f, "internal/wire", f.Name()) &&
			decSources[f.Name()] {
			return -1, true
		}
		// binary.BigEndian.Uint32 and friends (methods on the ByteOrder
		// implementations).
		if f.Pkg().Path() == "encoding/binary" && binarySources[f.Name()] {
			return -1, true
		}
		return 0, false
	}
	// binary.Uvarint / binary.Varint: (value, n).
	if f.Pkg().Path() == "encoding/binary" && binarySources[f.Name()] {
		return 0, true
	}
	return 0, false
}

func taintIdent(info *types.Info, tainted map[types.Object]bool, lhs ast.Expr) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		if obj := info.Defs[id]; obj != nil {
			tainted[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			tainted[obj] = true
		}
	}
}

// taintedOperand reports the tainted, unsanitized object that flows into
// expr, if any. Conversions and arithmetic propagate taint; calls other
// than conversions and the min/max builtins act as sanitizers (their
// results are presumed bounded, e.g. Dec.Cap).
func taintedOperand(info *types.Info, tainted, sanitized map[types.Object]bool, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && tainted[obj] && !sanitized[obj] {
			return obj
		}
	case *ast.BinaryExpr:
		if obj := taintedOperand(info, tainted, sanitized, e.X); obj != nil {
			return obj
		}
		return taintedOperand(info, tainted, sanitized, e.Y)
	case *ast.CallExpr:
		// Conversions propagate; min() clamps only if some arg is clean;
		// max() never clamps upward.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return taintedOperand(info, tainted, sanitized, e.Args[0])
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "min":
					var first types.Object
					for _, a := range e.Args {
						obj := taintedOperand(info, tainted, sanitized, a)
						if obj == nil {
							return nil // one clean bound clamps the whole min
						}
						if first == nil {
							first = obj
						}
					}
					return first
				case "max":
					for _, a := range e.Args {
						if obj := taintedOperand(info, tainted, sanitized, a); obj != nil {
							return obj
						}
					}
				}
			}
		}
	}
	return nil
}
