package wb

import (
	"encoding/binary"

	"gaea/internal/wire"
)

const maxFrame = 1 << 20

func badUvarint(d *wire.Dec) []uint64 {
	n := d.Uvarint()
	out := make([]uint64, 0, n) // want `make sized by wire-decoded value "n" without a bound check`
	for i := uint64(0); i < n; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}

func badConverted(d *wire.Dec) []byte {
	n := int(d.Uvarint())
	return make([]byte, n) // want `make sized by wire-decoded value "n" without a bound check`
}

func badArith(d *wire.Dec) []byte {
	n := d.Uvarint()
	return make([]byte, int(n)*8) // want `make sized by wire-decoded value "n" without a bound check`
}

func badMap(d *wire.Dec) map[string]string {
	n := d.Uvarint()
	return make(map[string]string, n) // want `make sized by wire-decoded value "n" without a bound check`
}

func badBigEndian(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `make sized by wire-decoded value "n" without a bound check`
}

func badVarintPair(b []byte) []int64 {
	v, _ := binary.Varint(b)
	return make([]int64, v) // want `make sized by wire-decoded value "v" without a bound check`
}

func badMax(d *wire.Dec) []byte {
	n := int(d.Uvarint())
	return make([]byte, max(n, 8)) // want `make sized by wire-decoded value "n" without a bound check`
}

func badZeroGuard(d *wire.Dec) []string {
	// `n > 0` rejects nothing an attacker would send: not a bound check.
	if n := d.Uvarint(); n > 0 {
		return make([]string, 0, n) // want `make sized by wire-decoded value "n" without a bound check`
	}
	return nil
}

func goodCompared(d *wire.Dec) []byte {
	n := d.Uvarint()
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

func goodCap(d *wire.Dec) []string {
	n := d.Uvarint()
	out := make([]string, 0, d.Cap(n))
	return out
}

func goodMin(d *wire.Dec) []byte {
	n := int(d.Uvarint())
	return make([]byte, min(n, maxFrame))
}

func goodUntainted() []byte {
	n := 64
	return make([]byte, n)
}

func allowed(d *wire.Dec) []byte {
	n := d.Uvarint()
	//lint:gaea-allow wirebounds fixture: suppression escape hatch
	return make([]byte, n)
}
