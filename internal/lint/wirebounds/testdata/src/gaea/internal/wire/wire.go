// Stub of the real gaea/internal/wire Dec cursor, just enough surface
// for the wirebounds fixtures to type-check.
package wire

type Dec struct{ b []byte }

func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) Uvarint() uint64 {
	if len(d.b) == 0 {
		return 0
	}
	v := uint64(d.b[0])
	d.b = d.b[1:]
	return v
}

func (d *Dec) Varint() int64 { return int64(d.Uvarint()) }

func (d *Dec) U64() uint64 { return d.Uvarint() }

func (d *Dec) U8() byte {
	if len(d.b) == 0 {
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *Dec) Len() int { return len(d.b) }

// Cap clamps a decoded element count by the bytes remaining in the
// body, like the real Dec.Cap.
func (d *Dec) Cap(n uint64) int {
	if n > uint64(len(d.b)) {
		return len(d.b)
	}
	return int(n)
}
