package wirebounds_test

import (
	"testing"

	"gaea/internal/lint/linttest"
	"gaea/internal/lint/wirebounds"
)

func TestWirebounds(t *testing.T) {
	linttest.Run(t, "testdata", wirebounds.Analyzer, "wb")
}
