// Package et stands in for the public root package with an Err*
// taxonomy and a classify translator.
package et

import (
	"errors"
	"fmt"

	"et/internal/store"
)

var ErrFull = errors.New("et: full")

func classify(err error) error {
	if errors.Is(err, store.ErrFull) {
		return fmt.Errorf("%w: %v", ErrFull, err)
	}
	return err
}

func GoodClassified(k string) error {
	if err := store.Put(k); err != nil {
		return classify(err)
	}
	return nil
}

func GoodClassifiedVar(k string) (string, error) {
	v, err := store.Get(k)
	if err != nil {
		return "", classify(err)
	}
	return v, nil
}

func GoodLaundered(k string) error {
	err := store.Put(k)
	err = classify(err)
	return err
}

func goodUnexported(k string) error {
	return store.Put(k) // unexported helpers stay below the boundary
}

func BadDirect(k string) error {
	return store.Put(k) // want `error from et/internal/store returned across the public API boundary`
}

func BadVar(k string) error {
	err := store.Put(k)
	if err != nil {
		return err // want `error from et/internal/store returned across the public API boundary`
	}
	return nil
}

func BadMulti(k string) (string, error) {
	v, err := store.Get(k)
	return v, err // want `error from et/internal/store returned across the public API boundary`
}

func BadWrapped(k string) error {
	if err := store.Put(k); err != nil {
		return fmt.Errorf("put %q: %w", k, err) // want `error from et/internal/store returned across the public API boundary`
	}
	return nil
}

func AllowedRaw(k string) error {
	err := store.Put(k)
	//lint:gaea-allow errtaxonomy fixture: suppression escape hatch
	return err
}
