// Package store stands in for an internal engine package with private
// sentinel errors.
package store

import "errors"

var ErrFull = errors.New("store: full")

func Put(k string) error {
	if k == "" {
		return ErrFull
	}
	return nil
}

func Get(k string) (string, error) {
	if k == "" {
		return "", ErrFull
	}
	return k, nil
}
