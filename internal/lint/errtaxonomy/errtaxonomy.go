// Package errtaxonomy enforces the public error taxonomy: sentinel
// errors minted inside internal/* packages must be translated into the
// root package's exported Err* taxonomy (via classify) before they
// cross the public API boundary. Callers program against errors.Is(err,
// gaea.ErrNotFound); leaking storage.errHeapFull or object.errNoClass
// couples them to private identities that are free to change.
package errtaxonomy

import (
	"go/ast"
	"go/types"
	"strings"

	"gaea/internal/lint"
)

// Analyzer is the errtaxonomy invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "errtaxonomy",
	Doc: "exported root-package functions must classify internal/* errors " +
		"into the public Err* taxonomy before returning them",
	Run: run,
}

func run(pass *lint.Pass) error {
	// Only the root package is the public boundary.
	if strings.Contains(pass.Pkg.Path(), "/") {
		return nil
	}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !returnsError(pass, fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

var errType = types.Universe.Lookup("error").Type()

func returnsError(pass *lint.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && types.Identical(t, errType) {
			return true
		}
	}
	return false
}

// checkFunc tracks, per error variable, the internal package its latest
// (lexical) assignment came from, and flags returns of still-raw values.
func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// raw[obj] = internal package path the value came from; entries are
	// deleted when a later assignment launders the variable.
	raw := make(map[types.Object]string)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures have their own flow; stay conservative
		case *ast.AssignStmt:
			recordAssign(pass, raw, n.Lhs, n.Rhs)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, name := range vs.Names {
							lhs[i] = name
						}
						recordAssign(pass, raw, lhs, vs.Values)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if t := info.TypeOf(res); t == nil || !types.Identical(t, errType) {
					continue
				}
				if pkg := rawSource(pass, raw, res); pkg != "" {
					pass.Reportf(res.Pos(),
						"error from %s returned across the public API boundary without classification (wrap it: classify(err))",
						pkg)
				}
			}
		}
		return true
	})
}

func recordAssign(pass *lint.Pass, raw map[types.Object]string, lhs, rhs []ast.Expr) {
	info := pass.TypesInfo
	set := func(e ast.Expr, pkg string) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || obj.Type() == nil || !types.Identical(obj.Type(), errType) {
			return
		}
		if pkg == "" {
			delete(raw, obj)
		} else {
			raw[obj] = pkg
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value call: every error-typed LHS inherits the callee's
		// provenance.
		pkg := ""
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			pkg = internalCallee(pass, call)
		}
		for _, l := range lhs {
			set(l, pkg)
		}
		return
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		set(lhs[i], rawSource(pass, raw, r))
	}
}

// rawSource reports the internal package an expression's error value
// originates from ("" if classified or not internal).
func rawSource(pass *lint.Pass, raw map[types.Object]string, expr ast.Expr) string {
	info := pass.TypesInfo
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return raw[info.ObjectOf(e)]
	case *ast.CallExpr:
		f := lint.FuncObj(info, e)
		if f != nil && f.Pkg() == pass.Pkg && f.Name() == "classify" {
			return "" // laundered into the taxonomy
		}
		if pkg := internalCallee(pass, e); pkg != "" {
			return pkg
		}
		// fmt.Errorf("...: %w", err) preserves the wrapped identity for
		// errors.Is — wrapping does not classify.
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" && f.Name() == "Errorf" {
			for _, arg := range e.Args {
				if pkg := rawSource(pass, raw, arg); pkg != "" {
					return pkg
				}
			}
		}
	}
	return ""
}

// internalCallee reports the callee's package path when the call targets
// an internal/* package of this module and returns an error.
func internalCallee(pass *lint.Pass, call *ast.CallExpr) string {
	f := lint.FuncObj(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	path := f.Pkg().Path()
	if strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/") {
		return path
	}
	return ""
}
