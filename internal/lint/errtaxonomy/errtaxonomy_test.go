package errtaxonomy_test

import (
	"testing"

	"gaea/internal/lint/errtaxonomy"
	"gaea/internal/lint/linttest"
)

func TestErrtaxonomy(t *testing.T) {
	linttest.Run(t, "testdata", errtaxonomy.Analyzer, "et")
}
