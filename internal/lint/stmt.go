package lint

import (
	"go/ast"
	"go/types"
)

// Sublists returns the nested statement lists of one statement: the
// lists a structural path walker must descend into.
func Sublists(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else.(ast.Stmt)})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return ClauseLists(s.Body)
	case *ast.TypeSwitchStmt:
		return ClauseLists(s.Body)
	case *ast.SelectStmt:
		return ClauseLists(s.Body)
	case *ast.LabeledStmt:
		return [][]ast.Stmt{{s.Stmt}}
	}
	return nil
}

// ClauseLists returns the clause bodies of a switch/type-switch/select
// body block.
func ClauseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// FindStmt locates the statement list directly containing target,
// searching nested statements, and the target's index in it.
func FindStmt(list []ast.Stmt, target ast.Stmt) ([]ast.Stmt, int) {
	for i, s := range list {
		if s == target {
			return list, i
		}
		for _, sub := range Sublists(s) {
			if l, idx := FindStmt(sub, target); l != nil {
				return l, idx
			}
		}
	}
	return nil, 0
}

// HasDefault reports whether a switch body has a default clause.
func HasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// HasBreak reports whether n contains a break binding to n itself (not
// to a nested loop, switch, or select).
func HasBreak(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.BranchStmt:
			if m.Tok.String() == "break" {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// IsPanic reports whether call invokes the panic builtin.
func IsPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
