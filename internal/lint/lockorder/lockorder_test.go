package lockorder_test

import (
	"testing"

	"gaea/internal/lint/linttest"
	"gaea/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer, "gaea/internal/storage", "gaea/internal/object")
}
