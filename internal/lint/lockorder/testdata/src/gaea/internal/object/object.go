// Package object mirrors the real internal/object locks: commitMu
// (rank 1) and the catalog mu (rank 7, leaf).
package object

import (
	"sync"

	"gaea/internal/storage"
)

type Store struct {
	mu       sync.RWMutex
	commitMu sync.Mutex
	st       *storage.Store
}

func (o *Store) goodCommitPath() {
	o.commitMu.Lock()
	defer o.commitMu.Unlock()
	o.st.Append() // rank 6 under rank 1: ascending, fine
	o.mu.Lock()   // publish under the leaf lock last
	o.mu.Unlock()
}

func (o *Store) badStorageUnderCatalog() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.st.Append() // want `call to Append acquires storage.wal.mu \(rank 6\) while object.Store.mu \(rank 7\) is held`
}

func (o *Store) badCommitUnderCatalog() {
	o.mu.RLock()
	defer o.mu.RUnlock()
	o.commitMu.Lock() // want `acquires object.Store.commitMu \(rank 1\) while object.Store.mu \(rank 7\) is held`
	o.commitMu.Unlock()
}
