// Package storage mirrors the real internal/storage lock landscape:
// Store.mu (rank 2), Heap.mu (3), bufferPool.mu (4), Store.metaMu (5),
// wal.mu (6).
package storage

import "sync"

type wal struct{ mu sync.Mutex }

type bufferPool struct{ mu sync.Mutex }

type Heap struct{ mu sync.RWMutex }

type Store struct {
	mu     sync.RWMutex
	metaMu sync.Mutex
	heap   *Heap
	buf    *bufferPool
	log    *wal
}

func (s *Store) goodCommitOrder() {
	s.mu.RLock()
	s.heap.mu.Lock()
	s.heap.mu.Unlock()
	s.buf.mu.Lock()
	s.buf.mu.Unlock()
	s.metaMu.Lock()
	s.log.mu.Lock()
	s.log.mu.Unlock()
	s.metaMu.Unlock()
	s.mu.RUnlock()
}

func (s *Store) goodSequential() {
	s.metaMu.Lock()
	s.metaMu.Unlock()
	// metaMu released: taking mu afterwards is fine.
	s.mu.RLock()
	s.mu.RUnlock()
}

func (s *Store) badMetaBeforeMu() {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	s.mu.RLock() // want `acquires storage.Store.mu \(rank 2\) while storage.Store.metaMu \(rank 5\) is held`
	s.mu.RUnlock()
}

func (s *Store) badWalBeforeHeap() {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	s.heap.mu.Lock() // want `acquires storage.Heap.mu \(rank 3\) while storage.wal.mu \(rank 6\) is held`
	s.heap.mu.Unlock()
}

// Append exposes a WAL append; its lock set (wal.mu) flows to callers
// as a fact.
func (s *Store) Append() {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
}

// Checkpoint takes the exclusive store lock; rank 2 flows as a fact.
func (s *Store) Checkpoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *Store) goodHelperAscending() {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	s.Append() // 5 then 6: ascending, fine
}

func (s *Store) badHelperDescending() {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	s.Checkpoint() // want `call to Checkpoint acquires storage.Store.mu \(rank 2\) while storage.wal.mu \(rank 6\) is held`
}

func (s *Store) allowedInversion() {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	//lint:gaea-allow lockorder fixture: suppression escape hatch
	s.mu.RLock()
	s.mu.RUnlock()
}
