// Package lockorder statically enforces the mutex-acquisition order
// documented in PR 4 across internal/storage and internal/object. The
// commit path may hold several locks at once; deadlock freedom rests on
// every path acquiring them in one global order:
//
//	object.Store.commitMu   (1, commit serialisation)
//	storage.Store.mu        (2, checkpoint exclusion, usually RLock)
//	storage.Heap.mu         (3, per-heap page access)
//	storage.bufferPool.mu   (4, buffer freelist)
//	storage.Store.metaMu    (5, metadata + WAL group section)
//	storage.wal.mu          (6, log append)
//	object.Store.mu         (7, catalog map — leaf, never across storage I/O)
//
// The analyzer computes, per function, the set of locks it may acquire
// (transitively, via facts that flow across packages) and walks each
// body in source order tracking the held set; acquiring a lock ranked
// at or below one already held is reported.
package lockorder

import (
	"go/ast"
	"go/types"

	"gaea/internal/lint"
)

// Analyzer is the lockorder invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "mutexes in internal/storage and internal/object must be acquired " +
		"in the documented global order (see PR 4)",
	Run: run,
}

// ranks is the documented global acquisition order, ascending.
var ranks = map[string]int{
	"object.Store.commitMu": 1,
	"storage.Store.mu":      2,
	"storage.Heap.mu":       3,
	"storage.bufferPool.mu": 4,
	"storage.Store.metaMu":  5,
	"storage.wal.mu":        6,
	"object.Store.mu":       7,
	// Federation coordinator locks rank below every kernel lock: the
	// router never calls into a local kernel while holding them (it
	// talks to shards over the wire), but the decision log is always
	// taken under — never around — the router mutex.
	"fed.Router.mu":      8,
	"fed.decisionLog.mu": 9,
}

const orderDoc = "commitMu → storage.Store.mu → Heap.mu → bufferPool.mu → metaMu → wal.mu → object.Store.mu → fed.Router.mu → fed.decisionLog.mu"

// lockSet is the per-function fact: ranked locks the function may
// acquire, directly or through callees.
type lockSet struct {
	Locks []string
}

func run(pass *lint.Pass) error {
	fns := collectFuncs(pass)

	// Pass A: per-function transitive lock sets, to a fixed point so
	// in-package call chains converge; cross-package sets arrive as facts
	// from already-analyzed dependencies.
	for round := 0; round <= len(fns); round++ {
		changed := false
		for _, fn := range fns {
			if updateLockSet(pass, fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Pass B: source-order held-set walk over every function body.
	for _, fn := range fns {
		w := &walker{pass: pass}
		w.stmts(fn.decl.Body.List)
	}
	return nil
}

type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pass *lint.Pass) []*funcInfo {
	var out []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			out = append(out, &funcInfo{decl: fd, obj: obj})
		}
	}
	return out
}

// lockIdent extracts the ranked lock identity of a Lock/RLock/Unlock/
// RUnlock call, or "". Identities are pkgname.TypeName.field for field
// mutexes and pkgname.var for package-level ones.
func lockIdent(pass *lint.Pass, call *ast.CallExpr) (id string, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	op = sel.Sel.Name
	info := pass.TypesInfo
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// owner.field.Lock(): identity from the owner's named type.
		t := info.TypeOf(x.X)
		if t == nil {
			return "", ""
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", ""
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name, op
	case *ast.Ident:
		// Package-level mutex: mu.Lock().
		obj := info.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), op
		}
	}
	return "", ""
}

func isAcquire(op string) bool {
	return op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock"
}

// updateLockSet recomputes fn's transitive lock set; reports growth.
func updateLockSet(pass *lint.Pass, fn *funcInfo) bool {
	var have lockSet
	pass.ImportObjectFact(fn.obj, &have)
	set := make(map[string]bool)
	for _, l := range have.Locks {
		set[l] = true
	}
	grew := false
	add := func(l string) {
		if l != "" && ranks[l] != 0 && !set[l] {
			set[l] = true
			grew = true
		}
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, op := lockIdent(pass, call); id != "" && isAcquire(op) {
			add(id)
			return true
		}
		if f := lint.FuncObj(pass.TypesInfo, call); f != nil {
			var callee lockSet
			if pass.ImportObjectFact(f, &callee) {
				for _, l := range callee.Locks {
					add(l)
				}
			}
		}
		return true
	})
	if grew {
		fact := lockSet{}
		for l := range set {
			fact.Locks = append(fact.Locks, l)
		}
		sortStrings(fact.Locks)
		pass.ExportObjectFact(fn.obj, &fact)
	}
	return grew
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// walker tracks the held lock set in source order.
type walker struct {
	pass *lint.Pass
	held []string // acquisition order
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function (so: no release here); deferred helper calls are
		// checked against the held set at the defer site.
		if id, _ := lockIdent(w.pass, s.Call); id != "" {
			return
		}
		w.checkCall(s.Call)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.exprOpt(s.Cond)
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.exprOpt(s.Cond)
		w.stmt(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.exprOpt(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.exprOpt(s.Tag)
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.exprOpt(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		w.stmts(s.Body)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.GoStmt:
		// The goroutine has its own held set; its body is checked as a
		// fresh root.
		fresh := &walker{pass: w.pass}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			fresh.stmts(lit.Body.List)
		}
	case *ast.SendStmt:
		w.expr(s.Value)
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.IncDecStmt:
	}
}

func (w *walker) exprOpt(e ast.Expr) {
	if e != nil {
		w.expr(e)
	}
}

// expr processes acquisitions, releases, and callee lock sets inside an
// expression, in source order.
func (w *walker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fresh := &walker{pass: w.pass}
			fresh.stmts(n.Body.List)
			return false
		case *ast.CallExpr:
			if id, op := lockIdent(w.pass, n); id != "" {
				if isAcquire(op) {
					w.acquire(id, n)
				} else {
					w.release(id)
				}
				return false
			}
			w.checkCall(n)
		}
		return true
	})
}

func (w *walker) acquire(id string, at *ast.CallExpr) {
	r := ranks[id]
	if r == 0 {
		return
	}
	for _, h := range w.held {
		if ranks[h] > r {
			w.pass.Reportf(at.Pos(),
				"acquires %s (rank %d) while %s (rank %d) is held — violates the documented lock order (%s)",
				id, r, h, ranks[h], orderDoc)
		}
	}
	w.held = append(w.held, id)
}

func (w *walker) release(id string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == id {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// checkCall validates a callee's transitive lock set against the locks
// currently held at the call site.
func (w *walker) checkCall(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	f := lint.FuncObj(w.pass.TypesInfo, call)
	if f == nil {
		return
	}
	var callee lockSet
	if !w.pass.ImportObjectFact(f, &callee) {
		return
	}
	for _, l := range callee.Locks {
		r := ranks[l]
		if r == 0 {
			continue
		}
		for _, h := range w.held {
			if ranks[h] > r {
				w.pass.Reportf(call.Pos(),
					"call to %s acquires %s (rank %d) while %s (rank %d) is held — violates the documented lock order (%s)",
					f.Name(), l, r, h, ranks[h], orderDoc)
			}
		}
	}
}
