// Package linttest runs lint analyzers over GOPATH-style fixture trees,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture code
// lives under <testdata>/src/<importpath>/, and expected diagnostics are
// declared inline with trailing comments of the form
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic must match a want clause on its line and every want
// clause must be matched — extra or missing diagnostics fail the test.
// Fixture packages may import each other (loaded source-first, so facts
// flow) and the standard library (loaded from build-cache export data
// via the go tool).
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gaea/internal/lint"
)

// Run loads the named fixture packages (plus their fixture-local
// dependencies), applies the analyzer, and checks diagnostics against
// the fixtures' want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	diags, fset, files, err := analyze(testdata, a, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, fset, files, diags)
}

func analyze(testdata string, a *lint.Analyzer, roots []string) ([]lint.Diagnostic, *token.FileSet, []*ast.File, error) {
	src := filepath.Join(testdata, "src")

	// Discover the fixture package set: the named roots plus every
	// fixture-local import, transitively.
	type fixture struct {
		path    string
		dir     string
		files   []string
		imports []string
	}
	fixtures := make(map[string]*fixture)
	var scan func(path string) error
	scan = func(path string) error {
		if _, ok := fixtures[path]; ok {
			return nil
		}
		dir := filepath.Join(src, filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("linttest: fixture package %q: %v", path, err)
		}
		fx := &fixture{path: path, dir: dir}
		fixtures[path] = fx
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			fname := filepath.Join(dir, e.Name())
			fx.files = append(fx.files, fname)
			f, err := parser.ParseFile(token.NewFileSet(), fname, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				fx.imports = append(fx.imports, p)
			}
		}
		for _, imp := range fx.imports {
			if _, err := os.Stat(filepath.Join(src, filepath.FromSlash(imp))); err == nil {
				if err := scan(imp); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, p := range roots {
		if err := scan(p); err != nil {
			return nil, nil, nil, err
		}
	}

	// External (standard library) imports load from export data.
	extSet := make(map[string]bool)
	for _, fx := range fixtures {
		for _, imp := range fx.imports {
			if _, local := fixtures[imp]; !local {
				extSet[imp] = true
			}
		}
	}
	exports, err := stdlibExports(extSet)
	if err != nil {
		return nil, nil, nil, err
	}

	// Topological order: fixture imports first.
	var order []*fixture
	state := make(map[string]int)
	var visit func(fx *fixture) error
	visit = func(fx *fixture) error {
		switch state[fx.path] {
		case 1:
			return fmt.Errorf("linttest: fixture import cycle through %s", fx.path)
		case 2:
			return nil
		}
		state[fx.path] = 1
		for _, imp := range fx.imports {
			if dep, ok := fixtures[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[fx.path] = 2
		order = append(order, fx)
		return nil
	}
	var all []*fixture
	for _, fx := range fixtures {
		all = append(all, fx)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].path < all[j].path })
	for _, fx := range all {
		if err := visit(fx); err != nil {
			return nil, nil, nil, err
		}
	}

	pkgs, err := lint.CheckFixtures(exports, func(yield func(path string, files []string) bool) {
		for _, fx := range order {
			if !yield(fx.path, fx.files) {
				return
			}
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}

	diags, err := lint.NewDriver().Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	var fset *token.FileSet
	for _, p := range pkgs {
		fset = p.Fset
		files = append(files, p.Files...)
	}
	return diags, fset, files, nil
}

// wantRE picks the quoted regexps out of a want comment — either
// interpreted ("...") or raw (`...`) string syntax.
var wantRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[len("want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[key][]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		res := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(res))
		}
		found := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// stdlibExports resolves export-data files for the external imports and
// their transitive dependencies via the go tool.
func stdlibExports(paths map[string]bool) (map[string]string, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	var list []string
	for p := range paths {
		list = append(list, p)
	}
	sort.Strings(list)
	return lint.ExportData(list)
}
