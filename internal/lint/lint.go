package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Mirrors analysis.Analyzer.
type Analyzer struct {
	// Name is the short identifier used in diagnostics, -only flags, and
	// //lint:gaea-allow comments.
	Name string
	// Doc is the one-paragraph rationale shown by `gaea-vet -list`.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg      *Package
	driver   *Driver
	suppress func(pos token.Position, analyzer string) bool
	out      *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an adjacent
// //lint:gaea-allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress != nil && p.suppress(position, p.Analyzer.Name) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj for downstream packages analyzed
// by the same analyzer in the same driver run. Facts flow in dependency
// order: a package's imports are always analyzed first.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if obj == nil || fact == nil {
		return
	}
	p.driver.facts[factKey{p.Analyzer, obj}] = fact
}

// ImportObjectFact copies the fact previously exported for obj into the
// pointer target, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, target any) bool {
	if obj == nil {
		return false
	}
	f, ok := p.driver.facts[factKey{p.Analyzer, obj}]
	if !ok {
		return false
	}
	tv := reflect.ValueOf(target)
	if tv.Kind() != reflect.Pointer {
		return false
	}
	fv := reflect.ValueOf(f)
	// Facts are conventionally exported as pointers (as in x/tools);
	// unwrap to copy the value into the caller's target.
	if fv.Kind() == reflect.Pointer && fv.Type().Elem().AssignableTo(tv.Elem().Type()) {
		tv.Elem().Set(fv.Elem())
		return true
	}
	if fv.Type().AssignableTo(tv.Elem().Type()) {
		tv.Elem().Set(fv)
		return true
	}
	return false
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
}

// Driver runs analyzers over loaded packages in dependency order,
// carrying facts across package boundaries.
type Driver struct {
	facts map[factKey]any
}

// NewDriver builds an empty driver.
func NewDriver() *Driver { return &Driver{facts: make(map[factKey]any)} }

// Run applies every analyzer to every package (packages must already be
// in dependency order, as Load returns them) and returns the surviving
// diagnostics sorted by position.
func (d *Driver) Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				pkg:       pkg,
				driver:    d,
				suppress:  pkg.allowed,
				out:       &out,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Vet loads the packages matching patterns (dir anchors the go tool)
// and runs the analyzers over them: the one-call form used by
// cmd/gaea-vet and the self-test.
func Vet(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return NewDriver().Run(pkgs, analyzers)
}

// ---------------------------------------------------------------------
// Shared type/AST helpers used by several analyzers.

// FuncObj resolves the called function/method object of a call
// expression, or nil.
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether f is the named function of the package whose
// import path ends in pathSuffix (exact path, or "/"+suffix: fixtures
// mirror real packages under short testdata paths).
func IsPkgFunc(f *types.Func, pathSuffix, name string) bool {
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	return pathMatches(f.Pkg().Path(), pathSuffix)
}

func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// PathMatches reports whether an import path is suffix, or ends in
// "/"+suffix — so fixture packages vendored under testdata match the
// same rules as the real module.
func PathMatches(path, suffix string) bool { return pathMatches(path, suffix) }

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasContextParam reports whether the signature takes a context.Context
// anywhere (conventionally first).
func HasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
