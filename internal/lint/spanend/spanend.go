// Package spanend enforces the tracing hygiene invariant from PR 7:
// every span opened with obs.Start or obs.StartWith must be closed with
// End on every path out of its scope — normally via defer. A span that
// is never ended holds its trace open forever: the trace neither lands
// in the recent ring nor the slow-op log, and its buffer is pinned for
// the tracer's lifetime.
package spanend

import (
	"go/ast"
	"go/types"

	"gaea/internal/lint"
)

// Analyzer is the spanend invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "spanend",
	Doc: "every obs.Start/StartWith span must be ended on all return paths " +
		"(prefer `defer sp.End()`)",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn.Body)
			return true
		})
	}
	return nil
}

// start is one obs.Start/StartWith call site and the span it binds.
type start struct {
	stmt ast.Stmt
	span types.Object
	name string // called function, for diagnostics
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var starts []*start
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		f := lint.FuncObj(info, call)
		if f == nil || (f.Name() != "Start" && f.Name() != "StartWith") ||
			!lint.IsPkgFunc(f, "internal/obs", f.Name()) {
			return true
		}
		id, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(assign.Pos(), "span from obs.%s discarded: bind it and call End (prefer `defer sp.End()`)", f.Name())
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		starts = append(starts, &start{stmt: assign, span: obj, name: "obs." + f.Name()})
		return true
	})

	for _, st := range starts {
		checkSpan(pass, body, st)
	}
}

func checkSpan(pass *lint.Pass, body *ast.BlockStmt, st *start) {
	info := pass.TypesInfo

	// Uses of the span anywhere but as a method receiver mean the span
	// escapes (returned, stored, handed to another goroutine's owner):
	// ownership transferred, nothing to prove here.
	recv := make(map[*ast.Ident]bool)
	closureEnds := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && info.Uses[id] == st.span {
			recv[id] = true
		}
		return true
	})
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == st.span && !recv[id] {
			escapes = true
		}
		return true
	})
	if escapes {
		return
	}
	// An End inside any function literal (deferred cleanup closures,
	// goroutine hand-off) satisfies the invariant wholesale: the closure
	// owns the close.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isEnd(info, call, st.span) {
				closureEnds = true
			}
			return true
		})
		return false
	})
	if closureEnds {
		return
	}

	w := &walker{pass: pass, info: info, st: st}
	if list, idx := lint.FindStmt(body.List, st.stmt); list != nil {
		fallEnded, terminated := w.walk(list[idx+1:], false)
		if !terminated && !fallEnded {
			pass.Reportf(st.stmt.Pos(), "span %q from %s not ended before its scope ends (prefer `defer %s.End()`)",
				w.spanName(), st.name, w.spanName())
		}
	}
}

func isEnd(info *types.Info, call *ast.CallExpr, span types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && info.Uses[id] == span
}

// walker performs the structural path check: from the statement after
// the Start, every return (and the scope's fall-through) must be
// preceded by End on that path.
type walker struct {
	pass *lint.Pass
	info *types.Info
	st   *start
}

func (w *walker) spanName() string { return w.st.span.Name() }

// walk checks one statement list. ended reports whether End has run on
// the path entering the list. It returns (endedAtFallThrough,
// terminated): terminated means no path falls out the bottom of the
// list (every path returned, panicked, or branched away).
func (w *walker) walk(list []ast.Stmt, ended bool) (bool, bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if isEnd(w.info, call, w.st.span) {
					ended = true
				}
				if lint.IsPanic(w.info, call) {
					return ended, true
				}
			}
		case *ast.DeferStmt:
			if isEnd(w.info, s.Call, w.st.span) {
				ended = true
			}
		case *ast.ReturnStmt:
			if !ended {
				w.pass.Reportf(s.Pos(), "span %q from %s not ended on this return path (prefer `defer %s.End()`)",
					w.spanName(), w.st.name, w.spanName())
			}
			return true, true
		case *ast.BranchStmt:
			// break/continue/goto: the path leaves this list. The target
			// re-enters an enclosing scope that is checked separately;
			// treat as terminated here.
			return ended, true
		case *ast.BlockStmt:
			var term bool
			ended, term = w.walk(s.List, ended)
			if term {
				return ended, true
			}
		case *ast.LabeledStmt:
			var term bool
			ended, term = w.walk([]ast.Stmt{s.Stmt}, ended)
			if term {
				return ended, true
			}
		case *ast.IfStmt:
			tEnd, tTerm := w.walk(s.Body.List, ended)
			eEnd, eTerm := ended, false
			if s.Else != nil {
				eEnd, eTerm = w.walk([]ast.Stmt{s.Else.(ast.Stmt)}, ended)
			}
			switch {
			case tTerm && eTerm:
				return ended, true
			case tTerm:
				ended = eEnd
			case eTerm:
				ended = tEnd
			default:
				ended = tEnd && eEnd
			}
		case *ast.ForStmt:
			w.walk(s.Body.List, ended)
			if s.Cond == nil && !lint.HasBreak(s.Body) {
				return ended, true
			}
			// The loop may run zero times: the entry state carries over.
		case *ast.RangeStmt:
			w.walk(s.Body.List, ended)
		case *ast.SwitchStmt:
			ended = w.walkClauses(lint.ClauseLists(s.Body), lint.HasDefault(s.Body), ended)
		case *ast.TypeSwitchStmt:
			ended = w.walkClauses(lint.ClauseLists(s.Body), lint.HasDefault(s.Body), ended)
		case *ast.SelectStmt:
			// Exactly one clause runs, so the clauses are the only paths.
			ended = w.walkClauses(lint.ClauseLists(s.Body), true, ended)
		}
	}
	return ended, false
}

// walkClauses merges the fall-through state of a switch/select body.
func (w *walker) walkClauses(clauses [][]ast.Stmt, exhaustive bool, ended bool) bool {
	fallEnded := true
	anyFall := false
	for _, c := range clauses {
		cEnd, cTerm := w.walk(c, ended)
		if !cTerm {
			anyFall = true
			fallEnded = fallEnded && cEnd
		}
	}
	if !exhaustive {
		anyFall = true
		fallEnded = fallEnded && ended
	}
	if !anyFall && len(clauses) > 0 {
		// All clauses terminate and one always runs: unreachable after.
		return ended
	}
	return fallEnded
}
