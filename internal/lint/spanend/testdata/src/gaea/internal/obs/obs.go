// Stub of the real gaea/internal/obs tracing surface, just enough for
// the spanend fixtures to type-check.
package obs

import "context"

type Tracer struct{}

type Span struct{ name string }

func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

func StartWith(ctx context.Context, tr *Tracer, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

func (s *Span) End() {}

func (s *Span) Annotate(k, v string) {}
