package se

import (
	"context"
	"errors"

	"gaea/internal/obs"
)

func goodDefer(ctx context.Context) error {
	ctx, sp := obs.Start(ctx, "good")
	defer sp.End()
	_ = ctx
	return nil
}

func goodDeferClosure(ctx context.Context, tr *obs.Tracer) error {
	ctx, sp := obs.StartWith(ctx, tr, "good")
	defer func() {
		sp.Annotate("k", "v")
		sp.End()
	}()
	_ = ctx
	return nil
}

func goodAllPaths(ctx context.Context, fail bool) error {
	ctx, sp := obs.Start(ctx, "good")
	_ = ctx
	if fail {
		sp.End()
		return errors.New("fail")
	}
	sp.End()
	return nil
}

func goodEscapes(ctx context.Context) (*obs.Span, error) {
	_, sp := obs.Start(ctx, "handoff")
	return sp, nil // ownership transferred to the caller
}

func goodSwitch(ctx context.Context, k int) error {
	_, sp := obs.Start(ctx, "sw")
	switch k {
	case 0:
		sp.End()
		return nil
	default:
		sp.End()
	}
	return nil
}

func badDiscard(ctx context.Context) {
	_, _ = obs.Start(ctx, "discarded") // want `span from obs.Start discarded`
}

func badEarlyReturn(ctx context.Context, fail bool) error {
	ctx, sp := obs.Start(ctx, "leaky")
	_ = ctx
	if fail {
		return errors.New("fail") // want `span "sp" from obs.Start not ended on this return path`
	}
	sp.End()
	return nil
}

func badNeverEnded(ctx context.Context) error {
	_, sp := obs.Start(ctx, "leaky")
	sp.Annotate("k", "v")
	return nil // want `span "sp" from obs.Start not ended on this return path`
}

func badFallsOffScope(ctx context.Context, ok bool) {
	if ok {
		_, sp := obs.Start(ctx, "leaky") // want `span "sp" from obs.Start not ended before its scope ends`
		sp.Annotate("k", "v")
	}
}

func badStartWith(ctx context.Context, tr *obs.Tracer) error {
	_, sp := obs.StartWith(ctx, tr, "leaky")
	sp.Annotate("k", "v")
	return nil // want `span "sp" from obs.StartWith not ended on this return path`
}

func badSwitchOnePath(ctx context.Context, k int) error {
	_, sp := obs.Start(ctx, "sw")
	switch k {
	case 0:
		return nil // want `span "sp" from obs.Start not ended on this return path`
	default:
		sp.End()
	}
	return nil
}

func allowedLeak(ctx context.Context) error {
	_, sp := obs.Start(ctx, "measured-leak")
	sp.Annotate("k", "v")
	//lint:gaea-allow spanend fixture: suppression escape hatch
	return nil
}
