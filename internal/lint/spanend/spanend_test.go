package spanend_test

import (
	"testing"

	"gaea/internal/lint/linttest"
	"gaea/internal/lint/spanend"
)

func TestSpanend(t *testing.T) {
	linttest.Run(t, "testdata", spanend.Analyzer, "se")
}
