// Package suite assembles the full gaea-vet analyzer roster in one
// place, so the cmd/gaea-vet multichecker and the self-test that runs
// the suite over the real module can never drift apart.
package suite

import (
	"gaea/internal/lint"
	"gaea/internal/lint/ctxflow"
	"gaea/internal/lint/errtaxonomy"
	"gaea/internal/lint/lockorder"
	"gaea/internal/lint/poolsafe"
	"gaea/internal/lint/spanend"
	"gaea/internal/lint/wirebounds"
)

// All is the invariant suite, in diagnostic-name order.
var All = []*lint.Analyzer{
	ctxflow.Analyzer,
	errtaxonomy.Analyzer,
	lockorder.Analyzer,
	poolsafe.Analyzer,
	spanend.Analyzer,
	wirebounds.Analyzer,
}
