package suite_test

// The gaea-vet self-test: run the full invariant suite over the real
// module and demand zero diagnostics. This is what keeps the tree
// honest between CI runs of cmd/gaea-vet — `go test ./...` alone
// re-proves every invariant, and the -race CI job exercises the
// analyzers' own concurrency-free contract under the detector.

import (
	"os"
	"path/filepath"
	"testing"

	"gaea/internal/lint"
	"gaea/internal/lint/suite"
)

func TestModuleIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	diags, err := lint.Vet(root, []string{"./..."}, suite.All)
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d invariant violation(s); fix them or add a //lint:gaea-allow with a reason", len(diags))
	}
}

func TestSuiteNamesUniqueAndDocumented(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range suite.All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(suite.All) < 6 {
		t.Fatalf("suite has %d analyzers, want >= 6", len(suite.All))
	}
}
