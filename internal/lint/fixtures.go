package lint

import (
	"fmt"
	"go/token"
	"iter"
)

// ExportData resolves build-cache export-data files for the given import
// paths and their transitive dependencies (building them as needed).
// Used by linttest to satisfy fixtures' standard-library imports.
func ExportData(paths []string) (map[string]string, error) {
	metas, err := goList(".", append([]string{"-export", "-deps", "--"}, paths...))
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			out[m.ImportPath] = m.Export
		}
	}
	return out, nil
}

// CheckFixtures type-checks fixture packages from source in the order
// the sequence yields them (dependencies first). Imports resolve against
// earlier fixtures, then against the export map.
func CheckFixtures(exports map[string]string, pkgs iter.Seq2[string, []string]) ([]*Package, error) {
	fset := token.NewFileSet()
	tc := newTypechecker(fset, func(path string) (string, error) {
		if f, ok := exports[path]; ok {
			return f, nil
		}
		return "", fmt.Errorf("lint: fixture imports %q, which is neither a fixture package nor resolved export data", path)
	})
	var out []*Package
	for path, files := range pkgs {
		pkg, err := tc.check(path, "", "", files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
