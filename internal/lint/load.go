package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow holds the //lint:gaea-allow suppressions: file → line →
	// analyzer names allowed on that line and the next.
	allow map[string]map[int][]string
}

// allowed reports whether a diagnostic by analyzer at pos is suppressed
// by a //lint:gaea-allow comment on the same line or the line above.
func (p *Package) allowed(pos token.Position, analyzer string) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
}

// Load lists patterns with the go tool (building export data for every
// dependency), then parses and type-checks each in-module package from
// source in dependency order, so analyzers see one consistent set of
// types.Object identities across the whole module. dir anchors the go
// invocation (any directory inside the module).
//
// Only packages matching the patterns (the roots) are returned for
// analysis; in-module dependencies of the roots are type-checked too so
// cross-package facts flow, and are included ahead of their importers.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, append([]string{"-export", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPkg, len(metas))
	var modPath string
	for _, m := range metas {
		byPath[m.ImportPath] = m
		if !m.Standard && m.Module != nil && modPath == "" {
			modPath = m.Module.Path
		}
	}
	inModule := func(m *listPkg) bool {
		return !m.Standard && m.Module != nil && m.Module.Path == modPath
	}

	// Topological order over in-module packages (imports first).
	var order []*listPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(m *listPkg) error
	visit = func(m *listPkg) error {
		switch state[m.ImportPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", m.ImportPath)
		case 2:
			return nil
		}
		state[m.ImportPath] = 1
		for _, imp := range m.Imports {
			if dep, ok := byPath[imp]; ok && inModule(dep) {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[m.ImportPath] = 2
		order = append(order, m)
		return nil
	}
	// Deterministic order regardless of go list output order.
	var modPkgs []*listPkg
	for _, m := range metas {
		if inModule(m) {
			modPkgs = append(modPkgs, m)
		}
	}
	sort.Slice(modPkgs, func(i, j int) bool { return modPkgs[i].ImportPath < modPkgs[j].ImportPath })
	for _, m := range modPkgs {
		if err := visit(m); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	tc := newTypechecker(fset, func(path string) (string, error) {
		m, ok := byPath[path]
		if !ok || m.Export == "" {
			return "", fmt.Errorf("lint: no export data for %q", path)
		}
		return m.Export, nil
	})

	var out []*Package
	for _, m := range order {
		files := make([]string, len(m.GoFiles))
		for i, f := range m.GoFiles {
			files[i] = filepath.Join(m.Dir, f)
		}
		pkg, err := tc.check(m.ImportPath, m.Name, m.Dir, files)
		if err != nil {
			return nil, err
		}
		if !m.DepOnly {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// goList runs `go list -json` with the given extra args and decodes the
// package stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var metas []*listPkg
	dec := json.NewDecoder(outPipe)
	for {
		m := new(listPkg)
		if err := dec.Decode(m); err != nil {
			if err == io.EOF {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
		}
		metas = append(metas, m)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	return metas, nil
}

// typechecker chains a source-checked package map in front of the gc
// export-data importer, so in-module packages resolve to their
// source-checked types while the standard library loads from the build
// cache.
type typechecker struct {
	fset   *token.FileSet
	source map[string]*types.Package
	gc     types.Importer
}

func newTypechecker(fset *token.FileSet, exportFile func(path string) (string, error)) *typechecker {
	tc := &typechecker{fset: fset, source: make(map[string]*types.Package)}
	tc.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return tc
}

func (tc *typechecker) Import(path string) (*types.Package, error) {
	if pkg, ok := tc.source[path]; ok {
		return pkg, nil
	}
	return tc.gc.Import(path)
}

// check parses and type-checks one package from source and records it
// for importers that follow.
func (tc *typechecker) check(path, name, dir string, files []string) (*Package, error) {
	pkg := &Package{
		Path:  path,
		Name:  name,
		Dir:   dir,
		Fset:  tc.fset,
		allow: make(map[string]map[int][]string),
	}
	for _, fname := range files {
		f, err := parser.ParseFile(tc.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.indexAllows(f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: tc}
	tpkg, err := conf.Check(path, tc.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Name = tpkg.Name()
	tc.source[path] = tpkg
	return pkg, nil
}

// allowDirective is the escape hatch marker: a comment of the form
//
//	//lint:gaea-allow <analyzer>[,<analyzer>...] [reason...]
//
// on the flagged line, or on the line directly above it, suppresses
// those analyzers' diagnostics. Use "all" to suppress every analyzer.
// The reason is free text; leaving one is the convention.
const allowDirective = "lint:gaea-allow"

// indexAllows records every //lint:gaea-allow comment in f.
func (p *Package) indexAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, allowDirective))
			if len(fields) == 0 {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			lines := p.allow[pos.Filename]
			if lines == nil {
				lines = make(map[int][]string)
				p.allow[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], strings.Split(fields[0], ",")...)
		}
	}
}
