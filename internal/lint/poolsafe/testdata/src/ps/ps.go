package ps

import (
	"errors"

	"gaea/internal/wire"
)

func goodRelease() {
	f := wire.AcquireFrame(1, 7)
	f.Payload = append(f.Payload, 0xFF)
	wire.ReleaseFrame(f)
}

func goodDefer() error {
	f := wire.AcquireFrame(1, 7)
	defer wire.ReleaseFrame(f)
	if len(f.Payload) > 0 {
		return errors.New("dirty")
	}
	return nil
}

func goodPush(q *wire.OutQueue) error {
	f := wire.AcquireFrame(1, 7)
	return q.Push(f) // ownership transferred: Push releases on error itself
}

func goodPushChecked(q *wire.OutQueue) error {
	f := wire.AcquireFrame(1, 7)
	if err := q.Push(f); err != nil {
		return err
	}
	return nil
}

func goodReturn() *wire.Frame {
	f := wire.AcquireFrame(1, 7)
	f.Payload = append(f.Payload, 1)
	return f // caller owns it now
}

// takeOwnership releases its parameter, so callers hand frames over.
func takeOwnership(f *wire.Frame) {
	wire.ReleaseFrame(f)
}

// forwardOwnership forwards to an owner, so it is an owner too
// (fixed-point fact propagation).
func forwardOwnership(f *wire.Frame) {
	takeOwnership(f)
}

func goodHelperTransfer() {
	f := wire.AcquireFrame(1, 7)
	forwardOwnership(f)
}

func goodSend(ch chan *wire.Frame) {
	f := wire.AcquireFrame(1, 7)
	ch <- f // receiver owns it now
}

func borrow(f *wire.Frame) int { return len(f.Payload) }

func badLeakReturn(fail bool) error {
	f := wire.AcquireFrame(1, 7)
	if fail {
		return errors.New("oops") // want `pooled frame "f" not released on this return path`
	}
	wire.ReleaseFrame(f)
	return nil
}

func badLeakScope() {
	f := wire.AcquireFrame(1, 7) // want `pooled frame "f" not released before its scope ends`
	_ = borrow(f)
}

func badUseAfterRelease() int {
	f := wire.AcquireFrame(1, 7)
	wire.ReleaseFrame(f)
	return borrow(f) // want `pooled frame "f" used after release`
}

func badDoubleRelease() {
	f := wire.AcquireFrame(1, 7)
	wire.ReleaseFrame(f)
	wire.ReleaseFrame(f) // want `pooled frame "f" released twice`
}

func badDeferThenRelease() {
	f := wire.AcquireFrame(1, 7)
	defer wire.ReleaseFrame(f)
	wire.ReleaseFrame(f) // want `pooled frame "f" released twice`
}

func badPushThenUse(q *wire.OutQueue) error {
	f := wire.AcquireFrame(1, 7)
	if err := q.Push(f); err != nil {
		return err
	}
	f.Payload = nil // want `pooled frame "f" used after release`
	return nil
}

func badHelperThenUse() int {
	f := wire.AcquireFrame(1, 7)
	takeOwnership(f)
	return borrow(f) // want `pooled frame "f" used after release`
}

func allowedLeak() {
	//lint:gaea-allow poolsafe fixture: suppression escape hatch
	f := wire.AcquireFrame(1, 7)
	_ = borrow(f)
}
