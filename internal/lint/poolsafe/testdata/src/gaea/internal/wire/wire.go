// Stub of the real gaea/internal/wire frame pool, just enough surface
// for the poolsafe fixtures to type-check.
package wire

type Frame struct {
	Type    byte
	ID      uint64
	Payload []byte
}

func AcquireFrame(ft byte, id uint64) *Frame {
	return &Frame{Type: ft, ID: id}
}

func ReleaseFrame(f *Frame) {
	f.Payload = f.Payload[:0]
}

type OutQueue struct{ q []*Frame }

// Push takes ownership of f: it is queued, or released on error.
func (q *OutQueue) Push(f *Frame) error {
	q.q = append(q.q, f)
	return nil
}
