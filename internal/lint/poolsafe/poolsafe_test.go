package poolsafe_test

import (
	"testing"

	"gaea/internal/lint/linttest"
	"gaea/internal/lint/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	linttest.Run(t, "testdata", poolsafe.Analyzer, "ps")
}
