// Package poolsafe enforces the frame-pool ownership protocol from
// PR 6: a *wire.Frame obtained from wire.AcquireFrame must be given
// back exactly once on every path — either to the pool via
// wire.ReleaseFrame, or by transferring ownership (OutQueue.Push, a
// function whose parameter is known to take ownership, a return, a
// channel send). A leaked frame defeats the pool; a double release or
// use-after-release lets two goroutines scribble on the same backing
// array — silent payload corruption under -race-invisible conditions.
package poolsafe

import (
	"go/ast"

	"go/types"

	"gaea/internal/lint"
)

// Analyzer is the poolsafe invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "poolsafe",
	Doc: "pooled wire.Frames must be released or ownership-transferred exactly " +
		"once on every path, and never used after release",
	Run: run,
}

// ownerFact marks a function that takes ownership of the *wire.Frame
// passed at the recorded parameter indices (it releases or forwards
// them itself). Exported as an object fact so ownership transfers are
// visible across packages.
type ownerFact struct {
	Params []int
}

func run(pass *lint.Pass) error {
	// Pass A: compute ownership facts for this package's functions, to a
	// fixed point so helpers that forward to helpers are covered.
	fns := collectFuncs(pass)
	// Ownership facts only ever grow, and each growth step marks at least
	// one new parameter, so len(fns)+1 rounds always suffice.
	for round := 0; round <= len(fns); round++ {
		changed := false
		for _, fn := range fns {
			if updateOwner(pass, fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Pass B: path-check every AcquireFrame site.
	for _, fn := range fns {
		checkAcquires(pass, fn)
	}
	return nil
}

type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

func collectFuncs(pass *lint.Pass) []*funcInfo {
	var out []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			out = append(out, &funcInfo{decl: fd, obj: obj})
		}
	}
	return out
}

// isFrameType reports whether t is *wire.Frame (or wire.Frame).
func isFrameType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Frame" || named.Obj().Pkg() == nil {
		return false
	}
	return lint.PathMatches(named.Obj().Pkg().Path(), "internal/wire")
}

// updateOwner recomputes fn's ownership fact; reports whether it grew.
func updateOwner(pass *lint.Pass, fn *funcInfo) bool {
	sig := fn.obj.Type().(*types.Signature)
	var frameParams []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		if p := sig.Params().At(i); isFrameType(p.Type()) {
			frameParams = append(frameParams, p)
		}
	}
	if len(frameParams) == 0 {
		return false
	}
	var have ownerFact
	pass.ImportObjectFact(fn.obj, &have)
	owned := make(map[int]bool)
	for _, i := range have.Params {
		owned[i] = true
	}
	grew := false
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isFrameType(p.Type()) || owned[i] {
			continue
		}
		if releasesObj(pass, fn.decl.Body, p) {
			owned[i] = true
			grew = true
		}
	}
	if grew {
		fact := ownerFact{}
		for i := 0; i < sig.Params().Len(); i++ {
			if owned[i] {
				fact.Params = append(fact.Params, i)
			}
		}
		pass.ExportObjectFact(fn.obj, &fact)
	}
	return grew
}

// releasesObj reports whether body contains any release or ownership
// transfer of obj (path-insensitivity is fine for fact purposes).
func releasesObj(pass *lint.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if releaseArg(pass, n, obj) {
				found = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isObjIdent(pass.TypesInfo, r, obj) {
					found = true
				}
			}
		case *ast.SendStmt:
			if isObjIdent(pass.TypesInfo, n.Value, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// releaseArg reports whether call releases or takes ownership of obj:
// wire.ReleaseFrame(obj), OutQueue.Push(obj), or a call to a function
// with an ownership fact at obj's argument position.
func releaseArg(pass *lint.Pass, call *ast.CallExpr, obj types.Object) bool {
	f := lint.FuncObj(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	argIs := func(i int) bool {
		return i < len(call.Args) && isObjIdent(pass.TypesInfo, call.Args[i], obj)
	}
	if lint.IsPkgFunc(f, "internal/wire", "ReleaseFrame") {
		return argIs(0)
	}
	if f.Name() == "Push" && lint.IsPkgFunc(f, "internal/wire", "Push") {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "OutQueue" {
				for i := range call.Args {
					if argIs(i) {
						return true
					}
				}
			}
		}
		return false
	}
	var fact ownerFact
	if pass.ImportObjectFact(f, &fact) {
		for _, i := range fact.Params {
			if argIs(i) {
				return true
			}
		}
	}
	return false
}

func isObjIdent(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}

// acquire is one wire.AcquireFrame site binding a frame variable.
type acquire struct {
	stmt    ast.Stmt
	frame   types.Object
	defined bool // := (frame scoped to this list) vs = (outer variable)
}

func checkAcquires(pass *lint.Pass, fn *funcInfo) {
	info := pass.TypesInfo
	body := fn.decl.Body
	var acquires []*acquire
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		f := lint.FuncObj(info, call)
		if f == nil || !lint.IsPkgFunc(f, "internal/wire", "AcquireFrame") {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		defined := obj != nil
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		acquires = append(acquires, &acquire{stmt: assign, frame: obj, defined: defined})
		return true
	})

	for _, ac := range acquires {
		checkFrame(pass, body, ac)
	}
}

func checkFrame(pass *lint.Pass, body *ast.BlockStmt, ac *acquire) {
	info := pass.TypesInfo

	// Escape analysis: aliasing, storing, closing over, or otherwise
	// letting the frame outlive this walk transfers ownership somewhere
	// we cannot follow — skip. (Returns and channel sends are modelled
	// as transfers by the walker itself.)
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if usesNode(info, n.Body, ac.frame) {
				escapes = true
			}
			return false
		case *ast.AssignStmt:
			if n == ac.stmt {
				return true
			}
			for _, r := range n.Rhs {
				if isObjIdent(info, r, ac.frame) {
					escapes = true // alias: f2 := f / s.frame = f
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isObjIdent(info, e, ac.frame) {
					escapes = true
				}
			}
		case *ast.CallExpr:
			// append(slice, f) stores the frame.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					for _, a := range n.Args[1:] {
						if isObjIdent(info, a, ac.frame) {
							escapes = true
						}
					}
				}
			}
		}
		return true
	})
	if escapes {
		return
	}

	// A deferred release covers every path; any additional inline release
	// is then a double release.
	deferRelease := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && releaseArg(pass, d.Call, ac.frame) {
			deferRelease = true
		}
		return true
	})

	w := &frameWalker{pass: pass, info: info, ac: ac, deferred: deferRelease}
	if list, idx := lint.FindStmt(body.List, ac.stmt); list != nil {
		released, terminated := w.walk(list[idx+1:], false)
		if !deferRelease && !terminated && !released && ac.defined {
			pass.Reportf(ac.stmt.Pos(),
				"pooled frame %q not released before its scope ends (wire.ReleaseFrame, a Push, or a transfer must own every path)",
				ac.frame.Name())
		}
	}
}

// frameWalker tracks the released/held state of one frame along
// structural paths.
type frameWalker struct {
	pass     *lint.Pass
	info     *types.Info
	ac       *acquire
	deferred bool
}

func (w *frameWalker) name() string { return w.ac.frame.Name() }

// scanSimple processes release calls and use-after-release inside one
// simple statement (or a compound statement's header expression).
// Returns the updated released state.
func (w *frameWalker) scanSimple(n ast.Node, released bool) bool {
	if n == nil {
		return released
	}
	// Release calls anywhere in the statement (incl. if-init `if err :=
	// q.Push(f); ...`).
	releasedHere := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || !releaseArg(w.pass, call, w.ac.frame) {
			return true
		}
		if released || releasedHere || w.deferred {
			why := ""
			if w.deferred && !released && !releasedHere {
				why = " (a deferred release already owns it)"
			}
			w.pass.Reportf(call.Pos(), "pooled frame %q released twice%s", w.name(), why)
		}
		releasedHere = true
		return true
	})
	if releasedHere {
		return true
	}
	if released && usesNode(w.info, n, w.ac.frame) {
		w.pass.Reportf(n.Pos(), "pooled frame %q used after release", w.name())
	}
	return released
}

func usesNode(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}

// walk checks one statement list; released is the entry state. Returns
// (releasedAtFallThrough, terminated).
func (w *frameWalker) walk(list []ast.Stmt, released bool) (bool, bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			// `return q.Push(f)` releases inside the return itself.
			releasedHere := false
			transferred := false
			uses := false
			for _, r := range s.Results {
				if isObjIdent(w.info, r, w.ac.frame) {
					transferred = true
					continue
				}
				ast.Inspect(r, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && releaseArg(w.pass, call, w.ac.frame) {
						releasedHere = true
					}
					return true
				})
				if usesNode(w.info, r, w.ac.frame) {
					uses = true
				}
			}
			switch {
			case transferred && released:
				w.pass.Reportf(s.Pos(), "pooled frame %q returned after release", w.name())
			case releasedHere && (released || w.deferred):
				w.pass.Reportf(s.Pos(), "pooled frame %q released twice", w.name())
			case !transferred && !releasedHere && released && uses:
				w.pass.Reportf(s.Pos(), "pooled frame %q used after release", w.name())
			case !transferred && !releasedHere && !released && !w.deferred:
				w.pass.Reportf(s.Pos(),
					"pooled frame %q not released on this return path (wire.ReleaseFrame, a Push, or a transfer must own every path)",
					w.name())
			}
			return true, true
		case *ast.SendStmt:
			if usesObj(w.info, s.Value, w.ac.frame) {
				if released {
					w.pass.Reportf(s.Pos(), "pooled frame %q sent after release", w.name())
				}
				released = true // channel send transfers ownership
				continue
			}
			released = w.scanSimple(s, released)
		case *ast.BranchStmt:
			return released, true
		case *ast.DeferStmt:
			// Handled up front (deferRelease); nothing path-sensitive.
		case *ast.BlockStmt:
			var term bool
			released, term = w.walk(s.List, released)
			if term {
				return released, true
			}
		case *ast.LabeledStmt:
			var term bool
			released, term = w.walk([]ast.Stmt{s.Stmt}, released)
			if term {
				return released, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				released = w.scanSimple(s.Init, released)
			}
			released = w.scanSimple(s.Cond, released)
			tRel, tTerm := w.walk(s.Body.List, released)
			eRel, eTerm := released, false
			if s.Else != nil {
				eRel, eTerm = w.walk([]ast.Stmt{s.Else.(ast.Stmt)}, released)
			}
			switch {
			case tTerm && eTerm:
				return released, true
			case tTerm:
				released = eRel
			case eTerm:
				released = tRel
			default:
				released = tRel && eRel
			}
		case *ast.ForStmt:
			if s.Init != nil {
				released = w.scanSimple(s.Init, released)
			}
			w.walk(s.Body.List, released)
			if s.Cond == nil && !lint.HasBreak(s.Body) {
				return released, true
			}
		case *ast.RangeStmt:
			w.walk(s.Body.List, released)
		case *ast.SwitchStmt:
			if s.Init != nil {
				released = w.scanSimple(s.Init, released)
			}
			released = w.walkClauses(lint.ClauseLists(s.Body), lint.HasDefault(s.Body), released)
		case *ast.TypeSwitchStmt:
			released = w.walkClauses(lint.ClauseLists(s.Body), lint.HasDefault(s.Body), released)
		case *ast.SelectStmt:
			released = w.walkClauses(lint.ClauseLists(s.Body), true, released)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && lint.IsPanic(w.info, call) {
				return released, true
			}
			released = w.scanSimple(s, released)
		default:
			released = w.scanSimple(s, released)
		}
	}
	return released, false
}

func (w *frameWalker) walkClauses(clauses [][]ast.Stmt, exhaustive bool, released bool) bool {
	fallRel := true
	anyFall := false
	for _, c := range clauses {
		cRel, cTerm := w.walk(c, released)
		if !cTerm {
			anyFall = true
			fallRel = fallRel && cRel
		}
	}
	if !exhaustive {
		anyFall = true
		fallRel = fallRel && released
	}
	if !anyFall && len(clauses) > 0 {
		return released
	}
	return fallRel
}
