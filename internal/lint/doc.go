// Package lint is Gaea's in-tree static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, object facts, a fact-carrying driver), plus a
// module loader that type-checks the whole tree from source via
// `go list -export` and the gc importer. The analyzers under
// internal/lint/* mechanically encode the kernel's cross-layer
// contracts, and cmd/gaea-vet runs them as one blocking multichecker.
//
// The framework exists in-tree because the module is intentionally
// dependency-free: the container and CI build with the standard library
// alone, so the x/tools analysis driver is not available. The API
// mirrors it closely enough that every analyzer would port to
// *analysis.Analyzer mechanically.
//
// # The analyzers
//
// ctxflow — no context.Background()/TODO() outside package main and
// tests. Gaea threads one context from the session boundary down through
// kernel, query, and storage so remote cancellation (PR 5) actually
// stops work; a fresh Background() mid-stack silently severs that chain.
// The three legitimate roots (client dial timeout, server accept-loop
// root, the derivation refresher owned by Close) carry allow comments.
//
// errtaxonomy — exported functions of the root package that return
// errors must not leak raw internal/* errors: every error crossing the
// public boundary goes through classify(), so callers can rely on the
// errors.Is taxonomy (ErrNotFound, ErrConflict, ...) instead of matching
// strings from storage internals. fmt.Errorf with %w propagates the
// obligation; classify() discharges it.
//
// lockorder — the kernel's mutexes form a strict acquisition order
// (object.Store.commitMu < storage.Store.mu < Heap.mu < bufferPool.mu <
// Store.metaMu < wal.mu < object.Store.mu). The analyzer walks each
// function with a held-set, follows helper calls through exported lock
// facts, and reports any acquisition that inverts the order — the class
// of deadlock that only reproduces under load.
//
// poolsafe — a *wire.Frame from AcquireFrame is owned until released
// exactly once: ReleaseFrame, OutQueue.Push, a channel send, returning
// it, or handing it to a function whose fact says it takes ownership.
// The analyzer tracks each acquired frame along every path and reports
// leaks, double releases, and uses after release — the bugs that
// corrupt the pool long after the offending call returns.
//
// spanend — every span minted by obs.Start/StartWith must End on every
// path (defer is the idiom); a span that escapes to another component is
// that component's to end. Unended spans hold slow-op state forever and
// poison the tracer's ring buffer.
//
// wirebounds — an allocation sized by a wire-decoded integer must be
// bounded first: compare against a real limit (`n > 0` does not count)
// or clamp with Dec.Cap. A v2 body is at most MaxFrame bytes, but a
// uvarint inside it can claim 2^64 elements; unchecked, a 10-byte frame
// demands terabytes — a remote OOM this analyzer caught in the original
// decoders.
//
// # Suppression
//
// A diagnostic is suppressed by an adjacent comment, on the flagged line
// or the line above:
//
//	//lint:gaea-allow <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list may be "all". The reason is free text but is the
// convention — an allow without one should not survive review. Each
// suppression is a reviewed, documented exception; the suite stays
// blocking in CI precisely because escapes are explicit.
//
// # Facts
//
// Analyzers may attach facts to objects (Pass.ExportObjectFact) for
// downstream packages in the same run; the driver analyzes packages in
// dependency order, so facts always flow import-first, and in-package
// recursion is handled by each analyzer's own fixed-point loop.
package lint
