package ctxflow_test

import (
	"testing"

	"gaea/internal/lint/ctxflow"
	"gaea/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.Analyzer, "cf", "cfmain")
}
