// Package main may mint root contexts: it owns process lifecycle.
package main

import "context"

func main() {
	_ = context.Background()
	_ = context.TODO()
}
