package cf

import "context"

var pkgCtx = context.Background() // want `context.Background\(\) in package-level initialization`

type Kernel struct{}

func (k *Kernel) begin(ctx context.Context) error { return ctx.Err() }

func (k *Kernel) CreateObject(name string) error {
	return k.begin(context.Background()) // want `exported entry point CreateObject mints context.Background\(\)`
}

func (k *Kernel) UpdateObject(ctx context.Context, name string) error {
	return k.begin(context.TODO()) // want `context.TODO\(\) shadows the function's context.Context parameter`
}

func (k *Kernel) helper() error {
	return k.begin(context.Background()) // want `context.Background\(\) severs cancellation`
}

func (k *Kernel) DeleteObject(ctx context.Context, name string) error {
	return k.begin(ctx) // conforming: threads the caller's ctx
}

func (k *Kernel) Detached() error {
	//lint:gaea-allow ctxflow fixture: detached lifecycle
	return k.begin(context.Background())
}
