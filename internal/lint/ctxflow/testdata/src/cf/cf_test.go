package cf

import "context"

func testHelper(k *Kernel) error {
	// Tests may mint fresh roots freely.
	return k.begin(context.Background())
}
