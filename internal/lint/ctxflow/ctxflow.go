// Package ctxflow enforces context threading: cancellation and
// deadlines must flow from the caller down through the kernel, server,
// and client layers. Minting a fresh context with context.Background()
// or context.TODO() in library code severs that chain — the operation
// can no longer be cancelled, traced, or deadline-bounded by the
// caller. Fresh roots belong in package main, tests, and the handful of
// detached-lifecycle sites that carry a //lint:gaea-allow ctxflow
// justification.
package ctxflow

import (
	"go/ast"
	"strings"

	"gaea/internal/lint"
)

// Analyzer is the ctxflow invariant checker.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "no context.Background()/TODO() outside main and tests: " +
		"entry points accept a ctx and thread it",
	Run: run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		checkFile(pass, file)
	}
	return nil
}

func checkFile(pass *lint.Pass, file *ast.File) {
	info := pass.TypesInfo

	// Track the enclosing function declaration so the diagnostic can say
	// what the right fix is for that shape of function.
	var stack []*ast.FuncDecl
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			stack = append(stack, n)
			if n.Body != nil {
				ast.Inspect(n.Body, walk)
			}
			stack = stack[:len(stack)-1]
			return false
		case *ast.CallExpr:
			f := lint.FuncObj(info, n)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
				return true
			}
			if f.Name() != "Background" && f.Name() != "TODO" {
				return true
			}
			var enc *ast.FuncDecl
			if len(stack) > 0 {
				enc = stack[len(stack)-1]
			}
			pass.Reportf(n.Pos(), "%s", message(pass, f.Name(), enc))
		}
		return true
	}
	ast.Inspect(file, walk)
}

func message(pass *lint.Pass, fn string, enc *ast.FuncDecl) string {
	call := "context." + fn + "()"
	switch {
	case enc == nil:
		return call + " in package-level initialization: thread a context.Context from the caller instead"
	case hasCtxParam(pass, enc):
		return call + " shadows the function's context.Context parameter: thread the ctx through instead"
	case enc.Name.IsExported():
		return "exported entry point " + enc.Name.Name + " mints " + call +
			": accept a context.Context parameter and thread it"
	default:
		return call + " severs cancellation: thread a context.Context from the caller instead"
	}
}

func hasCtxParam(pass *lint.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && lint.IsContextType(t) {
			return true
		}
	}
	return false
}
