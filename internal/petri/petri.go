// Package petri implements §2.1.6: derivation diagrams as modified Petri
// nets. "Every non-primitive class ... corresponds to a place in a PN, and
// every process corresponds to a transition. Tokens in every place
// represent the data objects."
//
// The paper modifies classical PN semantics in three ways, all implemented
// here:
//
//  1. Tokens are NOT removed when a transition fires — data objects are
//     permanent and reusable, so firing is monotone.
//  2. The number of inputs to a transition is a minimum threshold; a
//     firing may use more tokens than the threshold.
//  3. Guard assertions (the process TEMPLATE's constraint rules) must hold
//     among the chosen input tokens for the transition to be enabled.
//
// Monotonicity makes reachability a fixed-point computation: starting from
// the marking of stored objects, repeatedly fire every enabled transition
// until nothing new appears. The planner (planner.go) runs the same logic
// backwards to answer the paper's retrieval question: "given a final
// marking, try to find the initial marking which can lead to this
// marking".
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Arc is one input requirement of a transition: at least Weight tokens in
// Place.
type Arc struct {
	Place  string
	Weight int
}

// Transition is a process viewed as a net transition.
type Transition struct {
	Name string // process name
	In   []Arc  // input thresholds per argument
	Out  string // output place (the derived class)
}

// Net is a derivation diagram.
type Net struct {
	places      map[string]bool
	transitions []Transition
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{places: make(map[string]bool)}
}

// AddPlace declares a place (a non-primitive class).
func (n *Net) AddPlace(name string) {
	n.places[name] = true
}

// AddTransition declares a transition. All referenced places are declared
// implicitly.
func (n *Net) AddTransition(t Transition) error {
	if t.Name == "" || t.Out == "" {
		return fmt.Errorf("petri: transition needs a name and an output place")
	}
	if len(t.In) == 0 {
		return fmt.Errorf("petri: transition %s needs at least one input arc", t.Name)
	}
	for _, a := range t.In {
		if a.Weight < 1 {
			return fmt.Errorf("petri: transition %s arc from %s has weight %d", t.Name, a.Place, a.Weight)
		}
		n.places[a.Place] = true
	}
	n.places[t.Out] = true
	n.transitions = append(n.transitions, t)
	return nil
}

// Places lists all places, sorted.
func (n *Net) Places() []string {
	out := make([]string, 0, len(n.places))
	for p := range n.places {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Transitions returns the transitions in insertion order.
func (n *Net) Transitions() []Transition {
	return append([]Transition(nil), n.transitions...)
}

// TransitionsInto returns the transitions producing tokens in a place —
// the candidate derivations of a class.
func (n *Net) TransitionsInto(place string) []Transition {
	var out []Transition
	for _, t := range n.transitions {
		if t.Out == place {
			out = append(out, t)
		}
	}
	return out
}

// Marking counts tokens per place. In the abstract analysis a token is
// "one stored data object"; guards are ignored (they depend on concrete
// extents, which the planner handles).
type Marking map[string]int

// Clone copies a marking.
func (m Marking) Clone() Marking {
	out := make(Marking, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Enabled reports whether a transition may fire under the marking (every
// input place holds at least the threshold).
func (m Marking) Enabled(t Transition) bool {
	// Arcs from the same place accumulate: a transition taking two
	// landcover arguments needs two tokens in landcover.
	need := map[string]int{}
	for _, a := range t.In {
		need[a.Place] += a.Weight
	}
	for place, w := range need {
		if m[place] < w {
			return false
		}
	}
	return true
}

// Closure fires every enabled transition until fixpoint, returning the
// final marking. Because tokens are not consumed (modification 1), the
// closure is well-defined and unique: each transition needs to fire only
// once per analysis (one firing proves derivability of the output class).
func (n *Net) Closure(initial Marking) Marking {
	m := initial.Clone()
	fired := make([]bool, len(n.transitions))
	for {
		progress := false
		for i, t := range n.transitions {
			if fired[i] || !m.Enabled(t) {
				continue
			}
			fired[i] = true
			m[t.Out]++
			progress = true
		}
		if !progress {
			return m
		}
	}
}

// CanDerive reports whether the target place can hold a token starting
// from the initial marking — the paper's reachability question ("decide if
// a non-existing object could be derived from existing data").
func (n *Net) CanDerive(initial Marking, target string) bool {
	if initial[target] > 0 {
		return true
	}
	return n.Closure(initial)[target] > 0
}

// DerivableClasses returns every place that can hold a token from the
// initial marking, sorted.
func (n *Net) DerivableClasses(initial Marking) []string {
	final := n.Closure(initial)
	var out []string
	for place, count := range final {
		if count > 0 {
			out = append(out, place)
		}
	}
	sort.Strings(out)
	return out
}

// MissingFor explains why a target is not derivable: the set of base
// places (places with no incoming transitions) that would need tokens,
// computed over the residual graph. Sorted; empty when the target is
// derivable.
func (n *Net) MissingFor(initial Marking, target string) []string {
	if n.CanDerive(initial, target) {
		return nil
	}
	final := n.Closure(initial)
	missing := map[string]bool{}
	seen := map[string]bool{}
	var walk func(place string)
	walk = func(place string) {
		if seen[place] || final[place] > 0 {
			return
		}
		seen[place] = true
		producers := n.TransitionsInto(place)
		if len(producers) == 0 {
			missing[place] = true
			return
		}
		for _, t := range producers {
			for _, a := range t.In {
				walk(a.Place)
			}
		}
	}
	walk(target)
	out := make([]string, 0, len(missing))
	for p := range missing {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String renders the net for documentation and the CLI's "show net"
// command.
func (n *Net) String() string {
	var b strings.Builder
	b.WriteString("places:\n")
	for _, p := range n.Places() {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	b.WriteString("transitions:\n")
	for _, t := range n.transitions {
		parts := make([]string, len(t.In))
		for i, a := range t.In {
			parts[i] = fmt.Sprintf("%s(>=%d)", a.Place, a.Weight)
		}
		fmt.Fprintf(&b, "  %s: %s -> %s\n", t.Name, strings.Join(parts, " + "), t.Out)
	}
	return b.String()
}
