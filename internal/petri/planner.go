package petri

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/process"
	"gaea/internal/sptemp"
)

// Backward-chaining derivation planning — the recursive retrieval
// mechanism of §2.1.6: "Attempt to retrieve the data from the target
// class. If it exists, return; else back propagate the requirements
// through the derivation net ... The procedure is recursively applied
// until the needed data are generated or back propagation stops at some
// base class and we fail."
//
// The planner works over concrete objects (tokens carry extents) so the
// guard prerequisites of modification 3 — shared spatial coverage,
// compatible timestamps — are checked while planning, not discovered as
// assertion failures at execution time.

// ErrNoPlan is returned when the target cannot be satisfied from stored
// data.
var ErrNoPlan = errors.New("petri: no derivation plan")

// PlanStep is one process instantiation of a plan. Inputs name either
// stored objects (OIDs) or results of earlier steps (by step index).
type PlanStep struct {
	Process string
	Version int
	// Inputs binds argument names to input references.
	Inputs map[string][]InputRef
	// OutClass is the class the step produces.
	OutClass string
}

// InputRef points at a stored object or at an earlier step's output.
type InputRef struct {
	// OID is set for stored objects.
	OID object.OID
	// Step is the index of the producing step when FromStep is true.
	Step     int
	FromStep bool
}

// Plan is an ordered list of steps deriving the target class; executing
// the steps in order materialises the target. An empty Steps list means
// stored objects already satisfy the query (Existing holds them).
type Plan struct {
	Target   string
	Existing []object.OID
	Steps    []PlanStep
}

// String renders the plan for explanation and tests.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s:\n", p.Target)
	if len(p.Existing) > 0 {
		fmt.Fprintf(&b, "  retrieve stored objects %v\n", p.Existing)
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "  step %d: %s v%d -> %s (", i, s.Process, s.Version, s.OutClass)
		names := make([]string, 0, len(s.Inputs))
		for n := range s.Inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for j, n := range names {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=", n)
			for k, ref := range s.Inputs[n] {
				if k > 0 {
					b.WriteByte(',')
				}
				if ref.FromStep {
					fmt.Fprintf(&b, "step%d", ref.Step)
				} else {
					fmt.Fprintf(&b, "#%d", ref.OID)
				}
			}
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// Planner performs backward chaining over the catalog, the process
// registry, and the stored objects.
type Planner struct {
	Cat *catalog.Catalog
	Mgr *process.Manager
	Obj *object.Store
	// MaxDepth bounds the recursion (default 8).
	MaxDepth int
	// Stale reports whether an object is marked stale by the derived-data
	// manager (nil: nothing is ever stale). Stale objects disqualify plan
	// reuse: they neither satisfy a target directly nor bind as inputs,
	// so plans are built over fresh data only.
	Stale func(object.OID) bool
}

// liveQuery retrieves the stored objects of a class matching pred,
// excluding stale ones.
func (pl *Planner) liveQuery(class string, pred sptemp.Extent) ([]object.OID, error) {
	oids, err := pl.Obj.Query(class, pred)
	if err != nil || pl.Stale == nil {
		return oids, err
	}
	live := oids[:0:0]
	for _, oid := range oids {
		if !pl.Stale(oid) {
			live = append(live, oid)
		}
	}
	return live, nil
}

// BuildNet constructs the abstract derivation net from the current schema:
// one place per non-primitive class, one transition per primitive process
// (latest version), input arc weights from the argument MinCard
// thresholds.
func BuildNet(cat *catalog.Catalog, mgr *process.Manager) (*Net, error) {
	n := NewNet()
	for _, cls := range cat.Names() {
		n.AddPlace(cls)
	}
	for _, name := range mgr.Names() {
		if mgr.IsCompound(name) {
			continue // compounds expand to primitive transitions
		}
		pr, err := mgr.Lookup(name)
		if err != nil {
			return nil, err
		}
		t := Transition{Name: pr.Name, Out: pr.OutClass}
		for _, a := range pr.Args {
			t.In = append(t.In, Arc{Place: a.Class, Weight: a.MinCard})
		}
		if err := n.AddTransition(t); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// CurrentMarking counts stored objects per class matching the predicate —
// the initial marking of the stored database.
func CurrentMarking(cat *catalog.Catalog, obj *object.Store, pred sptemp.Extent) (Marking, error) {
	m := make(Marking)
	for _, cls := range cat.Names() {
		oids, err := obj.Query(cls, pred)
		if err != nil {
			return nil, err
		}
		m[cls] = len(oids)
	}
	return m, nil
}

// exclusions records tokens already claimed within the current plan so
// that sibling arguments of the same class receive distinct bindings — a
// change-detection process given two landcover arguments must classify two
// different dates, not the same one twice. When no alternative exists the
// planner falls back to reuse (tokens are permanent and reusable, §2.1.6
// modification 1).
type exclusions struct {
	scalar map[string]map[object.OID]bool // class → claimed OIDs
	groups map[string]bool                // claimed set-argument group signatures
}

func newExclusions() *exclusions {
	return &exclusions{scalar: make(map[string]map[object.OID]bool), groups: make(map[string]bool)}
}

func (x *exclusions) claimScalar(class string, oid object.OID) {
	m := x.scalar[class]
	if m == nil {
		m = make(map[object.OID]bool)
		x.scalar[class] = m
	}
	m[oid] = true
}

func groupSignature(class string, oids []object.OID) string {
	var b strings.Builder
	b.WriteString(class)
	for _, o := range oids {
		fmt.Fprintf(&b, ",%d", o)
	}
	return b.String()
}

// Plan finds a derivation plan for the target class under the given
// extent predicate. If stored objects already match, the plan is pure
// retrieval. Otherwise the planner backward-chains through the processes
// producing the class. Planning honours ctx cancellation; the Planner
// itself is stateless per call and safe for concurrent use.
func (pl *Planner) Plan(ctx context.Context, target string, pred sptemp.Extent) (*Plan, error) {
	// Read the depth bound into the search state instead of mutating the
	// shared Planner (concurrent Plan calls race on writes).
	maxDepth := pl.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	st := &search{ctx: ctx, maxDepth: maxDepth}
	p := &Plan{Target: target}
	existing, err := pl.liveQuery(target, pred)
	if err != nil {
		return nil, err
	}
	if len(existing) > 0 {
		p.Existing = existing
		return p, nil
	}
	if _, err := pl.satisfyOne(st, target, pred, map[string]bool{}, 0, p, newExclusions()); err != nil {
		return nil, err
	}
	return p, nil
}

// search carries the per-call state of one backward-chaining run.
type search struct {
	ctx      context.Context
	maxDepth int
}

// satisfyOne produces one object of class cls matching pred, appending
// steps to the plan, and returns the reference to it.
func (pl *Planner) satisfyOne(st *search, cls string, pred sptemp.Extent, onPath map[string]bool, depth int, plan *Plan, excl *exclusions) (InputRef, error) {
	if err := st.ctx.Err(); err != nil {
		return InputRef{}, err
	}
	// Direct retrieval first (§2.1.5 step 1), preferring an unclaimed
	// stored object.
	stored, err := pl.liveQuery(cls, pred)
	if err != nil {
		return InputRef{}, err
	}
	if len(stored) > 0 {
		chosen := stored[0]
		for _, oid := range stored {
			if !excl.scalar[cls][oid] {
				chosen = oid
				break
			}
		}
		excl.claimScalar(cls, chosen)
		return InputRef{OID: chosen}, nil
	}
	if depth >= st.maxDepth {
		return InputRef{}, fmt.Errorf("%w: depth limit at class %s", ErrNoPlan, cls)
	}
	if onPath[cls] {
		// Self-derivation (e.g. interpolation deriving a class from
		// itself) is only allowed against stored data, which we already
		// failed to find.
		return InputRef{}, fmt.Errorf("%w: cyclic requirement on class %s", ErrNoPlan, cls)
	}
	onPath[cls] = true
	defer delete(onPath, cls)

	var lastErr error
	for _, pr := range pl.Mgr.ProcessesProducing(cls) {
		mark := len(plan.Steps)
		inputs, err := pl.satisfyProcess(st, pr, pred, onPath, depth, plan, excl)
		if err != nil {
			plan.Steps = plan.Steps[:mark] // roll back partial work
			lastErr = err
			continue
		}
		step := PlanStep{Process: pr.Name, Version: pr.Version, Inputs: inputs, OutClass: cls}
		plan.Steps = append(plan.Steps, step)
		return InputRef{Step: len(plan.Steps) - 1, FromStep: true}, nil
	}
	if lastErr != nil {
		return InputRef{}, lastErr
	}
	return InputRef{}, fmt.Errorf("%w: class %s has no stored objects and no producing process", ErrNoPlan, cls)
}

// satisfyProcess binds every argument of a process, recursing as needed.
func (pl *Planner) satisfyProcess(st *search, pr *process.Process, pred sptemp.Extent, onPath map[string]bool, depth int, plan *Plan, excl *exclusions) (map[string][]InputRef, error) {
	inputs := make(map[string][]InputRef, len(pr.Args))
	for _, spec := range pr.Args {
		if !spec.IsSet {
			ref, err := pl.satisfyOne(st, spec.Class, pred, onPath, depth+1, plan, excl)
			if err != nil {
				return nil, err
			}
			inputs[spec.Name] = []InputRef{ref}
			continue
		}
		// SETOF argument: gather MinCard guard-compatible stored objects;
		// only if none exist, try deriving them.
		refs, err := pl.gatherSet(st, spec, pred, onPath, depth, plan, excl)
		if err != nil {
			return nil, err
		}
		inputs[spec.Name] = refs
	}
	return inputs, nil
}

// gatherSet selects MinCard stored objects of the class whose extents are
// mutually guard-compatible (intersecting boxes, timestamps within the
// common() tolerance), preferring an unclaimed group. When stored objects
// are insufficient it derives the shortfall.
func (pl *Planner) gatherSet(st *search, spec process.ArgSpec, pred sptemp.Extent, onPath map[string]bool, depth int, plan *Plan, excl *exclusions) ([]InputRef, error) {
	stored, err := pl.liveQuery(spec.Class, pred)
	if err != nil {
		return nil, err
	}
	if group := pl.compatibleGroup(stored, spec.MinCard, spec.Class, excl); group != nil {
		excl.groups[groupSignature(spec.Class, group)] = true
		refs := make([]InputRef, len(group))
		for i, oid := range group {
			refs[i] = InputRef{OID: oid}
		}
		return refs, nil
	}
	// Not enough compatible stored objects: derive MinCard fresh ones.
	refs := make([]InputRef, 0, spec.MinCard)
	for i := 0; i < spec.MinCard; i++ {
		ref, err := pl.satisfyOne(st, spec.Class, pred, onPath, depth+1, plan, excl)
		if err != nil {
			return nil, fmt.Errorf("%w (argument %s needs %d of class %s)", err, spec.Name, spec.MinCard, spec.Class)
		}
		refs = append(refs, ref)
		if !ref.FromStep {
			// Retrieval found a stored object after all; but a single
			// stored object cannot fill MinCard>1 alone — deriving the
			// same query again would return the same OID. Bail to avoid
			// duplicate bindings unless MinCard is met by distinct OIDs.
			if spec.MinCard > 1 {
				return nil, fmt.Errorf("%w: cannot assemble %d distinct %s objects", ErrNoPlan, spec.MinCard, spec.Class)
			}
		}
	}
	return refs, nil
}

// compatibleGroup returns the first window of k objects (sorted by
// timestamp, then OID) whose extents pairwise satisfy the common() guards,
// preferring windows not yet claimed in this plan; nil when no compatible
// window exists.
func (pl *Planner) compatibleGroup(oids []object.OID, k int, class string, excl *exclusions) []object.OID {
	if len(oids) < k {
		return nil
	}
	type cand struct {
		oid object.OID
		ext sptemp.Extent
	}
	cands := make([]cand, 0, len(oids))
	for _, oid := range oids {
		o, err := pl.Obj.Get(oid)
		if err != nil {
			continue
		}
		cands = append(cands, cand{oid: oid, ext: o.Extent})
	}
	sort.Slice(cands, func(i, j int) bool {
		ti, tj := cands[i].ext.TimeIv.Start, cands[j].ext.TimeIv.Start
		if ti != tj {
			return ti < tj
		}
		return cands[i].oid < cands[j].oid
	})
	var fallback []object.OID
	for start := 0; start+k <= len(cands); start++ {
		group := cands[start : start+k]
		exts := make([]sptemp.Extent, k)
		for i, c := range group {
			exts[i] = c.ext
		}
		if !groupCompatible(exts) {
			continue
		}
		out := make([]object.OID, k)
		for i, c := range group {
			out[i] = c.oid
		}
		if !excl.groups[groupSignature(class, out)] {
			return out
		}
		if fallback == nil {
			fallback = out
		}
	}
	// Every compatible window is already claimed: reuse the first one
	// (tokens are permanent and reusable).
	return fallback
}

func groupCompatible(exts []sptemp.Extent) bool {
	if _, err := sptemp.CommonExtent(exts); err != nil {
		return false
	}
	// Timestamps within the common() tolerance.
	var ts []sptemp.AbsTime
	for _, e := range exts {
		if e.HasTime {
			ts = append(ts, e.TimeIv.Start)
		}
	}
	if len(ts) > 1 {
		if _, err := sptemp.CommonTimestamps(ts, process.CommonTimeTolerance); err != nil {
			return false
		}
	}
	return true
}
