package petri

import (
	"strings"
	"testing"
)

// figure2Net builds a small net shaped like the paper's Figure 2 fragment:
// landsat_tm --(P20, >=3)--> landcover --(P7 x2)--> veg_change, plus a
// rainfall --> desert chain.
func figure2Net(t *testing.T) *Net {
	t.Helper()
	n := NewNet()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.AddTransition(Transition{
		Name: "unsupervised_classification",
		In:   []Arc{{Place: "landsat_tm", Weight: 3}},
		Out:  "landcover",
	}))
	must(n.AddTransition(Transition{
		Name: "change_map",
		In:   []Arc{{Place: "landcover", Weight: 1}, {Place: "landcover", Weight: 1}},
		Out:  "veg_change",
	}))
	must(n.AddTransition(Transition{
		Name: "desert_classifier",
		In:   []Arc{{Place: "rainfall", Weight: 1}},
		Out:  "desert",
	}))
	return n
}

func TestNetConstruction(t *testing.T) {
	n := figure2Net(t)
	places := n.Places()
	want := []string{"desert", "landcover", "landsat_tm", "rainfall", "veg_change"}
	if strings.Join(places, ",") != strings.Join(want, ",") {
		t.Errorf("Places = %v", places)
	}
	if got := len(n.TransitionsInto("landcover")); got != 1 {
		t.Errorf("TransitionsInto(landcover) = %d", got)
	}
	if got := len(n.TransitionsInto("landsat_tm")); got != 0 {
		t.Errorf("base place should have no producers, got %d", got)
	}
	// Validation.
	if err := n.AddTransition(Transition{Name: "", Out: "x", In: []Arc{{Place: "y", Weight: 1}}}); err == nil {
		t.Error("unnamed transition must fail")
	}
	if err := n.AddTransition(Transition{Name: "t", Out: "x"}); err == nil {
		t.Error("no-input transition must fail")
	}
	if err := n.AddTransition(Transition{Name: "t", Out: "x", In: []Arc{{Place: "y", Weight: 0}}}); err == nil {
		t.Error("zero-weight arc must fail")
	}
}

func TestEnabledThresholds(t *testing.T) {
	n := figure2Net(t)
	p20 := n.TransitionsInto("landcover")[0]
	if (Marking{"landsat_tm": 2}).Enabled(p20) {
		t.Error("2 tokens should not enable a weight-3 arc")
	}
	if !(Marking{"landsat_tm": 3}).Enabled(p20) {
		t.Error("3 tokens should enable")
	}
	// More than threshold is fine (modification 2).
	if !(Marking{"landsat_tm": 10}).Enabled(p20) {
		t.Error("10 tokens should enable")
	}
	// Two arcs from the same place accumulate.
	cm := n.TransitionsInto("veg_change")[0]
	if (Marking{"landcover": 1}).Enabled(cm) {
		t.Error("change_map needs two landcover tokens")
	}
	if !(Marking{"landcover": 2}).Enabled(cm) {
		t.Error("two landcover tokens should enable change_map")
	}
}

func TestClosureIsMonotone(t *testing.T) {
	n := figure2Net(t)
	initial := Marking{"landsat_tm": 6}
	final := n.Closure(initial)
	// Tokens are not consumed: landsat_tm count unchanged.
	if final["landsat_tm"] != 6 {
		t.Errorf("input tokens consumed: %v", final)
	}
	if final["landcover"] != 1 {
		t.Errorf("landcover = %d", final["landcover"])
	}
	// change_map needs 2 landcover tokens but closure only adds one per
	// transition, so veg_change stays empty from a single scene pool.
	if final["veg_change"] != 0 {
		t.Errorf("veg_change = %d (one classification cannot feed a 2-input change)", final["veg_change"])
	}
	// Initial marking unchanged (Closure clones).
	if initial["landcover"] != 0 {
		t.Error("Closure mutated its input")
	}
}

func TestCanDeriveChains(t *testing.T) {
	n := figure2Net(t)
	// With one stored landcover and three scenes, change detection becomes
	// derivable: stored landcover + derived landcover = 2 tokens.
	m := Marking{"landsat_tm": 3, "landcover": 1}
	if !n.CanDerive(m, "veg_change") {
		t.Error("veg_change should be derivable")
	}
	// Without the stored landcover it is not.
	if n.CanDerive(Marking{"landsat_tm": 3}, "veg_change") {
		t.Error("veg_change should not be derivable from one scene set")
	}
	// Already-stored target is trivially derivable.
	if !n.CanDerive(Marking{"desert": 1}, "desert") {
		t.Error("stored target should be derivable")
	}
	// Unknown/empty everything.
	if n.CanDerive(Marking{}, "desert") {
		t.Error("empty marking derives nothing")
	}
}

func TestDerivableClasses(t *testing.T) {
	n := figure2Net(t)
	got := n.DerivableClasses(Marking{"landsat_tm": 3, "rainfall": 1})
	want := "desert,landcover,landsat_tm,rainfall"
	if strings.Join(got, ",") != want {
		t.Errorf("DerivableClasses = %v", got)
	}
}

func TestMissingFor(t *testing.T) {
	n := figure2Net(t)
	// Nothing stored: deriving desert needs rainfall (a base place).
	missing := n.MissingFor(Marking{}, "desert")
	if len(missing) != 1 || missing[0] != "rainfall" {
		t.Errorf("MissingFor(desert) = %v", missing)
	}
	// veg_change missing rolls all the way to landsat_tm.
	missing = n.MissingFor(Marking{}, "veg_change")
	if len(missing) != 1 || missing[0] != "landsat_tm" {
		t.Errorf("MissingFor(veg_change) = %v", missing)
	}
	// Derivable target reports nothing missing.
	if got := n.MissingFor(Marking{"rainfall": 5}, "desert"); got != nil {
		t.Errorf("derivable target missing = %v", got)
	}
}

func TestNetString(t *testing.T) {
	n := figure2Net(t)
	s := n.String()
	for _, want := range []string{"landsat_tm(>=3)", "-> landcover", "places:", "transitions:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestDeepChainReachability(t *testing.T) {
	// A linear chain c0 -> c1 -> ... -> c31 exercises fixpoint iteration.
	n := NewNet()
	for i := 0; i < 32; i++ {
		err := n.AddTransition(Transition{
			Name: "p" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			In:   []Arc{{Place: place(i), Weight: 1}},
			Out:  place(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !n.CanDerive(Marking{place(0): 1}, place(32)) {
		t.Error("chain end should be reachable")
	}
	if n.CanDerive(Marking{place(1): 0}, place(32)) {
		t.Error("empty marking should not reach chain end")
	}
}

func place(i int) string {
	return "c" + string(rune('A'+i/10)) + string(rune('0'+i%10))
}
