package petri

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/process"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

type world struct {
	st  *storage.Store
	cat *catalog.Catalog
	obj *object.Store
	mgr *process.Manager
}

func newWorld(t *testing.T) *world {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	classes := []*catalog.Class{
		{
			Name: "landsat_tm", Kind: catalog.KindBase,
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "landcover", Kind: catalog.KindDerived, DerivedBy: "classify",
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "veg_change", Kind: catalog.KindDerived, DerivedBy: "change_map",
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "orphan", Kind: catalog.KindDerived, DerivedBy: "never_defined",
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
	}
	for _, c := range classes {
		if err := cat.Define(c); err != nil {
			t.Fatal(err)
		}
	}
	reg := adt.NewStandardRegistry()
	obj, err := object.Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := process.OpenManager(st, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []string{`
DEFINE PROCESS classify (
  OUTPUT o landcover
  ARGUMENT ( SETOF bands landsat_tm )
  TEMPLATE {
    ASSERTIONS:
      card ( bands ) = 3;
      common ( bands.spatialextent );
      common ( bands.timestamp );
    MAPPINGS:
      o.data = unsuperclassify ( composite ( bands.data ), 6 );
      o.spatialextent = ANYOF bands.spatialextent;
      o.timestamp = ANYOF bands.timestamp;
  }
)`, `
DEFINE PROCESS change_map (
  OUTPUT o veg_change
  ARGUMENT ( a landcover )
  ARGUMENT ( b landcover )
  TEMPLATE {
    MAPPINGS:
      o.data = img_subtract ( a.data, b.data );
      o.spatialextent = a.spatialextent;
      o.timestamp = b.timestamp;
  }
)`}
	for _, src := range srcs {
		if _, err := mgr.Define(src); err != nil {
			t.Fatal(err)
		}
	}
	return &world{st: st, cat: cat, obj: obj, mgr: mgr}
}

func (w *world) insertScene(t *testing.T, n int, day sptemp.AbsTime, year int) []object.OID {
	t.Helper()
	l := raster.NewLandscape(5)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 8, Cols: 8, DayOfYear: 150, Year: year, Noise: 0.01}
	bands := []raster.Band{raster.BandRed, raster.BandNIR, raster.BandSWIR}
	var oids []object.OID
	for i := 0; i < n; i++ {
		img, err := l.GenerateBand(spec, bands[i%3])
		if err != nil {
			t.Fatal(err)
		}
		oid, err := w.obj.Insert(&object.Object{
			Class:  "landsat_tm",
			Attrs:  map[string]value.Value{"data": value.Image{Img: img}},
			Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 240, 240), day),
		})
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	return oids
}

func (w *world) planner() *Planner {
	return &Planner{Cat: w.cat, Mgr: w.mgr, Obj: w.obj}
}

func anyPred() sptemp.Extent {
	return sptemp.Extent{Frame: sptemp.DefaultFrame, Space: sptemp.EmptyBox()}
}

func TestBuildNetFromSchema(t *testing.T) {
	w := newWorld(t)
	n, err := BuildNet(w.cat, w.mgr)
	if err != nil {
		t.Fatal(err)
	}
	trs := n.TransitionsInto("landcover")
	if len(trs) != 1 || trs[0].In[0].Weight != 3 {
		t.Errorf("classify transition = %+v", trs)
	}
	if !n.CanDerive(Marking{"landsat_tm": 3, "landcover": 1}, "veg_change") {
		t.Error("veg_change should be derivable in the schema net")
	}
}

func TestCurrentMarking(t *testing.T) {
	w := newWorld(t)
	w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	m, err := CurrentMarking(w.cat, w.obj, anyPred())
	if err != nil {
		t.Fatal(err)
	}
	if m["landsat_tm"] != 3 || m["landcover"] != 0 {
		t.Errorf("marking = %v", m)
	}
}

func TestPlanDirectRetrieval(t *testing.T) {
	w := newWorld(t)
	oids := w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	plan, err := w.planner().Plan(context.Background(), "landsat_tm", anyPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 || len(plan.Existing) != 3 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.Existing[0] != oids[0] {
		t.Errorf("existing = %v", plan.Existing)
	}
}

func TestPlanSingleDerivation(t *testing.T) {
	w := newWorld(t)
	w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	plan, err := w.planner().Plan(context.Background(), "landcover", anyPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 {
		t.Fatalf("plan = %s", plan)
	}
	s := plan.Steps[0]
	if s.Process != "classify" || len(s.Inputs["bands"]) != 3 {
		t.Errorf("step = %+v", s)
	}
	for _, ref := range s.Inputs["bands"] {
		if ref.FromStep {
			t.Error("band inputs should be stored objects")
		}
	}
	if !strings.Contains(plan.String(), "classify v1 -> landcover") {
		t.Errorf("plan string = %s", plan)
	}
}

func TestPlanChainedDerivation(t *testing.T) {
	// veg_change needs two landcovers; none stored, so the planner must
	// chain: classify(1986 scenes), classify(1989 scenes), change_map.
	w := newWorld(t)
	w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	w.insertScene(t, 3, sptemp.Date(1989, 1, 15), 1989)
	plan, err := w.planner().Plan(context.Background(), "veg_change", anyPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("plan:\n%s", plan)
	}
	final := plan.Steps[2]
	if final.Process != "change_map" {
		t.Errorf("final step = %+v", final)
	}
	// Both change_map inputs come from earlier steps.
	for _, arg := range []string{"a", "b"} {
		refs := final.Inputs[arg]
		if len(refs) != 1 || !refs[0].FromStep {
			t.Errorf("change_map %s = %+v", arg, refs)
		}
	}
	// The two classify steps must not pick the same scene group: their
	// band OIDs must differ (guard compatibility separates 1986 from 1989).
	b0 := plan.Steps[0].Inputs["bands"]
	b1 := plan.Steps[1].Inputs["bands"]
	same := true
	for i := range b0 {
		if b0[i].OID != b1[i].OID {
			same = false
		}
	}
	if same {
		t.Error("the two classifications used identical inputs; change would be zero")
	}
}

func TestPlanFailsWithoutBaseData(t *testing.T) {
	w := newWorld(t)
	if _, err := w.planner().Plan(context.Background(), "landcover", anyPred()); !errors.Is(err, ErrNoPlan) {
		t.Errorf("plan err = %v", err)
	}
	// Two scenes are below the card(bands)=3 threshold.
	w.insertScene(t, 2, sptemp.Date(1986, 1, 15), 1986)
	if _, err := w.planner().Plan(context.Background(), "landcover", anyPred()); !errors.Is(err, ErrNoPlan) {
		t.Errorf("undercard plan err = %v", err)
	}
}

func TestPlanFailsForOrphanClass(t *testing.T) {
	w := newWorld(t)
	w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	if _, err := w.planner().Plan(context.Background(), "orphan", anyPred()); !errors.Is(err, ErrNoPlan) {
		t.Errorf("orphan plan err = %v", err)
	}
}

func TestPlanGuardsRejectIncompatibleGroups(t *testing.T) {
	// Three scenes at three far-apart dates: no guard-compatible group of
	// 3 exists, so planning landcover fails even though counts suffice.
	w := newWorld(t)
	w.insertScene(t, 1, sptemp.Date(1986, 1, 15), 1986)
	w.insertScene(t, 1, sptemp.Date(1987, 6, 15), 1987)
	w.insertScene(t, 1, sptemp.Date(1989, 11, 15), 1989)
	if _, err := w.planner().Plan(context.Background(), "landcover", anyPred()); !errors.Is(err, ErrNoPlan) {
		t.Errorf("incompatible group plan err = %v", err)
	}
	// The abstract net analysis would say "derivable" (3 tokens) — the
	// concrete planner is stricter because tokens carry extents.
	n, _ := BuildNet(w.cat, w.mgr)
	m, _ := CurrentMarking(w.cat, w.obj, anyPred())
	if !n.CanDerive(m, "landcover") {
		t.Error("abstract analysis should be optimistic here")
	}
}

func TestPlanSpatialPredicate(t *testing.T) {
	w := newWorld(t)
	w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	// Predicate disjoint from the stored scenes: nothing to plan from.
	far := sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(100000, 100000, 100100, 100100))
	if _, err := w.planner().Plan(context.Background(), "landcover", far); !errors.Is(err, ErrNoPlan) {
		t.Errorf("disjoint predicate err = %v", err)
	}
	// Overlapping predicate works.
	near := sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 50, 50))
	plan, err := w.planner().Plan(context.Background(), "landcover", near)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 {
		t.Errorf("plan = %s", plan)
	}
}

// TestPlanSkipsStaleObjects: stale inputs disqualify plan reuse — a stale
// target is re-derived from fresh base data, and stale base objects never
// bind as plan inputs.
func TestPlanSkipsStaleObjects(t *testing.T) {
	w := newWorld(t)
	scene := w.insertScene(t, 3, sptemp.Date(1986, 1, 15), 1986)
	pl := w.planner()

	// Materialise a landcover so retrieval would normally satisfy the
	// target directly.
	plan, err := pl.Plan(context.Background(), "landcover", anyPred())
	if err != nil || len(plan.Steps) != 1 {
		t.Fatalf("seed plan = %+v, %v", plan, err)
	}
	img := raster.MustNew(4, 4, raster.PixFloat4)
	lc, err := w.obj.Insert(&object.Object{
		Class:  "landcover",
		Attrs:  map[string]value.Value{"data": value.Image{Img: img}},
		Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 240, 240), sptemp.Date(1986, 1, 15)),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err = pl.Plan(context.Background(), "landcover", anyPred())
	if err != nil || len(plan.Existing) != 1 || plan.Existing[0] != lc {
		t.Fatalf("plan with stored landcover = %+v, %v", plan, err)
	}

	// Mark the landcover stale: the planner must re-derive instead of
	// retrieving it.
	stale := map[object.OID]bool{lc: true}
	pl.Stale = func(oid object.OID) bool { return stale[oid] }
	plan, err = pl.Plan(context.Background(), "landcover", anyPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Existing) != 0 || len(plan.Steps) != 1 {
		t.Fatalf("plan over stale target = %+v", plan)
	}

	// Mark a base band stale too: it must not bind as an input, and with
	// only two fresh bands the classify guard (card = 3) cannot be met.
	stale[scene[0]] = true
	if _, err := pl.Plan(context.Background(), "landcover", anyPred()); !errors.Is(err, ErrNoPlan) {
		t.Fatalf("plan with stale base = %v, want ErrNoPlan", err)
	}
}
