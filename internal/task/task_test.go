package task

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/process"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

const p20Source = `
DEFINE PROCESS unsupervised_classification (
  OUTPUT C20 landcover
  ARGUMENT ( SETOF bands landsat_tm )
  TEMPLATE {
    ASSERTIONS:
      card ( bands ) = 3;
      common ( bands.spatialextent );
      common ( bands.timestamp );
    MAPPINGS:
      C20.data = unsuperclassify ( composite ( bands.data ), 12 );
      C20.numclass = 12;
      C20.spatialextent = ANYOF bands.spatialextent;
      C20.timestamp = ANYOF bands.timestamp;
  }
)
`

const changeMapSource = `
DEFINE PROCESS change_map (
  OUTPUT out land_cover_changes
  ARGUMENT ( a landcover )
  ARGUMENT ( b landcover )
  TEMPLATE {
    ASSERTIONS:
      common ( a.spatialextent );
    MAPPINGS:
      out.data = img_subtract ( a.data, b.data );
      out.spatialextent = a.spatialextent;
      out.timestamp = b.timestamp;
  }
)
`

const lcdSource = `
DEFINE COMPOUND PROCESS land_change_detection (
  OUTPUT out land_cover_changes
  ARGUMENT ( SETOF tm1 landsat_tm )
  ARGUMENT ( SETOF tm2 landsat_tm )
  STEPS {
    lc1 = unsupervised_classification ( tm1 );
    lc2 = unsupervised_classification ( tm2 );
    out = change_map ( lc1, lc2 );
  }
)
`

type env struct {
	dir  string
	st   *storage.Store
	cat  *catalog.Catalog
	reg  *adt.Registry
	obj  *object.Store
	mgr  *process.Manager
	exec *Executor
}

func newEnv(t *testing.T) *env {
	t.Helper()
	return openEnv(t, t.TempDir(), true)
}

func openEnv(t *testing.T, dir string, cleanup bool) *env {
	t.Helper()
	st, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if cleanup {
		t.Cleanup(func() { st.Close() })
	}
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Exists("landsat_tm") {
		defineClasses(t, cat)
	}
	reg := adt.NewStandardRegistry()
	obj, err := object.Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := process.OpenManager(st, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !mgr.Exists("unsupervised_classification") {
		for _, src := range []string{p20Source, changeMapSource, lcdSource} {
			if _, err := mgr.Define(src); err != nil {
				t.Fatal(err)
			}
		}
	}
	exec, err := OpenExecutor(st, cat, reg, obj, mgr)
	if err != nil {
		t.Fatal(err)
	}
	return &env{dir: dir, st: st, cat: cat, reg: reg, obj: obj, mgr: mgr, exec: exec}
}

func defineClasses(t *testing.T, cat *catalog.Catalog) {
	t.Helper()
	classes := []*catalog.Class{
		{
			Name: "landsat_tm", Kind: catalog.KindBase,
			Attrs: []catalog.Attr{
				{Name: "band", Type: value.TypeString},
				{Name: "data", Type: value.TypeImage},
			},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "landcover", Kind: catalog.KindDerived, DerivedBy: "unsupervised_classification",
			Attrs: []catalog.Attr{
				{Name: "numclass", Type: value.TypeInt},
				{Name: "data", Type: value.TypeImage},
			},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "land_cover_changes", Kind: catalog.KindDerived, DerivedBy: "change_map",
			Attrs: []catalog.Attr{
				{Name: "data", Type: value.TypeImage},
			},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
	}
	for _, c := range classes {
		if err := cat.Define(c); err != nil {
			t.Fatal(err)
		}
	}
}

// insertScene stores n co-registered bands at the given date and returns
// their OIDs.
func insertScene(t *testing.T, e *env, n int, day sptemp.AbsTime, year int) []object.OID {
	t.Helper()
	l := raster.NewLandscape(77)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 10, Cols: 10, DayOfYear: 150, Year: year, Noise: 0.01}
	bands := []raster.Band{raster.BandRed, raster.BandNIR, raster.BandSWIR, raster.BandGreen}
	oids := make([]object.OID, 0, n)
	for i := 0; i < n; i++ {
		img, err := l.GenerateBand(spec, bands[i%len(bands)])
		if err != nil {
			t.Fatal(err)
		}
		oid, err := e.obj.Insert(&object.Object{
			Class: "landsat_tm",
			Attrs: map[string]value.Value{
				"band": value.String_(bands[i%len(bands)].String()),
				"data": value.Image{Img: img},
			},
			Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 300, 300), day),
		})
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	return oids
}

func TestRunRecordsTask(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	tk, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("first run should not be memoised")
	}
	if tk.Process != "unsupervised_classification" || tk.Version != 1 || tk.User != "alice" {
		t.Errorf("task = %+v", tk)
	}
	out, err := e.obj.Get(tk.Output)
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != "landcover" {
		t.Errorf("output class = %s", out.Class)
	}
	if out.Attrs["numclass"].(value.Int) != 12 {
		t.Errorf("numclass = %v", out.Attrs["numclass"])
	}
	// Lineage.
	prod, ok := e.exec.Producer(tk.Output)
	if !ok || prod.ID != tk.ID {
		t.Error("Producer lookup failed")
	}
	if _, ok := e.exec.Producer(scene[0]); ok {
		t.Error("base data has no producer")
	}
	cons := e.exec.Consumers(scene[0])
	if len(cons) != 1 || cons[0].ID != tk.ID {
		t.Errorf("Consumers = %v", cons)
	}
}

func TestMemoisation(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	in := map[string][]object.OID{"bands": scene}
	t1, _, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t2, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reused || t2.ID != t1.ID {
		t.Error("identical instantiation should be memoised")
	}
	// NoMemo forces a fresh run with a new output.
	t3, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if reused || t3.ID == t1.ID || t3.Output == t1.Output {
		t.Error("NoMemo should re-execute")
	}
	// Different input order is a different binding -> different task.
	swapped := map[string][]object.OID{"bands": {scene[1], scene[0], scene[2]}}
	t4, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", swapped, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reused || t4.ID == t1.ID {
		t.Error("different input order is a distinct task")
	}
}

func TestRunFailuresAreClean(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 4, sptemp.Date(1986, 1, 15), 1986)
	// Assertion failure: card = 4.
	if _, _, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{}); !errors.Is(err, process.ErrAssertion) {
		t.Errorf("assertion err = %v", err)
	}
	// No task recorded.
	if len(e.exec.All()) != 0 {
		t.Error("failed run must not record a task")
	}
	// Unknown process.
	if _, _, err := e.exec.Run(context.Background(), "ghost", nil, RunOptions{}); !errors.Is(err, process.ErrProcessNotFound) {
		t.Errorf("unknown process err = %v", err)
	}
	// Missing input object.
	if _, _, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": {9999, 9998, 9997}}, RunOptions{}); !errors.Is(err, ErrExec) {
		t.Errorf("missing input err = %v", err)
	}
}

func TestRunCompoundLandChangeDetection(t *testing.T) {
	e := newEnv(t)
	scene86 := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 1, 15), 1989)
	tasks, out, err := e.exec.RunCompound(context.Background(), "land_change_detection",
		map[string][]object.OID{"tm1": scene86, "tm2": scene89}, RunOptions{User: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	outObj, err := e.obj.Get(out)
	if err != nil {
		t.Fatal(err)
	}
	if outObj.Class != "land_cover_changes" {
		t.Errorf("output class = %s", outObj.Class)
	}
	// The final task consumed the two intermediate landcovers.
	final := tasks[2]
	if final.Process != "change_map" {
		t.Errorf("final = %+v", final)
	}
	// Ancestors of the output span both scenes and both landcovers.
	anc := e.exec.Ancestors(out)
	if len(anc) != 8 { // 6 scenes + 2 landcovers
		t.Errorf("ancestors = %v", anc)
	}
	// Descendants of a base scene include the final output.
	desc := e.exec.Descendants(scene86[0])
	found := false
	for _, d := range desc {
		if d == out {
			found = true
		}
	}
	if !found {
		t.Errorf("descendants of scene missing output: %v", desc)
	}
	// Re-running the compound reuses all three memoised steps.
	tasks2, out2, err := e.exec.RunCompound(context.Background(), "land_change_detection",
		map[string][]object.OID{"tm1": scene86, "tm2": scene89}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Error("memoised compound should return the same output object")
	}
	for i := range tasks2 {
		if tasks2[i].ID != tasks[i].ID {
			t.Error("compound steps should be memoised")
		}
	}
}

func TestRunCompoundBindingErrors(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	// Missing argument.
	if _, _, err := e.exec.RunCompound(context.Background(), "land_change_detection", map[string][]object.OID{"tm1": scene}, RunOptions{}); !errors.Is(err, ErrExec) {
		t.Errorf("missing arg err = %v", err)
	}
	// Unknown compound.
	if _, _, err := e.exec.RunCompound(context.Background(), "ghost", nil, RunOptions{}); !errors.Is(err, process.ErrProcessNotFound) {
		t.Errorf("unknown compound err = %v", err)
	}
}

func TestExplainRendersLineageTree(t *testing.T) {
	e := newEnv(t)
	scene86 := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 1, 15), 1989)
	_, out, err := e.exec.RunCompound(context.Background(), "land_change_detection",
		map[string][]object.OID{"tm1": scene86, "tm2": scene89}, RunOptions{User: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	text := e.exec.Explain(out)
	for _, want := range []string{"change_map", "unsupervised_classification", "base data", "by carol"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q in:\n%s", want, text)
		}
	}
	// Base object explanation is one line.
	base := e.exec.Explain(scene86[0])
	if !strings.Contains(base, "base data") {
		t.Errorf("base explain = %q", base)
	}
}

func TestReproduceMatchesOriginal(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	orig, _, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, same, err := e.exec.Reproduce(context.Background(), orig.ID, RunOptions{User: "referee"})
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("deterministic process should reproduce identically")
	}
	if fresh.ID == orig.ID || fresh.Output == orig.Output {
		t.Error("reproduction must create a fresh task and output")
	}
	if _, _, err := e.exec.Reproduce(context.Background(), 9999, RunOptions{}); !errors.Is(err, ErrTaskNotFound) {
		t.Errorf("missing task err = %v", err)
	}
}

func TestReproduceUsesRecordedVersion(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	orig, _, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Redefine the process (v2 with k=8). Reproduction must still use v1.
	v2 := strings.ReplaceAll(p20Source, "12", "8")
	if _, _, err := e.mgr.Redefine(v2); err != nil {
		t.Fatal(err)
	}
	fresh, same, err := e.exec.Reproduce(context.Background(), orig.ID, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("reproduction with recorded version should match")
	}
	if fresh.Version != 1 {
		t.Errorf("reproduction used version %d", fresh.Version)
	}
	// A fresh Run uses v2 and yields numclass 8.
	t2, _, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := e.obj.Get(t2.Output)
	if out.Attrs["numclass"].(value.Int) != 8 {
		t.Errorf("v2 numclass = %v", out.Attrs["numclass"])
	}
}

func TestTaskLogPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e := openEnv(t, dir, false)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	tk, _, err := e.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{User: "dave"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.st.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openEnv(t, dir, true)
	got, err := e2.exec.Get(tk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "dave" || got.Output != tk.Output {
		t.Errorf("reloaded task = %+v", got)
	}
	// Memo survives: same run is still reused.
	t2, reused, err := e2.exec.Run(context.Background(), "unsupervised_classification", map[string][]object.OID{"bands": scene}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reused || t2.ID != tk.ID {
		t.Error("memo must survive reopen")
	}
	// Lineage too.
	if _, ok := e2.exec.Producer(tk.Output); !ok {
		t.Error("lineage must survive reopen")
	}
}

func TestTwoScientistsScenario(t *testing.T) {
	// The §1 motivating scenario: subtract vs ratio of NDVI. Both outputs
	// live in the same class; only the recorded derivation tells them
	// apart.
	e := newEnv(t)
	defineNDVIWorld(t, e)

	scene88 := insertScene(t, e, 3, sptemp.Date(1988, 6, 15), 1988)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 6, 15), 1989)

	nd88, _, err := e.exec.Run(context.Background(), "ndvi_map", map[string][]object.OID{"red": {scene88[0]}, "nir": {scene88[1]}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nd89, _, err := e.exec.Run(context.Background(), "ndvi_map", map[string][]object.OID{"red": {scene89[0]}, "nir": {scene89[1]}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := e.exec.Run(context.Background(), "veg_change_subtract", map[string][]object.OID{"recent": {nd89.Output}, "old": {nd88.Output}}, RunOptions{User: "scientist-1"})
	if err != nil {
		t.Fatal(err)
	}
	rat, _, err := e.exec.Run(context.Background(), "veg_change_ratio", map[string][]object.OID{"recent": {nd89.Output}, "old": {nd88.Output}}, RunOptions{User: "scientist-2"})
	if err != nil {
		t.Fatal(err)
	}
	// Same class, same extent, different derivation.
	so, _ := e.obj.Get(sub.Output)
	ro, _ := e.obj.Get(rat.Output)
	if so.Class != ro.Class {
		t.Fatal("both should land in veg_change")
	}
	p1, _ := e.exec.Producer(sub.Output)
	p2, _ := e.exec.Producer(rat.Output)
	if p1.Process == p2.Process {
		t.Error("derivations must be distinguishable")
	}
}

// defineNDVIWorld defines the ndvi/veg_change classes and processes used
// by the two-scientists scenario.
func defineNDVIWorld(t *testing.T, e *env) {
	t.Helper()
	classes := []*catalog.Class{
		{
			Name: "ndvi", Kind: catalog.KindDerived, DerivedBy: "ndvi_map",
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "veg_change", Kind: catalog.KindDerived, DerivedBy: "veg_change_subtract",
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
	}
	for _, c := range classes {
		if err := e.cat.Define(c); err != nil {
			t.Fatal(err)
		}
	}
	srcs := []string{`
DEFINE PROCESS ndvi_map (
  OUTPUT o ndvi
  ARGUMENT ( red landsat_tm )
  ARGUMENT ( nir landsat_tm )
  TEMPLATE {
    ASSERTIONS:
      common ( red.spatialextent );
    MAPPINGS:
      o.data = ndvi ( red.data, nir.data );
      o.spatialextent = red.spatialextent;
      o.timestamp = red.timestamp;
  }
)`, `
DEFINE PROCESS veg_change_subtract (
  OUTPUT o veg_change
  ARGUMENT ( recent ndvi )
  ARGUMENT ( old ndvi )
  TEMPLATE {
    MAPPINGS:
      o.data = img_subtract ( recent.data, old.data );
      o.spatialextent = recent.spatialextent;
      o.timestamp = recent.timestamp;
  }
)`, `
DEFINE PROCESS veg_change_ratio (
  OUTPUT o veg_change
  ARGUMENT ( recent ndvi )
  ARGUMENT ( old ndvi )
  TEMPLATE {
    MAPPINGS:
      o.data = img_ratio ( recent.data, old.data );
      o.spatialextent = recent.spatialextent;
      o.timestamp = recent.timestamp;
  }
)`}
	for _, src := range srcs {
		if _, err := e.mgr.Define(src); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMemoInvalidatedByOutputDelete is the regression test for memo and
// byOutput entries surviving object deletion: a memo hit must never
// return a task whose output OID no longer resolves.
func TestMemoInvalidatedByOutputDelete(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	in := map[string][]object.OID{"bands": scene}
	t1, _, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Delete the output directly through the object store (bypassing the
	// kernel facade, as an embedded user might).
	if err := e.obj.Delete(t1.Output); err != nil {
		t.Fatal(err)
	}
	t2, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("memo hit returned a task whose output was deleted")
	}
	if t2.Output == t1.Output {
		t.Fatalf("re-execution reused the deleted output OID %d", t1.Output)
	}
	if _, err := e.obj.Get(t2.Output); err != nil {
		t.Fatalf("fresh output should resolve: %v", err)
	}
	// The producer entry for the deleted output is gone too.
	if _, ok := e.exec.Producer(t1.Output); ok {
		t.Error("Producer still indexes the deleted output")
	}
	// The fresh task is memoised normally.
	t3, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil || !reused || t3.ID != t2.ID {
		t.Fatalf("expected memo hit on fresh task: %v reused=%v", err, reused)
	}
}

// TestRecomputeTaskRefreshesInPlace re-executes a recorded task over the
// output's existing OID after an input changed.
func TestRecomputeTaskRefreshesInPlace(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	in := map[string][]object.OID{"bands": scene}
	t1, _, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.obj.Get(t1.Output)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.exec.RecomputeTask(context.Background(), t1.ID, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if t2.Output != t1.Output {
		t.Fatalf("recompute changed the output OID: %d -> %d", t1.Output, t2.Output)
	}
	if t2.ID == t1.ID {
		t.Error("recompute should record a fresh task")
	}
	after, err := e.obj.Get(t2.Output)
	if err != nil {
		t.Fatal(err)
	}
	if before.Class != after.Class || len(before.Attrs) != len(after.Attrs) {
		t.Errorf("refreshed object shape changed: %+v vs %+v", before, after)
	}
	// The refresh task is now the producer and holds the memo entry.
	if prod, ok := e.exec.Producer(t1.Output); !ok || prod.ID != t2.ID {
		t.Errorf("producer after recompute = %+v, %v", prod, ok)
	}
	// External (version 0) derivations cannot be recomputed.
	ext, err := e.exec.RecordExternal("data_load", nil, scene[0], "landsat_tm", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.exec.RecomputeTask(context.Background(), ext.ID, RunOptions{}); !errors.Is(err, ErrExec) {
		t.Errorf("recompute of external task = %v, want ErrExec", err)
	}
}

// TestReproduceStaleInputFlagged verifies the staleness guard on
// reproduction: a stale input means the recorded input state cannot be
// reproduced, so Reproduce must say so instead of silently re-running.
func TestReproduceStaleInputFlagged(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	in := map[string][]object.OID{"bands": scene}
	t1, _, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stale := map[object.OID]bool{scene[1]: true}
	e.exec.Stale = func(oid object.OID) bool { return stale[oid] }
	if _, _, err := e.exec.Reproduce(context.Background(), t1.ID, RunOptions{}); !errors.Is(err, ErrStaleInput) {
		t.Fatalf("reproduce with stale input = %v, want ErrStaleInput", err)
	}
	// Fresh inputs reproduce normally again.
	stale = map[object.OID]bool{}
	if _, same, err := e.exec.Reproduce(context.Background(), t1.ID, RunOptions{}); err != nil || !same {
		t.Fatalf("reproduce after refresh = same=%v, %v", same, err)
	}
}
