package task

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gaea/internal/object"
	"gaea/internal/sptemp"
)

// TestSingleFlightMemoisation issues the same instantiation from many
// goroutines at once: exactly one task must execute; the rest must be
// answered with the memoised task (run under -race in CI).
func TestSingleFlightMemoisation(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	in := map[string][]object.OID{"bands": scene}

	const n = 16
	var (
		wg       sync.WaitGroup
		start    = make(chan struct{})
		mu       sync.Mutex
		executed int
		ids      = make(map[ID]bool)
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tk, reused, err := e.exec.Run(context.Background(), "unsupervised_classification", in, RunOptions{})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if !reused {
				executed++
			}
			ids[tk.ID] = true
		}()
	}
	close(start)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if executed != 1 {
		t.Errorf("executed %d times, want exactly 1 (single-flight)", executed)
	}
	if len(ids) != 1 {
		t.Errorf("callers saw %d distinct tasks, want 1", len(ids))
	}
	if got := len(e.exec.All()); got != 1 {
		t.Errorf("task log has %d tasks, want 1", got)
	}
}

// TestSingleFlightDistinctInputsRunIndependently makes sure single-flight
// keys on the full instantiation: different inputs must not collapse.
func TestSingleFlightDistinctInputsRunIndependently(t *testing.T) {
	e := newEnv(t)
	scene86 := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 1, 15), 1989)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, scene := range [][]object.OID{scene86, scene89} {
		wg.Add(1)
		go func(scene []object.OID) {
			defer wg.Done()
			_, _, err := e.exec.Run(context.Background(), "unsupervised_classification",
				map[string][]object.OID{"bands": scene}, RunOptions{})
			if err != nil {
				errs <- err
			}
		}(scene)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(e.exec.All()); got != 2 {
		t.Errorf("task log has %d tasks, want 2", got)
	}
}

// TestCancelledContextAbortsCompound: a cancelled context aborts a
// compound run cleanly — the error is the context's, and no step tasks
// are recorded.
func TestCancelledContextAbortsCompound(t *testing.T) {
	e := newEnv(t)
	scene86 := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 1, 15), 1989)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.exec.RunCompound(ctx, "land_change_detection",
		map[string][]object.OID{"tm1": scene86, "tm2": scene89}, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := len(e.exec.All()); got != 0 {
		t.Errorf("cancelled compound recorded %d tasks, want 0", got)
	}
	// The engine stays usable after a cancellation.
	tasks, _, err := e.exec.RunCompound(context.Background(), "land_change_detection",
		map[string][]object.OID{"tm1": scene86, "tm2": scene89}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Errorf("post-cancel compound ran %d tasks, want 3", len(tasks))
	}
}

// TestCancelledContextAbortsRun covers the primitive path too.
func TestCancelledContextAbortsRun(t *testing.T) {
	e := newEnv(t)
	scene := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.exec.Run(ctx, "unsupervised_classification",
		map[string][]object.OID{"bands": scene}, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCompoundParallelStepsMatchSequential: the same compound run at
// parallelism 1 and 8 must produce identical step structure.
func TestCompoundParallelStepsMatchSequential(t *testing.T) {
	e := newEnv(t)
	scene86 := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 1, 15), 1989)
	in := map[string][]object.OID{"tm1": scene86, "tm2": scene89}

	seqTasks, seqOut, err := e.exec.RunCompound(context.Background(), "land_change_detection", in, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A second, parallel run is fully memoised and returns the same tasks.
	parTasks, parOut, err := e.exec.RunCompound(context.Background(), "land_change_detection", in, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if parOut != seqOut {
		t.Errorf("parallel output %d != sequential output %d", parOut, seqOut)
	}
	if len(parTasks) != len(seqTasks) {
		t.Fatalf("parallel ran %d tasks, sequential %d", len(parTasks), len(seqTasks))
	}
	for i := range parTasks {
		if parTasks[i].ID != seqTasks[i].ID {
			t.Errorf("step %d: parallel task %d != sequential task %d", i, parTasks[i].ID, seqTasks[i].ID)
		}
	}
	// And a cold parallel run on fresh inputs works end to end.
	scene91 := insertScene(t, e, 3, sptemp.Date(1991, 1, 15), 1991)
	tasks, out, err := e.exec.RunCompound(context.Background(), "land_change_detection",
		map[string][]object.OID{"tm1": scene89, "tm2": scene91}, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 || out == 0 {
		t.Errorf("cold parallel compound: %d tasks, out=%d", len(tasks), out)
	}
	if tasks[2].Process != "change_map" {
		t.Errorf("final step = %s, want change_map (order preserved)", tasks[2].Process)
	}
}

// TestConcurrentCompoundsShareSteps: two goroutines running overlapping
// compounds concurrently must share the overlapping classification step.
func TestConcurrentCompoundsShareSteps(t *testing.T) {
	e := newEnv(t)
	scene86 := insertScene(t, e, 3, sptemp.Date(1986, 1, 15), 1986)
	scene89 := insertScene(t, e, 3, sptemp.Date(1989, 1, 15), 1989)
	in := map[string][]object.OID{"tm1": scene86, "tm2": scene89}

	const n = 8
	var wg sync.WaitGroup
	outs := make([]object.OID, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out, err := e.exec.RunCompound(context.Background(), "land_change_detection", in, RunOptions{})
			outs[i], errs[i] = out, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("compound %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if outs[i] != outs[0] {
			t.Errorf("compound %d produced output %d, want shared %d", i, outs[i], outs[0])
		}
	}
	// Exactly the three steps executed once each.
	if got := len(e.exec.All()); got != 3 {
		t.Errorf("task log has %d tasks, want 3 (steps shared via single-flight)", got)
	}
}

// TestLevels checks the topological staging used by the scheduler.
func TestLevels(t *testing.T) {
	cases := []struct {
		name string
		n    int
		deps map[int][]int
		want [][]int
	}{
		{"empty", 0, nil, [][]int{}},
		{"chain", 3, map[int][]int{1: {0}, 2: {1}}, [][]int{{0}, {1}, {2}}},
		{"diamond", 4, map[int][]int{1: {0}, 2: {0}, 3: {1, 2}}, [][]int{{0}, {1, 2}, {3}}},
		{"independent", 3, nil, [][]int{{0, 1, 2}}},
		// land_change_detection: two independent classifications, then the
		// change map.
		{"figure5", 3, map[int][]int{2: {0, 1}}, [][]int{{0, 1}, {2}}},
	}
	for _, tc := range cases {
		got := Levels(tc.n, func(i int) []int { return tc.deps[i] })
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: Levels = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestParallelPropagatesFirstError: a failing stage function cancels the
// rest and surfaces its error.
func TestParallelPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	fns := []func(context.Context) error{
		func(ctx context.Context) error { return nil },
		func(ctx context.Context) error { return boom },
		func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() },
	}
	if err := Parallel(context.Background(), 4, fns); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	// Sequential mode too.
	if err := Parallel(context.Background(), 1, fns[:2]); !errors.Is(err, boom) {
		t.Errorf("sequential err = %v, want boom", err)
	}
}
