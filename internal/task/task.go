// Package task implements the Task construct of §2.1.2: "the instantiation
// of a process with input data objects is called a task. Every task will
// generate a set of objects (most of the time just one) for the output
// class." Tasks are the data-object-level derivation records (§2.1.5 item
// 2): each one stores which process version ran, over which input OIDs,
// producing which output OID — the derivation history that makes shared
// data interpretable and experiments reproducible.
//
// The executor also provides memoisation (an identical instantiation is
// answered from the recorded task instead of recomputed) and lineage
// queries (ancestors, descendants, and a human-readable derivation
// explanation).
//
// Execution is concurrent: independent steps of a compound process run in
// parallel on a bounded worker pool (see scheduler.go), memoisation is
// single-flight (N identical concurrent instantiations execute once; the
// other N−1 callers receive the memoised task), and every entry point
// takes a context for cancellation and deadlines.
package task

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/process"
	"gaea/internal/sflight"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

// ID identifies a task.
type ID uint64

// Errors returned by the executor.
var (
	ErrTaskNotFound = errors.New("task: not found")
	ErrExec         = errors.New("task: execution failed")
	// ErrStaleInput is returned by Reproduce when a recorded input object
	// is marked stale: re-running the task would not reproduce the
	// recorded input state, so the mismatch is reported up front.
	ErrStaleInput = errors.New("task: input is stale")
)

// Task is one recorded derivation.
type Task struct {
	ID      ID     `json:"id"`
	Process string `json:"process"`
	Version int    `json:"version"`
	User    string `json:"user,omitempty"`
	// Inputs maps argument names to the OIDs bound to them, in binding
	// order.
	Inputs map[string][]object.OID `json:"inputs"`
	Output object.OID              `json:"output"`
	// OutClass denormalises the output class for lineage display.
	OutClass string `json:"out_class"`
	// Micros is the execution wall time in microseconds.
	Micros int64 `json:"micros"`
	// Note is free-form provenance commentary (e.g. the experiment name).
	Note string `json:"note,omitempty"`
}

// Key canonicalises (process, version, inputs) for memoisation.
func memoKey(proc string, version int, inputs map[string][]object.OID) string {
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", proc, version)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s=", n)
		for i, oid := range inputs[n] {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", oid)
		}
	}
	return b.String()
}

// Executor runs processes and records tasks.
type Executor struct {
	// Workers caps the goroutines used per compound/plan run when the
	// RunOptions carry no Parallelism override (0 = GOMAXPROCS). Set it
	// before issuing concurrent runs.
	Workers int

	// Hooks wired by the derived-data manager at open time, before any
	// concurrent use. All may be nil.
	//
	// OnRecord is called (without executor locks held) after every task is
	// recorded, so the dependency graph can grow with fresh lineage.
	OnRecord func(*Task)
	// Stale reports whether an output object is marked stale; a memoised
	// task whose output is stale is refreshed (or re-executed) instead of
	// being served as-is.
	Stale func(object.OID) bool
	// Refresh brings a stale output object up to date in place (ancestors
	// first). It is invoked on memo hits whose output is stale.
	Refresh func(context.Context, object.OID) error

	mu  sync.RWMutex
	st  *storage.Store
	cat *catalog.Catalog
	reg *adt.Registry
	obj *object.Store
	mgr *process.Manager

	byID     map[ID]*Task
	byOutput map[object.OID]ID
	byInput  map[object.OID][]ID
	memo     map[string]ID
	// flights deduplicates executions in progress per memo key
	// (single-flight): concurrent identical instantiations wait for the
	// leader instead of re-deriving.
	flights sflight.Group[flightVal]
}

// flightVal is what one execution publishes to its single-flight
// waiters; fresh distinguishes an actual execution from a memo hit the
// leader discovered on entry.
type flightVal struct {
	task  *Task
	fresh bool
}

const tasksHeap = "tasks"

// OpenExecutor loads the task log and rebuilds the lineage indexes.
func OpenExecutor(st *storage.Store, cat *catalog.Catalog, reg *adt.Registry, obj *object.Store, mgr *process.Manager) (*Executor, error) {
	e := &Executor{
		st: st, cat: cat, reg: reg, obj: obj, mgr: mgr,
		byID:     make(map[ID]*Task),
		byOutput: make(map[object.OID]ID),
		byInput:  make(map[object.OID][]ID),
		memo:     make(map[string]ID),
	}
	var scanErr error
	err := st.Scan(tasksHeap, func(rid storage.RID, rec []byte) bool {
		var t Task
		if err := json.Unmarshal(rec, &t); err != nil {
			scanErr = fmt.Errorf("task: corrupt record %s: %w", rid, err)
			return false
		}
		e.indexLocked(&t)
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return e, nil
}

func (e *Executor) indexLocked(t *Task) {
	e.byID[t.ID] = t
	e.byOutput[t.Output] = t.ID
	for _, oids := range t.Inputs {
		for _, oid := range oids {
			e.byInput[oid] = append(e.byInput[oid], t.ID)
		}
	}
	e.memo[memoKey(t.Process, t.Version, t.Inputs)] = t.ID
}

// RunOptions tunes one execution.
type RunOptions struct {
	User string
	Note string
	// NoMemo forces re-execution even when an identical task exists.
	NoMemo bool
	// Parallelism caps the worker pool for this run's independent steps
	// (compound steps, plan stages). 0 falls back to Executor.Workers,
	// then GOMAXPROCS.
	Parallelism int
}

// Run instantiates the latest version of a primitive process over the
// given input objects, creating (or reusing) the output object. Memoised
// hits return the previously recorded task with Reused=true.
func (e *Executor) Run(ctx context.Context, procName string, inputs map[string][]object.OID, opts RunOptions) (*Task, bool, error) {
	pr, err := e.mgr.Lookup(procName)
	if err != nil {
		return nil, false, err
	}
	return e.runVersion(ctx, pr, inputs, opts)
}

// RunVersion instantiates a specific process version (reproducing an old
// task must use the process as it was).
func (e *Executor) RunVersion(ctx context.Context, procName string, version int, inputs map[string][]object.OID, opts RunOptions) (*Task, bool, error) {
	pr, err := e.mgr.LookupVersion(procName, version)
	if err != nil {
		return nil, false, err
	}
	return e.runVersion(ctx, pr, inputs, opts)
}

// runVersion answers from the memo, joins an in-progress identical
// execution (single-flight), or executes and records a fresh task.
func (e *Executor) runVersion(ctx context.Context, pr *process.Process, inputs map[string][]object.OID, opts RunOptions) (*Task, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if opts.NoMemo {
		t, err := e.execute(ctx, pr, inputs, opts)
		if err != nil {
			return nil, false, err
		}
		return t, false, nil
	}
	key := memoKey(pr.Name, pr.Version, inputs)
	// Fast path: memo hits are answered under the shared lock so
	// concurrent memoised lookups proceed in parallel. A hit only counts
	// when its output object still resolves and is not stale.
	if t, ok := e.memoised(key); ok && e.outputLive(t) {
		return t, true, nil
	}
	v, joined, err := e.flights.Do(ctx, key, func() (flightVal, error) {
		// Re-check as leader: a previous leader may have published the
		// memo between our fast-path miss and the flight election.
		if t, ok := e.memoised(key); ok {
			switch {
			case e.outputLive(t):
				return flightVal{task: t}, nil
			case !e.obj.Exists(t.Output):
				// The memoised output is gone: drop the dangling entries
				// and derive anew.
				e.ForgetOutput(t.Output)
			case e.Refresh != nil:
				// Output present but stale: recompute it in place so the
				// caller gets fresh data under the recorded OID. On
				// failure (external derivation, missing input, …) fall
				// through to a fresh execution.
				if err := e.Refresh(ctx, t.Output); err == nil {
					if t2, ok := e.memoised(key); ok {
						return flightVal{task: t2, fresh: true}, nil
					}
				}
			default:
				// Stale with no refresher (Manual policy): derive a fresh
				// object. Recording it repoints the memo at the new task
				// while the stale object keeps its producer entry, so a
				// later RefreshStale can still recompute it in place.
			}
		}
		t, err := e.execute(ctx, pr, inputs, opts)
		return flightVal{task: t, fresh: true}, err
	})
	if err != nil {
		return nil, false, err
	}
	return v.task, joined || !v.fresh, nil
}

// outputLive reports whether a memoised task's output can be served
// as-is: it must still resolve and must not be marked stale.
func (e *Executor) outputLive(t *Task) bool {
	if !e.obj.Exists(t.Output) {
		return false
	}
	return e.Stale == nil || !e.Stale(t.Output)
}

// ForgetOutput drops the memo and producer entries pointing at an output
// object that no longer resolves, so future identical instantiations
// re-execute instead of returning a dangling task. The task itself stays
// in the log (byID, byInput) as history.
func (e *Executor) ForgetOutput(oid object.OID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id, ok := e.byOutput[oid]
	if !ok {
		return
	}
	t := e.byID[id]
	delete(e.byOutput, oid)
	key := memoKey(t.Process, t.Version, t.Inputs)
	if e.memo[key] == id {
		delete(e.memo, key)
	}
}

// memoised answers a memo lookup under the shared lock.
func (e *Executor) memoised(key string) (*Task, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	id, ok := e.memo[key]
	if !ok {
		return nil, false
	}
	return e.byID[id], true
}

// derive binds and evaluates one process instantiation, returning the
// computed output attributes/extent, the canonical input OIDs, and the
// execution wall time. It does not store anything.
func (e *Executor) derive(ctx context.Context, pr *process.Process, inputs map[string][]object.OID) (map[string]value.Value, sptemp.Extent, map[string][]object.OID, time.Duration, error) {
	var zero sptemp.Extent
	// Materialise the input objects.
	bound := make(map[string][]*object.Object, len(inputs))
	for name, oids := range inputs {
		objs := make([]*object.Object, len(oids))
		for i, oid := range oids {
			o, err := e.obj.Get(oid)
			if err != nil {
				// Double %w keeps both the ErrExec classification and the
				// cause (object.ErrNotFound for deleted inputs) matchable.
				return nil, zero, nil, 0, fmt.Errorf("%w: input %s[%d]: %w", ErrExec, name, i, err)
			}
			objs[i] = o
		}
		bound[name] = objs
	}
	b, err := pr.Bind(bound)
	if err != nil {
		return nil, zero, nil, 0, err
	}
	start := time.Now()
	if err := b.CheckAssertions(e.reg); err != nil {
		return nil, zero, nil, 0, err
	}
	outClass, err := e.cat.Class(pr.OutClass)
	if err != nil {
		return nil, zero, nil, 0, err
	}
	// Last cancellation point before the (possibly expensive) mapping
	// evaluation; past here the derivation runs to completion so the
	// output object and the task record stay consistent.
	if err := ctx.Err(); err != nil {
		return nil, zero, nil, 0, err
	}
	attrs, ext, err := b.EvalMappings(e.reg, outClass)
	if err != nil {
		return nil, zero, nil, 0, err
	}
	return attrs, ext, b.InputOIDs(), time.Since(start), nil
}

// record persists a task and publishes it to the lineage indexes and the
// OnRecord hook.
func (e *Executor) record(t *Task) (*Task, error) {
	id, err := e.st.NextID("task")
	if err != nil {
		return nil, err
	}
	t.ID = ID(id)
	rec, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	if _, err := e.st.Insert(tasksHeap, rec); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.indexLocked(t)
	e.mu.Unlock()
	if e.OnRecord != nil {
		e.OnRecord(t)
	}
	return t, nil
}

// execute performs one derivation unconditionally and records its task.
func (e *Executor) execute(ctx context.Context, pr *process.Process, inputs map[string][]object.OID, opts RunOptions) (*Task, error) {
	attrs, ext, inOIDs, elapsed, err := e.derive(ctx, pr, inputs)
	if err != nil {
		return nil, err
	}
	out := &object.Object{Class: pr.OutClass, Attrs: attrs, Extent: ext}
	outOID, err := e.obj.Insert(out)
	if err != nil {
		return nil, fmt.Errorf("%w: storing output: %v", ErrExec, err)
	}
	return e.record(&Task{
		Process:  pr.Name,
		Version:  pr.Version,
		User:     opts.User,
		Inputs:   inOIDs,
		Output:   outOID,
		OutClass: pr.OutClass,
		Micros:   elapsed.Microseconds(),
		Note:     opts.Note,
	})
}

// RecomputeTask re-executes a recorded task with its recorded process
// version and inputs, writing the result over the existing output object
// in place (same OID), and records a refresh task. The derived-data
// manager uses it to bring stale objects up to date without changing
// their identity; external derivations (version 0) cannot be recomputed.
func (e *Executor) RecomputeTask(ctx context.Context, id ID, opts RunOptions) (*Task, error) {
	orig, err := e.Get(id)
	if err != nil {
		return nil, err
	}
	if orig.Version == 0 {
		return nil, fmt.Errorf("%w: external derivation %q cannot be recomputed", ErrExec, orig.Process)
	}
	pr, err := e.mgr.LookupVersion(orig.Process, orig.Version)
	if err != nil {
		return nil, err
	}
	attrs, ext, inOIDs, elapsed, err := e.derive(ctx, pr, orig.Inputs)
	if err != nil {
		return nil, err
	}
	out := &object.Object{OID: orig.Output, Class: pr.OutClass, Attrs: attrs, Extent: ext}
	if err := e.obj.Update(out); err != nil {
		return nil, fmt.Errorf("%w: refreshing output %d: %v", ErrExec, orig.Output, err)
	}
	if opts.Note == "" {
		opts.Note = fmt.Sprintf("refresh of task %d", id)
	}
	return e.record(&Task{
		Process:  pr.Name,
		Version:  pr.Version,
		User:     opts.User,
		Inputs:   inOIDs,
		Output:   orig.Output,
		OutClass: pr.OutClass,
		Micros:   elapsed.Microseconds(),
		Note:     opts.Note,
	})
}

// RunCompound expands a compound process (Figure 5) and executes its
// primitive steps, memoising each step. Steps that do not consume each
// other's results — concurrently enabled transitions of the derivation
// diagram — run in parallel on the worker pool, one topological level at
// a time. It returns the step tasks in expansion order and the OID of
// the compound's output.
func (e *Executor) RunCompound(ctx context.Context, name string, inputs map[string][]object.OID, opts RunOptions) ([]*Task, object.OID, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	steps, outputName, err := e.mgr.Expand(name)
	if err != nil {
		return nil, 0, err
	}
	c, err := e.mgr.LookupCompound(name)
	if err != nil {
		return nil, 0, err
	}
	// Validate compound-level bindings.
	bindings := make(map[string][]object.OID, len(inputs))
	for _, a := range c.Args {
		oids, ok := inputs[a.Name]
		if !ok {
			return nil, 0, fmt.Errorf("%w: compound argument %q not bound", ErrExec, a.Name)
		}
		if !a.IsSet && len(oids) != 1 {
			return nil, 0, fmt.Errorf("%w: scalar compound argument %q bound to %d objects", ErrExec, a.Name, len(oids))
		}
		bindings[a.Name] = oids
	}
	// Stage the steps: step i depends on step j when it consumes j's
	// result (expansion emits steps in topological order).
	producer := make(map[string]int, len(steps))
	for i, s := range steps {
		producer[s.Result] = i
	}
	levels := Levels(len(steps), func(i int) []int {
		var deps []int
		for _, a := range steps[i].Args {
			if j, ok := producer[a]; ok {
				deps = append(deps, j)
			}
		}
		return deps
	})
	tasks := make([]*Task, len(steps))
	workers := e.parallelism(opts)
	for _, level := range levels {
		fns := make([]func(context.Context) error, 0, len(level))
		for _, idx := range level {
			i, s := idx, steps[idx]
			fns = append(fns, func(ctx context.Context) error {
				pr, err := e.mgr.Lookup(s.Process)
				if err != nil {
					return err
				}
				if len(pr.Args) != len(s.Args) {
					return fmt.Errorf("%w: step %s arity mismatch", ErrExec, s.Result)
				}
				stepInputs := make(map[string][]object.OID, len(s.Args))
				for j, argName := range s.Args {
					oids, ok := bindings[argName]
					if !ok {
						return fmt.Errorf("%w: step %s: unbound name %q", ErrExec, s.Result, argName)
					}
					stepInputs[pr.Args[j].Name] = oids
				}
				stepOpts := opts
				if stepOpts.Note == "" {
					stepOpts.Note = "step " + s.Result + " of " + name
				}
				t, _, err := e.runVersion(ctx, pr, stepInputs, stepOpts)
				if err != nil {
					// Double %w keeps both the ErrExec classification and
					// the cause (context.Canceled, assertion errors, …)
					// visible to errors.Is.
					return fmt.Errorf("%w: step %s (%s): %w", ErrExec, s.Result, s.Process, err)
				}
				tasks[i] = t
				return nil
			})
		}
		if err := Parallel(ctx, workers, fns); err != nil {
			return nil, 0, err
		}
		// Publish the level's results before the next level reads them.
		for _, idx := range level {
			bindings[steps[idx].Result] = []object.OID{tasks[idx].Output}
		}
	}
	out, ok := bindings[outputName]
	if !ok || len(out) != 1 {
		return nil, 0, fmt.Errorf("%w: compound %s produced no output", ErrExec, name)
	}
	return tasks, out[0], nil
}

// Get returns a recorded task.
func (e *Executor) Get(id ID) (*Task, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrTaskNotFound, id)
	}
	return t, nil
}

// All returns every recorded task, by id ascending.
func (e *Executor) All() []*Task {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Task, 0, len(e.byID))
	for _, t := range e.byID {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Producer returns the task that generated the given object, if any. Base
// data has no producer.
func (e *Executor) Producer(oid object.OID) (*Task, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	id, ok := e.byOutput[oid]
	if !ok {
		return nil, false
	}
	return e.byID[id], true
}

// Consumers returns the tasks that used the given object as input.
func (e *Executor) Consumers(oid object.OID) []*Task {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ids := e.byInput[oid]
	out := make([]*Task, 0, len(ids))
	for _, id := range ids {
		out = append(out, e.byID[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ancestors returns the transitive input OIDs an object derives from
// (excluding itself), sorted. Base data returns an empty set.
func (e *Executor) Ancestors(oid object.OID) []object.OID {
	seen := map[object.OID]bool{}
	var walk func(object.OID)
	walk = func(o object.OID) {
		t, ok := e.Producer(o)
		if !ok {
			return
		}
		for _, oids := range t.Inputs {
			for _, in := range oids {
				if !seen[in] {
					seen[in] = true
					walk(in)
				}
			}
		}
	}
	walk(oid)
	out := make([]object.OID, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns the transitive outputs derived from an object,
// sorted.
func (e *Executor) Descendants(oid object.OID) []object.OID {
	seen := map[object.OID]bool{}
	var walk func(object.OID)
	walk = func(o object.OID) {
		for _, t := range e.Consumers(o) {
			if !seen[t.Output] {
				seen[t.Output] = true
				walk(t.Output)
			}
		}
	}
	walk(oid)
	out := make([]object.OID, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Explain renders the derivation history of an object as an indented
// tree — the "derivation history | how they are produced" the paper argues
// shared data must carry (§1).
func (e *Executor) Explain(oid object.OID) string {
	var b strings.Builder
	e.explain(&b, oid, 0, map[object.OID]bool{})
	return b.String()
}

func (e *Executor) explain(b *strings.Builder, oid object.OID, depth int, onPath map[object.OID]bool) {
	indent := strings.Repeat("  ", depth)
	t, ok := e.Producer(oid)
	if !ok {
		fmt.Fprintf(b, "%sobject %d: base data\n", indent, oid)
		return
	}
	fmt.Fprintf(b, "%sobject %d (%s) <- task %d: %s v%d", indent, oid, t.OutClass, t.ID, t.Process, t.Version)
	if t.User != "" {
		fmt.Fprintf(b, " by %s", t.User)
	}
	b.WriteByte('\n')
	if onPath[oid] {
		fmt.Fprintf(b, "%s  (cycle)\n", indent)
		return
	}
	onPath[oid] = true
	names := make([]string, 0, len(t.Inputs))
	for n := range t.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(b, "%s  %s:\n", indent, n)
		for _, in := range t.Inputs[n] {
			e.explain(b, in, depth+2, onPath)
		}
	}
	delete(onPath, oid)
}

// Reproduce re-executes a recorded task with the same process version and
// inputs, bypassing the memo, and reports whether the fresh output equals
// the recorded one attribute-for-attribute — the paper's "reproducibility
// of experiments" capability.
func (e *Executor) Reproduce(ctx context.Context, id ID, opts RunOptions) (*Task, bool, error) {
	orig, err := e.Get(id)
	if err != nil {
		return nil, false, err
	}
	// Reproduction re-runs over the recorded input OIDs, so their current
	// state must be trustworthy: a stale input would silently change what
	// is being reproduced. (An updated *base* input is not stale — the
	// update is the new truth — and surfaces as a mismatch instead.)
	if e.Stale != nil {
		for name, oids := range orig.Inputs {
			for _, in := range oids {
				if e.Stale(in) {
					return nil, false, fmt.Errorf("%w: input %s=%d of task %d; refresh it first", ErrStaleInput, name, in, id)
				}
			}
		}
	}
	opts.NoMemo = true
	if opts.Note == "" {
		opts.Note = fmt.Sprintf("reproduction of task %d", id)
	}
	fresh, _, err := e.RunVersion(ctx, orig.Process, orig.Version, orig.Inputs, opts)
	if err != nil {
		return nil, false, err
	}
	same, err := e.outputsEqual(orig.Output, fresh.Output)
	if err != nil {
		return fresh, false, err
	}
	return fresh, same, nil
}

// outputsEqual compares two objects attribute-for-attribute.
func (e *Executor) outputsEqual(a, b object.OID) (bool, error) {
	oa, err := e.obj.Get(a)
	if err != nil {
		return false, err
	}
	ob, err := e.obj.Get(b)
	if err != nil {
		return false, err
	}
	if oa.Class != ob.Class || len(oa.Attrs) != len(ob.Attrs) {
		return false, nil
	}
	for name, va := range oa.Attrs {
		vb, ok := ob.Attrs[name]
		if !ok || !valueEqual(va, vb) {
			return false, nil
		}
	}
	return oa.Extent.Equal(ob.Extent), nil
}

// valueEqual delegates to the value package's structural equality.
func valueEqual(a, b interface{ Type() value.Type }) bool {
	av, aok := a.(value.Value)
	bv, bok := b.(value.Value)
	if !aok || !bok {
		return false
	}
	return value.Equal(av, bv)
}

// RecordExternal records a task for a derivation performed outside the
// process manager — interpolation (the generic derivation process of
// §2.1.5 step 2) and base-data loads. Version 0 marks external
// derivations; they participate in lineage but are not memoised as
// process instantiations.
func (e *Executor) RecordExternal(procName string, inputs map[string][]object.OID, output object.OID, outClass string, opts RunOptions) (*Task, error) {
	return e.record(&Task{
		Process:  procName,
		Version:  0,
		User:     opts.User,
		Inputs:   inputs,
		Output:   output,
		OutClass: outClass,
		Note:     opts.Note,
	})
}

// StageExternal prepares an external-derivation task for inclusion in an
// atomic storage batch instead of logging it immediately: the task ID is
// reserved in memory, and the marshalled heap record is returned for the
// caller to commit alongside its object mutations (the batch must pin the
// "task" sequence — object.Store.ApplyBatch accepts it via PinSeqs).
// After the batch commits, Publish indexes the task.
func (e *Executor) StageExternal(procName string, inputs map[string][]object.OID, output object.OID, outClass string, opts RunOptions) (*Task, object.ExtraRec, error) {
	t := &Task{
		ID:       ID(e.st.AllocID("task")),
		Process:  procName,
		Version:  0,
		User:     opts.User,
		Inputs:   inputs,
		Output:   output,
		OutClass: outClass,
		Note:     opts.Note,
	}
	rec, err := json.Marshal(t)
	if err != nil {
		return nil, object.ExtraRec{}, err
	}
	return t, object.ExtraRec{Heap: tasksHeap, Rec: rec}, nil
}

// Publish indexes a staged task whose record was committed by a storage
// batch, and fires the OnRecord hook, exactly as record does for tasks
// the executor persists itself.
func (e *Executor) Publish(t *Task) {
	e.mu.Lock()
	e.indexLocked(t)
	e.mu.Unlock()
	if e.OnRecord != nil {
		e.OnRecord(t)
	}
}
