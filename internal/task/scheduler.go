package task

import (
	"context"
	"runtime"
	"sync"
)

// The concurrent derivation engine schedules independent derivation steps
// onto a bounded worker pool. Both compound-process expansions (Figure 5)
// and derivation plans (§2.1.6) are DAGs: a step consumes the outputs of
// earlier steps. Steps with no path between them are independent — the
// Petri-net firing rule places no order on concurrently enabled
// transitions — so the engine groups steps into topological levels and
// executes each level's steps in parallel.

// Levels groups the items 0..n-1 into topological stages: item i is
// placed one level below the deepest of its dependencies, so every level
// contains only mutually independent items, and all of an item's
// dependencies live in strictly earlier levels. Dependencies must point
// at lower indexes (both compound expansion and plan construction emit
// steps in topological order); any dep ≥ i is ignored.
func Levels(n int, deps func(int) []int) [][]int {
	level := make([]int, n)
	maxLevel := -1
	for i := 0; i < n; i++ {
		l := 0
		for _, d := range deps(i) {
			if d >= 0 && d < i && level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]int, maxLevel+1)
	for i := 0; i < n; i++ {
		out[level[i]] = append(out[level[i]], i)
	}
	return out
}

// Parallel runs the functions concurrently on at most limit goroutines,
// returning the first error. On error (or on cancellation of ctx) the
// context passed to the remaining functions is cancelled and unstarted
// functions are skipped; Parallel always waits for started functions to
// finish before returning. A limit of 1 degenerates to sequential
// execution in slice order.
func Parallel(ctx context.Context, limit int, fns []func(context.Context) error) error {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if len(fns) == 0 {
		return ctx.Err()
	}
	if limit == 1 || len(fns) == 1 {
		for _, fn := range fns {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, limit)
	for _, fn := range fns {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			<-sem
			break
		}
		wg.Add(1)
		go func(fn func(context.Context) error) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
			}
		}(fn)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// parallelism resolves the worker count for one run: the per-run override
// wins, then the executor-wide Workers option, then GOMAXPROCS.
func (e *Executor) parallelism(opts RunOptions) int {
	if opts.Parallelism > 0 {
		return opts.Parallelism
	}
	if n := e.Workers; n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// StageParallelism exposes the resolved worker count so the query layer
// can schedule plan stages with the same policy.
func (e *Executor) StageParallelism(opts RunOptions) int { return e.parallelism(opts) }
