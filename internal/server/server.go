// Package server implements the Gaea network service: a
// connection-per-goroutine request/response server speaking the
// internal/wire protocol over TCP or unix sockets.
//
// The server is written against the narrow Backend interface below
// rather than the concrete kernel, so it lives under internal/ without
// an import cycle; package gaea adapts *gaea.Kernel onto it and exposes
// the public Kernel.NewServer surface.
//
// Three design points carry the remote semantics:
//
//   - Remote sessions are one round trip. The client stages creates,
//     updates, and deletes locally under provisional OIDs and ships the
//     whole batch as one OpCommit; the server replays it into a real
//     kernel session (reserve → stage → commit) and answers with the
//     real OIDs. Kernel atomicity and first-committer-wins validation
//     apply unchanged.
//
//   - Streaming queries are paged. Each page is one request served at an
//     explicitly pinned MVCC epoch; the epoch-carrying cursor goes back
//     to the client, and the server transfers its pin into a lease so
//     the snapshot survives between pages — and across reconnects —
//     without the client holding a connection open.
//
//   - Every pin a remote holds is leased. Snapshot opens and stream
//     cursors pin epochs under a TTL that each touch renews; a janitor
//     expires abandoned leases so a crashed or wandered-off client can
//     never wedge the MVCC GC horizon.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/query"
	"gaea/internal/wire"
)

// Session is the mutation surface the server replays a remote batch
// into; *gaea.Session satisfies it.
type Session interface {
	Create(obj *object.Object, note string) (object.OID, error)
	Update(obj *object.Object) error
	Delete(oid object.OID) error
	Commit() error
	Rollback() error
}

// PreparableSession is the optional two-phase-commit surface of a
// Session: Prepare validates the staged batch against the session's
// read epoch and locks its write set, so a later Commit cannot fail
// validation (first-committer-wins is decided at prepare time) and no
// competing writer can slip between the phases. A prepared session must
// end with Commit or Rollback; *gaea.Session satisfies it.
type PreparableSession interface {
	Session
	Prepare() error
}

// DeferredOIDs is implemented by backend sessions that assign real OIDs
// only at Commit (the federation router's cross-shard sessions, whose
// creates stay provisional until the owning shard answers). After a
// successful Commit the server remaps each Create's stage-time OID
// through Committed before answering the client.
type DeferredOIDs interface {
	Committed(staged object.OID) (object.OID, bool)
}

// Backend is the kernel surface the server exposes remotely. Package
// gaea implements it on *Kernel. Methods must be safe for concurrent
// use and return errors already classified against the public taxonomy
// (Code turns them into wire codes).
type Backend interface {
	// Begin opens a mutation session validating first-committer-wins
	// against readEpoch (0 = the current epoch at call time) and
	// recording lineage under the given user (the connection's Hello
	// user; "" = the kernel default).
	Begin(ctx context.Context, readEpoch uint64, user string) Session
	// Epoch reports the current commit epoch (a remote client's Begin).
	Epoch() uint64
	Query(ctx context.Context, req query.Request) (*query.Result, error)
	// QueryAt answers a retrieve-only request at a pinned snapshot epoch
	// (the caller holds the pin).
	QueryAt(ctx context.Context, req query.Request, epoch uint64) (*query.Result, error)
	// StreamPage drains one page of a streaming query at a pinned epoch
	// the CALLER holds: up to req.Limit objects — already in wire form,
	// cut early (with the cursor re-minted at the last included object)
	// once their encoded size approaches maxBytes, so draining stops at
	// the cut instead of loading objects only to discard them — plus the
	// resume cursor ("" when exhausted) and whether the page was
	// produced by the fallback chain (fallback results commit at newer
	// epochs, so they are not resumable; a fallback page that cannot fit
	// is an error, not a truncation). retrieveOnly suppresses the
	// fallback chain (snapshot streams must not derive).
	StreamPage(ctx context.Context, req query.Request, epoch uint64, retrieveOnly bool, maxBytes int) (objs []wire.Object, cursor string, fellBack bool, err error)
	// StreamPageRaw drains one retrieval-only page at a pinned epoch the
	// CALLER holds, as stored record bytes shipped verbatim (the v2
	// zero-copy path): no object is decoded or re-encoded. The page cuts
	// when its byte footprint approaches maxBytes; served reports whether
	// retrieval produced anything (the caller runs the fallback chain via
	// StreamPage when a fresh stream serves nothing).
	StreamPageRaw(ctx context.Context, req query.Request, epoch uint64, maxBytes int) (raws []wire.RawObject, cursor string, served bool, err error)
	// GetAt loads the version of an object visible at a pinned epoch.
	GetAt(oid object.OID, epoch uint64) (*object.Object, error)
	// GetRawAt loads the stored record bytes of the version visible at a
	// pinned epoch (zero-copy OpSnapGet).
	GetRawAt(oid object.OID, epoch uint64) (wire.RawObject, error)
	// Pin pins the current commit epoch; PinEpoch re-pins a specific one
	// (failing with the snapshot-gone error when it fell behind the GC
	// horizon); Unpin releases.
	Pin() uint64
	PinEpoch(epoch uint64) error
	Unpin(epoch uint64)
	// CursorEpoch extracts the snapshot epoch from a stream cursor.
	CursorEpoch(cursor string) (uint64, error)
	Stale() []object.OID
	RefreshStale(ctx context.Context) (int, error)
	Explain(oid object.OID) string
	ExplainQuery(ctx context.Context, req query.Request) (string, error)
	Stats() string
	// Code maps an error onto its wire code (the full public taxonomy,
	// including kernel-closed).
	Code(err error) wire.Code
}

// ObsBackend is the optional observability surface of a Backend. When
// the backend implements it (the kernel adapter does), the server
// registers its protocol counters into the backend's registry, records
// request spans into the backend's tracer — adopting client trace IDs
// carried on v2 frames, so one remote request is one cross-process
// trace — and answers OpStats with the full observability export.
// Backends without it (tests) are served exactly as before: the
// server's instruments fall back to nil-safe orphans.
type ObsBackend interface {
	Metrics() *obs.Registry
	Tracer() *obs.Tracer
	// ObsJSON is the marshalled observability export shipped on the
	// OpStats extension (nil when unavailable).
	ObsJSON() []byte
}

// FlightBackend is the optional flight-recorder surface of a Backend.
// When the backend implements it, the server emits its own structured
// events (lease expiries, 2PC outcomes) into the backend's event log,
// and OpSubscribeStats streams periodic stats/event deltas built from
// the backend's registry and log. Backends without it refuse
// OpSubscribeStats and skip event emission — nothing else changes.
type FlightBackend interface {
	Events() *obs.EventLog
}

// Options tunes a Server.
type Options struct {
	// MaxConns caps concurrently open connections (0 = unlimited). Over
	// the cap, new connections are answered with CodeUnavailable and
	// closed.
	MaxConns int
	// LeaseTTL bounds how long a snapshot or stream-cursor pin survives
	// without a touch (0 = 30s). Expired leases release their pins so
	// abandoned clients cannot stall MVCC GC.
	LeaseTTL time.Duration
	// PageSize caps (and defaults) the objects per stream page (0 = 256).
	// A request Limit below the cap is honoured exactly.
	PageSize int
	// MaxFrame bounds one wire frame (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// PrepareDir, when set, makes 2PC yes-votes durable: each prepared
	// transaction is fsynced there as a sidecar file before the vote is
	// answered, and New re-stages surviving sidecars after a restart so
	// a coordinator replaying its decision log still finds them. Empty
	// keeps prepares in-memory only (a crash presume-aborts them).
	PrepareDir string
}

const (
	defaultLeaseTTL = 30 * time.Second
	defaultPageSize = 256
)

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return defaultLeaseTTL
	}
	return o.LeaseTTL
}

func (o Options) pageSize() int {
	if o.PageSize <= 0 {
		return defaultPageSize
	}
	return o.PageSize
}

func (o Options) maxFrame() int {
	if o.MaxFrame <= 0 {
		return wire.DefaultMaxFrame
	}
	return o.MaxFrame
}

// Stats reports the server's own counters (kernel counters travel in
// the same OpStats response).
type Stats struct {
	OpenConns      int64
	ActiveSessions int64
	ActiveStreams  int64
	ActiveLeases   int64
	LeaseExpiries  int64
	// InFlight counts requests currently executing (v2 connections admit
	// many at once).
	InFlight int64
	// MaxInFlightPerConn is the high-water mark of concurrent requests on
	// any single connection since start.
	MaxInFlightPerConn int64
	// PushedPages counts v2 server-push stream pages sent.
	PushedPages int64
	// BytesAvoided counts bytes shipped verbatim from storage on the v2
	// raw path — bytes v1 would have decoded and re-encoded.
	BytesAvoided int64
}

// lease is one pinned epoch with an expiry. Snapshot leases are keyed by
// id; cursor leases by epoch (one pin per epoch however many cursors
// reference it).
type lease struct {
	epoch   uint64
	expires time.Time
}

// preparedTxn is one 2PC participant vote: a session that passed
// Prepare and now awaits the coordinator's decision. It carries the
// real OIDs already answered to the coordinator and a TTL — an
// undecided prepare whose coordinator vanished is presumed aborted when
// the janitor expires it, so its write locks cannot wedge the shard.
type preparedTxn struct {
	token   uint64
	sess    Session
	real    []uint64
	expires time.Time
}

// Server serves the wire protocol for one Backend. Create with New,
// start with Serve (one goroutine per listener), stop with Shutdown.
type Server struct {
	b    Backend
	opts Options

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]bool // conn -> busy (handling a request)
	snapLease map[uint64]*lease // by lease id
	curLease  map[uint64]*lease // by epoch
	prepared  map[uint64]*preparedTxn
	draining  bool

	nextLease    atomic.Uint64
	sessions     atomic.Int64
	streams      atomic.Int64
	expiries     atomic.Int64
	openConns    atomic.Int64
	inFlight     atomic.Int64
	maxInFlight  atomic.Int64
	pushedPages  atomic.Int64
	bytesAvoided atomic.Int64

	// Observability (nil-safe orphans when the backend has no
	// ObsBackend): per-protocol request counters, a shared request
	// latency histogram, the tracer requests record spans into, and the
	// OpStats export hook.
	tracer  *obs.Tracer
	obsJSON func() []byte
	reqV1   *obs.Counter
	reqV2   *obs.Counter
	reqNS   *obs.Histogram

	// Flight recorder (nil without a FlightBackend): the registry stats
	// subscriptions snapshot and the event log the server emits into.
	reg    *obs.Registry
	events *obs.EventLog

	v2mu    sync.Mutex
	v2conns map[*v2conn]struct{}

	quit     chan struct{}
	quitOnce sync.Once
	connWG   sync.WaitGroup // connection handler goroutines
	reqWG    sync.WaitGroup // in-flight requests (the drain barrier)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	janitorDone chan struct{}
}

// New builds a Server over a Backend.
func New(b Backend, opts Options) *Server {
	//lint:gaea-allow ctxflow server root context lives until Shutdown, detached from any caller
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		b:           b,
		opts:        opts,
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[net.Conn]bool),
		snapLease:   make(map[uint64]*lease),
		curLease:    make(map[uint64]*lease),
		prepared:    make(map[uint64]*preparedTxn),
		v2conns:     make(map[*v2conn]struct{}),
		quit:        make(chan struct{}),
		baseCtx:     ctx,
		baseCancel:  cancel,
		janitorDone: make(chan struct{}),
	}
	var reg *obs.Registry
	if ob, ok := b.(ObsBackend); ok {
		reg = ob.Metrics()
		s.tracer = ob.Tracer()
		s.obsJSON = ob.ObsJSON
		s.reg = reg
	}
	if fb, ok := b.(FlightBackend); ok {
		s.events = fb.Events()
	}
	s.reqV1 = reg.Counter("server_v1_requests_total")
	s.reqV2 = reg.Counter("server_v2_requests_total")
	s.reqNS = reg.Histogram("server_request_ns")
	if reg != nil {
		reg.GaugeFunc("server_open_conns", s.openConns.Load)
		reg.GaugeFunc("server_in_flight", s.inFlight.Load)
		reg.GaugeFunc("server_active_streams", s.streams.Load)
		reg.GaugeFunc("server_lease_expiries_total", s.expiries.Load)
		reg.GaugeFunc("server_pushed_pages_total", s.pushedPages.Load)
		reg.GaugeFunc("server_bytes_avoided_total", s.bytesAvoided.Load)
		reg.GaugeFunc("server_active_leases", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.snapLease) + len(s.curLease))
		})
	}
	s.recoverPrepared()
	go s.janitor()
	return s
}

// traceCtx prepares one request's context for tracing: install the
// server's tracer and, when the client sent its trace identity on the
// wire, adopt it so the server-side span tree completes the client's
// trace instead of starting a fresh one.
func (s *Server) traceCtx(ctx context.Context, req *wire.Request) context.Context {
	ctx = obs.WithTracer(ctx, s.tracer)
	ctx = obs.WithRemoteTrace(ctx, req.TraceID())
	return obs.WithRemoteParent(ctx, req.ParentSpan())
}

// Serve accepts connections on l until Shutdown (which closes the
// listener). It returns nil after a clean shutdown, or the accept error
// otherwise. Multiple listeners may be served concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil // closed by Shutdown
			default:
				return err
			}
		}
		if !s.admit(conn) {
			continue
		}
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// admit registers a connection, enforcing the connection limit. A
// rejected connection gets one CodeUnavailable response and is closed.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	over := s.draining || (s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns)
	if !over {
		s.conns[conn] = false
	}
	s.mu.Unlock()
	if over {
		_ = wire.WriteFrame(conn, &wire.Response{Code: wire.CodeUnavailable, Err: "server: connection limit reached"})
		conn.Close()
		return false
	}
	s.openConns.Add(1)
	return true
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	_, ok := s.conns[conn]
	delete(s.conns, conn)
	s.mu.Unlock()
	if ok {
		s.openConns.Add(-1)
	}
	conn.Close()
}

// setBusy flips a connection's busy flag; Shutdown closes only idle
// connections, so a handler mid-request finishes writing its response.
func (s *Server) setBusy(conn net.Conn, busy bool) {
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = busy
	}
	s.mu.Unlock()
}

// serveConn sniffs the protocol version and hands the connection to the
// matching loop. A v2 client leads with the 8-byte magic preamble (whose
// first byte reads as an implausible v1 frame length); anything else is
// the start of a v1 frame, replayed into the v1 loop untouched.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(conn)
	var first [8]byte
	if _, err := io.ReadFull(conn, first[:4]); err != nil {
		return
	}
	if string(first[:4]) == wire.V2Magic[:4] {
		if _, err := io.ReadFull(conn, first[4:]); err != nil {
			return
		}
		if string(first[:]) != wire.V2Magic {
			return // half a magic is garbage, not a protocol
		}
		s.serveV2(conn)
		return
	}
	s.serveV1(conn, io.MultiReader(bytes.NewReader(first[:4]), conn))
}

// serveV1 is the v1 connection loop: read one request frame, handle,
// write one response frame. The user from OpHello is connection state.
// rd replays the sniffed prefix; it is fully consumed by the first
// frame read, so direct conn reads (the watchdog) stay correct.
//
// The busy flag and the request WaitGroup are maintained under s.mu
// against s.draining: a request is either counted BEFORE Shutdown
// starts waiting (and then drains to completion) or refused with
// CodeUnavailable — reqWG.Add can never race reqWG.Wait at zero.
//
// Each request runs under its own context, cancelled when the CLIENT
// goes away mid-request: the protocol is strictly request/response, so
// while a request is in flight a watchdog read on the socket can only
// observe a disconnect (EOF/reset → cancel the kernel work, free the
// MaxConns slot) or a protocol violation (a stray byte → same, the
// framing is no longer trustworthy). Shutdown's force phase cancels
// through the shared parent.
func (s *Server) serveV1(conn net.Conn, rd io.Reader) {
	user := ""
	for {
		var req wire.Request
		if err := wire.ReadFrame(rd, s.opts.MaxFrame, &req); err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// Only the 4-byte header was consumed, so the stream is
				// still writable: say WHY before dropping the connection,
				// instead of a silent close the client cannot distinguish
				// from a network failure.
				_ = wire.WriteFrame(conn, &wire.Response{Code: wire.CodeBadRequest, Err: err.Error()})
			}
			return // EOF, peer gone, or garbage — drop the connection
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = wire.WriteFrame(conn, &wire.Response{Code: wire.CodeUnavailable, Err: "server: shutting down"})
			return
		}
		s.conns[conn] = true
		s.reqWG.Add(1)
		s.mu.Unlock()
		if req.Op == wire.OpHello {
			user = req.User
		}

		reqCtx, cancel := context.WithCancel(s.baseCtx)
		type peeked struct {
			n   int
			err error
		}
		wd := make(chan peeked, 1)
		go func() {
			var one [1]byte
			n, err := conn.Read(one[:])
			if n > 0 || (err != nil && !isTimeout(err)) {
				cancel() // disconnect or protocol violation: stop the kernel work
			}
			wd <- peeked{n: n, err: err}
		}()

		hctx, sp := obs.Start(s.traceCtx(reqCtx, &req), "server/"+req.Op.String())
		hstart := time.Now()
		resp := s.handle(hctx, user, &req)
		s.reqV1.Inc()
		s.reqNS.ObserveSince(hstart)
		if resp.Code != wire.CodeOK {
			sp.Annotate("code", resp.Code.String())
		}
		sp.End()

		// Join the watchdog: poke the read deadline to unblock it, then
		// decide whether the connection is still sane.
		_ = conn.SetReadDeadline(time.Now())
		pk := <-wd
		_ = conn.SetReadDeadline(time.Time{})
		cancel()
		alive := pk.n == 0 && (pk.err == nil || isTimeout(pk.err))

		var werr error
		if alive {
			werr = wire.WriteFrame(conn, resp)
		}
		s.setBusy(conn, false)
		s.reqWG.Done()
		if !alive || werr != nil {
			return
		}
		select {
		case <-s.quit:
			return // drained: this connection's last response is written
		default:
		}
	}
}

// isTimeout reports a deadline-induced read error — the watchdog's
// normal stop path, not a peer failure.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handle dispatches one request. Every backend call runs under the
// server's base context, which Shutdown cancels after the drain window —
// wiring remote requests into the kernel's cancellation paths.
func (s *Server) handle(ctx context.Context, user string, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpHello:
		return &wire.Response{}
	case wire.OpBegin:
		return &wire.Response{Epoch: s.b.Epoch()}
	case wire.OpStats:
		st := s.ServerStats()
		var obsJSON []byte
		if s.obsJSON != nil {
			obsJSON = s.obsJSON()
		}
		return &wire.Response{Stats: &wire.StatsPayload{
			Kernel:             s.b.Stats(),
			ObsJSON:            obsJSON,
			OpenConns:          st.OpenConns,
			ActiveSessions:     st.ActiveSessions,
			ActiveStreams:      st.ActiveStreams,
			ActiveLeases:       st.ActiveLeases,
			LeaseExpiries:      st.LeaseExpiries,
			InFlight:           st.InFlight,
			MaxInFlightPerConn: st.MaxInFlightPerConn,
			PushedPages:        st.PushedPages,
			BytesAvoided:       st.BytesAvoided,
		}}
	case wire.OpQuery:
		if req.Query == nil {
			return badRequest("query payload missing")
		}
		res, err := s.b.Query(ctx, req.Query.ToQuery(user))
		if err != nil {
			return s.errResponse(err)
		}
		return &wire.Response{Result: wire.FromResult(res)}
	case wire.OpStream:
		return s.handleStream(ctx, user, req)
	case wire.OpCommit:
		return s.handleCommit(ctx, user, req)
	case wire.OpPrepare:
		return s.handlePrepare(user, req)
	case wire.OpDecide:
		return s.handleDecide(req)
	case wire.OpSnapOpen:
		return s.handleSnapOpen()
	case wire.OpSnapGet, wire.OpSnapQuery, wire.OpSnapStream, wire.OpSnapRelease:
		return s.handleSnap(ctx, user, req)
	case wire.OpLease:
		// A client that stopped mid-page synthesised a resume cursor for
		// an epoch whose page-level pin may already be gone: re-pin it
		// under a cursor lease so the cursor stays resumable.
		if err := s.b.PinEpoch(req.Epoch); err != nil {
			return s.errResponse(err)
		}
		s.leaseCursorEpoch(req.Epoch)
		return &wire.Response{Epoch: req.Epoch}
	case wire.OpStale:
		var oids []uint64
		for _, oid := range s.b.Stale() {
			oids = append(oids, uint64(oid))
		}
		return &wire.Response{OIDs: oids}
	case wire.OpRefresh:
		n, err := s.b.RefreshStale(ctx)
		if err != nil {
			return s.errResponse(err)
		}
		return &wire.Response{N: n}
	case wire.OpExplain:
		return &wire.Response{Text: s.b.Explain(object.OID(req.OID))}
	case wire.OpExplainQuery:
		if req.Query == nil {
			return badRequest("query payload missing")
		}
		text, err := s.b.ExplainQuery(ctx, req.Query.ToQuery(user))
		if err != nil {
			return s.errResponse(err)
		}
		return &wire.Response{Text: text}
	default:
		return badRequest(fmt.Sprintf("unknown op %s", req.Op))
	}
}

func badRequest(msg string) *wire.Response {
	return &wire.Response{Code: wire.CodeBadRequest, Err: "server: " + msg}
}

func (s *Server) errResponse(err error) *wire.Response {
	return &wire.Response{Code: s.b.Code(err), Err: err.Error()}
}

// handleStream serves one page of a streaming query. The page runs at an
// explicitly pinned epoch (the cursor's on resume, the newest
// otherwise); if the page ends with a resume cursor, the pin is handed
// to a cursor lease so the snapshot stays resumable — from this
// connection or a later one — until the lease expires.
func (s *Server) handleStream(ctx context.Context, user string, req *wire.Request) *wire.Response {
	if req.Query == nil {
		return badRequest("query payload missing")
	}
	s.streams.Add(1)
	defer s.streams.Add(-1)
	q := req.Query.ToQuery(user)
	pageCap := s.opts.pageSize()
	if q.Limit <= 0 || q.Limit > pageCap {
		q.Limit = pageCap
	}
	var epoch uint64
	if q.Cursor != "" {
		e, err := s.b.CursorEpoch(q.Cursor)
		if err != nil {
			return s.errResponse(err)
		}
		if err := s.b.PinEpoch(e); err != nil {
			return s.errResponse(err)
		}
		epoch = e
	} else {
		epoch = s.b.Pin()
	}
	objs, cursor, fellBack, err := s.b.StreamPage(ctx, q, epoch, false, s.opts.maxFrame())
	if err != nil {
		s.b.Unpin(epoch)
		return s.errResponse(err)
	}
	resp := &wire.Response{Objects: objs, Cursor: cursor, Epoch: epoch}
	if fellBack {
		// Fallback results were derived at epochs newer than the page's
		// snapshot: no resume point exists, and the client must not mint
		// one (epoch 0 marks the page not-resumable).
		resp.Epoch = 0
	}
	if resp.Cursor == "" {
		s.b.Unpin(epoch) // exhausted: nothing left to resume
	} else {
		s.leaseCursorEpoch(epoch) // hand the pin to the lease table
	}
	return resp
}

// replayBatch stages a remote batch into a session: reserve real OIDs
// for the creates, remap provisional references in updates and deletes.
// On error the session is rolled back. The returned OIDs are parallel
// to the batch's creates.
func (s *Server) replayBatch(sess Session, batch *wire.BatchReq) ([]uint64, *wire.Response) {
	abort := func(err error) *wire.Response {
		_ = sess.Rollback()
		return s.errResponse(err)
	}
	provMap := make(map[uint64]object.OID, len(batch.Creates))
	real := make([]uint64, 0, len(batch.Creates))
	for i := range batch.Creates {
		c := &batch.Creates[i]
		obj, err := c.Obj.ToObject()
		if err != nil {
			return nil, abort(err)
		}
		obj.OID = 0 // the server reserves the real OID
		oid, err := sess.Create(obj, c.Note)
		if err != nil {
			return nil, abort(err)
		}
		provMap[c.Prov] = oid
		real = append(real, uint64(oid))
	}
	remap := func(oid uint64) (object.OID, error) {
		if oid&wire.ProvisionalBit == 0 {
			return object.OID(oid), nil
		}
		r, ok := provMap[oid]
		if !ok {
			return 0, fmt.Errorf("%w: unknown provisional oid %d", query.ErrBadRequest, oid&^wire.ProvisionalBit)
		}
		return r, nil
	}
	for i := range batch.Updates {
		obj, err := batch.Updates[i].ToObject()
		if err != nil {
			return nil, abort(err)
		}
		if obj.OID, err = remap(batch.Updates[i].OID); err != nil {
			return nil, abort(err)
		}
		if err := sess.Update(obj); err != nil {
			return nil, abort(err)
		}
	}
	for _, oid := range batch.Deletes {
		r, err := remap(oid)
		if err != nil {
			return nil, abort(err)
		}
		if err := sess.Delete(r); err != nil {
			return nil, abort(err)
		}
	}
	return real, nil
}

// remapDeferred rewrites stage-time OIDs through a DeferredOIDs session
// after its Commit (sessions with immediate OIDs pass through).
func remapDeferred(sess Session, real []uint64) []uint64 {
	ds, ok := sess.(DeferredOIDs)
	if !ok {
		return real
	}
	for i, oid := range real {
		if r, ok := ds.Committed(object.OID(oid)); ok {
			real[i] = uint64(r)
		}
	}
	return real
}

// handleCommit replays a staged remote session into a kernel session
// and commits it in the same round trip (the single-shard fast path of
// the federation, and the only commit path for plain clients). The
// response carries the real OIDs parallel to the batch's creates.
func (s *Server) handleCommit(ctx context.Context, user string, req *wire.Request) *wire.Response {
	if req.Batch == nil {
		return badRequest("batch payload missing")
	}
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	sess := s.b.Begin(ctx, req.Batch.ReadEpoch, user)
	real, errResp := s.replayBatch(sess, req.Batch)
	if errResp != nil {
		return errResp
	}
	if err := sess.Commit(); err != nil {
		return s.errResponse(err)
	}
	return &wire.Response{OIDs: remapDeferred(sess, real)}
}

// handlePrepare is 2PC phase one: replay the batch into a session,
// validate and lock it with Prepare, and park the session under the
// coordinator's transaction token (req.Lease) until OpDecide. The
// session deliberately runs under the server's base context, not the
// request's — it outlives this request and dies only with a decision,
// the TTL janitor, or Shutdown. The response carries the creates' real
// OIDs so the coordinator can answer its client after deciding commit.
func (s *Server) handlePrepare(user string, req *wire.Request) *wire.Response {
	if req.Batch == nil {
		return badRequest("batch payload missing")
	}
	if req.Lease == 0 {
		return badRequest("prepare requires a transaction token")
	}
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	sess := s.b.Begin(s.baseCtx, req.Batch.ReadEpoch, user)
	ps, ok := sess.(PreparableSession)
	if !ok {
		_ = sess.Rollback()
		return badRequest("backend does not support two-phase commit")
	}
	real, errResp := s.replayBatch(ps, req.Batch)
	if errResp != nil {
		return errResp
	}
	if err := ps.Prepare(); err != nil {
		_ = ps.Rollback()
		return s.errResponse(err)
	}
	txn := &preparedTxn{token: req.Lease, sess: ps, real: real, expires: time.Now().Add(s.opts.leaseTTL())}
	s.mu.Lock()
	_, dup := s.prepared[req.Lease]
	if !dup {
		s.prepared[req.Lease] = txn
	}
	s.mu.Unlock()
	if dup {
		_ = ps.Rollback()
		return badRequest(fmt.Sprintf("transaction %d already prepared", req.Lease))
	}
	// The vote must be durable before it is answered: once the response
	// leaves, the coordinator may log COMMIT on its strength.
	if err := s.persistPrepare(user, req.Lease, req.Batch); err != nil {
		s.mu.Lock()
		delete(s.prepared, req.Lease)
		s.mu.Unlock()
		_ = ps.Rollback()
		return s.errResponse(err)
	}
	s.events.Emit("2pc_prepare", obs.SevInfo, "staged and locked a prepared transaction",
		map[string]string{"txn": fmt.Sprint(req.Lease), "creates": fmt.Sprint(len(req.Batch.Creates))})
	return &wire.Response{OIDs: real}
}

// handleDecide is 2PC phase two: commit (req.Epoch = 1) or abort
// (req.Epoch = 0) the prepared transaction named by req.Lease. Abort is
// idempotent — deciding an unknown token aborts nothing and succeeds,
// because the janitor may already have presumed the abort. An unknown
// token on COMMIT is an error (CodeNotFound): the prepare TTL expired
// or the shard restarted, and the coordinator must surface the
// heuristic outcome rather than assume the write landed.
func (s *Server) handleDecide(req *wire.Request) *wire.Response {
	if req.Lease == 0 {
		return badRequest("decide requires a transaction token")
	}
	commit := req.Epoch != 0
	s.mu.Lock()
	txn, ok := s.prepared[req.Lease]
	delete(s.prepared, req.Lease)
	s.mu.Unlock()
	if !ok {
		if commit {
			// The coordinator decided COMMIT for a vote this shard no longer
			// holds: a heuristic outcome it must surface, worth a durable
			// record on this side too.
			s.events.Emit("2pc_heuristic", obs.SevWarn, "commit decision for an unknown prepared transaction",
				map[string]string{"txn": fmt.Sprint(req.Lease)})
			return &wire.Response{Code: wire.CodeNotFound,
				Err: fmt.Sprintf("server: no prepared transaction %d (prepare expired or shard restarted)", req.Lease)}
		}
		return &wire.Response{}
	}
	if !commit {
		_ = txn.sess.Rollback()
		s.removePrepare(req.Lease)
		s.events.Emit("2pc_decide", obs.SevInfo, "aborted a prepared transaction",
			map[string]string{"txn": fmt.Sprint(req.Lease), "decision": "abort"})
		return &wire.Response{}
	}
	if err := txn.sess.Commit(); err != nil {
		// Prepare locked the write set, so this is not a validation race:
		// the shard itself failed (storage error, kernel closing). The
		// sidecar stays: a restart re-stages the vote for a retried decide.
		return s.errResponse(err)
	}
	s.removePrepare(req.Lease)
	s.events.Emit("2pc_decide", obs.SevInfo, "committed a prepared transaction",
		map[string]string{"txn": fmt.Sprint(req.Lease), "decision": "commit"})
	return &wire.Response{OIDs: remapDeferred(txn.sess, txn.real)}
}

// handleSnapOpen pins the current epoch under a fresh lease.
func (s *Server) handleSnapOpen() *wire.Response {
	epoch := s.b.Pin()
	id := s.nextLease.Add(1)
	s.mu.Lock()
	s.snapLease[id] = &lease{epoch: epoch, expires: time.Now().Add(s.opts.leaseTTL())}
	s.mu.Unlock()
	return &wire.Response{Lease: id, Epoch: epoch}
}

// handleSnap serves the lease-scoped snapshot operations. Every touch
// renews the lease; a missing or expired lease answers CodeSnapshotGone
// (re-snapshot for a fresh view).
func (s *Server) handleSnap(ctx context.Context, user string, req *wire.Request) *wire.Response {
	if req.Op == wire.OpSnapRelease {
		s.mu.Lock()
		l, ok := s.snapLease[req.Lease]
		delete(s.snapLease, req.Lease)
		s.mu.Unlock()
		if ok {
			s.b.Unpin(l.epoch)
		}
		return &wire.Response{}
	}
	l, errResp := s.touchLease(req.Lease)
	if errResp != nil {
		return errResp
	}
	switch req.Op {
	case wire.OpSnapGet:
		o, err := s.b.GetAt(object.OID(req.OID), l.epoch)
		if err != nil {
			return s.errResponse(err)
		}
		w, err := wire.FromObject(o)
		if err != nil {
			return s.errResponse(err)
		}
		if size := wire.ObjectSize(&w); size > s.opts.maxFrame() {
			return &wire.Response{Code: wire.CodeBadRequest,
				Err: fmt.Sprintf("server: object %d (%d bytes) exceeds the frame limit %d", o.OID, size, s.opts.maxFrame())}
		}
		return &wire.Response{Objects: []wire.Object{w}, Epoch: l.epoch}
	case wire.OpSnapQuery:
		if req.Query == nil {
			return badRequest("query payload missing")
		}
		res, err := s.b.QueryAt(ctx, req.Query.ToQuery(user), l.epoch)
		if err != nil {
			return s.errResponse(err)
		}
		return &wire.Response{Result: wire.FromResult(res), Epoch: l.epoch}
	case wire.OpSnapStream:
		if req.Query == nil {
			return badRequest("query payload missing")
		}
		s.streams.Add(1)
		defer s.streams.Add(-1)
		q := req.Query.ToQuery(user)
		pageCap := s.opts.pageSize()
		if q.Limit <= 0 || q.Limit > pageCap {
			q.Limit = pageCap
		}
		// The lease's pin covers the page: snapshot streams always run at
		// the lease epoch (a cursor, if present, was cut at that epoch).
		objs, cursor, _, err := s.b.StreamPage(ctx, q, l.epoch, true, s.opts.maxFrame())
		if err != nil {
			return s.errResponse(err)
		}
		return &wire.Response{Objects: objs, Cursor: cursor, Epoch: l.epoch}
	default:
		return badRequest(fmt.Sprintf("bad snapshot op %s", req.Op))
	}
}

// touchLease renews a snapshot lease, answering nil and the
// snapshot-gone response when it is missing or expired.
func (s *Server) touchLease(id uint64) (*lease, *wire.Response) {
	s.mu.Lock()
	l, ok := s.snapLease[id]
	if ok {
		l.expires = time.Now().Add(s.opts.leaseTTL())
	}
	s.mu.Unlock()
	if !ok {
		return nil, &wire.Response{Code: wire.CodeSnapshotGone, Err: "server: snapshot lease expired or released"}
	}
	return l, nil
}

// leaseCursorEpoch transfers a pin the caller holds on epoch into the
// cursor-lease table: one pin per epoch, expiry extended on every touch.
// If the epoch is already leased the extra pin is released.
func (s *Server) leaseCursorEpoch(epoch uint64) {
	expires := time.Now().Add(s.opts.leaseTTL())
	s.mu.Lock()
	l, ok := s.curLease[epoch]
	if ok {
		if expires.After(l.expires) {
			l.expires = expires
		}
	} else {
		s.curLease[epoch] = &lease{epoch: epoch, expires: expires}
	}
	s.mu.Unlock()
	if ok {
		s.b.Unpin(epoch) // the lease already holds one pin
	}
}

// janitor expires abandoned leases so their pins cannot hold the MVCC GC
// horizon back forever.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	tick := time.NewTicker(s.janitorInterval())
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-tick.C:
			var drop []uint64
			var presumeAbort []*preparedTxn
			s.mu.Lock()
			for id, l := range s.snapLease {
				if now.After(l.expires) {
					drop = append(drop, l.epoch)
					delete(s.snapLease, id)
				}
			}
			for epoch, l := range s.curLease {
				if now.After(l.expires) {
					drop = append(drop, l.epoch)
					delete(s.curLease, epoch)
				}
			}
			for token, txn := range s.prepared {
				if now.After(txn.expires) {
					presumeAbort = append(presumeAbort, txn)
					delete(s.prepared, token)
				}
			}
			s.mu.Unlock()
			for _, epoch := range drop {
				s.b.Unpin(epoch)
				s.expiries.Add(1)
				s.events.Emit("lease_expiry", obs.SevWarn, "abandoned lease released its pin",
					map[string]string{"epoch": fmt.Sprint(epoch)})
			}
			// Presumed abort: an undecided prepare whose coordinator went
			// silent rolls back, releasing its write locks (and its
			// durable sidecar, if any). A late decide(commit) for it
			// answers CodeNotFound.
			for _, txn := range presumeAbort {
				_ = txn.sess.Rollback()
				s.removePrepare(txn.token)
				s.expiries.Add(1)
				s.events.Emit("2pc_presume_abort", obs.SevWarn, "undecided prepare expired and rolled back",
					map[string]string{"txn": fmt.Sprint(txn.token)})
			}
		}
	}
}

func (s *Server) janitorInterval() time.Duration {
	iv := s.opts.leaseTTL() / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	if iv > time.Second {
		iv = time.Second
	}
	return iv
}

// ServerStats snapshots the server counters.
func (s *Server) ServerStats() Stats {
	s.mu.Lock()
	leases := int64(len(s.snapLease) + len(s.curLease))
	s.mu.Unlock()
	return Stats{
		OpenConns:          s.openConns.Load(),
		ActiveSessions:     s.sessions.Load(),
		ActiveStreams:      s.streams.Load(),
		ActiveLeases:       leases,
		LeaseExpiries:      s.expiries.Load(),
		InFlight:           s.inFlight.Load(),
		MaxInFlightPerConn: s.maxInFlight.Load(),
		PushedPages:        s.pushedPages.Load(),
		BytesAvoided:       s.bytesAvoided.Load(),
	}
}

// Shutdown stops the server gracefully: stop accepting, let in-flight
// requests finish (each stream page is one request, so draining
// requests drains streams), then close every connection and release
// every leased pin. If ctx expires first, in-flight kernel work is
// cancelled through the per-request context and connections are closed
// anyway. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	// Close idle connections now — their readers are blocked in
	// ReadFrame and would otherwise never notice the shutdown. Busy ones
	// finish their current response first; their loops then see quit.
	for conn, busy := range s.conns {
		if !busy {
			conn.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // cancel in-flight kernel work
	}
	// v2 connections queue their final completions on an outbound
	// writer; flush them before closing the sockets (bounded by ctx — a
	// client that stopped reading cannot stall shutdown, because the
	// force-close below fails its queue and unblocks the flush).
	s.v2mu.Lock()
	vcs := make([]*v2conn, 0, len(s.v2conns))
	for vc := range s.v2conns {
		vcs = append(vcs, vc)
	}
	s.v2mu.Unlock()
	if len(vcs) > 0 {
		flushed := make(chan struct{})
		go func() {
			for _, vc := range vcs {
				_ = vc.out.Flush()
			}
			close(flushed)
		}()
		select {
		case <-flushed:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	}
	// Force-close whatever remains, cancel any straggler kernel work,
	// wait for the handler goroutines, and release every leased pin so
	// the GC horizon is free.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	s.connWG.Wait()
	<-s.janitorDone
	s.mu.Lock()
	var epochs []uint64
	for id, l := range s.snapLease {
		epochs = append(epochs, l.epoch)
		delete(s.snapLease, id)
	}
	for epoch, l := range s.curLease {
		epochs = append(epochs, l.epoch)
		delete(s.curLease, epoch)
	}
	var undecided []*preparedTxn
	for token, txn := range s.prepared {
		undecided = append(undecided, txn)
		delete(s.prepared, token)
	}
	s.mu.Unlock()
	for _, epoch := range epochs {
		s.b.Unpin(epoch)
	}
	// Undecided prepares roll back their in-memory write locks (they
	// must not outlive the server embedding the kernel) — but their
	// durable sidecars are kept, so a restart re-stages the votes and a
	// coordinator replaying its decision log can still decide them.
	for _, txn := range undecided {
		_ = txn.sess.Rollback()
	}
	return err
}
