package server

// Protocol v2: one reader goroutine demultiplexes request frames onto
// per-request handler goroutines; one writer goroutine drains an
// outbound queue, coalescing whatever completions and stream pages are
// ready into single socket writes. A slow query no longer blocks the
// connection — responses return in completion order, keyed by the
// client's request ID — and streaming queries become server-push: after
// one OpStreamPush the server pushes pages as fast as the client's
// credit window allows, with no per-page round trip.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/wire"
)

var errShuttingDown = errors.New("server: shutting down")

// v2conn is one multiplexed connection's shared state.
type v2conn struct {
	s      *Server
	nc     net.Conn
	out    *wire.OutQueue
	user   string
	ctx    context.Context // parent of every request context on this conn
	cancel context.CancelFunc

	mu   sync.Mutex
	reqs map[uint64]*v2req
	n    int64 // requests currently in flight on this connection
}

// v2req is one in-flight request's control block.
type v2req struct {
	cancel context.CancelFunc
	stream *v2stream // nil for unary requests
}

// v2stream is the flow-control state of one server-push stream: a page
// credit balance the reader goroutine tops up from Credit frames and the
// pusher goroutine draws down, one credit per page.
type v2stream struct {
	mu     sync.Mutex
	credit int
	wake   chan struct{}
}

func newV2Stream() *v2stream { return &v2stream{wake: make(chan struct{}, 1)} }

// grant adds n page credits and wakes the pusher.
func (st *v2stream) grant(n int) {
	if n <= 0 {
		return
	}
	st.mu.Lock()
	st.credit += n
	st.mu.Unlock()
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// take consumes one page credit, blocking until one is granted, the
// request is cancelled (client Cancel, disconnect, or force shutdown),
// or the server starts draining.
func (st *v2stream) take(ctx context.Context, quit <-chan struct{}) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-quit:
			return errShuttingDown
		default:
		}
		st.mu.Lock()
		if st.credit > 0 {
			st.credit--
			st.mu.Unlock()
			return nil
		}
		st.mu.Unlock()
		select {
		case <-st.wake:
		case <-ctx.Done():
			return ctx.Err()
		case <-quit:
			return errShuttingDown
		}
	}
}

// serveV2 runs one v2 connection after the magic preamble was sniffed:
// handshake, then the demultiplexing reader loop. Each admitted request
// runs in its own goroutine; all writes go through the outbound queue.
func (s *Server) serveV2(conn net.Conn) {
	fr := wire.NewFrameReader(conn, s.opts.maxFrame())
	ft, _, body, err := fr.Next()
	if err != nil || ft != wire.F2Hello {
		return
	}
	hello, err := wire.DecodeHello(body)
	if err != nil || hello.Version < wire.V2Version {
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	vc := &v2conn{
		s:      s,
		nc:     conn,
		out:    wire.NewOutQueue(),
		user:   hello.User,
		ctx:    ctx,
		cancel: cancel,
		reqs:   make(map[uint64]*v2req),
	}

	// A v2 connection counts as busy for its whole life: Shutdown must
	// not sweep it as idle — the drain barrier plus the outbound flush
	// phase settle its in-flight work first.
	s.setBusy(conn, true)
	s.v2mu.Lock()
	s.v2conns[vc] = struct{}{}
	s.v2mu.Unlock()
	defer func() {
		s.v2mu.Lock()
		delete(s.v2conns, vc)
		s.v2mu.Unlock()
	}()

	// Handshake reply — magic echo plus HelloAck — written directly,
	// before the writer goroutine takes over the socket.
	ack := wire.AcquireFrame(wire.F2HelloAck, 0)
	wire.EncodeHello(ack, &wire.Hello2{Version: wire.V2Version})
	ab, ferr := ack.Finish()
	if ferr != nil {
		wire.ReleaseFrame(ack)
		return
	}
	hs := make([]byte, 0, len(wire.V2Magic)+len(ab))
	hs = append(hs, wire.V2Magic...)
	hs = append(hs, ab...)
	_, werr := conn.Write(hs)
	wire.ReleaseFrame(ack)
	if werr != nil {
		return
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		_ = vc.out.Run(conn)
	}()
	defer func() {
		// Reader gone: cancel every in-flight request, let the writer
		// drain what is already queued, and wait for it so the socket is
		// not closed under a write (dropConn closes it after we return).
		cancel()
		vc.out.Close()
		<-writerDone
	}()

	for {
		ft, id, body, err := fr.Next()
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// Say why before dropping the connection; id 0 marks it a
				// connection-level refusal.
				vc.refuse(0, wire.CodeBadRequest, err.Error())
				_ = vc.out.Flush()
			}
			return
		}
		switch ft {
		case wire.F2Req:
			if id == 0 {
				return // id 0 is reserved for connection-level responses
			}
			req := new(wire.Request)
			if err := wire.DecodeRequest(body, req); err != nil {
				vc.refuse(id, wire.CodeBadRequest, "server: "+err.Error())
				continue
			}
			// Admission pairs with the drain barrier exactly like v1: the
			// request is either counted before Shutdown starts waiting or
			// refused.
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				vc.refuse(id, wire.CodeUnavailable, "server: shutting down")
				continue
			}
			s.reqWG.Add(1)
			s.mu.Unlock()
			vc.start(id, req)
		case wire.F2Credit:
			n, err := wire.DecodeCredit(body)
			if err != nil {
				return
			}
			vc.mu.Lock()
			r := vc.reqs[id]
			vc.mu.Unlock()
			if r != nil && r.stream != nil {
				r.stream.grant(n)
			}
		case wire.F2Cancel:
			vc.mu.Lock()
			r := vc.reqs[id]
			vc.mu.Unlock()
			if r != nil {
				r.cancel()
			}
		case wire.F2Hello:
			// A duplicate Hello is harmless; ignore it.
		default:
			return // unknown frame type: the framing is no longer trustworthy
		}
	}
}

// start registers one admitted request (the reqWG slot is already held)
// and spins its handler goroutine.
func (vc *v2conn) start(id uint64, req *wire.Request) {
	s := vc.s
	rctx, rcancel := context.WithCancel(vc.ctx)
	r := &v2req{cancel: rcancel}
	if req.Op == wire.OpStreamPush || req.Op == wire.OpSubscribeStats {
		r.stream = newV2Stream()
	}
	vc.mu.Lock()
	if _, dup := vc.reqs[id]; dup {
		vc.mu.Unlock()
		rcancel()
		s.reqWG.Done()
		vc.refuse(id, wire.CodeBadRequest, "server: duplicate request id")
		return
	}
	vc.reqs[id] = r
	vc.n++
	n := vc.n
	vc.mu.Unlock()
	s.inFlight.Add(1)
	for {
		max := s.maxInFlight.Load()
		if n <= max || s.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	switch {
	case req.Op == wire.OpSubscribeStats:
		go s.pushStatsV2(vc, id, r, rctx, req)
	case r.stream != nil:
		go s.pushStreamV2(vc, id, r, rctx, req)
	default:
		go s.handleV2(vc, id, rctx, req)
	}
}

// finish unregisters a request after its completion was queued.
func (vc *v2conn) finish(id uint64) {
	vc.mu.Lock()
	r := vc.reqs[id]
	delete(vc.reqs, id)
	if r != nil {
		vc.n--
	}
	vc.mu.Unlock()
	if r != nil {
		r.cancel()
		vc.s.inFlight.Add(-1)
	}
}

// send queues a completion for id.
func (vc *v2conn) send(id uint64, resp *wire.Response) {
	f := wire.AcquireFrame(wire.F2Resp, id)
	wire.EncodeResponse(f, resp)
	_ = vc.out.Push(f)
}

func (vc *v2conn) refuse(id uint64, code wire.Code, msg string) {
	vc.send(id, &wire.Response{Code: code, Err: msg})
}

// handleV2 runs one unary request to completion. The dispatch table is
// v1's, so remote semantics are identical; only OpSnapGet diverges, onto
// the zero-copy raw path.
func (s *Server) handleV2(vc *v2conn, id uint64, ctx context.Context, req *wire.Request) {
	defer s.reqWG.Done()
	ctx, sp := obs.Start(s.traceCtx(ctx, req), "server/"+req.Op.String())
	start := time.Now()
	var resp *wire.Response
	if req.Op == wire.OpSnapGet {
		resp = s.handleSnapGetRaw(req)
	} else {
		resp = s.handle(ctx, vc.user, req)
	}
	s.reqV2.Inc()
	s.reqNS.ObserveSince(start)
	if resp.Code != wire.CodeOK {
		sp.Annotate("code", resp.Code.String())
	}
	sp.End()
	vc.send(id, resp)
	vc.finish(id)
}

// handleSnapGetRaw serves OpSnapGet by shipping the stored record bytes
// verbatim (the client decodes with object.DecodeWire).
func (s *Server) handleSnapGetRaw(req *wire.Request) *wire.Response {
	l, errResp := s.touchLease(req.Lease)
	if errResp != nil {
		return errResp
	}
	raw, err := s.b.GetRawAt(object.OID(req.OID), l.epoch)
	if err != nil {
		return s.errResponse(err)
	}
	if size := raw.Size(); size > s.opts.maxFrame() {
		return &wire.Response{Code: wire.CodeBadRequest,
			Err: fmt.Sprintf("server: object %d (%d bytes) exceeds the frame limit %d", req.OID, size, s.opts.maxFrame())}
	}
	s.bytesAvoided.Add(int64(len(raw.Rec)))
	return &wire.Response{Raw: &raw, Epoch: l.epoch}
}

// pushStreamV2 runs one server-push stream: pages drain at a pinned
// epoch and go out under the client's credit window, stored bytes
// shipped verbatim. Pin discipline matches v1 exactly — a stream that
// ends early (limit, cancel, disconnect, shutdown) hands its pin to a
// cursor lease so the snapshot stays resumable; clean exhaustion
// unpins; snapshot streams ride their lease's pin and renew it on every
// page.
func (s *Server) pushStreamV2(vc *v2conn, id uint64, r *v2req, ctx context.Context, req *wire.Request) {
	defer s.reqWG.Done()
	defer vc.finish(id)
	ctx, sp := obs.Start(s.traceCtx(ctx, req), "server/"+req.Op.String())
	start := time.Now()
	defer func() {
		s.reqV2.Inc()
		s.reqNS.ObserveSince(start)
		sp.End()
	}()
	if req.Query == nil {
		vc.send(id, badRequest("query payload missing"))
		return
	}
	s.streams.Add(1)
	defer s.streams.Add(-1)

	st := r.stream
	window := req.Window
	if window <= 0 {
		window = 1
	}
	st.grant(window)

	q := req.Query.ToQuery(vc.user)
	pageCap := s.opts.pageSize()
	if req.Page > 0 && req.Page < pageCap {
		pageCap = req.Page
	}
	total := q.Limit // 0 = unlimited; per-page limits are minted below

	snap := req.Lease != 0
	var epoch uint64
	ownPin := false
	if snap {
		l, errResp := s.touchLease(req.Lease)
		if errResp != nil {
			vc.send(id, errResp)
			return
		}
		epoch = l.epoch
	} else if q.Cursor != "" {
		e, err := s.b.CursorEpoch(q.Cursor)
		if err != nil {
			vc.send(id, s.errResponse(err))
			return
		}
		if err := s.b.PinEpoch(e); err != nil {
			vc.send(id, s.errResponse(err))
			return
		}
		epoch, ownPin = e, true
	} else {
		epoch = s.b.Pin()
		ownPin = true
	}
	// release settles the pin when the pusher owns one: a resumable end
	// hands it to a cursor lease (the client may come back, from this
	// connection or another; the lease expires on its own if nobody
	// does), everything else unpins.
	release := func(resumable bool) {
		if !ownPin {
			return
		}
		ownPin = false
		if resumable {
			s.leaseCursorEpoch(epoch)
		} else {
			s.b.Unpin(epoch)
		}
	}

	cursor := q.Cursor
	sent := 0
	for first := true; ; first = false {
		if err := st.take(ctx, s.quit); err != nil {
			// Cancelled, disconnected, or draining: keep the stream
			// resumable and best-effort report why (the queue may already
			// be down — that is fine).
			release(true)
			if errors.Is(err, errShuttingDown) {
				vc.refuse(id, wire.CodeUnavailable, err.Error())
			} else {
				vc.send(id, s.errResponse(err))
			}
			return
		}
		pq := q
		pq.Cursor = cursor
		pq.Limit = pageCap
		if total > 0 && total-sent < pageCap {
			pq.Limit = total - sent
		}
		raws, next, served, err := s.b.StreamPageRaw(ctx, pq, epoch, s.opts.maxFrame())
		if err != nil {
			release(false)
			vc.send(id, s.errResponse(err))
			return
		}
		if first && !served && next == "" && cursor == "" {
			// Fresh stream, empty retrieval: run the v1 fallback chain so
			// derivation — and its error taxonomy — behaves exactly as the
			// paged protocol did.
			fq := q
			fq.Limit = pageCap
			if total > 0 && total < pageCap {
				fq.Limit = total
			}
			objs, cur, fellBack, err := s.b.StreamPage(ctx, fq, epoch, snap, s.opts.maxFrame())
			if err != nil {
				release(false)
				vc.send(id, s.errResponse(err))
				return
			}
			if fellBack || cur == "" {
				// Terminal: one decoded page ends the stream. Fallback
				// results commit at newer epochs, so they are not
				// resumable (epoch 0).
				pe := epoch
				if fellBack {
					pe = 0
				}
				f := wire.AcquireFrame(wire.F2Page, id)
				wire.EncodePageHeader(f, wire.PageEnd, pe, "", len(objs))
				for i := range objs {
					wire.EncodeObject(f, &objs[i])
				}
				s.pushedPages.Add(1)
				_ = vc.out.Push(f)
				release(false)
				return
			}
			// Retrieval raced into visibility between the two calls: push
			// the decoded page and resume the raw loop from its cursor.
			sent += len(objs)
			done := total > 0 && sent >= total
			flags := byte(0)
			endCur := ""
			if done {
				flags = wire.PageEnd
				endCur = cur
			}
			f := wire.AcquireFrame(wire.F2Page, id)
			wire.EncodePageHeader(f, flags, epoch, endCur, len(objs))
			for i := range objs {
				wire.EncodeObject(f, &objs[i])
			}
			s.pushedPages.Add(1)
			if err := vc.out.Push(f); err != nil {
				release(true)
				return
			}
			if done {
				release(true)
				return
			}
			cursor = cur
			continue
		}

		sent += len(raws)
		done := next == "" || (total > 0 && sent >= total)
		flags := wire.PageRaw
		endCursor := ""
		if done {
			flags |= wire.PageEnd
			if next != "" {
				endCursor = next // limit hit mid-extent: the resume point
			}
		}
		f := wire.AcquireFrame(wire.F2Page, id)
		wire.EncodePageHeader(f, flags, epoch, endCursor, len(raws))
		var payload int
		for i := range raws {
			wire.AppendRawObject(f, &raws[i])
			payload += len(raws[i].Rec)
		}
		s.pushedPages.Add(1)
		s.bytesAvoided.Add(int64(payload))
		if err := vc.out.Push(f); err != nil {
			release(true)
			return
		}
		if snap {
			// Every page renews the snapshot lease, like every v1 touch.
			if _, errResp := s.touchLease(req.Lease); errResp != nil {
				vc.send(id, errResp)
				return
			}
		}
		if done {
			release(endCursor != "")
			return
		}
		cursor = next
	}
}
