package server

// Unit tests against a fake Backend: per-request cancellation when the
// client disconnects (or violates the request/response protocol)
// mid-request, and the explicit error response for over-limit request
// frames. The full-stack behaviour is covered by gaea/client's
// integration tests; these pin the server mechanics in isolation.

import (
	"context"
	"encoding/binary"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gaea/internal/object"
	"gaea/internal/query"
	"gaea/internal/wire"
)

// fakeBackend blocks Query until its context is cancelled and records
// the outcome.
type fakeBackend struct {
	queryStarted  chan struct{}
	queryReturned chan error
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		queryStarted:  make(chan struct{}, 8),
		queryReturned: make(chan error, 8),
	}
}

func (f *fakeBackend) Query(ctx context.Context, req query.Request) (*query.Result, error) {
	f.queryStarted <- struct{}{}
	<-ctx.Done()
	f.queryReturned <- ctx.Err()
	return nil, ctx.Err()
}

func (f *fakeBackend) Begin(ctx context.Context, readEpoch uint64, user string) Session { return nil }
func (f *fakeBackend) Epoch() uint64                                                    { return 1 }
func (f *fakeBackend) QueryAt(ctx context.Context, req query.Request, epoch uint64) (*query.Result, error) {
	return &query.Result{}, nil
}
func (f *fakeBackend) StreamPage(ctx context.Context, req query.Request, epoch uint64, retrieveOnly bool, maxBytes int) ([]wire.Object, string, bool, error) {
	return nil, "", false, nil
}
func (f *fakeBackend) StreamPageRaw(ctx context.Context, req query.Request, epoch uint64, maxBytes int) ([]wire.RawObject, string, bool, error) {
	return nil, "", false, nil
}
func (f *fakeBackend) GetAt(oid object.OID, epoch uint64) (*object.Object, error) {
	return &object.Object{OID: oid, Class: "x"}, nil
}
func (f *fakeBackend) GetRawAt(oid object.OID, epoch uint64) (wire.RawObject, error) {
	return wire.RawObject{}, nil
}
func (f *fakeBackend) Pin() uint64                 { return 1 }
func (f *fakeBackend) PinEpoch(epoch uint64) error { return nil }
func (f *fakeBackend) Unpin(epoch uint64)          {}
func (f *fakeBackend) CursorEpoch(c string) (uint64, error) {
	return query.CursorEpoch(c)
}
func (f *fakeBackend) Stale() []object.OID                           { return nil }
func (f *fakeBackend) RefreshStale(ctx context.Context) (int, error) { return 0, nil }
func (f *fakeBackend) Explain(oid object.OID) string                 { return "" }
func (f *fakeBackend) ExplainQuery(ctx context.Context, req query.Request) (string, error) {
	return "", nil
}
func (f *fakeBackend) Stats() string            { return "fake" }
func (f *fakeBackend) Code(err error) wire.Code { return wire.CodeFor(err) }

// startFake serves a fake backend on a unix socket.
func startFake(t *testing.T, b Backend, opts Options) (string, *Server) {
	t.Helper()
	dir, err := os.MkdirTemp("", "gaea-srv-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "s")
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(b, opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return path, srv
}

func rawDial(t *testing.T, path string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("unix", path, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func sendQuery(t *testing.T, conn net.Conn) {
	t.Helper()
	err := wire.WriteFrame(conn, &wire.Request{Op: wire.OpQuery, Query: &wire.QueryReq{Class: "x"}})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRequestCancelledOnDisconnect: a client that goes away mid-request
// cancels the kernel work instead of occupying the connection slot
// until the work completes on its own.
func TestRequestCancelledOnDisconnect(t *testing.T) {
	b := newFakeBackend()
	path, _ := startFake(t, b, Options{})
	conn := rawDial(t, path)
	sendQuery(t, conn)
	select {
	case <-b.queryStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the backend")
	}
	conn.Close() // the client vanishes mid-request
	select {
	case err := <-b.queryReturned:
		if err == nil {
			t.Fatal("backend context was not cancelled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backend kept running after the client disconnected")
	}
}

// TestRequestCancelledOnProtocolViolation: a byte arriving while a
// request is in flight breaks the request/response framing contract —
// the request is cancelled and the connection dropped.
func TestRequestCancelledOnProtocolViolation(t *testing.T) {
	b := newFakeBackend()
	path, _ := startFake(t, b, Options{})
	conn := rawDial(t, path)
	sendQuery(t, conn)
	select {
	case <-b.queryStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the backend")
	}
	if _, err := conn.Write([]byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-b.queryReturned:
		if err == nil {
			t.Fatal("backend context was not cancelled")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backend kept running after the protocol violation")
	}
	// The connection must be closed, not answered.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed, as required
		}
	}
}

// TestOversizedRequestFrameAnswered: a request frame above MaxFrame is
// refused with an explicit CodeBadRequest response (only the header was
// consumed, so the stream is still writable) before the drop.
func TestOversizedRequestFrameAnswered(t *testing.T) {
	b := newFakeBackend()
	path, _ := startFake(t, b, Options{MaxFrame: 1 << 10})
	conn := rawDial(t, path)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<20) // announce 1 MiB against a 1 KiB limit
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp wire.Response
	if err := wire.ReadFrame(conn, 0, &resp); err != nil {
		t.Fatalf("no error response before drop: %v", err)
	}
	if resp.Code != wire.CodeBadRequest {
		t.Fatalf("code = %v, want bad-request", resp.Code)
	}
}
