package server

// OpSubscribeStats: the flight-recorder push stream. A subscriber asks
// once and the server pushes one PageStats page per period — counter
// rates since the previous push, current gauges and histogram p99s, and
// every event emitted since the sequence the subscriber last saw —
// under the same credit window as OpStreamPush, so a stalled subscriber
// throttles itself instead of growing an unbounded queue. The page
// header's epoch field carries the delta's NextSeq; a reconnecting
// subscriber sends it back as req.Epoch and misses nothing the event
// ring still holds.

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"gaea/internal/obs"
	"gaea/internal/wire"
)

const (
	// defaultStatsPeriod is the push interval when the request leaves
	// req.Page (milliseconds) at zero.
	defaultStatsPeriod = time.Second
	// minStatsPeriod floors the client-requested interval so a
	// misbehaving subscriber cannot turn the registry snapshot into a
	// busy loop.
	minStatsPeriod = 10 * time.Millisecond
)

// pushStatsV2 runs one stats subscription to completion: first delta
// immediately (gauges plus the event backlog past req.Epoch), then one
// per period, each costing one page credit.
func (s *Server) pushStatsV2(vc *v2conn, id uint64, r *v2req, ctx context.Context, req *wire.Request) {
	defer s.reqWG.Done()
	defer vc.finish(id)
	ctx, sp := obs.Start(s.traceCtx(ctx, req), "server/"+req.Op.String())
	start := time.Now()
	defer func() {
		s.reqV2.Inc()
		s.reqNS.ObserveSince(start)
		sp.End()
	}()
	if s.reg == nil {
		vc.send(id, badRequest("backend does not support stats subscriptions"))
		return
	}

	st := r.stream
	window := req.Window
	if window <= 0 {
		window = 1
	}
	st.grant(window)

	period := time.Duration(req.Page) * time.Millisecond
	if period <= 0 {
		period = defaultStatsPeriod
	}
	if period < minStatsPeriod {
		period = minStatsPeriod
	}

	src := obs.NewDeltaSource(s.reg, s.events, req.Epoch)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for first := true; ; first = false {
		if !first {
			select {
			case <-tick.C:
			case <-ctx.Done():
				vc.send(id, s.errResponse(ctx.Err()))
				return
			case <-s.quit:
				vc.refuse(id, wire.CodeUnavailable, errShuttingDown.Error())
				return
			}
		}
		if err := st.take(ctx, s.quit); err != nil {
			if errors.Is(err, errShuttingDown) {
				vc.refuse(id, wire.CodeUnavailable, err.Error())
			} else {
				vc.send(id, s.errResponse(err))
			}
			return
		}
		delta := src.Next(time.Now())
		body, err := json.Marshal(delta)
		if err != nil {
			vc.send(id, s.errResponse(err))
			return
		}
		f := wire.AcquireFrame(wire.F2Page, id)
		wire.EncodePageHeader(f, wire.PageStats, delta.NextSeq, "", 0)
		f.Bytes(body)
		s.pushedPages.Add(1)
		if err := vc.out.Push(f); err != nil {
			return
		}
	}
}
