package server

// Durable prepares. A 2PC yes-vote is a promise: "I validated and locked
// this write set and WILL commit it if told to." Prepare's in-memory
// write locks keep the promise against competing writers, but not
// against a crash — a restarted shard that forgot its vote while the
// coordinator logged COMMIT leaves the transaction half-applied across
// the grid. When Options.PrepareDir is set, every yes-vote is fsynced
// to a sidecar file before the vote is answered, and New re-stages the
// surviving sidecars (replay + Prepare under a fresh TTL) before the
// server accepts connections, so a coordinator replaying its decision
// log after a shard restart finds the prepared transaction waiting.
//
// Re-staging reserves fresh OIDs for the batch's creates — the
// coordinator must take the authoritative OIDs from the decide(commit)
// response, not the original vote. Re-staging can also fail (a
// first-committer-wins conflict means the store moved past the vote's
// read epoch — possible only if the original commit actually applied
// before the crash, or the lock was breached by a TTL abort): the
// sidecar is then dropped and a later decide(commit) answers
// CodeNotFound, surfacing the heuristic outcome instead of guessing.
// The sidecar is removed only after the decision is applied, so a crash
// in the narrow window between a durable commit and the unlink can
// re-stage an already-applied batch; update/delete batches then fail
// re-prepare on their own conflict check, while pure-create batches
// would duplicate — the documented heuristic window of this design.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gaea/internal/wire"
)

// persistedPrepare is the sidecar record of one yes-vote: everything
// needed to rebuild the prepared session after a restart.
type persistedPrepare struct {
	User  string
	Token uint64
	Batch wire.BatchReq
}

func prepPath(dir string, token uint64) string {
	return filepath.Join(dir, fmt.Sprintf("prep-%d.gob", token))
}

// persistPrepare makes a yes-vote durable: write, fsync, rename into
// place, fsync the directory. A nil error means the vote survives a
// crash; any error must turn the vote into a no.
func (s *Server) persistPrepare(user string, token uint64, batch *wire.BatchReq) error {
	dir := s.opts.PrepareDir
	if dir == "" {
		return nil
	}
	final := prepPath(dir, token)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("server: persist prepare %d: %w", token, err)
	}
	pp := persistedPrepare{User: user, Token: token, Batch: *batch}
	if err := gob.NewEncoder(f).Encode(&pp); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("server: persist prepare %d: %w", token, err)
	}
	return nil
}

// removePrepare retires a sidecar once its transaction is decided (or
// presumed aborted). Best-effort: a leftover file re-stages a prepare
// whose decide will re-resolve it.
func (s *Server) removePrepare(token uint64) {
	if s.opts.PrepareDir == "" {
		return
	}
	_ = os.Remove(prepPath(s.opts.PrepareDir, token))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// recoverPrepared re-stages every surviving sidecar vote. Called from
// New before any listener is served, so a decide replayed by the
// coordinator's recovery cannot race the re-staging. Sidecars that no
// longer re-prepare (decode failure, vanished class, conflict past the
// vote's read epoch) are dropped — presumed abort, surfaced to a late
// decide(commit) as CodeNotFound.
func (s *Server) recoverPrepared() {
	dir := s.opts.PrepareDir
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// An unrenamed vote never answered yes; nobody waits on it.
			_ = os.Remove(path)
			continue
		}
		if !strings.HasPrefix(name, "prep-") || !strings.HasSuffix(name, ".gob") {
			continue
		}
		var pp persistedPrepare
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		err = gob.NewDecoder(f).Decode(&pp)
		f.Close()
		if err != nil || pp.Token == 0 {
			_ = os.Remove(path)
			continue
		}
		sess := s.b.Begin(s.baseCtx, pp.Batch.ReadEpoch, pp.User)
		ps, ok := sess.(PreparableSession)
		if !ok {
			_ = sess.Rollback()
			_ = os.Remove(path)
			continue
		}
		real, errResp := s.replayBatch(ps, &pp.Batch)
		if errResp != nil { // replayBatch already rolled the session back
			_ = os.Remove(path)
			continue
		}
		if err := ps.Prepare(); err != nil {
			_ = ps.Rollback()
			_ = os.Remove(path)
			continue
		}
		s.prepared[pp.Token] = &preparedTxn{
			token: pp.Token, sess: ps, real: real,
			expires: time.Now().Add(s.opts.leaseTTL()),
		}
	}
}
