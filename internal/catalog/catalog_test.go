package catalog

import (
	"errors"
	"reflect"
	"testing"

	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

func testStore(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// landcoverClass reproduces the paper's CLASS landcover definition.
func landcoverClass() *Class {
	return &Class{
		Name: "landcover",
		Kind: KindDerived,
		Attrs: []Attr{
			{Name: "area", Type: value.TypeString, Doc: "area name"},
			{Name: "cell_x", Type: value.TypeFloat, Doc: "pixel size in x"},
			{Name: "cell_y", Type: value.TypeFloat, Doc: "pixel size in y"},
			{Name: "resolution", Type: value.TypeFloat},
			{Name: "numclass", Type: value.TypeInt},
			{Name: "data", Type: value.TypeImage, Doc: "image data type"},
		},
		Frame:       sptemp.DefaultFrame,
		HasSpatial:  true,
		HasTemporal: true,
		DerivedBy:   "unsupervised_classification",
		Doc:         "Land cover",
	}
}

func TestDefineAndLookup(t *testing.T) {
	c, err := Open(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Define(landcoverClass()); err != nil {
		t.Fatal(err)
	}
	got, err := c.Class("landcover")
	if err != nil {
		t.Fatal(err)
	}
	if got.Doc != "Land cover" || len(got.Attrs) != 6 {
		t.Errorf("lookup = %+v", got)
	}
	if !c.Exists("landcover") || c.Exists("ghost") {
		t.Error("Exists wrong")
	}
	if _, err := c.Class("ghost"); !errors.Is(err, ErrClassNotFound) {
		t.Errorf("missing class err = %v", err)
	}
	// No overwrite.
	if err := c.Define(landcoverClass()); !errors.Is(err, ErrClassExists) {
		t.Errorf("duplicate define err = %v", err)
	}
}

func TestDefinitionValidation(t *testing.T) {
	c, _ := Open(testStore(t))
	cases := []struct {
		name string
		mod  func(*Class)
	}{
		{"bad name", func(cl *Class) { cl.Name = "9bad" }},
		{"bad kind", func(cl *Class) { cl.Kind = "weird" }},
		{"derived without process", func(cl *Class) { cl.DerivedBy = "" }},
		{"bad attr name", func(cl *Class) { cl.Attrs[0].Name = "has space" }},
		{"dup attr", func(cl *Class) { cl.Attrs[1].Name = cl.Attrs[0].Name }},
		{"bad attr type", func(cl *Class) { cl.Attrs[0].Type = "blob" }},
		{"extent collision", func(cl *Class) { cl.Attrs[0].Name = "timestamp" }},
		{"bad frame", func(cl *Class) { cl.Frame.System = "mars" }},
	}
	for _, tc := range cases {
		cl := landcoverClass()
		tc.mod(cl)
		if err := c.Define(cl); err == nil {
			t.Errorf("%s: should fail validation", tc.name)
		}
	}
	// Base class with DerivedBy fails.
	cl := landcoverClass()
	cl.Kind = KindBase
	if err := c.Define(cl); err == nil {
		t.Error("base class with DERIVED BY should fail")
	}
}

func TestRetrievalFunctions(t *testing.T) {
	cl := landcoverClass()
	fns := cl.RetrievalFunctions()
	want := []string{"area", "cell_x", "cell_y", "data", "numclass", "resolution", "spatialextent", "timestamp"}
	if !reflect.DeepEqual(fns, want) {
		t.Errorf("RetrievalFunctions = %v, want %v", fns, want)
	}
	if a, ok := cl.Attr("numclass"); !ok || a.Type != value.TypeInt {
		t.Error("Attr lookup failed")
	}
	if _, ok := cl.Attr("nope"); ok {
		t.Error("missing attr should not be found")
	}
}

func TestCatalogPersistence(t *testing.T) {
	st := testStore(t)
	c, _ := Open(st)
	if err := c.Define(landcoverClass()); err != nil {
		t.Fatal(err)
	}
	base := &Class{
		Name: "landsat_tm", Kind: KindBase,
		Attrs:       []Attr{{Name: "data", Type: value.TypeImage}},
		Frame:       sptemp.DefaultFrame,
		HasSpatial:  true,
		HasTemporal: true,
	}
	if err := c.Define(base); err != nil {
		t.Fatal(err)
	}
	// Reopen the catalog over the same store.
	c2, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c2.Names(), []string{"landcover", "landsat_tm"}) {
		t.Errorf("Names after reload = %v", c2.Names())
	}
	got, err := c2.Class("landcover")
	if err != nil || got.DerivedBy != "unsupervised_classification" {
		t.Errorf("reload lost data: %+v, %v", got, err)
	}
}

func TestDerivedClassesIndex(t *testing.T) {
	c, _ := Open(testStore(t))
	c.Define(landcoverClass())
	other := landcoverClass()
	other.Name = "landcover_v2"
	c.Define(other)
	base := &Class{Name: "raw", Kind: KindBase, Frame: sptemp.DefaultFrame}
	c.Define(base)

	got := c.DerivedClasses("unsupervised_classification")
	want := []string{"landcover", "landcover_v2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DerivedClasses = %v", got)
	}
	if len(c.DerivedClasses("nope")) != 0 {
		t.Error("unknown process should derive nothing")
	}
}

func TestSetDerivedBy(t *testing.T) {
	c, _ := Open(testStore(t))
	pending := landcoverClass()
	pending.Name = "ndvi_map"
	pending.DerivedBy = "pending" // placeholder then re-link
	if err := c.Define(pending); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDerivedBy("ndvi_map", "pending"); err != nil {
		t.Fatal(err) // idempotent same-link
	}
	if err := c.SetDerivedBy("ndvi_map", "other_process"); err == nil {
		t.Error("re-linking to a different process must fail")
	}
	if err := c.SetDerivedBy("ghost", "p"); !errors.Is(err, ErrClassNotFound) {
		t.Errorf("missing class err = %v", err)
	}
	base := &Class{Name: "rawbase", Kind: KindBase, Frame: sptemp.DefaultFrame}
	c.Define(base)
	if err := c.SetDerivedBy("rawbase", "p"); err == nil {
		t.Error("base class cannot be given a derivation")
	}
}

func TestClassCopyIsolation(t *testing.T) {
	c, _ := Open(testStore(t))
	c.Define(landcoverClass())
	got, _ := c.Class("landcover")
	got.Doc = "mutated"
	again, _ := c.Class("landcover")
	if again.Doc != "Land cover" {
		t.Error("Class returned aliased definition")
	}
}
