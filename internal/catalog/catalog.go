// Package catalog manages Gaea's class definitions: primitive classes
// (delegated to the value package), and the non-primitive classes of the
// derivation semantics layer — attribute schemas with SPATIAL EXTENT and
// TEMPORAL EXTENT declarations and a DERIVED BY link to the process that
// defines them (§2.1.2, the landcover example). Definitions persist in the
// storage engine and survive restarts.
//
// Per the paper, "automatically defined (retrieval) functions" accompany
// every attribute: the catalog exposes them as the set of legal accessor
// names for a class (area(landcover), timestamp(landcover), ...).
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

// Kind distinguishes base from derived non-primitive classes (Figure 2's
// legend: "Base Nonprimitive Class" vs "Derived Nonprimitive Class").
type Kind string

// Class kinds.
const (
	KindBase    Kind = "base"
	KindDerived Kind = "derived"
)

// Errors returned by the catalog.
var (
	ErrClassExists   = errors.New("catalog: class already defined")
	ErrClassNotFound = errors.New("catalog: class not found")
	ErrBadDefinition = errors.New("catalog: invalid class definition")
)

// Attr is one attribute of a non-primitive class.
type Attr struct {
	Name string     `json:"name"`
	Type value.Type `json:"type"`
	Doc  string     `json:"doc,omitempty"`
}

// Class is a non-primitive class definition. The spatial and temporal
// extents are declared separately from ordinary attributes, mirroring the
// paper's CLASS landcover syntax with its SPATIAL EXTENT / TEMPORAL EXTENT
// sections.
type Class struct {
	Name  string `json:"name"`
	Kind  Kind   `json:"kind"`
	Attrs []Attr `json:"attrs"`
	// Frame is the spatial reference the class's extents live in
	// (ref_system/ref_unit of the landcover example).
	Frame sptemp.Frame `json:"frame"`
	// HasSpatial/HasTemporal mark the extent declarations.
	HasSpatial  bool `json:"has_spatial"`
	HasTemporal bool `json:"has_temporal"`
	// DerivedBy names the process that defines this class; derived classes
	// are "solely defined by their derivation process" (§2.1.2).
	DerivedBy string `json:"derived_by,omitempty"`
	Doc       string `json:"doc,omitempty"`
}

var identRe = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_]*$`)

// Validate checks structural well-formedness.
func (c *Class) Validate() error {
	if !identRe.MatchString(c.Name) {
		return fmt.Errorf("%w: bad class name %q", ErrBadDefinition, c.Name)
	}
	switch c.Kind {
	case KindBase, KindDerived:
	default:
		return fmt.Errorf("%w: class %s has kind %q", ErrBadDefinition, c.Name, c.Kind)
	}
	if c.Kind == KindDerived && c.DerivedBy == "" {
		return fmt.Errorf("%w: derived class %s needs DERIVED BY", ErrBadDefinition, c.Name)
	}
	if c.Kind == KindBase && c.DerivedBy != "" {
		return fmt.Errorf("%w: base class %s must not declare DERIVED BY", ErrBadDefinition, c.Name)
	}
	seen := map[string]bool{}
	for _, a := range c.Attrs {
		if !identRe.MatchString(a.Name) {
			return fmt.Errorf("%w: class %s attribute %q", ErrBadDefinition, c.Name, a.Name)
		}
		if a.Name == "spatialextent" || a.Name == "timestamp" {
			return fmt.Errorf("%w: class %s attribute %q collides with an extent accessor", ErrBadDefinition, c.Name, a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: class %s duplicate attribute %q", ErrBadDefinition, c.Name, a.Name)
		}
		seen[a.Name] = true
		if !a.Type.Valid() {
			return fmt.Errorf("%w: class %s attribute %s has unknown type %q", ErrBadDefinition, c.Name, a.Name, a.Type)
		}
	}
	if c.HasSpatial {
		if err := c.Frame.Validate(); err != nil {
			return fmt.Errorf("%w: class %s: %v", ErrBadDefinition, c.Name, err)
		}
	}
	return nil
}

// Attr returns the attribute definition by name.
func (c *Class) Attr(name string) (Attr, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// RetrievalFunctions lists the automatically defined accessor names for
// the class: one per attribute plus the extent accessors.
func (c *Class) RetrievalFunctions() []string {
	out := make([]string, 0, len(c.Attrs)+2)
	for _, a := range c.Attrs {
		out = append(out, a.Name)
	}
	if c.HasSpatial {
		out = append(out, "spatialextent")
	}
	if c.HasTemporal {
		out = append(out, "timestamp")
	}
	sort.Strings(out)
	return out
}

// Catalog is the persistent class registry.
type Catalog struct {
	mu      sync.RWMutex
	store   *storage.Store
	classes map[string]*Class
}

const classKeyPrefix = "class/"

// Open loads the catalog from the store.
func Open(st *storage.Store) (*Catalog, error) {
	c := &Catalog{store: st, classes: make(map[string]*Class)}
	for _, key := range st.MetaKeys(classKeyPrefix) {
		raw, ok := st.MetaGet(key)
		if !ok {
			continue
		}
		var cls Class
		if err := json.Unmarshal(raw, &cls); err != nil {
			return nil, fmt.Errorf("catalog: corrupt definition at %s: %w", key, err)
		}
		c.classes[cls.Name] = &cls
	}
	return c, nil
}

// Define validates and persists a new class. Existing classes are never
// overwritten (the paper's no-overwrite rule); evolve a class by defining
// a new one.
func (c *Catalog) Define(cls *Class) error {
	if err := cls.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.classes[cls.Name]; exists {
		return fmt.Errorf("%w: %s", ErrClassExists, cls.Name)
	}
	raw, err := json.Marshal(cls)
	if err != nil {
		return err
	}
	if err := c.store.MetaSet(classKeyPrefix+cls.Name, raw); err != nil {
		return err
	}
	cp := *cls
	c.classes[cls.Name] = &cp
	return nil
}

// Class returns the definition of a class.
func (c *Catalog) Class(name string) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cls, ok := c.classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrClassNotFound, name)
	}
	cp := *cls
	return &cp, nil
}

// Exists reports whether a class is defined.
func (c *Catalog) Exists(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.classes[name]
	return ok
}

// Names lists all class names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.classes))
	for n := range c.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DerivedClasses lists classes derived by the given process.
func (c *Catalog) DerivedClasses(process string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for n, cls := range c.classes {
		if cls.DerivedBy == process {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// SetDerivedBy records the defining process of a derived class after the
// process is registered (class and process definitions reference each
// other; the class may be declared first with a pending link).
func (c *Catalog) SetDerivedBy(className, process string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cls, ok := c.classes[className]
	if !ok {
		return fmt.Errorf("%w: %q", ErrClassNotFound, className)
	}
	if cls.Kind != KindDerived {
		return fmt.Errorf("%w: %s is a base class", ErrBadDefinition, className)
	}
	if cls.DerivedBy != "" && cls.DerivedBy != process {
		return fmt.Errorf("%w: %s already derived by %s", ErrBadDefinition, className, cls.DerivedBy)
	}
	cls.DerivedBy = process
	raw, err := json.Marshal(cls)
	if err != nil {
		return err
	}
	return c.store.MetaSet(classKeyPrefix+className, raw)
}
