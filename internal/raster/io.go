package raster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The paper's external representation for the image class is
// "(nrows, ncols, pixtype, filepath)": image payloads live in files outside
// the record. This file implements that on-disk format — a small
// self-describing header followed by the raw little-endian pixel buffer —
// used both by the blob store and by the IDRISI/GRASS-style file baseline.

const (
	imgMagic   = "GIMG"
	imgVersion = 1
)

// ErrBadImageFile is returned when decoding a corrupt or foreign file.
var ErrBadImageFile = errors.New("raster: not a gaea image file")

// Encode writes the image to w in the Gaea image file format.
func Encode(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imgMagic); err != nil {
		return err
	}
	hdr := make([]byte, 0, 32)
	hdr = binary.LittleEndian.AppendUint16(hdr, imgVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(im.rows))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(im.cols))
	pt := []byte(im.pixType)
	hdr = append(hdr, byte(len(pt)))
	hdr = append(hdr, pt...)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.Write(im.data); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads an image in the Gaea image file format.
func Decode(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imgMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImageFile, err)
	}
	if string(magic) != imgMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadImageFile, magic)
	}
	fixed := make([]byte, 2+4+4+1)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadImageFile, err)
	}
	if v := binary.LittleEndian.Uint16(fixed[0:2]); v != imgVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadImageFile, v)
	}
	rows := int(binary.LittleEndian.Uint32(fixed[2:6]))
	cols := int(binary.LittleEndian.Uint32(fixed[6:10]))
	ptLen := int(fixed[10])
	ptBytes := make([]byte, ptLen)
	if _, err := io.ReadFull(br, ptBytes); err != nil {
		return nil, fmt.Errorf("%w: truncated pixtype: %v", ErrBadImageFile, err)
	}
	pt := PixType(ptBytes)
	if !pt.Valid() {
		return nil, fmt.Errorf("%w: pixtype %q", ErrBadImageFile, pt)
	}
	if rows <= 0 || cols <= 0 || rows*cols > 1<<28 {
		return nil, fmt.Errorf("%w: implausible dims %dx%d", ErrBadImageFile, rows, cols)
	}
	data := make([]byte, rows*cols*pt.Size())
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("%w: truncated pixels: %v", ErrBadImageFile, err)
	}
	return FromData(rows, cols, pt, data)
}

// WriteFile stores the image at path (the img_filepath the paper's internal
// representation records).
func WriteFile(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads an image previously written by WriteFile.
func ReadFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Marshal returns the image encoded as a byte slice (header + pixels),
// the form stored in the blob store.
func Marshal(im *Image) []byte {
	buf := make([]byte, 0, len(imgMagic)+11+len(im.pixType)+len(im.data))
	buf = append(buf, imgMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, imgVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(im.rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(im.cols))
	buf = append(buf, byte(len(im.pixType)))
	buf = append(buf, im.pixType...)
	buf = append(buf, im.data...)
	return buf
}

// Unmarshal decodes an image produced by Marshal.
func Unmarshal(b []byte) (*Image, error) {
	return Decode(&sliceReader{b: b})
}

type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
