// Package raster implements Gaea's image primitive class: a rectangular
// raster with a declared pixel type, as defined in §2.1.3 of the paper
// ("(nrows, ncols, pixtype, filepath)" with pixtype one of char, int2,
// int4, float4, float8). It also provides the synthetic multi-band scene
// generator that substitutes for Landsat TM / AVHRR imagery (see DESIGN.md
// §5): the experiments need co-registered bands with plausible correlation
// structure, not real radiometry.
package raster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// PixType enumerates the pixel data types the paper's image class supports.
type PixType string

// Pixel types, named exactly as in the paper's internal representation.
const (
	PixChar   PixType = "char"   // unsigned 8-bit
	PixInt2   PixType = "int2"   // signed 16-bit
	PixInt4   PixType = "int4"   // signed 32-bit
	PixFloat4 PixType = "float4" // IEEE 754 single
	PixFloat8 PixType = "float8" // IEEE 754 double
)

// Size returns the per-pixel byte width of the type, or 0 for unknown
// types.
func (p PixType) Size() int {
	switch p {
	case PixChar:
		return 1
	case PixInt2:
		return 2
	case PixInt4:
		return 4
	case PixFloat4:
		return 4
	case PixFloat8:
		return 8
	default:
		return 0
	}
}

// Valid reports whether p is one of the five supported pixel types.
func (p PixType) Valid() bool { return p.Size() != 0 }

// Errors returned by image construction and access.
var (
	ErrBadDims    = errors.New("raster: rows and cols must be positive")
	ErrBadPixType = errors.New("raster: unknown pixel type")
	ErrBounds     = errors.New("raster: pixel index out of bounds")
	ErrShape      = errors.New("raster: image shapes differ")
)

// Image is a row-major raster. Pixels are stored in a contiguous
// little-endian byte buffer, matching the on-disk representation used by
// the blob store, so images round-trip through storage without copying.
type Image struct {
	rows, cols int
	pixType    PixType
	data       []byte
}

// New returns a zero-filled image with the given shape and pixel type.
func New(rows, cols int, pt PixType) (*Image, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDims, rows, cols)
	}
	if !pt.Valid() {
		return nil, fmt.Errorf("%w: %q", ErrBadPixType, pt)
	}
	return &Image{rows: rows, cols: cols, pixType: pt, data: make([]byte, rows*cols*pt.Size())}, nil
}

// MustNew is New for statically correct shapes; it panics on error and is
// intended for tests and generators.
func MustNew(rows, cols int, pt PixType) *Image {
	img, err := New(rows, cols, pt)
	if err != nil {
		panic(err)
	}
	return img
}

// FromData wraps an existing little-endian pixel buffer. The buffer length
// must match rows*cols*pixsize exactly; the image takes ownership of it.
func FromData(rows, cols int, pt PixType, data []byte) (*Image, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDims, rows, cols)
	}
	if !pt.Valid() {
		return nil, fmt.Errorf("%w: %q", ErrBadPixType, pt)
	}
	if want := rows * cols * pt.Size(); len(data) != want {
		return nil, fmt.Errorf("raster: data length %d, want %d", len(data), want)
	}
	return &Image{rows: rows, cols: cols, pixType: pt, data: data}, nil
}

// Rows returns the number of rows (the paper's img_nrow operator).
func (im *Image) Rows() int { return im.rows }

// Cols returns the number of columns (img_ncol).
func (im *Image) Cols() int { return im.cols }

// PixType returns the pixel type (img_type).
func (im *Image) PixType() PixType { return im.pixType }

// Pixels returns rows*cols.
func (im *Image) Pixels() int { return im.rows * im.cols }

// Data exposes the raw little-endian pixel buffer; callers must not resize
// it. It is how the blob store persists images.
func (im *Image) Data() []byte { return im.data }

// SameShape reports whether two images have identical dimensions (the
// paper's img_size_eq operator). Pixel types may differ.
func (im *Image) SameShape(o *Image) bool {
	return o != nil && im.rows == o.rows && im.cols == o.cols
}

// String describes the image without dumping pixels.
func (im *Image) String() string {
	return fmt.Sprintf("image(%dx%d %s)", im.rows, im.cols, im.pixType)
}

func (im *Image) offset(r, c int) (int, error) {
	if r < 0 || r >= im.rows || c < 0 || c >= im.cols {
		return 0, fmt.Errorf("%w: (%d,%d) in %dx%d", ErrBounds, r, c, im.rows, im.cols)
	}
	return (r*im.cols + c) * im.pixType.Size(), nil
}

// At returns the pixel at (r, c) widened to float64.
func (im *Image) At(r, c int) (float64, error) {
	off, err := im.offset(r, c)
	if err != nil {
		return 0, err
	}
	return im.atOffset(off), nil
}

func (im *Image) atOffset(off int) float64 {
	switch im.pixType {
	case PixChar:
		return float64(im.data[off])
	case PixInt2:
		return float64(int16(binary.LittleEndian.Uint16(im.data[off:])))
	case PixInt4:
		return float64(int32(binary.LittleEndian.Uint32(im.data[off:])))
	case PixFloat4:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(im.data[off:])))
	default: // PixFloat8
		return math.Float64frombits(binary.LittleEndian.Uint64(im.data[off:]))
	}
}

// Set stores v at (r, c), clamping and rounding as the pixel type requires
// (integer types saturate at their bounds, matching GIS reclass semantics).
func (im *Image) Set(r, c int, v float64) error {
	off, err := im.offset(r, c)
	if err != nil {
		return err
	}
	im.setOffset(off, v)
	return nil
}

func (im *Image) setOffset(off int, v float64) {
	switch im.pixType {
	case PixChar:
		im.data[off] = byte(clamp(math.Round(v), 0, 255))
	case PixInt2:
		binary.LittleEndian.PutUint16(im.data[off:], uint16(int16(clamp(math.Round(v), math.MinInt16, math.MaxInt16))))
	case PixInt4:
		binary.LittleEndian.PutUint32(im.data[off:], uint32(int32(clamp(math.Round(v), math.MinInt32, math.MaxInt32))))
	case PixFloat4:
		binary.LittleEndian.PutUint32(im.data[off:], math.Float32bits(float32(v)))
	default: // PixFloat8
		binary.LittleEndian.PutUint64(im.data[off:], math.Float64bits(v))
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Float64s returns all pixels in row-major order widened to float64.
func (im *Image) Float64s() []float64 {
	out := make([]float64, im.Pixels())
	sz := im.pixType.Size()
	for i := range out {
		out[i] = im.atOffset(i * sz)
	}
	return out
}

// SetFloat64s overwrites all pixels from a row-major float64 slice, which
// must have exactly rows*cols elements.
func (im *Image) SetFloat64s(vals []float64) error {
	if len(vals) != im.Pixels() {
		return fmt.Errorf("raster: %d values for %d pixels", len(vals), im.Pixels())
	}
	sz := im.pixType.Size()
	for i, v := range vals {
		im.setOffset(i*sz, v)
	}
	return nil
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	data := make([]byte, len(im.data))
	copy(data, im.data)
	return &Image{rows: im.rows, cols: im.cols, pixType: im.pixType, data: data}
}

// Convert returns a copy of the image re-encoded with the target pixel
// type, clamping as needed.
func (im *Image) Convert(pt PixType) (*Image, error) {
	out, err := New(im.rows, im.cols, pt)
	if err != nil {
		return nil, err
	}
	if err := out.SetFloat64s(im.Float64s()); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarises an image for assertions and experiment reports.
type Stats struct {
	Min, Max, Mean, StdDev float64
}

// Stats computes per-image statistics in one pass.
func (im *Image) Stats() Stats {
	n := im.Pixels()
	if n == 0 {
		return Stats{}
	}
	sz := im.pixType.Size()
	min, max := math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := im.atOffset(i * sz)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Stats{Min: min, Max: max, Mean: mean, StdDev: math.Sqrt(variance)}
}

// EqualPixels reports whether two images have the same shape, pixel type,
// and identical pixel values (bitwise on the underlying buffer).
func (im *Image) EqualPixels(o *Image) bool {
	if o == nil || !im.SameShape(o) || im.pixType != o.pixType {
		return false
	}
	for i := range im.data {
		if im.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute pixel difference between two
// same-shaped images; experiment comparisons use it to decide whether two
// derivations produced "the same" data.
func (im *Image) MaxAbsDiff(o *Image) (float64, error) {
	if !im.SameShape(o) {
		return 0, ErrShape
	}
	a, b := im.Float64s(), o.Float64s()
	var max float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}
