package raster

import (
	"math"
)

// Synthetic scene generation.
//
// The paper's experiments run over Landsat TM and AVHRR satellite imagery,
// which is unavailable offline. This generator produces the closest
// synthetic equivalent the derivation experiments need: multi-band,
// co-registered rasters over a persistent "landscape" whose bands are
// correlated mixtures of latent surface fields (vegetation, soil moisture,
// water) plus a seasonal signal and sensor noise. Because the landscape is
// a pure function of (seed, position), re-generating a scene for the same
// region and date is deterministic — exactly what reproducibility
// experiments require — while different dates shift vegetation the way
// NDVI-change studies expect.

// splitmix64 is a tiny, high-quality hash-to-random mapping; it gives the
// generator deterministic per-coordinate noise without carrying rand state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps integer lattice coordinates to a uniform float in [0, 1).
func hashUnit(seed uint64, ix, iy int64) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(ix)*0x9e3779b97f4a7c15) ^ splitmix64(uint64(iy)*0xc2b2ae3d27d4eb4f))
	return float64(h>>11) / float64(1<<53)
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise2D is smooth value noise over the real plane.
func valueNoise2D(seed uint64, x, y float64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	tx, ty := smooth(x-x0), smooth(y-y0)
	ix, iy := int64(x0), int64(y0)
	v00 := hashUnit(seed, ix, iy)
	v10 := hashUnit(seed, ix+1, iy)
	v01 := hashUnit(seed, ix, iy+1)
	v11 := hashUnit(seed, ix+1, iy+1)
	a := v00 + (v10-v00)*tx
	b := v01 + (v11-v01)*tx
	return a + (b-a)*ty
}

// fbm layers octaves of value noise into a natural-looking field in [0, 1].
func fbm(seed uint64, x, y float64, octaves int) float64 {
	var sum, norm float64
	amp, freq := 1.0, 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise2D(seed+uint64(o)*1000003, x*freq, y*freq)
		norm += amp
		amp *= 0.5
		freq *= 2
	}
	return sum / norm
}

// Landscape is a deterministic synthetic earth surface. WorldX/WorldY place
// the scene in world coordinates so overlapping scenes sample the same
// latent fields (co-registration).
type Landscape struct {
	Seed uint64
	// Scale is the world-units-per-noise-cell factor; larger values make
	// broader geographic features.
	Scale float64
}

// NewLandscape returns a landscape with a sensible feature scale.
func NewLandscape(seed uint64) *Landscape {
	return &Landscape{Seed: seed, Scale: 64}
}

// Latent surface fields, each in [0, 1].
func (l *Landscape) elevation(x, y float64) float64 {
	return fbm(l.Seed^0xE1E7, x/l.Scale, y/l.Scale, 5)
}

func (l *Landscape) moisture(x, y float64) float64 {
	return fbm(l.Seed^0x301C, x/l.Scale*1.3+100, y/l.Scale*1.3-40, 4)
}

// Vegetation responds to moisture and elevation plus a seasonal cycle.
// dayOfYear in [0, 365); amplitude grows with moisture so arid regions stay
// flat across seasons, as real NDVI does.
func (l *Landscape) vegetation(x, y float64, dayOfYear float64) float64 {
	m := l.moisture(x, y)
	e := l.elevation(x, y)
	season := 0.5 + 0.5*math.Sin(2*math.Pi*(dayOfYear-80)/365)
	v := m*0.7 + (1-e)*0.2 + 0.25*season*m
	return clamp(v, 0, 1)
}

// water is 1 where elevation falls below the water table.
func (l *Landscape) water(x, y float64) float64 {
	if l.elevation(x, y) < 0.22 {
		return 1
	}
	return 0
}

// Band identifies a simulated sensor band.
type Band int

// Simulated bands: the visible/NIR bands NDVI and classification need.
const (
	BandBlue Band = iota
	BandGreen
	BandRed
	BandNIR
	BandSWIR
	BandThermal
	NumBands int = 6
)

var bandNames = [...]string{"blue", "green", "red", "nir", "swir", "thermal"}

// String returns the band's conventional name.
func (b Band) String() string {
	if b < 0 || int(b) >= len(bandNames) {
		return "band?"
	}
	return bandNames[b]
}

// SceneSpec describes one scene acquisition: a world-coordinate window,
// raster shape, acquisition day-of-year, and sensor noise level.
type SceneSpec struct {
	OriginX, OriginY float64 // world coordinates of pixel (0, 0)
	CellSize         float64 // world units per pixel
	Rows, Cols       int
	DayOfYear        float64 // acquisition date within the year
	Year             int     // shifts the vegetation field slightly year-on-year
	Noise            float64 // sensor noise stddev in reflectance units (0-1 scale)
	PixType          PixType // output pixel type; default float4
}

// reflectance computes a band's surface reflectance at a world point as a
// linear mixture of the latent fields. Coefficients are loosely modelled on
// vegetation/soil/water spectral signatures: vegetation absorbs red and
// reflects NIR strongly, water absorbs NIR, soil is flat.
func (l *Landscape) reflectance(b Band, x, y float64, dayOfYear float64, year int) float64 {
	veg := l.vegetation(x, y, dayOfYear+float64(year%7)*3.1)
	wat := l.water(x, y)
	soil := clamp(1-veg-wat, 0, 1)
	var r float64
	switch b {
	case BandBlue:
		r = 0.06*veg + 0.10*soil + 0.08*wat
	case BandGreen:
		r = 0.12*veg + 0.14*soil + 0.06*wat
	case BandRed:
		r = 0.05*veg + 0.22*soil + 0.04*wat
	case BandNIR:
		r = 0.55*veg + 0.30*soil + 0.02*wat
	case BandSWIR:
		r = 0.25*veg + 0.35*soil + 0.01*wat
	case BandThermal:
		e := l.elevation(x, y)
		r = 0.6 - 0.3*e - 0.15*veg
	}
	return clamp(r, 0, 1)
}

// GenerateBand renders one band of a scene. Sensor noise is deterministic
// in (seed, band, pixel, year, day) so identical specs yield identical
// scenes.
func (l *Landscape) GenerateBand(spec SceneSpec, b Band) (*Image, error) {
	pt := spec.PixType
	if pt == "" {
		pt = PixFloat4
	}
	img, err := New(spec.Rows, spec.Cols, pt)
	if err != nil {
		return nil, err
	}
	noiseSeed := l.Seed ^ splitmix64(uint64(b)+0xBAD) ^ splitmix64(uint64(spec.Year)*366+uint64(spec.DayOfYear))
	vals := make([]float64, spec.Rows*spec.Cols)
	i := 0
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			x := spec.OriginX + float64(c)*spec.CellSize
			y := spec.OriginY + float64(r)*spec.CellSize
			v := l.reflectance(b, x, y, spec.DayOfYear, spec.Year)
			if spec.Noise > 0 {
				// Deterministic pseudo-Gaussian noise via sum of uniforms.
				var u float64
				for k := int64(0); k < 4; k++ {
					u += hashUnit(noiseSeed, int64(i)*4+k, int64(b))
				}
				v += spec.Noise * (u - 2) // mean 0, stddev ~ spec.Noise*0.577
			}
			if pt == PixChar {
				v *= 255 // scale reflectance to byte range
			}
			vals[i] = clamp(v, 0, math.Inf(1))
			i++
		}
	}
	if err := img.SetFloat64s(vals); err != nil {
		return nil, err
	}
	return img, nil
}

// GenerateScene renders the requested bands of a scene, co-registered.
func (l *Landscape) GenerateScene(spec SceneSpec, bands []Band) ([]*Image, error) {
	out := make([]*Image, 0, len(bands))
	for _, b := range bands {
		img, err := l.GenerateBand(spec, b)
		if err != nil {
			return nil, err
		}
		out = append(out, img)
	}
	return out, nil
}

// RainfallField renders an annual-precipitation raster (mm/year) for the
// desert-concept experiments: rainfall follows moisture with an elevation
// bonus, ranging roughly 0–1000 mm.
func (l *Landscape) RainfallField(spec SceneSpec) (*Image, error) {
	pt := spec.PixType
	if pt == "" {
		pt = PixFloat4
	}
	img, err := New(spec.Rows, spec.Cols, pt)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, spec.Rows*spec.Cols)
	i := 0
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			x := spec.OriginX + float64(c)*spec.CellSize
			y := spec.OriginY + float64(r)*spec.CellSize
			vals[i] = 1000*math.Pow(l.moisture(x, y), 1.5) + 150*l.elevation(x, y)
			i++
		}
	}
	if err := img.SetFloat64s(vals); err != nil {
		return nil, err
	}
	return img, nil
}

// TemperatureField renders a mean-temperature raster (°C): hot lowlands,
// cold highlands, modulated by day of year.
func (l *Landscape) TemperatureField(spec SceneSpec) (*Image, error) {
	pt := spec.PixType
	if pt == "" {
		pt = PixFloat4
	}
	img, err := New(spec.Rows, spec.Cols, pt)
	if err != nil {
		return nil, err
	}
	season := 10 * math.Sin(2*math.Pi*(spec.DayOfYear-80)/365)
	vals := make([]float64, spec.Rows*spec.Cols)
	i := 0
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			x := spec.OriginX + float64(c)*spec.CellSize
			y := spec.OriginY + float64(r)*spec.CellSize
			vals[i] = 32 - 28*l.elevation(x, y) + season
			i++
		}
	}
	if err := img.SetFloat64s(vals); err != nil {
		return nil, err
	}
	return img, nil
}
