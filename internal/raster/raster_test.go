package raster

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, PixChar); err == nil {
		t.Error("zero rows must fail")
	}
	if _, err := New(10, -1, PixChar); err == nil {
		t.Error("negative cols must fail")
	}
	if _, err := New(4, 4, PixType("int8")); err == nil {
		t.Error("unknown pixtype must fail")
	}
	im, err := New(3, 5, PixInt2)
	if err != nil {
		t.Fatal(err)
	}
	if im.Rows() != 3 || im.Cols() != 5 || im.Pixels() != 15 || im.PixType() != PixInt2 {
		t.Errorf("accessors wrong: %s", im)
	}
	if len(im.Data()) != 30 {
		t.Errorf("buffer = %d bytes, want 30", len(im.Data()))
	}
}

func TestPixTypeSizes(t *testing.T) {
	want := map[PixType]int{PixChar: 1, PixInt2: 2, PixInt4: 4, PixFloat4: 4, PixFloat8: 8}
	for pt, sz := range want {
		if pt.Size() != sz {
			t.Errorf("%s.Size() = %d, want %d", pt, pt.Size(), sz)
		}
		if !pt.Valid() {
			t.Errorf("%s should be valid", pt)
		}
	}
	if PixType("bogus").Valid() {
		t.Error("bogus type should be invalid")
	}
}

func TestSetAtRoundTripAllTypes(t *testing.T) {
	cases := []struct {
		pt   PixType
		in   float64
		want float64
	}{
		{PixChar, 42, 42},
		{PixChar, -5, 0},    // clamps at 0
		{PixChar, 300, 255}, // clamps at 255
		{PixChar, 41.6, 42}, // rounds
		{PixInt2, -1234, -1234},
		{PixInt2, 40000, math.MaxInt16},
		{PixInt4, -2000000, -2000000},
		{PixFloat4, 0.25, 0.25},
		{PixFloat8, math.Pi, math.Pi},
	}
	for _, c := range cases {
		im := MustNew(2, 2, c.pt)
		if err := im.Set(1, 1, c.in); err != nil {
			t.Fatal(err)
		}
		got, err := im.At(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s: Set(%g) -> At = %g, want %g", c.pt, c.in, got, c.want)
		}
		// Untouched pixel stays zero.
		if z, _ := im.At(0, 0); z != 0 {
			t.Errorf("%s: zero pixel = %g", c.pt, z)
		}
	}
}

func TestBoundsChecking(t *testing.T) {
	im := MustNew(2, 3, PixFloat8)
	for _, rc := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 3}} {
		if _, err := im.At(rc[0], rc[1]); err == nil {
			t.Errorf("At(%d,%d) should fail", rc[0], rc[1])
		}
		if err := im.Set(rc[0], rc[1], 1); err == nil {
			t.Errorf("Set(%d,%d) should fail", rc[0], rc[1])
		}
	}
}

func TestFloat64sRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		types := []PixType{PixFloat4, PixFloat8}
		pt := types[r.Intn(len(types))]
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		im := MustNew(rows, cols, pt)
		vals := make([]float64, rows*cols)
		for i := range vals {
			vals[i] = float64(float32(r.NormFloat64() * 100)) // representable in float4
		}
		if err := im.SetFloat64s(vals); err != nil {
			return false
		}
		got := im.Float64s()
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetFloat64sLengthCheck(t *testing.T) {
	im := MustNew(2, 2, PixChar)
	if err := im.SetFloat64s([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-length slice must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(2, 2, PixInt4)
	a.Set(0, 0, 7)
	b := a.Clone()
	b.Set(0, 0, 99)
	if v, _ := a.At(0, 0); v != 7 {
		t.Error("clone shares storage with original")
	}
	if !a.SameShape(b) {
		t.Error("clone shape differs")
	}
}

func TestConvert(t *testing.T) {
	a := MustNew(2, 2, PixFloat8)
	a.SetFloat64s([]float64{0.4, 100.6, -3, 300})
	b, err := a.Convert(PixChar)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 101, 0, 255}
	got := b.Float64s()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Convert[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := a.Convert(PixType("nope")); err == nil {
		t.Error("convert to invalid type must fail")
	}
}

func TestStats(t *testing.T) {
	im := MustNew(1, 4, PixFloat8)
	im.SetFloat64s([]float64{1, 2, 3, 4})
	s := im.Stats()
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("Stats = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %g", s.StdDev)
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := MustNew(2, 2, PixFloat8)
	a.SetFloat64s([]float64{1, 2, 3, 4})
	b := a.Clone()
	if !a.EqualPixels(b) {
		t.Error("clone should be pixel-equal")
	}
	b.Set(1, 1, 4.5)
	if a.EqualPixels(b) {
		t.Error("modified clone should differ")
	}
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.5 {
		t.Errorf("MaxAbsDiff = %g", d)
	}
	c := MustNew(2, 3, PixFloat8)
	if _, err := a.MaxAbsDiff(c); err == nil {
		t.Error("shape mismatch must fail")
	}
	if a.EqualPixels(nil) {
		t.Error("nil comparison should be false")
	}
}

func TestFromData(t *testing.T) {
	data := make([]byte, 2*2*2)
	im, err := FromData(2, 2, PixInt2, data)
	if err != nil {
		t.Fatal(err)
	}
	if im.Pixels() != 4 {
		t.Error("FromData shape wrong")
	}
	if _, err := FromData(2, 2, PixInt2, make([]byte, 7)); err == nil {
		t.Error("wrong buffer length must fail")
	}
	if _, err := FromData(0, 2, PixInt2, nil); err == nil {
		t.Error("bad dims must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, pt := range []PixType{PixChar, PixInt2, PixInt4, PixFloat4, PixFloat8} {
		im := MustNew(3, 4, pt)
		vals := make([]float64, 12)
		for i := range vals {
			vals[i] = float64(i * 3)
		}
		im.SetFloat64s(vals)

		var buf bytes.Buffer
		if err := Encode(&buf, im); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: %v", pt, err)
		}
		if !im.EqualPixels(back) {
			t.Errorf("%s: round trip lost pixels", pt)
		}
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	im := MustNew(5, 7, PixFloat4)
	vals := make([]float64, 35)
	for i := range vals {
		vals[i] = float64(i) / 3
	}
	im.SetFloat64s(vals)
	back, err := Unmarshal(Marshal(im))
	if err != nil {
		t.Fatal(err)
	}
	if !im.EqualPixels(back) {
		t.Error("marshal round trip lost pixels")
	}
}

func TestDecodeCorruption(t *testing.T) {
	im := MustNew(2, 2, PixChar)
	good := Marshal(im)

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XIMG"), good[4:]...),
		"truncated hdr": good[:8],
		"truncated pix": good[:len(good)-2],
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
	// Corrupt pixtype length/name.
	bad := append([]byte(nil), good...)
	bad[14] = 200 // absurd pixtype length
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad pixtype length should fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scene.gimg")
	im := MustNew(4, 4, PixFloat8)
	im.Set(2, 2, 42.5)
	if err := WriteFile(path, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !im.EqualPixels(back) {
		t.Error("file round trip lost pixels")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.gimg")); err == nil {
		t.Error("missing file should fail")
	}
}
