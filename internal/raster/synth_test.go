package raster

import (
	"math"
	"testing"
)

func testSpec(rows, cols int) SceneSpec {
	return SceneSpec{
		OriginX: 1000, OriginY: 2000, CellSize: 30,
		Rows: rows, Cols: cols,
		DayOfYear: 180, Year: 1986, Noise: 0.01,
	}
}

func TestGenerateBandDeterminism(t *testing.T) {
	l := NewLandscape(42)
	a, err := l.GenerateBand(testSpec(16, 16), BandRed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.GenerateBand(testSpec(16, 16), BandRed)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualPixels(b) {
		t.Error("same spec must generate identical scenes (reproducibility)")
	}
	// Different seed differs.
	l2 := NewLandscape(43)
	c, _ := l2.GenerateBand(testSpec(16, 16), BandRed)
	if a.EqualPixels(c) {
		t.Error("different seeds should differ")
	}
	// Different band differs.
	d, _ := l.GenerateBand(testSpec(16, 16), BandNIR)
	if a.EqualPixels(d) {
		t.Error("different bands should differ")
	}
}

func TestGenerateSceneCoRegistration(t *testing.T) {
	// Two scenes whose windows overlap must agree (up to noise) on the
	// shared latent surface; verify via the noiseless reflectance.
	l := NewLandscape(7)
	spec1 := testSpec(16, 16)
	spec1.Noise = 0
	spec2 := spec1
	spec2.OriginX += 8 * spec1.CellSize // shift 8 pixels east

	a, err := l.GenerateBand(spec1, BandNIR)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.GenerateBand(spec2, BandNIR)
	if err != nil {
		t.Fatal(err)
	}
	// Column c of b equals column c+8 of a for the overlapping window.
	for r := 0; r < 16; r++ {
		for c := 0; c < 8; c++ {
			va, _ := a.At(r, c+8)
			vb, _ := b.At(r, c)
			if math.Abs(va-vb) > 1e-6 {
				t.Fatalf("co-registration broken at (%d,%d): %g vs %g", r, c, va, vb)
			}
		}
	}
}

func TestVegetationSeasonalSignal(t *testing.T) {
	// NIR reflectance in summer should exceed winter on average (vegetation
	// seasonal cycle), which is what NDVI-change experiments detect.
	l := NewLandscape(11)
	summer := testSpec(32, 32)
	summer.Noise = 0
	summer.DayOfYear = 172
	winter := summer
	winter.DayOfYear = 355

	s, err := l.GenerateBand(summer, BandNIR)
	if err != nil {
		t.Fatal(err)
	}
	w, err := l.GenerateBand(winter, BandNIR)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Mean <= w.Stats().Mean {
		t.Errorf("summer NIR mean %g should exceed winter %g", s.Stats().Mean, w.Stats().Mean)
	}
}

func TestBandSpectralShape(t *testing.T) {
	// On a vegetated landscape NIR should exceed red on average — the
	// premise behind NDVI.
	l := NewLandscape(5)
	spec := testSpec(32, 32)
	spec.Noise = 0
	red, _ := l.GenerateBand(spec, BandRed)
	nir, _ := l.GenerateBand(spec, BandNIR)
	if nir.Stats().Mean <= red.Stats().Mean {
		t.Errorf("NIR mean %g should exceed red mean %g", nir.Stats().Mean, red.Stats().Mean)
	}
}

func TestGenerateSceneMultiBand(t *testing.T) {
	l := NewLandscape(3)
	bands := []Band{BandBlue, BandGreen, BandRed, BandNIR}
	imgs, err := l.GenerateScene(testSpec(8, 8), bands)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 4 {
		t.Fatalf("got %d bands", len(imgs))
	}
	for i, im := range imgs {
		if im.Rows() != 8 || im.Cols() != 8 {
			t.Errorf("band %d shape %s", i, im)
		}
	}
	// Bad spec propagates.
	bad := testSpec(0, 8)
	if _, err := l.GenerateScene(bad, bands); err == nil {
		t.Error("bad spec should fail")
	}
}

func TestGenerateBandPixTypes(t *testing.T) {
	l := NewLandscape(9)
	spec := testSpec(8, 8)
	spec.PixType = PixChar
	im, err := l.GenerateBand(spec, BandGreen)
	if err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	if st.Max > 255 || st.Min < 0 {
		t.Errorf("char band out of range: %+v", st)
	}
	if st.Max <= 1 {
		t.Errorf("char band should be scaled to byte range, max = %g", st.Max)
	}
}

func TestRainfallAndTemperatureFields(t *testing.T) {
	l := NewLandscape(21)
	spec := testSpec(32, 32)
	rain, err := l.RainfallField(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs := rain.Stats()
	if rs.Min < 0 || rs.Max > 1500 {
		t.Errorf("rainfall out of plausible range: %+v", rs)
	}
	if rs.StdDev == 0 {
		t.Error("rainfall field should vary")
	}
	temp, err := l.TemperatureField(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts := temp.Stats()
	if ts.Min < -30 || ts.Max > 60 {
		t.Errorf("temperature out of plausible range: %+v", ts)
	}
	// Determinism.
	rain2, _ := l.RainfallField(spec)
	if !rain.EqualPixels(rain2) {
		t.Error("rainfall field must be deterministic")
	}
}

func TestBandString(t *testing.T) {
	if BandNIR.String() != "nir" {
		t.Errorf("BandNIR = %q", BandNIR)
	}
	if Band(99).String() != "band?" {
		t.Errorf("unknown band = %q", Band(99))
	}
}

func TestNoiseIsDeterministicButNonZero(t *testing.T) {
	l := NewLandscape(13)
	spec := testSpec(16, 16)
	spec.Noise = 0.05
	a, _ := l.GenerateBand(spec, BandRed)
	b, _ := l.GenerateBand(spec, BandRed)
	if !a.EqualPixels(b) {
		t.Error("noisy generation must still be deterministic")
	}
	spec.Noise = 0
	clean, _ := l.GenerateBand(spec, BandRed)
	if a.EqualPixels(clean) {
		t.Error("noise should change pixels")
	}
}
