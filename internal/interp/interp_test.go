package interp

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/process"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/task"
	"gaea/internal/value"
)

type world struct {
	obj *object.Store
	ip  *Interpolator
}

func newWorld(t *testing.T) *world {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	err = cat.Define(&catalog.Class{
		Name: "ndvi", Kind: catalog.KindBase,
		Attrs: []catalog.Attr{
			{Name: "data", Type: value.TypeImage},
			{Name: "quality", Type: value.TypeFloat},
			{Name: "sensor", Type: value.TypeString},
		},
		Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cat.Define(&catalog.Class{
		Name: "static_map", Kind: catalog.KindBase,
		Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
		Frame: sptemp.DefaultFrame, HasSpatial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := adt.NewStandardRegistry()
	obj, err := object.Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := process.OpenManager(st, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := task.OpenExecutor(st, cat, reg, obj, mgr)
	if err != nil {
		t.Fatal(err)
	}
	return &world{obj: obj, ip: &Interpolator{Cat: cat, Obj: obj, Reg: reg, Exec: exec}}
}

func (w *world) insertNDVI(t *testing.T, day sptemp.AbsTime, pixel float64, quality float64, box sptemp.Box) object.OID {
	t.Helper()
	img := raster.MustNew(4, 4, raster.PixFloat8)
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = pixel
	}
	img.SetFloat64s(vals)
	oid, err := w.obj.Insert(&object.Object{
		Class: "ndvi",
		Attrs: map[string]value.Value{
			"data":    value.Image{Img: img},
			"quality": value.Float(quality),
			"sensor":  value.String_("avhrr"),
		},
		Extent: sptemp.AtInstant(sptemp.DefaultFrame, box, day),
	})
	if err != nil {
		t.Fatal(err)
	}
	return oid
}

func TestTemporalInterpolationMidpoint(t *testing.T) {
	w := newWorld(t)
	box := sptemp.NewBox(0, 0, 100, 100)
	before := w.insertNDVI(t, sptemp.Date(1986, 1, 1), 0.2, 0.9, box)
	after := w.insertNDVI(t, sptemp.Date(1986, 3, 1), 0.6, 0.5, box)

	mid := sptemp.Date(1986, 1, 30) // not exactly halfway; compute fraction
	oid, err := w.ip.Temporal(context.Background(), "ndvi", mid, sptemp.EmptyBox(), task.RunOptions{User: "interp-test"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.obj.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(mid-sptemp.Date(1986, 1, 1)) / float64(sptemp.Date(1986, 3, 1)-sptemp.Date(1986, 1, 1))
	wantPixel := 0.2*(1-frac) + 0.6*frac
	img, _ := value.AsImage(got.Attrs["data"])
	if v, _ := img.At(0, 0); math.Abs(v-wantPixel) > 1e-6 {
		t.Errorf("pixel = %g, want %g", v, wantPixel)
	}
	wantQ := 0.9*(1-frac) + 0.5*frac
	if q := float64(got.Attrs["quality"].(value.Float)); math.Abs(q-wantQ) > 1e-9 {
		t.Errorf("quality = %g, want %g", q, wantQ)
	}
	// Non-numeric attribute copied from the heavier endpoint.
	if got.Attrs["sensor"].(value.String_) != "avhrr" {
		t.Error("sensor attribute lost")
	}
	// Extent at the requested instant.
	if !got.Extent.HasTime || got.Extent.TimeIv.Start != mid {
		t.Errorf("extent time = %v", got.Extent.TimeIv)
	}
	// Derivation recorded with both inputs.
	task0, ok := w.ip.Exec.Producer(oid)
	if !ok {
		t.Fatal("interpolation must record a task")
	}
	if task0.Process != "temporal_interpolation" || task0.Version != 0 {
		t.Errorf("task = %+v", task0)
	}
	if task0.Inputs["before"][0] != before || task0.Inputs["after"][0] != after {
		t.Errorf("task inputs = %v", task0.Inputs)
	}
}

func TestTemporalInterpolationOutOfRange(t *testing.T) {
	w := newWorld(t)
	box := sptemp.NewBox(0, 0, 100, 100)
	w.insertNDVI(t, sptemp.Date(1986, 1, 1), 0.2, 0.9, box)
	w.insertNDVI(t, sptemp.Date(1986, 3, 1), 0.6, 0.5, box)
	// Before the first observation.
	if _, err := w.ip.Temporal(context.Background(), "ndvi", sptemp.Date(1985, 1, 1), sptemp.EmptyBox(), task.RunOptions{}); !errors.Is(err, ErrNoBracket) {
		t.Errorf("early err = %v", err)
	}
	// After the last.
	if _, err := w.ip.Temporal(context.Background(), "ndvi", sptemp.Date(1990, 1, 1), sptemp.EmptyBox(), task.RunOptions{}); !errors.Is(err, ErrNoBracket) {
		t.Errorf("late err = %v", err)
	}
	// Timeless class rejected.
	if _, err := w.ip.Temporal(context.Background(), "static_map", sptemp.Date(1986, 1, 1), sptemp.EmptyBox(), task.RunOptions{}); !errors.Is(err, ErrBadClass) {
		t.Errorf("timeless err = %v", err)
	}
	// Unknown class.
	if _, err := w.ip.Temporal(context.Background(), "ghost", sptemp.Date(1986, 1, 1), sptemp.EmptyBox(), task.RunOptions{}); err == nil {
		t.Error("unknown class must fail")
	}
}

func TestSpatialInterpolationIDW(t *testing.T) {
	w := newWorld(t)
	day := sptemp.Date(1986, 6, 1)
	// Two tiles east and west of the target, equidistant.
	w.insertNDVI(t, day, 0.2, 1, sptemp.NewBox(0, 0, 100, 100))   // center (50,50)
	w.insertNDVI(t, day, 0.6, 0, sptemp.NewBox(200, 0, 300, 100)) // center (250,50)
	target := sptemp.NewBox(100, 0, 200, 100)                     // center (150,50)

	oid, err := w.ip.Spatial(context.Background(), "ndvi", target, day, 2, task.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.obj.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	img, _ := value.AsImage(got.Attrs["data"])
	// Equidistant: plain average.
	if v, _ := img.At(0, 0); math.Abs(v-0.4) > 1e-6 {
		t.Errorf("pixel = %g, want 0.4", v)
	}
	if !got.Extent.Space.Equal(target) {
		t.Errorf("extent = %s", got.Extent.Space)
	}
	tk, ok := w.ip.Exec.Producer(oid)
	if !ok || tk.Process != "spatial_interpolation" {
		t.Errorf("task = %+v", tk)
	}
	if len(tk.Inputs["neighbors"]) != 2 {
		t.Errorf("neighbors = %v", tk.Inputs)
	}
}

func TestSpatialInterpolationExactHit(t *testing.T) {
	w := newWorld(t)
	day := sptemp.Date(1986, 6, 1)
	w.insertNDVI(t, day, 0.3, 1, sptemp.NewBox(0, 0, 100, 100))
	w.insertNDVI(t, day, 0.9, 1, sptemp.NewBox(500, 500, 600, 600))
	// Target centered exactly on the first tile: weight collapses to it.
	oid, err := w.ip.Spatial(context.Background(), "ndvi", sptemp.NewBox(0, 0, 100, 100), day, 2, task.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := w.obj.Get(oid)
	img, _ := value.AsImage(got.Attrs["data"])
	// The blend pipeline runs in float4, so compare at single precision.
	if v, _ := img.At(0, 0); math.Abs(v-0.3) > 1e-6 {
		t.Errorf("exact hit pixel = %g, want 0.3", v)
	}
}

func TestSpatialInterpolationNoNeighbors(t *testing.T) {
	w := newWorld(t)
	if _, err := w.ip.Spatial(context.Background(), "ndvi", sptemp.NewBox(0, 0, 1, 1), sptemp.Date(1986, 1, 1), 2, task.RunOptions{}); !errors.Is(err, ErrNoNeighbor) {
		t.Errorf("no neighbours err = %v", err)
	}
}

func TestBlendValuesValidation(t *testing.T) {
	reg := adt.NewStandardRegistry()
	if _, err := blendValues(reg, value.TypeFloat, nil, nil); err == nil {
		t.Error("empty blend must fail")
	}
	if _, err := blendValues(reg, value.TypeFloat, []value.Value{value.Float(1)}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch must fail")
	}
	// Int blend rounds.
	v, err := blendValues(reg, value.TypeInt, []value.Value{value.Int(1), value.Int(2)}, []float64{0.5, 0.5})
	if err != nil || v.(value.Int) != 2 {
		t.Errorf("int blend = %v, %v", v, err)
	}
}

// TestTemporalSingleFlight: concurrent identical interpolations must
// share one stored object instead of inserting duplicates.
func TestTemporalSingleFlight(t *testing.T) {
	w := newWorld(t)
	box := sptemp.NewBox(0, 0, 100, 100)
	w.insertNDVI(t, sptemp.Date(1986, 1, 1), 0.2, 0.9, box)
	w.insertNDVI(t, sptemp.Date(1986, 3, 1), 0.6, 0.5, box)
	mid := sptemp.Date(1986, 1, 31)

	const n = 8
	var wg sync.WaitGroup
	oids := make([]object.OID, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			oids[i], errs[i] = w.ip.Temporal(context.Background(), "ndvi", mid, sptemp.EmptyBox(), task.RunOptions{})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if oids[i] != oids[0] {
			t.Errorf("caller %d got object %d, want shared %d", i, oids[i], oids[0])
		}
	}
	// 2 stored observations + exactly 1 interpolated object.
	if got := w.obj.Count("ndvi"); got != 3 {
		t.Errorf("ndvi objects = %d, want 3 (no duplicate interpolations)", got)
	}
}
