// Package interp implements step 2 of the paper's query sequence (§2.1.5):
// "Data interpolation (temporal or spatial). Interpolation can be used in
// many situations where data are missing. It is a generic derivation
// process which is applicable to many data types in many domains."
//
// Temporal interpolation blends the two stored objects bracketing the
// requested instant; spatial interpolation blends nearby objects by
// inverse distance. Both record their derivation as external tasks so
// interpolated data carries lineage like any other derived data.
package interp

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/sflight"
	"gaea/internal/sptemp"
	"gaea/internal/task"
	"gaea/internal/value"
)

// Errors returned by the interpolator.
var (
	ErrNoBracket  = errors.New("interp: no bracketing observations")
	ErrNoNeighbor = errors.New("interp: no neighbouring observations")
	ErrBadClass   = errors.New("interp: class not interpolatable")
)

// Interpolator derives missing objects from stored ones. Concurrent
// identical interpolations are single-flight: N callers asking for the
// same class/instant/box share one stored object instead of inserting N
// duplicates (sequential repeats are answered by retrieval at the query
// layer, so in-flight dedup closes the only duplication window).
type Interpolator struct {
	Cat  *catalog.Catalog
	Obj  *object.Store
	Reg  *adt.Registry
	Exec *task.Executor
	// Stale reports whether an object is marked stale by the derived-data
	// manager (nil: nothing is ever stale). Stale observations are
	// excluded from bracketing and neighbour selection — interpolating
	// over outdated data would launder it into fresh-looking objects.
	Stale func(object.OID) bool

	flights sflight.Group[object.OID]
}

func (ip *Interpolator) isStale(oid object.OID) bool {
	return ip.Stale != nil && ip.Stale(oid)
}

// Temporal derives an object of the class at the requested instant by
// linear interpolation between the nearest stored objects before and after
// it (within the spatial predicate). Image and float attributes are
// blended; other attributes are copied from the nearer endpoint. The new
// object is stored and its derivation recorded.
func (ip *Interpolator) Temporal(ctx context.Context, class string, at sptemp.AbsTime, spatial sptemp.Box, opts task.RunOptions) (object.OID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	key := fmt.Sprintf("T|%s|%d|%v", class, at, spatial)
	oid, _, err := ip.flights.Do(ctx, key, func() (object.OID, error) {
		return ip.temporal(ctx, class, at, spatial, opts)
	})
	return oid, err
}

func (ip *Interpolator) temporal(ctx context.Context, class string, at sptemp.AbsTime, spatial sptemp.Box, opts task.RunOptions) (object.OID, error) {
	cls, err := ip.Cat.Class(class)
	if err != nil {
		return 0, err
	}
	if !cls.HasTemporal {
		return 0, fmt.Errorf("%w: %s has no temporal extent", ErrBadClass, class)
	}
	pred := sptemp.Extent{Frame: cls.Frame, Space: spatial}
	oids, err := ip.Obj.Query(class, pred)
	if err != nil {
		return 0, err
	}
	before, after, err := ip.bracket(oids, at)
	if err != nil {
		return 0, err
	}
	ob, err := ip.Obj.Get(before)
	if err != nil {
		return 0, err
	}
	oa, err := ip.Obj.Get(after)
	if err != nil {
		return 0, err
	}
	tb, ta := ob.Extent.TimeIv.Start, oa.Extent.TimeIv.Start
	var frac float64
	if ta != tb {
		frac = float64(at-tb) / float64(ta-tb)
	}
	attrs, err := ip.blendPair(cls, ob, oa, frac)
	if err != nil {
		return 0, err
	}
	ext := sptemp.AtInstant(cls.Frame, ob.Extent.Space.Intersection(oa.Extent.Space), at)
	out := &object.Object{Class: class, Attrs: attrs, Extent: ext}
	oid, err := ip.Obj.Insert(out)
	if err != nil {
		return 0, err
	}
	if opts.Note == "" {
		opts.Note = fmt.Sprintf("temporal interpolation at %s", at)
	}
	if _, err := ip.Exec.RecordExternal("temporal_interpolation",
		map[string][]object.OID{"before": {before}, "after": {after}}, oid, class, opts); err != nil {
		return 0, err
	}
	return oid, nil
}

// bracket picks the latest object at or before `at` and the earliest at or
// after it. Objects exactly at `at` never occur here in practice — the
// query layer retrieves exact matches directly.
func (ip *Interpolator) bracket(oids []object.OID, at sptemp.AbsTime) (before, after object.OID, err error) {
	type obs struct {
		oid object.OID
		t   sptemp.AbsTime
	}
	var all []obs
	for _, oid := range oids {
		if ip.isStale(oid) {
			continue
		}
		o, err := ip.Obj.Get(oid)
		if err != nil || !o.Extent.HasTime {
			continue
		}
		all = append(all, obs{oid: oid, t: o.Extent.TimeIv.Start})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t < all[j].t
		}
		return all[i].oid < all[j].oid
	})
	bi, ai := -1, -1
	for i, o := range all {
		if o.t <= at {
			bi = i
		}
		if o.t >= at && ai < 0 {
			ai = i
		}
	}
	if bi < 0 || ai < 0 {
		return 0, 0, fmt.Errorf("%w: instant %s outside observed range", ErrNoBracket, at)
	}
	return all[bi].oid, all[ai].oid, nil
}

// blendPair blends attribute values of two objects with weight frac on
// the second.
func (ip *Interpolator) blendPair(cls *catalog.Class, a, b *object.Object, frac float64) (map[string]value.Value, error) {
	attrs := make(map[string]value.Value, len(cls.Attrs))
	for _, spec := range cls.Attrs {
		va, vb := a.Attrs[spec.Name], b.Attrs[spec.Name]
		blended, err := blendValues(ip.Reg, spec.Type, []value.Value{va, vb}, []float64{1 - frac, frac})
		if err != nil {
			return nil, fmt.Errorf("interp: attribute %s: %w", spec.Name, err)
		}
		attrs[spec.Name] = blended
	}
	return attrs, nil
}

// Spatial derives an object covering the target box at the given instant
// by inverse-distance weighting over the k nearest stored objects
// (matching the instant). All image attributes must share shape.
func (ip *Interpolator) Spatial(ctx context.Context, class string, target sptemp.Box, at sptemp.AbsTime, k int, opts task.RunOptions) (object.OID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if k < 1 {
		k = 2
	}
	key := fmt.Sprintf("S|%s|%d|%v|%d", class, at, target, k)
	oid, _, err := ip.flights.Do(ctx, key, func() (object.OID, error) {
		return ip.spatial(ctx, class, target, at, k, opts)
	})
	return oid, err
}

func (ip *Interpolator) spatial(ctx context.Context, class string, target sptemp.Box, at sptemp.AbsTime, k int, opts task.RunOptions) (object.OID, error) {
	cls, err := ip.Cat.Class(class)
	if err != nil {
		return 0, err
	}
	if k < 1 {
		k = 2
	}
	pred := sptemp.Extent{Frame: cls.Frame, Space: sptemp.EmptyBox()}
	if cls.HasTemporal {
		pred.TimeIv = sptemp.Instant(at)
		pred.HasTime = true
	}
	oids, err := ip.Obj.Query(class, pred)
	if err != nil {
		return 0, err
	}
	type neigh struct {
		oid  object.OID
		obj  *object.Object
		dist float64
	}
	var ns []neigh
	for _, oid := range oids {
		if ip.isStale(oid) {
			continue
		}
		o, err := ip.Obj.Get(oid)
		if err != nil {
			continue
		}
		d, err := o.Extent.Space.CenterDistance(target)
		if err != nil {
			continue
		}
		ns = append(ns, neigh{oid: oid, obj: o, dist: d})
	}
	if len(ns) == 0 {
		return 0, ErrNoNeighbor
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].dist != ns[j].dist {
			return ns[i].dist < ns[j].dist
		}
		return ns[i].oid < ns[j].oid
	})
	if k > len(ns) {
		k = len(ns)
	}
	ns = ns[:k]
	// Inverse-distance weights (an exact hit takes all the weight).
	weights := make([]float64, k)
	var total float64
	for i, n := range ns {
		if n.dist == 0 {
			for j := range weights {
				weights[j] = 0
			}
			weights[i] = 1
			total = 1
			break
		}
		weights[i] = 1 / n.dist
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	attrs := make(map[string]value.Value, len(cls.Attrs))
	for _, spec := range cls.Attrs {
		vals := make([]value.Value, k)
		for i, n := range ns {
			vals[i] = n.obj.Attrs[spec.Name]
		}
		blended, err := blendValues(ip.Reg, spec.Type, vals, weights)
		if err != nil {
			return 0, fmt.Errorf("interp: attribute %s: %w", spec.Name, err)
		}
		attrs[spec.Name] = blended
	}
	ext := sptemp.Extent{Frame: cls.Frame, Space: target}
	if cls.HasTemporal {
		ext.TimeIv = sptemp.Instant(at)
		ext.HasTime = true
	}
	oid, err := ip.Obj.Insert(&object.Object{Class: class, Attrs: attrs, Extent: ext})
	if err != nil {
		return 0, err
	}
	inputs := map[string][]object.OID{"neighbors": {}}
	for _, n := range ns {
		inputs["neighbors"] = append(inputs["neighbors"], n.oid)
	}
	if opts.Note == "" {
		opts.Note = fmt.Sprintf("spatial interpolation over %d neighbours", k)
	}
	if _, err := ip.Exec.RecordExternal("spatial_interpolation", inputs, oid, class, opts); err != nil {
		return 0, err
	}
	return oid, nil
}

// blendValues combines same-typed values with the given weights: images
// and floats blend linearly, ints round the blend, everything else takes
// the heaviest-weighted value.
func blendValues(reg *adt.Registry, t value.Type, vals []value.Value, weights []float64) (value.Value, error) {
	if len(vals) == 0 || len(vals) != len(weights) {
		return nil, fmt.Errorf("blend needs matching values and weights")
	}
	switch t {
	case value.TypeImage:
		var acc value.Value
		for i, v := range vals {
			scaled, err := reg.Apply("scale_offset", v, value.Float(weights[i]), value.Float(0))
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = scaled
				continue
			}
			if acc, err = reg.Apply("img_add", acc, scaled); err != nil {
				return nil, err
			}
		}
		return acc, nil
	case value.TypeFloat, value.TypeInt:
		var sum float64
		for i, v := range vals {
			f, err := value.AsFloat(v)
			if err != nil {
				return nil, err
			}
			sum += weights[i] * f
		}
		if t == value.TypeInt {
			return value.Int(int64(sum + 0.5)), nil
		}
		return value.Float(sum), nil
	default:
		best := 0
		for i := range weights {
			if weights[i] > weights[best] {
				best = i
			}
		}
		return vals[best], nil
	}
}
