package object

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"gaea/internal/catalog"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

type fixture struct {
	st  *storage.Store
	cat *catalog.Catalog
	obj *Store
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defineTestClasses(t, cat)
	obj, err := Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{st: st, cat: cat, obj: obj}
}

func defineTestClasses(t *testing.T, cat *catalog.Catalog) {
	t.Helper()
	scenes := &catalog.Class{
		Name: "landsat_tm", Kind: catalog.KindBase,
		Attrs: []catalog.Attr{
			{Name: "band", Type: value.TypeString},
			{Name: "data", Type: value.TypeImage},
		},
		Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
	}
	if err := cat.Define(scenes); err != nil {
		t.Fatal(err)
	}
	stats := &catalog.Class{
		Name: "region_stats", Kind: catalog.KindBase,
		Attrs: []catalog.Attr{
			{Name: "name", Type: value.TypeString},
			{Name: "mean_rain", Type: value.TypeFloat},
		},
		Frame: sptemp.DefaultFrame, HasSpatial: true,
	}
	if err := cat.Define(stats); err != nil {
		t.Fatal(err)
	}
}

func sceneObject(band string, x float64, t sptemp.AbsTime) *Object {
	img := raster.MustNew(4, 4, raster.PixFloat4)
	img.Set(0, 0, 0.5)
	return &Object{
		Class: "landsat_tm",
		Attrs: map[string]value.Value{
			"band": value.String_(band),
			"data": value.Image{Img: img},
		},
		Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(x, 0, x+100, 100), t),
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	f := newFixture(t)
	oid, err := f.obj.Insert(sceneObject("red", 0, sptemp.Date(1986, 1, 15)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.obj.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != "landsat_tm" || got.OID != oid {
		t.Errorf("identity wrong: %+v", got)
	}
	band, err := got.Attr("band")
	if err != nil || band.(value.String_) != "red" {
		t.Errorf("band = %v, %v", band, err)
	}
	img, err := value.AsImage(got.Attrs["data"])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := img.At(0, 0); v != 0.5 {
		t.Errorf("image pixel lost: %g", v)
	}
	// Extent accessors.
	se, err := got.Attr("spatialextent")
	if err != nil || se.(value.Box).Box().IsEmpty() {
		t.Errorf("spatialextent = %v, %v", se, err)
	}
	ts, err := got.Attr("timestamp")
	if err != nil || ts.(value.AbsTime).Time() != sptemp.Date(1986, 1, 15) {
		t.Errorf("timestamp = %v, %v", ts, err)
	}
	if _, err := got.Attr("nope"); !errors.Is(err, ErrBadAttr) {
		t.Errorf("missing attr err = %v", err)
	}
}

func TestInsertValidation(t *testing.T) {
	f := newFixture(t)
	// Unknown class.
	bad := sceneObject("red", 0, sptemp.Date(1986, 1, 1))
	bad.Class = "ghost"
	if _, err := f.obj.Insert(bad); err == nil {
		t.Error("unknown class must fail")
	}
	// Missing attribute.
	m := sceneObject("red", 0, sptemp.Date(1986, 1, 1))
	delete(m.Attrs, "band")
	if _, err := f.obj.Insert(m); !errors.Is(err, ErrBadAttr) {
		t.Errorf("missing attr err = %v", err)
	}
	// Extra attribute.
	e := sceneObject("red", 0, sptemp.Date(1986, 1, 1))
	e.Attrs["extra"] = value.Int(1)
	if _, err := f.obj.Insert(e); !errors.Is(err, ErrBadAttr) {
		t.Errorf("extra attr err = %v", err)
	}
	// Wrong type.
	w := sceneObject("red", 0, sptemp.Date(1986, 1, 1))
	w.Attrs["band"] = value.Int(3)
	if _, err := f.obj.Insert(w); !errors.Is(err, ErrBadAttr) {
		t.Errorf("wrong type err = %v", err)
	}
	// Missing temporal extent on temporal class.
	n := sceneObject("red", 0, sptemp.Date(1986, 1, 1))
	n.Extent.HasTime = false
	if _, err := f.obj.Insert(n); !errors.Is(err, ErrBadAttr) {
		t.Errorf("missing time err = %v", err)
	}
	// Wrong frame.
	fr := sceneObject("red", 0, sptemp.Date(1986, 1, 1))
	fr.Extent.Frame = sptemp.Frame{System: sptemp.RefLongLat, Unit: sptemp.UnitDegree}
	if _, err := f.obj.Insert(fr); !errors.Is(err, ErrBadAttr) {
		t.Errorf("wrong frame err = %v", err)
	}
}

func TestQueryBySpaceAndTime(t *testing.T) {
	f := newFixture(t)
	jan := sptemp.Date(1986, 1, 15)
	jun := sptemp.Date(1986, 6, 15)
	o1, _ := f.obj.Insert(sceneObject("red", 0, jan))    // west, january
	o2, _ := f.obj.Insert(sceneObject("red", 1000, jan)) // east, january
	o3, _ := f.obj.Insert(sceneObject("red", 0, jun))    // west, june

	// Spatial only: west box.
	got, err := f.obj.Query("landsat_tm", sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 50, 50)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []OID{o1, o3}) {
		t.Errorf("west query = %v, want [%d %d]", got, o1, o3)
	}
	// Spatio-temporal: west + january.
	pred := sptemp.NewExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 50, 50),
		sptemp.NewInterval(sptemp.Date(1986, 1, 1), sptemp.Date(1986, 2, 1)))
	got, err = f.obj.Query("landsat_tm", pred)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []OID{o1}) {
		t.Errorf("west+jan query = %v, want [%d]", got, o1)
	}
	// Temporal only.
	tpred := sptemp.Extent{Frame: sptemp.DefaultFrame, Space: sptemp.EmptyBox(),
		TimeIv: sptemp.NewInterval(sptemp.Date(1986, 1, 1), sptemp.Date(1986, 2, 1)), HasTime: true}
	got, err = f.obj.Query("landsat_tm", tpred)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []OID{o1, o2}) {
		t.Errorf("january query = %v", got)
	}
	// No predicate at all: all members.
	all, err := f.obj.Query("landsat_tm", sptemp.Extent{Frame: sptemp.DefaultFrame, Space: sptemp.EmptyBox()})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("all query = %v", all)
	}
	// Unknown class.
	if _, err := f.obj.Query("ghost", sptemp.Extent{}); err == nil {
		t.Error("unknown class must fail")
	}
}

func TestDeleteRemovesEverything(t *testing.T) {
	f := newFixture(t)
	oid, _ := f.obj.Insert(sceneObject("red", 0, sptemp.Date(1986, 1, 15)))
	blobs, _ := f.st.Blobs().IDs()
	if len(blobs) != 1 {
		t.Fatalf("expected 1 blob, got %d", len(blobs))
	}
	if err := f.obj.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.obj.Get(oid); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted get err = %v", err)
	}
	if err := f.obj.Delete(oid); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	// The deleted version (and its blobs) survive for pinned snapshots
	// until GC reclaims the chain.
	if _, err := f.obj.GC(); err != nil {
		t.Fatal(err)
	}
	blobs, _ = f.st.Blobs().IDs()
	if len(blobs) != 0 {
		t.Errorf("blobs leaked: %v", blobs)
	}
	if got, _ := f.obj.Query("landsat_tm", sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 50, 50))); len(got) != 0 {
		t.Errorf("index still returns deleted object: %v", got)
	}
	if f.obj.Count("landsat_tm") != 0 {
		t.Error("count wrong after delete")
	}
}

func TestReopenRebuildsIndexes(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := catalog.Open(st)
	defineTestClasses(t, cat)
	obj, _ := Open(st, cat)
	oid, err := obj.Insert(sceneObject("nir", 0, sptemp.Date(1989, 6, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cat2, _ := catalog.Open(st2)
	obj2, err := Open(st2, cat2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["band"].(value.String_) != "nir" {
		t.Error("reloaded object wrong")
	}
	// Indexes answer queries after reopen.
	hits, err := obj2.Query("landsat_tm", sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 10, 10)))
	if err != nil || len(hits) != 1 || hits[0] != oid {
		t.Errorf("query after reopen = %v, %v", hits, err)
	}
	if !reflect.DeepEqual(obj2.Members("landsat_tm"), []OID{oid}) {
		t.Error("members after reopen wrong")
	}
}

func TestTimelessClass(t *testing.T) {
	f := newFixture(t)
	o := &Object{
		Class: "region_stats",
		Attrs: map[string]value.Value{
			"name":      value.String_("sahel"),
			"mean_rain": value.Float(220),
		},
		Extent: sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 10, 10)),
	}
	oid, err := f.obj.Insert(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.obj.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Attr("timestamp"); err == nil {
		t.Error("timeless object has no timestamp accessor")
	}
	// Timed predicate still matches timeless objects.
	pred := sptemp.NewExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 5, 5), sptemp.Instant(sptemp.Date(1990, 1, 1)))
	hits, err := f.obj.Query("region_stats", pred)
	if err != nil || len(hits) != 1 {
		t.Errorf("timeless query = %v, %v", hits, err)
	}
}

func TestNearestInTime(t *testing.T) {
	f := newFixture(t)
	o1, _ := f.obj.Insert(sceneObject("red", 0, sptemp.Date(1986, 1, 1)))
	o2, _ := f.obj.Insert(sceneObject("red", 0, sptemp.Date(1986, 6, 1)))
	o3, _ := f.obj.Insert(sceneObject("red", 0, sptemp.Date(1987, 1, 1)))
	got := f.obj.NearestInTime("landsat_tm", sptemp.Date(1986, 5, 1), 2)
	if !reflect.DeepEqual(got, []OID{o2, o1}) {
		t.Errorf("NearestInTime = %v, want [%d %d]", got, o2, o1)
	}
	_ = o3
	if got := f.obj.NearestInTime("ghost", sptemp.Date(1986, 1, 1), 1); got != nil {
		t.Errorf("unknown class nearest = %v", got)
	}
}

func TestMultipleImageAttributes(t *testing.T) {
	f := newFixture(t)
	cls := &catalog.Class{
		Name: "pair", Kind: catalog.KindBase,
		Attrs: []catalog.Attr{
			{Name: "a", Type: value.TypeImage},
			{Name: "b", Type: value.TypeImage},
		},
		Frame: sptemp.DefaultFrame, HasSpatial: true,
	}
	if err := f.cat.Define(cls); err != nil {
		t.Fatal(err)
	}
	imgA := raster.MustNew(2, 2, raster.PixChar)
	imgA.Set(0, 0, 1)
	imgB := raster.MustNew(3, 3, raster.PixChar)
	imgB.Set(1, 1, 2)
	oid, err := f.obj.Insert(&Object{
		Class:  "pair",
		Attrs:  map[string]value.Value{"a": value.Image{Img: imgA}, "b": value.Image{Img: imgB}},
		Extent: sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 1, 1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.obj.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := value.AsImage(got.Attrs["a"])
	b, _ := value.AsImage(got.Attrs["b"])
	if a.Rows() != 2 || b.Rows() != 3 {
		t.Error("image attributes swapped or lost")
	}
	if va, _ := a.At(0, 0); va != 1 {
		t.Error("image a content wrong")
	}
	if vb, _ := b.At(1, 1); vb != 2 {
		t.Error("image b content wrong")
	}
}

func TestUpdateInPlace(t *testing.T) {
	f := newFixture(t)
	day := sptemp.Date(1986, 6, 1)
	oid, err := f.obj.Insert(sceneObject("red", 0, day))
	if err != nil {
		t.Fatal(err)
	}

	// Replace the payload and move the extent.
	img := raster.MustNew(4, 4, raster.PixFloat4)
	img.Set(0, 0, 0.9)
	day2 := sptemp.Date(1989, 6, 1)
	upd := &Object{
		OID:   oid,
		Class: "landsat_tm",
		Attrs: map[string]value.Value{
			"band": value.String_("nir"),
			"data": value.Image{Img: img},
		},
		Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(500, 0, 600, 100), day2),
	}
	if err := f.obj.Update(upd); err != nil {
		t.Fatal(err)
	}
	got, err := f.obj.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != oid {
		t.Errorf("OID changed: %d", got.OID)
	}
	if got.Attrs["band"].(value.String_) != "nir" {
		t.Errorf("band = %v", got.Attrs["band"])
	}
	v, _ := got.Attrs["data"].(value.Image).Img.At(0, 0)
	if v < 0.89 || v > 0.91 {
		t.Errorf("updated pixel = %v", v)
	}

	// The extent indexes answer for the new extent only.
	hits, err := f.obj.Query("landsat_tm", sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(500, 0, 600, 100)))
	if err != nil || len(hits) != 1 || hits[0] != oid {
		t.Errorf("query new extent = %v, %v", hits, err)
	}
	hits, err = f.obj.Query("landsat_tm", sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 100, 100)))
	if err != nil || len(hits) != 0 {
		t.Errorf("query old extent = %v, %v", hits, err)
	}

	// One live object, but TWO stored versions until GC reclaims the
	// superseded one (it stays reachable for pinned snapshots).
	if n := f.obj.Count("landsat_tm"); n != 1 {
		t.Errorf("count = %d", n)
	}
	_, records := f.st.HeapStats("obj_landsat_tm")
	if records != 2 {
		t.Errorf("heap records before GC = %d, want 2 (version chain)", records)
	}
	ids, err := f.st.Blobs().IDs()
	if err != nil || len(ids) != 2 {
		t.Errorf("blobs before GC = %v, %v", ids, err)
	}
	if n, err := f.obj.GC(); err != nil || n != 1 {
		t.Fatalf("GC = %d, %v, want 1 version reclaimed", n, err)
	}
	_, records = f.st.HeapStats("obj_landsat_tm")
	if records != 1 {
		t.Errorf("heap records after GC = %d, want 1", records)
	}
	ids, err = f.st.Blobs().IDs()
	if err != nil || len(ids) != 1 {
		t.Errorf("blobs after GC = %v, %v", ids, err)
	}
}

func TestUpdateValidation(t *testing.T) {
	f := newFixture(t)
	day := sptemp.Date(1986, 6, 1)
	oid, err := f.obj.Insert(sceneObject("red", 0, day))
	if err != nil {
		t.Fatal(err)
	}
	// Unknown OID.
	missing := sceneObject("red", 0, day)
	missing.OID = oid + 999
	if err := f.obj.Update(missing); !errors.Is(err, ErrNotFound) {
		t.Errorf("update unknown oid = %v", err)
	}
	// No OID at all.
	if err := f.obj.Update(sceneObject("red", 0, day)); !errors.Is(err, ErrBadAttr) {
		t.Errorf("update without oid = %v", err)
	}
	// Class change is refused.
	if _, err := f.obj.Insert(&Object{
		Class:  "region_stats",
		Attrs:  map[string]value.Value{"name": value.String_("x"), "mean_rain": value.Float(1)},
		Extent: sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 1, 1)),
	}); err != nil {
		t.Fatal(err)
	}
	wrong := sceneObject("red", 0, day)
	wrong.OID = oid
	wrong.Class = "region_stats"
	wrong.Attrs = map[string]value.Value{"name": value.String_("x"), "mean_rain": value.Float(1)}
	wrong.Extent = sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 1, 1))
	if err := f.obj.Update(wrong); !errors.Is(err, ErrBadAttr) {
		t.Errorf("update with class change = %v", err)
	}
	// Schema violations are refused before anything is written.
	bad := sceneObject("red", 0, day)
	bad.OID = oid
	delete(bad.Attrs, "band")
	if err := f.obj.Update(bad); !errors.Is(err, ErrBadAttr) {
		t.Errorf("update missing attr = %v", err)
	}
}

func TestUpdatePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defineTestClasses(t, cat)
	obj, err := Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	day := sptemp.Date(1986, 6, 1)
	oid, err := obj.Insert(sceneObject("red", 0, day))
	if err != nil {
		t.Fatal(err)
	}
	upd := sceneObject("swir", 0, day)
	upd.OID = oid
	if err := obj.Update(upd); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	cat2, err := catalog.Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := Open(st2, cat2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["band"].(value.String_) != "swir" {
		t.Errorf("band after reopen = %v", got.Attrs["band"])
	}
	if n := obj2.Count("landsat_tm"); n != 1 {
		t.Errorf("count after reopen = %d", n)
	}
}

func TestExistsAndRecordSize(t *testing.T) {
	f := newFixture(t)
	day := sptemp.Date(1986, 6, 1)
	oid, err := f.obj.Insert(sceneObject("red", 0, day))
	if err != nil {
		t.Fatal(err)
	}
	if !f.obj.Exists(oid) {
		t.Error("Exists(live) = false")
	}
	if f.obj.Exists(oid + 999) {
		t.Error("Exists(missing) = true")
	}
	n, err := f.obj.RecordSize(oid)
	if err != nil {
		t.Fatal(err)
	}
	// 4x4 float image blob alone is 4*4*4+ bytes; the record adds more.
	if n < 64 {
		t.Errorf("record size = %d, implausibly small", n)
	}
	if err := f.obj.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if f.obj.Exists(oid) {
		t.Error("Exists(deleted) = true")
	}
	if _, err := f.obj.RecordSize(oid); !errors.Is(err, ErrNotFound) {
		t.Errorf("RecordSize(deleted) = %v", err)
	}
}

// TestReopenHealsInterruptedUpdate leaves two version records for one
// OID (as an update whose GC never ran would). Reopen must rebuild the
// chain so Get serves the newest version, and GC must prune the loser.
func TestReopenHealsInterruptedUpdate(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	defineTestClasses(t, cat)
	obj, err := Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	day := sptemp.Date(1986, 6, 1)
	oid, err := obj.Insert(sceneObject("red", 0, day))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-insert a newer version record for the same OID, as a crashed
	// Update whose GC never ran would leave behind.
	newer := sceneObject("nir", 0, day)
	newer.OID = oid
	rec, _, err := obj.encodeObject(newer, func(seq string) (uint64, error) { return st.NextID(seq) })
	if err != nil {
		t.Fatal(err)
	}
	stampEpoch(rec, obj.CurrentEpoch()+1)
	if _, err := st.Insert(heapFor("landsat_tm"), rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := storage.Open(dir, storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	cat2, err := catalog.Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := Open(st2, cat2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj2.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["band"].(value.String_) != "nir" {
		t.Errorf("band after reopen = %v, want the newer version", got.Attrs["band"])
	}
	if n := obj2.Count("landsat_tm"); n != 1 {
		t.Errorf("count = %d", n)
	}
	// Both versions survive the reopen as a chain; GC prunes the loser.
	if n, err := obj2.GC(); err != nil || n != 1 {
		t.Fatalf("GC = %d, %v, want 1", n, err)
	}
	_, records := st2.HeapStats(heapFor("landsat_tm"))
	if records != 1 {
		t.Errorf("heap records after GC = %d, want 1", records)
	}
}

// TestLegacyRecordDecode: records written before the revision stamp
// (magic "GOBJ", no rev field) must still open and read correctly.
func TestLegacyRecordDecode(t *testing.T) {
	f := newFixture(t)
	// Hand-encode a legacy record for a region_stats object (no blobs).
	var buf []byte
	buf = append(buf, "GOBJ"...)
	oid := OID(4242)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
	buf = appendStr16(buf, "region_stats")
	buf = appendStr16(buf, string(sptemp.DefaultFrame.System))
	buf = appendStr16(buf, string(sptemp.DefaultFrame.Unit))
	for _, v := range []float64{0, 0, 10, 10} {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(v))
	}
	buf = append(buf, 0)                           // no temporal extent
	buf = binary.LittleEndian.AppendUint64(buf, 0) // interval start
	buf = binary.LittleEndian.AppendUint64(buf, 0) // interval end
	buf = binary.LittleEndian.AppendUint16(buf, 2) // two attrs, sorted
	for _, a := range []struct {
		name string
		val  value.Value
	}{{"mean_rain", value.Float(250)}, {"name", value.String_("west")}} {
		buf = appendStr16(buf, a.name)
		enc, err := value.Encode(a.val)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}

	obj, blobs, epoch, deleted, err := decodeObject(buf)
	if err != nil {
		t.Fatal(err)
	}
	if obj.OID != oid || obj.Class != "region_stats" || epoch != 0 || deleted || len(blobs) != 0 {
		t.Errorf("legacy decode = %+v epoch=%d deleted=%v blobs=%v", obj, epoch, deleted, blobs)
	}
	if obj.Attrs["mean_rain"].(value.Float) != 250 || obj.Attrs["name"].(value.String_) != "west" {
		t.Errorf("legacy attrs = %v", obj.Attrs)
	}
	ext, err := decodeExtentOnly(buf)
	if err != nil || ext.Space.MaxX != 10 || ext.HasTime {
		t.Errorf("legacy extent = %+v, %v", ext, err)
	}

	// A legacy record in a heap coexists with new-format records across
	// an open: insert it directly and rebuild the store.
	if _, err := f.st.Insert(heapFor("region_stats"), buf); err != nil {
		t.Fatal(err)
	}
	obj2, err := Open(f.st, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obj2.Get(oid)
	if err != nil || got.Attrs["name"].(value.String_) != "west" {
		t.Errorf("legacy via store = %+v, %v", got, err)
	}
}
