package object

// Raw record access: the zero-copy path under the v2 wire protocol.
// Objects are encoded exactly once — at commit, into the GOB3 record the
// storage engine persists — so the service layer can ship those stored
// bytes verbatim instead of decoding every attribute into value.Value
// form and re-encoding it per response. GetRawAt hands out the record
// (plus the payloads of any offloaded image blobs it references) and
// DecodeWire reverses it on the client side, producing exactly what
// GetAt would have.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"gaea/internal/raster"
	"gaea/internal/storage"
	"gaea/internal/value"
)

// BlobPayload carries the bytes of one offloaded image blob alongside a
// raw record that references it.
type BlobPayload struct {
	ID   uint64
	Data []byte
}

// GetRawAt loads the stored GOB3 record of the version visible at a
// pinned epoch, without decoding it, plus the payload of every blob the
// record references. The returned record is a private copy (the storage
// layer copies out of its page cache), so the caller may retain and ship
// it freely.
func (s *Store) GetRawAt(oid OID, epoch uint64) ([]byte, []BlobPayload, error) {
	heap, v, ok := s.resolve(oid, epoch)
	if !ok {
		return nil, nil, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	rec, err := s.st.Get(heap, v.rid)
	if err != nil {
		return nil, nil, err
	}
	ids, err := scanBlobIDs(rec)
	if err != nil {
		return nil, nil, err
	}
	var blobs []BlobPayload
	for _, id := range ids {
		data, err := s.st.Blobs().Get(storage.BlobID(id))
		if err != nil {
			return nil, nil, fmt.Errorf("object: oid %d blob %d: %w", oid, id, err)
		}
		blobs = append(blobs, BlobPayload{ID: id, Data: data})
	}
	return rec, blobs, nil
}

// scanBlobIDs walks a record's attribute table collecting blob
// references without decoding any attribute value — the only work the
// raw path does per record.
func scanBlobIDs(rec []byte) ([]uint64, error) {
	r := &reader{buf: rec}
	magic := string(r.bytes(4))
	switch magic {
	case objMagic, objMagicRev, objMagicLegacy:
	default:
		return nil, fmt.Errorf("object: bad object magic")
	}
	r.u64() // oid
	if magic != objMagicLegacy {
		r.u64() // epoch / rev
	}
	if magic == objMagic {
		if r.u8()&flagTombstone != 0 {
			return nil, fmt.Errorf("object: tombstone record has no payload")
		}
	}
	r.str16()              // class
	r.str16()              // frame system
	r.str16()              // frame unit
	r.bytes(4*8 + 1 + 2*8) // box, hasTime, interval
	n := int(r.u16())
	var ids []uint64
	for i := 0; i < n; i++ {
		r.str16() // name
		switch r.u8() {
		case 1:
			ids = append(ids, r.u64())
		default:
			r.bytes(int(r.u32()))
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return ids, nil
}

// EncodeWire serialises an object as a self-contained GOB3 record with
// every attribute inline — no blob offload, no storage side effects —
// so a relay that holds a decoded *Object (the federation router
// re-shipping a shard's page upstream) can speak the raw-record wire
// path without owning a store. DecodeWire(EncodeWire(o), nil) returns
// an object equal to o. The epoch slot is zero: raw-path consumers pin
// epochs out of band (cursors, leases), not from the record.
func EncodeWire(obj *Object) ([]byte, error) {
	buf := []byte(objMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.OID))
	buf = binary.LittleEndian.AppendUint64(buf, 0) // epoch slot (unused on the wire)
	buf = append(buf, 0)                           // flags
	buf = appendStr16(buf, obj.Class)
	buf = appendStr16(buf, string(obj.Extent.Frame.System))
	buf = appendStr16(buf, string(obj.Extent.Frame.Unit))
	for _, f := range []float64{obj.Extent.Space.MinX, obj.Extent.Space.MinY, obj.Extent.Space.MaxX, obj.Extent.Space.MaxY} {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(f))
	}
	if obj.Extent.HasTime {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.Extent.TimeIv.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.Extent.TimeIv.End))

	names := make([]string, 0, len(obj.Attrs))
	for n := range obj.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(names)))
	for _, n := range names {
		enc, err := value.Encode(obj.Attrs[n])
		if err != nil {
			return nil, fmt.Errorf("object: attribute %q: %w", n, err)
		}
		buf = appendStr16(buf, n)
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// DecodeWire decodes a stored record shipped verbatim over the wire,
// resolving blob references against the payload table that travelled
// with it. It produces exactly what GetAt produces for the same version.
func DecodeWire(rec []byte, blobs []BlobPayload) (*Object, error) {
	obj, _, _, deleted, err := decodeObject(rec)
	if err != nil {
		return nil, err
	}
	if deleted {
		return nil, fmt.Errorf("object: tombstone record on the wire")
	}
	for name, val := range obj.Attrs {
		ref, ok := val.(blobRef)
		if !ok {
			continue
		}
		var data []byte
		found := false
		for i := range blobs {
			if blobs[i].ID == uint64(ref.id) {
				data, found = blobs[i].Data, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("object: oid %d attribute %q: blob %d payload missing", obj.OID, name, ref.id)
		}
		img, err := raster.Unmarshal(data)
		if err != nil {
			return nil, fmt.Errorf("object: oid %d attribute %q: %w", obj.OID, name, err)
		}
		obj.Attrs[name] = value.Image{Img: img}
	}
	return obj, nil
}
