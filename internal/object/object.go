// Package object manages scientific data objects — the instances of
// non-primitive classes (§2.1.2). Every object carries an OID, its class
// name, attribute values, and its spatio-temporal extent. Objects persist
// in the storage engine; large image payloads are offloaded to the blob
// store (the paper's image ADT likewise stores a filepath, not inline
// pixels). Per-class grid and interval indexes serve the extent-qualified
// retrieval that is step 1 of the §2.1.5 query sequence.
package object

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"gaea/internal/catalog"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

// OID identifies a data object globally.
type OID uint64

// Errors returned by the object store.
var (
	ErrNotFound = errors.New("object: not found")
	ErrBadAttr  = errors.New("object: attribute error")
	// ErrConflict reports that an object changed (or vanished) under a
	// concurrent mutation between staging and applying a write.
	ErrConflict = errors.New("object: concurrent modification")
)

// Object is one scientific data object.
type Object struct {
	OID    OID
	Class  string
	Attrs  map[string]value.Value
	Extent sptemp.Extent
}

// Attr returns an attribute value, including the automatic extent
// accessors spatialextent and timestamp.
func (o *Object) Attr(name string) (value.Value, error) {
	switch name {
	case "spatialextent":
		return value.Box(o.Extent.Space), nil
	case "timestamp":
		if !o.Extent.HasTime {
			return nil, fmt.Errorf("%w: object %d has no temporal extent", ErrBadAttr, o.OID)
		}
		return value.AbsTime(o.Extent.TimeIv.Start), nil
	}
	v, ok := o.Attrs[name]
	if !ok {
		return nil, fmt.Errorf("%w: object %d (class %s) has no attribute %q", ErrBadAttr, o.OID, o.Class, name)
	}
	return v, nil
}

// Store persists objects and serves extent queries.
type Store struct {
	mu   sync.RWMutex
	st   *storage.Store
	cat  *catalog.Catalog
	rids map[OID]ridRef
	// Per-class extent indexes and membership, rebuilt at open.
	spatial  map[string]*sptemp.GridIndex
	temporal map[string]*sptemp.IntervalIndex
	members  map[string][]OID
	// blobsByOID tracks blob ids owned by each object for deletion.
	blobsByOID map[OID][]storage.BlobID
}

type ridRef struct {
	heap string
	rid  storage.RID
}

func heapFor(class string) string { return "obj_" + class }

// Open loads the object store, rebuilding in-memory indexes by scanning
// each class heap. A crash between Update's new-record insert and its
// old-record delete leaves two records for one OID; the per-record
// revision stamp picks the newer one and the loser is removed here
// (self-healing), so an acknowledged update can never silently revert.
func Open(st *storage.Store, cat *catalog.Catalog) (*Store, error) {
	s := &Store{
		st:         st,
		cat:        cat,
		rids:       make(map[OID]ridRef),
		spatial:    make(map[string]*sptemp.GridIndex),
		temporal:   make(map[string]*sptemp.IntervalIndex),
		members:    make(map[string][]OID),
		blobsByOID: make(map[OID][]storage.BlobID),
	}
	type rec struct {
		obj   *Object
		blobs []storage.BlobID
		rev   uint64
		rid   storage.RID
	}
	for _, class := range cat.Names() {
		heap := heapFor(class)
		best := make(map[OID]rec)
		var losers []rec
		var scanErr error
		err := st.Scan(heap, func(rid storage.RID, raw []byte) bool {
			obj, blobIDs, rev, err := decodeObject(raw)
			if err != nil {
				scanErr = fmt.Errorf("object: corrupt record %s in %s: %w", rid, heap, err)
				return false
			}
			cur := rec{obj: obj, blobs: blobIDs, rev: rev, rid: rid}
			if prev, dup := best[obj.OID]; dup {
				if cur.rev > prev.rev {
					best[obj.OID] = cur
					losers = append(losers, prev)
				} else {
					losers = append(losers, cur)
				}
				return true
			}
			best[obj.OID] = cur
			return true
		})
		if err != nil {
			return nil, err
		}
		if scanErr != nil {
			return nil, scanErr
		}
		for _, r := range best {
			s.rids[r.obj.OID] = ridRef{heap: heap, rid: r.rid}
			s.indexLocked(class, r.obj)
			s.blobsByOID[r.obj.OID] = r.blobs
		}
		for _, r := range losers {
			if err := st.Delete(heap, r.rid); err != nil && !errors.Is(err, storage.ErrNotFound) {
				return nil, err
			}
			for _, b := range r.blobs {
				if err := st.Blobs().Delete(b); err != nil && !errors.Is(err, storage.ErrBlobNotFound) {
					return nil, err
				}
			}
		}
	}
	return s, nil
}

func (s *Store) indexLocked(class string, obj *Object) {
	gi, ok := s.spatial[class]
	if !ok {
		gi = sptemp.NewGridIndex(spatialCellFor(obj.Extent.Space))
		s.spatial[class] = gi
	}
	gi.Insert(uint64(obj.OID), obj.Extent.Space)
	ti, ok := s.temporal[class]
	if !ok {
		ti = sptemp.NewIntervalIndex()
		s.temporal[class] = ti
	}
	if obj.Extent.HasTime {
		ti.Insert(uint64(obj.OID), obj.Extent.TimeIv)
	}
	s.members[class] = insertSorted(s.members[class], obj.OID)
}

func insertSorted(s []OID, o OID) []OID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= o })
	if i < len(s) && s[i] == o {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = o
	return s
}

func removeSorted(s []OID, o OID) []OID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= o })
	if i < len(s) && s[i] == o {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// spatialCellFor sizes grid cells off the first-seen extent so typical
// scene-sized boxes land in a handful of cells.
func spatialCellFor(b sptemp.Box) float64 {
	w := b.Width()
	if w <= 0 {
		return 1
	}
	return w
}

// Insert validates the object against its class schema, assigns an OID,
// persists it (offloading images to blobs), and indexes it.
func (s *Store) Insert(obj *Object) (OID, error) {
	cls, err := s.cat.Class(obj.Class)
	if err != nil {
		return 0, err
	}
	if err := s.validate(cls, obj); err != nil {
		return 0, err
	}
	id, err := s.st.NextID("oid")
	if err != nil {
		return 0, err
	}
	obj.OID = OID(id)

	rec, blobIDs, err := s.encodeObject(obj, s.st.NextID)
	if err != nil {
		return 0, err
	}
	heap := heapFor(obj.Class)
	rid, err := s.st.Insert(heap, rec)
	if err != nil {
		for _, b := range blobIDs {
			s.st.Blobs().Delete(b)
		}
		return 0, err
	}
	s.mu.Lock()
	s.rids[obj.OID] = ridRef{heap: heap, rid: rid}
	s.indexLocked(obj.Class, obj)
	s.blobsByOID[obj.OID] = blobIDs
	s.mu.Unlock()
	return obj.OID, nil
}

func (s *Store) validate(cls *catalog.Class, obj *Object) error {
	for name, v := range obj.Attrs {
		a, ok := cls.Attr(name)
		if !ok {
			return fmt.Errorf("%w: class %s has no attribute %q", ErrBadAttr, cls.Name, name)
		}
		if v == nil {
			return fmt.Errorf("%w: attribute %q is nil", ErrBadAttr, name)
		}
		if v.Type() != a.Type {
			// A singleton scalar satisfies a set-typed attribute.
			if elem, isSet := a.Type.IsSet(); !isSet || v.Type() != elem {
				return fmt.Errorf("%w: attribute %q is %s, schema says %s", ErrBadAttr, name, v.Type(), a.Type)
			}
		}
	}
	for _, a := range cls.Attrs {
		if _, ok := obj.Attrs[a.Name]; !ok {
			return fmt.Errorf("%w: attribute %q missing", ErrBadAttr, a.Name)
		}
	}
	if cls.HasSpatial && obj.Extent.Space.IsEmpty() {
		return fmt.Errorf("%w: class %s requires a spatial extent", ErrBadAttr, cls.Name)
	}
	if cls.HasSpatial && !obj.Extent.Frame.Compatible(cls.Frame) {
		return fmt.Errorf("%w: object frame %s, class frame %s", ErrBadAttr, obj.Extent.Frame, cls.Frame)
	}
	if cls.HasTemporal && !obj.Extent.HasTime {
		return fmt.Errorf("%w: class %s requires a temporal extent", ErrBadAttr, cls.Name)
	}
	return nil
}

// Update replaces the stored state of an existing object in place,
// keeping its OID and class. The new state is validated against the class
// schema, persisted (new record + new blobs, then the old record and blobs
// are removed), and the extent indexes are refreshed. Update does not
// touch derivation metadata — the kernel's UpdateObject wraps it with
// staleness propagation through the derived-data manager.
func (s *Store) Update(obj *Object) error {
	if obj.OID == 0 {
		return fmt.Errorf("%w: update needs an OID", ErrBadAttr)
	}
	cls, err := s.cat.Class(obj.Class)
	if err != nil {
		return err
	}
	if err := s.validate(cls, obj); err != nil {
		return err
	}
	s.mu.RLock()
	ref, ok := s.rids[obj.OID]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: oid %d", ErrNotFound, obj.OID)
	}
	if ref.heap != heapFor(obj.Class) {
		return fmt.Errorf("%w: object %d is of class %s, not %s",
			ErrBadAttr, obj.OID, ref.heap[len("obj_"):], obj.Class)
	}
	rec, newBlobs, err := s.encodeObject(obj, s.st.NextID)
	if err != nil {
		return err
	}
	rid, err := s.st.Insert(ref.heap, rec)
	if err != nil {
		for _, b := range newBlobs {
			s.st.Blobs().Delete(b)
		}
		return err
	}
	s.mu.Lock()
	cur, ok := s.rids[obj.OID]
	if !ok || cur != ref {
		// Lost a race with a concurrent Update/Delete of the same OID;
		// undo our new record and report the conflict.
		s.mu.Unlock()
		s.st.Delete(ref.heap, rid)
		for _, b := range newBlobs {
			s.st.Blobs().Delete(b)
		}
		return fmt.Errorf("%w: oid %d changed concurrently", ErrConflict, obj.OID)
	}
	oldBlobs := s.blobsByOID[obj.OID]
	s.rids[obj.OID] = ridRef{heap: ref.heap, rid: rid}
	s.blobsByOID[obj.OID] = newBlobs
	// Refresh the extent indexes: the grid/interval indexes replace on
	// re-insert, but a dropped temporal extent must be removed explicitly.
	if ti := s.temporal[obj.Class]; ti != nil && !obj.Extent.HasTime {
		ti.Delete(uint64(obj.OID))
	}
	s.indexLocked(obj.Class, obj)
	s.mu.Unlock()

	// The update is committed: the new record is durable and indexed.
	// Removing the superseded record and blobs is best-effort cleanup —
	// reporting a failure here would make callers believe the update did
	// not happen. A leftover old record is resolved by the revision
	// stamp on the next open.
	_ = s.st.Delete(ref.heap, ref.rid)
	for _, b := range oldBlobs {
		_ = s.st.Blobs().Delete(b)
	}
	return nil
}

// Exists reports whether an OID currently resolves to a stored object.
func (s *Store) Exists(oid OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.rids[oid]
	return ok
}

// RecordSize returns the stored footprint of an object in bytes: its heap
// record plus any offloaded blobs. The derived-data manager weighs this
// against recorded recomputation cost when deciding whether to keep or
// drop an invalidated derived object.
func (s *Store) RecordSize(oid OID) (int64, error) {
	s.mu.RLock()
	ref, ok := s.rids[oid]
	blobIDs := append([]storage.BlobID(nil), s.blobsByOID[oid]...)
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	rec, err := s.st.Get(ref.heap, ref.rid)
	if err != nil {
		return 0, err
	}
	total := int64(len(rec))
	for _, b := range blobIDs {
		n, err := s.st.Blobs().Size(b)
		if err != nil {
			if errors.Is(err, storage.ErrBlobNotFound) {
				continue
			}
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Get loads an object by OID, materialising blob-stored images.
func (s *Store) Get(oid OID) (*Object, error) {
	s.mu.RLock()
	ref, ok := s.rids[oid]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	rec, err := s.st.Get(ref.heap, ref.rid)
	if err != nil {
		return nil, err
	}
	obj, _, _, err := decodeObject(rec)
	if err != nil {
		return nil, err
	}
	// Resolve blob references into image values.
	for name, v := range obj.Attrs {
		if ref, ok := v.(blobRef); ok {
			data, err := s.st.Blobs().Get(ref.id)
			if err != nil {
				return nil, fmt.Errorf("object: oid %d attribute %q: %w", oid, name, err)
			}
			img, err := raster.Unmarshal(data)
			if err != nil {
				return nil, fmt.Errorf("object: oid %d attribute %q: %w", oid, name, err)
			}
			obj.Attrs[name] = value.Image{Img: img}
		}
	}
	return obj, nil
}

// Delete removes an object and its blobs.
func (s *Store) Delete(oid OID) error {
	s.mu.Lock()
	ref, ok := s.rids[oid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	class := ref.heap[len("obj_"):]
	blobIDs := s.blobsByOID[oid]
	delete(s.rids, oid)
	delete(s.blobsByOID, oid)
	if gi := s.spatial[class]; gi != nil {
		gi.Delete(uint64(oid))
	}
	if ti := s.temporal[class]; ti != nil {
		ti.Delete(uint64(oid))
	}
	s.members[class] = removeSorted(s.members[class], oid)
	s.mu.Unlock()

	if err := s.st.Delete(ref.heap, ref.rid); err != nil {
		return err
	}
	for _, b := range blobIDs {
		if err := s.st.Blobs().Delete(b); err != nil && !errors.Is(err, storage.ErrBlobNotFound) {
			return err
		}
	}
	return nil
}

// Members returns all OIDs of a class, ascending.
func (s *Store) Members(class string) []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]OID(nil), s.members[class]...)
}

// Count returns the number of stored objects of a class.
func (s *Store) Count(class string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.members[class])
}

// Query returns the OIDs of class objects whose extent matches the
// predicate, ascending. An empty predicate space matches everything.
func (s *Store) Query(class string, pred sptemp.Extent) ([]OID, error) {
	if !s.cat.Exists(class) {
		return nil, fmt.Errorf("%w: class %q", catalog.ErrClassNotFound, class)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Candidate set from the more selective index available.
	var candidates []OID
	switch {
	case !pred.Space.IsEmpty() && s.spatial[class] != nil:
		for _, id := range s.spatial[class].Search(pred.Space) {
			candidates = append(candidates, OID(id))
		}
	case pred.HasTime && s.temporal[class] != nil:
		for _, id := range s.temporal[class].Search(pred.TimeIv) {
			candidates = append(candidates, OID(id))
		}
	default:
		candidates = append(candidates, s.members[class]...)
	}
	// Verify the full predicate per candidate (the index covers one
	// dimension only).
	var out []OID
	for _, oid := range candidates {
		ref := s.rids[oid]
		rec, err := s.st.Get(ref.heap, ref.rid)
		if err != nil {
			return nil, err
		}
		ext, err := decodeExtentOnly(rec)
		if err != nil {
			return nil, err
		}
		if ext.Matches(pred) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// NearestInTime returns up to k class members closest in time to t,
// used by temporal interpolation to find bracketing observations.
func (s *Store) NearestInTime(class string, t sptemp.AbsTime, k int) []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ti := s.temporal[class]
	if ti == nil {
		return nil
	}
	ids := ti.Nearest(t, k)
	out := make([]OID, len(ids))
	for i, id := range ids {
		out[i] = OID(id)
	}
	return out
}

// blobRef is the placeholder value stored inline for offloaded images.
type blobRef struct{ id storage.BlobID }

func (blobRef) Type() value.Type { return value.TypeImage }
func (r blobRef) String() string { return fmt.Sprintf("(image blob %d)", r.id) }

// Object record layout (little endian):
//
//	magic "GOB2", oid u64, rev u64, classLen u16, class,
//	extent: frameSysLen u16 + sys, frameUnitLen u16 + unit,
//	        4 x f64 box, hasTime u8, 2 x i64 interval,
//	nattrs u16, then per attribute:
//	        nameLen u16, name, kind u8 (0 inline, 1 blob),
//	        inline: valLen u32 + value.Encode bytes
//	        blob:   blobID u64
//
// rev is a store-wide monotonic revision stamp: when a crashed Update
// leaves two records for one OID, reopen keeps the higher revision.
// Records with the legacy "GOBJ" magic (written before in-place updates
// existed) carry no rev field and decode as rev 0.
const (
	objMagic       = "GOB2"
	objMagicLegacy = "GOBJ"
)

// encodeObject serialises an object, offloading images to blobs. alloc
// issues the revision stamp and blob ids: the single-op paths pass the
// store's durable NextID, batch commits pass an in-memory AllocID wrapper
// whose sequences the batch pins at commit.
func (s *Store) encodeObject(obj *Object, alloc func(string) (uint64, error)) ([]byte, []storage.BlobID, error) {
	rev, err := alloc("objrev")
	if err != nil {
		return nil, nil, err
	}
	buf := []byte(objMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.OID))
	buf = binary.LittleEndian.AppendUint64(buf, rev)
	buf = appendStr16(buf, obj.Class)
	buf = appendStr16(buf, string(obj.Extent.Frame.System))
	buf = appendStr16(buf, string(obj.Extent.Frame.Unit))
	for _, f := range []float64{obj.Extent.Space.MinX, obj.Extent.Space.MinY, obj.Extent.Space.MaxX, obj.Extent.Space.MaxY} {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(f))
	}
	if obj.Extent.HasTime {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.Extent.TimeIv.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.Extent.TimeIv.End))

	names := make([]string, 0, len(obj.Attrs))
	for n := range obj.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(names)))
	var blobIDs []storage.BlobID
	for _, n := range names {
		v := obj.Attrs[n]
		buf = appendStr16(buf, n)
		if img, ok := v.(value.Image); ok && img.Img != nil {
			id, err := alloc("blob")
			if err != nil {
				return nil, nil, err
			}
			if err := s.st.Blobs().Put(storage.BlobID(id), raster.Marshal(img.Img)); err != nil {
				return nil, nil, err
			}
			blobIDs = append(blobIDs, storage.BlobID(id))
			buf = append(buf, 1)
			buf = binary.LittleEndian.AppendUint64(buf, id)
			continue
		}
		enc, err := value.Encode(v)
		if err != nil {
			return nil, nil, fmt.Errorf("object: attribute %q: %w", n, err)
		}
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, blobIDs, nil
}

func decodeObject(rec []byte) (*Object, []storage.BlobID, uint64, error) {
	r := &reader{buf: rec}
	magic := string(r.bytes(4))
	if magic != objMagic && magic != objMagicLegacy {
		return nil, nil, 0, fmt.Errorf("bad object magic")
	}
	obj := &Object{Attrs: make(map[string]value.Value)}
	obj.OID = OID(r.u64())
	var rev uint64
	if magic == objMagic {
		rev = r.u64()
	}
	obj.Class = r.str16()
	obj.Extent.Frame.System = sptemp.RefSystem(r.str16())
	obj.Extent.Frame.Unit = sptemp.RefUnit(r.str16())
	obj.Extent.Space = sptemp.Box{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
	obj.Extent.HasTime = r.u8() == 1
	obj.Extent.TimeIv = sptemp.Interval{Start: sptemp.AbsTime(r.u64()), End: sptemp.AbsTime(r.u64())}
	n := int(r.u16())
	var blobIDs []storage.BlobID
	for i := 0; i < n; i++ {
		name := r.str16()
		kind := r.u8()
		if kind == 1 {
			id := storage.BlobID(r.u64())
			obj.Attrs[name] = blobRef{id: id}
			blobIDs = append(blobIDs, id)
			continue
		}
		vn := int(r.u32())
		enc := r.bytes(vn)
		if r.err != nil {
			return nil, nil, 0, r.err
		}
		v, err := value.Decode(enc)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("attribute %q: %w", name, err)
		}
		obj.Attrs[name] = v
	}
	if r.err != nil {
		return nil, nil, 0, r.err
	}
	return obj, blobIDs, rev, nil
}

// decodeExtentOnly reads just the extent header, skipping attribute decode
// for fast predicate checks.
func decodeExtentOnly(rec []byte) (sptemp.Extent, error) {
	r := &reader{buf: rec}
	magic := string(r.bytes(4))
	if magic != objMagic && magic != objMagicLegacy {
		return sptemp.Extent{}, fmt.Errorf("bad object magic")
	}
	r.u64() // oid
	if magic == objMagic {
		r.u64() // rev
	}
	r.str16()
	var e sptemp.Extent
	e.Frame.System = sptemp.RefSystem(r.str16())
	e.Frame.Unit = sptemp.RefUnit(r.str16())
	e.Space = sptemp.Box{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
	e.HasTime = r.u8() == 1
	e.TimeIv = sptemp.Interval{Start: sptemp.AbsTime(r.u64()), End: sptemp.AbsTime(r.u64())}
	return e, r.err
}

func appendStr16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func floatBits(f float64) uint64 { return mathFloat64bits(f) }
