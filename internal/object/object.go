// Package object manages scientific data objects — the instances of
// non-primitive classes (§2.1.2). Every object carries an OID, its class
// name, attribute values, and its spatio-temporal extent. Objects persist
// in the storage engine; large image payloads are offloaded to the blob
// store (the paper's image ADT likewise stores a filepath, not inline
// pixels). Per-class grid and interval indexes serve the extent-qualified
// retrieval that is step 1 of the §2.1.5 query sequence.
//
// The store is multi-versioned: every commit happens at a monotonically
// increasing epoch (reserved from the storage layer and stamped into the
// WAL group), and updates and deletes append new versions to a per-OID
// chain instead of mutating in place. The extent indexes always describe
// the newest version; the chains resolve visibility for snapshot readers
// pinned at an earlier epoch, so reads never block writes and a pinned
// reader sees exactly the state of its epoch. Superseded versions stay
// reachable until GC drops everything below the oldest pinned epoch.
package object

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gaea/internal/catalog"
	"gaea/internal/obs"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/value"
)

// OID identifies a data object globally.
type OID uint64

// Errors returned by the object store.
var (
	ErrNotFound = errors.New("object: not found")
	ErrBadAttr  = errors.New("object: attribute error")
	// ErrConflict reports that an object changed (or vanished) under a
	// concurrent mutation between staging and applying a write —
	// first-committer-wins for sessions validating against a read epoch.
	ErrConflict = errors.New("object: concurrent modification")
	// ErrSnapshotGone reports that a snapshot epoch (typically carried by
	// a resumed stream cursor) has fallen behind the GC horizon: the
	// versions it would need may have been reclaimed.
	ErrSnapshotGone = errors.New("object: snapshot epoch reclaimed by GC")
)

// Object is one scientific data object.
type Object struct {
	OID    OID
	Class  string
	Attrs  map[string]value.Value
	Extent sptemp.Extent
}

// Attr returns an attribute value, including the automatic extent
// accessors spatialextent and timestamp.
func (o *Object) Attr(name string) (value.Value, error) {
	switch name {
	case "spatialextent":
		return value.Box(o.Extent.Space), nil
	case "timestamp":
		if !o.Extent.HasTime {
			return nil, fmt.Errorf("%w: object %d has no temporal extent", ErrBadAttr, o.OID)
		}
		return value.AbsTime(o.Extent.TimeIv.Start), nil
	}
	v, ok := o.Attrs[name]
	if !ok {
		return nil, fmt.Errorf("%w: object %d (class %s) has no attribute %q", ErrBadAttr, o.OID, o.Class, name)
	}
	return v, nil
}

// version is one committed state of an object: the heap record holding
// that state, the blobs it owns, and the commit epoch it became visible
// at. A tombstone version (del) records a deletion.
type version struct {
	epoch uint64
	rid   storage.RID
	blobs []storage.BlobID
	del   bool
}

// chain is an object's version history in ascending epoch order — the
// newest version is the LAST element, so committing a new version is an
// amortised O(1) append however long the history grows between GCs. A
// tombstone, when present, is always the newest: OIDs are never reused,
// so nothing commits after a delete.
type chain struct {
	heap string
	vers []version
}

// head returns the newest version.
func (c *chain) head() version { return c.vers[len(c.vers)-1] }

// visibleAt resolves the version a snapshot pinned at epoch sees: the
// newest version at or below it. The second return is false when the
// object does not exist at that epoch (born later, or deleted at or
// before it).
func (c *chain) visibleAt(epoch uint64) (version, bool) {
	for i := len(c.vers) - 1; i >= 0; i-- {
		if v := c.vers[i]; v.epoch <= epoch {
			if v.del {
				return version{}, false
			}
			return v, true
		}
	}
	return version{}, false
}

// changeEnt records that an object of a class changed (update or delete)
// at an epoch. Snapshot queries union these with the newest-version index
// candidates: anything the index no longer describes for a given snapshot
// is in here, and GC prunes entries at or below the horizon.
type changeEnt struct {
	epoch uint64
	oid   OID
}

// MVCCStats summarises version-store health for Kernel.Stats.
type MVCCStats struct {
	// Epoch is the latest published commit epoch.
	Epoch uint64
	// LiveVersions counts stored versions across all chains (including
	// tombstones awaiting GC).
	LiveVersions int
	// Reclaimed counts versions dropped by GC since open.
	Reclaimed int64
	// Pins counts currently pinned snapshot epochs (with multiplicity).
	Pins int
	// OldestPin is the lowest pinned epoch (0 when nothing is pinned) —
	// the GC horizon floor.
	OldestPin uint64
	// GCFloor is the epoch the last GC ran at: cursors and snapshots
	// below it cannot be re-pinned.
	GCFloor uint64
}

// Store persists objects and serves extent queries.
//
// Locking: mu guards the in-memory maps (chains, indexes, pins, epoch);
// readers hold it shared and briefly — never across storage I/O.
// commitMu serialises mutators (ApplyBatch, GC) across their whole
// validate → reserve-epoch → storage-commit → publish window, so epochs
// publish in reservation order; mu is taken exclusively only for the
// final in-memory publish, which is why snapshot readers are not
// serialised behind a committing writer.
type Store struct {
	mu       sync.RWMutex
	commitMu sync.Mutex
	st       *storage.Store
	cat      *catalog.Catalog
	// chains holds every OID's version history, including OIDs whose
	// newest version is a tombstone (still visible to pinned snapshots).
	chains map[OID]*chain
	// Per-class extent indexes and membership over the NEWEST live
	// versions, rebuilt at open. Snapshot readers overlay `changed`.
	spatial  map[string]*sptemp.GridIndex
	temporal map[string]*sptemp.IntervalIndex
	members  map[string][]OID
	// changed is the per-class overlay log: (epoch, oid) per update or
	// delete, ascending by epoch, pruned by GC.
	changed map[string][]changeEnt
	// epoch is the latest PUBLISHED commit epoch: reservations advance the
	// storage counter first, but readers see a new epoch only once its
	// batch is committed and indexed, which happens under mu.
	epoch uint64
	// pins refcounts snapshot epochs protected from GC.
	pins map[uint64]int
	// gcFloor is the horizon of the last GC pass.
	gcFloor   uint64
	reclaimed int64

	// prepLocks maps an OID locked by a prepared (but undecided)
	// two-phase transaction to its transaction token. Guarded by
	// commitMu, like every other mutator-side structure: PrepareBatch
	// records locks after validating, ApplyBatch refuses to touch an OID
	// locked by a DIFFERENT token, and the owning token's commit or
	// ReleasePrepared clears them. Locks are in-memory only — a crashed
	// shard loses its prepared state, which is exactly the presumed-abort
	// contract (nothing was WAL-committed before the decision).
	prepLocks map[OID]uint64

	// AfterCommit, when set, runs after every committed batch (outside
	// the store lock). The kernel hooks its auto-checkpoint trigger here.
	AfterCommit func()

	// Registry instruments (nil until RegisterMetrics; obs instruments
	// no-op as nil, so unobserved stores pay nothing).
	gcRuns *obs.Counter
	gcNS   *obs.Histogram
}

func heapFor(class string) string { return "obj_" + class }

// Open loads the object store, rebuilding version chains and in-memory
// indexes by scanning each class heap. Every record carries its commit
// epoch, so the chain order (and the epoch counter) is recovered exactly;
// superseded versions persist until the next GC.
func Open(st *storage.Store, cat *catalog.Catalog) (*Store, error) {
	s := &Store{
		st:        st,
		cat:       cat,
		chains:    make(map[OID]*chain),
		spatial:   make(map[string]*sptemp.GridIndex),
		temporal:  make(map[string]*sptemp.IntervalIndex),
		members:   make(map[string][]OID),
		changed:   make(map[string][]changeEnt),
		pins:      make(map[uint64]int),
		prepLocks: make(map[OID]uint64),
	}
	var maxEpoch uint64
	// headExt remembers the newest-seen version's extent per OID during
	// the scan, so indexing below needs no second pass over storage.
	type headState struct {
		epoch uint64
		ext   sptemp.Extent
	}
	headExt := make(map[OID]headState)
	for _, class := range cat.Names() {
		heap := heapFor(class)
		var scanErr error
		err := st.Scan(heap, func(rid storage.RID, raw []byte) bool {
			obj, blobIDs, epoch, deleted, err := decodeObject(raw)
			if err != nil {
				scanErr = fmt.Errorf("object: corrupt record %s in %s: %w", rid, heap, err)
				return false
			}
			c := s.chains[obj.OID]
			if c == nil {
				c = &chain{heap: heap}
				s.chains[obj.OID] = c
			}
			c.vers = append(c.vers, version{epoch: epoch, rid: rid, blobs: blobIDs, del: deleted})
			if prev, ok := headExt[obj.OID]; !ok || epoch >= prev.epoch {
				headExt[obj.OID] = headState{epoch: epoch, ext: obj.Extent}
			}
			if epoch > maxEpoch {
				maxEpoch = epoch
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if scanErr != nil {
			return nil, scanErr
		}
	}
	for oid, c := range s.chains {
		sort.SliceStable(c.vers, func(i, j int) bool { return c.vers[i].epoch < c.vers[j].epoch })
		if !c.head().del {
			s.indexLocked(c.heap[len("obj_"):], oid, headExt[oid].ext)
		}
	}
	if maxEpoch == 0 {
		// Floor the epoch at 1 so a session's read epoch is never 0 —
		// BatchOps.ReadEpoch uses 0 as the "skip validation" sentinel, and
		// a legacy store whose records all decode at epoch 0 must still
		// get first-committer-wins checks.
		maxEpoch = 1
	}
	st.AdvanceEpoch(maxEpoch)
	s.epoch = st.Epoch()
	// Pins do not survive a restart, so neither do snapshots or stream
	// cursors: GC may already have run at any horizon up to the current
	// epoch before the crash (the floor is not persisted), and the
	// changed-overlay is not reconstructed. Refusing pre-restart epochs
	// outright (ErrSnapshotGone) is honest where resuming them could be
	// silently incomplete.
	s.gcFloor = s.epoch
	return s, nil
}

// indexLocked registers an object's newest extent in the per-class
// indexes and membership.
func (s *Store) indexLocked(class string, oid OID, ext sptemp.Extent) {
	gi, ok := s.spatial[class]
	if !ok {
		gi = sptemp.NewGridIndex(spatialCellFor(ext.Space))
		s.spatial[class] = gi
	}
	gi.Insert(uint64(oid), ext.Space)
	ti, ok := s.temporal[class]
	if !ok {
		ti = sptemp.NewIntervalIndex()
		s.temporal[class] = ti
	}
	if ext.HasTime {
		ti.Insert(uint64(oid), ext.TimeIv)
	} else {
		ti.Delete(uint64(oid))
	}
	s.members[class] = insertSorted(s.members[class], oid)
}

// unindexLocked removes an object from the newest-version indexes (its
// chain — and so its visibility to pinned snapshots — is untouched).
func (s *Store) unindexLocked(class string, oid OID) {
	if gi := s.spatial[class]; gi != nil {
		gi.Delete(uint64(oid))
	}
	if ti := s.temporal[class]; ti != nil {
		ti.Delete(uint64(oid))
	}
	s.members[class] = removeSorted(s.members[class], oid)
}

func insertSorted(s []OID, o OID) []OID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= o })
	if i < len(s) && s[i] == o {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = o
	return s
}

func removeSorted(s []OID, o OID) []OID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= o })
	if i < len(s) && s[i] == o {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// spatialCellFor sizes grid cells off the first-seen extent so typical
// scene-sized boxes land in a handful of cells.
func spatialCellFor(b sptemp.Box) float64 {
	w := b.Width()
	if w <= 0 {
		return 1
	}
	return w
}

// Insert validates the object against its class schema, assigns an OID,
// and commits it as a single-op batch at a fresh epoch.
func (s *Store) Insert(obj *Object) (OID, error) {
	if _, err := s.Reserve(obj); err != nil {
		return 0, err
	}
	if _, err := s.ApplyBatch(BatchOps{Inserts: []*Object{obj}}); err != nil {
		return 0, err
	}
	return obj.OID, nil
}

func (s *Store) validate(cls *catalog.Class, obj *Object) error {
	for name, v := range obj.Attrs {
		a, ok := cls.Attr(name)
		if !ok {
			return fmt.Errorf("%w: class %s has no attribute %q", ErrBadAttr, cls.Name, name)
		}
		if v == nil {
			return fmt.Errorf("%w: attribute %q is nil", ErrBadAttr, name)
		}
		if v.Type() != a.Type {
			// A singleton scalar satisfies a set-typed attribute.
			if elem, isSet := a.Type.IsSet(); !isSet || v.Type() != elem {
				return fmt.Errorf("%w: attribute %q is %s, schema says %s", ErrBadAttr, name, v.Type(), a.Type)
			}
		}
	}
	for _, a := range cls.Attrs {
		if _, ok := obj.Attrs[a.Name]; !ok {
			return fmt.Errorf("%w: attribute %q missing", ErrBadAttr, a.Name)
		}
	}
	if cls.HasSpatial && obj.Extent.Space.IsEmpty() {
		return fmt.Errorf("%w: class %s requires a spatial extent", ErrBadAttr, cls.Name)
	}
	if cls.HasSpatial && !obj.Extent.Frame.Compatible(cls.Frame) {
		return fmt.Errorf("%w: object frame %s, class frame %s", ErrBadAttr, obj.Extent.Frame, cls.Frame)
	}
	if cls.HasTemporal && !obj.Extent.HasTime {
		return fmt.Errorf("%w: class %s requires a temporal extent", ErrBadAttr, cls.Name)
	}
	return nil
}

// Update commits a new version of an existing object (same OID, same
// class) at a fresh epoch. The superseded version stays reachable for
// pinned snapshots until GC. Update does not touch derivation metadata —
// the kernel's session commit wraps it with staleness propagation.
// Internal callers (refresh) win over concurrent versions last-writer
// style; session commits validate first-committer-wins via
// BatchOps.ReadEpoch instead.
func (s *Store) Update(obj *Object) error {
	if err := s.CheckUpdate(obj); err != nil {
		return err
	}
	_, err := s.ApplyBatch(BatchOps{Updates: []*Object{obj}})
	return err
}

// Exists reports whether an OID currently resolves to a live object (at
// the newest epoch).
func (s *Store) Exists(oid OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chains[oid]
	return ok && !c.head().del
}

// ExistsAt reports whether an OID resolves to a live object at the given
// epoch.
func (s *Store) ExistsAt(oid OID, epoch uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chains[oid]
	if !ok {
		return false
	}
	_, ok = c.visibleAt(epoch)
	return ok
}

// RecordSize returns the stored footprint of an object in bytes: its
// newest heap record plus any offloaded blobs. The derived-data manager
// weighs this against recorded recomputation cost when deciding whether
// to keep or drop an invalidated derived object.
func (s *Store) RecordSize(oid OID) (int64, error) {
	s.mu.RLock()
	c, ok := s.chains[oid]
	var v version
	if ok && !c.head().del {
		v = c.head()
	} else {
		ok = false
	}
	heap := ""
	if ok {
		heap = c.heap
	}
	blobIDs := append([]storage.BlobID(nil), v.blobs...)
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	rec, err := s.st.Get(heap, v.rid)
	if err != nil {
		return 0, err
	}
	total := int64(len(rec))
	for _, b := range blobIDs {
		n, err := s.st.Blobs().Size(b)
		if err != nil {
			if errors.Is(err, storage.ErrBlobNotFound) {
				continue
			}
			return 0, err
		}
		total += n
	}
	return total, nil
}

// resolve returns the heap and version an OID maps to at an epoch
// (^uint64(0) = newest).
func (s *Store) resolve(oid OID, epoch uint64) (string, version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chains[oid]
	if !ok {
		return "", version{}, false
	}
	if epoch == latestEpoch {
		if h := c.head(); !h.del {
			return c.heap, h, true
		}
		return "", version{}, false
	}
	v, ok := c.visibleAt(epoch)
	return c.heap, v, ok
}

const latestEpoch = ^uint64(0)

// Get loads an object's newest version by OID, materialising blob-stored
// images.
func (s *Store) Get(oid OID) (*Object, error) { return s.getAt(oid, latestEpoch) }

// GetAt loads the version of an object a snapshot pinned at epoch sees.
// Objects born after the epoch — or deleted at or before it — are not
// found.
func (s *Store) GetAt(oid OID, epoch uint64) (*Object, error) { return s.getAt(oid, epoch) }

func (s *Store) getAt(oid OID, epoch uint64) (*Object, error) {
	heap, v, ok := s.resolve(oid, epoch)
	if !ok {
		return nil, fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	rec, err := s.st.Get(heap, v.rid)
	if err != nil {
		return nil, err
	}
	obj, _, _, _, err := decodeObject(rec)
	if err != nil {
		return nil, err
	}
	// Resolve blob references into image values.
	for name, val := range obj.Attrs {
		if ref, ok := val.(blobRef); ok {
			data, err := s.st.Blobs().Get(ref.id)
			if err != nil {
				return nil, fmt.Errorf("object: oid %d attribute %q: %w", oid, name, err)
			}
			img, err := raster.Unmarshal(data)
			if err != nil {
				return nil, fmt.Errorf("object: oid %d attribute %q: %w", oid, name, err)
			}
			obj.Attrs[name] = value.Image{Img: img}
		}
	}
	return obj, nil
}

// Delete commits a tombstone for an object at a fresh epoch: it vanishes
// from the newest-version indexes immediately, while pinned snapshots
// keep seeing the pre-delete state until they release and GC runs.
func (s *Store) Delete(oid OID) error {
	if !s.Exists(oid) {
		return fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	_, err := s.ApplyBatch(BatchOps{Deletes: []OID{oid}})
	if errors.Is(err, ErrConflict) && !s.Exists(oid) {
		// Lost a delete-delete race: the object is gone either way.
		return fmt.Errorf("%w: oid %d", ErrNotFound, oid)
	}
	return err
}

// Members returns all live OIDs of a class at the newest epoch, ascending.
func (s *Store) Members(class string) []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]OID(nil), s.members[class]...)
}

// Count returns the number of live objects of a class at the newest epoch.
func (s *Store) Count(class string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.members[class])
}

// CurrentEpoch returns the latest published commit epoch: the read epoch
// a new session or snapshot captures.
func (s *Store) CurrentEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Pin pins the current epoch against GC and returns it. Every Pin (or
// successful PinEpoch) must be paired with an Unpin; until then, GC keeps
// every version visible at or after the pinned epoch.
func (s *Store) Pin() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[s.epoch]++
	return s.epoch
}

// PinEpoch re-pins a specific epoch (a resumed stream cursor). It fails
// with ErrSnapshotGone when the epoch has fallen behind the GC horizon —
// the versions it would need may already be reclaimed.
func (s *Store) PinEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkEpochLocked(epoch); err != nil {
		return err
	}
	s.pins[epoch]++
	return nil
}

// CheckEpoch reports whether an epoch could be pinned right now, without
// pinning it (streams validate cursors at creation but pin lazily at
// first pull, so an abandoned, never-iterated stream holds no pin).
func (s *Store) CheckEpoch(epoch uint64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkEpochLocked(epoch)
}

func (s *Store) checkEpochLocked(epoch uint64) error {
	if epoch < s.gcFloor {
		return fmt.Errorf("%w: epoch %d is below the GC horizon %d", ErrSnapshotGone, epoch, s.gcFloor)
	}
	if epoch > s.epoch {
		return fmt.Errorf("%w: epoch %d is in the future (current %d)", ErrSnapshotGone, epoch, s.epoch)
	}
	return nil
}

// Unpin releases a pinned epoch, advancing the horizon the next GC may
// reclaim up to.
func (s *Store) Unpin(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.pins[epoch]; ok {
		if n <= 1 {
			delete(s.pins, epoch)
		} else {
			s.pins[epoch] = n - 1
		}
	}
}

// RegisterMetrics folds version-store health into the registry: the
// published epoch, stored versions, pins and the GC horizon as gauges,
// GC activity as counters/latency. The cheap gauges read under the
// store's shared lock without walking chains; only mvcc_live_versions
// pays the chain walk, and only when a snapshot is taken.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.gcRuns = reg.Counter("mvcc_gc_runs_total")
	s.gcNS = reg.Histogram("mvcc_gc_ns")
	reg.GaugeFunc("mvcc_epoch", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(s.epoch)
	})
	reg.GaugeFunc("mvcc_reclaimed_total", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.reclaimed
	})
	reg.GaugeFunc("mvcc_pins", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var n int64
		for _, c := range s.pins {
			n += int64(c)
		}
		return n
	})
	reg.GaugeFunc("mvcc_oldest_pin", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var oldest uint64
		for e := range s.pins {
			if oldest == 0 || e < oldest {
				oldest = e
			}
		}
		return int64(oldest)
	})
	reg.GaugeFunc("mvcc_gc_floor", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(s.gcFloor)
	})
	reg.GaugeFunc("mvcc_live_versions", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		var n int64
		for _, c := range s.chains {
			n += int64(len(c.vers))
		}
		return n
	})
}

// MVCC reports version-store health.
func (s *Store) MVCC() MVCCStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := MVCCStats{Epoch: s.epoch, Reclaimed: s.reclaimed, GCFloor: s.gcFloor}
	for _, c := range s.chains {
		st.LiveVersions += len(c.vers)
	}
	for e, n := range s.pins {
		st.Pins += n
		if st.OldestPin == 0 || e < st.OldestPin {
			st.OldestPin = e
		}
	}
	return st
}

// GC reclaims every version no live snapshot can see: versions superseded
// at or below the oldest pinned epoch (or the current epoch when nothing
// is pinned), and chains whose visible state at the horizon is a
// tombstone. Heap records are removed in one batch and orphaned blobs
// deleted. Returns the number of versions reclaimed. The kernel wires GC
// into Checkpoint so the horizon advances whenever the log is compacted.
func (s *Store) GC() (int, error) {
	gcStart := time.Now()
	defer func() {
		s.gcRuns.Inc()
		s.gcNS.ObserveSince(gcStart)
	}()
	type victim struct {
		heap  string
		rid   storage.RID
		blobs []storage.BlobID
	}
	var victims []victim
	// commitMu keeps GC from interleaving with a commit's validate →
	// publish window (a chain it trims is one a commit may hold a pointer
	// to); the reader-visible lock is still held only for the in-memory
	// collection phase.
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	horizon := s.epoch
	for e := range s.pins {
		if e < horizon {
			horizon = e
		}
	}
	for oid, c := range s.chains {
		// vis is the newest version at or below the horizon — the one a
		// snapshot pinned exactly there resolves to. Everything older is
		// unreachable from any present or future pin.
		vis := -1
		for i := len(c.vers) - 1; i >= 0; i-- {
			if c.vers[i].epoch <= horizon {
				vis = i
				break
			}
		}
		if vis < 0 {
			continue // every version is newer than the horizon
		}
		for _, v := range c.vers[:vis] {
			victims = append(victims, victim{heap: c.heap, rid: v.rid, blobs: v.blobs})
		}
		if vis == len(c.vers)-1 && c.vers[vis].del {
			// The chain's only reachable state is "deleted": drop it whole.
			victims = append(victims, victim{heap: c.heap, rid: c.vers[vis].rid, blobs: c.vers[vis].blobs})
			delete(s.chains, oid)
			continue
		}
		if vis > 0 {
			// Re-slice to release the reclaimed prefix's backing memory.
			c.vers = append([]version(nil), c.vers[vis:]...)
		}
	}
	for class, ents := range s.changed {
		i := sort.Search(len(ents), func(i int) bool { return ents[i].epoch > horizon })
		if i == len(ents) {
			delete(s.changed, class)
		} else if i > 0 {
			s.changed[class] = append([]changeEnt(nil), ents[i:]...)
		}
	}
	if horizon > s.gcFloor {
		s.gcFloor = horizon
	}
	s.mu.Unlock()

	if len(victims) == 0 {
		return 0, nil
	}
	// The chains no longer reference the victims, so the physical
	// removal happens outside the lock: one batch for the heap records,
	// then best-effort blob deletion. If the batch fails, the orphaned
	// records survive on disk until the next Open rescans them back into
	// their chains (as superseded versions) and a later GC retries; the
	// reclaimed counter only advances on success.
	b := s.st.NewBatch()
	for _, v := range victims {
		b.Delete(v.heap, v.rid)
	}
	if _, err := b.Commit(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.reclaimed += int64(len(victims))
	s.mu.Unlock()
	for _, v := range victims {
		for _, bl := range v.blobs {
			if err := s.st.Blobs().Delete(bl); err != nil && !errors.Is(err, storage.ErrBlobNotFound) {
				return len(victims), err
			}
		}
	}
	return len(victims), nil
}

// Query returns the OIDs of class objects whose newest extent matches the
// predicate, ascending. An empty predicate space matches everything.
func (s *Store) Query(class string, pred sptemp.Extent) ([]OID, error) {
	return s.QueryAt(class, pred, latestEpoch)
}

// QueryAt answers the extent query against the snapshot at epoch: the
// candidate set is the newest-version index union the overlay of objects
// changed after the epoch, and each candidate resolves through its chain
// so the verified extent is the one the snapshot sees.
func (s *Store) QueryAt(class string, pred sptemp.Extent, epoch uint64) ([]OID, error) {
	if !s.cat.Exists(class) {
		return nil, fmt.Errorf("%w: class %q", catalog.ErrClassNotFound, class)
	}
	candidates := s.candidatesAt(class, pred, epoch)
	var out []OID
	for _, oid := range candidates {
		heap, v, ok := s.resolve(oid, epoch)
		if !ok {
			continue
		}
		rec, err := s.st.Get(heap, v.rid)
		if err != nil {
			return nil, err
		}
		ext, err := decodeExtentOnly(rec)
		if err != nil {
			return nil, err
		}
		if ext.Matches(pred) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// candidatesAt collects the candidate OIDs for a predicate at an epoch:
// the newest-version index matches, plus — for snapshot reads — every
// object of the class changed after the epoch (its snapshot extent may
// differ from the indexed one, or it may have been deleted since). The
// result is sorted and deduplicated.
func (s *Store) candidatesAt(class string, pred sptemp.Extent, epoch uint64) []OID {
	s.mu.RLock()
	var candidates []OID
	switch {
	case !pred.Space.IsEmpty() && s.spatial[class] != nil:
		for _, id := range s.spatial[class].Search(pred.Space) {
			candidates = append(candidates, OID(id))
		}
	case pred.HasTime && s.temporal[class] != nil:
		for _, id := range s.temporal[class].Search(pred.TimeIv) {
			candidates = append(candidates, OID(id))
		}
	default:
		candidates = append(candidates, s.members[class]...)
	}
	if epoch != latestEpoch {
		ents := s.changed[class]
		i := sort.Search(len(ents), func(i int) bool { return ents[i].epoch > epoch })
		for _, e := range ents[i:] {
			candidates = append(candidates, e.oid)
		}
	}
	s.mu.RUnlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	out := candidates[:0]
	var last OID
	for _, oid := range candidates {
		if len(out) > 0 && oid == last {
			continue
		}
		out = append(out, oid)
		last = oid
	}
	return out
}

// NearestInTime returns up to k class members closest in time to t,
// used by temporal interpolation to find bracketing observations.
func (s *Store) NearestInTime(class string, t sptemp.AbsTime, k int) []OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ti := s.temporal[class]
	if ti == nil {
		return nil
	}
	ids := ti.Nearest(t, k)
	out := make([]OID, len(ids))
	for i, id := range ids {
		out[i] = OID(id)
	}
	return out
}

// blobRef is the placeholder value stored inline for offloaded images.
type blobRef struct{ id storage.BlobID }

func (blobRef) Type() value.Type { return value.TypeImage }
func (r blobRef) String() string { return fmt.Sprintf("(image blob %d)", r.id) }

// Object record layout (little endian):
//
//	magic "GOB3", oid u64, epoch u64, flags u8,
//	classLen u16, class,
//	[tombstone records (flags bit 0) end here]
//	extent: frameSysLen u16 + sys, frameUnitLen u16 + unit,
//	        4 x f64 box, hasTime u8, 2 x i64 interval,
//	nattrs u16, then per attribute:
//	        nameLen u16, name, kind u8 (0 inline, 1 blob),
//	        inline: valLen u32 + value.Encode bytes
//	        blob:   blobID u64
//
// epoch is the record's commit epoch — the MVCC version stamp, patched
// into the encoded bytes when the enclosing batch reserves its epoch.
// Legacy records decode too: "GOB2" carries a store-wide revision in the
// same slot (monotonic, so it orders a chain correctly) and no flags
// byte; "GOBJ" predates both and decodes as epoch 0.
const (
	objMagic       = "GOB3"
	objMagicRev    = "GOB2"
	objMagicLegacy = "GOBJ"

	flagTombstone = 1

	// epochOffset locates the epoch stamp inside an encoded GOB3 record:
	// 4 bytes of magic + 8 bytes of OID.
	epochOffset = 12
)

// stampEpoch patches the commit epoch into an encoded GOB3 record.
func stampEpoch(rec []byte, epoch uint64) {
	binary.LittleEndian.PutUint64(rec[epochOffset:], epoch)
}

// encodeObject serialises an object as a GOB3 record with a zero epoch
// placeholder (stamped at commit), offloading images to blobs. alloc
// issues blob ids: in-memory AllocID reservations the enclosing batch
// pins at commit.
func (s *Store) encodeObject(obj *Object, alloc func(string) (uint64, error)) ([]byte, []storage.BlobID, error) {
	buf := []byte(objMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.OID))
	buf = binary.LittleEndian.AppendUint64(buf, 0) // epoch, stamped at commit
	buf = append(buf, 0)                           // flags
	buf = appendStr16(buf, obj.Class)
	buf = appendStr16(buf, string(obj.Extent.Frame.System))
	buf = appendStr16(buf, string(obj.Extent.Frame.Unit))
	for _, f := range []float64{obj.Extent.Space.MinX, obj.Extent.Space.MinY, obj.Extent.Space.MaxX, obj.Extent.Space.MaxY} {
		buf = binary.LittleEndian.AppendUint64(buf, floatBits(f))
	}
	if obj.Extent.HasTime {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.Extent.TimeIv.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(obj.Extent.TimeIv.End))

	names := make([]string, 0, len(obj.Attrs))
	for n := range obj.Attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(names)))
	var blobIDs []storage.BlobID
	for _, n := range names {
		v := obj.Attrs[n]
		buf = appendStr16(buf, n)
		if img, ok := v.(value.Image); ok && img.Img != nil {
			id, err := alloc("blob")
			if err != nil {
				return nil, nil, err
			}
			if err := s.st.Blobs().Put(storage.BlobID(id), raster.Marshal(img.Img)); err != nil {
				return nil, nil, err
			}
			blobIDs = append(blobIDs, storage.BlobID(id))
			buf = append(buf, 1)
			buf = binary.LittleEndian.AppendUint64(buf, id)
			continue
		}
		enc, err := value.Encode(v)
		if err != nil {
			return nil, nil, fmt.Errorf("object: attribute %q: %w", n, err)
		}
		buf = append(buf, 0)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, blobIDs, nil
}

// encodeTombstone serialises a deletion marker for an OID at an epoch.
func encodeTombstone(oid OID, class string, epoch uint64) []byte {
	buf := []byte(objMagic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = append(buf, flagTombstone)
	buf = appendStr16(buf, class)
	return buf
}

func decodeObject(rec []byte) (obj *Object, blobs []storage.BlobID, epoch uint64, deleted bool, err error) {
	r := &reader{buf: rec}
	magic := string(r.bytes(4))
	switch magic {
	case objMagic, objMagicRev, objMagicLegacy:
	default:
		return nil, nil, 0, false, fmt.Errorf("bad object magic")
	}
	obj = &Object{Attrs: make(map[string]value.Value)}
	obj.OID = OID(r.u64())
	if magic != objMagicLegacy {
		epoch = r.u64()
	}
	if magic == objMagic {
		deleted = r.u8()&flagTombstone != 0
	}
	obj.Class = r.str16()
	if deleted {
		if r.err != nil {
			return nil, nil, 0, false, r.err
		}
		return obj, nil, epoch, true, nil
	}
	obj.Extent.Frame.System = sptemp.RefSystem(r.str16())
	obj.Extent.Frame.Unit = sptemp.RefUnit(r.str16())
	obj.Extent.Space = sptemp.Box{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
	obj.Extent.HasTime = r.u8() == 1
	obj.Extent.TimeIv = sptemp.Interval{Start: sptemp.AbsTime(r.u64()), End: sptemp.AbsTime(r.u64())}
	n := int(r.u16())
	for i := 0; i < n; i++ {
		name := r.str16()
		kind := r.u8()
		if kind == 1 {
			id := storage.BlobID(r.u64())
			obj.Attrs[name] = blobRef{id: id}
			blobs = append(blobs, id)
			continue
		}
		vn := int(r.u32())
		enc := r.bytes(vn)
		if r.err != nil {
			return nil, nil, 0, false, r.err
		}
		v, err := value.Decode(enc)
		if err != nil {
			return nil, nil, 0, false, fmt.Errorf("attribute %q: %w", name, err)
		}
		obj.Attrs[name] = v
	}
	if r.err != nil {
		return nil, nil, 0, false, r.err
	}
	return obj, blobs, epoch, false, nil
}

// decodeExtentOnly reads just the extent header, skipping attribute decode
// for fast predicate checks. Tombstone records have no extent and are an
// error here — visibility resolution never hands one to a reader.
func decodeExtentOnly(rec []byte) (sptemp.Extent, error) {
	r := &reader{buf: rec}
	magic := string(r.bytes(4))
	switch magic {
	case objMagic, objMagicRev, objMagicLegacy:
	default:
		return sptemp.Extent{}, fmt.Errorf("bad object magic")
	}
	r.u64() // oid
	if magic != objMagicLegacy {
		r.u64() // epoch / rev
	}
	if magic == objMagic {
		if r.u8()&flagTombstone != 0 {
			return sptemp.Extent{}, fmt.Errorf("object: tombstone record has no extent")
		}
	}
	r.str16()
	var e sptemp.Extent
	e.Frame.System = sptemp.RefSystem(r.str16())
	e.Frame.Unit = sptemp.RefUnit(r.str16())
	e.Space = sptemp.Box{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
	e.HasTime = r.u8() == 1
	e.TimeIv = sptemp.Interval{Start: sptemp.AbsTime(r.u64()), End: sptemp.AbsTime(r.u64())}
	return e, r.err
}

func appendStr16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func floatBits(f float64) uint64 { return mathFloat64bits(f) }
