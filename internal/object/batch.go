package object

import (
	"errors"
	"fmt"
	"iter"
	"sort"

	"gaea/internal/catalog"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
)

// Session-facing batch surface of the object store. A kernel session
// stages creates/updates/deletes and applies them here as ONE atomic
// storage batch: every heap record (including extra rows such as the
// task-log entries for data loads) lands in a single WAL group with a
// single fsync, so a crash keeps either the whole session or none of it.

// ExtraRec is an opaque heap record committed in the same atomic batch as
// the object mutations (the kernel stages task-log rows this way).
type ExtraRec struct {
	Heap string
	Rec  []byte
}

// BatchOps stages a set of object mutations applied atomically. Insert
// objects must have been through Reserve (validated, OID assigned);
// update objects through CheckUpdate. An OID may appear at most once
// across Updates and Deletes.
type BatchOps struct {
	Inserts []*Object
	Updates []*Object
	Deletes []OID
	Extra   []ExtraRec
	// PinSeqs names sequences (beyond the store's own oid/objrev/blob)
	// whose in-memory reservations this batch references durably.
	PinSeqs []string
}

// ValidateNew checks a new object against its class schema without
// persisting or assigning anything.
func (s *Store) ValidateNew(obj *Object) error {
	cls, err := s.cat.Class(obj.Class)
	if err != nil {
		return err
	}
	return s.validate(cls, obj)
}

// Reserve validates a new object against its class schema and assigns it
// an OID from the store's sequence without persisting anything. The
// reservation is in-memory only; it becomes durable with the batch that
// inserts the object (ApplyBatch pins the sequence). A reservation that
// is abandoned simply goes unreferenced — at worst an OID gap.
func (s *Store) Reserve(obj *Object) (OID, error) {
	if err := s.ValidateNew(obj); err != nil {
		return 0, err
	}
	obj.OID = OID(s.st.AllocID("oid"))
	return obj.OID, nil
}

// CheckUpdate validates an in-place update target without applying it:
// the new state must satisfy the class schema and the OID must currently
// resolve to an object of that class.
func (s *Store) CheckUpdate(obj *Object) error {
	if obj.OID == 0 {
		return fmt.Errorf("%w: update needs an OID", ErrBadAttr)
	}
	cls, err := s.cat.Class(obj.Class)
	if err != nil {
		return err
	}
	if err := s.validate(cls, obj); err != nil {
		return err
	}
	s.mu.RLock()
	ref, ok := s.rids[obj.OID]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: oid %d", ErrNotFound, obj.OID)
	}
	if ref.heap != heapFor(obj.Class) {
		return fmt.Errorf("%w: object %d is of class %s, not %s",
			ErrBadAttr, obj.OID, ref.heap[len("obj_"):], obj.Class)
	}
	return nil
}

// ApplyBatch applies a staged set of mutations as one atomic storage
// batch. Encoding (and blob offload) happens before the store lock is
// taken; rid resolution, the WAL group commit, and index publication
// happen under it, so concurrent single-op mutators cannot interleave.
// An update or delete whose target vanished since staging fails the
// whole batch with ErrConflict.
func (s *Store) ApplyBatch(ops BatchOps) error {
	alloc := func(seq string) (uint64, error) { return s.st.AllocID(seq), nil }
	type encoded struct {
		obj   *Object
		rec   []byte
		blobs []storage.BlobID
	}
	var newBlobs []storage.BlobID
	undoBlobs := func() {
		for _, b := range newBlobs {
			_ = s.st.Blobs().Delete(b)
		}
	}
	encode := func(objs []*Object) ([]encoded, error) {
		out := make([]encoded, 0, len(objs))
		for _, obj := range objs {
			rec, blobs, err := s.encodeObject(obj, alloc)
			if err != nil {
				return nil, err
			}
			newBlobs = append(newBlobs, blobs...)
			out = append(out, encoded{obj: obj, rec: rec, blobs: blobs})
		}
		return out, nil
	}
	inserts, err := encode(ops.Inserts)
	if err != nil {
		undoBlobs()
		return err
	}
	for _, in := range inserts {
		if in.obj.OID == 0 {
			undoBlobs()
			return fmt.Errorf("%w: batch insert without a reserved OID", ErrBadAttr)
		}
	}
	updates, err := encode(ops.Updates)
	if err != nil {
		undoBlobs()
		return err
	}

	s.mu.Lock()
	// Resolve every mutated rid under the lock; a missing target means a
	// concurrent single-op writer won the race since staging.
	oldRefs := make([]ridRef, len(updates))
	for i, up := range updates {
		ref, ok := s.rids[up.obj.OID]
		if !ok {
			s.mu.Unlock()
			undoBlobs()
			return fmt.Errorf("%w: oid %d vanished before commit", ErrConflict, up.obj.OID)
		}
		if ref.heap != heapFor(up.obj.Class) {
			s.mu.Unlock()
			undoBlobs()
			return fmt.Errorf("%w: object %d is of class %s, not %s",
				ErrBadAttr, up.obj.OID, ref.heap[len("obj_"):], up.obj.Class)
		}
		oldRefs[i] = ref
	}
	delRefs := make([]ridRef, len(ops.Deletes))
	for i, oid := range ops.Deletes {
		ref, ok := s.rids[oid]
		if !ok {
			s.mu.Unlock()
			undoBlobs()
			return fmt.Errorf("%w: oid %d vanished before commit", ErrConflict, oid)
		}
		delRefs[i] = ref
	}

	b := s.st.NewBatch()
	insIdx := make([]int, len(inserts))
	for i, in := range inserts {
		insIdx[i] = b.Insert(heapFor(in.obj.Class), in.rec)
	}
	upIdx := make([]int, len(updates))
	for i, up := range updates {
		upIdx[i] = b.Insert(oldRefs[i].heap, up.rec)
		b.Delete(oldRefs[i].heap, oldRefs[i].rid)
	}
	for i := range ops.Deletes {
		b.Delete(delRefs[i].heap, delRefs[i].rid)
	}
	for _, ex := range ops.Extra {
		b.Insert(ex.Heap, ex.Rec)
	}
	for _, seq := range append([]string{"oid", "objrev", "blob"}, ops.PinSeqs...) {
		b.PinSequence(seq)
	}
	rids, err := b.Commit()
	if err != nil {
		s.mu.Unlock()
		undoBlobs()
		return err
	}

	// The batch is durable: publish to the in-memory maps and indexes.
	var orphaned []storage.BlobID
	for i, in := range inserts {
		s.rids[in.obj.OID] = ridRef{heap: heapFor(in.obj.Class), rid: rids[insIdx[i]]}
		s.indexLocked(in.obj.Class, in.obj)
		s.blobsByOID[in.obj.OID] = in.blobs
	}
	for i, up := range updates {
		orphaned = append(orphaned, s.blobsByOID[up.obj.OID]...)
		s.rids[up.obj.OID] = ridRef{heap: oldRefs[i].heap, rid: rids[upIdx[i]]}
		s.blobsByOID[up.obj.OID] = up.blobs
		if ti := s.temporal[up.obj.Class]; ti != nil && !up.obj.Extent.HasTime {
			ti.Delete(uint64(up.obj.OID))
		}
		s.indexLocked(up.obj.Class, up.obj)
	}
	for i, oid := range ops.Deletes {
		class := delRefs[i].heap[len("obj_"):]
		orphaned = append(orphaned, s.blobsByOID[oid]...)
		delete(s.rids, oid)
		delete(s.blobsByOID, oid)
		if gi := s.spatial[class]; gi != nil {
			gi.Delete(uint64(oid))
		}
		if ti := s.temporal[class]; ti != nil {
			ti.Delete(uint64(oid))
		}
		s.members[class] = removeSorted(s.members[class], oid)
	}
	s.mu.Unlock()

	// Superseded blobs are best-effort cleanup, exactly as in Update.
	for _, bl := range orphaned {
		_ = s.st.Blobs().Delete(bl)
	}
	return nil
}

// QueryFrom streams the OIDs of class objects whose extent matches pred
// in ascending OID order, starting strictly after `after` (0 = from the
// start). The candidate set is snapshotted from the indexes up front
// (cheap — OIDs only), but extents are loaded and verified lazily per
// pull, so a consumer that stops early never touches the rest of the
// extent. Candidates deleted between snapshot and pull are skipped.
func (s *Store) QueryFrom(class string, pred sptemp.Extent, after OID) iter.Seq2[OID, error] {
	return func(yield func(OID, error) bool) {
		if !s.cat.Exists(class) {
			yield(0, fmt.Errorf("%w: class %q", catalog.ErrClassNotFound, class))
			return
		}
		s.mu.RLock()
		var candidates []OID
		switch {
		case !pred.Space.IsEmpty() && s.spatial[class] != nil:
			for _, id := range s.spatial[class].Search(pred.Space) {
				candidates = append(candidates, OID(id))
			}
		case pred.HasTime && s.temporal[class] != nil:
			for _, id := range s.temporal[class].Search(pred.TimeIv) {
				candidates = append(candidates, OID(id))
			}
		default:
			candidates = append(candidates, s.members[class]...)
		}
		s.mu.RUnlock()
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

		for _, oid := range candidates {
			if oid <= after {
				continue
			}
			s.mu.RLock()
			ref, ok := s.rids[oid]
			s.mu.RUnlock()
			if !ok {
				continue // deleted since the snapshot
			}
			rec, err := s.st.Get(ref.heap, ref.rid)
			if err != nil {
				if errors.Is(err, storage.ErrNotFound) {
					continue
				}
				yield(0, err)
				return
			}
			ext, err := decodeExtentOnly(rec)
			if err != nil {
				yield(0, err)
				return
			}
			if !ext.Matches(pred) {
				continue
			}
			if !yield(oid, nil) {
				return
			}
		}
	}
}
