package object

import (
	"errors"
	"fmt"
	"iter"

	"gaea/internal/catalog"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
)

// Session-facing batch surface of the object store. A kernel session
// stages creates/updates/deletes and applies them here as ONE atomic
// storage batch committed at ONE epoch: every heap record (including
// extra rows such as the task-log entries for data loads) lands in a
// single WAL group with a single fsync, so a crash keeps either the
// whole session or none of it, and readers see either the whole session
// or none of it.

// ExtraRec is an opaque heap record committed in the same atomic batch as
// the object mutations (the kernel stages task-log rows this way).
type ExtraRec struct {
	Heap string
	Rec  []byte
}

// BatchOps stages a set of object mutations applied atomically. Insert
// objects must have been through Reserve (validated, OID assigned);
// update objects through CheckUpdate. An OID may appear at most once
// across Updates and Deletes.
type BatchOps struct {
	Inserts []*Object
	Updates []*Object
	Deletes []OID
	Extra   []ExtraRec
	// PinSeqs names sequences (beyond the store's own oid/blob) whose
	// in-memory reservations this batch references durably.
	PinSeqs []string
	// ReadEpoch, when non-zero, enables first-committer-wins validation:
	// an update or delete whose target committed a newer version after
	// this epoch fails the whole batch with ErrConflict. Sessions pass
	// the epoch they captured at Begin; internal mutators (refresh, GC
	// drops) pass zero and win last-writer style.
	ReadEpoch uint64
	// PreparedToken names the prepared two-phase transaction this batch
	// completes: targets locked under the SAME token pass validation
	// (the locks are this transaction's own), and the token's locks are
	// released once the batch commits. Zero for ordinary batches.
	PreparedToken uint64
}

// ValidateNew checks a new object against its class schema without
// persisting or assigning anything.
func (s *Store) ValidateNew(obj *Object) error {
	cls, err := s.cat.Class(obj.Class)
	if err != nil {
		return err
	}
	return s.validate(cls, obj)
}

// Reserve validates a new object against its class schema and assigns it
// an OID from the store's sequence without persisting anything. The
// reservation is in-memory only; it becomes durable with the batch that
// inserts the object (ApplyBatch pins the sequence). A reservation that
// is abandoned simply goes unreferenced — at worst an OID gap.
func (s *Store) Reserve(obj *Object) (OID, error) {
	if err := s.ValidateNew(obj); err != nil {
		return 0, err
	}
	obj.OID = OID(s.st.AllocID("oid"))
	return obj.OID, nil
}

// CheckUpdate validates an update target without applying it: the new
// state must satisfy the class schema and the OID must currently resolve
// to a live object of that class.
func (s *Store) CheckUpdate(obj *Object) error {
	if obj.OID == 0 {
		return fmt.Errorf("%w: update needs an OID", ErrBadAttr)
	}
	cls, err := s.cat.Class(obj.Class)
	if err != nil {
		return err
	}
	if err := s.validate(cls, obj); err != nil {
		return err
	}
	s.mu.RLock()
	c, ok := s.chains[obj.OID]
	live := ok && !c.head().del
	heap := ""
	if ok {
		heap = c.heap
	}
	s.mu.RUnlock()
	if !live {
		return fmt.Errorf("%w: oid %d", ErrNotFound, obj.OID)
	}
	if heap != heapFor(obj.Class) {
		return fmt.Errorf("%w: object %d is of class %s, not %s",
			ErrBadAttr, obj.OID, heap[len("obj_"):], obj.Class)
	}
	return nil
}

// ApplyBatch applies a staged set of mutations as one atomic storage
// batch at one fresh commit epoch, and returns that epoch. Encoding (and
// blob offload) happens before the store lock is taken; epoch
// reservation, conflict validation, the WAL group commit, and version
// publication happen under it, so epochs become visible to readers in
// commit order. Superseded versions are NOT reclaimed — they stay in
// their chains for pinned snapshots until GC. A target that vanished (or,
// under ReadEpoch, changed) since staging fails the whole batch with
// ErrConflict.
func (s *Store) ApplyBatch(ops BatchOps) (uint64, error) {
	alloc := func(seq string) (uint64, error) { return s.st.AllocID(seq), nil }
	type encoded struct {
		obj   *Object
		rec   []byte
		blobs []storage.BlobID
	}
	var newBlobs []storage.BlobID
	undoBlobs := func() {
		for _, b := range newBlobs {
			_ = s.st.Blobs().Delete(b)
		}
	}
	encode := func(objs []*Object) ([]encoded, error) {
		out := make([]encoded, 0, len(objs))
		for _, obj := range objs {
			rec, blobs, err := s.encodeObject(obj, alloc)
			if err != nil {
				return nil, err
			}
			newBlobs = append(newBlobs, blobs...)
			out = append(out, encoded{obj: obj, rec: rec, blobs: blobs})
		}
		return out, nil
	}
	inserts, err := encode(ops.Inserts)
	if err != nil {
		undoBlobs()
		return 0, err
	}
	for _, in := range inserts {
		if in.obj.OID == 0 {
			undoBlobs()
			return 0, fmt.Errorf("%w: batch insert without a reserved OID", ErrBadAttr)
		}
	}
	updates, err := encode(ops.Updates)
	if err != nil {
		undoBlobs()
		return 0, err
	}

	// commitMu serialises mutators across the whole validate →
	// reserve-epoch → storage-commit → publish window: epochs publish in
	// reservation order, and the chains a validation saw cannot change
	// before publication. Readers are NOT excluded — they keep resolving
	// at their pinned epochs off the still-published state.
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	// Validate every mutated chain. A missing or tombstoned target means
	// a concurrent writer removed it since staging; under ReadEpoch, a
	// head newer than the session's read epoch means another session
	// committed first (first-committer-wins). A target locked by a
	// DIFFERENT prepared transaction conflicts regardless of epochs: the
	// lock holder's commit is already promised.
	s.mu.RLock()
	checkTarget := func(oid OID, wantHeap string) (*chain, error) {
		return s.checkTargetLocked(oid, wantHeap, ops.ReadEpoch, ops.PreparedToken)
	}
	upChains := make([]*chain, len(updates))
	for i, up := range updates {
		c, err := checkTarget(up.obj.OID, heapFor(up.obj.Class))
		if err != nil {
			s.mu.RUnlock()
			undoBlobs()
			return 0, err
		}
		upChains[i] = c
	}
	delChains := make([]*chain, len(ops.Deletes))
	for i, oid := range ops.Deletes {
		c, err := checkTarget(oid, "")
		if err != nil {
			s.mu.RUnlock()
			undoBlobs()
			return 0, err
		}
		delChains[i] = c
	}
	s.mu.RUnlock()

	// Reserve the commit epoch and stamp it into every record, then
	// commit the storage batch WITHOUT holding the reader-visible lock:
	// snapshot readers proceed against the pre-commit state throughout.
	epoch := s.st.ReserveEpoch()
	b := s.st.NewBatch()
	b.SetEpoch(epoch)
	insIdx := make([]int, len(inserts))
	for i, in := range inserts {
		stampEpoch(in.rec, epoch)
		insIdx[i] = b.Insert(heapFor(in.obj.Class), in.rec)
	}
	upIdx := make([]int, len(updates))
	for i, up := range updates {
		stampEpoch(up.rec, epoch)
		upIdx[i] = b.Insert(upChains[i].heap, up.rec)
	}
	delIdx := make([]int, len(ops.Deletes))
	for i, oid := range ops.Deletes {
		class := delChains[i].heap[len("obj_"):]
		delIdx[i] = b.Insert(delChains[i].heap, encodeTombstone(oid, class, epoch))
	}
	for _, ex := range ops.Extra {
		b.Insert(ex.Heap, ex.Rec)
	}
	for _, seq := range append([]string{"oid", "blob"}, ops.PinSeqs...) {
		b.PinSequence(seq)
	}
	rids, err := b.Commit()
	if err != nil {
		undoBlobs()
		return 0, err
	}

	// The batch is durable: publish the new versions and the epoch in one
	// short exclusive window.
	s.mu.Lock()
	for i, in := range inserts {
		s.chains[in.obj.OID] = &chain{
			heap: heapFor(in.obj.Class),
			vers: []version{{epoch: epoch, rid: rids[insIdx[i]], blobs: in.blobs}},
		}
		s.indexLocked(in.obj.Class, in.obj.OID, in.obj.Extent)
	}
	for i, up := range updates {
		c := upChains[i]
		c.vers = append(c.vers, version{epoch: epoch, rid: rids[upIdx[i]], blobs: up.blobs})
		class := up.obj.Class
		s.indexLocked(class, up.obj.OID, up.obj.Extent)
		s.changed[class] = append(s.changed[class], changeEnt{epoch: epoch, oid: up.obj.OID})
	}
	for i, oid := range ops.Deletes {
		c := delChains[i]
		c.vers = append(c.vers, version{epoch: epoch, rid: rids[delIdx[i]], del: true})
		class := c.heap[len("obj_"):]
		s.unindexLocked(class, oid)
		s.changed[class] = append(s.changed[class], changeEnt{epoch: epoch, oid: oid})
	}
	s.epoch = epoch
	after := s.AfterCommit
	s.mu.Unlock()

	if ops.PreparedToken != 0 {
		s.dropPrepared(ops.PreparedToken)
	}
	if after != nil {
		after()
	}
	return epoch, nil
}

// checkTargetLocked validates one mutation target. Callers hold
// commitMu (which guards prepLocks) and s.mu at least shared (which
// guards chains).
func (s *Store) checkTargetLocked(oid OID, wantHeap string, readEpoch, token uint64) (*chain, error) {
	c, ok := s.chains[oid]
	if !ok || c.head().del {
		return nil, fmt.Errorf("%w: oid %d vanished before commit", ErrConflict, oid)
	}
	if wantHeap != "" && c.heap != wantHeap {
		return nil, fmt.Errorf("%w: object %d is of class %s, not %s",
			ErrBadAttr, oid, c.heap[len("obj_"):], wantHeap[len("obj_"):])
	}
	if holder, locked := s.prepLocks[oid]; locked && holder != token {
		return nil, fmt.Errorf("%w: oid %d is locked by prepared transaction %d", ErrConflict, oid, holder)
	}
	if readEpoch > 0 && c.head().epoch > readEpoch {
		return nil, fmt.Errorf("%w: oid %d committed at epoch %d after this session's read epoch %d",
			ErrConflict, oid, c.head().epoch, readEpoch)
	}
	return c, nil
}

// PrepareBatch is two-phase-commit phase one at the store level: it
// runs exactly the validation ApplyBatch would (vanished or conflicting
// targets, foreign prepared locks) and, on success, locks every update
// and delete target under the transaction token. Until the token is
// resolved — ApplyBatch with the same PreparedToken, or
// ReleasePrepared — no other batch can touch those targets, so the
// later ApplyBatch cannot fail first-committer-wins validation: the
// vote to commit is a promise the store keeps. Nothing is written; a
// crash simply loses the locks (presumed abort).
func (s *Store) PrepareBatch(ops BatchOps, token uint64) error {
	if token == 0 {
		return fmt.Errorf("%w: prepare requires a transaction token", ErrBadAttr)
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.RLock()
	targets := make([]OID, 0, len(ops.Updates)+len(ops.Deletes))
	for _, up := range ops.Updates {
		if _, err := s.checkTargetLocked(up.OID, heapFor(up.Class), ops.ReadEpoch, token); err != nil {
			s.mu.RUnlock()
			return err
		}
		targets = append(targets, up.OID)
	}
	for _, oid := range ops.Deletes {
		if _, err := s.checkTargetLocked(oid, "", ops.ReadEpoch, token); err != nil {
			s.mu.RUnlock()
			return err
		}
		targets = append(targets, oid)
	}
	s.mu.RUnlock()
	for _, oid := range targets {
		s.prepLocks[oid] = token
	}
	return nil
}

// ReleasePrepared drops every lock held by a prepared transaction (the
// abort path; the commit path releases through ApplyBatch). Unknown
// tokens are a no-op — release must be idempotent.
func (s *Store) ReleasePrepared(token uint64) {
	if token == 0 {
		return
	}
	s.commitMu.Lock()
	s.dropPrepared(token)
	s.commitMu.Unlock()
}

// dropPrepared removes a token's locks. Caller holds commitMu.
func (s *Store) dropPrepared(token uint64) {
	for oid, holder := range s.prepLocks {
		if holder == token {
			delete(s.prepLocks, oid)
		}
	}
}

// QueryFromAt streams the OIDs of class objects whose extent matches pred
// at the snapshot epoch, in ascending OID order, starting strictly after
// `after` (0 = from the start). The candidate set is collected from the
// newest-version indexes plus the changed-overlay up front (cheap — OIDs
// only), but visibility resolution and extent verification happen lazily
// per pull. The caller must hold a pin on the epoch for the duration of
// the iteration, which makes resolution stable: a candidate visible at
// the epoch cannot be reclaimed mid-drain, so a consumer resuming from a
// cursor sees exactly the snapshot — no skips, no phantoms.
func (s *Store) QueryFromAt(class string, pred sptemp.Extent, after OID, epoch uint64) iter.Seq2[OID, error] {
	return func(yield func(OID, error) bool) {
		if !s.cat.Exists(class) {
			yield(0, fmt.Errorf("%w: class %q", catalog.ErrClassNotFound, class))
			return
		}
		candidates := s.candidatesAt(class, pred, epoch)
		for _, oid := range candidates {
			if oid <= after {
				continue
			}
			heap, v, ok := s.resolve(oid, epoch)
			if !ok {
				continue // not visible at this snapshot
			}
			rec, err := s.st.Get(heap, v.rid)
			if err != nil {
				if errors.Is(err, storage.ErrNotFound) {
					continue
				}
				yield(0, err)
				return
			}
			ext, err := decodeExtentOnly(rec)
			if err != nil {
				yield(0, err)
				return
			}
			if !ext.Matches(pred) {
				continue
			}
			if !yield(oid, nil) {
				return
			}
		}
	}
}
