package object

import (
	"encoding/binary"
	"fmt"
	"math"
)

// reader is a cursor over an encoded object record that accumulates the
// first error instead of forcing a check per read.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("object: truncated record reading %s at offset %d", what, r.off)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str16() string {
	n := int(r.u16())
	b := r.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }
