package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// BlobID identifies a large object.
type BlobID uint64

// ErrBlobNotFound is returned for missing blobs.
var ErrBlobNotFound = errors.New("storage: blob not found")

// BlobStore holds large payloads (image pixels) as individual files,
// mirroring the paper's image ADT whose internal representation records a
// filepath: "filepath is the absolute path of the file that stores the
// actual image data" (§2.1.3). Writes are crash-safe via write-temp +
// rename; every blob carries a checksum footer.
type BlobStore struct {
	dir string
}

func openBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &BlobStore{dir: dir}, nil
}

func (b *BlobStore) path(id BlobID) string {
	return filepath.Join(b.dir, fmt.Sprintf("%016x.blob", uint64(id)))
}

// Path returns the file path a blob is stored at — the value the paper's
// img_filepath operator reports.
func (b *BlobStore) Path(id BlobID) string { return b.path(id) }

// Put stores data under the given id (ids come from the store's sequence).
func (b *BlobStore) Put(id BlobID, data []byte) error {
	tmp := b.path(id) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	footer := make([]byte, 8)
	binary.LittleEndian.PutUint32(footer, crc32.ChecksumIEEE(data))
	binary.LittleEndian.PutUint32(footer[4:], uint32(len(data)))
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(footer); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, b.path(id))
}

// Get returns the blob's bytes, verifying the checksum.
func (b *BlobStore) Get(id BlobID) ([]byte, error) {
	data, err := os.ReadFile(b.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %d", ErrBlobNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("storage: blob %d truncated", id)
	}
	body := data[:len(data)-8]
	footer := data[len(data)-8:]
	wantCRC := binary.LittleEndian.Uint32(footer)
	wantLen := int(binary.LittleEndian.Uint32(footer[4:]))
	if len(body) != wantLen {
		return nil, fmt.Errorf("storage: blob %d length %d, footer says %d", id, len(body), wantLen)
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("storage: blob %d checksum mismatch", id)
	}
	return body, nil
}

// Delete removes a blob; deleting a missing blob is an error so lineage
// bugs surface.
func (b *BlobStore) Delete(id BlobID) error {
	err := os.Remove(b.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %d", ErrBlobNotFound, id)
	}
	return err
}

// Size returns the stored payload size of a blob in bytes (excluding the
// checksum footer). The derived-data manager uses it to weigh storage cost
// against recomputation cost.
func (b *BlobStore) Size(id BlobID) (int64, error) {
	fi, err := os.Stat(b.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %d", ErrBlobNotFound, id)
	}
	if err != nil {
		return 0, err
	}
	n := fi.Size() - 8
	if n < 0 {
		n = 0
	}
	return n, nil
}

// IDs lists all stored blob ids, ascending.
func (b *BlobStore) IDs() ([]BlobID, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var ids []BlobID
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".blob") {
			continue
		}
		hex := strings.TrimSuffix(name, ".blob")
		n, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		ids = append(ids, BlobID(n))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
