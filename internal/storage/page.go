// Package storage is the embedded storage engine substrate beneath the
// Gaea kernel, substituting for the Postgres backend of the paper's
// prototype (see DESIGN.md §5). It provides durable record storage
// (slotted-page heap files behind a buffer pool), a redo write-ahead log
// with crash recovery, persistent sequences, and a file-backed blob store
// for large image payloads — the same contract the metadata layers would
// get from Postgres.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed page size of heap files.
const PageSize = 8192

// Page header layout (little endian):
//
//	offset 0: magic      uint16
//	offset 2: nslots     uint16
//	offset 4: freeEnd    uint16  (start of the lowest record)
//	offset 6: crc32      uint32  (over bytes [10, PageSize), i.e. everything after the checksum)
//	offset 10: slot array, 4 bytes per slot: recOff uint16, recLen uint16
//
// Records grow downward from the end of the page; the slot array grows
// upward. A slot with recOff == 0 is dead (deleted).
const (
	pageMagic  = 0x6AEA
	pageHdrLen = 10
	slotSize   = 4
)

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("storage: page full")
	ErrBadSlot     = errors.New("storage: bad slot")
	ErrRecDeleted  = errors.New("storage: record deleted")
	ErrCorruptPage = errors.New("storage: page checksum mismatch")
	ErrTooLarge    = errors.New("storage: record exceeds page capacity")
)

// MaxRecordLen is the largest record a page can hold (one slot, full free
// space).
const MaxRecordLen = PageSize - pageHdrLen - slotSize

type page struct {
	buf [PageSize]byte
}

func newPage() *page {
	p := &page{}
	binary.LittleEndian.PutUint16(p.buf[0:], pageMagic)
	binary.LittleEndian.PutUint16(p.buf[2:], 0)
	binary.LittleEndian.PutUint16(p.buf[4:], PageSize&0xFFFF) // stored mod 2^16; PageSize==8192 fits
	return p
}

func (p *page) nslots() int  { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p *page) freeEnd() int { return int(binary.LittleEndian.Uint16(p.buf[4:])) }

func (p *page) setNslots(n int)  { binary.LittleEndian.PutUint16(p.buf[2:], uint16(n)) }
func (p *page) setFreeEnd(v int) { binary.LittleEndian.PutUint16(p.buf[4:], uint16(v)) }

func (p *page) slot(i int) (off, length int) {
	base := pageHdrLen + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])), int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *page) setSlot(i, off, length int) {
	base := pageHdrLen + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// freeSpace returns contiguous free bytes between the slot array and the
// record heap.
func (p *page) freeSpace() int {
	return p.freeEnd() - (pageHdrLen + p.nslots()*slotSize)
}

// deadSpace returns bytes held by deleted records (reclaimable by compact).
func (p *page) deadSpace() int {
	used := 0
	for i := 0; i < p.nslots(); i++ {
		off, length := p.slot(i)
		if off != 0 {
			used += length
		}
	}
	return PageSize - p.freeEnd() - used
}

// canInsert reports whether a record of length n fits, possibly after
// compaction, reusing a dead slot when available.
func (p *page) canInsert(n int) bool {
	need := n
	if p.firstDeadSlot() < 0 {
		need += slotSize
	}
	return p.freeSpace()+p.deadSpace() >= need
}

func (p *page) firstDeadSlot() int {
	for i := 0; i < p.nslots(); i++ {
		if off, _ := p.slot(i); off == 0 {
			return i
		}
	}
	return -1
}

// insert places rec into the page, compacting first if fragmentation
// requires it, and returns the slot number.
func (p *page) insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordLen {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(rec))
	}
	if len(rec) == 0 {
		return 0, errors.New("storage: empty record")
	}
	slot := p.firstDeadSlot()
	need := len(rec)
	if slot < 0 {
		need += slotSize
	}
	if p.freeSpace() < need {
		if p.freeSpace()+p.deadSpace() < need {
			return 0, ErrPageFull
		}
		p.compact()
		if p.freeSpace() < need {
			return 0, ErrPageFull
		}
	}
	if slot < 0 {
		slot = p.nslots()
		p.setNslots(slot + 1)
	}
	off := p.freeEnd() - len(rec)
	copy(p.buf[off:], rec)
	p.setFreeEnd(off)
	p.setSlot(slot, off, len(rec))
	return slot, nil
}

// insertAt places rec into a specific slot, used by WAL replay. Existing
// identical records are accepted silently (idempotent replay); conflicting
// content is an error.
func (p *page) insertAt(slot int, rec []byte) error {
	if len(rec) > MaxRecordLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(rec))
	}
	if slot < p.nslots() {
		if off, length := p.slot(slot); off != 0 {
			if length == len(rec) && string(p.buf[off:off+length]) == string(rec) {
				return nil // already applied
			}
			return fmt.Errorf("storage: replay conflict at slot %d", slot)
		}
	}
	// Extend the slot array through the target slot.
	for p.nslots() <= slot {
		if p.freeSpace() < slotSize {
			return ErrPageFull
		}
		n := p.nslots()
		p.setSlot(n, 0, 0)
		p.setNslots(n + 1)
	}
	if p.freeSpace() < len(rec) {
		if p.freeSpace()+p.deadSpace() < len(rec) {
			return ErrPageFull
		}
		p.compact()
		if p.freeSpace() < len(rec) {
			return ErrPageFull
		}
	}
	off := p.freeEnd() - len(rec)
	copy(p.buf[off:], rec)
	p.setFreeEnd(off)
	p.setSlot(slot, off, len(rec))
	return nil
}

// get returns the record bytes in slot i (a view into the page; callers
// copy before retaining).
func (p *page) get(i int) ([]byte, error) {
	if i < 0 || i >= p.nslots() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.nslots())
	}
	off, length := p.slot(i)
	if off == 0 {
		return nil, ErrRecDeleted
	}
	return p.buf[off : off+length], nil
}

// del marks slot i dead. The record space is reclaimed by a later compact.
func (p *page) del(i int) error {
	if i < 0 || i >= p.nslots() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.nslots())
	}
	off, _ := p.slot(i)
	if off == 0 {
		return ErrRecDeleted
	}
	p.setSlot(i, 0, 0)
	return nil
}

// compact rewrites live records contiguously at the end of the page.
func (p *page) compact() {
	type live struct {
		slot, off, length int
	}
	var lives []live
	for i := 0; i < p.nslots(); i++ {
		off, length := p.slot(i)
		if off != 0 {
			lives = append(lives, live{i, off, length})
		}
	}
	var scratch [PageSize]byte
	end := PageSize
	for _, l := range lives {
		end -= l.length
		copy(scratch[end:], p.buf[l.off:l.off+l.length])
	}
	copy(p.buf[end:], scratch[end:PageSize])
	// Rewrite slot offsets in the same order the records were laid out.
	off := PageSize
	for _, l := range lives {
		off -= l.length
		p.setSlot(l.slot, off, l.length)
	}
	p.setFreeEnd(off)
}

// seal computes and stores the checksum; called before writing to disk.
func (p *page) seal() {
	crc := crc32.ChecksumIEEE(p.buf[pageHdrLen:])
	binary.LittleEndian.PutUint32(p.buf[6:], crc)
}

// verify checks magic and checksum; called after reading from disk.
func (p *page) verify() error {
	if binary.LittleEndian.Uint16(p.buf[0:]) != pageMagic {
		return fmt.Errorf("%w: bad magic", ErrCorruptPage)
	}
	want := binary.LittleEndian.Uint32(p.buf[6:])
	if got := crc32.ChecksumIEEE(p.buf[pageHdrLen:]); got != want {
		return fmt.Errorf("%w: crc %08x != %08x", ErrCorruptPage, got, want)
	}
	return nil
}
