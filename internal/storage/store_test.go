package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreInsertGetDelete(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()

	rid, err := s.Insert("objects", []byte("landcover africa 1986"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("objects", rid)
	if err != nil || string(got) != "landcover africa 1986" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Delete("objects", rid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("objects", rid); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted get err = %v", err)
	}
	if err := s.Delete("objects", rid); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if _, err := s.Get("nope", RID{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown heap err = %v", err)
	}
}

func TestStoreScan(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()

	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		rec := fmt.Sprintf("record-%03d", i)
		if _, err := s.Insert("scan", []byte(rec)); err != nil {
			t.Fatal(err)
		}
		want[rec] = true
	}
	seen := 0
	err := s.Scan("scan", func(rid RID, rec []byte) bool {
		if !want[string(rec)] {
			t.Errorf("unexpected record %q", rec)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 100 {
		t.Errorf("scanned %d records, want 100", seen)
	}
	// Early stop.
	n := 0
	s.Scan("scan", func(RID, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
	// Scanning a missing heap visits nothing.
	if err := s.Scan("ghost", func(RID, []byte) bool { t.Fatal("visited"); return false }); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMultiPageSpill(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()

	// ~4KB records force one per page roughly; 50 of them spill pages.
	rec := make([]byte, 4000)
	rids := make([]RID, 50)
	for i := range rids {
		rec[0] = byte(i)
		rid, err := s.Insert("big", rec)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	pages, live := s.HeapStats("big")
	if pages < 25 {
		t.Errorf("expected many pages, got %d", pages)
	}
	if live != 50 {
		t.Errorf("live = %d", live)
	}
	for i, rid := range rids {
		got, err := s.Get("big", rid)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("record %d damaged: %v", i, err)
		}
	}
}

func TestStoreRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()
	if _, err := s.Insert("x", make([]byte, MaxRecordLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized err = %v", err)
	}
}

func TestStorePersistenceAcrossClose(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	rid, err := s.Insert("objects", []byte("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MetaSet("schema/version", []byte("7")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir)
	defer s2.Close()
	got, err := s2.Get("objects", rid)
	if err != nil || string(got) != "persist me" {
		t.Fatalf("after reopen: %q, %v", got, err)
	}
	v, ok := s2.MetaGet("schema/version")
	if !ok || string(v) != "7" {
		t.Errorf("meta after reopen = %q, %v", v, ok)
	}
}

func TestStoreCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	// Use synced WAL so a "crash" loses nothing logged.
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 20; i++ {
		rid, err := s.Insert("objects", []byte(fmt.Sprintf("obj-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := s.Delete("objects", rids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.MetaSet("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NextID("tasks"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: abandon s without Close (buffered pages unflushed).
	s.closeHeaps()
	s.wal.close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	for i, rid := range rids {
		got, err := s2.Get("objects", rid)
		if i == 3 {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("deleted record resurrected: %q, %v", got, err)
			}
			continue
		}
		if err != nil || string(got) != fmt.Sprintf("obj-%d", i) {
			t.Errorf("record %d after recovery: %q, %v", i, got, err)
		}
	}
	if v, ok := s2.MetaGet("k"); !ok || string(v) != "v" {
		t.Error("meta lost in recovery")
	}
	// Sequence continues past the recovered value.
	id, err := s2.NextID("tasks")
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("sequence after recovery = %d, want 2", id)
	}
}

func TestStoreWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rid, err := s.Insert("objects", []byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	s.closeHeaps()
	s.wal.close()

	// Append garbage to the WAL to simulate a torn write.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE})
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn WAL: %v", err)
	}
	defer s2.Close()
	got, err := s2.Get("objects", rid)
	if err != nil || string(got) != "committed" {
		t.Errorf("committed record lost: %q, %v", got, err)
	}
}

func TestStoreSequences(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	for i := 1; i <= 5; i++ {
		id, err := s.NextID("oid")
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i) {
			t.Errorf("NextID = %d, want %d", id, i)
		}
	}
	other, _ := s.NextID("task")
	if other != 1 {
		t.Errorf("independent sequence = %d", other)
	}
	s.Close()
	s2 := openTestStore(t, dir)
	defer s2.Close()
	id, _ := s2.NextID("oid")
	if id != 6 {
		t.Errorf("sequence after reopen = %d, want 6", id)
	}
}

func TestStoreMetaOps(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()
	s.MetaSet("class/landcover", []byte("def1"))
	s.MetaSet("class/ndvi", []byte("def2"))
	s.MetaSet("other", []byte("x"))
	keys := s.MetaKeys("class/")
	if len(keys) != 2 || keys[0] != "class/landcover" || keys[1] != "class/ndvi" {
		t.Errorf("MetaKeys = %v", keys)
	}
	if err := s.MetaDelete("class/ndvi"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.MetaGet("class/ndvi"); ok {
		t.Error("deleted meta key still present")
	}
	if err := s.MetaDelete("never-existed"); err != nil {
		t.Errorf("deleting absent key should be a no-op: %v", err)
	}
	// Mutating the returned slice must not affect the store.
	v, _ := s.MetaGet("other")
	v[0] = 'y'
	v2, _ := s.MetaGet("other")
	if string(v2) != "x" {
		t.Error("MetaGet returned aliased storage")
	}
}

func TestBlobStore(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()
	blobs := s.Blobs()

	data := bytes.Repeat([]byte("pixels"), 10_000)
	id, err := s.NextID("blob")
	if err != nil {
		t.Fatal(err)
	}
	if err := blobs.Put(BlobID(id), data); err != nil {
		t.Fatal(err)
	}
	got, err := blobs.Get(BlobID(id))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob round trip failed: %v", err)
	}
	ids, err := blobs.IDs()
	if err != nil || len(ids) != 1 || ids[0] != BlobID(id) {
		t.Errorf("IDs = %v, %v", ids, err)
	}
	// Corruption is detected.
	path := blobs.Path(BlobID(id))
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	if _, err := blobs.Get(BlobID(id)); err == nil {
		t.Error("corrupt blob should fail checksum")
	}
	if err := blobs.Delete(BlobID(id)); err != nil {
		t.Fatal(err)
	}
	if _, err := blobs.Get(BlobID(id)); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("missing blob err = %v", err)
	}
	if err := blobs.Delete(BlobID(id)); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestStoreBadHeapName(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()
	for _, name := range []string{"", "a/b", "a b", `a\b`} {
		if _, err := s.Insert(name, []byte("x")); err == nil {
			t.Errorf("heap name %q should be rejected", name)
		}
	}
}

func TestStoreDeleteFreesSpaceForReuse(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	defer s.Close()
	rec := make([]byte, 3000)
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := s.Insert("reuse", rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore, _ := s.HeapStats("reuse")
	for _, rid := range rids {
		if err := s.Delete("reuse", rid); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Insert("reuse", rec); err != nil {
			t.Fatal(err)
		}
	}
	pagesAfter, live := s.HeapStats("reuse")
	if live != 10 {
		t.Errorf("live = %d", live)
	}
	if pagesAfter > pagesBefore {
		t.Errorf("space not reused: %d pages grew to %d", pagesBefore, pagesAfter)
	}
}
