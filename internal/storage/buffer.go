package storage

import (
	"container/list"
	"fmt"
)

// bufferPool caches heap pages with LRU eviction. Dirty pages are written
// back on eviction and on flushAll. The pool is not itself concurrency-
// safe; the owning Heap serialises access.
type bufferPool struct {
	cap    int
	read   func(uint32) (*page, error)
	write  func(uint32, *page) error
	frames map[uint32]*list.Element
	lru    *list.List // front = most recently used
	// Hits/Misses are exported through Stats for the S1 benchmark.
	hits, misses uint64
}

type frame struct {
	no    uint32
	p     *page
	dirty bool
}

func newBufferPool(capacity int, read func(uint32) (*page, error), write func(uint32, *page) error) *bufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &bufferPool{
		cap:    capacity,
		read:   read,
		write:  write,
		frames: make(map[uint32]*list.Element, capacity),
		lru:    list.New(),
	}
}

// get returns the cached page, loading (and possibly evicting) as needed.
func (b *bufferPool) get(no uint32) (*page, error) {
	if el, ok := b.frames[no]; ok {
		b.hits++
		b.lru.MoveToFront(el)
		return el.Value.(*frame).p, nil
	}
	b.misses++
	p, err := b.read(no)
	if err != nil {
		return nil, err
	}
	if err := b.insertFrame(no, p, false); err != nil {
		return nil, err
	}
	return p, nil
}

// put installs a page that was just created/written by the caller.
func (b *bufferPool) put(no uint32, p *page) {
	if el, ok := b.frames[no]; ok {
		fr := el.Value.(*frame)
		fr.p = p
		b.lru.MoveToFront(el)
		return
	}
	// Creation already wrote the page; cache it clean.
	_ = b.insertFrame(no, p, false)
}

func (b *bufferPool) insertFrame(no uint32, p *page, dirty bool) error {
	for b.lru.Len() >= b.cap {
		if err := b.evictOne(); err != nil {
			return err
		}
	}
	el := b.lru.PushFront(&frame{no: no, p: p, dirty: dirty})
	b.frames[no] = el
	return nil
}

func (b *bufferPool) evictOne() error {
	el := b.lru.Back()
	if el == nil {
		return fmt.Errorf("storage: buffer pool empty during eviction")
	}
	fr := el.Value.(*frame)
	if fr.dirty {
		if err := b.write(fr.no, fr.p); err != nil {
			return err
		}
	}
	b.lru.Remove(el)
	delete(b.frames, fr.no)
	return nil
}

// markDirty flags a cached page as modified.
func (b *bufferPool) markDirty(no uint32) {
	if el, ok := b.frames[no]; ok {
		el.Value.(*frame).dirty = true
	}
}

// flushAll writes every dirty page back, keeping frames cached.
func (b *bufferPool) flushAll() error {
	for el := b.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := b.write(fr.no, fr.p); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats reports cache effectiveness.
func (b *bufferPool) Stats() (hits, misses uint64) { return b.hits, b.misses }
