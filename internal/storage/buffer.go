package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// bufferPool caches heap pages with LRU eviction. Dirty pages are written
// back on eviction and on flushAll. The pool guards its own bookkeeping
// (frame map, LRU list, counters) with an internal mutex so concurrent
// readers holding the Heap's read lock can share it; page *contents* are
// protected by the owning Heap's RWMutex (mutators hold the write lock).
type bufferPool struct {
	mu     sync.Mutex
	cap    int
	read   func(uint32) (*page, error)
	write  func(uint32, *page) error
	frames map[uint32]*list.Element
	lru    *list.List // front = most recently used
	// Hits/Misses are exported through Stats (the S1 benchmark) and the
	// metrics registry. Atomic so concurrent observers — Stats callers,
	// registry snapshots — read them without taking the pool lock.
	hits, misses atomic.Uint64
}

type frame struct {
	no    uint32
	p     *page
	dirty bool
}

func newBufferPool(capacity int, read func(uint32) (*page, error), write func(uint32, *page) error) *bufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &bufferPool{
		cap:    capacity,
		read:   read,
		write:  write,
		frames: make(map[uint32]*list.Element, capacity),
		lru:    list.New(),
	}
}

// get returns the cached page, loading (and possibly evicting) as needed.
// The pool lock is released across the disk read so a miss does not
// serialize concurrent hits on other pages. This is safe because a page
// absent from the frame map is clean on disk: a dirty page is only
// evicted after its write-back completes, both under the pool lock, so
// no write to the page's offset can overlap the unlocked read. Two
// simultaneous misses on one page may both read it; the loser discards
// its copy on the re-check.
func (b *bufferPool) get(no uint32) (*page, error) {
	b.mu.Lock()
	if el, ok := b.frames[no]; ok {
		b.hits.Add(1)
		b.lru.MoveToFront(el)
		p := el.Value.(*frame).p
		b.mu.Unlock()
		return p, nil
	}
	b.misses.Add(1)
	b.mu.Unlock()
	p, err := b.read(no)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.frames[no]; ok {
		// Another reader loaded it meanwhile; keep the cached frame (it
		// may already carry buffered mutations).
		b.lru.MoveToFront(el)
		return el.Value.(*frame).p, nil
	}
	if err := b.insertFrame(no, p, false); err != nil {
		return nil, err
	}
	return p, nil
}

// put installs a page that was just created/written by the caller.
func (b *bufferPool) put(no uint32, p *page) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.frames[no]; ok {
		fr := el.Value.(*frame)
		fr.p = p
		b.lru.MoveToFront(el)
		return
	}
	// Creation already wrote the page; cache it clean.
	_ = b.insertFrame(no, p, false)
}

func (b *bufferPool) insertFrame(no uint32, p *page, dirty bool) error {
	for b.lru.Len() >= b.cap {
		if err := b.evictOne(); err != nil {
			return err
		}
	}
	el := b.lru.PushFront(&frame{no: no, p: p, dirty: dirty})
	b.frames[no] = el
	return nil
}

// evictOne is called with b.mu held and keeps it held across a dirty
// victim's write-back: writePage is a buffered WriteAt (no fsync), so
// the hold is microseconds, and insertFrame's duplicate check and the
// unlocked miss-read in get both rely on eviction being atomic under
// the lock.
func (b *bufferPool) evictOne() error {
	el := b.lru.Back()
	if el == nil {
		return fmt.Errorf("storage: buffer pool empty during eviction")
	}
	fr := el.Value.(*frame)
	if fr.dirty {
		if err := b.write(fr.no, fr.p); err != nil {
			return err
		}
	}
	b.lru.Remove(el)
	delete(b.frames, fr.no)
	return nil
}

// markDirty flags a cached page as modified.
func (b *bufferPool) markDirty(no uint32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.frames[no]; ok {
		el.Value.(*frame).dirty = true
	}
}

// flushAll writes every dirty page back, keeping frames cached.
func (b *bufferPool) flushAll() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for el := b.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := b.write(fr.no, fr.p); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats reports cache effectiveness. Lock-free: the counters are
// atomics, so hammering Stats never stalls the hit path.
func (b *bufferPool) Stats() (hits, misses uint64) {
	return b.hits.Load(), b.misses.Load()
}
