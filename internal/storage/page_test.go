package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageInsertGetDelete(t *testing.T) {
	p := newPage()
	s1, err := p.insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("slots must differ")
	}
	r1, err := p.get(s1)
	if err != nil || string(r1) != "hello" {
		t.Fatalf("get s1 = %q, %v", r1, err)
	}
	if err := p.del(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.get(s1); !errors.Is(err, ErrRecDeleted) {
		t.Errorf("deleted get err = %v", err)
	}
	if err := p.del(s1); !errors.Is(err, ErrRecDeleted) {
		t.Errorf("double delete err = %v", err)
	}
	if _, err := p.get(99); !errors.Is(err, ErrBadSlot) {
		t.Errorf("bad slot err = %v", err)
	}
	// Slot of deleted record is reused.
	s3, err := p.insert([]byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("dead slot not reused: %d vs %d", s3, s1)
	}
}

func TestPageRejections(t *testing.T) {
	p := newPage()
	if _, err := p.insert(nil); err == nil {
		t.Error("empty record must fail")
	}
	if _, err := p.insert(make([]byte, MaxRecordLen+1)); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized record must fail")
	}
	// Exactly max fits.
	if _, err := p.insert(make([]byte, MaxRecordLen)); err != nil {
		t.Errorf("max record should fit: %v", err)
	}
	// Nothing else fits now.
	if _, err := p.insert([]byte("x")); !errors.Is(err, ErrPageFull) {
		t.Error("full page must reject")
	}
}

func TestPageCompactionReclaimsSpace(t *testing.T) {
	p := newPage()
	var slots []int
	rec := make([]byte, 512)
	for {
		s, err := p.insert(rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 10 {
		t.Fatalf("only %d records fit", len(slots))
	}
	// Delete every other record; the free space is fragmented.
	for i := 0; i < len(slots); i += 2 {
		if err := p.del(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A larger record should now fit thanks to compaction.
	big := make([]byte, 1500)
	for i := range big {
		big[i] = byte(i)
	}
	s, err := p.insert(big)
	if err != nil {
		t.Fatalf("insert after fragmentation: %v", err)
	}
	got, err := p.get(s)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatal("compaction corrupted record")
	}
	// Survivors unharmed.
	for i := 1; i < len(slots); i += 2 {
		if r, err := p.get(slots[i]); err != nil || len(r) != 512 {
			t.Fatalf("survivor %d damaged: %v", slots[i], err)
		}
	}
}

func TestPageChecksum(t *testing.T) {
	p := newPage()
	p.insert([]byte("payload"))
	p.seal()
	if err := p.verify(); err != nil {
		t.Fatalf("sealed page should verify: %v", err)
	}
	p.buf[PageSize-1] ^= 0xFF
	if err := p.verify(); !errors.Is(err, ErrCorruptPage) {
		t.Errorf("corrupted page err = %v", err)
	}
	p.buf[PageSize-1] ^= 0xFF
	p.buf[0] = 0 // break magic
	if err := p.verify(); !errors.Is(err, ErrCorruptPage) {
		t.Errorf("bad magic err = %v", err)
	}
}

func TestPageInsertAtIdempotent(t *testing.T) {
	p := newPage()
	rec := []byte("replayed")
	if err := p.insertAt(3, rec); err != nil {
		t.Fatal(err)
	}
	if p.nslots() != 4 {
		t.Errorf("nslots = %d, want 4", p.nslots())
	}
	// Identical replay is a no-op.
	if err := p.insertAt(3, rec); err != nil {
		t.Errorf("idempotent replay failed: %v", err)
	}
	// Conflicting replay fails.
	if err := p.insertAt(3, []byte("different")); err == nil {
		t.Error("conflicting replay must fail")
	}
	// Intervening slots are dead.
	if _, err := p.get(0); !errors.Is(err, ErrRecDeleted) {
		t.Errorf("intervening slot should be dead: %v", err)
	}
	got, err := p.get(3)
	if err != nil || !bytes.Equal(got, rec) {
		t.Fatal("insertAt record wrong")
	}
}

// TestPagePropertyRandomOps cross-checks the page against a map model
// under random insert/delete workloads.
func TestPagePropertyRandomOps(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := newPage()
		model := make(map[int][]byte)
		for op := 0; op < 300; op++ {
			if r.Intn(3) != 0 {
				rec := make([]byte, 1+r.Intn(200))
				r.Read(rec)
				s, err := p.insert(rec)
				if err != nil {
					if errors.Is(err, ErrPageFull) {
						continue
					}
					return false
				}
				if _, live := model[s]; live {
					return false // overwrote a live slot
				}
				model[s] = rec
			} else if len(model) > 0 {
				// Delete a random live slot.
				var victim int
				k := r.Intn(len(model))
				for s := range model {
					if k == 0 {
						victim = s
						break
					}
					k--
				}
				if err := p.del(victim); err != nil {
					return false
				}
				delete(model, victim)
			}
		}
		// Verify every live record.
		for s, want := range model {
			got, err := p.get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		// Seal/verify round trip.
		p.seal()
		return p.verify() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
