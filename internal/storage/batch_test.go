package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestBatchCommitAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Seed a record so the batch can also delete something.
	oldRID, err := s.Insert("a", []byte("old"))
	if err != nil {
		t.Fatal(err)
	}

	id := s.AllocID("widget")
	b := s.NewBatch()
	i0 := b.Insert("a", []byte("one"))
	i1 := b.Insert("b", []byte("two"))
	b.Delete("a", oldRID)
	b.MetaSet("k", []byte("v"))
	b.PinSequence("widget")
	rids, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 2 {
		t.Fatalf("rids = %v", rids)
	}
	if rec, err := s.Get("a", rids[i0]); err != nil || string(rec) != "one" {
		t.Fatalf("a record = %q, %v", rec, err)
	}
	if rec, err := s.Get("b", rids[i1]); err != nil || string(rec) != "two" {
		t.Fatalf("b record = %q, %v", rec, err)
	}
	if _, err := s.Get("a", oldRID); err == nil {
		t.Fatal("deleted record still readable")
	}
	if _, err := b.Commit(); err == nil {
		t.Fatal("second Commit should fail")
	}

	// Crash (no checkpoint): replay must reproduce the whole group and the
	// pinned sequence must not re-issue the reserved ID.
	s.closeHeaps()
	s.wal.close()
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec, err := s2.Get("a", rids[i0]); err != nil || string(rec) != "one" {
		t.Fatalf("after replay: a record = %q, %v", rec, err)
	}
	if rec, err := s2.Get("b", rids[i1]); err != nil || string(rec) != "two" {
		t.Fatalf("after replay: b record = %q, %v", rec, err)
	}
	if _, err := s2.Get("a", oldRID); err == nil {
		t.Fatal("after replay: deleted record came back")
	}
	if v, ok := s2.MetaGet("k"); !ok || string(v) != "v" {
		t.Fatalf("after replay: meta = %q, %v", v, ok)
	}
	if next, err := s2.NextID("widget"); err != nil || next != id+1 {
		t.Fatalf("pinned sequence: next = %d, %v (want %d)", next, err, id+1)
	}
}

// TestMVCCEpochStampSurvivesCrash: the commit epoch stamped into a WAL
// group header must be restored by replay, and the meta snapshot must
// carry it across checkpoints, so epochs stay monotonic over restarts.
func TestMVCCEpochStampSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh store epoch = %d", got)
	}
	e := s.ReserveEpoch()
	if e != 1 {
		t.Fatalf("first reserved epoch = %d", e)
	}
	b := s.NewBatch()
	b.Insert("a", []byte("v1"))
	b.SetEpoch(e)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// A batch without an explicit stamp allocates the next epoch itself.
	b2 := s.NewBatch()
	b2.Insert("a", []byte("v2"))
	if _, err := b2.Commit(); err != nil {
		t.Fatal(err)
	}
	if b2.Epoch() != 2 || s.Epoch() != 2 {
		t.Fatalf("auto epoch = %d, store %d, want 2", b2.Epoch(), s.Epoch())
	}

	// Crash without checkpoint: the epoch comes back from the WAL group
	// headers.
	s.closeHeaps()
	s.wal.close()
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Epoch(); got != 2 {
		t.Fatalf("epoch after WAL replay = %d, want 2", got)
	}
	// Clean close (checkpoint): the epoch comes back from the meta
	// snapshot even though the WAL is empty.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Epoch(); got != 2 {
		t.Fatalf("epoch after checkpointed reopen = %d, want 2", got)
	}
	if e := s3.ReserveEpoch(); e != 3 {
		t.Fatalf("next epoch after reopen = %d, want 3", e)
	}
}

func TestBatchTornTailDropsWholeGroup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("a", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	b := s.NewBatch()
	b.Insert("a", []byte("batch-1"))
	b.Insert("a", []byte("batch-2"))
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	s.closeHeaps()
	s.wal.close()

	// Tear the tail of the batch record: the whole group must be dropped
	// on replay — never just its second insert.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last entry's header and truncate into its payload.
	off := 0
	lastOff := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		lastOff = off
		off += 8 + n
	}
	if err := os.WriteFile(walPath, data[:lastOff+12], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var recs []string
	err = s2.Scan("a", func(rid RID, rec []byte) bool {
		recs = append(recs, string(rec))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != "committed" {
		t.Fatalf("after torn batch: records = %v, want [committed] only", recs)
	}
}
