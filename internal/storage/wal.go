package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Redo-only write-ahead log. Every mutation of a heap or of the meta map
// is appended here before the in-memory/buffered state changes; pages are
// written back lazily. On open, entries recorded after the last checkpoint
// are replayed into the heaps, which makes the store crash-safe: a crash
// loses nothing that was logged and synced.
//
// Entry wire format:
//
//	length  uint32  (payload bytes)
//	crc32   uint32  (over payload)
//	payload: opcode byte + opcode-specific body
//
// Replay stops at the first torn or corrupt entry (standard redo-log
// convention: a torn tail is an interrupted append, not corruption of
// committed state).
const (
	opInsert  byte = 1 // heapName, rid, record
	opDelete  byte = 2 // heapName, rid
	opMetaSet byte = 3 // key, value
	opMetaDel byte = 4 // key
	// opBatch wraps a group of sub-entries in ONE log record: the group
	// shares a single length/crc header, so replay sees either all of its
	// mutations or none (a torn tail drops the whole group). Batched
	// session commits use it to make multi-object mutations atomic.
	opBatch byte = 5 // count, then per sub-entry: u32 len + payload
	// opEpochBatch is opBatch with a commit-epoch stamp in the group
	// header: epoch u64, count u32, then the sub-entries. The epoch is the
	// MVCC commit point of the whole group; replay tracks the maximum seen
	// so the store's epoch counter survives a crash between checkpoints.
	opEpochBatch byte = 6
)

// walEntry is one decoded log record.
type walEntry struct {
	op   byte
	heap string
	rid  RID
	rec  []byte
	key  string
	val  []byte
}

// wal serialises its own appends: concurrent writers to different heaps
// contend only here, not on one store-wide lock.
type wal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	syncOps bool // fsync after every append (durability on), default true
	dirty   bool
	// bytes counts log bytes appended since the last truncate — the
	// "WAL growth since checkpoint" signal the kernel's auto-checkpoint
	// trigger and Stats watch.
	bytes int64
	// appends/syncs count log records and fsyncs since open, for the
	// metrics registry. Atomic: read by registry snapshots without the
	// WAL mutex.
	appends atomic.Int64
	syncs   atomic.Int64
}

func openWAL(path string, syncOps bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, syncOps: syncOps, bytes: end}, nil
}

// size reports the log bytes appended since the last truncate.
func (w *wal) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

func (w *wal) append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	w.bytes += int64(len(hdr) + len(payload))
	w.appends.Add(1)
	w.dirty = true
	if w.syncOps {
		return w.syncLocked()
	}
	return nil
}

func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	w.dirty = false
	return nil
}

// logInsert records a heap insert.
func (w *wal) logInsert(heap string, rid RID, rec []byte) error {
	return w.append(insertPayload(heap, rid, rec))
}

// logDelete records a heap delete.
func (w *wal) logDelete(heap string, rid RID) error {
	return w.append(deletePayload(heap, rid))
}

// logMetaSet records a meta key update.
func (w *wal) logMetaSet(key string, val []byte) error {
	return w.append(metaSetPayload(key, val))
}

// logMetaDel records a meta key removal.
func (w *wal) logMetaDel(key string) error {
	buf := make([]byte, 0, 1+2+len(key))
	buf = append(buf, opMetaDel)
	buf = appendString(buf, key)
	return w.append(buf)
}

// logGroup records a set of sub-entry payloads as one atomic group
// record stamped with its commit epoch: one append, one crc, at most one
// fsync.
func (w *wal) logGroup(epoch uint64, payloads [][]byte) error {
	n := 1 + 8 + 4
	for _, p := range payloads {
		n += 4 + len(p)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, opEpochBatch)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payloads)))
	for _, p := range payloads {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return w.append(buf)
}

// Sub-entry payload builders, shared by the single-op loggers above and
// the batch committer.

func insertPayload(heap string, rid RID, rec []byte) []byte {
	buf := make([]byte, 0, 1+2+len(heap)+6+4+len(rec))
	buf = append(buf, opInsert)
	buf = appendString(buf, heap)
	buf = appendRID(buf, rid)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
	return append(buf, rec...)
}

func deletePayload(heap string, rid RID) []byte {
	buf := make([]byte, 0, 1+2+len(heap)+6)
	buf = append(buf, opDelete)
	buf = appendString(buf, heap)
	return appendRID(buf, rid)
}

func metaSetPayload(key string, val []byte) []byte {
	buf := make([]byte, 0, 1+2+len(key)+4+len(val))
	buf = append(buf, opMetaSet)
	buf = appendString(buf, key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	return append(buf, val...)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendRID(buf []byte, rid RID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, rid.Page)
	return binary.LittleEndian.AppendUint16(buf, rid.Slot)
}

// truncate resets the log after a checkpoint.
func (w *wal) truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.bytes = 0
	return w.f.Sync()
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.syncLocked(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// readAll decodes entries from the start of the log, stopping silently at
// a torn tail. The second return is the highest commit epoch stamped on
// any replayed group, so recovery can restore the epoch counter.
func readWAL(path string) ([]walEntry, uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var entries []walEntry
	var maxEpoch uint64
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if off+8+n > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt tail
		}
		if len(payload) > 0 && (payload[0] == opBatch || payload[0] == opEpochBatch) {
			subs, epoch, err := decodeGroup(payload)
			if err != nil {
				break
			}
			if epoch > maxEpoch {
				maxEpoch = epoch
			}
			entries = append(entries, subs...)
			off += 8 + n
			continue
		}
		e, err := decodeEntry(payload)
		if err != nil {
			break
		}
		entries = append(entries, e)
		off += 8 + n
	}
	return entries, maxEpoch, nil
}

// decodeGroup unpacks an opBatch/opEpochBatch record into its sub-entries
// and its commit epoch (0 for the legacy un-stamped format). The crc of
// the enclosing record already vouched for the bytes, so any decode error
// here means a malformed writer, and the whole group is rejected.
func decodeGroup(p []byte) ([]walEntry, uint64, error) {
	var epoch uint64
	rest := p[1:]
	if p[0] == opEpochBatch {
		if len(rest) < 8 {
			return nil, 0, fmt.Errorf("storage: truncated wal batch epoch")
		}
		epoch = binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
	}
	if len(rest) < 4 {
		return nil, 0, fmt.Errorf("storage: truncated wal batch header")
	}
	count := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	// Every sub-entry costs at least its 4-byte length prefix, so a count
	// beyond len(rest)/4 is a malformed record; clamp the allocation and
	// let the per-entry truncation checks reject it.
	entries := make([]walEntry, 0, min(count, len(rest)/4))
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return nil, 0, fmt.Errorf("storage: truncated wal batch length")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return nil, 0, fmt.Errorf("storage: truncated wal batch entry")
		}
		e, err := decodeEntry(rest[:n])
		if err != nil {
			return nil, 0, err
		}
		entries = append(entries, e)
		rest = rest[n:]
	}
	return entries, epoch, nil
}

func decodeEntry(p []byte) (walEntry, error) {
	if len(p) < 1 {
		return walEntry{}, fmt.Errorf("storage: empty wal payload")
	}
	e := walEntry{op: p[0]}
	rest := p[1:]
	readString := func() (string, error) {
		if len(rest) < 2 {
			return "", fmt.Errorf("storage: truncated wal string")
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return "", fmt.Errorf("storage: truncated wal string body")
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	readRID := func() (RID, error) {
		if len(rest) < 6 {
			return RID{}, fmt.Errorf("storage: truncated wal rid")
		}
		r := RID{Page: binary.LittleEndian.Uint32(rest), Slot: binary.LittleEndian.Uint16(rest[4:])}
		rest = rest[6:]
		return r, nil
	}
	var err error
	switch e.op {
	case opInsert:
		if e.heap, err = readString(); err != nil {
			return e, err
		}
		if e.rid, err = readRID(); err != nil {
			return e, err
		}
		if len(rest) < 4 {
			return e, fmt.Errorf("storage: truncated wal record length")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return e, fmt.Errorf("storage: truncated wal record")
		}
		e.rec = append([]byte(nil), rest[:n]...)
	case opDelete:
		if e.heap, err = readString(); err != nil {
			return e, err
		}
		if e.rid, err = readRID(); err != nil {
			return e, err
		}
	case opMetaSet:
		if e.key, err = readString(); err != nil {
			return e, err
		}
		if len(rest) < 4 {
			return e, fmt.Errorf("storage: truncated wal meta length")
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return e, fmt.Errorf("storage: truncated wal meta value")
		}
		e.val = append([]byte(nil), rest[:n]...)
	case opMetaDel:
		if e.key, err = readString(); err != nil {
			return e, err
		}
	default:
		return e, fmt.Errorf("storage: unknown wal opcode %d", e.op)
	}
	return e, nil
}
