package storage

import (
	"encoding/binary"
	"fmt"
)

// Batch collects heap and meta mutations that commit together: the whole
// group is written to the WAL as ONE opBatch record with ONE fsync, so a
// crash replays either every mutation or none of them. This is the
// storage half of the kernel's session commit — N object writes cost one
// log append instead of N, and the group is atomic across heaps and the
// meta map.
//
// A Batch is single-use and not safe for concurrent use; build it on one
// goroutine and call Commit once.
type Batch struct {
	s         *Store
	inserts   []stagedInsert
	deletes   []stagedDelete
	metaSets  []stagedMeta
	pins      []string
	epoch     uint64
	committed bool
}

type stagedInsert struct {
	heap string
	rec  []byte
}

type stagedDelete struct {
	heap string
	rid  RID
}

type stagedMeta struct {
	key string
	val []byte
}

// NewBatch starts an empty batch against the store.
func (s *Store) NewBatch() *Batch { return &Batch{s: s} }

// Insert stages a record append and returns its index into the RID slice
// Commit reports. The record is not visible (and has no RID) until then.
func (b *Batch) Insert(heap string, rec []byte) int {
	b.inserts = append(b.inserts, stagedInsert{heap: heap, rec: append([]byte(nil), rec...)})
	return len(b.inserts) - 1
}

// Delete stages a record removal. The RID must be resolved by the caller
// under whatever lock makes it stable until Commit.
func (b *Batch) Delete(heap string, rid RID) {
	b.deletes = append(b.deletes, stagedDelete{heap: heap, rid: rid})
}

// MetaSet stages a meta key update.
func (b *Batch) MetaSet(key string, val []byte) {
	b.metaSets = append(b.metaSets, stagedMeta{key: key, val: append([]byte(nil), val...)})
}

// PinSequence stages a durability pin for a sequence whose values were
// reserved in memory with AllocID: at commit time the sequence's current
// counter is written into the batch, so every ID the batch references is
// re-issued never again, even after a crash.
func (b *Batch) PinSequence(sequence string) {
	b.pins = append(b.pins, "seq/"+sequence)
}

// SetEpoch stamps the batch with a commit epoch reserved via
// ReserveEpoch. The epoch lands in the WAL group header and, on commit,
// in the meta map (persisted by the next meta snapshot). A batch without
// a stamp allocates the next epoch itself at commit.
func (b *Batch) SetEpoch(e uint64) { b.epoch = e }

// Epoch returns the commit epoch the batch was stamped with (valid after
// Commit).
func (b *Batch) Epoch() uint64 { return b.epoch }

// Len reports how many mutations the batch stages.
func (b *Batch) Len() int { return len(b.inserts) + len(b.deletes) + len(b.metaSets) }

// Commit applies the batch: heap pages mutate in memory, then the whole
// group is logged as one WAL record and fsynced once. On a WAL failure
// the page changes are undone, so memory and log agree. The returned RIDs
// are aligned with the order Insert was called.
//
// Commit holds the store lock SHARED: checkpoints (exclusive) stay out
// of the page-change + log-append window, but record readers — and other
// committers — proceed in parallel, serialised only by the per-heap
// locks, the WAL mutex, and metaMu. This is what keeps MVCC snapshot
// reads from stalling behind a batch writer.
func (b *Batch) Commit() ([]RID, error) {
	if b.committed {
		return nil, fmt.Errorf("storage: batch committed twice")
	}
	b.committed = true
	if b.Len() == 0 && len(b.pins) == 0 {
		return nil, nil
	}
	s := b.s
	// Resolve (creating as needed) every heap up front.
	heaps := make(map[string]*Heap)
	for _, in := range b.inserts {
		if _, ok := heaps[in.heap]; !ok {
			h, err := s.heap(in.heap)
			if err != nil {
				return nil, err
			}
			heaps[in.heap] = h
		}
	}
	if b.epoch == 0 {
		b.epoch = s.ReserveEpoch()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range b.deletes {
		h, ok := s.heaps[d.heap]
		if !ok {
			return nil, fmt.Errorf("%w: heap %q", ErrNotFound, d.heap)
		}
		heaps[d.heap] = h
	}

	payloads := make([][]byte, 0, b.Len()+len(b.pins))
	rids := make([]RID, len(b.inserts))
	done := 0
	undo := func() {
		for i := 0; i < done; i++ {
			_ = heaps[b.inserts[i].heap].del(rids[i])
		}
	}
	for i, in := range b.inserts {
		rid, err := heaps[in.heap].insert(in.rec)
		if err != nil {
			undo()
			return nil, err
		}
		rids[i] = rid
		done++
		payloads = append(payloads, insertPayload(in.heap, rid, in.rec))
	}
	for _, d := range b.deletes {
		payloads = append(payloads, deletePayload(d.heap, d.rid))
	}
	// The meta section — reading pinned sequence values, logging the
	// group, and applying the meta updates — happens under metaMu as one
	// unit, so the WAL order of meta values matches the order they land
	// in the map even with concurrent committers.
	s.metaMu.Lock()
	for _, m := range b.metaSets {
		payloads = append(payloads, metaSetPayload(m.key, m.val))
	}
	for _, key := range b.pins {
		if v, ok := s.meta[key]; ok {
			payloads = append(payloads, metaSetPayload(key, v))
		}
	}
	if err := s.wal.logGroup(b.epoch, payloads); err != nil {
		s.metaMu.Unlock()
		undo()
		return nil, err
	}
	for _, m := range b.metaSets {
		s.meta[m.key] = m.val
	}
	if cur, ok := s.meta[epochKey]; !ok || len(cur) != 8 || binary.LittleEndian.Uint64(cur) < b.epoch {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, b.epoch)
		s.meta[epochKey] = buf
	}
	s.metaMu.Unlock()
	// The group is durably logged: from here Commit must report success,
	// or callers would believe a committed batch did not happen (the same
	// contract as the object layer's post-commit publication). A failed
	// in-memory page delete leaves a ghost record that WAL replay removes
	// on the next open, and that the object layer's indexes hide until
	// then; single-op Store.Delete shares this exposure.
	for _, d := range b.deletes {
		_ = heaps[d.heap].del(d.rid)
	}
	return rids, nil
}

// AllocID reserves the next value of a named persistent sequence without
// logging it. The reservation advances the in-memory counter (so
// concurrent NextID/AllocID callers never collide) but only becomes
// durable when a later NextID on the same sequence logs the advanced
// counter, a checkpoint snapshots it, or a Batch with PinSequence
// commits. Callers must therefore reference a reserved ID durably only
// inside a batch that pins the sequence: a crash before that pin simply
// re-issues the reserved IDs, which by then nothing references.
func (s *Store) AllocID(sequence string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	key := "seq/" + sequence
	var cur uint64
	if v, ok := s.meta[key]; ok && len(v) == 8 {
		cur = binary.LittleEndian.Uint64(v)
	}
	cur++
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, cur)
	s.meta[key] = buf
	return cur
}
