package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// RID identifies a record: page number plus slot within the page.
type RID struct {
	Page uint32
	Slot uint16
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// ErrNotFound is returned for missing or deleted records.
var ErrNotFound = errors.New("storage: record not found")

// Heap is a slotted-page heap file behind a small buffer pool. All
// mutations go through the owning Store so they are WAL-logged; Heap
// methods themselves only touch pages.
//
// Locking: mu is a reader/writer lock. Readers (get, scan, stats) share
// it, so lookups on one heap proceed in parallel; mutators (insert, del,
// flush) take it exclusively, which also makes page contents safe to
// read without further locking. The buffer pool's bookkeeping has its
// own internal mutex so concurrent readers may miss/evict safely.
type Heap struct {
	mu    sync.RWMutex
	name  string
	f     *os.File
	pages int // page count on disk
	pool  *bufferPool
	// freeHint lists pages believed to have free space, kept sorted.
	freeHint []uint32
}

func openHeap(path, name string, poolFrames int) (*Heap, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: heap %s has torn size %d", name, st.Size())
	}
	h := &Heap{name: name, f: f, pages: int(st.Size() / PageSize)}
	h.pool = newBufferPool(poolFrames, h.readPage, h.writePage)
	// Rebuild the free-space hint lazily: every existing page is a
	// candidate until proven full.
	for i := 0; i < h.pages; i++ {
		h.freeHint = append(h.freeHint, uint32(i))
	}
	return h, nil
}

func (h *Heap) readPage(no uint32) (*page, error) {
	p := &page{}
	if _, err := h.f.ReadAt(p.buf[:], int64(no)*PageSize); err != nil {
		return nil, fmt.Errorf("storage: heap %s page %d: %w", h.name, no, err)
	}
	if err := p.verify(); err != nil {
		return nil, fmt.Errorf("storage: heap %s page %d: %w", h.name, no, err)
	}
	return p, nil
}

func (h *Heap) writePage(no uint32, p *page) error {
	p.seal()
	if _, err := h.f.WriteAt(p.buf[:], int64(no)*PageSize); err != nil {
		return fmt.Errorf("storage: heap %s page %d: %w", h.name, no, err)
	}
	return nil
}

// allocPage appends a fresh page to the file and returns its number.
func (h *Heap) allocPage() (uint32, error) {
	no := uint32(h.pages)
	p := newPage()
	if err := h.writePage(no, p); err != nil {
		return 0, err
	}
	h.pages++
	h.pool.put(no, p)
	h.freeHint = append(h.freeHint, no)
	return no, nil
}

// insert places rec somewhere with room and returns its RID.
func (h *Heap) insert(rec []byte) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(rec) > MaxRecordLen {
		return RID{}, fmt.Errorf("%w (%d bytes; store large payloads as blobs)", ErrTooLarge, len(rec))
	}
	// Try hinted pages from the back (most recently allocated first).
	for i := len(h.freeHint) - 1; i >= 0; i-- {
		no := h.freeHint[i]
		p, err := h.pool.get(no)
		if err != nil {
			return RID{}, err
		}
		if !p.canInsert(len(rec)) {
			// Drop the hint only if the page cannot even fit a minimal
			// record — otherwise keep it for smaller records.
			if !p.canInsert(64) {
				h.freeHint = append(h.freeHint[:i], h.freeHint[i+1:]...)
			}
			continue
		}
		slot, err := p.insert(rec)
		if err != nil {
			continue
		}
		h.pool.markDirty(no)
		return RID{Page: no, Slot: uint16(slot)}, nil
	}
	no, err := h.allocPage()
	if err != nil {
		return RID{}, err
	}
	p, err := h.pool.get(no)
	if err != nil {
		return RID{}, err
	}
	slot, err := p.insert(rec)
	if err != nil {
		return RID{}, err
	}
	h.pool.markDirty(no)
	return RID{Page: no, Slot: uint16(slot)}, nil
}

// insertAt places rec at an exact RID (WAL replay path).
func (h *Heap) insertAt(rid RID, rec []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for uint32(h.pages) <= rid.Page {
		if _, err := h.allocPage(); err != nil {
			return err
		}
	}
	p, err := h.pool.get(rid.Page)
	if err != nil {
		return err
	}
	if err := p.insertAt(int(rid.Slot), rec); err != nil {
		return err
	}
	h.pool.markDirty(rid.Page)
	return nil
}

// get returns a copy of the record at rid.
func (h *Heap) get(rid RID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if rid.Page >= uint32(h.pages) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	p, err := h.pool.get(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := p.get(int(rid.Slot))
	if err != nil {
		if errors.Is(err, ErrRecDeleted) || errors.Is(err, ErrBadSlot) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, rid)
		}
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// del removes the record at rid.
func (h *Heap) del(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rid.Page >= uint32(h.pages) {
		return fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	p, err := h.pool.get(rid.Page)
	if err != nil {
		return err
	}
	if err := p.del(int(rid.Slot)); err != nil {
		if errors.Is(err, ErrRecDeleted) || errors.Is(err, ErrBadSlot) {
			return fmt.Errorf("%w: %s", ErrNotFound, rid)
		}
		return err
	}
	h.pool.markDirty(rid.Page)
	// The page regained space; re-hint it.
	h.rehint(rid.Page)
	return nil
}

func (h *Heap) rehint(no uint32) {
	i := sort.Search(len(h.freeHint), func(i int) bool { return h.freeHint[i] >= no })
	if i < len(h.freeHint) && h.freeHint[i] == no {
		return
	}
	h.freeHint = append(h.freeHint, 0)
	copy(h.freeHint[i+1:], h.freeHint[i:])
	h.freeHint[i] = no
}

// scan visits every live record in RID order. Returning false from fn
// stops the scan.
func (h *Heap) scan(fn func(rid RID, rec []byte) bool) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for no := 0; no < h.pages; no++ {
		p, err := h.pool.get(uint32(no))
		if err != nil {
			return err
		}
		for s := 0; s < p.nslots(); s++ {
			rec, err := p.get(s)
			if err != nil {
				continue // dead slot
			}
			cp := make([]byte, len(rec))
			copy(cp, rec)
			if !fn(RID{Page: uint32(no), Slot: uint16(s)}, cp) {
				return nil
			}
		}
	}
	return nil
}

// flush writes all dirty pages and syncs the file.
func (h *Heap) flush() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.pool.flushAll(); err != nil {
		return err
	}
	return h.f.Sync()
}

// close flushes and closes the backing file.
func (h *Heap) close() error {
	if err := h.flush(); err != nil {
		h.f.Close()
		return err
	}
	return h.f.Close()
}

// stats for benchmarks and tests.
func (h *Heap) stats() (pages int, liveRecords int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	pages = h.pages
	for no := 0; no < h.pages; no++ {
		p, err := h.pool.get(uint32(no))
		if err != nil {
			continue
		}
		for s := 0; s < p.nslots(); s++ {
			if off, _ := p.slot(s); off != 0 {
				liveRecords++
			}
		}
	}
	return pages, liveRecords
}

var _ = io.EOF // reserved for future streaming scans
