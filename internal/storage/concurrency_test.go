package storage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// record i is identifiable and big enough that the working set spans
// many more pages than the pool holds, forcing constant eviction.
func stressRec(i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("rec-%04d|", i)), 60) // ~540 bytes
}

// TestHeapConcurrentReadersUnderEviction hammers a 4-frame pool with
// parallel readers (sharing the heap read lock) plus a writer, so cache
// misses, unlocked miss-reads, and dirty evictions interleave. Every get
// must return the exact record — no stale pages, duplicate frames, or
// spurious "buffer pool empty" errors.
func TestHeapConcurrentReadersUnderEviction(t *testing.T) {
	dir := t.TempDir()
	h, err := openHeap(filepath.Join(dir, "heap_stress.db"), "stress", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer h.close()

	const seed = 64
	rids := make([]RID, seed)
	for i := 0; i < seed; i++ {
		rid, err := h.insert(stressRec(i))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}

	const readers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for n := 0; n < 400; n++ {
				i := (r*131 + n*17) % seed
				rec, err := h.get(rids[i])
				if err != nil {
					errCh <- fmt.Errorf("reader %d: get %d: %w", r, i, err)
					return
				}
				if !bytes.Equal(rec, stressRec(i)) {
					errCh <- fmt.Errorf("reader %d: record %d corrupted/stale", r, i)
					return
				}
			}
		}(r)
	}
	// A writer keeps dirtying pages so evictions perform write-backs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 200; n++ {
			if _, err := h.insert(stressRec(seed + n)); err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	_, live := h.stats()
	if live != seed+200 {
		t.Errorf("live records = %d, want %d", live, seed+200)
	}
}
