package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gaea/internal/obs"
)

// Store is the embedded database: named heaps + meta key/value map +
// sequences + blob store, all durable through one WAL. Directory layout:
//
//	<dir>/heap_<name>.db   slotted-page heap files
//	<dir>/wal.log          redo log
//	<dir>/meta.db          meta snapshot (rewritten at checkpoint)
//	<dir>/blobs/           large objects
//
// Locking: mu is a reader/writer lock whose EXCLUSIVE side belongs to
// checkpoints (and close): everything that mutates pages or appends to
// the WAL holds it SHARED for the whole page-change + log-append window,
// so a checkpoint can never flush and truncate in the middle of an
// operation, while readers, writers, and whole batch commits all proceed
// in parallel — real exclusion lives in the per-heap locks, the WAL's
// internal mutex, and metaMu. metaMu serialises every meta-map
// log+apply pair (and read), so concurrent shared-lock holders keep the
// map race-free and the WAL order of meta values matches memory order.
type Store struct {
	mu     sync.RWMutex
	metaMu sync.Mutex
	dir    string
	opts   Options
	heaps  map[string]*Heap
	meta   map[string][]byte
	wal    *wal
	blobs  *BlobStore
	// epoch is the MVCC commit-epoch counter: every Batch.Commit stamps
	// its WAL group with a reserved epoch, and the latest committed value
	// is mirrored in the meta map (so the meta snapshot persists it) and
	// restored from WAL group headers on recovery.
	epoch atomic.Uint64
	// Registry instruments (orphans when Options.Metrics was nil).
	checkpoints  *obs.Counter
	checkpointNS *obs.Histogram
}

// epochKey is the meta key mirroring the commit-epoch counter.
const epochKey = "mvcc/epoch"

// Options tunes a Store.
type Options struct {
	// PoolFrames is the buffer-pool capacity per heap (default 64).
	PoolFrames int
	// NoSync disables per-append fsync of the WAL. Faster, loses the last
	// writes on a crash; tests and benchmarks use it.
	NoSync bool
	// Metrics is the registry the store reports into (nil = unobserved):
	// WAL growth/appends/fsyncs, buffer-pool hits/misses across heaps,
	// and checkpoint count/latency.
	Metrics *obs.Registry
}

// Open opens (or creates) a store in dir and recovers any logged-but-
// unflushed state from the WAL.
func Open(dir string, opts Options) (*Store, error) {
	if opts.PoolFrames == 0 {
		opts.PoolFrames = 64
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	blobs, err := openBlobStore(filepath.Join(dir, "blobs"))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		heaps: make(map[string]*Heap),
		meta:  make(map[string][]byte),
		blobs: blobs,
	}
	if err := s.loadMetaSnapshot(); err != nil {
		return nil, err
	}
	// Open heaps that already exist on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "heap_") && strings.HasSuffix(name, ".db") {
			hn := strings.TrimSuffix(strings.TrimPrefix(name, "heap_"), ".db")
			h, err := openHeap(filepath.Join(dir, name), hn, opts.PoolFrames)
			if err != nil {
				return nil, err
			}
			s.heaps[hn] = h
		}
	}
	// Recover: replay the WAL, then checkpoint so the log starts clean.
	if err := s.recover(); err != nil {
		s.closeHeaps()
		return nil, err
	}
	if v, ok := s.meta[epochKey]; ok && len(v) == 8 {
		s.epoch.Store(binary.LittleEndian.Uint64(v))
	}
	s.wal, err = openWAL(filepath.Join(dir, "wal.log"), !opts.NoSync)
	if err != nil {
		s.closeHeaps()
		return nil, err
	}
	s.registerMetrics(opts.Metrics)
	return s, nil
}

// registerMetrics folds the store's counters into the registry: the
// WAL's growth and activity, checkpoint work, and the buffer pools'
// hit/miss totals summed across heaps (the pool counters are atomics,
// so a snapshot never touches the pool locks).
func (s *Store) registerMetrics(reg *obs.Registry) {
	s.checkpoints = reg.Counter("storage_checkpoints_total")
	s.checkpointNS = reg.Histogram("storage_checkpoint_ns")
	if reg == nil {
		return
	}
	reg.GaugeFunc("storage_wal_bytes", s.WALBytes)
	reg.GaugeFunc("storage_wal_appends_total", s.wal.appends.Load)
	reg.GaugeFunc("storage_wal_syncs_total", s.wal.syncs.Load)
	reg.GaugeFunc("storage_buffer_hits_total", func() int64 {
		h, _ := s.BufferStats()
		return int64(h)
	})
	reg.GaugeFunc("storage_buffer_misses_total", func() int64 {
		_, m := s.BufferStats()
		return int64(m)
	})
}

// BufferStats sums buffer-pool hits and misses across all heaps.
func (s *Store) BufferStats() (hits, misses uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, h := range s.heaps {
		ph, pm := h.pool.Stats()
		hits += ph
		misses += pm
	}
	return hits, misses
}

func (s *Store) recover() error {
	entries, maxEpoch, err := readWAL(filepath.Join(s.dir, "wal.log"))
	if err != nil {
		return err
	}
	if v, ok := s.meta[epochKey]; ok && len(v) == 8 && binary.LittleEndian.Uint64(v) > maxEpoch {
		maxEpoch = binary.LittleEndian.Uint64(v)
	}
	if maxEpoch > 0 {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, maxEpoch)
		s.meta[epochKey] = buf
	}
	if len(entries) == 0 {
		return nil
	}
	for _, e := range entries {
		switch e.op {
		case opInsert:
			h, err := s.heapLocked(e.heap)
			if err != nil {
				return err
			}
			if err := h.insertAt(e.rid, e.rec); err != nil {
				return fmt.Errorf("storage: recovery insert %s %s: %w", e.heap, e.rid, err)
			}
		case opDelete:
			h, err := s.heapLocked(e.heap)
			if err != nil {
				return err
			}
			if err := h.del(e.rid); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("storage: recovery delete %s %s: %w", e.heap, e.rid, err)
			}
		case opMetaSet:
			s.meta[e.key] = e.val
		case opMetaDel:
			delete(s.meta, e.key)
		}
	}
	// Make the replayed state durable and clear the log.
	for _, h := range s.heaps {
		if err := h.flush(); err != nil {
			return err
		}
	}
	if err := s.writeMetaSnapshot(); err != nil {
		return err
	}
	return os.Truncate(filepath.Join(s.dir, "wal.log"), 0)
}

// heapLocked returns (creating if necessary) the named heap. Caller holds
// no lock during Open/recovery; afterwards use heap() instead.
func (s *Store) heapLocked(name string) (*Heap, error) {
	if h, ok := s.heaps[name]; ok {
		return h, nil
	}
	if name == "" || strings.ContainsAny(name, "/\\ ") {
		return nil, fmt.Errorf("storage: bad heap name %q", name)
	}
	h, err := openHeap(filepath.Join(s.dir, "heap_"+name+".db"), name, s.opts.PoolFrames)
	if err != nil {
		return nil, err
	}
	s.heaps[name] = h
	return h, nil
}

// heap resolves (creating if necessary) the named heap, taking the map
// lock shared on the fast path.
func (s *Store) heap(name string) (*Heap, error) {
	s.mu.RLock()
	h, ok := s.heaps[name]
	s.mu.RUnlock()
	if ok {
		return h, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heapLocked(name)
}

// Insert appends a record to the named heap, WAL-first.
func (s *Store) Insert(heap string, rec []byte) (RID, error) {
	h, err := s.heap(heap)
	if err != nil {
		return RID{}, err
	}
	// Hold the store lock shared across the page-change + WAL-append pair
	// so a concurrent Checkpoint (exclusive) cannot flush and truncate
	// between them; inserters still run in parallel with each other.
	s.mu.RLock()
	defer s.mu.RUnlock()
	rid, err := h.insert(rec)
	if err != nil {
		return RID{}, err
	}
	if err := s.wal.logInsert(heap, rid, rec); err != nil {
		// The page change is buffered and unlogged; undo it so memory and
		// log agree.
		_ = h.del(rid)
		return RID{}, err
	}
	return rid, nil
}

// Get reads a record from the named heap.
func (s *Store) Get(heap string, rid RID) ([]byte, error) {
	s.mu.RLock()
	h, ok := s.heaps[heap]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: heap %q", ErrNotFound, heap)
	}
	return h.get(rid)
}

// Delete removes a record from the named heap, WAL-first.
func (s *Store) Delete(heap string, rid RID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.heaps[heap]
	if !ok {
		return fmt.Errorf("%w: heap %q", ErrNotFound, heap)
	}
	if err := s.wal.logDelete(heap, rid); err != nil {
		return err
	}
	return h.del(rid)
}

// Scan visits all live records of the named heap in RID order. Scanning a
// heap that does not exist yet visits nothing.
func (s *Store) Scan(heap string, fn func(rid RID, rec []byte) bool) error {
	s.mu.RLock()
	h, ok := s.heaps[heap]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	return h.scan(fn)
}

// MetaSet durably sets a key in the meta map. The shared store lock
// keeps checkpoints away from the log+apply pair; metaMu orders it
// against concurrent meta writers.
func (s *Store) MetaSet(key string, val []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if err := s.wal.logMetaSet(key, val); err != nil {
		return err
	}
	cp := append([]byte(nil), val...)
	s.meta[key] = cp
	return nil
}

// MetaGet reads a key from the meta map.
func (s *Store) MetaGet(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	v, ok := s.meta[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// MetaDelete removes a key from the meta map.
func (s *Store) MetaDelete(key string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if _, ok := s.meta[key]; !ok {
		return nil
	}
	if err := s.wal.logMetaDel(key); err != nil {
		return err
	}
	delete(s.meta, key)
	return nil
}

// MetaKeys lists meta keys with the given prefix, sorted.
func (s *Store) MetaKeys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	var out []string
	for k := range s.meta {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// NextID returns the next value of a named persistent sequence (1-based).
func (s *Store) NextID(sequence string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	key := "seq/" + sequence
	var cur uint64
	if v, ok := s.meta[key]; ok && len(v) == 8 {
		cur = binary.LittleEndian.Uint64(v)
	}
	cur++
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, cur)
	if err := s.wal.logMetaSet(key, buf); err != nil {
		return 0, err
	}
	s.meta[key] = buf
	return cur, nil
}

// Blobs exposes the blob store.
func (s *Store) Blobs() *BlobStore { return s.blobs }

// Epoch returns the highest commit epoch reserved so far (committed
// batches may lag it by in-flight reservations).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// ReserveEpoch hands out the next commit epoch. The reservation is
// in-memory; it becomes durable with the Batch that stamps it (the WAL
// group header carries it, and Commit mirrors it into the meta map for
// the snapshot). Callers must serialise ReserveEpoch with the commit and
// publication of the batch that uses it — the object layer does so under
// its commit mutex — or epochs could become visible out of order.
func (s *Store) ReserveEpoch() uint64 { return s.epoch.Add(1) }

// AdvanceEpoch raises the epoch counter to at least e. The object layer
// calls it at open after scanning record stamps, so epochs issued against
// a store whose meta snapshot lagged its heap records stay monotonic.
func (s *Store) AdvanceEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			break
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if cur, ok := s.meta[epochKey]; !ok || len(cur) != 8 || binary.LittleEndian.Uint64(cur) < e {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, e)
		s.meta[epochKey] = buf
	}
}

// WALBytes reports the log bytes appended since the last checkpoint —
// the signal the kernel's auto-checkpoint trigger watches.
func (s *Store) WALBytes() int64 { return s.wal.size() }

// Checkpoint flushes all heaps and the meta snapshot, then truncates the
// WAL. After a checkpoint, recovery has nothing to replay.
func (s *Store) Checkpoint() error {
	start := time.Now()
	defer func() {
		s.checkpoints.Inc()
		s.checkpointNS.ObserveSince(start)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.heaps {
		if err := h.flush(); err != nil {
			return err
		}
	}
	if err := s.writeMetaSnapshot(); err != nil {
		return err
	}
	if err := s.wal.sync(); err != nil {
		return err
	}
	return s.wal.truncate()
}

// Close checkpoints and releases all files.
func (s *Store) Close() error {
	if err := s.Checkpoint(); err != nil {
		s.closeHeaps()
		s.wal.close()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, h := range s.heaps {
		if err := h.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.heaps = map[string]*Heap{}
	if err := s.wal.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (s *Store) closeHeaps() {
	for _, h := range s.heaps {
		h.f.Close()
	}
}

// Meta snapshot format: magic, count, then length-prefixed key/value
// pairs, with a trailing crc32.
const metaMagic = "GMETA1\n"

func (s *Store) writeMetaSnapshot() error {
	buf := []byte(metaMagic)
	keys := make([]string, 0, len(s.meta))
	for k := range s.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		v := s.meta[k]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	tmp := filepath.Join(s.dir, "meta.db.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, "meta.db"))
}

func (s *Store) loadMetaSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, "meta.db"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < len(metaMagic)+8 || string(data[:len(metaMagic)]) != metaMagic {
		return fmt.Errorf("storage: corrupt meta snapshot header")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return fmt.Errorf("storage: corrupt meta snapshot checksum")
	}
	off := len(metaMagic)
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	for i := 0; i < count; i++ {
		if off+2 > len(body) {
			return fmt.Errorf("storage: truncated meta snapshot")
		}
		kn := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+kn+4 > len(body) {
			return fmt.Errorf("storage: truncated meta snapshot key")
		}
		k := string(body[off : off+kn])
		off += kn
		vn := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+vn > len(body) {
			return fmt.Errorf("storage: truncated meta snapshot value")
		}
		s.meta[k] = append([]byte(nil), body[off:off+vn]...)
		off += vn
	}
	return nil
}

// HeapStats reports page and record counts of a heap, for benchmarks.
func (s *Store) HeapStats(heap string) (pages, records int) {
	s.mu.RLock()
	h, ok := s.heaps[heap]
	s.mu.RUnlock()
	if !ok {
		return 0, 0
	}
	return h.stats()
}
