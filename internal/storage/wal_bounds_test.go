package storage

// Regression test for the group-decode allocation bound: the sub-entry
// count in an opBatch record is a raw uint32 off disk, so a corrupt (or
// crafted) record could claim 2^32-1 entries and size a multi-hundred-GB
// slice before the per-entry truncation checks ever ran. decodeGroup now
// clamps the allocation by the bytes that could possibly back it.

import (
	"encoding/binary"
	"testing"
)

func TestDecodeGroupHugeCount(t *testing.T) {
	rec := []byte{opBatch}
	rec = binary.LittleEndian.AppendUint32(rec, 0xFFFFFFFF)
	if _, _, err := decodeGroup(rec); err == nil {
		t.Fatal("huge batch count decoded successfully, want truncation error")
	}

	stamped := []byte{opEpochBatch}
	stamped = binary.LittleEndian.AppendUint64(stamped, 42)
	stamped = binary.LittleEndian.AppendUint32(stamped, 0xFFFFFFFF)
	if _, _, err := decodeGroup(stamped); err == nil {
		t.Fatal("huge stamped batch count decoded successfully, want truncation error")
	}
}
