// Package sflight implements single-flight execution: concurrent calls
// with the same key collapse into one execution of the function, and the
// waiters share the leader's result. The derivation engine uses it so N
// identical concurrent derivations execute exactly once (task memo,
// interpolation), per the paper's premise that derived data is shared.
package sflight

import (
	"context"
	"fmt"
	"sync"
)

// Group deduplicates concurrent calls by key. The zero value is ready to
// use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

type call[V any] struct {
	done chan struct{} // closed when val/err are published
	val  V
	err  error
}

// Do runs fn once per concurrent key. Joiners wait for the leader and
// share its result (shared=true). If the leader fails — possibly by its
// own context's cancellation — each waiter retries with its own context
// and a new leader is elected, so one caller's cancellation or panic
// never poisons the others; deterministic failures still terminate
// because every retrying waiter eventually leads and receives its own
// error. A panic in fn is published to waiters as an error and then
// propagates to the leader's caller. Waiting is cancellable through ctx;
// fn itself is responsible for observing ctx if it should be.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (val V, shared bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			var zero V
			return zero, false, err
		}
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[string]*call[V])
		}
		c, joined := g.calls[key]
		if !joined {
			c = &call[V]{done: make(chan struct{})}
			g.calls[key] = c
			g.mu.Unlock()
			g.lead(c, key, fn)
			return c.val, false, c.err
		}
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			var zero V
			return zero, false, ctx.Err()
		case <-c.done:
			if c.err == nil {
				return c.val, true, nil
			}
			// Leader failed; loop and retry under this caller's context.
		}
	}
}

// lead executes fn and publishes the outcome, surviving panics: the
// deferred publish runs even when fn panics, so the flight is always
// removed and waiters always wake.
func (g *Group[V]) lead(c *call[V], key string, fn func() (V, error)) {
	finished := false
	defer func() {
		if !finished && c.err == nil {
			c.err = fmt.Errorf("sflight: %q: function panicked", key)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
}
