package sflight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCollapsesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var executions int32
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	vals := make([]int, n)
	shared := make([]bool, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, s, err := g.Do(context.Background(), "k", func() (int, error) {
				atomic.AddInt32(&executions, 1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shared[i] = v, s
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()
	if executions != 1 {
		t.Errorf("executed %d times, want 1", executions)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Errorf("caller %d got %d", i, vals[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
}

func TestDoWaiterRetriesAfterLeaderFailure(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	var calls int32
	blocked := make(chan struct{})
	fail := make(chan struct{})
	go func() {
		_, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(blocked)
			<-fail
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-blocked
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := g.Do(context.Background(), "k", func() (int, error) {
			atomic.AddInt32(&calls, 1)
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("waiter got %d, %v; want 7 after retry", v, err)
		}
	}()
	close(fail)
	<-done
	if calls != 1 {
		t.Errorf("waiter ran fn %d times, want 1", calls)
	}
}

func TestDoWaiterCancellation(t *testing.T) {
	var g Group[int]
	blocked := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go g.Do(context.Background(), "k", func() (int, error) {
		close(blocked)
		<-release
		return 1, nil
	})
	<-blocked
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.Do(ctx, "k", func() (int, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDoPanicIsPublishedAndPropagates(t *testing.T) {
	var g Group[int]
	blocked := make(chan struct{})
	boom := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader's caller")
			}
		}()
		g.Do(context.Background(), "k", func() (int, error) {
			close(blocked)
			<-boom
			panic("kaboom")
		})
	}()
	<-blocked
	go func() {
		// The waiter must not hang: it sees the published error, retries,
		// and succeeds with its own execution.
		v, _, err := g.Do(context.Background(), "k", func() (int, error) { return 9, nil })
		if err != nil || v != 9 {
			waiterDone <- errors.New("waiter did not recover after leader panic")
			return
		}
		waiterDone <- nil
	}()
	close(boom)
	if err := <-waiterDone; err != nil {
		t.Error(err)
	}
}
