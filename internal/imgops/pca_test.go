package imgops

import (
	"math"
	"testing"

	"gaea/internal/raster"
)

func sceneBands(t *testing.T, n int) []*raster.Image {
	t.Helper()
	l := raster.NewLandscape(9)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 16, Cols: 16, DayOfYear: 200, Year: 1988, Noise: 0.005}
	all := []raster.Band{raster.BandBlue, raster.BandGreen, raster.BandRed, raster.BandNIR, raster.BandSWIR, raster.BandThermal}
	bands, err := l.GenerateScene(spec, all[:n])
	if err != nil {
		t.Fatal(err)
	}
	return bands
}

func TestPCABasics(t *testing.T) {
	bands := sceneBands(t, 4)
	res, err := PCA(bands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 2 {
		t.Fatalf("components = %d", len(res.Components))
	}
	if len(res.Eigen) != 4 {
		t.Fatalf("eigenpairs = %d", len(res.Eigen))
	}
	// Eigenvalues descending, explained variance sums <= 1 and descending.
	for i := 1; i < len(res.Eigen); i++ {
		if res.Eigen[i].Value > res.Eigen[i-1].Value+1e-12 {
			t.Error("eigenvalues not descending")
		}
	}
	var sum float64
	for _, ev := range res.ExplainedVariance {
		sum += ev
	}
	if sum > 1+1e-9 {
		t.Errorf("explained variance sum %g > 1", sum)
	}
	if res.ExplainedVariance[0] < res.ExplainedVariance[1] {
		t.Error("explained variance not descending")
	}
	// keep <= 0 retains all.
	all, err := PCA(bands, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Components) != 4 {
		t.Errorf("keep=0 should retain all, got %d", len(all.Components))
	}
}

func TestPCAFirstComponentCapturesVariance(t *testing.T) {
	// Construct two bands that are nearly identical: PC1 should explain
	// almost all variance.
	a := raster.MustNew(4, 4, raster.PixFloat8)
	b := raster.MustNew(4, 4, raster.PixFloat8)
	for i := 0; i < 16; i++ {
		v := float64(i)
		a.Set(i/4, i%4, v)
		b.Set(i/4, i%4, v*1.01)
	}
	res, err := PCA([]*raster.Image{a, b}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExplainedVariance[0] < 0.99 {
		t.Errorf("PC1 explains %g, want > 0.99", res.ExplainedVariance[0])
	}
}

func TestPCAComponentsAreDecorrelated(t *testing.T) {
	bands := sceneBands(t, 3)
	res, err := PCA(bands, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise correlation between components should be ~0.
	m, err := ImagesToMatrix(res.Components)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			ri, rj := m.Row(i), m.Row(j)
			corr := pearson(ri, rj)
			if math.Abs(corr) > 0.05 {
				t.Errorf("components %d,%d correlate %g", i, j, corr)
			}
		}
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestPCANetworkMatchesFusedPCA(t *testing.T) {
	// The Figure 4 dataflow network must agree with the monolithic PCA.
	bands := sceneBands(t, 4)
	fused, err := PCA(bands, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := PCANetwork(bands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Components) != len(net.Components) {
		t.Fatalf("component counts differ: %d vs %d", len(fused.Components), len(net.Components))
	}
	for i := range fused.Components {
		d, err := fused.Components[i].MaxAbsDiff(net.Components[i])
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-4 {
			t.Errorf("component %d differs by %g between network and fused PCA", i, d)
		}
	}
}

func TestSPCADiffersFromPCAButSameConcept(t *testing.T) {
	// Scale one band enormously: covariance PCA follows the scaled band,
	// correlation-based SPCA is scale-invariant, so the two first
	// components must differ — the paper's "same conceptual outcome via
	// different derivations".
	bands := sceneBands(t, 3)
	scaled, err := ScaleOffset(bands[0], 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := []*raster.Image{scaled, bands[1], bands[2]}

	p, err := PCA(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SPCA(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	// PCA's first eigenvector should be dominated by the scaled band.
	if math.Abs(p.Eigen[0].Vector[0]) < 0.99 {
		t.Errorf("PCA eigvec[0] = %v, expected domination by scaled band", p.Eigen[0].Vector)
	}
	// SPCA's must not be.
	if math.Abs(s.Eigen[0].Vector[0]) > 0.99 {
		t.Errorf("SPCA eigvec[0] = %v, should be scale-invariant", s.Eigen[0].Vector)
	}
}

func TestSPCAEigenvaluesSumToBandCount(t *testing.T) {
	// Correlation matrices have unit diagonal, so eigenvalues sum to d.
	bands := sceneBands(t, 4)
	res, err := SPCA(bands, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Eigen {
		sum += p.Value
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("SPCA eigenvalue sum = %g, want 4", sum)
	}
}

func TestChangeComponent(t *testing.T) {
	bands := sceneBands(t, 3)
	res, err := PCA(bands, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := res.ChangeComponent()
	if err != nil {
		t.Fatal(err)
	}
	if !ch.SameShape(bands[0]) {
		t.Error("change component shape wrong")
	}
	one, _ := PCA(bands, 1)
	if _, err := one.ChangeComponent(); err == nil {
		t.Error("single-component result has no change component")
	}
}

func TestPCAValidation(t *testing.T) {
	if _, err := PCA(nil, 1); err == nil {
		t.Error("no bands must fail")
	}
	a := raster.MustNew(2, 2, raster.PixFloat8)
	b := raster.MustNew(3, 3, raster.PixFloat8)
	if _, err := PCA([]*raster.Image{a, b}, 1); err == nil {
		t.Error("shape mismatch must fail")
	}
	if _, err := PCANetwork(nil, 1); err == nil {
		t.Error("network with no bands must fail")
	}
	if _, err := SPCA(nil, 1); err == nil {
		t.Error("SPCA with no bands must fail")
	}
}
