package imgops

import (
	"fmt"
	"math"

	"gaea/internal/raster"
)

// Unsupervised classification — the unsuperclassify() operator of process
// P20 (Figure 3): group pixels of a composited multi-band image into k land
// cover classes by similarity. We implement k-means with deterministic
// k-means++-style seeding driven by a caller-supplied seed, because the
// paper's reproducibility goal requires that re-running a task yields the
// same classification.

// ClassifyOptions tunes Unsuperclassify.
type ClassifyOptions struct {
	MaxIter int    // maximum Lloyd iterations; default 50
	Seed    uint64 // deterministic seeding; default 1
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Unsuperclassify clusters the pixels of the given co-registered bands into
// k classes and returns a char image of class codes 0..k-1. It is
// deterministic for a given (input, k, options) triple.
func Unsuperclassify(bands []*raster.Image, k int, opts ClassifyOptions) (*raster.Image, error) {
	if err := checkSameShape(bands); err != nil {
		return nil, err
	}
	if k < 1 || k > 255 {
		return nil, fmt.Errorf("%w: k = %d (want 1..255)", ErrBadParam, k)
	}
	opts = opts.withDefaults()
	d := len(bands)
	n := bands[0].Pixels()
	if k > n {
		return nil, fmt.Errorf("%w: k = %d exceeds pixel count %d", ErrBadParam, k, n)
	}

	// Pixel vectors, pixel-major for cache-friendly distance loops.
	px := make([]float64, n*d)
	for b, im := range bands {
		vals := im.Float64s()
		for i, v := range vals {
			px[i*d+b] = v
		}
	}

	centers := seedCenters(px, n, d, k, opts.Seed)
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*d)

	for iter := 0; iter < opts.MaxIter; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			v := px[i*d : (i+1)*d]
			for c := 0; c < k; c++ {
				dist := sqDist(v, centers[c*d:(c+1)*d])
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		if iter > 0 && changed == 0 {
			break
		}
		// Recompute centers.
		for i := range counts {
			counts[i] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			v := px[i*d : (i+1)*d]
			dst := sums[c*d : (c+1)*d]
			for j := range v {
				dst[j] += v[j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// center, deterministically: pick the globally worst-fitted
				// pixel.
				worst, worstD := 0, -1.0
				for i := 0; i < n; i++ {
					dd := sqDist(px[i*d:(i+1)*d], centers[assign[i]*d:(assign[i]+1)*d])
					if dd > worstD {
						worst, worstD = i, dd
					}
				}
				copy(centers[c*d:(c+1)*d], px[worst*d:(worst+1)*d])
				continue
			}
			for j := 0; j < d; j++ {
				centers[c*d+j] = sums[c*d+j] / float64(counts[c])
			}
		}
	}

	out, err := raster.New(bands[0].Rows(), bands[0].Cols(), raster.PixChar)
	if err != nil {
		return nil, err
	}
	codes := make([]float64, n)
	for i, c := range assign {
		codes[i] = float64(c)
	}
	if err := out.SetFloat64s(codes); err != nil {
		return nil, err
	}
	return out, nil
}

// seedCenters picks k initial centers k-means++-style with a deterministic
// splitmix64 stream.
func seedCenters(px []float64, n, d, k int, seed uint64) []float64 {
	centers := make([]float64, k*d)
	state := seed
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	first := int(next() * float64(n))
	if first >= n {
		first = n - 1
	}
	copy(centers[0:d], px[first*d:(first+1)*d])
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(px[i*d:(i+1)*d], centers[0:d])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, dd := range dist {
			total += dd
		}
		idx := 0
		if total > 0 {
			target := next() * total
			var acc float64
			for i, dd := range dist {
				acc += dd
				if acc >= target {
					idx = i
					break
				}
			}
		} else {
			// All points coincide with chosen centers; spread deterministically.
			idx = (c * n) / k
		}
		copy(centers[c*d:(c+1)*d], px[idx*d:(idx+1)*d])
		for i := range dist {
			if dd := sqDist(px[i*d:(i+1)*d], centers[c*d:(c+1)*d]); dd < dist[i] {
				dist[i] = dd
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// WithinClusterSS returns the total within-cluster sum of squared distances
// of a classification against its source bands — the objective k-means
// minimises. Tests use it to verify classification quality invariants.
func WithinClusterSS(bands []*raster.Image, classes *raster.Image) (float64, error) {
	if err := checkSameShape(append([]*raster.Image{classes}, bands...)); err != nil {
		return 0, err
	}
	d := len(bands)
	n := classes.Pixels()
	codes := classes.Float64s()
	k := 0
	for _, c := range codes {
		if int(c) >= k {
			k = int(c) + 1
		}
	}
	sums := make([]float64, k*d)
	counts := make([]int, k)
	px := make([]float64, n*d)
	for b, im := range bands {
		vals := im.Float64s()
		for i, v := range vals {
			px[i*d+b] = v
		}
	}
	for i := 0; i < n; i++ {
		c := int(codes[i])
		counts[c]++
		for j := 0; j < d; j++ {
			sums[c*d+j] += px[i*d+j]
		}
	}
	centers := make([]float64, k*d)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := 0; j < d; j++ {
			centers[c*d+j] = sums[c*d+j] / float64(counts[c])
		}
	}
	var ss float64
	for i := 0; i < n; i++ {
		c := int(codes[i])
		ss += sqDist(px[i*d:(i+1)*d], centers[c*d:(c+1)*d])
	}
	return ss, nil
}
