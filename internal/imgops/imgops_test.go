package imgops

import (
	"math"
	"testing"

	"gaea/internal/raster"
)

func imgOf(t *testing.T, rows, cols int, vals []float64) *raster.Image {
	t.Helper()
	im := raster.MustNew(rows, cols, raster.PixFloat8)
	if err := im.SetFloat64s(vals); err != nil {
		t.Fatal(err)
	}
	return im
}

func TestImagesToMatrixRoundTrip(t *testing.T) {
	a := imgOf(t, 2, 2, []float64{1, 2, 3, 4})
	b := imgOf(t, 2, 2, []float64{5, 6, 7, 8})
	m, err := ImagesToMatrix([]*raster.Image{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 4 {
		t.Fatalf("matrix shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 7 {
		t.Errorf("layout wrong: %v", m.Data())
	}
	back, err := MatrixToImages(m, 2, 2, raster.PixFloat8)
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].EqualPixels(a) || !back[1].EqualPixels(b) {
		t.Error("matrix->image round trip lost pixels")
	}
	// Shape mismatch rejected.
	if _, err := MatrixToImages(m, 3, 3, raster.PixFloat8); err == nil {
		t.Error("wrong target shape must fail")
	}
	if _, err := ImagesToMatrix(nil); err == nil {
		t.Error("empty band set must fail")
	}
	c := raster.MustNew(3, 3, raster.PixFloat8)
	if _, err := ImagesToMatrix([]*raster.Image{a, c}); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestNDVI(t *testing.T) {
	red := imgOf(t, 1, 3, []float64{0.1, 0.2, 0})
	nir := imgOf(t, 1, 3, []float64{0.3, 0.2, 0})
	out, err := NDVI(red, nir)
	if err != nil {
		t.Fatal(err)
	}
	vals := out.Float64s()
	if math.Abs(vals[0]-0.5) > 1e-6 {
		t.Errorf("ndvi[0] = %g, want 0.5", vals[0])
	}
	if vals[1] != 0 {
		t.Errorf("ndvi[1] = %g, want 0", vals[1])
	}
	if vals[2] != 0 {
		t.Errorf("ndvi zero-sum pixel = %g, want 0", vals[2])
	}
	if out.PixType() != raster.PixFloat4 {
		t.Errorf("ndvi pixtype = %s", out.PixType())
	}
	bad := raster.MustNew(2, 2, raster.PixFloat8)
	if _, err := NDVI(red, bad); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestSubtractRatioAdd(t *testing.T) {
	a := imgOf(t, 1, 4, []float64{4, 6, 0, 10})
	b := imgOf(t, 1, 4, []float64{1, 2, 5, 0})

	sub, err := Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := sub.Float64s(); v[0] != 3 || v[3] != 10 {
		t.Errorf("subtract = %v", v)
	}

	rat, err := Ratio(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if v := rat.Float64s(); v[0] != 4 || v[1] != 3 || v[3] != 0 {
		t.Errorf("ratio = %v", v)
	}
	if _, err := Ratio(a, b, -1); err == nil {
		t.Error("negative epsilon must fail")
	}

	add, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := add.Float64s(); v[0] != 5 || v[2] != 5 {
		t.Errorf("add = %v", v)
	}
}

func TestScaleOffset(t *testing.T) {
	a := imgOf(t, 1, 2, []float64{1, 2})
	out, err := ScaleOffset(a, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Float64s(); v[0] != 15 || v[1] != 25 {
		t.Errorf("scaleoffset = %v", v)
	}
}

func TestThreshold(t *testing.T) {
	rain := imgOf(t, 1, 4, []float64{100, 250, 300, 249.9})
	dry, err := Threshold(rain, "<", 250)
	if err != nil {
		t.Fatal(err)
	}
	if v := dry.Float64s(); v[0] != 1 || v[1] != 0 || v[2] != 0 || v[3] != 1 {
		t.Errorf("threshold< = %v", v)
	}
	le, _ := Threshold(rain, "<=", 250)
	if v := le.Float64s(); v[1] != 1 {
		t.Errorf("threshold<= = %v", v)
	}
	gt, _ := Threshold(rain, ">", 250)
	if v := gt.Float64s(); v[2] != 1 || v[0] != 0 {
		t.Errorf("threshold> = %v", v)
	}
	ge, _ := Threshold(rain, ">=", 250)
	if v := ge.Float64s(); v[1] != 1 || v[2] != 1 {
		t.Errorf("threshold>= = %v", v)
	}
	if _, err := Threshold(rain, "!=", 250); err == nil {
		t.Error("unknown op must fail")
	}
	if dry.PixType() != raster.PixChar {
		t.Error("threshold output should be char")
	}
}

func TestAnd(t *testing.T) {
	a := imgOf(t, 1, 4, []float64{1, 1, 0, 5})
	b := imgOf(t, 1, 4, []float64{1, 0, 1, 2})
	out, err := And(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Float64s(); v[0] != 1 || v[1] != 0 || v[2] != 0 || v[3] != 1 {
		t.Errorf("and = %v", v)
	}
	// Single operand normalises to 0/1.
	single, err := And(a)
	if err != nil {
		t.Fatal(err)
	}
	if v := single.Float64s(); v[3] != 1 {
		t.Errorf("single and = %v", v)
	}
	if _, err := And(); err == nil {
		t.Error("no operands must fail")
	}
}

func TestReclass(t *testing.T) {
	img := imgOf(t, 1, 5, []float64{-1, 0, 5, 10, 20})
	out, err := Reclass(img, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 2, 2}
	got := out.Float64s()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reclass = %v, want %v", got, want)
			break
		}
	}
	if _, err := Reclass(img, nil); err == nil {
		t.Error("no breaks must fail")
	}
	if _, err := Reclass(img, []float64{5, 5}); err == nil {
		t.Error("non-ascending breaks must fail")
	}
}

func TestAreaFraction(t *testing.T) {
	img := imgOf(t, 1, 4, []float64{1, 1, 0, 2})
	if f := AreaFraction(img, 1); f != 0.5 {
		t.Errorf("fraction(1) = %g", f)
	}
	if f := AreaFraction(img, 9); f != 0 {
		t.Errorf("fraction(9) = %g", f)
	}
}

func TestComposite(t *testing.T) {
	a := imgOf(t, 2, 2, []float64{1, 2, 3, 4})
	b := imgOf(t, 2, 2, []float64{5, 6, 7, 8})
	m, err := Composite([]*raster.Image{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 4 {
		t.Errorf("composite shape %dx%d", m.Rows(), m.Cols())
	}
	if _, err := Composite(nil); err == nil {
		t.Error("empty composite must fail")
	}
}
