package imgops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gaea/internal/raster"
)

// twoClusterBands builds bands whose pixels form two well-separated
// clusters: left half near (0,0), right half near (10,10).
func twoClusterBands(t *testing.T, rows, cols int) []*raster.Image {
	t.Helper()
	a := raster.MustNew(rows, cols, raster.PixFloat8)
	b := raster.MustNew(rows, cols, raster.PixFloat8)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := 0.0
			if c >= cols/2 {
				v = 10
			}
			jitter := float64((r*31+c*17)%7) * 0.01
			a.Set(r, c, v+jitter)
			b.Set(r, c, v-jitter)
		}
	}
	return []*raster.Image{a, b}
}

func TestUnsuperclassifySeparatesClusters(t *testing.T) {
	bands := twoClusterBands(t, 8, 8)
	out, err := Unsuperclassify(bands, 2, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// All left-half pixels share one class, all right-half the other.
	left, _ := out.At(0, 0)
	right, _ := out.At(0, 7)
	if left == right {
		t.Fatal("clusters not separated")
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			v, _ := out.At(r, c)
			want := left
			if c >= 4 {
				want = right
			}
			if v != want {
				t.Fatalf("pixel (%d,%d) = %g, want %g", r, c, v, want)
			}
		}
	}
}

func TestUnsuperclassifyDeterminism(t *testing.T) {
	bands := twoClusterBands(t, 8, 8)
	a, err := Unsuperclassify(bands, 3, ClassifyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unsuperclassify(bands, 3, ClassifyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualPixels(b) {
		t.Error("same seed must reproduce the same classification")
	}
}

func TestUnsuperclassifyValidation(t *testing.T) {
	bands := twoClusterBands(t, 4, 4)
	if _, err := Unsuperclassify(bands, 0, ClassifyOptions{}); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := Unsuperclassify(bands, 256, ClassifyOptions{}); err == nil {
		t.Error("k>255 must fail")
	}
	if _, err := Unsuperclassify(bands, 17, ClassifyOptions{}); err == nil {
		t.Error("k > pixel count must fail")
	}
	if _, err := Unsuperclassify(nil, 2, ClassifyOptions{}); err == nil {
		t.Error("no bands must fail")
	}
	mixed := []*raster.Image{bands[0], raster.MustNew(5, 5, raster.PixFloat8)}
	if _, err := Unsuperclassify(mixed, 2, ClassifyOptions{}); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestUnsuperclassifyClassCodesInRange(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 4+r.Intn(6), 4+r.Intn(6)
		img := raster.MustNew(rows, cols, raster.PixFloat8)
		vals := make([]float64, rows*cols)
		for i := range vals {
			vals[i] = r.NormFloat64() * 10
		}
		img.SetFloat64s(vals)
		k := 1 + r.Intn(5)
		out, err := Unsuperclassify([]*raster.Image{img}, k, ClassifyOptions{Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		for _, v := range out.Float64s() {
			if v < 0 || v >= float64(k) || v != float64(int(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnsuperclassifyKEqualsPixels(t *testing.T) {
	// k == n is legal: every pixel may be its own class.
	img := raster.MustNew(2, 2, raster.PixFloat8)
	img.SetFloat64s([]float64{1, 2, 3, 4})
	out, err := Unsuperclassify([]*raster.Image{img}, 4, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range out.Float64s() {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("distinct pixels with k=n should each get a class, got %d classes", len(seen))
	}
}

func TestUnsuperclassifyConstantImage(t *testing.T) {
	// All pixels identical: must terminate and assign everything to one
	// class code without panicking on empty clusters.
	img := raster.MustNew(4, 4, raster.PixFloat8)
	out, err := Unsuperclassify([]*raster.Image{img}, 3, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := out.At(0, 0)
	for _, v := range out.Float64s() {
		if v != first {
			t.Fatal("constant image should classify uniformly")
		}
	}
}

func TestWithinClusterSSImprovesWithK(t *testing.T) {
	bands := twoClusterBands(t, 8, 8)
	one, err := Unsuperclassify(bands, 1, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Unsuperclassify(bands, 2, ClassifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ss1, err := WithinClusterSS(bands, one)
	if err != nil {
		t.Fatal(err)
	}
	ss2, err := WithinClusterSS(bands, two)
	if err != nil {
		t.Fatal(err)
	}
	if ss2 >= ss1 {
		t.Errorf("k=2 SS %g should beat k=1 SS %g", ss2, ss1)
	}
}

func TestUnsuperclassifyOnSyntheticScene(t *testing.T) {
	// End-to-end: classify a synthetic scene into 12 classes like P20.
	l := raster.NewLandscape(42)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 24, Cols: 24, DayOfYear: 180, Year: 1986, Noise: 0.01}
	bands, err := l.GenerateScene(spec, []raster.Band{raster.BandRed, raster.BandNIR, raster.BandSWIR})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unsuperclassify(bands, 12, ClassifyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats()
	if st.Min < 0 || st.Max > 11 {
		t.Errorf("class codes out of range: %+v", st)
	}
	if st.StdDev == 0 {
		t.Error("classification should not be uniform on a varied scene")
	}
}
