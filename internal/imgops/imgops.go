// Package imgops implements the image analysis operators the paper names:
// the accessors of §2.1.3 (img_nrow, img_ncol, img_type, img_size_eq), the
// composite and unsuperclassify operators of process P20 (Figure 3), NDVI
// and the subtract/ratio change operators of the two-scientists scenario
// (§1), and the PCA dataflow stages of Figure 4 (convert-image-matrix,
// compute-covariance, get-eigen-vector, linear-combination,
// convert-matrix-image) plus Eastman's standardized PCA (SPCA).
//
// These are the functions the ADT layer registers as operators on the image
// primitive class; the derivation layer never calls them directly.
package imgops

import (
	"errors"
	"fmt"
	"math"

	"gaea/internal/linalg"
	"gaea/internal/raster"
)

// Errors shared by the operators.
var (
	ErrNoBands   = errors.New("imgops: operator needs at least one band")
	ErrShape     = errors.New("imgops: input images must share shape")
	ErrBadParam  = errors.New("imgops: bad parameter")
	ErrDivByZero = errors.New("imgops: division by zero pixel with no epsilon")
)

// checkSameShape verifies a non-empty image set shares one shape.
func checkSameShape(imgs []*raster.Image) error {
	if len(imgs) == 0 {
		return ErrNoBands
	}
	for i, im := range imgs[1:] {
		if !imgs[0].SameShape(im) {
			return fmt.Errorf("%w: band 0 is %s, band %d is %s", ErrShape, imgs[0], i+1, im)
		}
	}
	return nil
}

// Composite stacks co-registered bands into a single multi-attribute pixel
// set; operationally it returns the per-pixel band vectors as a d×n matrix
// (d bands, n pixels). It is the composite() step of process P20.
func Composite(bands []*raster.Image) (*linalg.Matrix, error) {
	if err := checkSameShape(bands); err != nil {
		return nil, err
	}
	return ImagesToMatrix(bands)
}

// ImagesToMatrix is the paper's convert-image-matrix operator: it flattens
// a set of same-shaped images into a d×n row-major matrix, one row per
// image, one column per pixel.
func ImagesToMatrix(imgs []*raster.Image) (*linalg.Matrix, error) {
	if err := checkSameShape(imgs); err != nil {
		return nil, err
	}
	d, n := len(imgs), imgs[0].Pixels()
	data := make([]float64, d*n)
	for i, im := range imgs {
		copy(data[i*n:(i+1)*n], im.Float64s())
	}
	return linalg.FromData(d, n, data)
}

// MatrixToImages is the paper's convert-matrix-image operator: each matrix
// row becomes one image of the given shape and pixel type.
func MatrixToImages(m *linalg.Matrix, rows, cols int, pt raster.PixType) ([]*raster.Image, error) {
	if rows*cols != m.Cols() {
		return nil, fmt.Errorf("%w: %d pixels per row, want %dx%d=%d", ErrShape, m.Cols(), rows, cols, rows*cols)
	}
	out := make([]*raster.Image, m.Rows())
	for i := range out {
		img, err := raster.New(rows, cols, pt)
		if err != nil {
			return nil, err
		}
		if err := img.SetFloat64s(m.Row(i)); err != nil {
			return nil, err
		}
		out[i] = img
	}
	return out, nil
}

// NDVI computes the normalized difference vegetation index
// (nir-red)/(nir+red) per pixel, the derived measure the paper's
// motivating scenario (§1) is built around. Pixels where nir+red == 0
// produce 0.
func NDVI(red, nir *raster.Image) (*raster.Image, error) {
	if err := checkSameShape([]*raster.Image{red, nir}); err != nil {
		return nil, err
	}
	out, err := raster.New(red.Rows(), red.Cols(), raster.PixFloat4)
	if err != nil {
		return nil, err
	}
	rv, nv := red.Float64s(), nir.Float64s()
	vals := make([]float64, len(rv))
	for i := range rv {
		sum := nv[i] + rv[i]
		if sum != 0 {
			vals[i] = (nv[i] - rv[i]) / sum
		}
	}
	if err := out.SetFloat64s(vals); err != nil {
		return nil, err
	}
	return out, nil
}

// Subtract returns a-b per pixel in float4 — one scientist's vegetation-
// change derivation (NDVI(1989) - NDVI(1988)).
func Subtract(a, b *raster.Image) (*raster.Image, error) {
	return binaryOp(a, b, func(x, y float64) float64 { return x - y })
}

// Ratio returns a/b per pixel — the other scientist's derivation
// (NDVI(1989) / NDVI(1988)). Zero divisors are stabilised by eps: pixels
// with |b| <= eps yield 0.
func Ratio(a, b *raster.Image, eps float64) (*raster.Image, error) {
	if eps < 0 {
		return nil, fmt.Errorf("%w: negative epsilon %g", ErrBadParam, eps)
	}
	return binaryOp(a, b, func(x, y float64) float64 {
		if math.Abs(y) <= eps {
			return 0
		}
		return x / y
	})
}

// Add returns a+b per pixel.
func Add(a, b *raster.Image) (*raster.Image, error) {
	return binaryOp(a, b, func(x, y float64) float64 { return x + y })
}

func binaryOp(a, b *raster.Image, f func(x, y float64) float64) (*raster.Image, error) {
	if err := checkSameShape([]*raster.Image{a, b}); err != nil {
		return nil, err
	}
	out, err := raster.New(a.Rows(), a.Cols(), raster.PixFloat4)
	if err != nil {
		return nil, err
	}
	av, bv := a.Float64s(), b.Float64s()
	vals := make([]float64, len(av))
	for i := range av {
		vals[i] = f(av[i], bv[i])
	}
	if err := out.SetFloat64s(vals); err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleOffset returns img*scale + offset per pixel.
func ScaleOffset(img *raster.Image, scale, offset float64) (*raster.Image, error) {
	out, err := raster.New(img.Rows(), img.Cols(), raster.PixFloat4)
	if err != nil {
		return nil, err
	}
	vals := img.Float64s()
	for i := range vals {
		vals[i] = vals[i]*scale + offset
	}
	if err := out.SetFloat64s(vals); err != nil {
		return nil, err
	}
	return out, nil
}

// Threshold produces a binary char image: 1 where the pixel satisfies the
// comparison against limit, else 0. op is one of "<", "<=", ">", ">=".
// It is the reclassification primitive desert processes use ("rainfall less
// than 250 mm/year").
func Threshold(img *raster.Image, op string, limit float64) (*raster.Image, error) {
	var pred func(float64) bool
	switch op {
	case "<":
		pred = func(v float64) bool { return v < limit }
	case "<=":
		pred = func(v float64) bool { return v <= limit }
	case ">":
		pred = func(v float64) bool { return v > limit }
	case ">=":
		pred = func(v float64) bool { return v >= limit }
	default:
		return nil, fmt.Errorf("%w: threshold op %q", ErrBadParam, op)
	}
	out, err := raster.New(img.Rows(), img.Cols(), raster.PixChar)
	if err != nil {
		return nil, err
	}
	vals := img.Float64s()
	bin := make([]float64, len(vals))
	for i, v := range vals {
		if pred(v) {
			bin[i] = 1
		}
	}
	if err := out.SetFloat64s(bin); err != nil {
		return nil, err
	}
	return out, nil
}

// And returns the pixelwise conjunction of binary images (non-zero = true),
// used to intersect desert criteria (dry AND hot).
func And(imgs ...*raster.Image) (*raster.Image, error) {
	if err := checkSameShape(imgs); err != nil {
		return nil, err
	}
	out, err := raster.New(imgs[0].Rows(), imgs[0].Cols(), raster.PixChar)
	if err != nil {
		return nil, err
	}
	acc := imgs[0].Float64s()
	for _, im := range imgs[1:] {
		v := im.Float64s()
		for i := range acc {
			if acc[i] != 0 && v[i] != 0 {
				acc[i] = 1
			} else {
				acc[i] = 0
			}
		}
	}
	for i := range acc {
		if acc[i] != 0 {
			acc[i] = 1
		}
	}
	if err := out.SetFloat64s(acc); err != nil {
		return nil, err
	}
	return out, nil
}

// Reclass maps pixel value ranges to class codes: breaks must ascend; a
// pixel in [breaks[i], breaks[i+1]) gets code i+1, below breaks[0] gets 0,
// at or above the last break gets len(breaks).
func Reclass(img *raster.Image, breaks []float64) (*raster.Image, error) {
	if len(breaks) == 0 {
		return nil, fmt.Errorf("%w: no class breaks", ErrBadParam)
	}
	for i := 1; i < len(breaks); i++ {
		if breaks[i] <= breaks[i-1] {
			return nil, fmt.Errorf("%w: breaks must strictly ascend", ErrBadParam)
		}
	}
	out, err := raster.New(img.Rows(), img.Cols(), raster.PixChar)
	if err != nil {
		return nil, err
	}
	vals := img.Float64s()
	codes := make([]float64, len(vals))
	for i, v := range vals {
		code := 0
		for _, b := range breaks {
			if v >= b {
				code++
			} else {
				break
			}
		}
		codes[i] = float64(code)
	}
	if err := out.SetFloat64s(codes); err != nil {
		return nil, err
	}
	return out, nil
}

// AreaFraction returns the fraction of pixels equal to code, used by
// experiment reports ("what fraction of the region is desert?").
func AreaFraction(img *raster.Image, code float64) float64 {
	vals := img.Float64s()
	if len(vals) == 0 {
		return 0
	}
	n := 0
	for _, v := range vals {
		if v == code {
			n++
		}
	}
	return float64(n) / float64(len(vals))
}
