package imgops

import (
	"fmt"

	"gaea/internal/linalg"
	"gaea/internal/raster"
)

// Principal component analysis — the compound operator of Figure 4. The
// paper decomposes pca() into a dataflow network:
//
//	SET OF image → convert-image-matrix → SET OF matrix
//	             → compute-covariance   → matrix
//	             → get-eigen-vector     → vector(s)
//	             → linear-combination   → SET OF matrix
//	             → convert-matrix-image → SET OF image
//
// PCA here is the fused implementation; the ADT layer also registers each
// stage separately so the network form (exercised by the Figure 4
// experiment) can be compared against this monolith.

// PCAResult carries the principal-component images along with the
// decomposition, so experiments can report explained variance.
type PCAResult struct {
	Components []*raster.Image    // one image per retained component
	Eigen      []linalg.EigenPair // full decomposition, descending
	// ExplainedVariance[i] is Eigen[i].Value / sum of all eigenvalues.
	ExplainedVariance []float64
}

// PCA computes principal components of co-registered bands, retaining
// keep components (keep <= 0 retains all). It eigen-decomposes the
// covariance matrix, per Richards [31].
func PCA(bands []*raster.Image, keep int) (*PCAResult, error) {
	return pca(bands, keep, false)
}

// SPCA is Eastman's standardized PCA [9]: identical pipeline but the
// correlation matrix replaces the covariance matrix, giving each band unit
// weight. The paper's point — that PCA and SPCA produce the "same
// conceptual outcome" distinguishable only by their recorded derivation —
// is exercised by examples/vegchange.
func SPCA(bands []*raster.Image, keep int) (*PCAResult, error) {
	return pca(bands, keep, true)
}

func pca(bands []*raster.Image, keep int, standardized bool) (*PCAResult, error) {
	if err := checkSameShape(bands); err != nil {
		return nil, err
	}
	d := len(bands)
	if keep <= 0 || keep > d {
		keep = d
	}
	m, err := ImagesToMatrix(bands) // d×n
	if err != nil {
		return nil, err
	}
	var sym *linalg.Matrix
	if standardized {
		sym, err = linalg.Correlation(m)
	} else {
		sym, err = linalg.Covariance(m)
	}
	if err != nil {
		return nil, err
	}
	pairs, err := linalg.EigenSym(sym)
	if err != nil {
		return nil, err
	}

	// For SPCA, project standardized bands (zero mean, unit variance);
	// for PCA, project mean-centred bands.
	centered := centerRows(m, standardized)

	var total float64
	for _, p := range pairs {
		total += p.Value
	}
	res := &PCAResult{Eigen: pairs}
	for i := 0; i < keep; i++ {
		proj, err := linalg.LinearCombination(centered, pairs[i].Vector)
		if err != nil {
			return nil, err
		}
		img, err := raster.New(bands[0].Rows(), bands[0].Cols(), raster.PixFloat4)
		if err != nil {
			return nil, err
		}
		if err := img.SetFloat64s(proj); err != nil {
			return nil, err
		}
		res.Components = append(res.Components, img)
		ev := 0.0
		if total != 0 {
			ev = pairs[i].Value / total
		}
		res.ExplainedVariance = append(res.ExplainedVariance, ev)
	}
	return res, nil
}

// centerRows returns a copy of m with each row mean-subtracted, and, when
// standardize is set, divided by its standard deviation (constant rows are
// left at zero).
func centerRows(m *linalg.Matrix, standardize bool) *linalg.Matrix {
	out := m.Clone()
	d, n := out.Rows(), out.Cols()
	data := out.Data()
	for i := 0; i < d; i++ {
		row := data[i*n : (i+1)*n]
		mean := linalg.Mean(row)
		for j := range row {
			row[j] -= mean
		}
		if standardize {
			sd := linalg.StdDev(row)
			if sd > 0 {
				for j := range row {
					row[j] /= sd
				}
			}
		}
	}
	return out
}

// PCANetwork executes PCA as the explicit Figure 4 dataflow, stage by
// stage, using only the registered single-purpose operators. It exists so
// the Figure 4 experiment can verify that the compound-operator network and
// the fused PCA agree, and to measure the network's overhead.
func PCANetwork(bands []*raster.Image, keep int) (*PCAResult, error) {
	if err := checkSameShape(bands); err != nil {
		return nil, err
	}
	d := len(bands)
	if keep <= 0 || keep > d {
		keep = d
	}
	// Stage 1: convert-image-matrix.
	m, err := ImagesToMatrix(bands)
	if err != nil {
		return nil, err
	}
	// Stage 2: compute-covariance.
	cov, err := linalg.Covariance(m)
	if err != nil {
		return nil, err
	}
	// Stage 3: get-eigen-vector.
	pairs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, err
	}
	// Stage 4: linear-combination per retained component.
	centered := centerRows(m, false)
	projData := make([]float64, keep*m.Cols())
	for i := 0; i < keep; i++ {
		proj, err := linalg.LinearCombination(centered, pairs[i].Vector)
		if err != nil {
			return nil, err
		}
		copy(projData[i*m.Cols():(i+1)*m.Cols()], proj)
	}
	projMatrix, err := linalg.FromData(keep, m.Cols(), projData)
	if err != nil {
		return nil, err
	}
	// Stage 5: convert-matrix-image.
	imgs, err := MatrixToImages(projMatrix, bands[0].Rows(), bands[0].Cols(), raster.PixFloat4)
	if err != nil {
		return nil, err
	}
	var total float64
	for _, p := range pairs {
		total += p.Value
	}
	res := &PCAResult{Components: imgs, Eigen: pairs}
	for i := 0; i < keep; i++ {
		ev := 0.0
		if total != 0 {
			ev = pairs[i].Value / total
		}
		res.ExplainedVariance = append(res.ExplainedVariance, ev)
	}
	return res, nil
}

// ChangeComponent returns the PCA component conventionally interpreted as
// change in a two-date analysis (the second component; the first captures
// the stable signal). Errors if fewer than two components exist.
func (r *PCAResult) ChangeComponent() (*raster.Image, error) {
	if len(r.Components) < 2 {
		return nil, fmt.Errorf("imgops: change component needs >= 2 components, have %d", len(r.Components))
	}
	return r.Components[1], nil
}
