package fed

// The federated stream: a round-robin merge of per-shard push streams
// whose resume token generalises the kernel's single cursor to a
// VECTOR — one entry per shard component, each carrying that shard's
// own cursor (epoch + position) — so a consumer that stops mid-merge
// resumes every component at its exact object, on any connection.
//
// Cursor compatibility is a design goal in both directions:
//
//   - A one-component stream over a plain cursor emits a plain "c2|"
//     cursor (with the shard tag stamped into its OID), so single-
//     kernel tooling keeps working against a federation.
//   - A plain cursor handed back to the federation routes by that OID
//     tag — which also accepts the cursors single-kernel CLIENT code
//     synthesises when it stops a served fed stream early, since those
//     are minted from tagged OIDs.

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"gaea"
	"gaea/client"
	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/query"
	"gaea/internal/wire"
)

// comp is one shard's component of a federated stream.
type comp struct {
	shard int
	// initCursor is where this component starts: "" for a fresh scan,
	// else the shard-local cursor to resume from.
	initCursor string

	st   client.Stream
	next func() (*object.Object, error, bool)
	stop func()

	// exhausted: the shard answered its final object (resume omits it
	// as a Done entry). finished: no more objects THIS pass, but the
	// component is still resumable at finalCursor.
	exhausted   bool
	finished    bool
	finalCursor string

	yielded int
}

type fedStream struct {
	r      *Router
	ctx    context.Context
	req    gaea.Request
	opener func(ctx context.Context, shard int, req gaea.Request) (client.Stream, error)

	comps []*comp
	// doneEntries carries the already-finished components of an input
	// vector cursor through to the output, so a partially-resumed
	// vector stays complete.
	doneEntries []wire.ShardCursor
	wasVector   bool

	claimed bool
	cursor  string
}

// newFedStream resolves the request's cursor into stream components.
func newFedStream(r *Router, ctx context.Context, req gaea.Request,
	opener func(ctx context.Context, shard int, req gaea.Request) (client.Stream, error)) (*fedStream, error) {
	f := &fedStream{r: r, ctx: ctx, req: req, opener: opener}
	switch {
	case req.Cursor == "":
		for _, shard := range r.owners(req.Class) {
			f.comps = append(f.comps, &comp{shard: shard})
		}
	case wire.IsVectorCursor(req.Cursor):
		f.wasVector = true
		entries, err := wire.DecodeVectorCursor(req.Cursor)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Done {
				f.doneEntries = append(f.doneEntries, e)
				continue
			}
			if e.Shard >= len(r.conns) {
				return nil, fmt.Errorf("%w: cursor names shard %d; federation has %d",
					query.ErrBadRequest, e.Shard, len(r.conns))
			}
			f.comps = append(f.comps, &comp{shard: e.Shard, initCursor: e.Cursor})
		}
	default:
		// A plain kernel cursor: the OID inside carries the shard tag
		// (both this package and the single-kernel client mint them
		// that way), which routes the single resumed component.
		epoch, class, after, err := query.DecodeCursor(req.Cursor)
		if err != nil {
			return nil, err
		}
		shard, down := splitOID(uint64(after))
		if shard >= len(r.conns) {
			return nil, fmt.Errorf("%w: cursor names shard %d; federation has %d",
				query.ErrBadRequest, shard, len(r.conns))
		}
		f.comps = append(f.comps, &comp{
			shard:      shard,
			initCursor: query.EncodeCursor(epoch, class, object.OID(down)),
		})
	}
	return f, nil
}

// All yields the merged stream: one object per live component per
// round, each tagged with its owning shard. Consume once.
func (f *fedStream) All() iter.Seq2[*object.Object, error] {
	return func(yield func(*object.Object, error) bool) {
		if f.claimed {
			yield(nil, fmt.Errorf("%w: federated stream already consumed", query.ErrBadRequest))
			return
		}
		f.claimed = true
		ctx, sp := obs.Start(f.r.traced(f.ctx), "fed/stream")
		defer sp.End()
		sp.Annotate("class", f.req.Class)
		sp.Annotate("components", fmt.Sprint(len(f.comps)))
		defer f.stopAll()

		for _, c := range f.comps {
			dreq := f.req
			dreq.Cursor = c.initCursor
			st, err := f.opener(ctx, c.shard, dreq)
			if err != nil {
				yield(nil, fmt.Errorf("fed: shard %d stream: %w", c.shard, err))
				return
			}
			c.st = st
			c.next, c.stop = iter.Pull2(st.All())
		}

		total := 0
		live := len(f.comps)
		for live > 0 {
			for _, c := range f.comps {
				if c.finished {
					continue
				}
				o, err, ok := c.next()
				if !ok {
					// The shard stream ended on its own: either
					// exhausted (no cursor) or stopped downstream with
					// an exact resume cursor.
					c.finished = true
					c.finalCursor = c.st.Cursor()
					c.exhausted = c.finalCursor == ""
					live--
					continue
				}
				if err != nil {
					yield(nil, fmt.Errorf("fed: shard %d: %w", c.shard, err))
					f.assembleCursor()
					return
				}
				c.yielded++
				// Tag a COPY: the downstream client stream keeps the
				// original to synthesise its stop cursor from, and that
				// cursor must carry the untagged shard-local OID.
				oc := *o
				oc.OID = object.OID(tagOID(c.shard, uint64(o.OID)))
				if !yield(&oc, nil) {
					f.assembleCursor()
					return
				}
				total++
				if f.req.Limit > 0 && total >= f.req.Limit {
					f.assembleCursor()
					return
				}
			}
		}
		f.assembleCursor()
	}
}

// stopAll shuts every component's pull iterator down; each downstream
// stream then minted its exact resume cursor (the shard client's stop
// synthesis re-pins the epoch lease under it).
func (f *fedStream) stopAll() {
	for _, c := range f.comps {
		if c.stop != nil {
			c.stop()
		}
	}
}

// assembleCursor computes the resume token after the merge stops.
// Called exactly once, before stopAll has run — stopping the pull
// iterators here first so each downstream Cursor() is final.
func (f *fedStream) assembleCursor() {
	f.stopAll()
	entries := append([]wire.ShardCursor(nil), f.doneEntries...)
	liveLeft := false
	for _, c := range f.comps {
		switch {
		case c.exhausted:
			// Epoch is cosmetic on a done entry; recover it from the
			// component's start cursor when there was one.
			e := wire.ShardCursor{Shard: c.shard, Done: true}
			if c.initCursor != "" {
				e.Epoch, _ = query.CursorEpoch(c.initCursor)
			}
			entries = append(entries, e)
			continue
		case c.st == nil || (c.yielded == 0 && !c.finished):
			// Never consumed: resume exactly where it would have
			// started (possibly "": a not-yet-started component).
			cur := c.initCursor
			e := wire.ShardCursor{Shard: c.shard, Cursor: cur}
			if cur != "" {
				e.Epoch, _ = query.CursorEpoch(cur)
			}
			entries = append(entries, e)
			liveLeft = true
			continue
		}
		cur := c.finalCursor
		if !c.finished {
			cur = c.st.Cursor()
		}
		if cur == "" {
			// Consumed but not resumable (fallback-produced page, or a
			// lost re-pin): the whole merge is non-resumable, exactly
			// like the single-kernel stream in the same state.
			f.cursor = ""
			return
		}
		e := wire.ShardCursor{Shard: c.shard, Cursor: cur}
		e.Epoch, _ = query.CursorEpoch(cur)
		entries = append(entries, e)
		liveLeft = true
	}
	if !liveLeft {
		f.cursor = "" // every component exhausted: the stream is complete
		return
	}
	if !f.wasVector && len(f.comps) == 1 && len(f.doneEntries) == 0 {
		// One component, plain in — plain out, with the shard tag
		// stamped into the cursor's OID so resume routes back.
		c := f.comps[0]
		cur := entries[0].Cursor
		epoch, class, after, err := query.DecodeCursor(cur)
		if err != nil {
			f.cursor = ""
			return
		}
		f.cursor = query.EncodeCursor(epoch, class, object.OID(tagOID(c.shard, uint64(after))))
		return
	}
	f.cursor = wire.EncodeVectorCursor(entries)
}

// Cursor reports the resume token once All has stopped: "" when the
// merge completed (or cannot be resumed), a plain cursor for a plain
// single-component stream, a vector cursor otherwise.
func (f *fedStream) Cursor() string { return f.cursor }

// fedSnapshot is a federation-wide read-only view: one snapshot lease
// per shard, opened together. Each shard's lease pins one of ITS commit
// epochs; there is no cross-shard barrier (see Router.Snapshot).
type fedSnapshot struct {
	r     *Router
	snaps []client.Snapshot
}

// Epoch reports the pinned commit epoch when the view has exactly one
// shard (byte-compatible with a plain snapshot) and 0 otherwise — a
// federation of N has N epochs, one per component lease.
func (s *fedSnapshot) Epoch() uint64 {
	if len(s.snaps) == 1 {
		return s.snaps[0].Epoch()
	}
	return 0
}

// Get routes by the OID's shard tag and re-tags the answer.
func (s *fedSnapshot) Get(oid object.OID) (*object.Object, error) {
	shard, down := splitOID(uint64(oid))
	if shard >= len(s.snaps) {
		return nil, fmt.Errorf("%w: oid names shard %d; federation has %d",
			query.ErrBadRequest, shard, len(s.snaps))
	}
	o, err := s.snaps[shard].Get(object.OID(down))
	if err != nil {
		return nil, err
	}
	o.OID = object.OID(tagOID(shard, uint64(o.OID)))
	return o, nil
}

// Query scatters to the owning shards' pinned views and merges.
func (s *fedSnapshot) Query(ctx context.Context, req gaea.Request) (*gaea.Result, error) {
	own := s.r.owners(req.Class)
	results := make([]*gaea.Result, len(own))
	noPlan := 0
	var noPlanErr error
	for i, shard := range own {
		res, err := s.snaps[shard].Query(ctx, req)
		if errors.Is(err, gaea.ErrNoPlan) {
			// No rows for the class on THIS shard: an empty contribution
			// unless every owner says the same (see Router.Query).
			noPlan++
			noPlanErr = err
			results[i] = &gaea.Result{}
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("fed: shard %d snapshot query: %w", shard, err)
		}
		results[i] = res
	}
	if noPlan == len(own) {
		return nil, noPlanErr
	}
	return s.r.mergeResults(own, results), nil
}

// QueryStream merges the owning shards' pinned streams, with the same
// vector-cursor resume as the live path.
func (s *fedSnapshot) QueryStream(ctx context.Context, req gaea.Request) (client.Stream, error) {
	return newFedStream(s.r, ctx, req, func(ctx context.Context, shard int, req gaea.Request) (client.Stream, error) {
		return s.snaps[shard].QueryStream(ctx, req)
	})
}

// Release drops every shard lease. Idempotent per shard client.
func (s *fedSnapshot) Release() {
	for _, sn := range s.snaps {
		sn.Release()
	}
}
