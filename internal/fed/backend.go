package fed

// Backend adapts a Router onto internal/server's Backend interface, so
// the federation can itself be SERVED: `gaea fed` runs an ordinary
// wire server whose "kernel" is the router, and unmodified v1/v2
// clients talk to the grid exactly as they would to one kernel. OIDs
// they see carry shard tags (invisible at one shard, where the tag is
// the identity), cursors they hold resume across the merge, and their
// commits ride the single-shard fast path or 2PC as their batch
// demands.
//
// Epoch bookkeeping is the one impedance mismatch: the server's lease
// machinery pins ONE epoch per snapshot or cursor, but a federation of
// N has N epochs. The adapter answers Pin with a SYNTHETIC pin id
// (bit 62 set — far above any real commit epoch) naming a router-held
// per-shard snapshot set; real (shard-local) epochs inside resumed
// cursors pass through untouched, because the shard's own cursor
// leases — taken by each downstream stream — are the pins that matter.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gaea"
	"gaea/client"
	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/query"
	"gaea/internal/server"
	"gaea/internal/wire"
)

// pinBit marks a synthetic pin id: a handle to a router-held snapshot
// set, disjoint from every real commit epoch a kernel could reach.
const pinBit uint64 = 1 << 62

type fedPin struct {
	snap  *fedSnapshot // nil when the fan-out failed
	err   error
	refs  int
	grace *time.Timer // pending zombie release, nil while referenced
}

// pinGrace holds a fully-unreferenced synthetic pin before its shard
// snapshots are released. It bridges the window between the server
// unpinning an exhausted stream and the stopping client's OpLease
// re-pin of the page epoch: a real kernel bridges it with epoch
// persistence (any recent epoch can be re-pinned), but a synthetic pin
// is pure state — once the snapshot set is gone, the exact per-shard
// epochs are unrecoverable. Matches the default snapshot lease TTL.
const pinGrace = 30 * time.Second

type fedBackend struct {
	r      *Router
	pinSeq atomic.Uint64

	mu   sync.Mutex
	pins map[uint64]*fedPin
}

// NewBackend wraps a Router for internal/server, the `gaea fed` serving
// path.
func NewBackend(r *Router) server.Backend {
	return &fedBackend{r: r, pins: make(map[uint64]*fedPin)}
}

// Begin opens a federated session. The upstream user is recorded by the
// downstream connections' own identity (Options.Client.User); a one-
// shard federation passes the client's read epoch straight through, so
// first-committer-wins means exactly what it does against a plain
// kernel.
func (b *fedBackend) Begin(ctx context.Context, readEpoch uint64, user string) server.Session {
	s := &fedSession{r: b.r, ctx: ctx, shards: make(map[int]*shardBatch)}
	if len(b.r.conns) == 1 && readEpoch != 0 {
		s.fixedEpoch = map[int]uint64{0: readEpoch}
	}
	if err := b.r.checkOpen(); err != nil {
		s.broken = err
	}
	return s
}

// Epoch reports a commit epoch for a remote Begin: the real one when
// the federation has a single shard, 0 ("current at commit time")
// otherwise — a grid of N has N epochs and each shard's is captured
// when the session first touches it.
func (b *fedBackend) Epoch() uint64 {
	if len(b.r.conns) != 1 {
		return 0
	}
	//lint:gaea-allow ctxflow Epoch has no context by interface contract; the dial timeouts bound it
	resp, err := b.r.shardRoundTrip(context.Background(), 0, "begin", &wire.Request{Op: wire.OpBegin})
	if err != nil {
		return 0
	}
	return resp.Epoch
}

func (b *fedBackend) Query(ctx context.Context, req query.Request) (*query.Result, error) {
	return b.r.Query(ctx, req)
}

// QueryAt answers at a pinned snapshot set (the remote snapshot read
// path).
func (b *fedBackend) QueryAt(ctx context.Context, req query.Request, epoch uint64) (*query.Result, error) {
	pin, err := b.lookupPin(epoch)
	if err != nil {
		return nil, err
	}
	return pin.snap.Query(ctx, req)
}

func (b *fedBackend) lookupPin(epoch uint64) (*fedPin, error) {
	b.mu.Lock()
	pin, ok := b.pins[epoch]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: federation pin %d expired", gaea.ErrSnapshotGone, epoch)
	}
	if pin.err != nil {
		return nil, pin.err
	}
	return pin, nil
}

// shipPos remembers the last object a page shipped from one shard, so a
// byte-budget cut can re-mint that shard's cursor to re-include the
// object the cut pushed off the page.
type shipPos struct {
	class string
	down  uint64
}

// pageStream resolves one page request into a federated stream and the
// effective request it runs under (the cursor may be rewritten when a
// synthetic-epoch cursor is re-rooted onto its pinned snapshot set).
func (b *fedBackend) pageStream(ctx context.Context, req query.Request, epoch uint64) (client.Stream, query.Request, error) {
	ctx = b.r.traced(ctx)
	if req.Cursor == "" {
		// A fresh stream at a synthetic pin streams the pinned snapshot
		// set; without one (not a path the server takes) it streams
		// live.
		if epoch&pinBit != 0 {
			pin, err := b.lookupPin(epoch)
			if err != nil {
				return nil, req, err
			}
			st, err := newFedStream(b.r, ctx, req, func(ctx context.Context, shard int, req query.Request) (client.Stream, error) {
				return pin.snap.snaps[shard].QueryStream(ctx, req)
			})
			return st, req, err
		}
		st, err := b.r.QueryStream(ctx, req)
		return st, req, err
	}
	if !wire.IsVectorCursor(req.Cursor) {
		cepoch, class, after, err := query.DecodeCursor(req.Cursor)
		if err != nil {
			return nil, req, err
		}
		if cepoch&pinBit != 0 {
			// A client that stopped mid-page synthesised a plain cursor
			// from the page header's epoch — which, served by this
			// adapter, is a synthetic pin id. Re-root it onto the pinned
			// snapshot set: the one owning shard resumes at its pinned
			// epoch, exactly where the synthesis pointed.
			pin, err := b.lookupPin(cepoch)
			if err != nil {
				return nil, req, err
			}
			shard, down := splitOID(uint64(after))
			if shard >= len(pin.snap.snaps) {
				return nil, req, fmt.Errorf("%w: cursor names shard %d; federation has %d",
					query.ErrBadRequest, shard, len(pin.snap.snaps))
			}
			if own := b.r.owners(class); len(own) > 1 {
				return nil, req, fmt.Errorf("%w: a mid-page cursor cannot resume a %d-shard merge; resume from a page boundary (vector) cursor",
					query.ErrBadRequest, len(own))
			}
			req.Cursor = query.EncodeCursor(pin.snap.snaps[shard].Epoch(), class, object.OID(tagOID(shard, down)))
			st, err := newFedStream(b.r, ctx, req, func(ctx context.Context, shard int, req query.Request) (client.Stream, error) {
				return pin.snap.snaps[shard].QueryStream(ctx, req)
			})
			return st, req, err
		}
	}
	// Vector cursors and plain cursors with real shard epochs resume
	// live: every component's downstream cursor re-pins its own epoch
	// on its own shard.
	st, err := newFedStream(b.r, ctx, req, func(ctx context.Context, shard int, req query.Request) (client.Stream, error) {
		return b.r.conns[shard].QueryStream(ctx, req)
	})
	return st, req, err
}

// StreamPage drains one page of the federated merge under the byte
// budget, exactly like the kernel adapter: cut before the object that
// would overflow, cursor re-minted so the cut object leads the next
// page. retrieveOnly is implicit — every downstream path here is a
// snapshot or cursor stream, which never derives. fellBack is always
// false: a shard stream that fell back surfaces as a non-resumable
// (empty) cursor, never as unresumed truncation (a cut there is an
// error instead).
func (b *fedBackend) StreamPage(ctx context.Context, req query.Request, epoch uint64, retrieveOnly bool, maxBytes int) ([]wire.Object, string, bool, error) {
	st, ereq, err := b.pageStream(ctx, req, epoch)
	if err != nil {
		return nil, "", false, err
	}
	budget := maxBytes / 2
	objs := make([]wire.Object, 0, max(ereq.Limit, 0))
	total := 0
	prev := make(map[int]shipPos)
	var cut *object.Object
	var iterErr error
	for o, err := range st.All() {
		if err != nil {
			iterErr = err
			break
		}
		w, werr := wire.FromObject(o)
		if werr != nil {
			iterErr = werr
			break
		}
		size := wire.ObjectSize(&w)
		if size > maxBytes {
			iterErr = fmt.Errorf("%w: object %d (%d bytes) exceeds the frame limit %d",
				query.ErrBadRequest, o.OID, size, maxBytes)
			break
		}
		if len(objs) > 0 && total+size > budget {
			cut = o
			break
		}
		objs = append(objs, w)
		total += size
		shard, down := splitOID(uint64(o.OID))
		prev[shard] = shipPos{class: o.Class, down: down}
	}
	if iterErr != nil {
		return nil, "", false, iterErr
	}
	cursor := st.Cursor()
	if cut != nil {
		cursor, err = patchCutCursor(cursor, ereq.Cursor, cut, prev)
		if err != nil {
			return nil, "", false, err
		}
	}
	return objs, cursor, false, nil
}

// StreamPageRaw drains one page as stored-record bytes. The federation
// cannot ship shard records verbatim (their OIDs lack the shard tag),
// so each object is re-encoded after tagging; blob payloads ride inline
// in the record, as EncodeWire leaves them. served is always true —
// downstream kernels already ran their own fallback chains, so there is
// nothing for the caller's StreamPage fallback to add.
func (b *fedBackend) StreamPageRaw(ctx context.Context, req query.Request, epoch uint64, maxBytes int) ([]wire.RawObject, string, bool, error) {
	st, ereq, err := b.pageStream(ctx, req, epoch)
	if err != nil {
		return nil, "", false, err
	}
	budget := maxBytes / 2
	raws := make([]wire.RawObject, 0, max(ereq.Limit, 0))
	total := 0
	prev := make(map[int]shipPos)
	var cut *object.Object
	var iterErr error
	for o, err := range st.All() {
		if err != nil {
			iterErr = err
			break
		}
		rec, rerr := object.EncodeWire(o)
		if rerr != nil {
			iterErr = rerr
			break
		}
		raw := wire.RawObject{Rec: rec}
		size := raw.Size()
		if size > maxBytes {
			iterErr = fmt.Errorf("%w: object %d (%d bytes) exceeds the frame limit %d",
				query.ErrBadRequest, o.OID, size, maxBytes)
			break
		}
		if len(raws) > 0 && total+size > budget {
			cut = o
			break
		}
		raws = append(raws, raw)
		total += size
		shard, down := splitOID(uint64(o.OID))
		prev[shard] = shipPos{class: o.Class, down: down}
	}
	if iterErr != nil {
		return nil, "", false, iterErr
	}
	cursor := st.Cursor()
	if cut != nil {
		cursor, err = patchCutCursor(cursor, ereq.Cursor, cut, prev)
		if err != nil {
			return nil, "", false, err
		}
	}
	return raws, cursor, true, nil
}

// patchCutCursor rewinds the page cursor after a byte-budget cut: the
// merged stream already moved past the cut object, so the cut shard's
// component is re-minted at the last object the page actually shipped
// from it (or back to its starting position when the page shipped none).
func patchCutCursor(assembled, inCursor string, cut *object.Object, prev map[int]shipPos) (string, error) {
	cutShard, _ := splitOID(uint64(cut.OID))
	if assembled == "" {
		return "", fmt.Errorf("%w: page byte budget %s exceeded on a non-resumable stream; raise the frame limit or narrow the query",
			query.ErrBadRequest, "")
	}
	if wire.IsVectorCursor(assembled) {
		entries, err := wire.DecodeVectorCursor(assembled)
		if err != nil {
			return "", err
		}
		for i := range entries {
			if entries[i].Shard != cutShard {
				continue
			}
			if p, ok := prev[cutShard]; ok {
				entries[i].Cursor = query.EncodeCursor(entries[i].Epoch, p.class, object.OID(p.down))
			} else {
				init := initCursorFor(inCursor, cutShard)
				entries[i].Cursor = init
				entries[i].Epoch = 0
				if init != "" {
					if e, eerr := query.CursorEpoch(init); eerr == nil {
						entries[i].Epoch = e
					}
				}
			}
			entries[i].Done = false
			return wire.EncodeVectorCursor(entries), nil
		}
		return "", fmt.Errorf("%w: cut shard %d missing from page cursor", query.ErrBadRequest, cutShard)
	}
	epoch, _, _, err := query.DecodeCursor(assembled)
	if err != nil {
		return "", err
	}
	p, ok := prev[cutShard]
	if !ok {
		// The single component's first object overflowed the page it
		// shares with nothing: resume exactly where it started.
		return inCursor, nil
	}
	return query.EncodeCursor(epoch, p.class, object.OID(tagOID(cutShard, p.down))), nil
}

// initCursorFor recovers the position one shard's component started
// this page from, out of the page's input cursor.
func initCursorFor(inCursor string, shard int) string {
	switch {
	case inCursor == "":
		return ""
	case wire.IsVectorCursor(inCursor):
		entries, err := wire.DecodeVectorCursor(inCursor)
		if err != nil {
			return ""
		}
		for _, e := range entries {
			if e.Shard == shard && !e.Done {
				return e.Cursor
			}
		}
		return ""
	default:
		epoch, class, after, err := query.DecodeCursor(inCursor)
		if err != nil {
			return ""
		}
		if s, down := splitOID(uint64(after)); s == shard {
			return query.EncodeCursor(epoch, class, object.OID(down))
		}
		return ""
	}
}

// GetAt routes a snapshot point-read through the pinned snapshot set.
func (b *fedBackend) GetAt(oid object.OID, epoch uint64) (*object.Object, error) {
	pin, err := b.lookupPin(epoch)
	if err != nil {
		return nil, err
	}
	return pin.snap.Get(oid)
}

// GetRawAt is GetAt re-encoded to record bytes (the v2 zero-copy
// surface; the federation re-encodes because the tagged OID must be in
// the record).
func (b *fedBackend) GetRawAt(oid object.OID, epoch uint64) (wire.RawObject, error) {
	o, err := b.GetAt(oid, epoch)
	if err != nil {
		return wire.RawObject{}, err
	}
	rec, err := object.EncodeWire(o)
	if err != nil {
		return wire.RawObject{}, err
	}
	return wire.RawObject{Rec: rec}, nil
}

// Pin opens a snapshot lease on every shard and hands back a synthetic
// pin id naming the set. Pin cannot fail by contract, so a failed
// fan-out parks the error under the id for the first use to surface.
func (b *fedBackend) Pin() uint64 {
	id := pinBit | b.pinSeq.Add(1)
	pin := &fedPin{refs: 1}
	//lint:gaea-allow ctxflow Pin has no context by interface contract; the dial timeouts bound it
	sn, err := b.r.Snapshot(context.Background())
	if err != nil {
		pin.err = err
	} else {
		pin.snap = sn.(*fedSnapshot)
	}
	b.mu.Lock()
	b.pins[id] = pin
	b.mu.Unlock()
	return id
}

// PinEpoch re-pins: a synthetic id gains a reference; a real (shard-
// local) epoch is answered leniently with nil, because the downstream
// cursor leases taken by each resumed component are the pins that
// actually protect it.
func (b *fedBackend) PinEpoch(epoch uint64) error {
	if epoch&pinBit == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	pin, ok := b.pins[epoch]
	if !ok {
		return fmt.Errorf("%w: federation pin %d expired", gaea.ErrSnapshotGone, epoch)
	}
	if pin.err != nil {
		return pin.err
	}
	if pin.grace != nil {
		pin.grace.Stop()
		pin.grace = nil
	}
	pin.refs++
	return nil
}

// Unpin releases one reference on a synthetic pin. The last reference
// does not drop the shard snapshot set immediately: the pin lingers as
// a zombie for pinGrace so a client's stop-synthesised cursor can still
// re-pin it (see pinGrace), and only then releases.
func (b *fedBackend) Unpin(epoch uint64) {
	if epoch&pinBit == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	pin, ok := b.pins[epoch]
	if !ok {
		return
	}
	pin.refs--
	if pin.refs > 0 || pin.grace != nil {
		return
	}
	pin.grace = time.AfterFunc(pinGrace, func() {
		b.mu.Lock()
		cur, ok := b.pins[epoch]
		if !ok || cur != pin || cur.refs > 0 || cur.grace == nil {
			b.mu.Unlock()
			return
		}
		delete(b.pins, epoch)
		b.mu.Unlock()
		if pin.snap != nil {
			pin.snap.Release()
		}
	})
}

// CursorEpoch reports the epoch the server should re-pin for a cursor:
// for a vector cursor, the maximum component epoch (informational — the
// components re-pin their own); for a plain cursor, whatever it carries
// (possibly a synthetic pin id from this adapter's own pages).
func (b *fedBackend) CursorEpoch(cursor string) (uint64, error) {
	if wire.IsVectorCursor(cursor) {
		entries, err := wire.DecodeVectorCursor(cursor)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", query.ErrBadRequest, err)
		}
		var maxEpoch uint64
		for _, e := range entries {
			if !e.Done && e.Epoch > maxEpoch {
				maxEpoch = e.Epoch
			}
		}
		return maxEpoch, nil
	}
	return query.CursorEpoch(cursor)
}

func (b *fedBackend) Stale() []object.OID { return b.r.Stale() }

func (b *fedBackend) RefreshStale(ctx context.Context) (int, error) {
	return b.r.RefreshStale(ctx)
}

func (b *fedBackend) Explain(oid object.OID) string { return b.r.Explain(oid) }

func (b *fedBackend) ExplainQuery(ctx context.Context, req query.Request) (string, error) {
	return b.r.ExplainQuery(ctx, req)
}

func (b *fedBackend) Stats() string {
	st, err := b.r.Stats()
	if err != nil {
		return fmt.Sprintf("federation stats unavailable: %v\n", err)
	}
	return st
}

// Metrics, Tracer, and ObsJSON make the adapter a server.ObsBackend:
// the serving layer's counters land in the router registry and its
// request spans in the router tracer, under the upstream client's trace
// ID when one came over the wire — the middle level of the three-level
// client → router → shard trace.
func (b *fedBackend) Metrics() *obs.Registry { return b.r.reg }
func (b *fedBackend) Tracer() *obs.Tracer    { return b.r.tracer }
func (b *fedBackend) ObsJSON() []byte        { return b.r.ObsJSON() }

// Events makes the adapter a server.FlightBackend: a served federation
// pushes the router's own event stream — shard health transitions and
// coordinator 2PC outcomes — through SubscribeStats like any kernel.
func (b *fedBackend) Events() *obs.EventLog { return b.r.events }

// Code maps an error onto its wire code. Errors arriving from shards
// are already classified sentinels (the downstream client decoded them
// off the wire); federation-native errors carry the same taxonomy.
func (b *fedBackend) Code(err error) wire.Code {
	switch {
	case err == nil:
		return wire.CodeOK
	case errors.Is(err, gaea.ErrClosed):
		return wire.CodeClosed
	case errors.Is(err, gaea.ErrSnapshotGone):
		return wire.CodeSnapshotGone
	case errors.Is(err, ErrHeuristic), errors.Is(err, ErrDecideUnacked):
		// Partial or undelivered cross-shard outcomes are not retryable
		// request mistakes; surface them as internal so callers stop
		// and an operator looks (Stats counts them).
		return wire.CodeInternal
	case errors.Is(err, gaea.ErrConflict):
		return wire.CodeConflict
	case errors.Is(err, gaea.ErrStale):
		return wire.CodeStale
	case errors.Is(err, gaea.ErrClassUnknown):
		return wire.CodeClassUnknown
	case errors.Is(err, gaea.ErrNoPlan):
		return wire.CodeNoPlan
	case errors.Is(err, gaea.ErrNotFound):
		return wire.CodeNotFound
	case errors.Is(err, client.ErrUnavailable):
		return wire.CodeUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return wire.CodeCanceled
	default:
		return wire.CodeFor(err)
	}
}
