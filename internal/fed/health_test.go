package fed

// Health-monitor tests: the router's per-shard SubscribeStats
// subscriptions drive up/down states, a killed shard flips to down
// within one probe interval (plus the feed's error latency), the
// transition emits a shard_down event, and ObsJSON carries the fleet
// block. Named TestFed* so the CI race shard re-runs them.

import (
	"encoding/json"
	"testing"
	"time"

	"gaea"
)

func TestFedHealthMonitor(t *testing.T) {
	a := newShard(t, gaea.ServeOptions{})
	b := newShard(t, gaea.ServeOptions{})
	r := openFed(t, Options{StatsInterval: 25 * time.Millisecond}, a, b)

	waitFleet := func(want ...string) []gaea.ShardStatus {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			fl := r.health.fleet()
			ok := len(fl) == len(want)
			for i := range want {
				if !ok || fl[i].State != want[i] {
					ok = false
					break
				}
			}
			if ok {
				return fl
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("fleet never reached %v: %+v", want, r.health.fleet())
		return nil
	}

	fl := waitFleet(shardUp, shardUp)
	if fl[0].Shard != 0 || fl[0].Addr != a.addr || fl[1].Shard != 1 || fl[1].Addr != b.addr {
		t.Fatalf("fleet rows mislabelled: %+v", fl)
	}
	if fl[0].LastSeen.IsZero() {
		t.Fatal("up shard has no LastSeen")
	}

	// Kill shard 1: its feed breaks, the redial refuses, and the state
	// flips to down — the waitFleet deadline far exceeds the one-probe
	// bound, the assertion below is the functional one.
	b.stop()
	waitFleet(shardUp, shardDown)

	var sawDown bool
	for _, ev := range r.events.Since(0) {
		if ev.Type == "shard_down" && ev.Fields["shard"] == "1" {
			sawDown = true
		}
		if ev.Type == "shard_down" && ev.Fields["shard"] == "0" {
			t.Fatalf("live shard 0 reported down: %+v", ev)
		}
	}
	if !sawDown {
		t.Fatalf("no shard_down event for shard 1 in %+v", r.events.Since(0))
	}

	// The fleet block rides the observability export.
	var ex gaea.ObsExport
	if err := json.Unmarshal(r.ObsJSON(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Fleet) != 2 || ex.Fleet[0].State != shardUp || ex.Fleet[1].State != shardDown {
		t.Fatalf("ObsJSON fleet = %+v", ex.Fleet)
	}
}

// TestFedHealthDisabled: a negative StatsInterval runs no monitor and
// ObsJSON omits the fleet block.
func TestFedHealthDisabled(t *testing.T) {
	a := newShard(t, gaea.ServeOptions{})
	r := openFed(t, Options{StatsInterval: -1}, a)
	if r.health != nil {
		t.Fatal("monitor running despite negative StatsInterval")
	}
	var ex gaea.ObsExport
	if err := json.Unmarshal(r.ObsJSON(), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Fleet != nil {
		t.Fatalf("fleet block present without a monitor: %+v", ex.Fleet)
	}
}
