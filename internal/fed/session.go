package fed

// fedSession is a mutation session over the federation. Staging is
// local, split by partition key: creates land on the shard placeCreate
// picks for their class, updates and deletes follow their OID's shard
// tag. Commit then takes one of two shapes:
//
//   - One shard touched: the staged batch ships as that shard's
//     ordinary OpCommit — one round trip, one WAL fsync, exactly the
//     plain-client path. The federation adds zero commit latency to
//     workloads that respect the partitioning.
//
//   - Several shards touched: two-phase commit. Every shard prepares
//     (validate + write-set locks + durable vote under the coordinator
//     token), the decision is fsynced to the decision log — THE commit
//     point — and the decide fan-out applies it. Any prepare refusal
//     aborts everywhere; a crash after the commit point is finished by
//     replay (Open here, vote re-staging on the shards).
//
// Each shard's first-committer-wins read epoch is captured lazily by
// the first staged operation touching it.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gaea"
	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/query"
	"gaea/internal/wire"
)

// ErrHeuristic reports a cross-shard transaction that committed on some
// shards while another had already discarded its vote (prepare TTL
// elapsed, or a shard restart lost a non-durable prepare): the
// transaction is partially applied and no retry can reconcile it.
// Run shards with ServeOptions.PrepareDir and a prepare TTL comfortably
// above coordinator latency to keep this window shut.
var ErrHeuristic = errors.New("fed: heuristic outcome — transaction partially committed")

// ErrDecideUnacked reports a cross-shard transaction that IS durably
// committed (the decision log has it) but whose decide could not be
// delivered to every shard — typically a shard connection died inside
// the fan-out. The undelivered shards apply it when the decision is
// replayed (the next fed.Open over the same log), or answer
// idempotently if they already did.
var ErrDecideUnacked = errors.New("fed: committed; decision delivery incomplete")

type fedSession struct {
	r   *Router
	ctx context.Context

	mu       sync.Mutex
	broken   error
	done     bool
	prepared bool
	shards   map[int]*shardBatch
	// order remembers first-touch order so commits and OID responses
	// are deterministic.
	order     []int
	committed map[object.OID]object.OID
	// fixedEpoch pre-pins shard read epochs — the served 1-shard path
	// passes the upstream client's epoch through so first-committer-
	// wins semantics survive the relay.
	fixedEpoch map[int]uint64
}

// shardBatch is the staged slice of a session bound for one shard — a
// mirror of the plain remote session's staging, in downstream OID
// space.
type shardBatch struct {
	shard     int
	readEpoch uint64
	nextProv  uint64
	creates   []wire.Create
	createIdx map[uint64]int
	updates   []wire.Object
	updateIdx map[uint64]int
	deletes   []uint64
	deleteIdx map[uint64]struct{}
}

func (s *fedSession) check() error {
	if s.broken != nil {
		return s.broken
	}
	if s.done {
		return fmt.Errorf("%w: session finished", gaea.ErrClosed)
	}
	return nil
}

// batchFor returns the staging batch for a shard, capturing the shard's
// read epoch on first touch (one OpBegin round trip, skipped when the
// epoch was pre-pinned). Called with s.mu held.
func (s *fedSession) batchFor(shard int) (*shardBatch, error) {
	if shard < 0 || shard >= len(s.r.conns) {
		return nil, fmt.Errorf("%w: oid names shard %d; federation has %d", query.ErrBadRequest, shard, len(s.r.conns))
	}
	if b, ok := s.shards[shard]; ok {
		return b, nil
	}
	b := &shardBatch{
		shard:     shard,
		createIdx: make(map[uint64]int),
		updateIdx: make(map[uint64]int),
		deleteIdx: make(map[uint64]struct{}),
	}
	if e, ok := s.fixedEpoch[shard]; ok {
		b.readEpoch = e
	} else {
		resp, err := s.r.shardRoundTrip(s.ctx, shard, "begin", &wire.Request{Op: wire.OpBegin})
		if err != nil {
			return nil, fmt.Errorf("fed: shard %d begin: %w", shard, err)
		}
		b.readEpoch = resp.Epoch
	}
	s.shards[shard] = b
	s.order = append(s.order, shard)
	return b, nil
}

// Create stages a new object on the shard owning its class and returns
// a provisional OID carrying the shard tag (Committed translates after
// Commit).
func (s *fedSession) Create(obj *object.Object, note string) (object.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(); err != nil {
		return 0, err
	}
	if s.prepared {
		return 0, fmt.Errorf("%w: session is prepared; commit or roll back", gaea.ErrClosed)
	}
	b, err := s.batchFor(s.r.placeCreate(obj.Class))
	if err != nil {
		return 0, err
	}
	w, err := wire.FromObject(obj)
	if err != nil {
		return 0, err
	}
	b.nextProv++
	prov := wire.ProvisionalBit | b.nextProv
	w.OID = prov
	b.createIdx[prov] = len(b.creates)
	b.creates = append(b.creates, wire.Create{Prov: prov, Obj: w, Note: note})
	// The upstream provisional OID is the downstream one with the shard
	// tag stamped in — no translation table needed.
	return object.OID(tagOID(b.shard, prov)), nil
}

// Update stages a replacement; the OID's shard tag (real or
// provisional) is the route.
func (s *fedSession) Update(obj *object.Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(); err != nil {
		return err
	}
	if s.prepared {
		return fmt.Errorf("%w: session is prepared; commit or roll back", gaea.ErrClosed)
	}
	shard, down := splitOID(uint64(obj.OID))
	b, err := s.batchFor(shard)
	if err != nil {
		return err
	}
	if _, staged := b.deleteIdx[down]; staged {
		return fmt.Errorf("%w: object %d is staged for deletion in this session", gaea.ErrConflict, obj.OID)
	}
	w, err := wire.FromObject(obj)
	if err != nil {
		return err
	}
	w.OID = down
	if i, staged := b.createIdx[down]; staged {
		note := b.creates[i].Note
		b.creates[i] = wire.Create{Prov: down, Obj: w, Note: note}
		return nil
	}
	if i, staged := b.updateIdx[down]; staged {
		b.updates[i] = w
		return nil
	}
	b.updateIdx[down] = len(b.updates)
	b.updates = append(b.updates, w)
	return nil
}

// Delete stages a removal on the OID's shard; deleting a provisional
// OID discards its staged create.
func (s *fedSession) Delete(oid object.OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(); err != nil {
		return err
	}
	if s.prepared {
		return fmt.Errorf("%w: session is prepared; commit or roll back", gaea.ErrClosed)
	}
	shard, down := splitOID(uint64(oid))
	b, err := s.batchFor(shard)
	if err != nil {
		return err
	}
	if i, staged := b.createIdx[down]; staged {
		b.creates = append(b.creates[:i], b.creates[i+1:]...)
		delete(b.createIdx, down)
		for p, j := range b.createIdx {
			if j > i {
				b.createIdx[p] = j - 1
			}
		}
		return nil
	}
	if i, staged := b.updateIdx[down]; staged {
		b.updates = append(b.updates[:i], b.updates[i+1:]...)
		delete(b.updateIdx, down)
		for p, j := range b.updateIdx {
			if j > i {
				b.updateIdx[p] = j - 1
			}
		}
	}
	if _, staged := b.deleteIdx[down]; staged {
		return nil
	}
	b.deleteIdx[down] = struct{}{}
	b.deletes = append(b.deletes, down)
	return nil
}

func (b *shardBatch) empty() bool {
	return len(b.creates)+len(b.updates)+len(b.deletes) == 0
}

func (b *shardBatch) batchReq() *wire.BatchReq {
	return &wire.BatchReq{
		Creates:   b.creates,
		Updates:   b.updates,
		Deletes:   b.deletes,
		ReadEpoch: b.readEpoch,
	}
}

// Commit applies the whole staged batch atomically across however many
// shards it touches.
func (s *fedSession) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(); err != nil {
		return err
	}
	s.done = true
	if err := s.ctx.Err(); err != nil {
		return err
	}
	var touched []*shardBatch
	for _, shard := range s.order {
		if b := s.shards[shard]; !b.empty() {
			touched = append(touched, b)
		}
	}
	if len(touched) == 0 {
		return nil
	}
	s.r.commits.Inc()
	ctx, sp := obs.Start(s.r.traced(s.ctx), "fed/commit")
	defer sp.End()
	sp.Annotate("shards", fmt.Sprint(len(touched)))
	if len(touched) == 1 {
		return s.commitSingle(ctx, sp, touched[0])
	}
	s.r.twoPhase.Inc()
	return s.commitTwoPhase(ctx, sp, touched)
}

// commitSingle is the fast path: the one touched shard commits in its
// ordinary single-round-trip path, 2PC machinery untouched.
func (s *fedSession) commitSingle(ctx context.Context, sp *obs.Span, b *shardBatch) error {
	resp, err := s.r.shardRoundTrip(ctx, b.shard, "commit", &wire.Request{Op: wire.OpCommit, Batch: b.batchReq()})
	if err != nil {
		sp.Annotate("error", err.Error())
		return err
	}
	return s.recordCommitted(b, resp.OIDs)
}

// recordCommitted maps one shard's answered real OIDs back onto the
// session's tagged provisional OIDs. Called with s.mu held.
func (s *fedSession) recordCommitted(b *shardBatch, oids []uint64) error {
	if len(oids) != len(b.creates) {
		return fmt.Errorf("fed: shard %d answered %d OIDs for %d creates", b.shard, len(oids), len(b.creates))
	}
	if s.committed == nil {
		s.committed = make(map[object.OID]object.OID)
	}
	for i := range b.creates {
		prov := object.OID(tagOID(b.shard, b.creates[i].Prov))
		s.committed[prov] = object.OID(tagOID(b.shard, oids[i]))
	}
	return nil
}

// commitTwoPhase runs the full protocol over the touched shards.
func (s *fedSession) commitTwoPhase(ctx context.Context, sp *obs.Span, touched []*shardBatch) error {
	token, err := s.r.log.mint()
	if err != nil {
		sp.Annotate("error", err.Error())
		return err
	}
	sp.Annotate("token", fmt.Sprint(token))

	// Phase one: every shard validates, locks, and makes its vote
	// durable. Any refusal — or any unreachable shard — aborts the
	// whole transaction before anything is decided.
	prepErrs := make([]error, len(touched))
	var wg sync.WaitGroup
	for i, b := range touched {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.r.shardRoundTrip(ctx, b.shard, "prepare",
				&wire.Request{Op: wire.OpPrepare, Lease: token, Batch: b.batchReq()})
			prepErrs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range prepErrs {
		if err != nil {
			s.decideFanout(ctx, touched, token, 0, nil)
			sp.Annotate("error", err.Error())
			return fmt.Errorf("fed: shard %d refused prepare: %w", touched[i].shard, err)
		}
	}

	// The commit point: the decision outlives any crash from here on.
	shards := make([]int, len(touched))
	for i, b := range touched {
		shards[i] = b.shard
	}
	if err := s.r.log.commit(token, shards); err != nil {
		// Can't make the decision durable — abort while every shard is
		// still only prepared.
		s.decideFanout(ctx, touched, token, 0, nil)
		sp.Annotate("error", err.Error())
		return err
	}

	// Phase two: deliver the decision. The authoritative OIDs come from
	// the decide responses (a shard that re-staged its vote after a
	// restart reserved fresh ones).
	oidsByShard := make([][]uint64, len(touched))
	decErrs := s.decideFanout(ctx, touched, token, 1, oidsByShard)
	var firstErr error
	for i, err := range decErrs {
		b := touched[i]
		switch {
		case err == nil:
			s.r.log.ack(token, b.shard)
			s.r.acks.Inc()
			if rerr := s.recordCommitted(b, oidsByShard[i]); rerr != nil && firstErr == nil {
				firstErr = rerr
			}
		case errors.Is(err, gaea.ErrNotFound):
			// The shard lost its vote between our prepare and decide:
			// everyone else committed, this shard presumed abort. No
			// retry can reconcile it — record and surface.
			s.r.log.heuristic(token, b.shard)
			s.r.events.Emit("2pc_heuristic", obs.SevWarn,
				"shard lost its vote after the commit decision; transaction partially applied",
				map[string]string{"token": fmt.Sprint(token), "shard": fmt.Sprint(b.shard)})
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: transaction %d, shard %d: %v", ErrHeuristic, token, b.shard, err)
			}
		default:
			// Unreachable shard: the decision stays pending in the log
			// and is re-delivered by the next Open's replay.
			s.r.unacked.Inc()
			s.r.events.Emit("2pc_unacked", obs.SevWarn,
				"decision delivery incomplete; replay finishes it",
				map[string]string{"token": fmt.Sprint(token), "shard": fmt.Sprint(b.shard)})
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: transaction %d, shard %d: %v", ErrDecideUnacked, token, b.shard, err)
			}
		}
	}
	if firstErr != nil {
		sp.Annotate("error", firstErr.Error())
	}
	return firstErr
}

// decideFanout delivers one decision (1 = commit, 0 = abort) to every
// touched shard concurrently, collecting per-shard errors and — for
// commits — the answered real OIDs.
func (s *fedSession) decideFanout(ctx context.Context, touched []*shardBatch, token uint64, decision uint64, oids [][]uint64) []error {
	errs := make([]error, len(touched))
	var wg sync.WaitGroup
	for i, b := range touched {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.r.shardRoundTrip(ctx, b.shard, "decide",
				&wire.Request{Op: wire.OpDecide, Lease: token, Epoch: decision})
			errs[i] = err
			if err == nil && oids != nil {
				oids[i] = resp.OIDs
			}
		}()
	}
	wg.Wait()
	return errs
}

// Rollback discards the staged work. Nothing was sent downstream
// except epoch fetches, so there is nothing to undo remotely.
func (s *fedSession) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	return nil
}

// Committed translates a provisional OID from Create into the stored,
// shard-tagged OID after a successful Commit.
func (s *fedSession) Committed(oid object.OID) (object.OID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	real, ok := s.committed[oid]
	return real, ok
}
