package fed

// The coordinator decision log: the durable commit point of every
// cross-shard transaction. 2PC's one unrecoverable moment is between
// "all shards voted yes" and "every shard heard the decision" — the
// coordinator must be able to answer "did transaction T commit?" after
// a crash anywhere in that window. The log answers it with an append-
// only text file of tiny records, fsynced once per decision:
//
//	seq <n>                  token-space reservation (chunked)
//	commit <token> <s,s,..>  the decision: T commits on these shards
//	ack <token> <shard>      one shard applied the decision
//	heuristic <token> <shard> the shard's vote was gone (TTL/restart):
//	                          outcome recorded, never retried
//	done <token>             every shard accounted for; T is history
//
// Abort decisions are deliberately NOT logged: an aborted transaction
// needs no recovery (shards presume abort when their prepare TTL
// expires), so the log stays proportional to commits. Replay at Open
// re-sends decide(commit) for every commit record not yet done.
//
// Tokens are minted as a per-open random 16-bit salt over a durably
// reserved 48-bit sequence — unique across coordinator restarts (the
// reservation) and across coordinators sharing shards (the salt).

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// seqChunk is how many tokens one durable "seq" line reserves: the
// fsync cost of sequence persistence is paid once per chunk.
const seqChunk = 4096

type pendingDecision struct {
	token  uint64
	shards []int
}

// decisionLog is the coordinator's persistent memory. A nil file (no
// DecisionLog path) degrades to in-memory bookkeeping: correct while
// the process lives, amnesiac across a crash.
type decisionLog struct {
	mu sync.Mutex
	f  *os.File // nil in ephemeral mode
	w  *bufio.Writer

	salt     uint64
	nextSeq  uint64 // next token sequence to hand out
	reserved uint64 // sequences below this are durably reserved

	// pending maps a committed token to the shards still owing an ack.
	pending map[uint64]map[int]bool
	// heuristics counts shards whose vote vanished before the commit
	// decision reached them — partial outcomes an operator must chase.
	heuristics int
}

// lockorder note: decisionLog.mu ranks below fed.Router.mu; neither is
// ever held while calling into the other or across a shard round trip.

// openDecisionLog opens (creating if absent) and replays the log at
// path; "" opens an ephemeral in-memory log.
func openDecisionLog(path string) (*decisionLog, error) {
	l := &decisionLog{pending: make(map[uint64]map[int]bool)}
	var saltBytes [8]byte
	if _, err := rand.Read(saltBytes[:]); err != nil {
		return nil, fmt.Errorf("fed: decision log salt: %w", err)
	}
	l.salt = uint64(binary.LittleEndian.Uint16(saltBytes[:])) << 48
	if path == "" {
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("fed: decision log: %w", err)
	}
	var maxSeq uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "seq":
			if len(fields) == 2 {
				if n, err := strconv.ParseUint(fields[1], 10, 64); err == nil && n > maxSeq {
					maxSeq = n
				}
			}
		case "commit":
			if len(fields) != 3 {
				continue
			}
			token, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				continue
			}
			owed := make(map[int]bool)
			for _, s := range strings.Split(fields[2], ",") {
				if shard, err := strconv.Atoi(s); err == nil {
					owed[shard] = true
				}
			}
			l.pending[token] = owed
		case "ack", "heuristic":
			if len(fields) != 3 {
				continue
			}
			token, err1 := strconv.ParseUint(fields[1], 10, 64)
			shard, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				continue
			}
			if owed := l.pending[token]; owed != nil {
				delete(owed, shard)
				if len(owed) == 0 {
					delete(l.pending, token)
				}
			}
			if fields[0] == "heuristic" {
				l.heuristics++
			}
		case "done":
			if len(fields) != 2 {
				continue
			}
			if token, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				delete(l.pending, token)
			}
		}
	}
	if err := sc.Err(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("fed: decision log: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.nextSeq = maxSeq
	l.reserved = maxSeq
	return l, nil
}

// appendSync writes one record and forces it to stable storage. Called
// with l.mu held.
func (l *decisionLog) appendSync(line string) error {
	if l.f == nil {
		return nil
	}
	if _, err := l.w.WriteString(line + "\n"); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// mint returns a fresh transaction token, durably reserving a new
// sequence chunk when the current one runs out.
func (l *decisionLog) mint() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq >= l.reserved {
		next := l.reserved + seqChunk
		if err := l.appendSync(fmt.Sprintf("seq %d", next)); err != nil {
			return 0, fmt.Errorf("fed: decision log: %w", err)
		}
		l.reserved = next
	}
	l.nextSeq++
	return l.salt | l.nextSeq&rawOIDMask, nil
}

// commit records the decision — after this returns nil, transaction
// `token` IS committed, whatever happens to the process.
func (l *decisionLog) commit(token uint64, shards []int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	parts := make([]string, len(shards))
	owed := make(map[int]bool, len(shards))
	for i, s := range shards {
		parts[i] = strconv.Itoa(s)
		owed[s] = true
	}
	if err := l.appendSync(fmt.Sprintf("commit %d %s", token, strings.Join(parts, ","))); err != nil {
		return fmt.Errorf("fed: decision log: %w", err)
	}
	l.pending[token] = owed
	return nil
}

// ack records one shard's application of a commit decision. Best-effort
// durability: a lost ack merely re-delivers an idempotent decide.
func (l *decisionLog) ack(token uint64, shard int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.appendSync(fmt.Sprintf("ack %d %d", token, shard))
	l.settle(token, shard)
}

// heuristic records a shard whose vote was gone when the commit
// decision arrived — the transaction is partially applied and no retry
// can fix it; it is taken off the replay list and counted.
func (l *decisionLog) heuristic(token uint64, shard int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.appendSync(fmt.Sprintf("heuristic %d %d", token, shard))
	l.heuristics++
	l.settle(token, shard)
}

// settle clears one shard's debt and closes the transaction when it was
// the last. Called with l.mu held.
func (l *decisionLog) settle(token uint64, shard int) {
	owed := l.pending[token]
	if owed == nil {
		return
	}
	delete(owed, shard)
	if len(owed) == 0 {
		delete(l.pending, token)
		_ = l.appendSync(fmt.Sprintf("done %d", token))
	}
}

// undelivered lists the commit decisions still owing shard acks, oldest
// token first.
func (l *decisionLog) undelivered() []pendingDecision {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]pendingDecision, 0, len(l.pending))
	for token, owed := range l.pending {
		p := pendingDecision{token: token}
		for shard := range owed {
			p.shards = append(p.shards, shard)
		}
		sort.Ints(p.shards)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].token < out[j].token })
	return out
}

func (l *decisionLog) pendingCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

func (l *decisionLog) heuristicCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.heuristics
}

func (l *decisionLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
