package fed

// Federation tests over real shard kernels served on unix sockets:
// OID tagging, scatter-gather query merge, vector-cursor stream resume
// across routers under a concurrent writer and GC, two-phase commit
// atomicity across shard and coordinator crashes (decision-log replay
// against durable prepares), presumed abort, heuristic outcomes, and
// the served-federation compatibility paths (unmodified v1/v2 clients
// against a one-shard federation).
//
// Everything shares the TestFed name prefix so the CI race shard can
// re-run the lot under -race -cpu 1,4.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gaea"
	"gaea/client"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/server"
	"gaea/internal/sptemp"
	"gaea/internal/value"
	"gaea/internal/wire"
)

var tctx = context.Background()

func rainObj(mm float64, x float64) *object.Object {
	return &object.Object{
		Class:  "rain",
		Attrs:  map[string]value.Value{"mm": value.Float(mm)},
		Extent: sptemp.TimelessExtent(sptemp.DefaultFrame, sptemp.NewBox(x, 0, x+10, 10)),
	}
}

func rainReq() gaea.Request {
	return gaea.Request{Class: "rain", Pred: sptemp.Extent{Frame: sptemp.DefaultFrame, Space: sptemp.EmptyBox()}}
}

// sockPath returns a short unix socket path (sun_path is ~108 bytes).
func sockPath(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "gaea-fed-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return filepath.Join(dir, "s")
}

// testShard is one shard kernel + server that tests can stop and
// restart (a restart from the same data dir is the "shard crash"
// simulation: in-memory prepare locks are gone, the prepare sidecars
// and WAL survive).
type testShard struct {
	t    *testing.T
	dir  string
	opts gaea.ServeOptions

	k       *gaea.Kernel
	srv     *gaea.Server
	done    chan error
	addr    string
	stopped bool
}

func newShard(t *testing.T, opts gaea.ServeOptions) *testShard {
	t.Helper()
	s := &testShard{t: t, dir: t.TempDir(), opts: opts}
	s.start(true)
	t.Cleanup(func() {
		if !s.stopped {
			s.stop()
		}
	})
	return s
}

func (s *testShard) start(fresh bool) {
	s.t.Helper()
	k, err := gaea.Open(s.dir, gaea.Options{NoSync: true, User: "shard"})
	if err != nil {
		s.t.Fatal(err)
	}
	if fresh {
		if err := k.DefineClass(&catalog.Class{
			Name: "rain", Kind: catalog.KindBase,
			Attrs: []catalog.Attr{{Name: "mm", Type: value.TypeFloat}},
			Frame: sptemp.DefaultFrame, HasSpatial: true,
		}); err != nil {
			s.t.Fatal(err)
		}
	}
	sock := sockPath(s.t)
	l, err := net.Listen("unix", sock)
	if err != nil {
		s.t.Fatal(err)
	}
	s.k = k
	s.srv = k.NewServer(s.opts)
	s.done = make(chan error, 1)
	srv := s.srv
	done := s.done
	go func() { done <- srv.Serve(l) }()
	s.addr = "unix://" + sock
	s.stopped = false
}

func (s *testShard) stop() {
	s.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
	if err := <-s.done; err != nil {
		s.t.Errorf("serve: %v", err)
	}
	_ = s.k.Close()
	s.stopped = true
}

// restart bounces the shard: same data dir (and prepare dir), new
// socket.
func (s *testShard) restart() {
	s.t.Helper()
	if !s.stopped {
		s.stop()
	}
	s.start(false)
}

func addrsOf(shards ...*testShard) []string {
	out := make([]string, len(shards))
	for i, s := range shards {
		out[i] = s.addr
	}
	return out
}

func openFed(t *testing.T, opts Options, shards ...*testShard) *Router {
	t.Helper()
	if opts.Client.User == "" {
		opts.Client.User = "fed-test"
	}
	r, err := Open(addrsOf(shards...), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// seedFed commits n rain objects through any Kernel-shaped backend and
// returns the stored OIDs.
func seedFed(t *testing.T, k client.Kernel, n int, mm float64) []object.OID {
	t.Helper()
	s := k.Begin(tctx)
	staged := make([]object.OID, n)
	for i := range staged {
		oid, err := s.Create(rainObj(mm, float64(i)*20), "seed")
		if err != nil {
			t.Fatal(err)
		}
		staged[i] = oid
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	out := make([]object.OID, n)
	for i, p := range staged {
		real, ok := s.Committed(p)
		if !ok {
			t.Fatalf("no committed OID for staged %d", p)
		}
		out[i] = real
	}
	return out
}

// drainN consumes up to n objects (0 = all), asserting no stream error.
func drainN(t *testing.T, st client.Stream, n int) []*object.Object {
	t.Helper()
	var out []*object.Object
	for o, err := range st.All() {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, o)
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

func countRows(t *testing.T, k client.Kernel) int {
	t.Helper()
	res, err := k.Query(tctx, rainReq())
	if errors.Is(err, gaea.ErrNoPlan) {
		return 0 // a class with no stored objects has no derivation plan
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(res.OIDs)
}

func TestFedOIDTag(t *testing.T) {
	for _, shard := range []int{0, 1, 77, shardMax} {
		for _, oid := range []uint64{1, 500, rawOIDMask, wire.ProvisionalBit | 42} {
			tagged := tagOID(shard, oid)
			gotShard, gotDown := splitOID(tagged)
			if gotShard != shard || gotDown != oid&(wire.ProvisionalBit|rawOIDMask) {
				t.Fatalf("tag/split(%d, %#x) = (%d, %#x)", shard, oid, gotShard, gotDown)
			}
			if oid&wire.ProvisionalBit != tagged&wire.ProvisionalBit {
				t.Fatalf("provisional bit lost: %#x -> %#x", oid, tagged)
			}
		}
	}
	if tagOID(0, 99) != 99 {
		t.Fatal("shard 0 tag must be the identity")
	}
}

func TestFedOwners(t *testing.T) {
	r := &Router{
		conns: make([]*client.Conn, 4),
		opts:  Options{Map: map[string][]int{"image": {2}, "grid": {0, 3}}},
	}
	if own := r.owners("image"); len(own) != 1 || own[0] != 2 {
		t.Fatalf("mapped class: %v", own)
	}
	if own := r.owners("grid"); len(own) != 2 || own[0] != 0 || own[1] != 3 {
		t.Fatalf("striped class: %v", own)
	}
	first := r.owners("unmapped")
	if len(first) != 1 || first[0] < 0 || first[0] >= 4 {
		t.Fatalf("hash fallback out of bounds: %v", first)
	}
	for range 10 {
		if again := r.owners("unmapped"); again[0] != first[0] {
			t.Fatal("hash fallback must be deterministic")
		}
	}
}

func TestFedDecisionLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions")
	l, err := openDecisionLog(path)
	if err != nil {
		t.Fatal(err)
	}
	token, err := l.mint()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.commit(token, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	l.ack(token, 0)
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// Replay: shard 1 still owes its ack.
	l2, err := openDecisionLog(path)
	if err != nil {
		t.Fatal(err)
	}
	und := l2.undelivered()
	if len(und) != 1 || und[0].token != token || len(und[0].shards) != 1 || und[0].shards[0] != 1 {
		t.Fatalf("undelivered after replay: %+v", und)
	}
	token2, err := l2.mint()
	if err != nil {
		t.Fatal(err)
	}
	if token2&rawOIDMask <= token&rawOIDMask {
		t.Fatalf("sequence did not advance across reopen: %d then %d", token, token2)
	}
	l2.heuristic(token, 1)
	if l2.pendingCount() != 0 || l2.heuristicCount() != 1 {
		t.Fatalf("settle: pending=%d heuristics=%d", l2.pendingCount(), l2.heuristicCount())
	}
	if err := l2.close(); err != nil {
		t.Fatal(err)
	}

	l3, err := openDecisionLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.close()
	if n := l3.pendingCount(); n != 0 {
		t.Fatalf("pending after full settle: %d", n)
	}
	if n := l3.heuristicCount(); n != 1 {
		t.Fatalf("heuristics after replay: %d", n)
	}
}

func TestFedScatterGather(t *testing.T) {
	a, b := newShard(t, gaea.ServeOptions{}), newShard(t, gaea.ServeOptions{})
	r := openFed(t, Options{Map: map[string][]int{"rain": {0, 1}}}, a, b)

	oids := seedFed(t, r, 20, 1.0) // striped creates: a cross-shard 2PC commit
	if n := countRows(t, r); n != 20 {
		t.Fatalf("merged query: %d rows", n)
	}
	byShard := map[int]int{}
	seen := map[object.OID]bool{}
	for _, oid := range oids {
		shard, _ := splitOID(uint64(oid))
		byShard[shard]++
		if seen[oid] {
			t.Fatalf("duplicate OID %d", oid)
		}
		seen[oid] = true
	}
	if byShard[0] == 0 || byShard[1] == 0 {
		t.Fatalf("striped creates did not spread: %v", byShard)
	}

	// Point reads and mutations route by the OID's shard tag.
	sn, err := r.Snapshot(tctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sn.Get(oids[3])
	if err != nil {
		t.Fatal(err)
	}
	if got.OID != oids[3] || got.Class != "rain" {
		t.Fatalf("snapshot get: %+v", got)
	}
	sn.Release()

	got.Attrs["mm"] = value.Float(7.5)
	s := r.Begin(tctx)
	if err := s.Update(got); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(oids[4]); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, r); n != 19 {
		t.Fatalf("after delete: %d rows", n)
	}
	if ex := r.Explain(oids[3]); !strings.Contains(ex, "rain") && ex == "" {
		t.Fatalf("explain: %q", ex)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st, "federation: 2 shards") || !strings.Contains(st, "shard 1") {
		t.Fatalf("stats: %q", st)
	}
}

func TestFedStreamVectorCursorResume(t *testing.T) {
	a, b := newShard(t, gaea.ServeOptions{}), newShard(t, gaea.ServeOptions{})
	r := openFed(t, Options{Map: map[string][]int{"rain": {0, 1}}}, a, b)
	oids := seedFed(t, r, 40, 1.0)

	st, err := r.QueryStream(tctx, rainReq())
	if err != nil {
		t.Fatal(err)
	}
	part1 := drainN(t, st, 15)
	cursor := st.Cursor()
	if cursor == "" {
		t.Fatal("mid-merge stop must yield a resume cursor")
	}
	if !wire.IsVectorCursor(cursor) {
		t.Fatalf("expected a vector cursor, got %q", cursor)
	}

	// A concurrent writer moves the grid past the stream's epochs, and
	// GC runs on every shard; the pinned cursor leases must keep the
	// stream's snapshots alive and exact.
	seen := map[object.OID]bool{}
	for _, o := range part1 {
		seen[o.OID] = true
	}
	w := r.Begin(tctx)
	touched := 0
	for _, oid := range oids {
		if seen[oid] || touched >= 5 {
			continue
		}
		sn, err := r.Snapshot(tctx)
		if err != nil {
			t.Fatal(err)
		}
		o, err := sn.Get(oid)
		sn.Release()
		if err != nil {
			t.Fatal(err)
		}
		o.Attrs["mm"] = value.Float(99.0)
		if err := w.Update(o); err != nil {
			t.Fatal(err)
		}
		touched++
	}
	if _, err := w.Create(rainObj(50, 2000), "late"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.k.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.k.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Resume on a DIFFERENT router — the cursor is the whole state.
	r2 := openFed(t, Options{Map: map[string][]int{"rain": {0, 1}}}, a, b)
	st2, err := r2.QueryStream(tctx, gaea.Request{
		Class: "rain", Pred: rainReq().Pred, Cursor: cursor,
	})
	if err != nil {
		t.Fatal(err)
	}
	part2 := drainN(t, st2, 0)
	if cur := st2.Cursor(); cur != "" {
		t.Fatalf("drained stream still has cursor %q", cur)
	}

	if len(part1)+len(part2) != len(oids) {
		t.Fatalf("resume lost or duplicated rows: %d + %d != %d", len(part1), len(part2), len(oids))
	}
	for _, o := range part2 {
		if seen[o.OID] {
			t.Fatalf("object %d streamed twice across the resume", o.OID)
		}
		seen[o.OID] = true
		// Snapshot isolation: the writer's new values and new object
		// must be invisible to the resumed stream.
		if mm := float64(o.Attrs["mm"].(value.Float)); mm != 1.0 {
			t.Fatalf("resumed stream saw post-cursor write: mm=%v on %d", mm, o.OID)
		}
	}
	for _, oid := range oids {
		if !seen[oid] {
			t.Fatalf("object %d missing from the merged stream", oid)
		}
	}
}

// prepTwoShards stages one single-create batch per shard and prepares
// both under one freshly minted token, returning the token.
func prepTwoShards(t *testing.T, r *Router) uint64 {
	t.Helper()
	token, err := r.log.mint()
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 2; shard++ {
		resp, err := r.conns[shard].RoundTrip(tctx, &wire.Request{Op: wire.OpBegin})
		if err != nil {
			t.Fatal(err)
		}
		w, err := wire.FromObject(rainObj(3.0, float64(shard)*40))
		if err != nil {
			t.Fatal(err)
		}
		prov := wire.ProvisionalBit | 1
		w.OID = prov
		batch := &wire.BatchReq{
			Creates:   []wire.Create{{Prov: prov, Obj: w, Note: "2pc"}},
			ReadEpoch: resp.Epoch,
		}
		if _, err := r.conns[shard].RoundTrip(tctx, &wire.Request{Op: wire.OpPrepare, Lease: token, Batch: batch}); err != nil {
			t.Fatalf("prepare shard %d: %v", shard, err)
		}
	}
	return token
}

func TestFedTwoPhaseCrashRecovery(t *testing.T) {
	prepA, prepB := t.TempDir(), t.TempDir()
	a := newShard(t, gaea.ServeOptions{PrepareDir: prepA})
	b := newShard(t, gaea.ServeOptions{PrepareDir: prepB})
	logPath := filepath.Join(t.TempDir(), "decisions")

	r1, err := Open(addrsOf(a, b), Options{DecisionLog: logPath, Client: client.Options{User: "coord"}})
	if err != nil {
		t.Fatal(err)
	}
	token := prepTwoShards(t, r1)
	// The commit point: decision durable, decide fan-out NOT sent.
	if err := r1.log.commit(token, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	r1.Close() // coordinator "crash" after the commit point

	// Shard B crashes between prepare and decide. Its durable vote
	// must survive the restart; its in-memory locks do not.
	b.restart()

	// Nothing may be visible anywhere yet: prepared is not committed.
	for i, s := range []*testShard{a, b} {
		c, err := client.Dial(s.addr, client.Options{User: "check"})
		if err != nil {
			t.Fatal(err)
		}
		if n := countRows(t, c); n != 0 {
			t.Fatalf("shard %d shows %d rows before the decision was delivered", i, n)
		}
		c.Close()
	}

	// Recovery: a new coordinator over the same decision log replays
	// the decide fan-out; both shards commit.
	r2 := openFed(t, Options{DecisionLog: logPath, Map: map[string][]int{"rain": {0, 1}}}, a, b)
	if n := r2.log.pendingCount(); n != 0 {
		t.Fatalf("decisions still pending after replay: %d", n)
	}
	if n := r2.log.heuristicCount(); n != 0 {
		t.Fatalf("heuristic outcomes on a clean recovery: %d", n)
	}
	if n := countRows(t, r2); n != 2 {
		t.Fatalf("after recovery: %d rows, want 2 (one per shard, nothing partial)", n)
	}
	for i, s := range []*testShard{a, b} {
		c, err := client.Dial(s.addr, client.Options{User: "check"})
		if err != nil {
			t.Fatal(err)
		}
		if n := countRows(t, c); n != 1 {
			t.Fatalf("shard %d has %d rows after recovery, want exactly 1", i, n)
		}
		c.Close()
	}
}

func TestFedTwoPhasePresumedAbort(t *testing.T) {
	// Short lease TTL: prepared votes a vanished coordinator never
	// decides are presumed aborted by the shard janitor.
	opts := gaea.ServeOptions{SnapshotLease: 200 * time.Millisecond, PrepareDir: t.TempDir()}
	a, b := newShard(t, opts), newShard(t, gaea.ServeOptions{SnapshotLease: 200 * time.Millisecond, PrepareDir: t.TempDir()})
	r := openFed(t, Options{}, a, b)

	token := prepTwoShards(t, r)
	// The coordinator goes silent. Wait well past the 200ms prepare TTL
	// (the shard janitor runs every TTL/4), then probe with a late
	// commit decision: an expired vote answers not-found — the signal
	// the coordinator classifies as a heuristic outcome. The probe is
	// destructive (it would commit a live vote), so it cannot poll.
	time.Sleep(1500 * time.Millisecond)
	for shard := 0; shard < 2; shard++ {
		_, err := r.conns[shard].RoundTrip(tctx, &wire.Request{Op: wire.OpDecide, Lease: token, Epoch: 1})
		if err == nil {
			t.Fatalf("shard %d: decide(commit) succeeded; the prepare TTL never expired the vote", shard)
		}
		if !errors.Is(err, gaea.ErrNotFound) {
			t.Fatalf("shard %d: late decide: %v, want not-found", shard, err)
		}
	}
	if n := countRows(t, r); n != 0 {
		t.Fatalf("presumed abort left %d rows", n)
	}
}

func TestFedTwoPhaseHeuristic(t *testing.T) {
	// Shard B runs WITHOUT a prepare dir: its yes-vote dies with it.
	a := newShard(t, gaea.ServeOptions{PrepareDir: t.TempDir()})
	b := newShard(t, gaea.ServeOptions{})
	logPath := filepath.Join(t.TempDir(), "decisions")

	r1, err := Open(addrsOf(a, b), Options{DecisionLog: logPath, Client: client.Options{User: "coord"}})
	if err != nil {
		t.Fatal(err)
	}
	token := prepTwoShards(t, r1)
	if err := r1.log.commit(token, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	b.restart() // vote gone

	r2 := openFed(t, Options{DecisionLog: logPath, Map: map[string][]int{"rain": {0, 1}}}, a, b)
	if n := r2.log.pendingCount(); n != 0 {
		t.Fatalf("heuristic outcome left the decision pending: %d", n)
	}
	if n := r2.log.heuristicCount(); n != 1 {
		t.Fatalf("heuristic outcomes: %d, want 1", n)
	}
	if n := countRows(t, r2); n != 1 {
		t.Fatalf("rows after heuristic outcome: %d (shard A committed, shard B lost its vote)", n)
	}
	stats, err := r2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "1 heuristic") {
		t.Fatalf("stats must surface the heuristic outcome: %q", stats)
	}
}

func TestFedSingleShardFastPath(t *testing.T) {
	a := newShard(t, gaea.ServeOptions{})
	r := openFed(t, Options{}, a)
	if r.Shards() != 1 {
		t.Fatal("one shard expected")
	}
	seedFed(t, r, 5, 1.0)
	if got := r.twoPhase.Load(); got != 0 {
		t.Fatalf("single-shard commit ran 2PC %d times", got)
	}
	if got := r.commits.Load(); got != 1 {
		t.Fatalf("commits counter: %d", got)
	}
}

// serveFed exposes a router over the wire protocol, like `gaea fed`.
func serveFed(t *testing.T, r *Router) string {
	t.Helper()
	sock := sockPath(t)
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(NewBackend(r), server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("serve fed: %v", err)
		}
	})
	return "unix://" + sock
}

// TestFedServedCompat runs unmodified v1 and v2 clients against a
// ONE-shard federation served over the ordinary wire server — the
// compatibility bar: everything a plain kernel serves, the federation
// serves.
func TestFedServedCompat(t *testing.T) {
	for _, proto := range []struct {
		name string
		p    int
	}{{"v2", 0}, {"v1", client.ProtocolV1}} {
		t.Run(proto.name, func(t *testing.T) {
			shard := newShard(t, gaea.ServeOptions{})
			r := openFed(t, Options{}, shard)
			addr := serveFed(t, r)

			c, err := client.Dial(addr, client.Options{User: "compat", Protocol: proto.p})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })

			oids := seedFed(t, c, 12, 2.0)
			if n := countRows(t, c); n != 12 {
				t.Fatalf("query: %d rows", n)
			}

			// Stream with a mid-stream stop and resume on a NEW
			// connection (the client synthesises the cursor itself).
			st, err := c.QueryStream(tctx, rainReq())
			if err != nil {
				t.Fatal(err)
			}
			part1 := drainN(t, st, 5)
			cur := st.Cursor()
			if cur == "" {
				t.Fatal("stopped stream must be resumable")
			}
			c2, err := client.Dial(addr, client.Options{User: "compat", Protocol: proto.p})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c2.Close() })
			st2, err := c2.QueryStream(tctx, gaea.Request{Class: "rain", Pred: rainReq().Pred, Cursor: cur})
			if err != nil {
				t.Fatal(err)
			}
			part2 := drainN(t, st2, 0)
			if len(part1)+len(part2) != 12 {
				t.Fatalf("stream resume: %d + %d rows", len(part1), len(part2))
			}
			dup := map[object.OID]bool{}
			for _, o := range append(part1, part2...) {
				if dup[o.OID] {
					t.Fatalf("object %d streamed twice", o.OID)
				}
				dup[o.OID] = true
			}

			// Snapshot point reads.
			sn, err := c.Snapshot(tctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sn.Get(oids[0])
			if err != nil {
				t.Fatal(err)
			}
			if got.Class != "rain" {
				t.Fatalf("snapshot get: %+v", got)
			}
			sn.Release()

			// Mutations round-trip (update routes by OID, delete too).
			got.Attrs["mm"] = value.Float(4.5)
			s := c.Begin(tctx)
			if err := s.Update(got); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(oids[1]); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
			if n := countRows(t, c); n != 11 {
				t.Fatalf("after delete: %d rows", n)
			}

			stats, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(stats, "federation") {
				t.Fatalf("served stats must identify the federation: %q", stats)
			}
		})
	}
}

// TestFedServedMultiShard drives a plain v2 client against a SERVED
// two-shard federation: remote commits split across shards (2PC behind
// the wire), merged queries and streams come back tagged.
func TestFedServedMultiShard(t *testing.T) {
	a, b := newShard(t, gaea.ServeOptions{}), newShard(t, gaea.ServeOptions{})
	r := openFed(t, Options{Map: map[string][]int{"rain": {0, 1}}}, a, b)
	addr := serveFed(t, r)

	c, err := client.Dial(addr, client.Options{User: "multi", PageSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	oids := seedFed(t, c, 30, 1.0)
	byShard := map[int]int{}
	for _, oid := range oids {
		shard, _ := splitOID(uint64(oid))
		byShard[shard]++
	}
	if byShard[0] == 0 || byShard[1] == 0 {
		t.Fatalf("served creates did not spread across shards: %v", byShard)
	}
	if r.twoPhase.Load() == 0 {
		t.Fatal("cross-shard served commit did not run 2PC")
	}
	if n := countRows(t, c); n != 30 {
		t.Fatalf("merged query over the wire: %d rows", n)
	}

	st, err := c.QueryStream(tctx, rainReq())
	if err != nil {
		t.Fatal(err)
	}
	objs := drainN(t, st, 0)
	if len(objs) != 30 {
		t.Fatalf("served merged stream: %d rows", len(objs))
	}
	seen := map[object.OID]bool{}
	for _, o := range objs {
		if seen[o.OID] {
			t.Fatalf("object %d streamed twice", o.OID)
		}
		seen[o.OID] = true
	}

	sn, err := c.Snapshot(tctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Release()
	for _, oid := range []object.OID{oids[0], oids[len(oids)-1]} {
		o, err := sn.Get(oid)
		if err != nil {
			t.Fatalf("snapshot get %d: %v", oid, err)
		}
		if o.OID != oid {
			t.Fatalf("snapshot get %d returned OID %d", oid, o.OID)
		}
	}
}

func TestFedDialKernelCommaList(t *testing.T) {
	a, b := newShard(t, gaea.ServeOptions{}), newShard(t, gaea.ServeOptions{})
	k, err := client.DialKernel(a.addr+","+b.addr, client.Options{User: "dialer"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { k.Close() })
	r, ok := k.(*Router)
	if !ok {
		t.Fatalf("DialKernel with a comma list returned %T, want *Router", k)
	}
	if r.Shards() != 2 {
		t.Fatalf("shards: %d", r.Shards())
	}
	seedFed(t, k, 4, 1.0)
	if n := countRows(t, k); n != 4 {
		t.Fatalf("rows: %d", n)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
