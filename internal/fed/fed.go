// Package fed scales one Gaea kernel out to N: a router that
// partitions the object store by class across shard kernels, each an
// unmodified `gaea serve` endpoint, and speaks the ordinary client
// surface upstream. It is the Graywulf-style federation layer over the
// scientific DBMS: the paper's single memory-resident kernel stays the
// unit of deployment, and the grid is an orchestration of them.
//
// Quick start:
//
//	r, err := fed.Open([]string{"db1:7411", "db2:7411"}, fed.Options{
//		Map:         map[string][]int{"image": {0}, "grid": {0, 1}},
//		DecisionLog: "/var/gaea/fed.decisions",
//	})
//	if err != nil { ... }
//	defer r.Close()
//	var k client.Kernel = r // sessions, queries, streams, snapshots
//
// (Callers that already speak client.DialKernel get the same router
// implicitly by dialing a comma-separated endpoint list.)
//
// Partitioning. Options.Map pins each class to its owning shards; a
// class may be striped over several. Unmapped classes hash (FNV-1a) to
// one shard, so every class deterministically has owners without
// configuration. Objects surface upstream with the owning shard's index
// tagged into OID bits 48–62, which is how point operations (snapshot
// Get, Update, Delete, Explain) route back without a lookup: the OID is
// the partition key. Shard 0 tags are the identity, so a one-shard
// federation is byte-compatible with a plain kernel.
//
// Queries scatter to the owning shards and merge. Streaming queries
// merge shard push-streams round-robin under each downstream credit
// window, and the resume token generalises to a VECTOR cursor — one
// per-shard cursor plus epoch each — so a consumer that stops mid-merge
// resumes every shard at its exact object, on any connection, exactly
// as single-kernel cursors do.
//
// Sessions stage locally, split the batch by partition key, and commit:
// a batch touching ONE shard commits in that shard's ordinary one-round
// -trip path; a batch spanning shards runs two-phase commit — prepare
// (validate + lock + durable vote) on every shard, a coordinator
// decision fsynced to Options.DecisionLog, then the decide fan-out.
// Open replays undelivered decisions from the log, and shards re-stage
// their durable votes on restart (gaea.ServeOptions.PrepareDir), so a
// crash anywhere between the phases never leaves the grid partially
// committed. See the README's failure matrix for the full story.
package fed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gaea"
	"gaea/client"
	"gaea/internal/object"
	"gaea/internal/obs"
	"gaea/internal/query"
	"gaea/internal/wire"
)

func init() {
	client.RegisterFederationDialer(func(addrs []string, opts client.Options) (client.Kernel, error) {
		return Open(addrs, Options{Client: opts})
	})
}

// Options tunes a Router.
type Options struct {
	// Map assigns classes to owning shard indexes (into the Open addrs
	// slice). A class listed with several owners is striped: creates
	// spread across them and queries scatter to all of them. Classes
	// absent from the map hash to a single shard.
	Map map[string][]int
	// Client tunes every downstream shard connection (user, protocol,
	// page size, tracer, ...).
	Client client.Options
	// DecisionLog is the path of the coordinator's append-only decision
	// log — the durable commit point of every cross-shard transaction,
	// replayed by Open after a crash. Empty keeps decisions in memory
	// only: cross-shard commits still run 2PC, but a coordinator crash
	// inside the decide fan-out can strand shards on the prepare TTL
	// (presumed abort) after others committed. Set it for any federation
	// that takes cross-shard writes it cares about.
	DecisionLog string
	// ShardObserver, when set, is called after every downstream shard
	// round trip with the shard index, the operation name, and its
	// duration — the hook gaea-bench uses for per-shard latency
	// distributions. It must be safe for concurrent use.
	ShardObserver func(shard int, op string, d time.Duration)
	// StatsInterval is the shard health probe period: the router keeps
	// a SubscribeStats push subscription open to every shard and derives
	// up/degraded/down states from its liveness, surfaced in ObsJSON's
	// fleet block and as shard_up/shard_down events. 0 means the 2s
	// default; negative disables health monitoring. Monitoring is also
	// skipped when Client.Protocol forces v1 (the push stream needs v2).
	StatsInterval time.Duration
}

// Router is the federation coordinator: a client.Kernel whose backing
// store is N shard kernels. Safe for concurrent use. Close closes the
// shard connections (the shards stay up).
type Router struct {
	addrs []string
	conns []*client.Conn
	opts  Options
	log   *decisionLog

	// place spreads creates over a striped class's owners.
	place atomic.Uint64

	reg    *obs.Registry
	tracer *obs.Tracer
	events *obs.EventLog
	health *healthMonitor

	queries  *obs.Counter
	commits  *obs.Counter
	twoPhase *obs.Counter
	acks     *obs.Counter
	unacked  *obs.Counter

	mu     sync.Mutex
	closed bool
}

const (
	// shardShift places the shard tag in OID bits 48–62: below the
	// provisional bit (63), above any OID a kernel mints in practice.
	shardShift = 48
	shardMax   = 1<<15 - 1
	rawOIDMask = 1<<shardShift - 1
)

// tagOID stamps the owning shard into an upstream OID (provisional bit
// preserved). Shard 0 is the identity.
func tagOID(shard int, oid uint64) uint64 {
	return oid&wire.ProvisionalBit | uint64(shard)<<shardShift | oid&rawOIDMask
}

// splitOID recovers the owning shard and the shard-local OID.
func splitOID(oid uint64) (shard int, down uint64) {
	return int(oid &^ wire.ProvisionalBit >> shardShift), oid&wire.ProvisionalBit | oid&rawOIDMask
}

// Open dials every shard endpoint, replays undelivered commit decisions
// from the decision log, and returns the router. Shard indexes — in
// Options.Map, OID tags, cursors, and the decision log — are positions
// in addrs, so a federation must be reopened with the same shard order
// (growing the grid appends).
func Open(addrs []string, opts Options) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: federation needs at least one shard", query.ErrBadRequest)
	}
	if len(addrs) > shardMax {
		return nil, fmt.Errorf("%w: %d shards exceed the %d-shard OID tag space", query.ErrBadRequest, len(addrs), shardMax)
	}
	for class, owners := range opts.Map {
		for _, o := range owners {
			if o < 0 || o >= len(addrs) {
				return nil, fmt.Errorf("%w: class %q maps to shard %d of %d", query.ErrBadRequest, class, o, len(addrs))
			}
		}
	}
	log, err := openDecisionLog(opts.DecisionLog)
	if err != nil {
		return nil, err
	}
	if opts.Client.Tracer == nil {
		// The shard connections must share the router's tracer either
		// way: they stamp the current span's trace ID on downstream
		// frames, which is what joins client → router → shard spans
		// into one tree.
		opts.Client.Tracer = obs.NewTracer(0, 0, 0)
	}
	r := &Router{addrs: addrs, opts: opts, log: log, reg: obs.NewRegistry()}
	r.tracer = opts.Client.Tracer
	r.events = obs.NewEventLog(0, nil)
	r.queries = r.reg.Counter("fed_queries_total")
	r.commits = r.reg.Counter("fed_commits_total")
	r.twoPhase = r.reg.Counter("fed_2pc_commits_total")
	r.acks = r.reg.Counter("fed_2pc_acks_total")
	r.unacked = r.reg.Counter("fed_2pc_unacked_total")
	// The decision log is the authority on 2PC outcomes — exporting it
	// as computed gauges keeps the counts right across replay, live
	// commits, and coordinator restarts alike.
	r.reg.GaugeFunc("fed_2pc_pending_decisions", func() int64 { return int64(log.pendingCount()) })
	r.reg.GaugeFunc("fed_2pc_heuristic_total", func() int64 { return int64(log.heuristicCount()) })
	for i, addr := range addrs {
		c, err := client.Dial(addr, opts.Client)
		if err != nil {
			for _, open := range r.conns {
				_ = open.Close()
			}
			_ = log.close()
			return nil, fmt.Errorf("fed: shard %d (%s): %w", i, addr, err)
		}
		r.conns = append(r.conns, c)
	}
	r.replayDecisions()
	if opts.StatsInterval >= 0 && opts.Client.Protocol != client.ProtocolV1 {
		interval := opts.StatsInterval
		if interval == 0 {
			interval = defaultHealthInterval
		}
		r.health = startHealth(r, interval)
	}
	return r, nil
}

// replayDecisions re-delivers every logged commit decision that some
// shard has not acknowledged — the coordinator half of crash recovery.
// A shard that already applied (or never saw) the transaction answers
// idempotently; a shard whose durable vote expired answers not-found,
// which is recorded as a heuristic outcome and not retried.
func (r *Router) replayDecisions() {
	for _, p := range r.log.undelivered() {
		for _, shard := range p.shards {
			if shard < 0 || shard >= len(r.conns) {
				continue
			}
			//lint:gaea-allow ctxflow recovery replay runs once at Open, bounded by the dial timeouts
			resp, err := r.shardRoundTrip(context.Background(), shard, "decide",
				&wire.Request{Op: wire.OpDecide, Lease: p.token, Epoch: 1})
			_ = resp
			switch {
			case err == nil:
				r.log.ack(p.token, shard)
			case errors.Is(err, gaea.ErrNotFound):
				// The shard's vote is gone (prepare TTL elapsed or it
				// restarted without a durable vote): heuristic outcome —
				// recorded, never retried, surfaced by Stats.
				r.log.heuristic(p.token, shard)
			default:
				// Unreachable shard: keep the decision pending for the
				// next replay.
			}
		}
	}
}

// owners resolves the shards owning a class: the partition map entry,
// or an FNV-1a hash pick for unmapped classes.
func (r *Router) owners(class string) []int {
	if own := r.opts.Map[class]; len(own) > 0 {
		return own
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(class))
	return []int{int(h.Sum32() % uint32(len(r.conns)))}
}

// placeCreate picks the shard a new object of a class lands on:
// the sole owner, or round-robin over a striped class's owners.
func (r *Router) placeCreate(class string) int {
	own := r.owners(class)
	if len(own) == 1 {
		return own[0]
	}
	return own[int(r.place.Add(1)%uint64(len(own)))]
}

func (r *Router) checkOpen() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("%w: federation router closed", gaea.ErrClosed)
	}
	return nil
}

// Close closes every shard connection and the decision log. The shards
// themselves stay up. Idempotent.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.health.stop()
	var first error
	for _, c := range r.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := r.log.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Shards reports the federation width.
func (r *Router) Shards() int { return len(r.conns) }

// shardRoundTrip issues one raw request to a shard, timing it for the
// ShardObserver hook.
func (r *Router) shardRoundTrip(ctx context.Context, shard int, op string, req *wire.Request) (*wire.Response, error) {
	start := time.Now()
	resp, err := r.conns[shard].RoundTrip(ctx, req)
	if ob := r.opts.ShardObserver; ob != nil {
		ob(shard, op, time.Since(start))
	}
	return resp, err
}

// traced installs the router's tracer on ctx (downstream calls stamp
// the trace and parent-span IDs on the wire, so shard-side spans join
// the same trace).
func (r *Router) traced(ctx context.Context) context.Context {
	return obs.WithTracer(ctx, r.tracer)
}

// Query implements client.Kernel: scatter to the owning shards, gather,
// and merge. Single-owner classes pass through with only the OID tag
// applied.
func (r *Router) Query(ctx context.Context, req gaea.Request) (*gaea.Result, error) {
	if err := r.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(r.traced(ctx), "fed/query")
	defer sp.End()
	sp.Annotate("class", req.Class)
	r.queries.Inc()
	own := r.owners(req.Class)
	sp.Annotate("shards", fmt.Sprint(len(own)))
	results := make([]*gaea.Result, len(own))
	errs := make([]error, len(own))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i, shard := range own {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			res, err := r.conns[shard].Query(ctx, req)
			if ob := r.opts.ShardObserver; ob != nil {
				ob(shard, "query", time.Since(start))
			}
			results[i], errs[i] = res, err
			if err != nil && !errors.Is(err, gaea.ErrNoPlan) {
				cancel() // no point finishing the other shards
			}
		}()
	}
	wg.Wait()
	// A shard that cannot derive the class at all (no stored objects,
	// no producing process) contributes an empty result — for a striped
	// class that's a normal state, every row having landed elsewhere so
	// far. Only when EVERY owner says no-plan is that the federation's
	// answer too. Other errors fail the scatter; prefer the causing
	// error over the cancellations it induced in sibling shards.
	var firstErr, noPlanErr error
	noPlan := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, gaea.ErrNoPlan) {
			noPlan++
			noPlanErr = err
			results[i] = &gaea.Result{}
			continue
		}
		if firstErr == nil || errors.Is(firstErr, context.Canceled) {
			firstErr = fmt.Errorf("fed: shard %d query: %w", own[i], err)
		}
	}
	if firstErr != nil {
		sp.Annotate("error", firstErr.Error())
		return nil, firstErr
	}
	if noPlan == len(own) {
		sp.Annotate("error", noPlanErr.Error())
		return nil, noPlanErr
	}
	return r.mergeResults(own, results), nil
}

// mergeResults folds per-shard query results into one, tagging OIDs
// with their owning shard. Shard order is owner order, so the merge is
// deterministic. How, Stale, and TasksRun concatenate in the same
// order (Stale pads with false for shards that reported none, keeping
// the parallel-slice contract).
func (r *Router) mergeResults(own []int, results []*gaea.Result) *gaea.Result {
	if len(results) == 1 {
		return r.tagResult(own[0], results[0])
	}
	out := &gaea.Result{}
	var plans []string
	for i, res := range results {
		shard := own[i]
		base := len(out.OIDs)
		for _, oid := range res.OIDs {
			out.OIDs = append(out.OIDs, object.OID(tagOID(shard, uint64(oid))))
		}
		out.How = append(out.How, res.How...)
		switch {
		case res.Stale != nil:
			if out.Stale == nil {
				out.Stale = make([]bool, base)
			}
			out.Stale = append(out.Stale, res.Stale...)
		case out.Stale != nil:
			out.Stale = append(out.Stale, make([]bool, len(res.OIDs))...)
		}
		out.TasksRun = append(out.TasksRun, res.TasksRun...)
		if res.PlanText != "" {
			plans = append(plans, fmt.Sprintf("shard %d: %s", shard, res.PlanText))
		}
	}
	out.PlanText = strings.Join(plans, "\n")
	return out
}

func (r *Router) tagResult(shard int, res *gaea.Result) *gaea.Result {
	if shard != 0 {
		for i, oid := range res.OIDs {
			res.OIDs[i] = object.OID(tagOID(shard, uint64(oid)))
		}
	}
	// A shard-local epoch means nothing upstream; zero it rather than
	// let a caller pin the wrong shard's history with it.
	res.Epoch = 0
	return res
}

// QueryStream implements client.Kernel: a round-robin merge of per-
// shard push streams, resumable via a vector cursor.
func (r *Router) QueryStream(ctx context.Context, req gaea.Request) (client.Stream, error) {
	if err := r.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return newFedStream(r, ctx, req, func(ctx context.Context, shard int, req gaea.Request) (client.Stream, error) {
		return r.conns[shard].QueryStream(ctx, req)
	})
}

// Begin implements client.Kernel. No round trip happens here: each
// shard's MVCC read epoch is captured lazily by the first staged
// operation that touches it (the single-shard fast path then pays
// exactly one extra round trip, total two — same as a plain remote
// session's Begin + Commit).
func (r *Router) Begin(ctx context.Context) client.Session {
	s := &fedSession{r: r, ctx: ctx, shards: make(map[int]*shardBatch)}
	if err := r.checkOpen(); err != nil {
		s.broken = err
	} else if err := ctx.Err(); err != nil {
		s.broken = err
	}
	return s
}

// Snapshot implements client.Kernel: one snapshot lease per shard,
// opened together. The federation-wide view is per-shard consistent
// (each shard's lease pins one of ITS commit epochs); there is no
// cross-shard barrier, so a cross-shard transaction committing while
// the snapshots open may be visible on one shard and not yet on
// another.
func (r *Router) Snapshot(ctx context.Context) (client.Snapshot, error) {
	if err := r.checkOpen(); err != nil {
		return nil, err
	}
	snaps := make([]client.Snapshot, len(r.conns))
	for shard, c := range r.conns {
		sn, err := c.Snapshot(ctx)
		if err != nil {
			for _, open := range snaps[:shard] {
				open.Release()
			}
			return nil, fmt.Errorf("fed: shard %d snapshot: %w", shard, err)
		}
		snaps[shard] = sn
	}
	return &fedSnapshot{r: r, snaps: snaps}, nil
}

// Stale implements client.Kernel: the tagged union of every shard's
// stale set (nil on total transport failure, like a plain connection).
func (r *Router) Stale() []object.OID {
	if r.checkOpen() != nil {
		return nil
	}
	var out []object.OID
	for shard, c := range r.conns {
		for _, oid := range c.Stale() {
			out = append(out, object.OID(tagOID(shard, uint64(oid))))
		}
	}
	return out
}

// RefreshStale implements client.Kernel: every shard refreshes its own
// derivations; the count sums.
func (r *Router) RefreshStale(ctx context.Context) (int, error) {
	if err := r.checkOpen(); err != nil {
		return 0, err
	}
	total := 0
	for shard, c := range r.conns {
		n, err := c.RefreshStale(ctx)
		total += n
		if err != nil {
			return total, fmt.Errorf("fed: shard %d refresh: %w", shard, err)
		}
	}
	return total, nil
}

// Explain implements client.Kernel: the OID's shard tag routes the
// lookup.
func (r *Router) Explain(oid object.OID) string {
	if err := r.checkOpen(); err != nil {
		return fmt.Sprintf("explain %d: %v\n", oid, err)
	}
	shard, down := splitOID(uint64(oid))
	if shard >= len(r.conns) {
		return fmt.Sprintf("explain %d: no shard %d in this federation\n", oid, shard)
	}
	return r.conns[shard].Explain(object.OID(down))
}

// ExplainQuery implements client.Kernel: every owning shard explains
// its part.
func (r *Router) ExplainQuery(ctx context.Context, req gaea.Request) (string, error) {
	if err := r.checkOpen(); err != nil {
		return "", err
	}
	own := r.owners(req.Class)
	var b strings.Builder
	for _, shard := range own {
		text, err := r.conns[shard].ExplainQuery(ctx, req)
		if err != nil {
			return "", fmt.Errorf("fed: shard %d explain: %w", shard, err)
		}
		if len(own) > 1 {
			fmt.Fprintf(&b, "shard %d (%s):\n", shard, r.addrs[shard])
		}
		b.WriteString(text)
	}
	return b.String(), nil
}

// Stats implements client.Kernel: one block per shard plus the
// coordinator's own counters (including heuristic outcomes, which
// demand an operator's eye).
func (r *Router) Stats() (string, error) {
	if err := r.checkOpen(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "federation: %d shards, %d queries, %d commits (%d cross-shard), %d pending decisions, %d heuristic\n",
		len(r.conns), r.queries.Load(), r.commits.Load(), r.twoPhase.Load(), r.log.pendingCount(), r.log.heuristicCount())
	for shard, c := range r.conns {
		st, err := c.Stats()
		if err != nil {
			return "", fmt.Errorf("fed: shard %d stats: %w", shard, err)
		}
		fmt.Fprintf(&b, "-- shard %d (%s) --\n%s\n", shard, r.addrs[shard], strings.TrimRight(st, "\n"))
	}
	return b.String(), nil
}

// ObsJSON is the router's observability export, shaped exactly like a
// kernel's so `gaea trace -connect` grafts router spans the same way —
// plus the fleet block: one health row per shard from the monitor's
// live SubscribeStats subscriptions.
func (r *Router) ObsJSON() []byte {
	b, err := json.Marshal(gaea.ObsExport{
		Stats:   gaea.StatsSnapshot{Metrics: r.reg.Snapshot()},
		Traces:  r.tracer.Recent(),
		SlowOps: r.tracer.Slow(),
		Fleet:   r.health.fleet(),
	})
	if err != nil {
		return nil
	}
	return b
}
