package fed

// Shard health: the router keeps one SubscribeStats push subscription
// open to every shard and reads liveness off it — each delta is a
// heartbeat carrying the shard's own rates for free. A shard is `up`
// while deltas flow, `degraded` the moment its feed breaks (the
// transport died but a redial hasn't been tried yet), and `down` when
// the redial or resubscribe fails too. Transitions emit shard_up /
// shard_down events into the router's event log, and the current
// states surface as the fleet block of ObsJSON — what `gaea top -watch`
// renders against a federation.
//
// The monitor dials its own replacement connections after a failure
// rather than touching r.conns: routing keeps its original (possibly
// broken) connection semantics, and health probing never races request
// multiplexing.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gaea"
	"gaea/client"
	"gaea/internal/obs"
)

// defaultHealthInterval is the probe period when Options.StatsInterval
// is zero.
const defaultHealthInterval = 2 * time.Second

// Shard health states, as reported in gaea.ShardStatus.State.
const (
	shardUp       = "up"
	shardDegraded = "degraded"
	shardDown     = "down"
)

type shardHealth struct {
	state    string
	lastSeen time.Time
	rates    map[string]float64
}

// healthMonitor watches every shard with one goroutine each. All
// methods are nil-safe so a router with monitoring disabled just
// no-ops.
type healthMonitor struct {
	r      *Router
	period time.Duration
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	shards []shardHealth
}

// lockorder note: healthMonitor.mu is a leaf — never held across a
// round trip, an Emit, or any other lock.

// startHealth begins monitoring every shard of r. Shards start `up`:
// Open just dialed them all successfully, and the first missed
// heartbeat demotes them within one period.
func startHealth(r *Router, period time.Duration) *healthMonitor {
	//lint:gaea-allow ctxflow the monitor outlives any caller context; Router.Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	m := &healthMonitor{r: r, period: period, cancel: cancel, shards: make([]shardHealth, len(r.conns))}
	now := time.Now()
	for i := range m.shards {
		m.shards[i] = shardHealth{state: shardUp, lastSeen: now}
	}
	for shard := range r.conns {
		m.wg.Add(1)
		go m.watch(ctx, shard)
	}
	return m
}

// stop cancels every watcher and waits them out. Idempotent via the
// context; called by Router.Close before the shard connections drop.
func (m *healthMonitor) stop() {
	if m == nil {
		return
	}
	m.cancel()
	m.wg.Wait()
}

// watch is one shard's probe loop. The first subscription rides the
// router's own connection; after any failure the monitor owns a fresh
// dial per attempt.
func (m *healthMonitor) watch(ctx context.Context, shard int) {
	defer m.wg.Done()
	conn := m.r.conns[shard]
	owned := false
	release := func() {
		if owned {
			_ = conn.Close()
		}
		conn, owned = nil, false
	}
	for ctx.Err() == nil {
		if conn == nil {
			c, err := client.Dial(m.r.addrs[shard], m.r.opts.Client)
			if err != nil {
				m.setState(shard, shardDown)
				if !m.sleep(ctx) {
					return
				}
				continue
			}
			conn, owned = c, true
		}
		feed, err := conn.SubscribeStats(ctx, client.SubscribeOptions{Period: m.period})
		if err != nil {
			release()
			m.setState(shard, shardDown)
			if !m.sleep(ctx) {
				return
			}
			continue
		}
		for {
			delta, err := feed.Next()
			if err != nil {
				feed.Close()
				break
			}
			m.observe(shard, delta)
		}
		release()
		if ctx.Err() != nil {
			return
		}
		// The feed broke under us: degraded until the immediate redial
		// settles it — a dead endpoint refuses the dial and goes down.
		m.setState(shard, shardDegraded)
	}
	release()
}

// sleep waits one probe period, reporting false on cancellation.
func (m *healthMonitor) sleep(ctx context.Context) bool {
	t := time.NewTimer(m.period)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// observe records one heartbeat delta, promoting the shard to `up`.
func (m *healthMonitor) observe(shard int, delta *gaea.StatsDelta) {
	m.mu.Lock()
	prev := m.shards[shard].state
	m.shards[shard] = shardHealth{state: shardUp, lastSeen: delta.At, rates: delta.Rates}
	m.mu.Unlock()
	if prev != shardUp {
		m.r.events.Emit("shard_up", obs.SevInfo,
			fmt.Sprintf("shard %d (%s) is up", shard, m.r.addrs[shard]),
			map[string]string{"shard": fmt.Sprint(shard), "addr": m.r.addrs[shard]})
	}
}

// setState records a demotion, emitting shard_down on the transition
// into `down`. Rates are kept from the last heartbeat — stale but
// labelled so by the state.
func (m *healthMonitor) setState(shard int, state string) {
	m.mu.Lock()
	prev := m.shards[shard].state
	if prev == state {
		m.mu.Unlock()
		return
	}
	m.shards[shard].state = state
	m.mu.Unlock()
	if state == shardDown {
		m.r.events.Emit("shard_down", obs.SevWarn,
			fmt.Sprintf("shard %d (%s) is down", shard, m.r.addrs[shard]),
			map[string]string{"shard": fmt.Sprint(shard), "addr": m.r.addrs[shard]})
	}
}

// fleet snapshots every shard's health row for ObsJSON.
func (m *healthMonitor) fleet() []gaea.ShardStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]gaea.ShardStatus, len(m.shards))
	for i, s := range m.shards {
		out[i] = gaea.ShardStatus{Shard: i, Addr: m.r.addrs[i], State: s.state, LastSeen: s.lastSeen, Rates: s.rates}
	}
	return out
}
