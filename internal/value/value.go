// Package value implements Gaea's primitive-class value system, the
// system-level semantics layer of §2.1.3. Following the paper (and the
// Postgres ADT facility it builds on), every primitive class has
//
//   - an external representation: a text form users read and write, and
//   - an internal representation: a binary form the storage engine keeps.
//
// Data objects in primitive classes are value-identified: "changing the
// value of an object in a primitive class will always lead to another
// object" (§2.1.3) — so values here are immutable; operators return new
// values.
//
// The SETOF construct of process arguments (Figure 3's
// "ARGUMENT (SETOF bands C1)") is modelled by the Set value.
package value

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"gaea/internal/linalg"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
)

// Type names a primitive class. The scalar names match the paper's
// (int4, float4, char16, bool, abstime, box, image).
type Type string

// The primitive classes of the reproduction.
const (
	TypeInt      Type = "int4"
	TypeFloat    Type = "float8"
	TypeString   Type = "char16" // variable length in practice; name kept for fidelity
	TypeBool     Type = "bool"
	TypeAbsTime  Type = "abstime"
	TypeInterval Type = "interval"
	TypeBox      Type = "box"
	TypeImage    Type = "image"
	TypeMatrix   Type = "matrix"
	TypeVector   Type = "vector"
)

// SetOf returns the set type over an element type.
func SetOf(elem Type) Type { return Type("setof " + string(elem)) }

// IsSet reports whether t is a set type, and returns the element type.
func (t Type) IsSet() (Type, bool) {
	s := string(t)
	if rest, ok := strings.CutPrefix(s, "setof "); ok {
		return Type(rest), true
	}
	return "", false
}

// Valid reports whether t names a known primitive class or a set thereof.
func (t Type) Valid() bool {
	if elem, ok := t.IsSet(); ok {
		return elem.Valid()
	}
	switch t {
	case TypeInt, TypeFloat, TypeString, TypeBool, TypeAbsTime, TypeInterval, TypeBox, TypeImage, TypeMatrix, TypeVector:
		return true
	}
	return false
}

// Value is one immutable primitive-class object.
type Value interface {
	// Type returns the primitive class of the value.
	Type() Type
	// String returns the external representation.
	String() string
}

// Errors shared across the package.
var (
	ErrType  = errors.New("value: type mismatch")
	ErrParse = errors.New("value: cannot parse external representation")
)

// Int is the int4 primitive class (widened to 64 bits internally).
type Int int64

// Type implements Value.
func (Int) Type() Type { return TypeInt }

// String implements Value.
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

// Float is the float8 primitive class.
type Float float64

// Type implements Value.
func (Float) Type() Type { return TypeFloat }

// String implements Value.
func (v Float) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }

// String_ is the char16 primitive class (arbitrary-length strings).
type String_ string

// Type implements Value.
func (String_) Type() Type { return TypeString }

// String implements Value.
func (v String_) String() string { return string(v) }

// Bool is the boolean primitive class.
type Bool bool

// Type implements Value.
func (Bool) Type() Type { return TypeBool }

// String implements Value.
func (v Bool) String() string {
	if v {
		return "true"
	}
	return "false"
}

// AbsTime is the abstime primitive class.
type AbsTime sptemp.AbsTime

// Type implements Value.
func (AbsTime) Type() Type { return TypeAbsTime }

// String implements Value.
func (v AbsTime) String() string { return sptemp.AbsTime(v).String() }

// Time unwraps to the sptemp representation.
func (v AbsTime) Time() sptemp.AbsTime { return sptemp.AbsTime(v) }

// Interval is the temporal-interval primitive class.
type Interval sptemp.Interval

// Type implements Value.
func (Interval) Type() Type { return TypeInterval }

// String implements Value.
func (v Interval) String() string { return sptemp.Interval(v).String() }

// Interval unwraps to the sptemp representation.
func (v Interval) Interval() sptemp.Interval { return sptemp.Interval(v) }

// Box is the spatial-box primitive class.
type Box sptemp.Box

// Type implements Value.
func (Box) Type() Type { return TypeBox }

// String implements Value.
func (v Box) String() string { return sptemp.Box(v).String() }

// Box unwraps to the sptemp representation.
func (v Box) Box() sptemp.Box { return sptemp.Box(v) }

// Image is the image primitive class; the external representation follows
// the paper: "(nrows, ncols, pixtype, <bytes>)". The pixel payload is the
// internal representation.
type Image struct{ Img *raster.Image }

// Type implements Value.
func (Image) Type() Type { return TypeImage }

// String implements Value.
func (v Image) String() string {
	if v.Img == nil {
		return "(image nil)"
	}
	return fmt.Sprintf("(%d, %d, %s, %dB)", v.Img.Rows(), v.Img.Cols(), v.Img.PixType(), len(v.Img.Data()))
}

// Matrix is the matrix primitive class (used inside the PCA network).
type Matrix struct{ M *linalg.Matrix }

// Type implements Value.
func (Matrix) Type() Type { return TypeMatrix }

// String implements Value.
func (v Matrix) String() string {
	if v.M == nil {
		return "matrix(nil)"
	}
	return v.M.String()
}

// Vector is the vector primitive class.
type Vector []float64

// Type implements Value.
func (Vector) Type() Type { return TypeVector }

// String implements Value.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Set is a SETOF value: an ordered collection of values of one element
// type. Order matters for reproducibility (tasks record their inputs in
// order), though set semantics treat it as a collection.
type Set struct {
	Elem  Type
	Items []Value
}

// NewSet builds a Set after checking element types.
func NewSet(elem Type, items []Value) (Set, error) {
	for i, it := range items {
		if it.Type() != elem {
			return Set{}, fmt.Errorf("%w: set element %d is %s, want %s", ErrType, i, it.Type(), elem)
		}
	}
	return Set{Elem: elem, Items: items}, nil
}

// Type implements Value.
func (s Set) Type() Type { return SetOf(s.Elem) }

// String implements Value.
func (s Set) String() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Card returns the cardinality of the set — the card() assertion operator
// of Figure 3.
func (s Set) Card() int { return len(s.Items) }

// Equal compares two values of any primitive class. Images compare by
// pixel content, matrices elementwise exactly, sets elementwise in order.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Type() != b.Type() {
		return false
	}
	switch av := a.(type) {
	case Int:
		return av == b.(Int)
	case Float:
		bf := b.(Float)
		return av == bf || (math.IsNaN(float64(av)) && math.IsNaN(float64(bf)))
	case String_:
		return av == b.(String_)
	case Bool:
		return av == b.(Bool)
	case AbsTime:
		return av == b.(AbsTime)
	case Interval:
		return sptemp.Interval(av).Equal(sptemp.Interval(b.(Interval)))
	case Box:
		return sptemp.Box(av).Equal(sptemp.Box(b.(Box)))
	case Image:
		bi := b.(Image)
		if av.Img == nil || bi.Img == nil {
			return av.Img == bi.Img
		}
		return av.Img.EqualPixels(bi.Img)
	case Matrix:
		bm := b.(Matrix)
		if av.M == nil || bm.M == nil {
			return av.M == bm.M
		}
		return av.M.Equalish(bm.M, 0)
	case Vector:
		bv := b.(Vector)
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		return true
	case Set:
		bs := b.(Set)
		if av.Elem != bs.Elem || len(av.Items) != len(bs.Items) {
			return false
		}
		for i := range av.Items {
			if !Equal(av.Items[i], bs.Items[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// AsFloat widens numeric values (Int, Float) to float64 for arithmetic in
// the template language.
func AsFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case Int:
		return float64(x), nil
	case Float:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("%w: %s is not numeric", ErrType, v.Type())
	}
}

// AsInt narrows numeric values to int64; floats must be integral.
func AsInt(v Value) (int64, error) {
	switch x := v.(type) {
	case Int:
		return int64(x), nil
	case Float:
		if float64(x) != math.Trunc(float64(x)) {
			return 0, fmt.Errorf("%w: %s is not integral", ErrType, v)
		}
		return int64(x), nil
	default:
		return 0, fmt.Errorf("%w: %s is not numeric", ErrType, v.Type())
	}
}

// AsBool extracts a Bool.
func AsBool(v Value) (bool, error) {
	if b, ok := v.(Bool); ok {
		return bool(b), nil
	}
	return false, fmt.Errorf("%w: %s is not bool", ErrType, v.Type())
}

// AsImage extracts an image.
func AsImage(v Value) (*raster.Image, error) {
	if im, ok := v.(Image); ok && im.Img != nil {
		return im.Img, nil
	}
	return nil, fmt.Errorf("%w: %s is not an image", ErrType, v.Type())
}

// AsImageSet extracts the images from a SETOF image value (or a single
// image, treated as a singleton set — operators like composite accept
// both).
func AsImageSet(v Value) ([]*raster.Image, error) {
	switch x := v.(type) {
	case Image:
		if x.Img == nil {
			return nil, fmt.Errorf("%w: nil image", ErrType)
		}
		return []*raster.Image{x.Img}, nil
	case Set:
		if x.Elem != TypeImage {
			return nil, fmt.Errorf("%w: set of %s, want images", ErrType, x.Elem)
		}
		out := make([]*raster.Image, len(x.Items))
		for i, it := range x.Items {
			im, err := AsImage(it)
			if err != nil {
				return nil, err
			}
			out[i] = im
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %s is not image or setof image", ErrType, v.Type())
	}
}

// AsMatrix extracts a matrix.
func AsMatrix(v Value) (*linalg.Matrix, error) {
	if m, ok := v.(Matrix); ok && m.M != nil {
		return m.M, nil
	}
	return nil, fmt.Errorf("%w: %s is not a matrix", ErrType, v.Type())
}

// AsString extracts a string.
func AsString(v Value) (string, error) {
	if s, ok := v.(String_); ok {
		return string(s), nil
	}
	return "", fmt.Errorf("%w: %s is not a string", ErrType, v.Type())
}
