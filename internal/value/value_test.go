package value

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gaea/internal/linalg"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
)

func TestTypeSetOf(t *testing.T) {
	st := SetOf(TypeImage)
	elem, ok := st.IsSet()
	if !ok || elem != TypeImage {
		t.Errorf("IsSet = %s, %v", elem, ok)
	}
	if _, ok := TypeImage.IsSet(); ok {
		t.Error("scalar type should not be a set")
	}
	if !st.Valid() || !TypeInt.Valid() {
		t.Error("known types should be valid")
	}
	if Type("blob").Valid() || SetOf("blob").Valid() {
		t.Error("unknown types should be invalid")
	}
}

func TestExternalRepresentations(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{String_("africa"), "africa"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Box(sptemp.NewBox(1, 2, 3, 4)), "(1,2,3,4)"},
		{Vector{1, 2.5}, "[1, 2.5]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%T String = %q, want %q", c.v, got, c.want)
		}
	}
	img := Image{Img: raster.MustNew(2, 3, raster.PixChar)}
	if got := img.String(); !strings.Contains(got, "2, 3, char") {
		t.Errorf("image repr = %q", got)
	}
	s, err := NewSet(TypeInt, []Value{Int(1), Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "{1; 2}" {
		t.Errorf("set repr = %q", got)
	}
}

func TestNewSetTypeChecks(t *testing.T) {
	if _, err := NewSet(TypeInt, []Value{Int(1), Float(2)}); err == nil {
		t.Error("mixed-type set must fail")
	}
	s, err := NewSet(TypeImage, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Card() != 0 {
		t.Error("empty set has cardinality 0")
	}
	if s.Type() != SetOf(TypeImage) {
		t.Errorf("set type = %s", s.Type())
	}
}

func TestEqual(t *testing.T) {
	img1 := Image{Img: raster.MustNew(2, 2, raster.PixChar)}
	img2 := Image{Img: raster.MustNew(2, 2, raster.PixChar)}
	img2.Img.Set(0, 0, 9)
	m1, _ := linalg.FromRows([][]float64{{1, 2}})
	m2, _ := linalg.FromRows([][]float64{{1, 3}})
	setA, _ := NewSet(TypeInt, []Value{Int(1)})
	setB, _ := NewSet(TypeInt, []Value{Int(2)})

	eq := []struct{ a, b Value }{
		{Int(1), Int(1)},
		{Float(math.NaN()), Float(math.NaN())},
		{String_("x"), String_("x")},
		{Bool(true), Bool(true)},
		{AbsTime(100), AbsTime(100)},
		{Interval(sptemp.NewInterval(1, 5)), Interval(sptemp.NewInterval(1, 5))},
		{Box(sptemp.NewBox(0, 0, 1, 1)), Box(sptemp.NewBox(0, 0, 1, 1))},
		{img1, Image{Img: img1.Img.Clone()}},
		{Matrix{M: m1}, Matrix{M: m1.Clone()}},
		{Vector{1, 2}, Vector{1, 2}},
		{setA, setA},
		{nil, nil},
	}
	for _, c := range eq {
		if !Equal(c.a, c.b) {
			t.Errorf("Equal(%v, %v) should be true", c.a, c.b)
		}
	}
	ne := []struct{ a, b Value }{
		{Int(1), Int(2)},
		{Int(1), Float(1)}, // type mismatch
		{img1, img2},
		{Matrix{M: m1}, Matrix{M: m2}},
		{Vector{1}, Vector{1, 2}},
		{setA, setB},
		{nil, Int(0)},
	}
	for _, c := range ne {
		if Equal(c.a, c.b) {
			t.Errorf("Equal(%v, %v) should be false", c.a, c.b)
		}
	}
}

func TestConversions(t *testing.T) {
	if f, err := AsFloat(Int(3)); err != nil || f != 3 {
		t.Errorf("AsFloat(Int) = %g, %v", f, err)
	}
	if f, err := AsFloat(Float(2.5)); err != nil || f != 2.5 {
		t.Errorf("AsFloat(Float) = %g, %v", f, err)
	}
	if _, err := AsFloat(Bool(true)); err == nil {
		t.Error("AsFloat(Bool) must fail")
	}
	if n, err := AsInt(Float(4)); err != nil || n != 4 {
		t.Errorf("AsInt(4.0) = %d, %v", n, err)
	}
	if _, err := AsInt(Float(4.5)); err == nil {
		t.Error("AsInt(4.5) must fail")
	}
	if b, err := AsBool(Bool(true)); err != nil || !b {
		t.Errorf("AsBool = %v, %v", b, err)
	}
	if _, err := AsBool(Int(1)); err == nil {
		t.Error("AsBool(Int) must fail")
	}
	if s, err := AsString(String_("hi")); err != nil || s != "hi" {
		t.Errorf("AsString = %q, %v", s, err)
	}
	if _, err := AsString(Int(1)); err == nil {
		t.Error("AsString(Int) must fail")
	}
	img := raster.MustNew(1, 1, raster.PixChar)
	if got, err := AsImage(Image{Img: img}); err != nil || got != img {
		t.Errorf("AsImage failed: %v", err)
	}
	if _, err := AsImage(Int(1)); err == nil {
		t.Error("AsImage(Int) must fail")
	}
	m, _ := linalg.FromRows([][]float64{{1}})
	if got, err := AsMatrix(Matrix{M: m}); err != nil || got != m {
		t.Errorf("AsMatrix failed: %v", err)
	}
	if _, err := AsMatrix(Image{Img: img}); err == nil {
		t.Error("AsMatrix(Image) must fail")
	}
}

func TestAsImageSet(t *testing.T) {
	img := raster.MustNew(1, 1, raster.PixChar)
	// Singleton image.
	imgs, err := AsImageSet(Image{Img: img})
	if err != nil || len(imgs) != 1 {
		t.Fatalf("singleton: %v, %v", imgs, err)
	}
	// Proper set.
	set, _ := NewSet(TypeImage, []Value{Image{Img: img}, Image{Img: img.Clone()}})
	imgs, err = AsImageSet(set)
	if err != nil || len(imgs) != 2 {
		t.Fatalf("set: %v, %v", imgs, err)
	}
	// Wrong element type.
	intSet, _ := NewSet(TypeInt, []Value{Int(1)})
	if _, err := AsImageSet(intSet); err == nil {
		t.Error("setof int must fail")
	}
	if _, err := AsImageSet(Int(1)); err == nil {
		t.Error("scalar int must fail")
	}
}

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	buf, err := Encode(v)
	if err != nil {
		t.Fatalf("Encode(%v): %v", v, err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	return back
}

func TestCodecRoundTripAllTypes(t *testing.T) {
	img := raster.MustNew(3, 2, raster.PixInt2)
	img.SetFloat64s([]float64{1, -2, 3, -4, 5, -6})
	m, _ := linalg.FromRows([][]float64{{1.5, -2.5}, {0, 7}})
	set, _ := NewSet(TypeImage, []Value{Image{Img: img}})
	nested, _ := NewSet(SetOf(TypeInt), []Value{
		mustSet(t, TypeInt, Int(1), Int(2)),
		mustSet(t, TypeInt, Int(3)),
	})

	values := []Value{
		Int(-42),
		Float(math.Pi),
		String_("landcover"),
		String_(""),
		Bool(true),
		AbsTime(sptemp.Date(1986, 1, 15)),
		Interval(sptemp.NewInterval(sptemp.Date(1988, 1, 1), sptemp.Date(1989, 1, 1))),
		Box(sptemp.NewBox(-10, -20, 30, 40)),
		Image{Img: img},
		Matrix{M: m},
		Vector{1, 2, 3},
		Vector{},
		set,
		nested,
	}
	for _, v := range values {
		back := roundTrip(t, v)
		if !Equal(v, back) {
			t.Errorf("round trip changed %v -> %v", v, back)
		}
	}
}

func mustSet(t *testing.T, elem Type, items ...Value) Set {
	t.Helper()
	s, err := NewSet(elem, items)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCodecPropertyScalars(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var v Value
		switch r.Intn(6) {
		case 0:
			v = Int(r.Int63() - r.Int63())
		case 1:
			v = Float(r.NormFloat64() * 1e10)
		case 2:
			b := make([]byte, r.Intn(30))
			r.Read(b)
			v = String_(b)
		case 3:
			v = Bool(r.Intn(2) == 0)
		case 4:
			v = AbsTime(r.Int63())
		case 5:
			v = Box(sptemp.NewBox(r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()))
		}
		back := roundTrip(t, v)
		return Equal(v, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorruption(t *testing.T) {
	good, err := Encode(Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer must fail")
	}
	if _, err := Decode(good[:4]); err == nil {
		t.Error("truncated payload must fail")
	}
	if _, err := Decode(append(good, 0xFF)); err == nil {
		t.Error("trailing bytes must fail")
	}
	if _, err := Decode([]byte{0xEE}); err == nil {
		t.Error("unknown tag must fail")
	}
	// Truncated set.
	set, _ := NewSet(TypeInt, []Value{Int(1), Int(2)})
	sb, _ := Encode(set)
	if _, err := Decode(sb[:len(sb)-3]); err == nil {
		t.Error("truncated set must fail")
	}
}

func TestEncodeNilPayloads(t *testing.T) {
	if _, err := Encode(Image{}); err == nil {
		t.Error("nil image must fail to encode")
	}
	if _, err := Encode(Matrix{}); err == nil {
		t.Error("nil matrix must fail to encode")
	}
}

func TestParseScalars(t *testing.T) {
	cases := []struct {
		t    Type
		in   string
		want Value
	}{
		{TypeInt, "42", Int(42)},
		{TypeInt, " -7 ", Int(-7)},
		{TypeFloat, "2.5", Float(2.5)},
		{TypeString, `"africa"`, String_("africa")},
		{TypeString, "africa", String_("africa")},
		{TypeBool, "true", Bool(true)},
		{TypeBool, "F", Bool(false)},
		{TypeBool, "1", Bool(true)},
		{TypeAbsTime, "1986-01-15", AbsTime(sptemp.Date(1986, 1, 15))},
		{TypeBox, "(1, 2, 3, 4)", Box(sptemp.NewBox(1, 2, 3, 4))},
	}
	for _, c := range cases {
		got, err := Parse(c.t, c.in)
		if err != nil {
			t.Errorf("Parse(%s, %q): %v", c.t, c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Parse(%s, %q) = %v, want %v", c.t, c.in, got, c.want)
		}
	}
	bad := []struct {
		t  Type
		in string
	}{
		{TypeInt, "4.5"},
		{TypeFloat, "abc"},
		{TypeBool, "maybe"},
		{TypeAbsTime, "not-a-date"},
		{TypeBox, "(1,2,3)"},
		{TypeBox, "(a,b,c,d)"},
		{TypeImage, "anything"},
		{TypeMatrix, "anything"},
	}
	for _, c := range bad {
		if _, err := Parse(c.t, c.in); err == nil {
			t.Errorf("Parse(%s, %q) should fail", c.t, c.in)
		}
	}
	// RFC3339 form also accepted.
	if _, err := Parse(TypeAbsTime, "1986-01-15T10:30:00Z"); err != nil {
		t.Errorf("RFC3339 parse failed: %v", err)
	}
}
