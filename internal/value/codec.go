package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"gaea/internal/linalg"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
)

// Internal (binary) representation: a one-byte tag followed by a
// type-specific little-endian payload. This codec is what the storage
// engine persists; it must round-trip every value exactly.

const (
	tagInt byte = iota + 1
	tagFloat
	tagString
	tagBool
	tagAbsTime
	tagInterval
	tagBox
	tagImage
	tagMatrix
	tagVector
	tagSet
)

// Encode serialises a value to its internal representation.
func Encode(v Value) ([]byte, error) {
	var buf []byte
	return appendValue(buf, v)
}

func appendValue(buf []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case Int:
		buf = append(buf, tagInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case Float:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(x))), nil
	case String_:
		buf = append(buf, tagString)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...), nil
	case Bool:
		buf = append(buf, tagBool)
		if x {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case AbsTime:
		buf = append(buf, tagAbsTime)
		return binary.LittleEndian.AppendUint64(buf, uint64(x)), nil
	case Interval:
		buf = append(buf, tagInterval)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x.Start))
		return binary.LittleEndian.AppendUint64(buf, uint64(x.End)), nil
	case Box:
		buf = append(buf, tagBox)
		for _, f := range []float64{x.MinX, x.MinY, x.MaxX, x.MaxY} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf, nil
	case Image:
		if x.Img == nil {
			return nil, fmt.Errorf("value: cannot encode nil image")
		}
		payload := raster.Marshal(x.Img)
		buf = append(buf, tagImage)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		return append(buf, payload...), nil
	case Matrix:
		if x.M == nil {
			return nil, fmt.Errorf("value: cannot encode nil matrix")
		}
		buf = append(buf, tagMatrix)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.M.Rows()))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x.M.Cols()))
		for _, f := range x.M.Data() {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf, nil
	case Vector:
		buf = append(buf, tagVector)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, f := range x {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		return buf, nil
	case Set:
		buf = append(buf, tagSet)
		elem := []byte(x.Elem)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(elem)))
		buf = append(buf, elem...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Items)))
		var err error
		for _, it := range x.Items {
			if buf, err = appendValue(buf, it); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("value: cannot encode %T", v)
	}
}

// Decode deserialises a value from its internal representation, requiring
// the buffer to be fully consumed.
func Decode(buf []byte) (Value, error) {
	v, rest, err := decodeValue(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("value: %d trailing bytes after decode", len(rest))
	}
	return v, nil
}

func decodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("value: empty buffer")
	}
	tag, rest := buf[0], buf[1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("value: truncated payload for tag %d", tag)
		}
		return nil
	}
	switch tag {
	case tagInt:
		if err := need(8); err != nil {
			return nil, nil, err
		}
		return Int(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case tagFloat:
		if err := need(8); err != nil {
			return nil, nil, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(rest))), rest[8:], nil
	case tagString:
		if err := need(4); err != nil {
			return nil, nil, err
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if err := need(n); err != nil {
			return nil, nil, err
		}
		return String_(rest[:n]), rest[n:], nil
	case tagBool:
		if err := need(1); err != nil {
			return nil, nil, err
		}
		return Bool(rest[0] != 0), rest[1:], nil
	case tagAbsTime:
		if err := need(8); err != nil {
			return nil, nil, err
		}
		return AbsTime(binary.LittleEndian.Uint64(rest)), rest[8:], nil
	case tagInterval:
		if err := need(16); err != nil {
			return nil, nil, err
		}
		iv := Interval{
			Start: sptemp.AbsTime(binary.LittleEndian.Uint64(rest)),
			End:   sptemp.AbsTime(binary.LittleEndian.Uint64(rest[8:])),
		}
		return iv, rest[16:], nil
	case tagBox:
		if err := need(32); err != nil {
			return nil, nil, err
		}
		var f [4]float64
		for i := range f {
			f[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
		return Box{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}, rest[32:], nil
	case tagImage:
		if err := need(4); err != nil {
			return nil, nil, err
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if err := need(n); err != nil {
			return nil, nil, err
		}
		img, err := raster.Unmarshal(rest[:n])
		if err != nil {
			return nil, nil, err
		}
		return Image{Img: img}, rest[n:], nil
	case tagMatrix:
		if err := need(8); err != nil {
			return nil, nil, err
		}
		r := int(binary.LittleEndian.Uint32(rest))
		c := int(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		if r <= 0 || c <= 0 || r*c > 1<<26 {
			return nil, nil, fmt.Errorf("value: implausible matrix dims %dx%d", r, c)
		}
		if err := need(r * c * 8); err != nil {
			return nil, nil, err
		}
		data := make([]float64, r*c)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
		m, err := linalg.FromData(r, c, data)
		if err != nil {
			return nil, nil, err
		}
		return Matrix{M: m}, rest[r*c*8:], nil
	case tagVector:
		if err := need(4); err != nil {
			return nil, nil, err
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || n > 1<<26 {
			return nil, nil, fmt.Errorf("value: implausible vector length %d", n)
		}
		if err := need(n * 8); err != nil {
			return nil, nil, err
		}
		vec := make(Vector, n)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
		}
		return vec, rest[n*8:], nil
	case tagSet:
		if err := need(2); err != nil {
			return nil, nil, err
		}
		en := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if err := need(en); err != nil {
			return nil, nil, err
		}
		elem := Type(rest[:en])
		rest = rest[en:]
		if err := need(4); err != nil {
			return nil, nil, err
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || n > 1<<20 {
			return nil, nil, fmt.Errorf("value: implausible set size %d", n)
		}
		items := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			var (
				it  Value
				err error
			)
			it, rest, err = decodeValue(rest)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, it)
		}
		s, err := NewSet(elem, items)
		if err != nil {
			return nil, nil, err
		}
		return s, rest, nil
	default:
		return nil, nil, fmt.Errorf("value: unknown tag %d", tag)
	}
}

// Parse reads a scalar value of the given type from its external
// representation. Compound types (image, matrix, vector, set) have no
// parsable external form — they are produced by operators, matching the
// paper's model where image payloads live in files.
func Parse(t Type, s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch t {
	case TypeInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as %s", ErrParse, s, t)
		}
		return Int(n), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as %s", ErrParse, s, t)
		}
		return Float(f), nil
	case TypeString:
		return String_(strings.Trim(s, `"`)), nil
	case TypeBool:
		switch strings.ToLower(s) {
		case "true", "t", "1":
			return Bool(true), nil
		case "false", "f", "0":
			return Bool(false), nil
		}
		return nil, fmt.Errorf("%w: %q as bool", ErrParse, s)
	case TypeAbsTime:
		tm, err := parseTime(s)
		if err != nil {
			return nil, err
		}
		return tm, nil
	case TypeBox:
		return parseBox(s)
	default:
		return nil, fmt.Errorf("%w: type %s has no external scalar form", ErrParse, t)
	}
}

func parseTime(s string) (AbsTime, error) {
	// Accept RFC3339 or bare dates.
	for _, layout := range []string{"2006-01-02T15:04:05Z07:00", "2006-01-02"} {
		if tm, err := parseInLayout(layout, s); err == nil {
			return tm, nil
		}
	}
	return 0, fmt.Errorf("%w: %q as abstime", ErrParse, s)
}

func parseInLayout(layout, s string) (AbsTime, error) {
	tm, err := timeParse(layout, s)
	if err != nil {
		return 0, err
	}
	return AbsTime(tm), nil
}

func parseBox(s string) (Box, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return Box{}, fmt.Errorf("%w: %q as box (want 4 coordinates)", ErrParse, s)
	}
	var f [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Box{}, fmt.Errorf("%w: box coordinate %q", ErrParse, p)
		}
		f[i] = v
	}
	return Box(sptemp.NewBox(f[0], f[1], f[2], f[3])), nil
}
