package value

import (
	"time"

	"gaea/internal/sptemp"
)

// timeParse parses a timestamp in the given layout, in UTC.
func timeParse(layout, s string) (sptemp.AbsTime, error) {
	t, err := time.ParseInLocation(layout, s, time.UTC)
	if err != nil {
		return 0, err
	}
	return sptemp.AbsTimeOf(t), nil
}
