package sptemp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGridIndexBasics(t *testing.T) {
	g := NewGridIndex(10)
	g.Insert(1, box(0, 0, 5, 5))
	g.Insert(2, box(20, 20, 25, 25))
	g.Insert(3, box(3, 3, 22, 22)) // spans multiple cells

	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := g.Search(box(1, 1, 4, 4))
	if !reflect.DeepEqual(got, []uint64{1, 3}) {
		t.Errorf("Search = %v, want [1 3]", got)
	}
	got = g.Search(box(21, 21, 24, 24))
	if !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Errorf("Search = %v, want [2 3]", got)
	}
	if got := g.Search(box(100, 100, 110, 110)); len(got) != 0 {
		t.Errorf("Search far away = %v, want none", got)
	}
	if got := g.Search(EmptyBox()); got != nil {
		t.Errorf("Search empty box = %v", got)
	}
	if !reflect.DeepEqual(g.All(), []uint64{1, 2, 3}) {
		t.Errorf("All = %v", g.All())
	}
}

func TestGridIndexDeleteAndReplace(t *testing.T) {
	g := NewGridIndex(10)
	g.Insert(1, box(0, 0, 5, 5))
	g.Delete(1)
	if g.Len() != 0 || len(g.Search(box(0, 0, 10, 10))) != 0 {
		t.Error("delete failed")
	}
	g.Delete(42) // absent id is a no-op
	g.Insert(1, box(0, 0, 5, 5))
	g.Insert(1, box(50, 50, 55, 55)) // replace moves the entry
	if got := g.Search(box(0, 0, 10, 10)); len(got) != 0 {
		t.Errorf("old position still indexed: %v", got)
	}
	if got := g.Search(box(49, 49, 56, 56)); !reflect.DeepEqual(got, []uint64{1}) {
		t.Errorf("new position not indexed: %v", got)
	}
}

func TestGridIndexNegativeCoordinates(t *testing.T) {
	g := NewGridIndex(10)
	g.Insert(1, box(-25, -25, -15, -15))
	if got := g.Search(box(-20, -20, -18, -18)); !reflect.DeepEqual(got, []uint64{1}) {
		t.Errorf("negative-coordinate search = %v", got)
	}
	if got := g.Search(box(5, 5, 6, 6)); len(got) != 0 {
		t.Errorf("should not match positive quadrant: %v", got)
	}
}

// TestGridIndexAgainstLinearScan cross-checks the index against brute force
// on random workloads.
func TestGridIndexAgainstLinearScan(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGridIndex(7)
		boxes := make(map[uint64]Box)
		n := 5 + r.Intn(40)
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			b := NewBox(r.Float64()*100-50, r.Float64()*100-50, r.Float64()*100-50, r.Float64()*100-50)
			boxes[id] = b
			g.Insert(id, b)
		}
		// Random deletions.
		for id := range boxes {
			if r.Intn(4) == 0 {
				g.Delete(id)
				delete(boxes, id)
			}
		}
		q := NewBox(r.Float64()*100-50, r.Float64()*100-50, r.Float64()*100-50, r.Float64()*100-50)
		got := g.Search(q)
		var want []uint64
		for id, b := range boxes {
			if b.Intersects(q) {
				want = append(want, id)
			}
		}
		sortUint64(want)
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func TestIntervalIndexBasics(t *testing.T) {
	x := NewIntervalIndex()
	x.Insert(1, NewInterval(Date(1986, 1, 1), Date(1986, 2, 1)))
	x.Insert(2, NewInterval(Date(1986, 3, 1), Date(1986, 4, 1)))
	x.Insert(3, NewInterval(Date(1986, 1, 15), Date(1986, 3, 15)))

	got := x.Search(NewInterval(Date(1986, 1, 20), Date(1986, 1, 25)))
	if !reflect.DeepEqual(got, []uint64{1, 3}) {
		t.Errorf("Search = %v, want [1 3]", got)
	}
	if got := x.Search(Instant(Date(1986, 3, 10))); !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Errorf("stab = %v, want [2 3]", got)
	}
	if got := x.Search(NewInterval(Date(1990, 1, 1), Date(1991, 1, 1))); len(got) != 0 {
		t.Errorf("future search = %v", got)
	}
	if got := x.Search(EmptyInterval()); got != nil {
		t.Errorf("empty search = %v", got)
	}
	if x.Len() != 3 {
		t.Errorf("Len = %d", x.Len())
	}
}

func TestIntervalIndexDeleteReplace(t *testing.T) {
	x := NewIntervalIndex()
	x.Insert(1, NewInterval(Date(1986, 1, 1), Date(1986, 2, 1)))
	x.Delete(1)
	if x.Len() != 0 {
		t.Error("delete failed")
	}
	x.Delete(9) // no-op
	x.Insert(1, NewInterval(Date(1986, 1, 1), Date(1986, 2, 1)))
	x.Insert(1, NewInterval(Date(1987, 1, 1), Date(1987, 2, 1)))
	if got := x.Search(Instant(Date(1986, 1, 15))); len(got) != 0 {
		t.Errorf("stale interval matched: %v", got)
	}
	if got := x.Search(Instant(Date(1987, 1, 15))); !reflect.DeepEqual(got, []uint64{1}) {
		t.Errorf("replacement not found: %v", got)
	}
}

func TestIntervalIndexNearest(t *testing.T) {
	x := NewIntervalIndex()
	x.Insert(1, Instant(Date(1986, 1, 1)))
	x.Insert(2, Instant(Date(1986, 6, 1)))
	x.Insert(3, Instant(Date(1987, 1, 1)))

	got := x.Nearest(Date(1986, 5, 1), 2)
	if !reflect.DeepEqual(got, []uint64{2, 1}) {
		t.Errorf("Nearest = %v, want [2 1]", got)
	}
	// Contained instant has distance zero.
	x.Insert(4, NewInterval(Date(1986, 4, 1), Date(1986, 7, 1)))
	got = x.Nearest(Date(1986, 5, 1), 1)
	if !reflect.DeepEqual(got, []uint64{4}) {
		t.Errorf("Nearest containing = %v, want [4]", got)
	}
	// k larger than population returns all.
	if got := x.Nearest(Date(1986, 5, 1), 99); len(got) != 4 {
		t.Errorf("Nearest big k = %v", got)
	}
}

func TestIntervalIndexAgainstLinearScan(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := NewIntervalIndex()
		ivs := make(map[uint64]Interval)
		n := 5 + r.Intn(40)
		for i := 0; i < n; i++ {
			id := uint64(i + 1)
			iv := randInterval(r)
			if iv.IsEmpty() {
				iv = Instant(AbsTime(r.Int63n(1000)))
			}
			ivs[id] = iv
			x.Insert(id, iv)
		}
		q := randInterval(r)
		if q.IsEmpty() {
			return x.Search(q) == nil
		}
		got := x.Search(q)
		var want []uint64
		for id, iv := range ivs {
			if iv.Intersects(q) {
				want = append(want, id)
			}
		}
		sortUint64(want)
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
