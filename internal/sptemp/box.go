// Package sptemp implements the spatial and temporal extent semantics that
// Gaea attaches to every scientific object: bounding boxes in a named
// reference system, absolute timestamps and intervals, the Allen interval
// relations, the common() overlap predicate used by process assertions, and
// simple spatial/temporal indexes for extent-qualified retrieval.
//
// The paper (§2.1.1–2.1.2) treats the spatial and temporal extents as
// orthogonal, well-studied dimensions; this package provides exactly the
// operations the derivation layer needs: equality, containment, overlap,
// union/intersection, and the "same or overlapping" guard written as
// common(bands.spatialextent) in Figure 3.
package sptemp

import (
	"errors"
	"fmt"
	"math"
)

// Box is an axis-aligned spatial bounding box, the paper's "box" primitive
// class used for SPATIAL EXTENT attributes. Coordinates are interpreted in
// the owning class's reference system (long/lat, UTM, ...).
type Box struct {
	MinX, MinY float64
	MaxX, MaxY float64
}

// ErrEmptyBox is returned by operations that require a non-empty box.
var ErrEmptyBox = errors.New("sptemp: empty box")

// NewBox returns a box from two corner points, normalising the corner order
// so that Min <= Max on both axes.
func NewBox(x1, y1, x2, y2 float64) Box {
	return Box{
		MinX: math.Min(x1, x2),
		MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2),
		MaxY: math.Max(y1, y2),
	}
}

// EmptyBox returns the canonical empty box, which contains nothing and
// intersects nothing.
func EmptyBox() Box {
	return Box{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	return b.MinX > b.MaxX || b.MinY > b.MaxY
}

// Width returns the x-axis extent of the box, 0 for empty boxes.
func (b Box) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the y-axis extent of the box, 0 for empty boxes.
func (b Box) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the area of the box, 0 for empty boxes.
func (b Box) Area() float64 {
	return b.Width() * b.Height()
}

// Equal reports exact coordinate equality. All empty boxes compare equal.
func (b Box) Equal(o Box) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return b.IsEmpty() && o.IsEmpty()
	}
	return b == o
}

// ContainsPoint reports whether (x, y) lies inside or on the boundary.
func (b Box) ContainsPoint(x, y float64) bool {
	return !b.IsEmpty() && x >= b.MinX && x <= b.MaxX && y >= b.MinY && y <= b.MaxY
}

// Contains reports whether o lies entirely within b. An empty box is
// contained in every box.
func (b Box) Contains(o Box) bool {
	if o.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX && o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// Intersects reports whether the two boxes share at least one point
// (touching edges count as intersecting, matching the paper's "same or
// overlap" guard semantics).
func (b Box) Intersects(o Box) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// Intersection returns the largest box contained in both operands, or an
// empty box when they do not intersect.
func (b Box) Intersection(o Box) Box {
	if !b.Intersects(o) {
		return EmptyBox()
	}
	return Box{
		MinX: math.Max(b.MinX, o.MinX),
		MinY: math.Max(b.MinY, o.MinY),
		MaxX: math.Min(b.MaxX, o.MaxX),
		MaxY: math.Min(b.MaxY, o.MaxY),
	}
}

// Union returns the smallest box containing both operands.
func (b Box) Union(o Box) Box {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return Box{
		MinX: math.Min(b.MinX, o.MinX),
		MinY: math.Min(b.MinY, o.MinY),
		MaxX: math.Max(b.MaxX, o.MaxX),
		MaxY: math.Max(b.MaxY, o.MaxY),
	}
}

// Center returns the center point of the box. It returns an error for empty
// boxes, which have no center.
func (b Box) Center() (x, y float64, err error) {
	if b.IsEmpty() {
		return 0, 0, ErrEmptyBox
	}
	return (b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2, nil
}

// CenterDistance returns the Euclidean distance between the centers of two
// non-empty boxes; it is the metric used by spatial interpolation.
func (b Box) CenterDistance(o Box) (float64, error) {
	bx, by, err := b.Center()
	if err != nil {
		return 0, err
	}
	ox, oy, err := o.Center()
	if err != nil {
		return 0, err
	}
	return math.Hypot(bx-ox, by-oy), nil
}

// Expand returns the box grown by d on every side. Negative d shrinks the
// box and may make it empty.
func (b Box) Expand(d float64) Box {
	if b.IsEmpty() {
		return b
	}
	return Box{MinX: b.MinX - d, MinY: b.MinY - d, MaxX: b.MaxX + d, MaxY: b.MaxY + d}
}

// String renders the box in the paper's external-representation style.
func (b Box) String() string {
	if b.IsEmpty() {
		return "(empty)"
	}
	return fmt.Sprintf("(%g,%g,%g,%g)", b.MinX, b.MinY, b.MaxX, b.MaxY)
}

// CommonBox implements the common() assertion from Figure 3 over spatial
// extents: it succeeds when every pair of boxes overlaps (the paper requires
// that "the spatio-temporal extents of the input classes are the same or
// overlap") and returns their shared intersection. It fails when the set is
// empty or some pair is disjoint.
func CommonBox(boxes []Box) (Box, error) {
	if len(boxes) == 0 {
		return EmptyBox(), errors.New("sptemp: common() over no spatial extents")
	}
	inter := boxes[0]
	for i, b := range boxes[1:] {
		if !inter.Intersects(b) {
			return EmptyBox(), fmt.Errorf("sptemp: common() failed: extent %d (%s) disjoint from intersection so far (%s)", i+1, b, inter)
		}
		inter = inter.Intersection(b)
	}
	return inter, nil
}

// UnionBoxes returns the bounding union of the given boxes. The union of an
// empty set is the empty box.
func UnionBoxes(boxes []Box) Box {
	u := EmptyBox()
	for _, b := range boxes {
		u = u.Union(b)
	}
	return u
}
