package sptemp

import (
	"fmt"
	"math"
)

// RefSystem names a spatial reference system, the paper's ref_system
// attribute ("long/lat, UTM ...") on non-primitive classes such as
// landcover.
type RefSystem string

// Reference systems used by the reproduction's workloads.
const (
	RefLongLat RefSystem = "long/lat"
	RefUTM     RefSystem = "UTM"
	RefRowCol  RefSystem = "row/col"
)

// RefUnit names the measurement unit of a reference system, the paper's
// ref_unit attribute ("meter, degree ...").
type RefUnit string

// Reference units used by the reproduction's workloads.
const (
	UnitMeter  RefUnit = "meter"
	UnitDegree RefUnit = "degree"
	UnitPixel  RefUnit = "pixel"
)

// Frame bundles a reference system with its unit; extents are only
// comparable within the same frame.
type Frame struct {
	System RefSystem
	Unit   RefUnit
}

// DefaultFrame is the frame synthetic scenes are generated in.
var DefaultFrame = Frame{System: RefUTM, Unit: UnitMeter}

// Compatible reports whether extents in the two frames may be compared or
// combined. Gaea requires rectification into a shared frame before
// derivation; the paper's example inputs are "remotely sensed and rectified
// Landsat TM data".
func (f Frame) Compatible(o Frame) bool { return f == o }

// String renders the frame as "system(unit)".
func (f Frame) String() string { return fmt.Sprintf("%s(%s)", f.System, f.Unit) }

// Validate checks the frame names against the known registry, so typos in
// class definitions are caught at definition time rather than at derivation
// time.
func (f Frame) Validate() error {
	switch f.System {
	case RefLongLat, RefUTM, RefRowCol:
	default:
		return fmt.Errorf("sptemp: unknown reference system %q", f.System)
	}
	switch f.Unit {
	case UnitMeter, UnitDegree, UnitPixel:
	default:
		return fmt.Errorf("sptemp: unknown reference unit %q", f.Unit)
	}
	if f.System == RefLongLat && f.Unit != UnitDegree {
		return fmt.Errorf("sptemp: reference system %q requires unit %q, got %q", RefLongLat, UnitDegree, f.Unit)
	}
	return nil
}

// Extent is the full spatio-temporal extent of a scientific object: where
// and when, in which frame. It is the unit the query layer matches
// predicates against and the derivation layer transfers invariantly (the
// "invariant" arcs of Figure 2).
type Extent struct {
	Frame   Frame
	Space   Box
	TimeIv  Interval
	HasTime bool // false for timeless objects (e.g. static terrain)
}

// NewExtent builds an extent with a time interval.
func NewExtent(frame Frame, space Box, timeIv Interval) Extent {
	return Extent{Frame: frame, Space: space, TimeIv: timeIv, HasTime: true}
}

// TimelessExtent builds an extent with no temporal component.
func TimelessExtent(frame Frame, space Box) Extent {
	return Extent{Frame: frame, Space: space}
}

// AtInstant builds an extent timestamped at a single instant.
func AtInstant(frame Frame, space Box, t AbsTime) Extent {
	return NewExtent(frame, space, Instant(t))
}

// Matches reports whether the extent satisfies a query predicate: the
// frames must be compatible, the spaces must intersect, and, when both
// carry time, the intervals must intersect. A predicate without time
// matches any timestamp and vice versa.
func (e Extent) Matches(pred Extent) bool {
	if !e.Frame.Compatible(pred.Frame) {
		return false
	}
	if !pred.Space.IsEmpty() && !e.Space.Intersects(pred.Space) {
		return false
	}
	if pred.HasTime && e.HasTime && !e.TimeIv.Intersects(pred.TimeIv) {
		return false
	}
	return true
}

// Equal reports whether two extents are identical.
func (e Extent) Equal(o Extent) bool {
	if e.Frame != o.Frame || e.HasTime != o.HasTime {
		return false
	}
	if !e.Space.Equal(o.Space) {
		return false
	}
	if e.HasTime && !e.TimeIv.Equal(o.TimeIv) {
		return false
	}
	return true
}

// String renders the extent for lineage explanations.
func (e Extent) String() string {
	if e.HasTime {
		return fmt.Sprintf("%s %s @ %s", e.Frame, e.Space, e.TimeIv)
	}
	return fmt.Sprintf("%s %s (timeless)", e.Frame, e.Space)
}

// CommonExtent implements common() over full extents: the frames must all
// be compatible and both the spatial and (where present) temporal
// components must share an intersection. It returns the shared extent.
func CommonExtent(exts []Extent) (Extent, error) {
	if len(exts) == 0 {
		return Extent{}, fmt.Errorf("sptemp: common() over no extents")
	}
	frame := exts[0].Frame
	boxes := make([]Box, 0, len(exts))
	ivs := make([]Interval, 0, len(exts))
	hasTime := false
	for i, e := range exts {
		if !e.Frame.Compatible(frame) {
			return Extent{}, fmt.Errorf("sptemp: common() failed: extent %d in frame %s, expected %s", i, e.Frame, frame)
		}
		boxes = append(boxes, e.Space)
		if e.HasTime {
			hasTime = true
			ivs = append(ivs, e.TimeIv)
		}
	}
	space, err := CommonBox(boxes)
	if err != nil {
		return Extent{}, err
	}
	out := Extent{Frame: frame, Space: space}
	if hasTime {
		iv, err := CommonInterval(ivs)
		if err != nil {
			return Extent{}, err
		}
		out.TimeIv = iv
		out.HasTime = true
	}
	return out, nil
}

// Degrees-to-meters conversion at the equator, used by ApproxReproject.
const metersPerDegree = 111_320.0

// ApproxReproject converts a box between the long/lat and UTM frames using
// an equatorial approximation. It exists so the reproduction can exercise
// frame-mismatch assertion failures and their remediation; it is not a
// geodesy library.
func ApproxReproject(b Box, from, to Frame) (Box, error) {
	if from == to {
		return b, nil
	}
	switch {
	case from.System == RefLongLat && to.System == RefUTM:
		return Box{
			MinX: b.MinX * metersPerDegree, MinY: b.MinY * metersPerDegree,
			MaxX: b.MaxX * metersPerDegree, MaxY: b.MaxY * metersPerDegree,
		}, nil
	case from.System == RefUTM && to.System == RefLongLat:
		return Box{
			MinX: b.MinX / metersPerDegree, MinY: b.MinY / metersPerDegree,
			MaxX: b.MaxX / metersPerDegree, MaxY: b.MaxY / metersPerDegree,
		}, nil
	default:
		return EmptyBox(), fmt.Errorf("sptemp: no reprojection from %s to %s", from, to)
	}
}

// SnapToGrid aligns the box outward to a grid of the given cell size, the
// operation rectification performs before co-registering scenes.
func SnapToGrid(b Box, cell float64) Box {
	if b.IsEmpty() || cell <= 0 {
		return b
	}
	return Box{
		MinX: math.Floor(b.MinX/cell) * cell,
		MinY: math.Floor(b.MinY/cell) * cell,
		MaxX: math.Ceil(b.MaxX/cell) * cell,
		MaxY: math.Ceil(b.MaxY/cell) * cell,
	}
}
