package sptemp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAbsTimeConversions(t *testing.T) {
	d := Date(1986, time.January, 15)
	if got := d.Time().Format("2006-01-02"); got != "1986-01-15" {
		t.Errorf("Date round trip = %s", got)
	}
	if !Date(1988, time.June, 1).Before(Date(1989, time.June, 1)) {
		t.Error("1988 should be before 1989")
	}
	if !Date(1989, time.June, 1).After(Date(1988, time.June, 1)) {
		t.Error("1989 should be after 1988")
	}
	a := Date(1990, time.March, 1)
	if got := a.Add(24 * time.Hour); got.Sub(a) != 24*time.Hour {
		t.Errorf("Add/Sub mismatch: %s", got.Sub(a))
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(Date(1988, 1, 1), Date(1989, 1, 1))
	if iv.IsEmpty() {
		t.Fatal("interval should be non-empty")
	}
	if !iv.Contains(Date(1988, 6, 15)) {
		t.Error("should contain midpoint")
	}
	if !iv.Contains(iv.Start) || !iv.Contains(iv.End) {
		t.Error("closed interval contains endpoints")
	}
	if iv.Contains(Date(1990, 1, 1)) {
		t.Error("should not contain later date")
	}
	// Constructor normalises order.
	swapped := NewInterval(Date(1989, 1, 1), Date(1988, 1, 1))
	if !swapped.Equal(iv) {
		t.Error("NewInterval should normalise endpoint order")
	}
	inst := Instant(Date(1988, 1, 1))
	if inst.Duration() != 0 {
		t.Error("instant has zero duration")
	}
	if EmptyInterval().Duration() != 0 {
		t.Error("empty interval has zero duration")
	}
}

func TestIntervalSetOps(t *testing.T) {
	a := NewInterval(Date(1988, 1, 1), Date(1988, 12, 31))
	b := NewInterval(Date(1988, 6, 1), Date(1989, 6, 1))
	inter := a.Intersection(b)
	if inter.Start != Date(1988, 6, 1) || inter.End != Date(1988, 12, 31) {
		t.Errorf("Intersection = %s", inter)
	}
	u := a.Union(b)
	if u.Start != a.Start || u.End != b.End {
		t.Errorf("Union = %s", u)
	}
	c := NewInterval(Date(1995, 1, 1), Date(1996, 1, 1))
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint intervals have empty intersection")
	}
	if !a.ContainsInterval(NewInterval(Date(1988, 3, 1), Date(1988, 4, 1))) {
		t.Error("a should contain inner interval")
	}
	if !a.ContainsInterval(EmptyInterval()) {
		t.Error("every interval contains empty")
	}
}

func TestAllenRelations(t *testing.T) {
	d := func(y int) AbsTime { return Date(y, 1, 1) }
	cases := []struct {
		a, b Interval
		want AllenRelation
	}{
		{NewInterval(d(1980), d(1981)), NewInterval(d(1982), d(1983)), AllenBefore},
		{NewInterval(d(1982), d(1983)), NewInterval(d(1980), d(1981)), AllenAfter},
		{NewInterval(d(1980), d(1982)), NewInterval(d(1982), d(1984)), AllenMeets},
		{NewInterval(d(1982), d(1984)), NewInterval(d(1980), d(1982)), AllenMetBy},
		{NewInterval(d(1980), d(1983)), NewInterval(d(1982), d(1985)), AllenOverlaps},
		{NewInterval(d(1982), d(1985)), NewInterval(d(1980), d(1983)), AllenOverlappedBy},
		{NewInterval(d(1980), d(1982)), NewInterval(d(1980), d(1985)), AllenStarts},
		{NewInterval(d(1980), d(1985)), NewInterval(d(1980), d(1982)), AllenStartedBy},
		{NewInterval(d(1982), d(1983)), NewInterval(d(1980), d(1985)), AllenDuring},
		{NewInterval(d(1980), d(1985)), NewInterval(d(1982), d(1983)), AllenContains},
		{NewInterval(d(1983), d(1985)), NewInterval(d(1980), d(1985)), AllenFinishes},
		{NewInterval(d(1980), d(1985)), NewInterval(d(1983), d(1985)), AllenFinishedBy},
		{NewInterval(d(1980), d(1985)), NewInterval(d(1980), d(1985)), AllenEqual},
	}
	for _, c := range cases {
		got, err := c.a.Relate(c.b)
		if err != nil {
			t.Fatalf("Relate(%s, %s): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Relate(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		// The converse relation must hold in the other direction.
		conv, err := c.b.Relate(c.a)
		if err != nil {
			t.Fatal(err)
		}
		if conv != c.want.Inverse() {
			t.Errorf("converse of %s: got %s, want %s", c.want, conv, c.want.Inverse())
		}
	}
	if _, err := EmptyInterval().Relate(NewInterval(d(1980), d(1981))); err == nil {
		t.Error("Relate with empty interval must error")
	}
}

func randInterval(r *rand.Rand) Interval {
	if r.Intn(12) == 0 {
		return EmptyInterval()
	}
	start := AbsTime(r.Int63n(1_000_000))
	return NewInterval(start, start+AbsTime(r.Int63n(100_000)))
}

func TestAllenRelationsArePartition(t *testing.T) {
	// Any two non-empty intervals stand in exactly one Allen relation, and
	// Relate must agree with Intersects for the disjoint relations.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		if a.IsEmpty() || b.IsEmpty() {
			_, err := a.Relate(b)
			return err != nil
		}
		rel, err := a.Relate(b)
		if err != nil {
			return false
		}
		disjoint := rel == AllenBefore || rel == AllenAfter
		return disjoint == !a.Intersects(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIntervalIntersectionCommutesAndShrinks(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		ab, ba := a.Intersection(b), b.Intersection(a)
		if !ab.Equal(ba) {
			return false
		}
		if !ab.IsEmpty() && (!a.ContainsInterval(ab) || !b.ContainsInterval(ab)) {
			return false
		}
		u := a.Union(b)
		return u.ContainsInterval(a) && u.ContainsInterval(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCommonInterval(t *testing.T) {
	ivs := []Interval{
		NewInterval(Date(1986, 1, 1), Date(1986, 3, 1)),
		NewInterval(Date(1986, 2, 1), Date(1986, 4, 1)),
		NewInterval(Date(1986, 2, 15), Date(1986, 3, 15)),
	}
	shared, err := CommonInterval(ivs)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Start != Date(1986, 2, 15) || shared.End != Date(1986, 3, 1) {
		t.Errorf("CommonInterval = %s", shared)
	}
	if _, err := CommonInterval(nil); err == nil {
		t.Error("common over nothing must fail")
	}
	ivs = append(ivs, NewInterval(Date(1990, 1, 1), Date(1991, 1, 1)))
	if _, err := CommonInterval(ivs); err == nil {
		t.Error("disjoint member must fail common()")
	}
}

func TestCommonTimestamps(t *testing.T) {
	ts := []AbsTime{Date(1986, 1, 1), Date(1986, 1, 2), Date(1986, 1, 3)}
	got, err := CommonTimestamps(ts, 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got != Date(1986, 1, 1) {
		t.Errorf("CommonTimestamps = %s", got)
	}
	if _, err := CommonTimestamps(ts, time.Hour); err == nil {
		t.Error("tolerance exceeded should fail")
	}
	if _, err := CommonTimestamps(nil, time.Hour); err == nil {
		t.Error("empty set should fail")
	}
}

func TestExtentMatches(t *testing.T) {
	frame := DefaultFrame
	scene := AtInstant(frame, box(0, 0, 100, 100), Date(1986, 1, 15))
	// Spatial + temporal predicate hitting the scene.
	pred := NewExtent(frame, box(50, 50, 60, 60), NewInterval(Date(1986, 1, 1), Date(1986, 2, 1)))
	if !scene.Matches(pred) {
		t.Error("scene should match overlapping predicate")
	}
	// Wrong frame.
	badFrame := NewExtent(Frame{System: RefLongLat, Unit: UnitDegree}, box(50, 50, 60, 60), pred.TimeIv)
	if scene.Matches(badFrame) {
		t.Error("frame mismatch must not match")
	}
	// Disjoint space.
	if scene.Matches(NewExtent(frame, box(500, 500, 600, 600), pred.TimeIv)) {
		t.Error("disjoint space must not match")
	}
	// Disjoint time.
	if scene.Matches(NewExtent(frame, box(50, 50, 60, 60), NewInterval(Date(1990, 1, 1), Date(1991, 1, 1)))) {
		t.Error("disjoint time must not match")
	}
	// Predicate without time matches any time.
	if !scene.Matches(TimelessExtent(frame, box(50, 50, 60, 60))) {
		t.Error("timeless predicate should match")
	}
	// Timeless object matches any time predicate.
	terrain := TimelessExtent(frame, box(0, 0, 100, 100))
	if !terrain.Matches(pred) {
		t.Error("timeless object should match timed predicate")
	}
}

func TestCommonExtent(t *testing.T) {
	frame := DefaultFrame
	exts := []Extent{
		AtInstant(frame, box(0, 0, 10, 10), Date(1986, 1, 1)),
		AtInstant(frame, box(5, 5, 15, 15), Date(1986, 1, 1)),
	}
	shared, err := CommonExtent(exts)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Space.Equal(box(5, 5, 10, 10)) {
		t.Errorf("shared space = %s", shared.Space)
	}
	if !shared.HasTime || shared.TimeIv.Start != Date(1986, 1, 1) {
		t.Errorf("shared time = %s", shared.TimeIv)
	}
	// Frame mismatch fails.
	exts[1].Frame = Frame{System: RefLongLat, Unit: UnitDegree}
	if _, err := CommonExtent(exts); err == nil {
		t.Error("frame mismatch must fail common()")
	}
	// Temporal mismatch fails.
	exts[1].Frame = frame
	exts[1].TimeIv = Instant(Date(1999, 1, 1))
	if _, err := CommonExtent(exts); err == nil {
		t.Error("temporal mismatch must fail common()")
	}
	if _, err := CommonExtent(nil); err == nil {
		t.Error("empty set must fail")
	}
}

func TestFrameValidate(t *testing.T) {
	if err := DefaultFrame.Validate(); err != nil {
		t.Errorf("default frame should validate: %v", err)
	}
	if err := (Frame{System: "mars", Unit: UnitMeter}).Validate(); err == nil {
		t.Error("unknown system must fail")
	}
	if err := (Frame{System: RefUTM, Unit: "cubit"}).Validate(); err == nil {
		t.Error("unknown unit must fail")
	}
	if err := (Frame{System: RefLongLat, Unit: UnitMeter}).Validate(); err == nil {
		t.Error("long/lat in meters must fail")
	}
}
