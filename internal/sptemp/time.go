package sptemp

import (
	"errors"
	"fmt"
	"time"
)

// AbsTime is the paper's "abstime" primitive class: an absolute timestamp
// with second resolution, stored as seconds since the Unix epoch. Gaea
// timestamps objects (e.g. a Landsat scene acquisition time) with AbsTime.
type AbsTime int64

// AbsTimeOf converts a time.Time to an AbsTime, truncating sub-second
// precision.
func AbsTimeOf(t time.Time) AbsTime { return AbsTime(t.Unix()) }

// Date is a convenience constructor for UTC calendar dates, the granularity
// global-change datasets are usually indexed at.
func Date(year int, month time.Month, day int) AbsTime {
	return AbsTimeOf(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time converts back to a time.Time in UTC.
func (a AbsTime) Time() time.Time { return time.Unix(int64(a), 0).UTC() }

// Before reports whether a precedes o.
func (a AbsTime) Before(o AbsTime) bool { return a < o }

// After reports whether a follows o.
func (a AbsTime) After(o AbsTime) bool { return a > o }

// Add returns the timestamp shifted by d (truncated to seconds).
func (a AbsTime) Add(d time.Duration) AbsTime { return a + AbsTime(d/time.Second) }

// Sub returns the duration a-o.
func (a AbsTime) Sub(o AbsTime) time.Duration { return time.Duration(a-o) * time.Second }

// String renders the timestamp as an RFC 3339 UTC date-time.
func (a AbsTime) String() string { return a.Time().Format(time.RFC3339) }

// Interval is a closed temporal interval [Start, End]. A degenerate
// interval with Start == End represents an instant; intervals with
// Start > End are empty.
type Interval struct {
	Start, End AbsTime
}

// ErrEmptyInterval is returned by operations that require a non-empty
// interval.
var ErrEmptyInterval = errors.New("sptemp: empty interval")

// NewInterval returns the interval [a, b], normalising the endpoint order.
func NewInterval(a, b AbsTime) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Start: a, End: b}
}

// Instant returns the degenerate interval holding exactly t.
func Instant(t AbsTime) Interval { return Interval{Start: t, End: t} }

// EmptyInterval returns the canonical empty interval.
func EmptyInterval() Interval { return Interval{Start: 1, End: 0} }

// IsEmpty reports whether the interval contains no instants.
func (iv Interval) IsEmpty() bool { return iv.Start > iv.End }

// Duration returns End-Start, or 0 for empty intervals.
func (iv Interval) Duration() time.Duration {
	if iv.IsEmpty() {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Contains reports whether t lies within the interval (inclusive).
func (iv Interval) Contains(t AbsTime) bool {
	return !iv.IsEmpty() && t >= iv.Start && t <= iv.End
}

// ContainsInterval reports whether o lies entirely within iv. Empty
// intervals are contained everywhere.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return o.Start >= iv.Start && o.End <= iv.End
}

// Intersects reports whether the two intervals share at least one instant.
func (iv Interval) Intersects(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.Start <= o.End && o.Start <= iv.End
}

// Intersection returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersection(o Interval) Interval {
	if !iv.Intersects(o) {
		return EmptyInterval()
	}
	out := iv
	if o.Start > out.Start {
		out.Start = o.Start
	}
	if o.End < out.End {
		out.End = o.End
	}
	return out
}

// Union returns the smallest interval covering both operands.
func (iv Interval) Union(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	out := iv
	if o.Start < out.Start {
		out.Start = o.Start
	}
	if o.End > out.End {
		out.End = o.End
	}
	return out
}

// Equal reports whether the intervals cover the same instants. All empty
// intervals compare equal.
func (iv Interval) Equal(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return iv.IsEmpty() && o.IsEmpty()
	}
	return iv == o
}

// String renders the interval as "[start, end]".
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%s, %s]", iv.Start, iv.End)
}

// AllenRelation enumerates Allen's thirteen interval relations [Allen 1983],
// which the paper cites as the established temporal semantics Gaea builds
// on.
type AllenRelation int

// The thirteen Allen relations between non-empty intervals a and b.
const (
	AllenBefore AllenRelation = iota
	AllenAfter
	AllenMeets
	AllenMetBy
	AllenOverlaps
	AllenOverlappedBy
	AllenStarts
	AllenStartedBy
	AllenDuring
	AllenContains
	AllenFinishes
	AllenFinishedBy
	AllenEqual
)

var allenNames = [...]string{
	AllenBefore:       "before",
	AllenAfter:        "after",
	AllenMeets:        "meets",
	AllenMetBy:        "met-by",
	AllenOverlaps:     "overlaps",
	AllenOverlappedBy: "overlapped-by",
	AllenStarts:       "starts",
	AllenStartedBy:    "started-by",
	AllenDuring:       "during",
	AllenContains:     "contains",
	AllenFinishes:     "finishes",
	AllenFinishedBy:   "finished-by",
	AllenEqual:        "equal",
}

// String returns the conventional name of the relation.
func (r AllenRelation) String() string {
	if r < 0 || int(r) >= len(allenNames) {
		return fmt.Sprintf("AllenRelation(%d)", int(r))
	}
	return allenNames[r]
}

// Inverse returns the converse relation (e.g. before ↔ after). Equal is its
// own inverse.
func (r AllenRelation) Inverse() AllenRelation {
	switch r {
	case AllenBefore:
		return AllenAfter
	case AllenAfter:
		return AllenBefore
	case AllenMeets:
		return AllenMetBy
	case AllenMetBy:
		return AllenMeets
	case AllenOverlaps:
		return AllenOverlappedBy
	case AllenOverlappedBy:
		return AllenOverlaps
	case AllenStarts:
		return AllenStartedBy
	case AllenStartedBy:
		return AllenStarts
	case AllenDuring:
		return AllenContains
	case AllenContains:
		return AllenDuring
	case AllenFinishes:
		return AllenFinishedBy
	case AllenFinishedBy:
		return AllenFinishes
	default:
		return AllenEqual
	}
}

// Relate classifies the relation of iv to o. Both intervals must be
// non-empty.
func (iv Interval) Relate(o Interval) (AllenRelation, error) {
	if iv.IsEmpty() || o.IsEmpty() {
		return AllenEqual, ErrEmptyInterval
	}
	switch {
	case iv.Start == o.Start && iv.End == o.End:
		return AllenEqual, nil
	case iv.End < o.Start:
		return AllenBefore, nil
	case o.End < iv.Start:
		return AllenAfter, nil
	case iv.End == o.Start:
		return AllenMeets, nil
	case o.End == iv.Start:
		return AllenMetBy, nil
	case iv.Start == o.Start:
		if iv.End < o.End {
			return AllenStarts, nil
		}
		return AllenStartedBy, nil
	case iv.End == o.End:
		if iv.Start > o.Start {
			return AllenFinishes, nil
		}
		return AllenFinishedBy, nil
	case iv.Start > o.Start && iv.End < o.End:
		return AllenDuring, nil
	case iv.Start < o.Start && iv.End > o.End:
		return AllenContains, nil
	case iv.Start < o.Start:
		return AllenOverlaps, nil
	default:
		return AllenOverlappedBy, nil
	}
}

// CommonInterval implements the common() assertion over temporal extents:
// all intervals must pairwise share the running intersection, as required
// before a process such as P20 may fire.
func CommonInterval(ivs []Interval) (Interval, error) {
	if len(ivs) == 0 {
		return EmptyInterval(), errors.New("sptemp: common() over no temporal extents")
	}
	inter := ivs[0]
	for i, iv := range ivs[1:] {
		if !inter.Intersects(iv) {
			return EmptyInterval(), fmt.Errorf("sptemp: common() failed: interval %d (%s) disjoint from intersection so far (%s)", i+1, iv, inter)
		}
		inter = inter.Intersection(iv)
	}
	return inter, nil
}

// CommonTimestamps is the instant form of common(): it succeeds when all
// timestamps fall within the given tolerance of each other, and returns the
// earliest. Gaea uses a tolerance because "the same time" for satellite
// passes means the same acquisition window, not the same second.
func CommonTimestamps(ts []AbsTime, tol time.Duration) (AbsTime, error) {
	if len(ts) == 0 {
		return 0, errors.New("sptemp: common() over no timestamps")
	}
	min, max := ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if max.Sub(min) > tol {
		return 0, fmt.Errorf("sptemp: common() failed: timestamps span %s exceeding tolerance %s", max.Sub(min), tol)
	}
	return min, nil
}
