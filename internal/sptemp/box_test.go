package sptemp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func box(x1, y1, x2, y2 float64) Box { return NewBox(x1, y1, x2, y2) }

func TestNewBoxNormalises(t *testing.T) {
	b := NewBox(10, 20, 0, 5)
	if b.MinX != 0 || b.MinY != 5 || b.MaxX != 10 || b.MaxY != 20 {
		t.Fatalf("NewBox did not normalise corners: %+v", b)
	}
}

func TestEmptyBox(t *testing.T) {
	e := EmptyBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBox should be empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Fatal("empty box must have zero measure")
	}
	if e.Intersects(box(0, 0, 1, 1)) {
		t.Fatal("empty box must not intersect anything")
	}
	if e.ContainsPoint(0, 0) {
		t.Fatal("empty box must not contain points")
	}
	if _, _, err := e.Center(); err == nil {
		t.Fatal("Center of empty box should error")
	}
}

func TestBoxAreaWidthHeight(t *testing.T) {
	b := box(1, 2, 4, 6)
	if got := b.Width(); got != 3 {
		t.Errorf("Width = %g, want 3", got)
	}
	if got := b.Height(); got != 4 {
		t.Errorf("Height = %g, want 4", got)
	}
	if got := b.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
}

func TestBoxContains(t *testing.T) {
	outer := box(0, 0, 10, 10)
	inner := box(2, 2, 8, 8)
	if !outer.Contains(inner) {
		t.Error("outer should contain inner")
	}
	if inner.Contains(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.Contains(outer) {
		t.Error("a box should contain itself")
	}
	if !outer.Contains(EmptyBox()) {
		t.Error("every box contains the empty box")
	}
	if EmptyBox().Contains(outer) {
		t.Error("empty box contains nothing non-empty")
	}
}

func TestBoxIntersection(t *testing.T) {
	a := box(0, 0, 10, 10)
	b := box(5, 5, 15, 15)
	got := a.Intersection(b)
	want := box(5, 5, 10, 10)
	if !got.Equal(want) {
		t.Errorf("Intersection = %s, want %s", got, want)
	}
	c := box(20, 20, 30, 30)
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint boxes must have empty intersection")
	}
	// Touching edges intersect with zero area.
	d := box(10, 0, 20, 10)
	edge := a.Intersection(d)
	if edge.IsEmpty() || edge.Area() != 0 {
		t.Errorf("edge intersection = %s, want degenerate non-empty", edge)
	}
}

func TestBoxUnion(t *testing.T) {
	a := box(0, 0, 1, 1)
	b := box(5, 5, 6, 6)
	got := a.Union(b)
	want := box(0, 0, 6, 6)
	if !got.Equal(want) {
		t.Errorf("Union = %s, want %s", got, want)
	}
	if !a.Union(EmptyBox()).Equal(a) {
		t.Error("union with empty is identity")
	}
	if !EmptyBox().Union(a).Equal(a) {
		t.Error("union with empty is identity (flipped)")
	}
}

func TestBoxExpand(t *testing.T) {
	a := box(0, 0, 2, 2)
	grown := a.Expand(1)
	if !grown.Equal(box(-1, -1, 3, 3)) {
		t.Errorf("Expand(1) = %s", grown)
	}
	shrunk := a.Expand(-2)
	if !shrunk.IsEmpty() {
		t.Errorf("Expand(-2) should be empty, got %s", shrunk)
	}
}

func TestBoxCenterDistance(t *testing.T) {
	a := box(0, 0, 2, 2)
	b := box(3, 0, 5, 2) // centers (1,1) and (4,1)
	d, err := a.CenterDistance(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("CenterDistance = %g, want 3", d)
	}
	if _, err := a.CenterDistance(EmptyBox()); err == nil {
		t.Error("CenterDistance to empty should error")
	}
}

func TestCommonBox(t *testing.T) {
	shared, err := CommonBox([]Box{box(0, 0, 10, 10), box(5, 5, 15, 15), box(5, 0, 12, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Equal(box(5, 5, 10, 8)) {
		t.Errorf("CommonBox = %s, want (5,5,10,8)", shared)
	}
	if _, err := CommonBox(nil); err == nil {
		t.Error("CommonBox over empty set must fail")
	}
	if _, err := CommonBox([]Box{box(0, 0, 1, 1), box(2, 2, 3, 3)}); err == nil {
		t.Error("CommonBox over disjoint boxes must fail")
	}
}

func TestUnionBoxes(t *testing.T) {
	u := UnionBoxes([]Box{box(0, 0, 1, 1), box(4, 4, 5, 5), box(-1, 2, 0, 3)})
	if !u.Equal(box(-1, 0, 5, 5)) {
		t.Errorf("UnionBoxes = %s", u)
	}
	if !UnionBoxes(nil).IsEmpty() {
		t.Error("union of no boxes is empty")
	}
}

func TestBoxString(t *testing.T) {
	if got := box(1, 2, 3, 4).String(); got != "(1,2,3,4)" {
		t.Errorf("String = %q", got)
	}
	if got := EmptyBox().String(); got != "(empty)" {
		t.Errorf("empty String = %q", got)
	}
}

// randBox generates boxes (including occasional empty ones) for property
// tests.
func randBox(r *rand.Rand) Box {
	if r.Intn(10) == 0 {
		return EmptyBox()
	}
	x := r.Float64()*200 - 100
	y := r.Float64()*200 - 100
	return NewBox(x, y, x+r.Float64()*50, y+r.Float64()*50)
}

func TestBoxIntersectionPropertyBased(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Intersection is commutative and contained in both operands.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		ab := a.Intersection(b)
		ba := b.Intersection(a)
		if !ab.Equal(ba) {
			return false
		}
		if !ab.IsEmpty() && (!a.Contains(ab) || !b.Contains(ab)) {
			return false
		}
		// Union contains both operands.
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBoxIntersectsIffNonEmptyIntersection(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		return a.Intersects(b) == !a.Intersection(b).IsEmpty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoxUnionIsSmallestCover(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randBox(r), randBox(r)
		u := a.Union(b)
		if a.IsEmpty() && b.IsEmpty() {
			return u.IsEmpty()
		}
		// Shrinking the union on any side must lose a or b.
		eps := 1e-9
		for _, s := range []Box{
			{u.MinX + eps, u.MinY, u.MaxX, u.MaxY},
			{u.MinX, u.MinY + eps, u.MaxX, u.MaxY},
			{u.MinX, u.MinY, u.MaxX - eps, u.MaxY},
			{u.MinX, u.MinY, u.MaxX, u.MaxY - eps},
		} {
			if s.Contains(a) && s.Contains(b) {
				// Degenerate boxes (zero width/height) legitimately allow
				// this when the epsilon does not cross a boundary; check
				// measure instead.
				if u.Area() > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCommonBoxIsContainedInAll(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := NewBox(0, 0, 100, 100)
		n := 2 + r.Intn(5)
		boxes := make([]Box, n)
		for i := range boxes {
			// All boxes share the central region, so common() must succeed.
			boxes[i] = NewBox(r.Float64()*40, r.Float64()*40, 60+r.Float64()*40, 60+r.Float64()*40)
		}
		shared, err := CommonBox(boxes)
		if err != nil {
			return false
		}
		for _, b := range boxes {
			if !b.Contains(shared) {
				return false
			}
		}
		return base.Contains(shared)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSnapToGrid(t *testing.T) {
	b := box(1.2, 3.7, 8.1, 9.9)
	s := SnapToGrid(b, 2)
	if !s.Equal(box(0, 2, 10, 10)) {
		t.Errorf("SnapToGrid = %s", s)
	}
	if !s.Contains(b) {
		t.Error("snapped box must contain original")
	}
	if got := SnapToGrid(b, 0); !got.Equal(b) {
		t.Error("zero cell size should be identity")
	}
}

func TestApproxReproject(t *testing.T) {
	ll := Frame{System: RefLongLat, Unit: UnitDegree}
	utm := Frame{System: RefUTM, Unit: UnitMeter}
	b := box(1, 2, 3, 4)
	m, err := ApproxReproject(b, ll, utm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MinX-111320) > 1e-6 {
		t.Errorf("MinX = %g", m.MinX)
	}
	back, err := ApproxReproject(m, utm, ll)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.MinX-b.MinX) > 1e-9 || math.Abs(back.MaxY-b.MaxY) > 1e-9 {
		t.Errorf("round trip failed: %s", back)
	}
	if _, err := ApproxReproject(b, ll, Frame{System: RefRowCol, Unit: UnitPixel}); err == nil {
		t.Error("unsupported reprojection should error")
	}
	if same, err := ApproxReproject(b, ll, ll); err != nil || !same.Equal(b) {
		t.Error("identity reprojection should be exact")
	}
}
