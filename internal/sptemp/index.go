package sptemp

import (
	"sort"
)

// GridIndex is a uniform-grid spatial index mapping boxes to uint64 ids
// (object identifiers). Gaea's query layer uses it for step 1 of the
// retrieval sequence (§2.1.5): find the stored objects whose spatial extent
// intersects the query box. A uniform grid is adequate because scene
// extents in a study are similarly sized; the index degrades gracefully to
// a scan when boxes are huge.
type GridIndex struct {
	cell    float64
	cells   map[gridKey][]uint64
	entries map[uint64]Box
}

type gridKey struct{ cx, cy int }

// NewGridIndex returns a grid index with the given cell size. Cell size
// must be positive.
func NewGridIndex(cell float64) *GridIndex {
	if cell <= 0 {
		cell = 1
	}
	return &GridIndex{
		cell:    cell,
		cells:   make(map[gridKey][]uint64),
		entries: make(map[uint64]Box),
	}
}

// Len returns the number of indexed entries.
func (g *GridIndex) Len() int { return len(g.entries) }

func (g *GridIndex) keysFor(b Box) []gridKey {
	if b.IsEmpty() {
		return nil
	}
	x0 := int(b.MinX / g.cell)
	x1 := int(b.MaxX / g.cell)
	y0 := int(b.MinY / g.cell)
	y1 := int(b.MaxY / g.cell)
	if b.MinX < 0 {
		x0--
	}
	if b.MaxX < 0 {
		x1--
	}
	if b.MinY < 0 {
		y0--
	}
	if b.MaxY < 0 {
		y1--
	}
	keys := make([]gridKey, 0, (x1-x0+1)*(y1-y0+1))
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			keys = append(keys, gridKey{cx, cy})
		}
	}
	return keys
}

// Insert adds (or re-adds) id with the given box. Inserting an existing id
// replaces its previous box.
func (g *GridIndex) Insert(id uint64, b Box) {
	if _, ok := g.entries[id]; ok {
		g.Delete(id)
	}
	g.entries[id] = b
	for _, k := range g.keysFor(b) {
		g.cells[k] = append(g.cells[k], id)
	}
}

// Delete removes id from the index. Deleting an absent id is a no-op.
func (g *GridIndex) Delete(id uint64) {
	b, ok := g.entries[id]
	if !ok {
		return
	}
	delete(g.entries, id)
	for _, k := range g.keysFor(b) {
		ids := g.cells[k]
		for i, v := range ids {
			if v == id {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				break
			}
		}
		if len(ids) == 0 {
			delete(g.cells, k)
		} else {
			g.cells[k] = ids
		}
	}
}

// Search returns the ids whose boxes intersect q, sorted ascending for
// deterministic results.
func (g *GridIndex) Search(q Box) []uint64 {
	if q.IsEmpty() {
		return nil
	}
	seen := make(map[uint64]struct{})
	var out []uint64
	for _, k := range g.keysFor(q) {
		for _, id := range g.cells[k] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			if g.entries[id].Intersects(q) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns every indexed id, sorted ascending.
func (g *GridIndex) All() []uint64 {
	out := make([]uint64, 0, len(g.entries))
	for id := range g.entries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntervalIndex indexes temporal intervals by id for overlap queries. It
// keeps entries sorted by start time; stabbing and range queries binary-
// search the start list and filter by end, which is O(log n + answer + k)
// where k is the number of long intervals spanning the probe — fine for the
// scene-catalogue sizes Gaea manages.
type IntervalIndex struct {
	byStart []intervalEntry // sorted by Start, then id
	byID    map[uint64]Interval
	dirty   bool
}

type intervalEntry struct {
	iv Interval
	id uint64
}

// NewIntervalIndex returns an empty temporal index.
func NewIntervalIndex() *IntervalIndex {
	return &IntervalIndex{byID: make(map[uint64]Interval)}
}

// Len returns the number of indexed entries.
func (x *IntervalIndex) Len() int { return len(x.byID) }

// Insert adds (or replaces) id with the given interval.
func (x *IntervalIndex) Insert(id uint64, iv Interval) {
	if _, ok := x.byID[id]; ok {
		x.Delete(id)
	}
	x.byID[id] = iv
	x.byStart = append(x.byStart, intervalEntry{iv: iv, id: id})
	x.dirty = true
}

// Delete removes id from the index.
func (x *IntervalIndex) Delete(id uint64) {
	if _, ok := x.byID[id]; !ok {
		return
	}
	delete(x.byID, id)
	for i, e := range x.byStart {
		if e.id == id {
			x.byStart = append(x.byStart[:i], x.byStart[i+1:]...)
			break
		}
	}
}

func (x *IntervalIndex) ensureSorted() {
	if !x.dirty {
		return
	}
	sort.Slice(x.byStart, func(i, j int) bool {
		if x.byStart[i].iv.Start != x.byStart[j].iv.Start {
			return x.byStart[i].iv.Start < x.byStart[j].iv.Start
		}
		return x.byStart[i].id < x.byStart[j].id
	})
	x.dirty = false
}

// Search returns the ids whose intervals intersect q, sorted ascending.
func (x *IntervalIndex) Search(q Interval) []uint64 {
	if q.IsEmpty() {
		return nil
	}
	x.ensureSorted()
	// Every match has Start <= q.End; scan that prefix and filter by End.
	n := sort.Search(len(x.byStart), func(i int) bool { return x.byStart[i].iv.Start > q.End })
	var out []uint64
	for _, e := range x.byStart[:n] {
		if e.iv.Intersects(q) {
			out = append(out, e.id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nearest returns up to k ids whose intervals are closest to the instant t
// (distance 0 when the interval contains t), ordered by distance then id.
// Temporal interpolation uses it to pick bracketing observations.
func (x *IntervalIndex) Nearest(t AbsTime, k int) []uint64 {
	x.ensureSorted()
	type cand struct {
		dist int64
		id   uint64
	}
	cands := make([]cand, 0, len(x.byStart))
	for _, e := range x.byStart {
		var d int64
		switch {
		case e.iv.Contains(t):
			d = 0
		case t < e.iv.Start:
			d = int64(e.iv.Start - t)
		default:
			d = int64(t - e.iv.End)
		}
		cands = append(cands, cand{dist: d, id: e.id})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]uint64, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.id)
	}
	return out
}

// All returns every indexed id, sorted ascending.
func (x *IntervalIndex) All() []uint64 {
	out := make([]uint64, 0, len(x.byID))
	for id := range x.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
