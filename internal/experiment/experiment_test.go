package experiment

import (
	"context"
	"errors"
	"testing"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/object"
	"gaea/internal/process"
	"gaea/internal/raster"
	"gaea/internal/sptemp"
	"gaea/internal/storage"
	"gaea/internal/task"
	"gaea/internal/value"
)

type world struct {
	st   *storage.Store
	obj  *object.Store
	exec *task.Executor
	mgr  *Manager
}

func newWorld(t *testing.T) *world {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cat, err := catalog.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*catalog.Class{
		{
			Name: "scene", Kind: catalog.KindBase,
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
		{
			Name: "ndvi", Kind: catalog.KindDerived, DerivedBy: "ndvi_map",
			Attrs: []catalog.Attr{{Name: "data", Type: value.TypeImage}},
			Frame: sptemp.DefaultFrame, HasSpatial: true, HasTemporal: true,
		},
	} {
		if err := cat.Define(c); err != nil {
			t.Fatal(err)
		}
	}
	reg := adt.NewStandardRegistry()
	obj, err := object.Open(st, cat)
	if err != nil {
		t.Fatal(err)
	}
	pmgr, err := process.OpenManager(st, cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pmgr.Define(`
DEFINE PROCESS ndvi_map (
  OUTPUT o ndvi
  ARGUMENT ( red scene )
  ARGUMENT ( nir scene )
  TEMPLATE {
    MAPPINGS:
      o.data = ndvi ( red.data, nir.data );
      o.spatialextent = red.spatialextent;
      o.timestamp = red.timestamp;
  }
)`); err != nil {
		t.Fatal(err)
	}
	exec, err := task.OpenExecutor(st, cat, reg, obj, pmgr)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := OpenManager(st, exec)
	if err != nil {
		t.Fatal(err)
	}
	return &world{st: st, obj: obj, exec: exec, mgr: mgr}
}

func (w *world) insertPair(t *testing.T) (red, nir object.OID) {
	t.Helper()
	l := raster.NewLandscape(3)
	spec := raster.SceneSpec{OriginX: 0, OriginY: 0, CellSize: 30, Rows: 8, Cols: 8, DayOfYear: 180, Year: 1986}
	r, err := l.GenerateBand(spec, raster.BandRed)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l.GenerateBand(spec, raster.BandNIR)
	if err != nil {
		t.Fatal(err)
	}
	day := sptemp.Date(1986, 6, 29)
	mk := func(img *raster.Image) object.OID {
		oid, err := w.obj.Insert(&object.Object{
			Class:  "scene",
			Attrs:  map[string]value.Value{"data": value.Image{Img: img}},
			Extent: sptemp.AtInstant(sptemp.DefaultFrame, sptemp.NewBox(0, 0, 240, 240), day),
		})
		if err != nil {
			t.Fatal(err)
		}
		return oid
	}
	return mk(r), mk(n)
}

func TestCreateAttachGet(t *testing.T) {
	w := newWorld(t)
	red, nir := w.insertPair(t)
	if err := w.mgr.Create(&Experiment{
		Name: "africa-ndvi-1986", User: "alice",
		Params: map[string]string{"region": "africa", "year": "1986"},
	}); err != nil {
		t.Fatal(err)
	}
	tk, _, err := w.exec.Run(context.Background(), "ndvi_map", map[string][]object.OID{"red": {red}, "nir": {nir}}, task.RunOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mgr.AttachTask("africa-ndvi-1986", tk.ID); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-attach.
	if err := w.mgr.AttachTask("africa-ndvi-1986", tk.ID); err != nil {
		t.Fatal(err)
	}
	e, err := w.mgr.Get("africa-ndvi-1986")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tasks) != 1 || e.Params["year"] != "1986" {
		t.Errorf("experiment = %+v", e)
	}
	// Errors.
	if err := w.mgr.Create(&Experiment{Name: "africa-ndvi-1986"}); !errors.Is(err, ErrExists) {
		t.Errorf("dup err = %v", err)
	}
	if err := w.mgr.Create(&Experiment{Name: "9bad"}); !errors.Is(err, ErrBad) {
		t.Errorf("bad name err = %v", err)
	}
	if err := w.mgr.AttachTask("ghost", tk.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing exp err = %v", err)
	}
	if err := w.mgr.AttachTask("africa-ndvi-1986", 999); !errors.Is(err, ErrBad) {
		t.Errorf("missing task err = %v", err)
	}
	if _, err := w.mgr.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get missing err = %v", err)
	}
}

func TestReproduceExperiment(t *testing.T) {
	w := newWorld(t)
	red, nir := w.insertPair(t)
	w.mgr.Create(&Experiment{Name: "repro-study", User: "alice"})
	tk, _, err := w.exec.Run(context.Background(), "ndvi_map", map[string][]object.OID{"red": {red}, "nir": {nir}}, task.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.mgr.AttachTask("repro-study", tk.ID)

	report, err := w.mgr.Reproduce(context.Background(), "repro-study", task.RunOptions{User: "referee"})
	if err != nil {
		t.Fatal(err)
	}
	if !report.AllIdentical() {
		t.Errorf("reproduction should be identical: %+v", report.PerTask)
	}
	if report.PerTask[0].Fresh == tk.ID {
		t.Error("reproduction must be a fresh task")
	}
	// Reproducing an unknown experiment fails.
	if _, err := w.mgr.Reproduce(context.Background(), "ghost", task.RunOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing err = %v", err)
	}
	// Empty experiment: AllIdentical is false (nothing confirmed).
	w.mgr.Create(&Experiment{Name: "empty"})
	empty, _ := w.mgr.Reproduce(context.Background(), "empty", task.RunOptions{})
	if empty.AllIdentical() {
		t.Error("empty experiment confirms nothing")
	}
}

func TestReproduceSkipsExternalTasks(t *testing.T) {
	w := newWorld(t)
	red, _ := w.insertPair(t)
	w.mgr.Create(&Experiment{Name: "with-external"})
	ext, err := w.exec.RecordExternal("data_load", nil, red, "scene", task.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.mgr.AttachTask("with-external", ext.ID)
	report, err := w.mgr.Reproduce(context.Background(), "with-external", task.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.PerTask[0].Err == "" {
		t.Error("external task should be reported as not re-runnable")
	}
}

func TestCompareExperiments(t *testing.T) {
	w := newWorld(t)
	red, nir := w.insertPair(t)
	w.mgr.Create(&Experiment{Name: "study-a", User: "alice"})
	w.mgr.Create(&Experiment{Name: "study-b", User: "bob"})

	tk, _, err := w.exec.Run(context.Background(), "ndvi_map", map[string][]object.OID{"red": {red}, "nir": {nir}}, task.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.mgr.AttachTask("study-a", tk.ID)

	onlyA, onlyB, err := w.mgr.Compare("study-a", "study-b")
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyA) != 1 || onlyA[0] != "ndvi_map@v1" || len(onlyB) != 0 {
		t.Errorf("Compare = %v / %v", onlyA, onlyB)
	}
	if _, _, err := w.mgr.Compare("study-a", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("compare missing err = %v", err)
	}
}

func TestExperimentPersistence(t *testing.T) {
	w := newWorld(t)
	red, nir := w.insertPair(t)
	w.mgr.Create(&Experiment{Name: "persisted", User: "alice"})
	tk, _, _ := w.exec.Run(context.Background(), "ndvi_map", map[string][]object.OID{"red": {red}, "nir": {nir}}, task.RunOptions{})
	w.mgr.AttachTask("persisted", tk.ID)

	m2, err := OpenManager(w.st, w.exec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m2.Get("persisted")
	if err != nil || len(e.Tasks) != 1 {
		t.Errorf("reload = %+v, %v", e, err)
	}
	if m2.Names()[0] != "persisted" {
		t.Errorf("Names = %v", m2.Names())
	}
}
