// Package experiment implements the experiment manager of the high-level
// semantics layer (Figure 1; §2 goal 4): named experiments bundle the
// concepts studied, the processes applied, and the tasks performed, so an
// investigation can be reviewed, compared, and — the paper's headline
// capability — reproduced: "Experiments can be reproduced, allowing rapid
// and reliable confirmation of results" (§4.2).
package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"gaea/internal/storage"
	"gaea/internal/task"
)

// Errors returned by the manager.
var (
	ErrExists   = errors.New("experiment: already defined")
	ErrNotFound = errors.New("experiment: not found")
	ErrBad      = errors.New("experiment: invalid definition")
)

// Experiment is one recorded investigation.
type Experiment struct {
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
	User string `json:"user,omitempty"`
	// Concepts names the concepts under study.
	Concepts []string `json:"concepts,omitempty"`
	// Params records the experiment-level parameters, for the record: the
	// paper stresses that the same method with different parameters is a
	// different process, and the experiment notes which was chosen.
	Params map[string]string `json:"params,omitempty"`
	// Tasks are the derivations performed under this experiment, in
	// execution order.
	Tasks []task.ID `json:"tasks,omitempty"`
}

var identRe = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9_ -]*$`)

// Manager persists experiments and drives reproduction.
type Manager struct {
	mu    sync.RWMutex
	store *storage.Store
	exec  *task.Executor
	exps  map[string]*Experiment
}

const expKeyPrefix = "experiment/"

// OpenManager loads experiments from the store.
func OpenManager(st *storage.Store, exec *task.Executor) (*Manager, error) {
	m := &Manager{store: st, exec: exec, exps: make(map[string]*Experiment)}
	for _, key := range st.MetaKeys(expKeyPrefix) {
		raw, ok := st.MetaGet(key)
		if !ok {
			continue
		}
		var e Experiment
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("experiment: corrupt definition at %s: %w", key, err)
		}
		m.exps[e.Name] = &e
	}
	return m, nil
}

// Create registers a new experiment.
func (m *Manager) Create(e *Experiment) error {
	if !identRe.MatchString(e.Name) {
		return fmt.Errorf("%w: bad name %q", ErrBad, e.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.exps[e.Name]; dup {
		return fmt.Errorf("%w: %s", ErrExists, e.Name)
	}
	cp := *e
	cp.Tasks = append([]task.ID(nil), e.Tasks...)
	if err := m.persistLocked(&cp); err != nil {
		return err
	}
	m.exps[cp.Name] = &cp
	return nil
}

func (m *Manager) persistLocked(e *Experiment) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return m.store.MetaSet(expKeyPrefix+e.Name, raw)
}

// AttachTask records that a task was performed under an experiment.
func (m *Manager) AttachTask(name string, id task.ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.exps[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if _, err := m.exec.Get(id); err != nil {
		return fmt.Errorf("%w: task %d unknown", ErrBad, id)
	}
	for _, existing := range e.Tasks {
		if existing == id {
			return nil // idempotent
		}
	}
	e.Tasks = append(e.Tasks, id)
	return m.persistLocked(e)
}

// Get returns an experiment by name.
func (m *Manager) Get(name string) (*Experiment, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.exps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	cp := *e
	cp.Tasks = append([]task.ID(nil), e.Tasks...)
	return &cp, nil
}

// Names lists all experiments, sorted.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.exps))
	for n := range m.exps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ReproductionReport summarises a reproduction run.
type ReproductionReport struct {
	Experiment string
	// PerTask lists one entry per original task, in order.
	PerTask []TaskReproduction
}

// TaskReproduction pairs an original task with its reproduction outcome.
type TaskReproduction struct {
	Original task.ID
	Fresh    task.ID
	// Identical reports whether the reproduced output matched the original
	// attribute-for-attribute.
	Identical bool
	// Err records a per-task failure (the reproduction continues past it).
	Err string
}

// AllIdentical reports whether every task reproduced exactly.
func (r *ReproductionReport) AllIdentical() bool {
	for _, tr := range r.PerTask {
		if tr.Err != "" || !tr.Identical {
			return false
		}
	}
	return len(r.PerTask) > 0
}

// Reproduce re-executes every task of an experiment against the recorded
// process versions and inputs, comparing outputs — external confirmation
// of the experiment's results.
func (m *Manager) Reproduce(ctx context.Context, name string, opts task.RunOptions) (*ReproductionReport, error) {
	e, err := m.Get(name)
	if err != nil {
		return nil, err
	}
	report := &ReproductionReport{Experiment: name}
	for _, id := range e.Tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		orig, err := m.exec.Get(id)
		if err != nil {
			report.PerTask = append(report.PerTask, TaskReproduction{Original: id, Err: err.Error()})
			continue
		}
		if orig.Version == 0 {
			// External derivations (interpolation, loads) are not
			// re-runnable through the process manager; record and skip.
			report.PerTask = append(report.PerTask, TaskReproduction{Original: id, Err: "external derivation; not re-runnable"})
			continue
		}
		fresh, same, err := m.exec.Reproduce(ctx, id, opts)
		tr := TaskReproduction{Original: id, Identical: same}
		if err != nil {
			tr.Err = err.Error()
		} else {
			tr.Fresh = fresh.ID
		}
		report.PerTask = append(report.PerTask, tr)
	}
	return report, nil
}

// Compare reports how two experiments' derivations differ: processes used
// by one but not the other — the cross-scientist comparison of §1 ("there
// is no way to share and compare the produced data unless the derivation
// procedures are known").
func (m *Manager) Compare(a, b string) (onlyA, onlyB []string, err error) {
	ea, err := m.Get(a)
	if err != nil {
		return nil, nil, err
	}
	eb, err := m.Get(b)
	if err != nil {
		return nil, nil, err
	}
	procs := func(e *Experiment) map[string]bool {
		out := map[string]bool{}
		for _, id := range e.Tasks {
			if t, err := m.exec.Get(id); err == nil {
				out[fmt.Sprintf("%s@v%d", t.Process, t.Version)] = true
			}
		}
		return out
	}
	pa, pb := procs(ea), procs(eb)
	for p := range pa {
		if !pb[p] {
			onlyA = append(onlyA, p)
		}
	}
	for p := range pb {
		if !pa[p] {
			onlyB = append(onlyB, p)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB, nil
}
