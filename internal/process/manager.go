package process

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"gaea/internal/adt"
	"gaea/internal/catalog"
	"gaea/internal/storage"
)

// Manager is the persistent process registry. It enforces the paper's
// versioning rule: "a new process may be defined by editing an old process
// ... In no case is the old process overwritten" (§2.1.4 observation 3) —
// Redefine appends a new version; old versions remain addressable so tasks
// recorded against them stay reproducible.
type Manager struct {
	mu        sync.RWMutex
	store     *storage.Store
	cat       *catalog.Catalog
	reg       *adt.Registry
	procs     map[string][]*Process  // name → versions ascending
	compounds map[string][]*Compound // name → versions ascending
}

// Errors returned by the manager.
var (
	ErrProcessExists   = errors.New("process: already defined")
	ErrProcessNotFound = errors.New("process: not found")
)

const procKeyPrefix = "process/"

type storedDef struct {
	Kind    string `json:"kind"` // "primitive" | "compound"
	Name    string `json:"name"`
	Version int    `json:"version"`
	Source  string `json:"source"`
}

// OpenManager loads all persisted process definitions, re-parsing and
// re-checking them against the current catalog and registry.
func OpenManager(st *storage.Store, cat *catalog.Catalog, reg *adt.Registry) (*Manager, error) {
	m := &Manager{
		store:     st,
		cat:       cat,
		reg:       reg,
		procs:     make(map[string][]*Process),
		compounds: make(map[string][]*Compound),
	}
	keys := st.MetaKeys(procKeyPrefix)
	var defs []storedDef
	for _, key := range keys {
		raw, ok := st.MetaGet(key)
		if !ok {
			continue
		}
		var d storedDef
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, fmt.Errorf("process: corrupt definition at %s: %w", key, err)
		}
		defs = append(defs, d)
	}
	// Load primitives before compounds (compounds resolve primitives), each
	// in version order.
	sort.Slice(defs, func(i, j int) bool {
		if defs[i].Kind != defs[j].Kind {
			return defs[i].Kind == "primitive"
		}
		if defs[i].Name != defs[j].Name {
			return defs[i].Name < defs[j].Name
		}
		return defs[i].Version < defs[j].Version
	})
	for _, d := range defs {
		pr, c, err := Parse(d.Source)
		if err != nil {
			return nil, fmt.Errorf("process: reload %s v%d: %w", d.Name, d.Version, err)
		}
		switch {
		case pr != nil:
			pr.Version = d.Version
			if err := Check(pr, cat, reg); err != nil {
				return nil, fmt.Errorf("process: reload %s v%d: %w", d.Name, d.Version, err)
			}
			m.procs[pr.Name] = append(m.procs[pr.Name], pr)
		case c != nil:
			c.Version = d.Version
			if err := CheckCompound(c, m.resolveLocked, cat); err != nil {
				return nil, fmt.Errorf("process: reload %s v%d: %w", d.Name, d.Version, err)
			}
			m.compounds[c.Name] = append(m.compounds[c.Name], c)
		}
	}
	return m, nil
}

// resolveLocked reports the signature of a process for compound checking.
func (m *Manager) resolveLocked(name string) ([]ArgSpec, string, error) {
	if vs := m.procs[name]; len(vs) > 0 {
		p := vs[len(vs)-1]
		return p.Args, p.OutClass, nil
	}
	if vs := m.compounds[name]; len(vs) > 0 {
		c := vs[len(vs)-1]
		return c.Args, c.OutClass, nil
	}
	return nil, "", fmt.Errorf("%w: %q", ErrProcessNotFound, name)
}

// Define parses, checks, and persists a new process definition (primitive
// or compound). The name must be new.
func (m *Manager) Define(src string) (name string, err error) {
	pr, c, err := Parse(src)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pr != nil {
		name = pr.Name
		if m.existsLocked(name) {
			return "", fmt.Errorf("%w: %s (use Redefine to create a new version)", ErrProcessExists, name)
		}
		if err := Check(pr, m.cat, m.reg); err != nil {
			return "", err
		}
		pr.Version = 1
		if err := m.persistLocked("primitive", pr.Name, pr.Version, src); err != nil {
			return "", err
		}
		m.procs[name] = append(m.procs[name], pr)
		// Record the derivation link on the output class when unset.
		if cls, cerr := m.cat.Class(pr.OutClass); cerr == nil && cls.DerivedBy == "" {
			if err := m.cat.SetDerivedBy(pr.OutClass, pr.Name); err != nil {
				return "", err
			}
		}
		return name, nil
	}
	name = c.Name
	if m.existsLocked(name) {
		return "", fmt.Errorf("%w: %s (use Redefine to create a new version)", ErrProcessExists, name)
	}
	if err := CheckCompound(c, m.resolveLocked, m.cat); err != nil {
		return "", err
	}
	c.Version = 1
	if err := m.persistLocked("compound", c.Name, c.Version, src); err != nil {
		return "", err
	}
	m.compounds[name] = append(m.compounds[name], c)
	return name, nil
}

// Redefine parses a new version of an existing process. The previous
// versions remain stored and addressable.
func (m *Manager) Redefine(src string) (name string, version int, err error) {
	pr, c, err := Parse(src)
	if err != nil {
		return "", 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pr != nil {
		name = pr.Name
		vs := m.procs[name]
		if len(vs) == 0 {
			return "", 0, fmt.Errorf("%w: %q (use Define first)", ErrProcessNotFound, name)
		}
		if err := Check(pr, m.cat, m.reg); err != nil {
			return "", 0, err
		}
		pr.Version = vs[len(vs)-1].Version + 1
		if err := m.persistLocked("primitive", name, pr.Version, src); err != nil {
			return "", 0, err
		}
		m.procs[name] = append(vs, pr)
		return name, pr.Version, nil
	}
	name = c.Name
	vs := m.compounds[name]
	if len(vs) == 0 {
		return "", 0, fmt.Errorf("%w: %q (use Define first)", ErrProcessNotFound, name)
	}
	if err := CheckCompound(c, m.resolveLocked, m.cat); err != nil {
		return "", 0, err
	}
	c.Version = vs[len(vs)-1].Version + 1
	if err := m.persistLocked("compound", name, c.Version, src); err != nil {
		return "", 0, err
	}
	m.compounds[name] = append(vs, c)
	return name, c.Version, nil
}

func (m *Manager) existsLocked(name string) bool {
	return len(m.procs[name]) > 0 || len(m.compounds[name]) > 0
}

func (m *Manager) persistLocked(kind, name string, version int, src string) error {
	raw, err := json.Marshal(storedDef{Kind: kind, Name: name, Version: version, Source: src})
	if err != nil {
		return err
	}
	key := fmt.Sprintf("%s%s@%06d", procKeyPrefix, name, version)
	return m.store.MetaSet(key, raw)
}

// Lookup returns the latest version of a primitive process.
func (m *Manager) Lookup(name string) (*Process, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	vs := m.procs[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrProcessNotFound, name)
	}
	return vs[len(vs)-1], nil
}

// LookupVersion returns a specific version of a primitive process.
func (m *Manager) LookupVersion(name string, version int) (*Process, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, p := range m.procs[name] {
		if p.Version == version {
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w: %q v%d", ErrProcessNotFound, name, version)
}

// LookupCompound returns the latest version of a compound process.
func (m *Manager) LookupCompound(name string) (*Compound, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	vs := m.compounds[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrProcessNotFound, name)
	}
	return vs[len(vs)-1], nil
}

// IsCompound reports whether name is a compound process.
func (m *Manager) IsCompound(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.compounds[name]) > 0
}

// Exists reports whether name is defined at all.
func (m *Manager) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.existsLocked(name)
}

// Names lists all process names (primitive and compound), sorted.
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.procs)+len(m.compounds))
	for n := range m.procs {
		out = append(out, n)
	}
	for n := range m.compounds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Versions lists the stored versions of a process, ascending.
func (m *Manager) Versions(name string) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for _, p := range m.procs[name] {
		out = append(out, p.Version)
	}
	for _, c := range m.compounds[name] {
		out = append(out, c.Version)
	}
	sort.Ints(out)
	return out
}

// ProcessesProducing lists primitive processes whose output class is the
// given class — the derivation edges into a Petri-net place.
func (m *Manager) ProcessesProducing(class string) []*Process {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Process
	for _, vs := range m.procs {
		p := vs[len(vs)-1]
		if p.OutClass == class {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Expand flattens a compound process into primitive steps, recursively
// expanding nested compounds ("a compound process cannot be directly
// applied, but must be expanded into its primitive processes before actual
// derivation takes place", §2.1.4). Step results are namespaced by their
// compound path. The returned output name identifies the step result that
// carries the compound's output.
func (m *Manager) Expand(name string) (steps []Step, output string, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, err := m.latestCompoundLocked(name)
	if err != nil {
		return nil, "", err
	}
	bind := make(map[string]string, len(c.Args))
	for _, a := range c.Args {
		bind[a.Name] = a.Name
	}
	steps, local, err := m.expandLocked(c, bind, "", 0)
	if err != nil {
		return nil, "", err
	}
	output, ok := local[c.OutAlias]
	if !ok {
		return nil, "", fmt.Errorf("process: compound %s output %q not produced", c.Name, c.OutAlias)
	}
	return steps, output, nil
}

func (m *Manager) latestCompoundLocked(name string) (*Compound, error) {
	vs := m.compounds[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: compound %q", ErrProcessNotFound, name)
	}
	return vs[len(vs)-1], nil
}

const maxExpandDepth = 16

func (m *Manager) expandLocked(c *Compound, bind map[string]string, prefix string, depth int) ([]Step, map[string]string, error) {
	if depth > maxExpandDepth {
		return nil, nil, fmt.Errorf("process: compound %s exceeds expansion depth %d (cycle?)", c.Name, maxExpandDepth)
	}
	var out []Step
	local := make(map[string]string) // step result → namespaced name
	resolveName := func(n string) (string, error) {
		if v, ok := local[n]; ok {
			return v, nil
		}
		if v, ok := bind[n]; ok {
			return v, nil
		}
		return "", fmt.Errorf("process: compound %s: unresolved name %q", c.Name, n)
	}
	for _, s := range c.Steps {
		mapped := make([]string, len(s.Args))
		for i, a := range s.Args {
			v, err := resolveName(a)
			if err != nil {
				return nil, nil, err
			}
			mapped[i] = v
		}
		namespaced := prefix + s.Result
		if len(m.procs[s.Process]) > 0 {
			out = append(out, Step{Result: namespaced, Process: s.Process, Args: mapped})
			local[s.Result] = namespaced
			continue
		}
		nested, err := m.latestCompoundLocked(s.Process)
		if err != nil {
			return nil, nil, err
		}
		if len(nested.Args) != len(mapped) {
			return nil, nil, fmt.Errorf("process: compound %s step %s: arity mismatch", c.Name, s.Result)
		}
		nestedBind := make(map[string]string, len(nested.Args))
		for i, a := range nested.Args {
			nestedBind[a.Name] = mapped[i]
		}
		sub, subLocal, err := m.expandLocked(nested, nestedBind, namespaced+"/", depth+1)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, sub...)
		// The nested compound's output becomes this step's result.
		nestedOut, ok := subLocal[nested.OutAlias]
		if !ok {
			return nil, nil, fmt.Errorf("process: compound %s: nested %s output missing", c.Name, nested.Name)
		}
		local[s.Result] = nestedOut
	}
	return out, local, nil
}
